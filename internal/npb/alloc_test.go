package npb

import "testing"

// ftRunAllocs measures the allocations of one full FT run at the given
// iteration count on 4 ranks.
func ftRunAllocs(t *testing.T, iters int) float64 {
	t.Helper()
	ft := FT{Nx: 16, Ny: 16, Nz: 16, Iters: iters}
	return testing.AllocsPerRun(3, func() {
		if _, _, err := ft.Run(npbWorld(4, 600)); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFTIterationAllocs pins the steady-state allocation cost of one FT
// iteration. Differencing two iteration counts cancels setup (grids, the
// one-time forward transform, plan construction) and isolates the
// per-iteration marginal cost: with the transpose pack buffers, column
// scratch and inverse work arrays reused, what remains is dominated by the
// collective deposit copies the simulator makes by design (they have no
// single owner and are never pooled). Measured ~45 allocs/iteration at 4
// ranks; the budget leaves ~2× headroom while still catching a return of
// the per-iteration fresh-scratch pattern, which costs hundreds.
func TestFTIterationAllocs(t *testing.T) {
	base := ftRunAllocs(t, 2)
	more := ftRunAllocs(t, 6)
	perIter := (more - base) / 4
	if perIter > 90 {
		t.Errorf("FT allocates %.0f allocs/iteration, want ≤ 90", perIter)
	}
}
