// Package mpi stubs the simulator runtime for the communication-pass
// testdata. The analyzers classify calls duck-typed — package named "mpi",
// receiver type Ctx, MPI-shaped method names — so the seeded packages import
// this stub instead of the real runtime and stay self-contained. The method
// bodies are irrelevant: the passes never descend into an mpi package.
package mpi

// World configures a stub job; N is the rank count.
type World struct {
	N int
}

// Result mirrors the runtime's per-run summary.
type Result struct{}

// Op selects a reduction operator.
type Op int

// Reduction operators.
const (
	Sum Op = iota
	Max
)

// Ctx is one rank's stub handle.
type Ctx struct {
	rank, n int
}

// Run launches the stub job.
func Run(w World, body func(*Ctx) error) (*Result, error) {
	if err := body(&Ctx{n: w.N}); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// Rank returns this rank's index.
func (c *Ctx) Rank() int { return c.rank }

// Size returns the job's rank count.
func (c *Ctx) Size() int { return c.n }

// SetPhase labels subsequent events.
func (c *Ctx) SetPhase(name string) { _ = name }

// Compute bills local work.
func (c *Ctx) Compute(flops float64) error { return nil }

// Free recycles a payload buffer.
func (c *Ctx) Free(buf []float64) { _ = buf }

// Send transmits data to dst.
func (c *Ctx) Send(dst, tag int, data []float64, vbytes int) error { return nil }

// Recv receives the next message from src.
func (c *Ctx) Recv(src, tag int) ([]float64, error) { return nil, nil }

// SendRecv exchanges messages with two peers.
func (c *Ctx) SendRecv(dst, src, tag int, data []float64, vbytes int) ([]float64, error) {
	return nil, nil
}

// Barrier blocks until every rank arrives.
func (c *Ctx) Barrier() error { return nil }

// Bcast distributes root's data.
func (c *Ctx) Bcast(root int, data []float64, vbytes int) ([]float64, error) { return data, nil }

// Allreduce combines every rank's vector.
func (c *Ctx) Allreduce(data []float64, op Op, vbytes int) ([]float64, error) { return data, nil }

// Reduce combines every rank's vector at root.
func (c *Ctx) Reduce(root int, data []float64, op Op, vbytes int) ([]float64, error) {
	return data, nil
}

// Alltoall performs the personalized all-to-all exchange.
func (c *Ctx) Alltoall(parts [][]float64, vbytes int) ([][]float64, error) { return parts, nil }

// Allgather concatenates every rank's vector.
func (c *Ctx) Allgather(data []float64, vbytes int) ([][]float64, error) {
	return [][]float64{data}, nil
}

// Gather collects every rank's vector at root.
func (c *Ctx) Gather(root int, data []float64, vbytes int) ([][]float64, error) {
	return [][]float64{data}, nil
}

// Scatter distributes root's parts.
func (c *Ctx) Scatter(root int, parts [][]float64, vbytes int) ([]float64, error) {
	return nil, nil
}
