package mpi

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	goruntime "runtime"
	"testing"

	"pasp/internal/faults"
	"pasp/internal/machine"
	"pasp/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// obsProgram is the observed test workload: a 2-rank job with three labeled
// phases covering compute, eager ping-pong at several message sizes, and a
// collective, so spans, the message histogram and every exporter get
// exercised.
func obsProgram(c *Ctx) error {
	data := []float64{1, 2, 3, 4}
	c.SetPhase("warmup")
	if err := c.Compute(machine.W(1e6, 0, 0, 0)); err != nil {
		return err
	}
	c.SetPhase("exchange")
	for r := 0; r < 4; r++ {
		vbytes := 32 << uint(2*r) // 32 B … 2 KiB, spanning histogram buckets
		if c.Rank() == 0 {
			if err := c.Send(1, 7, data, vbytes); err != nil {
				return err
			}
			got, err := c.Recv(1, 8)
			if err != nil {
				return err
			}
			c.Free(got)
		} else {
			got, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			c.Free(got)
			if err := c.Send(0, 8, data, vbytes); err != nil {
				return err
			}
		}
	}
	c.SetPhase("reduce")
	out, err := c.Allreduce([]float64{float64(c.Rank())}, Sum, 8)
	if err != nil {
		return err
	}
	c.Free(out)
	return nil
}

// obsWorld builds the observed 2-rank world; cfg zero means fault-free.
func obsWorld(cfg faults.Config) World {
	w := testWorld(2, 1400)
	w.Faults = cfg
	return w
}

// obsChaosCfg is a fixed seed with every injection class enabled, so the
// chaos golden exercises Fault and Retry instants in the export.
var obsChaosCfg = faults.Config{
	Seed:              42,
	LatencyJitterFrac: 1,
	DropProb:          0.2,
	DegradeProb:       0.2,
	DegradeFactor:     2,
	StragglerFrac:     0.5,
	StragglerSlowdown: 1.5,
}

// checkGolden compares got against the named testdata file, rewriting the
// file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/mpi -run TestObsGolden -update` to create)", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from golden; run with -update if the change is intended.\ngot:\n%s", name, got)
	}
}

// TestObsGoldenChromeTrace pins the Chrome trace-event export of the tiny
// ping-pong run byte-for-byte — fault-free and under a chaos seed — and
// proves the bytes do not depend on goroutine parallelism.
func TestObsGoldenChromeTrace(t *testing.T) {
	cases := map[string]faults.Config{
		"pingpong_clean.trace.json": {},
		"pingpong_chaos.trace.json": obsChaosCfg,
	}
	for name, cfg := range cases {
		w := obsWorld(cfg)
		w.Obs = obs.NewRecorder()
		res, err := Run(w, obsProgram)
		if err != nil {
			t.Fatal(err)
		}
		data := obs.ChromeTrace(res.Trace, "pasp")
		if n, err := obs.ValidateChromeTrace(data); err != nil || n == 0 {
			t.Fatalf("%s: exported trace invalid: %v", name, err)
		}
		checkGolden(t, name, data)

		prev := goruntime.GOMAXPROCS(1)
		w2 := obsWorld(cfg)
		w2.Obs = obs.NewRecorder()
		res2, err := Run(w2, obsProgram)
		goruntime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		if string(obs.ChromeTrace(res2.Trace, "pasp")) != string(data) {
			t.Errorf("%s: export differs under GOMAXPROCS=1", name)
		}
	}
}

// TestObsLeavesRunBitIdentical is the nil-injector contract from the other
// side: attaching a recorder must not change a single bit of the simulated
// outcome — timeline, makespan, energy.
func TestObsLeavesRunBitIdentical(t *testing.T) {
	for name, cfg := range map[string]faults.Config{"clean": {}, "chaos": obsChaosCfg} {
		base, err := Run(obsWorld(cfg), obsProgram)
		if err != nil {
			t.Fatal(err)
		}
		w := obsWorld(cfg)
		w.Obs = obs.NewRecorder()
		observed, err := Run(w, obsProgram)
		if err != nil {
			t.Fatal(err)
		}
		if base.Trace.TimelineCSV() != observed.Trace.TimelineCSV() {
			t.Errorf("%s: attaching a recorder changed the timeline", name)
		}
		//palint:ignore floateq -- bit-identity is the property under test, not a tolerance comparison
		if base.Seconds != observed.Seconds || base.Joules != observed.Joules {
			t.Errorf("%s: attaching a recorder changed the outcome: %g s %g J vs %g s %g J",
				name, base.Seconds, base.Joules, observed.Seconds, observed.Joules)
		}
	}
}

// TestObsRunMetrics checks the registry is filled from the aggregated
// result: message counters match RankStats, virtual-second counters match
// the trace, and the histogram saw every message.
func TestObsRunMetrics(t *testing.T) {
	w := obsWorld(faults.Config{})
	rec := obs.NewRecorder()
	w.Obs = rec
	res, err := Run(w, obsProgram)
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Metrics().Snapshot()
	wantMsgs, wantBytes := 0, 0
	for _, r := range res.PerRank {
		wantMsgs += r.Msgs
		wantBytes += r.MsgBytes
	}
	if got := s.Counter("mpi.msgs"); got != float64(wantMsgs) { //palint:ignore floateq -- exact integer counts
		t.Errorf("mpi.msgs = %g, want %d", got, wantMsgs)
	}
	if got := s.Counter("mpi.wire_bytes"); got != float64(wantBytes) { //palint:ignore floateq -- exact integer counts
		t.Errorf("mpi.wire_bytes = %g, want %d", got, wantBytes)
	}
	if got := s.Counter("mpi.runs"); got != 1 { //palint:ignore floateq -- exact integer counts
		t.Errorf("mpi.runs = %g, want 1", got)
	}
	byKind := res.Trace.TotalByKind()
	if got := s.Counter("mpi.virtual_seconds.compute"); math.Abs(got-byKind[0]) > 1e-12 {
		t.Errorf("compute seconds counter = %g, trace says %g", got, byKind[0])
	}
	var mkGauge float64
	for _, g := range s.Gauges {
		if g.Name == "mpi.makespan_seconds" {
			mkGauge = g.Value
		}
	}
	if mkGauge != res.Seconds { //palint:ignore floateq -- the gauge must carry the result value verbatim
		t.Errorf("makespan gauge = %g, want %g", mkGauge, res.Seconds)
	}
	for _, h := range s.Histograms {
		if h.Name == "mpi.msg_bytes" && h.Count != int64(wantMsgs) {
			t.Errorf("msg_bytes histogram saw %d messages, want %d", h.Count, wantMsgs)
		}
	}
}

// TestObsSpanHierarchy checks the run → rank → phase span tree matches the
// program's phase structure and the run's timing.
func TestObsSpanHierarchy(t *testing.T) {
	w := obsWorld(faults.Config{})
	rec := obs.NewRecorder()
	w.Obs = rec
	res, err := Run(w, obsProgram)
	if err != nil {
		t.Fatal(err)
	}
	spans := rec.Spans()
	if len(spans) == 0 || spans[0].Name != "run" {
		t.Fatalf("first span = %+v, want the run span", spans[0])
	}
	if spans[0].End != res.Seconds { //palint:ignore floateq -- the span must carry the makespan verbatim
		t.Errorf("run span ends at %g, makespan is %g", spans[0].End, res.Seconds)
	}
	perRank := map[int][]string{}
	for _, s := range spans {
		if s.Rank >= 0 && s.Parent >= 0 && spans[s.Parent].Rank == s.Rank {
			perRank[s.Rank] = append(perRank[s.Rank], s.Name)
		}
	}
	want := []string{"main", "warmup", "exchange", "reduce"}
	for rank := 0; rank < 2; rank++ {
		got := perRank[rank]
		if len(got) != len(want) {
			t.Errorf("rank %d phases = %v, want %v", rank, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("rank %d phase %d = %q, want %q", rank, i, got[i], want[i])
			}
		}
	}
}

// TestObsEnergyAttributionSums is the exporter's conservation law on a real
// run: summing the per-(rank,phase) attribution — idle tails included —
// recovers the run's total energy to within float re-association, clean and
// under chaos.
func TestObsEnergyAttributionSums(t *testing.T) {
	for name, cfg := range map[string]faults.Config{"clean": {}, "chaos": obsChaosCfg} {
		w := obsWorld(cfg)
		res, err := Run(w, obsProgram)
		if err != nil {
			t.Fatal(err)
		}
		rankEnds := make([]float64, len(res.PerRank))
		for i, r := range res.PerRank {
			rankEnds[i] = r.Seconds
		}
		rep := obs.AttributeEnergy(res.Trace, w.Prof, w.State, res.Seconds, rankEnds)
		if math.Abs(rep.TotalJoules-res.Joules) > 1e-9*res.Joules {
			t.Errorf("%s: attributed %.15g J, run total %.15g J", name, rep.TotalJoules, res.Joules)
		}
	}
}
