package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRelError(t *testing.T) {
	cases := []struct {
		pred, meas, want float64
	}{
		{110, 100, 0.10},
		{90, 100, 0.10},
		{100, 100, 0},
		{0, 0, 0},
		{-110, -100, 0.10},
	}
	for _, c := range cases {
		if got := RelError(c.pred, c.meas); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelError(%g,%g) = %g, want %g", c.pred, c.meas, got, c.want)
		}
	}
	if got := RelError(1, 0); !math.IsInf(got, 1) {
		t.Errorf("RelError(1,0) = %g, want +Inf", got)
	}
}

func TestSignedRelError(t *testing.T) {
	if got := SignedRelError(110, 100); math.Abs(got-0.10) > 1e-12 {
		t.Errorf("over-prediction sign: got %g, want 0.10", got)
	}
	if got := SignedRelError(90, 100); math.Abs(got+0.10) > 1e-12 {
		t.Errorf("under-prediction sign: got %g, want -0.10", got)
	}
}

func TestMeanMedianStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Median(xs); got != 4.5 {
		t.Errorf("Median = %g, want 4.5", got)
	}
	if got := Stddev(xs); math.Abs(got-2.138089935) > 1e-6 {
		t.Errorf("Stddev = %g, want ≈2.138", got)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Stddev(nil) != 0 {
		t.Error("empty-slice summaries should be 0")
	}
	if Stddev([]float64{3}) != 0 {
		t.Error("single-element stddev should be 0")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatalf("GeoMean: %v", err)
	}
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean = %g, want 4", got)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean with zero succeeded, want error")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("GeoMean of empty slice succeeded, want error")
	}
}

func TestMaxMin(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Max(xs) != 7 || Min(xs) != -1 {
		t.Errorf("Max/Min = %g/%g, want 7/-1", Max(xs), Min(xs))
	}
	if !math.IsInf(Max(nil), -1) || !math.IsInf(Min(nil), 1) {
		t.Error("empty Max/Min should be ∓Inf")
	}
}

func TestLinearFit(t *testing.T) {
	// y = 2 + 3x exactly.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{2, 5, 8, 11}
	a, b, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatalf("LinearFit: %v", err)
	}
	if math.Abs(a-2) > 1e-12 || math.Abs(b-3) > 1e-12 {
		t.Errorf("fit = (%g, %g), want (2, 3)", a, b)
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("LinearFit with one point succeeded, want error")
	}
	if _, _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("LinearFit with degenerate x succeeded, want error")
	}
	if _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("LinearFit with mismatched lengths succeeded, want error")
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.0213); got != "2.1%" {
		t.Errorf("Percent = %q, want 2.1%%", got)
	}
	if got := Percent(0.78); got != "78.0%" {
		t.Errorf("Percent = %q, want 78.0%%", got)
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(100, 100.5, 0.01) {
		t.Error("100 vs 100.5 at 1% should be equal")
	}
	if AlmostEqual(100, 110, 0.01) {
		t.Error("100 vs 110 at 1% should differ")
	}
	if !AlmostEqual(0, 1e-13, 1e-12) {
		t.Error("near-zero absolute tolerance failed")
	}
}

// Property: RelError is scale-invariant: scaling both arguments by a
// positive constant leaves the error unchanged.
func TestRelErrorScaleInvariantProperty(t *testing.T) {
	f := func(p, m float64, kRaw uint16) bool {
		if math.IsNaN(p) || math.IsNaN(m) || m == 0 ||
			math.Abs(p) > 1e100 || math.Abs(m) > 1e100 || math.Abs(m) < 1e-100 {
			return true // avoid overflow/underflow in k*p, k*m
		}
		k := 1 + float64(kRaw)/100
		return AlmostEqual(RelError(p, m), RelError(k*p, k*m), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mean is bounded by Min and Max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-6 && m <= Max(clean)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// y = 3 + 2n − 0.5·n² fitted with basis [1, n, n²] on 4 points.
	rows := [][]float64{}
	y := []float64{}
	for _, n := range []float64{1, 2, 4, 8} {
		rows = append(rows, []float64{1, n, n * n})
		y = append(y, 3+2*n-0.5*n*n)
	}
	beta, err := LeastSquares(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -0.5}
	for i := range want {
		if !AlmostEqual(beta[i], want[i], 1e-9) {
			t.Errorf("beta[%d] = %g, want %g", i, beta[i], want[i])
		}
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Noisy linear data: the fit must land near the generating line.
	rows := [][]float64{}
	y := []float64{}
	noise := []float64{0.1, -0.1, 0.05, -0.05, 0}
	for i, n := range []float64{1, 2, 3, 4, 5} {
		rows = append(rows, []float64{1, n})
		y = append(y, 10+2*n+noise[i])
	}
	beta, err := LeastSquares(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(beta[0], 10, 0.02) || !AlmostEqual(beta[1], 2, 0.02) {
		t.Errorf("fit = %v, want ≈ [10 2]", beta)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined system accepted")
	}
	if _, err := LeastSquares([][]float64{{1, 1}, {2, 2}}, []float64{1, 2}); err == nil {
		t.Error("singular system accepted")
	}
	if _, err := LeastSquares([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows accepted")
	}
}
