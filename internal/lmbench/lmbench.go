// Package lmbench reproduces the methodology of LMbench's lat_mem_rd,
// which the paper uses (Section 5.2, Step 2) to measure the seconds per
// instruction of each memory level: a pointer chase walks a working set of
// a chosen size through the cache hierarchy, and the average load latency
// is recorded. Sweeping the working-set size exposes one latency plateau
// per level; sampling a size well inside each plateau yields the CPI/f
// values of Table 6.
//
// The "hardware" here is the trace-driven cache simulator (package cache)
// priced by the node timing model (package machine), so the measured values
// agree with ground truth up to methodology error (cold misses, boundary
// effects) — exactly the relationship real LMbench has to real hardware.
package lmbench

import (
	"fmt"

	"pasp/internal/cache"
	"pasp/internal/machine"
	"pasp/internal/units"
)

// Point is one working-set measurement.
type Point struct {
	// WSBytes is the working-set size.
	WSBytes int
	// Nanos is the measured average time per load.
	Nanos units.Nanos
}

// hierarchyFor builds a cache hierarchy matching the machine's geometry
// (8-way, like the Pentium M).
func hierarchyFor(m machine.Config) (*cache.Hierarchy, error) {
	return cache.NewHierarchy(
		cache.Config{SizeBytes: m.L1Bytes, LineBytes: m.LineBytes, Ways: 8},
		cache.Config{SizeBytes: m.L2Bytes, LineBytes: m.LineBytes, Ways: 8},
	)
}

// Latency measures the average time per load of a pointer chase over
// wsBytes at the given core frequency: one warm-up pass fills the caches,
// then two measured passes run at one access per line.
func Latency(m machine.Config, freq units.Hertz, wsBytes int) (units.Nanos, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if wsBytes < m.LineBytes {
		return 0, fmt.Errorf("lmbench: working set %d below line size %d", wsBytes, m.LineBytes)
	}
	h, err := hierarchyFor(m)
	if err != nil {
		return 0, err
	}
	lines := wsBytes / m.LineBytes
	chase := func(count bool) (sec units.Seconds, loads int) {
		for i := 0; i < lines; i++ {
			addr := uint64(i * m.LineBytes)
			where := h.Access(addr)
			if !count {
				continue
			}
			loads++
			switch where {
			case cache.InL1:
				sec += m.SecPerIns(machine.L1, freq)
			case cache.InL2:
				sec += m.SecPerIns(machine.L2, freq)
			default:
				sec += m.SecPerIns(machine.Mem, freq)
			}
		}
		return sec, loads
	}
	chase(false) // warm up
	var total units.Seconds
	var loads int
	for pass := 0; pass < 2; pass++ {
		s, n := chase(true)
		total += s
		loads += n
	}
	if loads == 0 {
		return 0, fmt.Errorf("lmbench: pointer chase issued no loads")
	}
	return total.Div(float64(loads)).Nanos(), nil
}

// Sweep measures latency over a doubling working-set schedule from 1 KiB
// to maxBytes.
func Sweep(m machine.Config, freq units.Hertz, maxBytes int) ([]Point, error) {
	var out []Point
	for ws := 1 << 10; ws <= maxBytes; ws <<= 1 {
		ns, err := Latency(m, freq, ws)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{WSBytes: ws, Nanos: ns})
	}
	return out, nil
}

// LevelNanos returns the measured nanoseconds per instruction for each
// memory level at the given frequency — the rows of Table 6. The register
// cost is not observable by a memory-latency benchmark; as on real
// hardware, it comes from the architecture manual (the machine config).
func LevelNanos(m machine.Config, freq units.Hertz) ([machine.NumLevels]units.Nanos, error) {
	var out [machine.NumLevels]units.Nanos
	out[machine.Reg] = m.SecPerIns(machine.Reg, freq).Nanos()
	// Sample well inside each plateau: half of L1, the L2 region past 2×L1,
	// and 4× L2 for memory.
	l1, err := Latency(m, freq, m.L1Bytes/2)
	if err != nil {
		return out, err
	}
	l2ws := 4 * m.L1Bytes
	if l2ws > m.L2Bytes/2 {
		l2ws = m.L2Bytes / 2
	}
	l2, err := Latency(m, freq, l2ws)
	if err != nil {
		return out, err
	}
	mem, err := Latency(m, freq, 4*m.L2Bytes)
	if err != nil {
		return out, err
	}
	out[machine.L1] = l1
	out[machine.L2] = l2
	out[machine.Mem] = mem
	return out, nil
}
