package analysis

import (
	"go/ast"
	"go/types"
)

// NakedGo flags `go func` literals that assign to variables captured from
// the enclosing scope with no synchronization primitive in the literal's
// body — the cheap static complement to the runtime race detector. The
// simulator's fan-out idiom (mpi.Run, cluster.Sweep) writes result slots
// from worker goroutines; done correctly that is `slots[i] = v` with a
// goroutine-local i, which this check deliberately permits:
//
//   - a write indexed by a goroutine-local variable (`errs[rank] = err`
//     where rank is the literal's parameter or range variable) targets a
//     distinct element per goroutine and is race-free without locks;
//   - a literal that locks a mutex (Lock/RLock) or uses sync/atomic is
//     assumed to know what it is doing — the race detector, not a
//     heuristic, judges lock placement.
//
// Everything else — `counter++`, `shared = append(shared, x)`, writes
// through a captured struct — is a data race the moment two goroutines
// run, and is reported.
var NakedGo = &Analyzer{
	Name: "nakedgo",
	Doc:  "goroutine writing captured state without synchronization",
	Run:  runNakedGo,
	Explain: `A goroutine literal that writes a captured variable (counter
increment, append to a shared slice, field write through a captured
struct) without a mutex, channel send, or WaitGroup-mediated handoff in
the literal races as soon as two goroutines run. Synchronized bodies
(the heuristic looks for lock/channel/wait vocabulary) are exempt.`,
	Example: `for i := range shards {
	go func() {
		total += shards[i].sum() // flagged: unsynchronized captured write
	}()
}`,
}

func runNakedGo(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoLiteral(pass, lit)
			return true
		})
	}
}

// checkGoLiteral reports unsynchronized captured-variable writes in one
// goroutine literal.
func checkGoLiteral(pass *Pass, lit *ast.FuncLit) {
	if usesSyncPrimitive(pass, lit.Body) {
		return
	}
	local := localObjects(pass, lit)
	report := func(pos ast.Node, name string) {
		pass.Reportf(pos.Pos(),
			"goroutine writes captured variable %q without synchronization", name)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		// Nested goroutines get their own visit from runNakedGo with their
		// own local set; descending here would double-report their writes.
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				if name, bad := capturedWrite(pass, lhs, local); bad {
					report(lhs, name)
				}
			}
		case *ast.IncDecStmt:
			if name, bad := capturedWrite(pass, stmt.X, local); bad {
				report(stmt.X, name)
			}
		}
		return true
	})
}

// usesSyncPrimitive reports whether body calls a mutex method or anything
// from sync/atomic.
func usesSyncPrimitive(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch calleeName(call) {
		case "Lock", "RLock", "TryLock", "TryRLock":
			found = true
		}
		if pkgQualifier(pass, call) == "sync/atomic" {
			found = true
		}
		return !found
	})
	return found
}

// localObjects collects every object declared inside the literal: its
// parameters, named results, and all body definitions.
func localObjects(pass *Pass, lit *ast.FuncLit) map[types.Object]bool {
	local := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Pkg.Info.Defs[id]; obj != nil {
			local[obj] = true
		}
		return true
	})
	return local
}

// capturedWrite analyzes one assignment target. It reports bad=true when
// the target's base variable is captured from outside the literal and the
// write is not the safe distinct-element pattern (an index expression whose
// index is built purely from literal-local variables).
func capturedWrite(pass *Pass, lhs ast.Expr, local map[types.Object]bool) (name string, bad bool) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return "", false
	}
	base, indexedByLocal := resolveTarget(pass, lhs, local)
	if base == nil {
		return "", false
	}
	if local[base] {
		return "", false
	}
	if indexedByLocal {
		return "", false
	}
	return base.Name(), true
}

// resolveTarget walks an assignment target down to its base object,
// noting whether any indexing step on the way uses only literal-local
// variables (the per-goroutine slot pattern).
func resolveTarget(pass *Pass, e ast.Expr, local map[types.Object]bool) (types.Object, bool) {
	indexedByLocal := false
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.Pkg.Info.ObjectOf(x), indexedByLocal
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			if indexIsLocal(pass, x.Index, local) {
				indexedByLocal = true
			}
			e = x.X
		default:
			return nil, indexedByLocal
		}
	}
}

// indexIsLocal reports whether the index expression mentions at least one
// variable and every variable it mentions is literal-local. A constant
// index (`slots[0]`) is shared across goroutines and does not qualify.
func indexIsLocal(pass *Pass, index ast.Expr, local map[types.Object]bool) bool {
	sawVar, allLocal := false, true
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Pkg.Info.ObjectOf(id)
		if v, isVar := obj.(*types.Var); isVar {
			sawVar = true
			if !local[v] {
				allLocal = false
			}
		}
		return true
	})
	return sawVar && allLocal
}
