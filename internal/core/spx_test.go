package core

import (
	"testing"

	"pasp/internal/stats"
)

func TestSPXExactOnModelFamily(t *testing.T) {
	// Overhead exactly in the basis family: 0.5 + 0.1·N + 0.3·log₂N.
	po := func(n int) float64 {
		return 0.5 + 0.1*float64(n) + 0.3*float64(log2i(n))
	}
	m := synthetic(10, 5, po)
	x, err := FitSPX(m, 8) // fit on N ∈ {2, 4, 8}; 16 held out
	if err != nil {
		t.Fatal(err)
	}
	if got := x.FittedNs(); len(got) != 3 || got[2] != 8 {
		t.Errorf("fitted Ns = %v", got)
	}
	// Extrapolate to the held-out N=16 at every frequency.
	for _, mhz := range m.Freqs() {
		pred, err := x.PredictTime(16, mhz)
		if err != nil {
			t.Fatal(err)
		}
		meas, _ := m.Time(16, mhz)
		if !stats.AlmostEqual(pred, meas, 1e-9) {
			t.Errorf("N=16 @ %g MHz: predicted %g, measured %g", mhz, pred, meas)
		}
	}
	// And far beyond the measured range.
	s64, err := x.PredictSpeedup(64, 1400)
	if err != nil {
		t.Fatal(err)
	}
	if s64 <= 0 || s64 > 64*1400.0/600 {
		t.Errorf("N=64 speedup %g outside sane bounds", s64)
	}
}

// log2i is an integer log₂ for exact test arithmetic.
func log2i(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

func TestSPXNeedsThreeCounts(t *testing.T) {
	m := NewMeasurements()
	for _, n := range []int{1, 2, 4} {
		for _, f := range []float64{600, 1400} {
			m.SetTime(n, f, 10/float64(n)*600/f+1)
		}
	}
	if _, err := FitSPX(m, 0); err == nil {
		t.Error("fit with two parallel counts accepted")
	}
}

func TestSPXOverheadClampedNonNegative(t *testing.T) {
	// A decreasing overhead trend extrapolates negative; the clamp keeps
	// predicted times physical.
	m := NewMeasurements()
	for _, n := range []int{1, 2, 4, 8} {
		for _, f := range []float64{600, 1400} {
			po := 0.0
			if n > 1 {
				po = 3.0 / float64(n) // shrinking overhead
			}
			m.SetTime(n, f, 10/float64(n)*600/f+po)
		}
	}
	x, err := FitSPX(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	tpo, err := x.Overhead(1024)
	if err != nil {
		t.Fatal(err)
	}
	if tpo < 0 {
		t.Errorf("overhead %g negative", tpo)
	}
	tm, err := x.PredictTime(1024, 600)
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0 {
		t.Errorf("predicted time %g not positive", tm)
	}
}

func TestSPXUnknownFrequency(t *testing.T) {
	m := synthetic(10, 5, func(n int) float64 { return float64(n) })
	x, err := FitSPX(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.PredictTime(16, 700); err == nil {
		t.Error("unmeasured frequency accepted")
	}
	if _, err := x.Overhead(0); err == nil {
		t.Error("N=0 accepted")
	}
	if got, _ := x.Overhead(1); got != 0 {
		t.Errorf("N=1 overhead %g, want 0", got)
	}
}
