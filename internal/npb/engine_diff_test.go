package npb

import (
	"reflect"
	"testing"

	"pasp/internal/faults"
	"pasp/internal/mpi"
	"pasp/internal/obs"
)

// diffChaosCfg is the fixed chaos seed of the differential matrix: every
// injector class enabled, so the engines are compared on the retransmission
// and straggler paths too, not just the clean schedule.
var diffChaosCfg = faults.Config{
	Seed:              7,
	LatencyJitterFrac: 0.5,
	DropProb:          0.05,
	DegradeProb:       0.1,
	DegradeFactor:     2,
	StragglerFrac:     0.25,
	StragglerSlowdown: 1.5,
}

// diffKernels is the full NAS suite in small classes that validate on
// every rank count of the matrix (CG pins Band=4 so its halo of 16 rows
// fits the 16-rank split; MG needs ≥ 2 planes per rank, hence 63³).
type diffKernel struct {
	name string
	run  func(w mpi.World) (*mpi.Result, error)
}

func diffKernels() []diffKernel {
	return []diffKernel{
		{"ep", func(w mpi.World) (*mpi.Result, error) {
			_, r, err := EP{LogPairs: 14, ScaleLog: 6}.Run(w)
			return r, err
		}},
		{"ft", func(w mpi.World) (*mpi.Result, error) {
			_, r, err := FT{Nx: 16, Ny: 16, Nz: 16, Iters: 2}.Run(w)
			return r, err
		}},
		{"lu", func(w mpi.World) (*mpi.Result, error) {
			_, r, err := LU{N: 16, Iters: 2}.Run(w)
			return r, err
		}},
		{"cg", func(w mpi.World) (*mpi.Result, error) {
			_, r, err := CG{Size: 256, Band: 4, OuterIters: 1, CGIters: 5}.Run(w)
			return r, err
		}},
		{"mg", func(w mpi.World) (*mpi.Result, error) {
			_, r, err := MG{Size: 63, Cycles: 1}.Run(w)
			return r, err
		}},
		{"is", func(w mpi.World) (*mpi.Result, error) {
			_, r, err := IS{LogKeys: 12, LogMaxKey: 15, Iters: 2}.Run(w)
			return r, err
		}},
		{"sp", func(w mpi.World) (*mpi.Result, error) {
			_, r, err := SP{N: 16, Steps: 2}.Run(w)
			return r, err
		}},
	}
}

// runEngine executes one kernel on one engine with the observability
// recorder attached and returns everything the matrix compares.
func runEngine(t *testing.T, run func(mpi.World) (*mpi.Result, error), n int, cfg faults.Config, eng mpi.Engine) (*mpi.Result, string, *obs.EnergyReport) {
	t.Helper()
	w := npbWorld(n, 1400)
	w.Faults = cfg
	w.Engine = eng
	rec := obs.NewRecorder()
	w.Obs = rec
	res, err := run(w)
	if err != nil {
		t.Fatalf("%s engine: %v", eng, err)
	}
	rankEnds := make([]float64, len(res.PerRank))
	for i, r := range res.PerRank {
		rankEnds[i] = r.Seconds
	}
	rep := obs.AttributeEnergy(res.Trace, w.Prof, w.State, res.Seconds, rankEnds)
	return res, rec.Metrics().Snapshot().Text(), rep
}

// TestEngineDifferentialMatrix is the engine-equivalence contract at the
// kernel level: every NAS kernel, at N ∈ {2, 4, 8, 16}, clean and under a
// fixed chaos seed, must produce byte-identical timelines, metric
// snapshots and per-(rank, phase) energy attributions under the goroutine
// and event engines. The mpi-level differential (TestEngineDifferential)
// pins the primitives; this matrix pins every composition of them the
// reproduction actually runs.
func TestEngineDifferentialMatrix(t *testing.T) {
	for _, k := range diffKernels() {
		for _, n := range []int{2, 4, 8, 16} {
			for _, mode := range []struct {
				label string
				cfg   faults.Config
			}{{"clean", faults.Config{}}, {"chaos", diffChaosCfg}} {
				gor, gorMetrics, gorRep := runEngine(t, k.run, n, mode.cfg, mpi.EngineGoroutine)
				ev, evMetrics, evRep := runEngine(t, k.run, n, mode.cfg, mpi.EngineEvent)
				label := k.name + "/" + mode.label
				if gor.Trace.TimelineCSV() != ev.Trace.TimelineCSV() {
					t.Errorf("%s N=%d: timelines differ between engines", label, n)
				}
				if gor.Seconds != ev.Seconds || gor.Joules != ev.Joules {
					t.Errorf("%s N=%d: outcome differs: %.17g s %.17g J vs %.17g s %.17g J",
						label, n, gor.Seconds, gor.Joules, ev.Seconds, ev.Joules)
				}
				if gorMetrics != evMetrics {
					t.Errorf("%s N=%d: metric snapshots differ between engines", label, n)
				}
				if !reflect.DeepEqual(gorRep.Rows, evRep.Rows) {
					t.Errorf("%s N=%d: energy attribution rows differ between engines", label, n)
				}
			}
		}
	}
}
