// Sweetspot: sweep the full (processor count, frequency) grid for the FT
// kernel, then identify the configurations that optimize speedup, energy
// and the energy-delay product — with and without a cluster power cap.
// This is the paper's motivating use case for an accurate power-aware
// speedup model.
//
//	go run ./examples/sweetspot
package main

import (
	"context"
	"fmt"
	"log"

	"pasp/internal/cluster"
	"pasp/internal/core"
	"pasp/internal/mpi"
	"pasp/internal/npb"
)

func main() {
	platform := cluster.PentiumM()
	grid := cluster.PaperGrid()
	ft := npb.FT{Nx: 32, Ny: 32, Nz: 32, Iters: 3, Scale: 32}

	cells, err := cluster.Sweep(context.Background(), platform, grid, func(w mpi.World) (*mpi.Result, error) {
		_, r, err := ft.Run(w)
		return r, err
	})
	if err != nil {
		log.Fatal(err)
	}
	meas := core.NewMeasurements()
	for _, c := range cells {
		meas.SetTime(c.N, c.MHz, c.Res.Seconds)
		meas.SetEnergy(c.N, c.MHz, c.Res.Joules)
	}

	show := func(label string, obj core.Objective, cap float64) {
		best, err := core.SweetSpot(meas, obj, cap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %-14v %7.2f s  %8.0f J  %7.1f W  speedup %.2f\n",
			label, best.Config, best.Seconds, best.Joules, best.AvgWatts, best.Speedup)
	}
	fmt.Println("FT sweet spots over the 5x5 configuration grid:")
	show("fastest", core.MaxSpeedup, 0)
	show("least energy", core.MinEnergy, 0)
	show("best energy-delay (EDP)", core.MinEDP, 0)
	show("best ED2P", core.MinED2P, 0)
	show("fastest under 250 W", core.MaxSpeedup, 250)
}
