package mpi

import (
	stdruntime "runtime"
	"testing"

	"pasp/internal/faults"
	"pasp/internal/machine"
	"pasp/internal/trace"
)

// chaosProgram is a small SPMD workload exercising every injected code path:
// compute (straggler stretch), eager and rendezvous point-to-point, the
// exchange protocol, and a collective. Rendezvous sends are ordered
// even-sends-first so the blocking handshake cannot deadlock on the ring.
func chaosProgram(c *Ctx) error {
	n := c.Size()
	next, prev := (c.Rank()+1)%n, (c.Rank()+n-1)%n
	work := machine.W(5e5, 2e5, 1e4, 5e3)
	buf := make([]float64, 16)
	for iter := 0; iter < 3; iter++ {
		c.SetPhase("compute")
		if err := c.Compute(work); err != nil {
			return err
		}
		c.SetPhase("exchange")
		got, err := c.SendRecv(next, prev, 7, buf, 4096)
		if err != nil {
			return err
		}
		c.Free(got)
		c.SetPhase("eager")
		if err := c.Send(next, 8, buf, 1024); err != nil {
			return err
		}
		if got, err = c.Recv(prev, 8); err != nil {
			return err
		}
		c.Free(got)
		c.SetPhase("rendezvous")
		if c.Rank()%2 == 0 {
			if err := c.Send(next, 9, buf, 128<<10); err != nil {
				return err
			}
			if got, err = c.Recv(prev, 9); err != nil {
				return err
			}
		} else {
			if got, err = c.Recv(prev, 9); err != nil {
				return err
			}
			if err := c.Send(next, 9, buf, 128<<10); err != nil {
				return err
			}
		}
		c.Free(got)
		c.SetPhase("reduce")
		if got, err = c.Allreduce(buf[:1], Sum, 0); err != nil {
			return err
		}
		c.Free(got)
	}
	return nil
}

func chaosWorld(n int, cfg faults.Config) World {
	w := testWorld(n, 1400)
	w.Faults = cfg
	return w
}

var chaosCfg = faults.Config{
	Seed:              42,
	LatencyJitterFrac: 1,
	DropProb:          0.2,
	DegradeProb:       0.2,
	DegradeFactor:     2,
	StragglerFrac:     0.25,
	StragglerSlowdown: 1.5,
}

// TestChaosZeroConfigBitIdentical is the transparency contract: a world
// carrying the zero fault config must produce byte-for-byte the trace of a
// world with no fault wiring at all, with nothing counted as injected.
func TestChaosZeroConfigBitIdentical(t *testing.T) {
	base, err := Run(testWorld(4, 1400), chaosProgram)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Run(chaosWorld(4, faults.Config{}), chaosProgram)
	if err != nil {
		t.Fatal(err)
	}
	if base.Trace.TimelineCSV() != zero.Trace.TimelineCSV() {
		t.Error("zero fault config changed the timeline")
	}
	if base.Seconds != zero.Seconds || base.Joules != zero.Joules {
		t.Errorf("zero fault config changed the outcome: %g s %g J vs %g s %g J",
			base.Seconds, base.Joules, zero.Seconds, zero.Joules)
	}
	if zero.FaultSec() != 0 || zero.Retries() != 0 {
		t.Errorf("fault-free run reports FaultSec=%g Retries=%d", zero.FaultSec(), zero.Retries())
	}
}

// TestChaosDeterminism is the seed contract: the same seed produces a
// byte-identical timeline run-to-run and under GOMAXPROCS=1, where goroutine
// interleaving is maximally different from the parallel default.
func TestChaosDeterminism(t *testing.T) {
	a, err := Run(chaosWorld(4, chaosCfg), chaosProgram)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(chaosWorld(4, chaosCfg), chaosProgram)
	if err != nil {
		t.Fatal(err)
	}
	csvA, csvB := a.Trace.TimelineCSV(), b.Trace.TimelineCSV()
	if csvA != csvB {
		t.Fatal("same seed, different timelines across runs")
	}
	prev := stdruntime.GOMAXPROCS(1)
	c, err := Run(chaosWorld(4, chaosCfg), chaosProgram)
	stdruntime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if csvA != c.Trace.TimelineCSV() {
		t.Fatal("GOMAXPROCS=1 changed the perturbed timeline")
	}
}

func TestChaosSeedSensitivity(t *testing.T) {
	a, err := Run(chaosWorld(4, chaosCfg), chaosProgram)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := chaosCfg
	cfg2.Seed = 43
	b, err := Run(chaosWorld(4, cfg2), chaosProgram)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace.TimelineCSV() == b.Trace.TimelineCSV() {
		t.Error("seeds 42 and 43 produced identical perturbed timelines")
	}
}

// TestChaosAccounting checks that injected time and retries flow end to end:
// Ctx counters → RankStats → Result sums → trace kinds, and that the
// perturbed trace still satisfies every Log invariant.
func TestChaosAccounting(t *testing.T) {
	cfg := chaosCfg
	cfg.DropProb = 1 // every transmission drops: retries are guaranteed
	res, err := Run(chaosWorld(4, cfg), chaosProgram)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("perturbed trace invalid: %v", err)
	}
	if res.Retries() == 0 {
		t.Error("DropProb=1 produced no retries")
	}
	sum := 0
	for _, s := range res.PerRank {
		sum += s.Retries
		if s.Retries < 0 || s.FaultSec < 0 {
			t.Fatalf("negative per-rank accounting: %+v", s)
		}
	}
	if sum != res.Retries() {
		t.Errorf("Result.Retries() = %d, per-rank sum = %d", res.Retries(), sum)
	}
	byKind := res.Trace.TotalByKind()
	if byKind[trace.Retry] <= 0 {
		t.Error("no Retry time in trace")
	}
	if byKind[trace.Fault] <= 0 {
		t.Error("no Fault time in trace")
	}
	if got, want := byKind[trace.Fault]+byKind[trace.Retry], res.FaultSec(); !approxEq(got, want) {
		t.Errorf("trace fault+retry time %g != summed FaultSec %g", got, want)
	}
	clean, err := Run(testWorld(4, 1400), chaosProgram)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= clean.Seconds {
		t.Errorf("perturbed makespan %g not above clean %g", res.Seconds, clean.Seconds)
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}

// TestChaosStraggler pins every rank as a straggler and checks the compute
// stretch lands where the heterogeneity model says: compute time up by the
// slowdown, the stretch visible as Fault-kind trace time.
func TestChaosStraggler(t *testing.T) {
	cfg := faults.Config{Seed: 1, StragglerFrac: 1, StragglerSlowdown: 2}
	slow, err := Run(chaosWorld(4, cfg), chaosProgram)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(testWorld(4, 1400), chaosProgram)
	if err != nil {
		t.Fatal(err)
	}
	// The stretch is billed as Fault time, not compute, so ComputeSec is
	// unchanged while the injected time equals (slowdown−1)·compute.
	if !approxEq(slow.ComputeSec(), clean.ComputeSec()) {
		t.Errorf("straggler changed clean ComputeSec: %g vs %g", slow.ComputeSec(), clean.ComputeSec())
	}
	if want := clean.ComputeSec(); !approxEq(slow.FaultSec(), want) {
		t.Errorf("all-straggler FaultSec = %g, want ≈ compute time %g", slow.FaultSec(), want)
	}
	if slow.Seconds <= clean.Seconds {
		t.Errorf("stragglers did not slow the run: %g vs %g", slow.Seconds, clean.Seconds)
	}
}

// TestChaosJitterMonotone checks the perturbed makespan grows monotonically
// with the jitter magnitude — the fixed-draw-count design guarantee the
// robustness campaign's error-growth claim relies on.
func TestChaosJitterMonotone(t *testing.T) {
	prev := 0.0
	for i, m := range []float64{0, 0.5, 1, 2, 4} {
		cfg := faults.Config{Seed: 7, LatencyJitterFrac: 1}.Scale(m)
		res, err := Run(chaosWorld(4, cfg), chaosProgram)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Seconds <= prev {
			t.Fatalf("makespan not increasing at magnitude %g: %g after %g", m, res.Seconds, prev)
		}
		prev = res.Seconds
	}
}

// TestChaosWorldValidate checks fault-config validation is wired into the
// world's own validation.
func TestChaosWorldValidate(t *testing.T) {
	w := chaosWorld(2, faults.Config{DropProb: 2})
	if _, err := Run(w, chaosProgram); err == nil {
		t.Error("world with DropProb=2 ran")
	}
}
