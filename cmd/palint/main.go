// Command palint runs the repository's domain-aware static-analysis suite
// (package analysis): silent-failure checks for the power-aware speedup
// model's arithmetic (unguarded float division, exact float equality,
// dropped model-API errors), report determinism (map-ordered output), a
// cheap static race heuristic for goroutine literals, dimensional
// analysis over the typed units layer (cross-dimension conversions,
// unlike-dimension arithmetic, bare scale literals), and the v3
// interprocedural passes: nondeterminism-source tainting (detsource),
// freelist payload ownership (ownfree), mixed synchronization disciplines
// (atomicmix) and hot-path allocation budgets (hotalloc).
//
// Usage:
//
//	palint [-json] [-artifact file] [-only a,b] [-exclude glob,glob]
//	       [-baseline file] [-write-baseline file] [-skeleton file]
//	       [-list] [-explain analyzer] [packages...]
//
// Packages follow the go tool's pattern shape ("./...", "./internal/core").
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
// -skeleton extracts the static communication skeleton (phases, collective
// sites, point-to-point endpoints in the rank algebra of internal/commspec)
// of the loaded packages instead of linting, writing canonical JSON for
// cmd/paverify to replay recorded traces against.
//
// -write-baseline records the current active findings; a later run with
// -baseline suppresses exactly those and fails only on new ones, so a tree
// with accepted debt still gates regressions.
//
// Findings are silenced inline with
//
//	//palint:ignore <analyzer>[,<analyzer>] -- <reason>
//
// on the flagged line or the line above — the reason is mandatory — or for
// whole paths with -exclude (comma-separated path globs or substrings;
// testdata and _test.go files are always excluded by the loader).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path"
	"path/filepath"
	"strings"

	"pasp/internal/analysis"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit diagnostics as a JSON array")
		artifact = flag.String("artifact", "", "also write the full diagnostic set (suppressed included) as JSON to this file")
		only     = flag.String("only", "", "comma-separated analyzer subset to run")
		exclude  = flag.String("exclude", "", "comma-separated path globs/substrings to suppress")
		list     = flag.Bool("list", false, "list analyzers and exit")
		explain  = flag.String("explain", "", "print one analyzer's full rule and a representative example, then exit")
		verbose  = flag.Bool("v", false, "also show suppressed findings and their reasons")

		skeleton      = flag.String("skeleton", "", "write the static communication skeleton as JSON to this file (\"-\" for stdout) and exit")
		baseline      = flag.String("baseline", "", "suppress findings recorded in this baseline; fail only on new ones")
		writeBaseline = flag.String("write-baseline", "", "record the current active findings to this file and exit 0")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *explain != "" {
		if err := explainAnalyzer(*explain); err != nil {
			fmt.Fprintf(os.Stderr, "palint: %v\n", err)
			os.Exit(2)
		}
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*only, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "palint: %v\n", err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "palint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(root, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "palint: %v\n", err)
		os.Exit(2)
	}
	typeErrs := 0
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "palint: type error: %v\n", e)
			typeErrs++
		}
	}
	if typeErrs > 0 {
		os.Exit(2)
	}

	if *skeleton != "" {
		if err := writeSkeleton(*skeleton, root, pkgs); err != nil {
			fmt.Fprintf(os.Stderr, "palint: %v\n", err)
			os.Exit(2)
		}
		return
	}

	diags := analysis.Run(pkgs, analyzers)
	diags = applyPathExcludes(diags, root, *exclude)

	if *writeBaseline != "" {
		n, err := saveBaseline(*writeBaseline, root, diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "palint: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "palint: baseline written with %d finding(s)\n", n)
		return
	}
	if *baseline != "" {
		var err error
		diags, err = applyBaseline(*baseline, root, diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "palint: %v\n", err)
			os.Exit(2)
		}
	}
	active := analysis.Active(diags)

	if *artifact != "" {
		if err := writeArtifact(*artifact, diags); err != nil {
			fmt.Fprintf(os.Stderr, "palint: %v\n", err)
			os.Exit(2)
		}
	}

	if *jsonOut {
		shown := active
		if *verbose {
			shown = diags
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if shown == nil {
			shown = []analysis.Diagnostic{}
		}
		if err := enc.Encode(shown); err != nil {
			fmt.Fprintf(os.Stderr, "palint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			switch {
			case !d.Suppressed:
				fmt.Println(rel(root, d))
			case *verbose:
				fmt.Printf("%s [suppressed: %s]\n", rel(root, d), d.Reason)
			}
		}
	}
	if len(active) > 0 {
		fmt.Fprintf(os.Stderr, "palint: %d finding(s)\n", len(active))
		os.Exit(1)
	}
}

// explainAnalyzer prints the named analyzer's full rule statement and its
// representative example (lifted from the seeded testdata).
func explainAnalyzer(name string) error {
	analyzers, err := analysis.ByName([]string{name})
	if err != nil {
		return err
	}
	a := analyzers[0]
	fmt.Printf("%s — %s\n", a.Name, a.Doc)
	text := a.Explain
	if text == "" {
		text = a.Doc
	}
	fmt.Printf("\n%s\n", strings.TrimSpace(text))
	if a.Example != "" {
		fmt.Printf("\nExample:\n\n")
		for _, line := range strings.Split(strings.TrimRight(a.Example, "\n"), "\n") {
			fmt.Printf("\t%s\n", line)
		}
	}
	return nil
}

// writeArtifact writes the full diagnostic set — suppressed findings
// included, so the artifact records what was silenced and why — as
// indented JSON. CI uploads it per run.
func writeArtifact(file string, diags []analysis.Diagnostic) error {
	if diags == nil {
		diags = []analysis.Diagnostic{}
	}
	data, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(file, append(data, '\n'), 0o644)
}

// writeSkeleton extracts the loaded packages' communication skeleton and
// writes its canonical JSON.
func writeSkeleton(file, root string, pkgs []*analysis.Package) error {
	module, err := analysis.ModulePath(root)
	if err != nil {
		return err
	}
	sk, err := analysis.BuildSkeleton(root, module, pkgs, analysis.NewProgram(pkgs))
	if err != nil {
		return err
	}
	data, err := sk.JSON()
	if err != nil {
		return err
	}
	if file == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(file, data, 0o644)
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// applyPathExcludes marks diagnostics in excluded paths as suppressed, so
// -v still shows them. Each pattern matches as a path.Match glob against
// the module-relative file path, or as a plain substring.
func applyPathExcludes(diags []analysis.Diagnostic, root, excludes string) []analysis.Diagnostic {
	if excludes == "" {
		return diags
	}
	pats := strings.Split(excludes, ",")
	for i, d := range diags {
		relPath := d.File
		if r, err := filepath.Rel(root, d.File); err == nil {
			relPath = filepath.ToSlash(r)
		}
		for _, pat := range pats {
			pat = strings.TrimSpace(pat)
			if pat == "" {
				continue
			}
			if ok, _ := path.Match(pat, relPath); ok || strings.Contains(relPath, pat) {
				diags[i].Suppressed = true
				diags[i].Reason = "path excluded by -exclude " + pat
				break
			}
		}
	}
	return diags
}

// rel shortens the diagnostic's file to a module-relative path for display.
func rel(root string, d analysis.Diagnostic) string {
	if r, err := filepath.Rel(root, d.File); err == nil {
		d.File = r
	}
	return d.String()
}
