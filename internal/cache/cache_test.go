package cache

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 8},
		{SizeBytes: 1024, LineBytes: 0, Ways: 8},
		{SizeBytes: 1024, LineBytes: 64, Ways: 0},
		{SizeBytes: 1024, LineBytes: 48, Ways: 2},       // line not pow2
		{SizeBytes: 1000, LineBytes: 64, Ways: 2},       // not divisible
		{SizeBytes: 64 * 2 * 3, LineBytes: 64, Ways: 2}, // 3 sets, not pow2
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) succeeded, want error", cfg)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) {
		t.Error("second access missed")
	}
	if !c.Access(63) {
		t.Error("same-line access missed")
	}
	if c.Access(64) {
		t.Error("next-line cold access hit")
	}
	if c.Hits() != 2 || c.Misses() != 2 || c.Accesses() != 4 {
		t.Errorf("counters = %d hits / %d misses", c.Hits(), c.Misses())
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 1 set: size = 2 lines.
	c := mustNew(t, Config{SizeBytes: 128, LineBytes: 64, Ways: 2})
	c.Access(0)   // miss, set: [0]
	c.Access(64)  // miss, set: [1,0]
	c.Access(0)   // hit,  set: [0,1]
	c.Access(128) // miss, evicts LRU line 1, set: [2,0]
	if !c.Access(0) {
		t.Error("line 0 evicted but was MRU")
	}
	if c.Access(64) {
		t.Error("line 1 survived but was LRU")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	cfg := Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8}
	c := mustNew(t, cfg)
	// Touch every line twice: first pass all cold misses, second all hits.
	lines := cfg.SizeBytes / cfg.LineBytes
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i * cfg.LineBytes))
		}
	}
	if c.Misses() != uint64(lines) {
		t.Errorf("misses = %d, want %d (cold only)", c.Misses(), lines)
	}
}

func TestWorkingSetExceedsCapacityThrashes(t *testing.T) {
	cfg := Config{SizeBytes: 1 << 10, LineBytes: 64, Ways: 2}
	c := mustNew(t, cfg)
	// Sequential sweep over 4× capacity with LRU: every access misses after
	// the first pass too.
	lines := 4 * cfg.SizeBytes / cfg.LineBytes
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i * cfg.LineBytes))
		}
	}
	if c.Hits() != 0 {
		t.Errorf("hits = %d, want 0 for cyclic sweep over 4× capacity", c.Hits())
	}
}

func TestResetAndFlush(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 128, LineBytes: 64, Ways: 2})
	c.Access(0)
	c.ResetCounters()
	if c.Accesses() != 0 {
		t.Error("ResetCounters did not clear counters")
	}
	if !c.Access(0) {
		t.Error("ResetCounters should not flush contents")
	}
	c.Flush()
	if c.Access(0) {
		t.Error("Flush should empty contents")
	}
}

func TestHierarchyLevels(t *testing.T) {
	h, err := PentiumM()
	if err != nil {
		t.Fatalf("PentiumM() = %v", err)
	}
	if got := h.Access(0); got != InMem {
		t.Errorf("cold access = %v, want Mem", got)
	}
	if got := h.Access(0); got != InL1 {
		t.Errorf("hot access = %v, want L1", got)
	}
	// Evict from L1 by sweeping 2× L1 capacity, then line 0 should be in L2.
	for i := 1; i <= 2*(32<<10)/64; i++ {
		h.Access(uint64(i * 64))
	}
	if got := h.Access(0); got != InL2 {
		t.Errorf("after L1 eviction, access = %v, want L2", got)
	}
}

func TestHierarchyRejectsInvertedSizes(t *testing.T) {
	_, err := NewHierarchy(
		Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 8},
		Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
	)
	if err == nil {
		t.Error("NewHierarchy with L2 < L1 succeeded, want error")
	}
}

func TestWhereString(t *testing.T) {
	if InL1.String() != "L1" || InL2.String() != "L2" || InMem.String() != "Mem" {
		t.Error("Where names wrong")
	}
}

// Property: hits + misses always equals accesses, and an immediate repeat of
// any address hits.
func TestCounterConsistencyProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c, err := New(Config{SizeBytes: 4 << 10, LineBytes: 64, Ways: 4})
		if err != nil {
			return false
		}
		for _, a := range addrs {
			c.Access(uint64(a))
			if !c.Access(uint64(a)) {
				return false
			}
		}
		return c.Hits()+c.Misses() == c.Accesses()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a cache never holds more lines than its capacity — touching K
// distinct lines yields at least K − capacity misses on a second pass... we
// check the weaker invariant that misses ≥ distinct lines (cold) on the
// first pass.
func TestColdMissLowerBoundProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		c, err := New(Config{SizeBytes: 2 << 10, LineBytes: 64, Ways: 2})
		if err != nil {
			return false
		}
		distinct := map[uint64]bool{}
		for _, a := range raw {
			line := uint64(a) >> 6
			distinct[line] = true
			c.Access(uint64(a))
		}
		return c.Misses() >= uint64(len(distinct))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
