// Command paedp runs the energy-delay analysis: it measures a kernel's
// time and energy over the configuration grid, scores the model's EDP
// predictions (the abstract's "within 7%" claim), and reports the measured
// and model-recommended sweet-spot configurations.
//
// Usage:
//
//	paedp [-bench ep|ft] [-suite paper|quick] [-cap watts]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"pasp/internal/core"
	"pasp/internal/experiments"
)

func main() {
	bench := flag.String("bench", "ft", "kernel: ep or ft")
	suite := flag.String("suite", "paper", "experiment scale: paper or quick")
	cap := flag.Float64("cap", 0, "cluster power cap in watts (0 = uncapped)")
	flag.Parse()

	s, err := experiments.SuiteByName(*suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paedp: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var camp *experiments.Campaign
	switch *bench {
	case "ep":
		camp, err = s.MeasureEP(ctx)
	case "ft":
		camp, err = s.MeasureFT(ctx)
	default:
		fmt.Fprintf(os.Stderr, "paedp: unknown bench %q\n", *bench)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "paedp: %v\n", err)
		os.Exit(1)
	}

	res, err := s.EDPFrom(*bench, camp, s.Grid.Ns[1:], s.Grid.MHz)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paedp: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res)

	measured, predicted, err := s.SweetSpotFrom(camp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paedp: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("measured EDP optimum : %v  (%.2f s, %.0f J, EDP %.0f)\n",
		measured.Config, measured.Seconds, measured.Joules, measured.EDP())
	fmt.Printf("model recommendation : %v  (predicted %.2f s, %.0f J, EDP %.0f)\n",
		predicted.Config, predicted.Seconds, predicted.Joules, predicted.EDP())

	if *cap > 0 {
		capped, err := core.SweetSpot(camp.Meas, core.MaxSpeedup, *cap)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paedp: power cap: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("fastest under %.0f W : %v  (%.2f s at %.1f W)\n",
			*cap, capped.Config, capped.Seconds, capped.AvgWatts)
	}
}
