// Package dvfs implements phase-level dynamic voltage and frequency
// scheduling on the simulated cluster — the technique the paper's
// introduction motivates: "energy savings are possible using a priori
// performance profiling to identify communication-bound phases in parallel
// codes and reduce power to the processors by applying DVFS to these
// phases", with reported savings above 30% at under 1% slowdown on
// communication-bound workloads.
//
// A Policy names the phases that are communication-bound and the gear to
// run them at; it installs itself as the MPI runtime's phase hook. The
// Compare harness quantifies the energy/time tradeoff against a
// fixed-frequency baseline.
package dvfs

import (
	"fmt"

	"pasp/internal/mpi"
	"pasp/internal/power"
	"pasp/internal/units"
)

// Policy is a static phase-to-gear schedule.
type Policy struct {
	// ComputeState is the gear for computation phases (typically the top
	// operating point).
	ComputeState power.PState
	// CommState is the gear for communication-bound phases (typically the
	// bottom operating point — the CPU only runs the protocol stack there).
	CommState power.PState
	// CommPhases lists the phase labels scheduled at CommState.
	CommPhases map[string]bool
	// SwitchSec is the gear-transition stall applied by the runtime.
	SwitchSec units.Seconds
}

// Validate reports an error for an unusable policy.
func (p Policy) Validate() error {
	if p.ComputeState.Freq <= 0 || p.CommState.Freq <= 0 {
		return fmt.Errorf("dvfs: zero-frequency state in policy")
	}
	if len(p.CommPhases) == 0 {
		return fmt.Errorf("dvfs: no communication phases named")
	}
	if p.SwitchSec < 0 {
		return fmt.Errorf("dvfs: negative switch time")
	}
	return nil
}

// Hook returns the phase hook implementing the policy.
func (p Policy) Hook() func(c *mpi.Ctx, phase string) {
	return func(c *mpi.Ctx, phase string) {
		if p.CommPhases[phase] {
			c.SetPState(p.CommState)
		} else {
			c.SetPState(p.ComputeState)
		}
	}
}

// Apply returns a copy of the world with the policy installed: ranks start
// at the compute gear and shift on phase boundaries.
func (p Policy) Apply(w mpi.World) (mpi.World, error) {
	if err := p.Validate(); err != nil {
		return mpi.World{}, err
	}
	w.State = p.ComputeState
	w.OnPhase = p.Hook()
	w.GearSwitchSec = p.SwitchSec
	return w, nil
}

// Comparison quantifies a policy against the all-top-gear baseline.
type Comparison struct {
	// BaselineSec/BaselineJoules are the fixed top-gear run's costs.
	BaselineSec    units.Seconds
	BaselineJoules units.Joules
	// ScheduledSec/ScheduledJoules are the policy run's costs.
	ScheduledSec    units.Seconds
	ScheduledJoules units.Joules
}

// EnergySavings returns the fractional energy saved by the policy.
func (c Comparison) EnergySavings() float64 {
	if c.BaselineJoules == 0 {
		return 0
	}
	//palint:ignore floatdiv -- guarded: BaselineJoules == 0 returns above
	return 1 - float64(c.ScheduledJoules)/float64(c.BaselineJoules)
}

// Slowdown returns the fractional execution-time increase of the policy.
func (c Comparison) Slowdown() float64 {
	if c.BaselineSec == 0 {
		return 0
	}
	//palint:ignore floatdiv -- guarded: BaselineSec == 0 returns above
	return float64(c.ScheduledSec)/float64(c.BaselineSec) - 1
}

// String summarizes the tradeoff.
func (c Comparison) String() string {
	return fmt.Sprintf("energy %.1f%% lower, execution time %.2f%% higher (%.2f s / %.0f J vs %.2f s / %.0f J)",
		c.EnergySavings()*100, c.Slowdown()*100,
		float64(c.ScheduledSec), float64(c.ScheduledJoules),
		float64(c.BaselineSec), float64(c.BaselineJoules))
}

// Compare runs the kernel twice on the given world — once pinned at the
// policy's compute gear, once under the policy — and reports the tradeoff.
func Compare(w mpi.World, p Policy, run func(w mpi.World) (*mpi.Result, error)) (Comparison, error) {
	if err := p.Validate(); err != nil {
		return Comparison{}, err
	}
	base := w
	base.State = p.ComputeState
	base.OnPhase = nil
	base.GearSwitchSec = 0
	baseRes, err := run(base)
	if err != nil {
		return Comparison{}, fmt.Errorf("dvfs: baseline: %w", err)
	}
	sched, err := p.Apply(w)
	if err != nil {
		return Comparison{}, err
	}
	schedRes, err := run(sched)
	if err != nil {
		return Comparison{}, fmt.Errorf("dvfs: scheduled: %w", err)
	}
	return Comparison{
		BaselineSec:     units.Seconds(baseRes.Seconds),
		BaselineJoules:  units.Joules(baseRes.Joules),
		ScheduledSec:    units.Seconds(schedRes.Seconds),
		ScheduledJoules: units.Joules(schedRes.Joules),
	}, nil
}

// FTPolicy returns the natural policy for the FT kernel on the given
// profile: compute at the top gear, the transpose alltoall and checksum
// reduction at the bottom gear.
func FTPolicy(prof power.Profile) Policy {
	return Policy{
		ComputeState: prof.TopState(),
		CommState:    prof.BaseState(),
		CommPhases: map[string]bool{
			"ft-alltoall": true,
			"ft-checksum": true,
		},
		SwitchSec: units.MicrosToSec(50),
	}
}

// LUPolicy returns the natural policy for the LU kernel: the wavefront
// exchange and ghost phases at the bottom gear.
func LUPolicy(prof power.Profile) Policy {
	return Policy{
		ComputeState: prof.TopState(),
		CommState:    prof.BaseState(),
		CommPhases: map[string]bool{
			"lu-lower-wave":  true,
			"lu-upper-wave":  true,
			"lu-lower-ghost": true,
			"lu-upper-ghost": true,
		},
		SwitchSec: units.MicrosToSec(50),
	}
}
