package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pasp/internal/obs"
)

// TestReportGolden pins the full text report over the seeded event log. The
// log covers every disposition (miss, hit, coalesced), a 5xx, a duplicate
// request ID and an event whose stages do not close — the golden proves the
// analyzer attributes each percentile to a named stage.
func TestReportGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "report.golden"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	n, err := run([]string{"-events", filepath.Join("testdata", "events.jsonl")}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("findings = %d without -slo or -strict, want 0", n)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("report drifted from golden:\n--- got ---\n%s--- want ---\n%s", out.Bytes(), want)
	}
}

// TestSLOBurn pins the objective evaluation: the seeded log's p99 is
// ~202ms with a 10% error rate, so a 100ms/1% SLO burns twice.
func TestSLOBurn(t *testing.T) {
	var out bytes.Buffer
	n, err := run([]string{
		"-events", filepath.Join("testdata", "events.jsonl"),
		"-slo", "p99=100ms,err_rate=0.01",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("findings = %d, want 2 (p99 and err_rate)\n%s", n, out.Bytes())
	}
	for _, want := range []string{"SLO BURN: p99", "SLO BURN: err_rate"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.Bytes())
		}
	}

	out.Reset()
	n, err = run([]string{
		"-events", filepath.Join("testdata", "events.jsonl"),
		"-slo", "p99=500ms,max=500ms,err_rate=0.5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("loose SLO burned %d times:\n%s", n, out.Bytes())
	}
}

// TestStrictFindings pins strict mode over the seeded log: one duplicate
// ID, one 5xx, one event whose stage sum misses its total by more than the
// budget.
func TestStrictFindings(t *testing.T) {
	var out bytes.Buffer
	n, err := run([]string{
		"-events", filepath.Join("testdata", "events.jsonl"), "-strict",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("strict findings = %d, want 3\n%s", n, out.Bytes())
	}
	for _, want := range []string{
		"request id(s) appear on more than one event",
		"answered 500: serve: boom",
		"stage sum",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("strict output missing %q:\n%s", want, out.Bytes())
		}
	}
}

// TestJSONReport checks the machine-readable mirror carries the same
// headline numbers.
func TestJSONReport(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{
		"-events", filepath.Join("testdata", "events.jsonl"), "-json",
	}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"events": 10`, `"requests_per_simulation": 2`, `"duplicate_ids": 1`,
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("JSON report missing %s:\n%s", want, out.Bytes())
		}
	}
}

// TestValidateTrace pins the trace check: a well-formed Chrome trace passes,
// a corrupt one is a finding (not an error — the tool still exits 1, not 2).
func TestValidateTrace(t *testing.T) {
	dir := t.TempDir()
	rec := obs.NewRecorder()
	id := rec.StartSpanAt(-1, "req:predict", 0, 0.1)
	rec.EndSpan(id, 0.2)
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, obs.SpansChromeTrace(rec.Spans(), "test"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	n, err := run([]string{"-validate-trace", good}, &out)
	if err != nil || n != 0 {
		t.Fatalf("valid trace: findings %d, err %v\n%s", n, err, out.Bytes())
	}
	if !strings.Contains(out.String(), "valid") {
		t.Errorf("output missing the verdict:\n%s", out.Bytes())
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"traceEvents": "nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	n, err = run([]string{"-validate-trace", bad}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !strings.Contains(out.String(), "TRACE INVALID") {
		t.Errorf("corrupt trace: findings %d, output:\n%s", n, out.Bytes())
	}
}

// TestRunInputErrors pins the exit-2 class: no inputs, a missing file, an
// empty log, a bad SLO.
func TestRunInputErrors(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{},
		{"-events", "does-not-exist.jsonl"},
		{"-events", empty},
		{"-events", filepath.Join("testdata", "events.jsonl"), "-slo", "p99=banana"},
		{"-events", filepath.Join("testdata", "events.jsonl"), "-slo", "p42=1s"},
	} {
		var out bytes.Buffer
		if _, err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want an error", args)
		}
	}
}

// TestParseSLO pins the flag grammar.
func TestParseSLO(t *testing.T) {
	obj, err := parseSLO("p50=10ms, p99=500ms,max=2s,err_rate=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if obj.p50 != 10*time.Millisecond || obj.p99 != 500*time.Millisecond ||
		obj.max != 2*time.Second || !obj.hasErrRate || obj.errRate != 0.01 {
		t.Errorf("parsed %+v", obj)
	}
	for _, bad := range []string{"p99", "p99=-1ms", "err_rate=2", "err_rate=x", "zzz=1s"} {
		if _, err := parseSLO(bad); err == nil {
			t.Errorf("parseSLO(%q) succeeded, want an error", bad)
		}
	}
	if obj, err := parseSLO(""); err != nil || obj != (slo{}) {
		t.Errorf("empty slo = %+v, %v", obj, err)
	}
}
