package serve

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"pasp/internal/obs"
	"pasp/internal/units"
)

// Per-request telemetry: every request gets an ID (inbound X-Request-ID or
// server-generated) that travels by context through the store into the
// sweep; when the server is built with an event log or a trace recorder,
// each request additionally carries a reqTrack that accumulates the
// stage-by-stage timing breakdown the wide event reports. With both
// disabled the per-request cost is the ID itself — no track allocation, no
// spans — which TestServeDisabledTelemetryAllocs pins.

// stageKind indexes the wide event's stage fields in pipeline order.
type stageKind int

const (
	stageDecode stageKind = iota
	stagePeek
	stageAdmission
	stageCoalesce
	stageSweep
	stageFit
	stageEncode
)

// requestTracks is how many exporter tracks concurrent request spans are
// spread across, so overlapping requests render side by side in Perfetto
// instead of stacking into false nesting.
const requestTracks = 8

// reqTrack accumulates one request's wide event while the handler runs. It
// is confined to the handler goroutine; nil methods no-op so handler code
// stays unconditional.
type reqTrack struct {
	ev     obs.Event
	start  time.Time
	last   time.Time
	spanID int
}

// stage returns the event field backing kind.
func (t *reqTrack) stage(kind stageKind) *float64 {
	switch kind {
	case stageDecode:
		return &t.ev.DecodeS
	case stagePeek:
		return &t.ev.PeekS
	case stageAdmission:
		return &t.ev.AdmissionS
	case stageCoalesce:
		return &t.ev.CoalesceS
	case stageSweep:
		return &t.ev.SweepS
	case stageFit:
		return &t.ev.FitS
	default:
		return &t.ev.EncodeS
	}
}

// lap charges the time since the previous lap to kind and restarts the
// stopwatch — the consecutive-stamp discipline that makes the stages tile
// the request.
func (t *reqTrack) lap(kind stageKind) {
	if t == nil {
		return
	}
	now := time.Now() //palint:ignore detsource -- stage timing is host time, not virtual time
	*t.stage(kind) += now.Sub(t.last).Seconds()
	t.last = now
}

// addStage charges an externally measured duration to kind and advances the
// stopwatch by exactly that amount; any skew lands in the next lap (and
// ultimately OtherS) rather than being counted twice.
func (t *reqTrack) addStage(kind stageKind, d time.Duration) {
	if t == nil {
		return
	}
	*t.stage(kind) += d.Seconds()
	t.last = t.last.Add(d)
}

// setCache records the campaign disposition and, for coalesced requests,
// the leader whose simulation was shared.
func (t *reqTrack) setCache(disposition, leader string) {
	if t == nil {
		return
	}
	t.ev.Cache = disposition
	t.ev.Leader = leader
}

// setConfig records the asked-for kernel configuration.
func (t *reqTrack) setConfig(kernel string, n int, mhz float64) {
	if t == nil {
		return
	}
	t.ev.Kernel, t.ev.N, t.ev.MHz = kernel, n, mhz
}

// trackKey is the context key carrying the request's reqTrack.
type trackKey struct{}

// withTrack returns a context carrying t.
func withTrack(ctx context.Context, t *reqTrack) context.Context {
	return context.WithValue(ctx, trackKey{}, t)
}

// trackFrom returns the context's reqTrack, or nil when telemetry is off.
func trackFrom(ctx context.Context) *reqTrack {
	t, _ := ctx.Value(trackKey{}).(*reqTrack)
	return t
}

// hexID renders v as the 16-hex-digit request ID format.
func hexID(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// validRequestID accepts inbound IDs that are short, non-empty and visible
// ASCII — anything else is replaced, so logs and headers stay clean no
// matter what the client sends.
func validRequestID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if c := id[i]; c <= ' ' || c >= 0x7f {
			return false
		}
	}
	return true
}

// requestID returns the request's ID: the inbound X-Request-ID when it is
// well-formed, else a fresh splitmix64-derived one. IDs from the counter
// stream are unique per server and cheap (no entropy syscall per request).
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); validRequestID(id) {
		return id
	}
	return hexID(splitmix64(s.idSeed ^ s.idSeq.Add(1)))
}

// flightBuckets is the bucket layout for the simulation flight-duration
// histogram backing the adaptive Retry-After hint. Finer than
// obs.SecondsBuckets around human-scale waits, because the hint is the
// ceiling of a bucket bound.
var flightBuckets = []float64{0.05, 0.1, 0.25, 0.5, 1, 2, 5, 10, 30, 60, 120, 300}

// retryAfterHint derives the 429 Retry-After value from the median of
// recently led flight durations — how long a slot actually stays busy —
// falling back to the configured value until the server has led a flight.
func (s *Server) retryAfterHint() string {
	q, ok := s.flights.Quantile(0.5)
	if !ok || math.IsInf(q, 1) {
		return s.retryAfter
	}
	sec := int(math.Ceil(q))
	if sec < 1 {
		sec = 1
	}
	if sec > 600 {
		sec = 600
	}
	return strconv.Itoa(sec)
}

// finishRequest completes the request's telemetry once the handler has
// returned: the wide event's outcome and book-closing OtherS, and the end
// of the request span. No-op when telemetry is disabled (t is nil).
func (s *Server) finishRequest(t *reqTrack, sw *statusWriter, elapsed time.Duration) {
	if t == nil {
		return
	}
	t.ev.Status = sw.code
	if t.ev.Status == 0 {
		// The handler wrote neither header nor body (an empty 200).
		t.ev.Status = http.StatusOK
	}
	t.ev.Err = sw.errMsg
	t.ev.TotalS = elapsed.Seconds()
	if rest := t.ev.TotalS - t.ev.StageSum(); rest > 0 {
		t.ev.OtherS = rest
	}
	s.events.Record(t.ev)
	if s.trace != nil && t.spanID >= 0 {
		s.trace.EndSpan(t.spanID, t.start.Sub(s.epoch).Seconds()+t.ev.TotalS)
		attrs := []obs.Attr{obs.F("status", float64(t.ev.Status))}
		if t.ev.Cache != "" {
			attrs = append(attrs, obs.A("cache", t.ev.Cache))
		}
		s.trace.AddSpanAttrs(t.spanID, attrs...)
	}
}

// handleDebugRequests answers GET /debug/requests: the last K wide events
// from the ring, newest last — as human-readable text, or the canonical
// JSON lines with ?format=json. 404 when the server runs without an event
// log, mirroring how /metrics treats a missing registry section: absent,
// not empty.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if s.events == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("serve: the server runs without an event log (start with -events or -ring)"))
		return
	}
	events := s.events.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		buf := make([]byte, 0, 256*len(events)+2)
		buf = append(buf, '[')
		for i := range events {
			if i > 0 {
				buf = append(buf, ',', '\n')
			}
			buf = events[i].AppendJSON(buf)
		}
		buf = append(buf, ']', '\n')
		w.Write(buf)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "%d events retained (%d total)\n", len(events), s.events.Total())
	for i := range events {
		e := &events[i]
		stage, frac := e.Dominant()
		fmt.Fprintf(w, "seq=%d id=%s target=%s status=%d", e.Seq, e.ID, e.Target, e.Status)
		if e.Cache != "" {
			fmt.Fprintf(w, " cache=%s", e.Cache)
		}
		if e.Leader != "" {
			fmt.Fprintf(w, " leader=%s", e.Leader)
		}
		fmt.Fprintf(w, " total=%.3fms dominant=%s(%.0f%%)", e.TotalS*1e3, stage, frac*100)
		if e.Err != "" {
			fmt.Fprintf(w, " err=%q", e.Err)
		}
		fmt.Fprintln(w)
	}
}

// runtimeGauges refreshes the Go runtime section of the registry — the
// live-introspection counterpart to the wide events, scraped on every
// /metrics hit rather than sampled on a timer.
func (s *Server) runtimeGauges() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.Gauge("go.goroutines").Set(float64(runtime.NumGoroutine()))
	s.reg.Gauge("go.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	s.reg.Gauge("go.heap_objects").Set(float64(ms.HeapObjects))
	s.reg.Gauge("go.gc_cycles").Set(float64(ms.NumGC))
	s.reg.Gauge("go.gc_pause_total_seconds").Set(float64(units.NanosToSec(units.Nanos(ms.PauseTotalNs))))
	s.reg.Gauge("serve.uptime_seconds").Set(time.Since(s.epoch).Seconds()) //palint:ignore detsource -- uptime is host time by definition
}
