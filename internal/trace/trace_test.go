package trace

import (
	"strings"
	"testing"
)

func TestAppendAndTotals(t *testing.T) {
	var l Log
	l.Append(Event{Rank: 0, Phase: "fft", Kind: Compute, Start: 0, End: 2})
	l.Append(Event{Rank: 0, Phase: "alltoall", Kind: Comm, Start: 2, End: 5})
	l.Append(Event{Rank: 0, Phase: "fft", Kind: Compute, Start: 5, End: 6})
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	tot := l.TotalByKind()
	if tot[Compute] != 3 || tot[Comm] != 3 {
		t.Errorf("totals = %v, want [3 3]", tot)
	}
	by := l.ByPhase()
	if by["fft"] != 3 || by["alltoall"] != 3 {
		t.Errorf("ByPhase = %v", by)
	}
}

func TestValidate(t *testing.T) {
	var ok Log
	ok.Append(Event{Rank: 0, Start: 0, End: 1})
	ok.Append(Event{Rank: 0, Start: 1, End: 1}) // zero duration is fine
	ok.Append(Event{Rank: 1, Start: 0, End: 5}) // other rank independent
	if err := ok.Validate(); err != nil {
		t.Errorf("valid log rejected: %v", err)
	}

	var neg Log
	neg.Append(Event{Rank: 0, Start: 2, End: 1})
	if err := neg.Validate(); err == nil {
		t.Error("negative duration accepted")
	}

	var back Log
	back.Append(Event{Rank: 0, Start: 0, End: 3})
	back.Append(Event{Rank: 0, Start: 1, End: 4})
	if err := back.Validate(); err == nil {
		t.Error("backwards event accepted")
	}
}

func TestMergeOrdersByRankThenTime(t *testing.T) {
	var a, b Log
	a.Append(Event{Rank: 1, Start: 0, End: 1})
	b.Append(Event{Rank: 0, Start: 5, End: 6})
	b.Append(Event{Rank: 0, Start: 0, End: 2})
	m := Merge(&a, &b)
	ev := m.Events()
	if len(ev) != 3 {
		t.Fatalf("merged %d events, want 3", len(ev))
	}
	if ev[0].Rank != 0 || ev[0].Start != 0 || ev[1].Start != 5 || ev[2].Rank != 1 {
		t.Errorf("merge order wrong: %+v", ev)
	}
}

func TestRankSpan(t *testing.T) {
	var l Log
	l.Append(Event{Rank: 2, Start: 1, End: 3})
	l.Append(Event{Rank: 2, Start: 3, End: 7})
	s, e := l.RankSpan(2)
	if s != 1 || e != 7 {
		t.Errorf("span = (%g,%g), want (1,7)", s, e)
	}
	s, e = l.RankSpan(9)
	if s != 0 || e != 0 {
		t.Errorf("missing rank span = (%g,%g), want (0,0)", s, e)
	}
}

func TestSummaryDescending(t *testing.T) {
	var l Log
	l.Append(Event{Phase: "small", Kind: Compute, Start: 0, End: 1})
	l.Append(Event{Phase: "big", Kind: Comm, Start: 1, End: 10})
	sum := l.Summary()
	if strings.Index(sum, "big") > strings.Index(sum, "small") {
		t.Errorf("summary not sorted by descending time:\n%s", sum)
	}
}

func TestKindString(t *testing.T) {
	if Compute.String() != "compute" || Comm.String() != "comm" {
		t.Error("kind names wrong")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestTimelineCSV(t *testing.T) {
	var l Log
	l.Append(Event{Rank: 1, Phase: "b", Kind: Comm, Start: 2, End: 3})
	l.Append(Event{Rank: 0, Phase: "a", Kind: Compute, Start: 0, End: 2})
	csv := l.TimelineCSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), csv)
	}
	if lines[0] != "rank,phase,kind,start,end,duration,watts" {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,a,compute,") {
		t.Errorf("rows not ordered by rank: %q", lines[1])
	}
	if !strings.Contains(lines[2], "1,b,comm,") {
		t.Errorf("row 2: %q", lines[2])
	}
}

func TestUtilization(t *testing.T) {
	var l Log
	l.Append(Event{Rank: 0, Kind: Compute, Start: 0, End: 3})
	l.Append(Event{Rank: 0, Kind: Comm, Start: 3, End: 4})
	l.Append(Event{Rank: 1, Kind: Compute, Start: 0, End: 1})
	u := l.Utilization()
	if u[0] != 0.75 || u[1] != 0.25 {
		t.Errorf("utilization = %v, want 0.75/0.25", u)
	}
	var empty Log
	if len(empty.Utilization()) != 0 {
		t.Error("empty log should have no utilization entries")
	}
}

func TestCriticalPhase(t *testing.T) {
	var l Log
	l.Append(Event{Phase: "small", Start: 0, End: 1})
	l.Append(Event{Phase: "big", Start: 1, End: 4})
	p, share := l.CriticalPhase()
	if p != "big" || share != 0.75 {
		t.Errorf("critical = %q %g, want big 0.75", p, share)
	}
	var empty Log
	if p, s := empty.CriticalPhase(); p != "" || s != 0 {
		t.Error("empty log critical phase wrong")
	}
}

func TestPowerProfile(t *testing.T) {
	var l Log
	// Rank 0: 100 W for [0,1), 40 W for [1,2). Rank 1: 60 W for [0,2).
	l.Append(Event{Rank: 0, Kind: Compute, Start: 0, End: 1, Watts: 100})
	l.Append(Event{Rank: 0, Kind: Comm, Start: 1, End: 2, Watts: 40})
	l.Append(Event{Rank: 1, Kind: Compute, Start: 0, End: 2, Watts: 60})
	p := l.PowerProfile(0.5, 2)
	if len(p) < 4 {
		t.Fatalf("got %d samples", len(p))
	}
	if p[0] != 160 || p[1] != 160 {
		t.Errorf("first second = %g/%g W, want 160", p[0], p[1])
	}
	if p[2] != 100 || p[3] != 100 {
		t.Errorf("second second = %g/%g W, want 100", p[2], p[3])
	}
	if l.PowerProfile(0, 2) != nil || l.PowerProfile(0.5, 0) != nil {
		t.Error("degenerate arguments should yield nil")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Errorf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	for _, bad := range []string{"", "Compute", "comms", "Kind(7)"} {
		if _, err := ParseKind(bad); err == nil {
			t.Errorf("ParseKind(%q) accepted an unknown name", bad)
		}
	}
}

func TestParseTimelineCSVRoundTrip(t *testing.T) {
	l := &Log{}
	l.Append(Event{Rank: 0, Phase: "init", Kind: Compute, Start: 0, End: 1.25, Watts: 41.5})
	l.Append(Event{Rank: 0, Phase: "exchange", Kind: Comm, Start: 1.25, End: 2, Watts: 40})
	l.Append(Event{Rank: 1, Phase: "exchange", Kind: Fault, Start: 0.5, End: 0.75, Watts: 40})
	csv := l.TimelineCSV()
	back, err := ParseTimelineCSV(csv)
	if err != nil {
		t.Fatalf("ParseTimelineCSV: %v", err)
	}
	if back.TimelineCSV() != csv {
		t.Errorf("round-trip changed the CSV:\n%s\nvs\n%s", back.TimelineCSV(), csv)
	}
}

func TestParseTimelineCSVRejectsMalformedRows(t *testing.T) {
	header := "rank,phase,kind,start,end,duration,watts\n"
	cases := map[string]string{
		"missing header": "0,init,compute,0,1,1,40\n",
		"short row":      header + "0,init,compute,0,1\n",
		"bad kind":       header + "0,init,COMPUTE,0.000000000,1.000000000,1.000000000,40.00\n",
		"bad rank":       header + "x,init,compute,0.000000000,1.000000000,1.000000000,40.00\n",
		"bad float":      header + "0,init,compute,zero,1.000000000,1.000000000,40.00\n",
		"bad duration":   header + "0,init,compute,0.000000000,1.000000000,0.500000000,40.00\n",
	}
	for name, csv := range cases {
		if _, err := ParseTimelineCSV(csv); err == nil {
			t.Errorf("%s: parsed, want error", name)
		}
	}
}
