// Package atomicmix seeds mixed-synchronization violations: plain reads
// and writes of an atomically-updated field, a copied atomic wrapper, a
// mutex-guarded field touched without the lock, and an unexported helper
// reachable from a lock-free caller — next to the clean disciplines
// (wrapper method calls, lock-holding accessors, a helper reached only
// from lock holders).
package atomicmix

import (
	"sync"
	"sync/atomic"
)

type stats struct {
	mu    sync.Mutex
	hits  uint64        // updated via atomic.AddUint64 in Add
	gauge atomic.Uint64 // wrapper type: methods or address only
	m     map[string]int
	total int
}

func (s *stats) Add() {
	atomic.AddUint64(&s.hits, 1)
}

func (s *stats) Peek() uint64 {
	return s.hits // want: plain read of an atomically-updated field
}

func (s *stats) Reset() {
	s.hits = 0 // want: plain write of an atomically-updated field
}

func (s *stats) CopyGauge() atomic.Uint64 {
	return s.gauge // want: copies the atomic wrapper
}

func (s *stats) ReadGauge() uint64 { // clean: method call on the wrapper
	return s.gauge.Load()
}

func (s *stats) Set(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[k] = v
	s.total += v
}

func (s *stats) Get(k string) int {
	return s.m[k] // want: mutex-guarded field read without the lock
}

func (s *stats) Total() int { // clean: holds the lock
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// flush touches guarded state; Drop reaches it without the lock, so the
// interprocedural exemption does not apply.
func (s *stats) flush() {
	s.m["flushed"] = 1 // want: guarded field, not every caller holds the lock
}

func (s *stats) Sync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flush()
}

func (s *stats) Drop() {
	s.flush()
}

type lockedOnly struct {
	mu sync.Mutex
	n  int
}

// bump is reached only from lock holders: exempt interprocedurally.
func (l *lockedOnly) bump() {
	l.n++ // clean: every caller holds l.mu
}

func (l *lockedOnly) Inc() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.n++
	l.bump()
}
