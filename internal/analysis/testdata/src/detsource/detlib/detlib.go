// Package detlib is the out-of-reporting-set dependency for the detsource
// golden tests: callers in the detsource package inherit (or do not
// inherit, when sanctioned) these helpers' nondeterminism facts.
package detlib

import (
	"fmt"
	"time"
)

// Stamp reads the wall clock; callers inherit the taint with a witness
// chain pointing here.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// SanctionedStamp also reads the wall clock, but the suppression on the
// read vouches for it — callers stay clean.
func SanctionedStamp() int64 {
	return time.Now().UnixNano() //palint:ignore detsource -- seeded testdata: the callee vouches for this read, callers must stay clean
}

// Fingerprint forwards its argument to a %+v verb; callers passing
// pointer-bearing values are flagged at their call site.
func Fingerprint(v any) string {
	return fmt.Sprintf("%+v", v)
}
