// Package droppederr seeds violations and non-violations for the
// droppederr analyzer's golden test.
package droppederr

type model struct{}

func (model) Speedup(n int, r float64) (float64, error) { return float64(n) * r, nil }
func (model) Time(n int, r float64) (float64, error)    { return 1, nil }
func (model) Validate() error                           { return nil }

// FitSP mimics the model-API Fit* family.
func FitSP(x float64) (float64, error) { return x, nil }

// helper is NOT part of the model API surface; discarding its error is out
// of scope for this domain lint (a general errcheck would catch it).
func helper() error { return nil }

// Bad drops model-API errors three ways.
func Bad() float64 {
	var m model
	m.Validate()            // seeded violation 1: whole result discarded
	v, _ := m.Speedup(2, 1) // seeded violation 2: error assigned to _
	FitSP(1)                // seeded violation 3: Fit* prefix discarded
	return v
}

// Good checks every error.
func Good() (float64, error) {
	var m model
	if err := m.Validate(); err != nil {
		return 0, err
	}
	v, err := m.Speedup(2, 1)
	if err != nil {
		return 0, err
	}
	if _, err := m.Time(2, 1); err != nil {
		return 0, err
	}
	return v, nil
}

// GoodOutOfScope discards a non-model error: not this analyzer's business.
func GoodOutOfScope() {
	helper()
	_ = helper()
}
