package obs

import (
	"context"
	"math"
	"testing"
)

// TestHistogramQuantile pins the bucket-walk semantics the adaptive
// Retry-After hint relies on: empty histograms report not-ok, observed
// values report the covering bucket's upper bound, overflow reports +Inf.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{1, 2, 4})
	if _, ok := h.Quantile(0.5); ok {
		t.Fatal("empty histogram reported a quantile")
	}
	for _, v := range []float64{0.5, 1.5, 1.5, 3} {
		h.Observe(v)
	}
	if q, ok := h.Quantile(0.5); !ok || q != 2 {
		t.Errorf("p50 = %g (ok=%v), want 2", q, ok)
	}
	if q, ok := h.Quantile(0.01); !ok || q != 1 {
		t.Errorf("p1 = %g (ok=%v), want 1", q, ok)
	}
	if q, ok := h.Quantile(1); !ok || q != 4 {
		t.Errorf("p100 = %g (ok=%v), want 4", q, ok)
	}
	h.Observe(100)
	if q, ok := h.Quantile(1); !ok || !math.IsInf(q, 1) {
		t.Errorf("p100 with overflow = %g (ok=%v), want +Inf", q, ok)
	}
}

// TestNestSpans pins the cross-clock rebasing: a virtual-clock child
// starting before its wall-clock parent is shifted to the parent's start,
// and the shift propagates to the child's own descendants; unrelated and
// already-nested spans are untouched, as is the input slice.
func TestNestSpans(t *testing.T) {
	spans := []Span{
		{ID: 0, Parent: -1, Name: "req:predict", Start: 10, End: 12},
		{ID: 1, Parent: 0, Name: "campaign:ft", Start: 0, End: 3},
		{ID: 2, Parent: 1, Name: "run", Start: 1, End: 2},
		{ID: 3, Parent: -1, Name: "req:healthz", Start: 11, End: 11.5},
		{ID: 4, Parent: 0, Name: "already-inside", Start: 10.5, End: 11},
	}
	orig := append([]Span(nil), spans...)
	out := NestSpans(spans)
	for i := range spans {
		//palint:ignore floateq -- asserting the input is untouched, bit for bit
		if spans[i].Start != orig[i].Start || spans[i].End != orig[i].End {
			t.Fatalf("NestSpans mutated its input at %d", i)
		}
	}
	want := []struct{ start, end float64 }{
		{10, 12},   // root request unchanged
		{10, 13},   // campaign shifted to the request's start
		{11, 12},   // grandchild carries the parent's shift
		{11, 11.5}, // unrelated root unchanged
		{10.5, 11}, // child already inside its parent: no shift
	}
	for i, w := range want {
		//palint:ignore floateq -- the shifts are exact float additions of exact inputs
		if out[i].Start != w.start || out[i].End != w.end {
			t.Errorf("span %d (%s) = [%g, %g], want [%g, %g]",
				i, out[i].Name, out[i].Start, out[i].End, w.start, w.end)
		}
	}
}

// TestRequestContextHelpers pins the context round-trips and their
// defaults.
func TestRequestContextHelpers(t *testing.T) {
	ctx := context.Background()
	if id := RequestIDFrom(ctx); id != "" {
		t.Errorf("empty context has request ID %q", id)
	}
	if p := SpanParentFrom(ctx); p != -1 {
		t.Errorf("empty context has span parent %d, want -1", p)
	}
	if fi := FlightInfoFrom(ctx); fi != nil {
		t.Errorf("empty context has flight info %v", fi)
	}
	var fi FlightInfo
	ctx = WithFlightInfo(WithSpanParent(WithRequestID(ctx, "req-1"), 7), &fi)
	if id := RequestIDFrom(ctx); id != "req-1" {
		t.Errorf("request ID = %q, want req-1", id)
	}
	if p := SpanParentFrom(ctx); p != 7 {
		t.Errorf("span parent = %d, want 7", p)
	}
	if got := FlightInfoFrom(ctx); got != &fi {
		t.Error("flight info did not round-trip")
	}
}

// TestStartSpanAtAndAddSpanAttrs pins the explicit-track span API the
// serving layer uses for request spans.
func TestStartSpanAtAndAddSpanAttrs(t *testing.T) {
	r := NewRecorder()
	id := r.StartSpanAt(-1, "req:predict", 3, 1.5, A("request_id", "r1"))
	r.AddSpanAttrs(id, F("status", 200))
	r.AddSpanAttrs(999) // unknown IDs are ignored
	r.EndSpan(id, 2.5)
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Rank != 3 || s.Start != 1.5 || s.End != 2.5 {
		t.Errorf("span = rank %d [%g, %g], want rank 3 [1.5, 2.5]", s.Rank, s.Start, s.End)
	}
	if len(s.Attrs) != 2 || s.Attrs[1].Key != "status" || s.Attrs[1].Value != "200" {
		t.Errorf("attrs = %v, want request_id + status", s.Attrs)
	}
}
