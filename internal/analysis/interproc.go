package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the whole-package, interprocedural layer under the v3 passes
// (detsource, ownfree, atomicmix, hotalloc). The per-file analyzers from v1
// walk one AST at a time; the Program built here additionally indexes every
// function declaration across the loaded packages *and their module-internal
// dependencies*, resolves static call edges between them, and memoizes
// per-function facts (nondeterminism taint, fmt-verb forwarding, allocation
// behaviour, payload-ownership transfer) that the passes propagate through
// calls. DESIGN §11 documents the fact model and its soundness limits.

// hotpathDirective tags a function whose body must stay allocation-free:
//
//	//palint:hotpath
//
// in the function's doc comment. The hotalloc pass audits tagged functions.
const hotpathDirective = "palint:hotpath"

// FuncInfo is one function or method declaration known to the Program.
type FuncInfo struct {
	// Obj is the type-checker's object for the declaration.
	Obj *types.Func
	// Decl carries the body the facts are computed from.
	Decl *ast.FuncDecl
	// Pkg is the declaring package.
	Pkg *Package
	// Hotpath is true when the doc comment carries //palint:hotpath.
	Hotpath bool

	// calls are the statically resolved call edges out of the body, in
	// source order (the order makes fact witnesses deterministic).
	calls []callSite
}

// callSite is one resolved call edge.
type callSite struct {
	call   *ast.CallExpr
	callee *types.Func
}

// Program is the whole-program context shared by every interprocedural
// pass of one Run call. Facts are memoized per function, so the four v3
// passes share one call graph and one fact computation.
type Program struct {
	// pkgs is the reporting set (the packages named on the command line).
	pkgs []*Package
	// all additionally holds module-internal dependency packages: their
	// sources are parsed and type-checked by the loader anyway, so facts
	// see through calls into packages outside the reporting set.
	all []*Package
	// inReport marks the packages diagnostics may be attached to.
	inReport map[*Package]bool

	fset  *token.FileSet
	funcs map[*types.Func]*FuncInfo
	// suppress indexes //palint:ignore directives across all packages, so
	// fact computation can honour suppressed-at-callee sanctions.
	suppress map[string]map[int][]suppression

	// Memoized fact tables, filled lazily by the passes.
	nondet     map[*types.Func]map[taintKind]string
	nondetBusy map[*types.Func]bool
	fmtParams  map[*types.Func]map[int]bool
	fmtBusy    map[*types.Func]bool
	allocs     map[*types.Func]*allocFact
	allocBusy  map[*types.Func]bool
	frees      map[*types.Func]map[int]bool
	freesBusy  map[*types.Func]bool
	owned      map[*types.Func]*ownedFact
	ownedBusy  map[*types.Func]bool

	// atomicmix's program-wide gather (which fields are touched by
	// sync/atomic calls, and which selector nodes ARE those calls), done
	// once and shared by every reported package.
	atomicGathered bool
	atomicFields   map[types.Object]bool
	atomicAllowed  map[ast.Node]bool

	// commcheck substrate (comm.go): per-function call maps, rank taint,
	// symbolic renderers, transitive communication facts and guarded
	// operation trees, shared by commshape, phasebal, deadlock and the
	// -skeleton emitter.
	commCallMaps    map[*types.Func]map[*ast.CallExpr]*types.Func
	commTaints      map[*types.Func]map[types.Object]bool
	commRankRet     map[*types.Func]bool
	commRankRetBusy map[*types.Func]bool
	commRenders     map[*types.Func]*renderEnv
	commFacts       map[*types.Func]*commFact
	commFactBusy    map[*types.Func]bool
	commTrees       map[*types.Func][]*opNode
	commCalled      map[*types.Func]bool
	// commDeadlockSeen deduplicates deadlock reports program-wide:
	// multiple roots expand to the same underlying operations.
	commDeadlockSeen map[string]bool

	// rank-identity field gather: struct fields assigned rank-derived
	// values anywhere in the program, done once like atomicFields.
	rankFieldsGathered bool
	rankFields         map[types.Object]bool
}

// newProgram indexes the packages (and their module-internal dependencies)
// into a call graph. It is cheap relative to type checking: one AST walk per
// function to resolve call edges and directives.
func newProgram(pkgs []*Package) *Program {
	prog := &Program{
		pkgs:       pkgs,
		inReport:   map[*Package]bool{},
		funcs:      map[*types.Func]*FuncInfo{},
		nondet:     map[*types.Func]map[taintKind]string{},
		nondetBusy: map[*types.Func]bool{},
		fmtParams:  map[*types.Func]map[int]bool{},
		fmtBusy:    map[*types.Func]bool{},
		allocs:     map[*types.Func]*allocFact{},
		allocBusy:  map[*types.Func]bool{},
		frees:      map[*types.Func]map[int]bool{},
		freesBusy:  map[*types.Func]bool{},
		owned:      map[*types.Func]*ownedFact{},
		ownedBusy:  map[*types.Func]bool{},

		commCallMaps:    map[*types.Func]map[*ast.CallExpr]*types.Func{},
		commTaints:      map[*types.Func]map[types.Object]bool{},
		commRankRet:     map[*types.Func]bool{},
		commRankRetBusy: map[*types.Func]bool{},
		commRenders:     map[*types.Func]*renderEnv{},
		commFacts:       map[*types.Func]*commFact{},
		commFactBusy:    map[*types.Func]bool{},
		commTrees:       map[*types.Func][]*opNode{},
	}
	seen := map[string]*Package{}
	for _, p := range pkgs {
		prog.inReport[p] = true
		seen[p.Path] = p
		if prog.fset == nil {
			prog.fset = p.Fset
		}
	}
	for _, p := range pkgs {
		for path, dep := range p.deps {
			if dep != nil && seen[path] == nil && dep.Fset == prog.fset {
				seen[path] = dep
			}
		}
	}
	paths := make([]string, 0, len(seen))
	for path := range seen {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		prog.all = append(prog.all, seen[path])
	}
	prog.suppress = buildSuppressionIndex(prog.all)
	for _, p := range prog.all {
		prog.indexPackage(p)
	}
	return prog
}

// indexPackage registers every function declaration of one package and
// resolves its outgoing call edges.
func (prog *Program) indexPackage(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg, Hotpath: hasHotpathTag(fd)}
			bindings := funcValueBindings(pkg, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := resolveCallee(pkg, bindings, call); callee != nil {
					info.calls = append(info.calls, callSite{call: call, callee: callee})
				}
				return true
			})
			prog.funcs[obj] = info
		}
	}
}

// hasHotpathTag reports whether the declaration's doc comment carries the
// //palint:hotpath directive.
func hasHotpathTag(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == hotpathDirective || strings.HasPrefix(text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// funcValueBindings maps local variables assigned exactly once from a named
// function or method value ("f := time.Now; f()") to that function, so call
// resolution sees through the method-value indirection. A variable assigned
// more than once, or from a non-function expression, resolves to nothing.
func funcValueBindings(pkg *Package, fd *ast.FuncDecl) map[types.Object]*types.Func {
	bindings := map[types.Object]*types.Func{}
	poisoned := map[types.Object]bool{}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if _, dup := bindings[obj]; dup || poisoned[obj] {
			delete(bindings, obj)
			poisoned[obj] = true
			return
		}
		if fn := funcValueOf(pkg, rhs); fn != nil {
			bindings[obj] = fn
		} else {
			poisoned[obj] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i := range asg.Lhs {
			bind(asg.Lhs[i], asg.Rhs[i])
		}
		return true
	})
	return bindings
}

// funcValueOf resolves an expression to the named function it denotes
// ("time.Now", "c.Recv" as a method value), or nil.
func funcValueOf(pkg *Package, e ast.Expr) *types.Func {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[x].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := pkg.Info.Uses[x.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// resolveCallee maps a call expression to the static *types.Func it invokes:
// a plain function, a method (through the selection), a package-qualified
// function, or a local variable bound to a method value. Dynamic calls
// (interface methods, arbitrary func-typed expressions) resolve to nil and
// are invisible to fact propagation — a documented soundness limit.
func resolveCallee(pkg *Package, bindings map[types.Object]*types.Func, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fn].(type) {
		case *types.Func:
			return obj
		case *types.Var:
			return bindings[obj]
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fn]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				// Interface method calls have no static body to look at.
				if isInterfaceRecv(f) {
					return nil
				}
				return f
			}
			return nil
		}
		if f, ok := pkg.Info.Uses[fn.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isInterfaceRecv reports whether f is declared on an interface type.
func isInterfaceRecv(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// funcOf returns the FuncInfo for a callee, or nil when its body is outside
// the loaded program (standard library, dynamic call).
func (prog *Program) funcOf(f *types.Func) *FuncInfo {
	if f == nil {
		return nil
	}
	return prog.funcs[f]
}

// sanctioned reports whether the line holding pos carries a //palint:ignore
// directive for the named analyzer. Fact computation uses it so that a
// suppression at the callee sanctions the behaviour for every caller: the
// author of the suppressed line vouched for it, and re-flagging each caller
// would make the escape hatch useless.
func (prog *Program) sanctioned(analyzer string, pos token.Pos) bool {
	position := prog.fset.Position(pos)
	byLine := prog.suppress[position.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, s := range byLine[line] {
			if s.matches(analyzer) {
				return true
			}
		}
	}
	return false
}

// stdFuncKey renders a standard-library function as "path.Name"
// ("time.Now", "os.Getenv") for table lookups.
func stdFuncKey(f *types.Func) string {
	if f.Pkg() == nil {
		return f.Name()
	}
	return f.Pkg().Path() + "." + f.Name()
}

// shortFuncName renders a function compactly for witness chains:
// "mpi.(*Ctx).Recv", "obs.Fingerprint", "helper".
func shortFuncName(f *types.Func) string {
	name := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		ptr := ""
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			ptr = "*"
		}
		if named, ok := recv.(*types.Named); ok {
			name = "(" + ptr + named.Obj().Name() + ")." + name
		}
	}
	if f.Pkg() != nil {
		path := f.Pkg().Path()
		if i := strings.LastIndex(path, "/"); i >= 0 {
			path = path[i+1:]
		}
		return path + "." + name
	}
	return name
}

// eachReportedFunc runs fn over every declared function of the pass's
// package, in file and source order — the iteration every v3 pass starts
// from.
func eachReportedFunc(pass *Pass, fn func(info *FuncInfo)) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if info := prog.funcs[obj]; info != nil {
				fn(info)
			}
		}
	}
}
