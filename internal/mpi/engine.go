package mpi

import (
	"errors"
	"fmt"
)

// This file is the discrete-event engine: the alternative runtime selected
// by World{Engine: EngineEvent}.
//
// The goroutine engine simulates virtual time with real concurrency — every
// rank is a goroutine and every message queue a channel, so the Go scheduler
// burns wall-clock time context-switching through rendezvous that are pure
// arithmetic in the model. The event engine removes the scheduler from the
// hot path: ranks still run as goroutines (they are the cheapest coroutine
// Go offers), but exactly one is ever runnable. A single execution token is
// handed from rank to rank; a rank that would block parks itself and pops
// the next runnable rank from an indexed min-heap ordered by
// (virtual clock, rank). The chain of token hand-offs serializes every
// access to the engine and runtime state — no locks, no channel select, and
// bit-identical results at any GOMAXPROCS, because the wake order is a pure
// function of virtual time.
//
// Equivalence contract (pinned by the engine differential tests and the
// cross-engine goldens in internal/npb): all timing arithmetic lives in the
// shared Ctx/p2p/coll code paths; the engines differ only in how a rank
// blocks and is woken. Per-pair FIFO message order and collective epoch
// semantics are preserved exactly, so TimelineCSV, energy totals, chrome
// traces and fault-injection draw sequences are byte-identical across
// engines.

// ErrDeadlock is returned by every parked rank when the event engine finds
// all live ranks blocked with no runnable work: a genuine communication
// deadlock in virtual time (e.g. two ranks in matched rendezvous sends).
// The goroutine engine hangs on such programs; the event engine, which
// knows the global blocked set, reports them.
var ErrDeadlock = errors.New("mpi: deadlock: every live rank is blocked")

// evItem is one heap entry: a runnable rank keyed by its virtual clock.
// Ties break toward the lower rank, making the wake order total and
// deterministic.
type evItem struct {
	key  float64
	rank int32
}

// evRank is the engine's per-rank scheduling state. All fields are accessed
// only by the token holder (or, for resume, through the token hand-off
// itself).
type evRank struct {
	eng    *evEngine
	rank   int
	resume chan struct{}
	// queued marks the rank as already present in the run heap.
	queued bool
	// blocked marks the rank as parked inside a communication primitive.
	blocked bool
	// done marks the rank's body as returned.
	done bool
	// inSync marks the rank as parked inside a collective epoch.
	inSync bool
	// rdvWaiting/rdvDone implement the rendezvous completion hand-off that
	// the goroutine engine does with the per-rank done channel.
	rdvWaiting bool
	rdvDone    float64
}

// evQueue is one src→dst message queue: the event engine's mailbox. A plain
// ring buffer suffices because only the token holder ever touches it; the
// waiter fields park at most one receiver and one backpressured sender.
type evQueue struct {
	buf        []message
	head, n    int
	waiter     int // rank parked in recv on this queue, -1 if none
	sendWaiter int // rank parked on mailboxDepth backpressure, -1 if none
}

//palint:hotpath
func (q *evQueue) push(m message) {
	if q.n == len(q.buf) {
		grown := make([]message, max(4, 2*len(q.buf))) //palint:ignore hotalloc -- ring growth is amortized: capacity doubles to the queue's working set and is then reused for the rest of the run
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = m
	q.n++
}

//palint:hotpath
func (q *evQueue) pop() message {
	m := q.buf[q.head]
	q.buf[q.head] = message{} // drop payload references so buffers can be collected
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return m
}

// evEngine is the shared scheduler state of one event-engine job.
type evEngine struct {
	rt   *runtime
	ctxs []*Ctx
	rank []evRank
	heap []evItem
	// queues holds the src→dst mailboxes, keyed src*n+dst and created on
	// first use: kernels are neighbour- or collective-structured, so most of
	// the n² pairs never exchange a message (at N = 1024 an eager n² array
	// would dwarf the simulation itself).
	queues map[int]*evQueue
	// live counts ranks whose bodies have not returned.
	live int
	// aborted is set when any rank fails (or a deadlock is detected); parked
	// ranks observe it as they are woken for teardown.
	aborted bool
	// deadlocked distinguishes a detected virtual-time deadlock from an
	// ordinary rank error.
	deadlocked bool
	// finish is closed by the last exiting rank; the driver goroutine waits
	// on it.
	finish chan struct{}
}

func newEvEngine(rt *runtime, ctxs []*Ctx) *evEngine {
	n := rt.w.N
	e := &evEngine{
		rt:     rt,
		ctxs:   ctxs,
		rank:   make([]evRank, n),
		heap:   make([]evItem, 0, n),
		queues: make(map[int]*evQueue),
		live:   n,
		finish: make(chan struct{}),
	}
	for i := range e.rank {
		e.rank[i] = evRank{eng: e, rank: i, resume: make(chan struct{}, 1)}
	}
	return e
}

//palint:hotpath
func (e *evEngine) queue(src, dst int) *evQueue {
	key := src*e.rt.w.N + dst
	if q, ok := e.queues[key]; ok {
		return q
	}
	q := &evQueue{waiter: -1, sendWaiter: -1} //palint:ignore hotalloc -- one queue per communicating pair for the whole run; misses only on a pair's first message
	e.queues[key] = q
	return q
}

// heapPush inserts a runnable rank, keeping the min-heap ordered by
// (virtual clock, rank).
//
//palint:hotpath
func (e *evEngine) heapPush(it evItem) {
	e.heap = append(e.heap, it) //palint:ignore hotalloc -- capacity is preallocated to N in newEvEngine; at most N ranks are ever queued
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(e.heap[i], e.heap[p]) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
}

//palint:hotpath
func (e *evEngine) heapPop() evItem {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && evLess(e.heap[l], e.heap[s]) {
			s = l
		}
		if r < last && evLess(e.heap[r], e.heap[s]) {
			s = r
		}
		if s == i {
			break
		}
		e.heap[i], e.heap[s] = e.heap[s], e.heap[i]
		i = s
	}
	return top
}

//palint:hotpath
func evLess(a, b evItem) bool {
	if a.key != b.key { //palint:ignore floateq -- heap ordering needs a total order on exact clock values, not a tolerance
		return a.key < b.key
	}
	return a.rank < b.rank
}

// makeRunnable queues a parked rank for the token, keyed by its (frozen,
// since it is parked) virtual clock.
//
//palint:hotpath
func (e *evEngine) makeRunnable(rank int) {
	r := &e.rank[rank]
	if r.done || r.queued {
		return
	}
	r.queued = true
	e.heapPush(evItem{key: e.ctxs[rank].clock, rank: int32(rank)})
}

// handoff passes the execution token to the runnable rank with the lowest
// virtual clock. Called by a rank that is about to park or exit — or by the
// driver to start the job — so exactly one rank runs at any instant.
//
//palint:hotpath
func (e *evEngine) handoff() {
	if len(e.heap) == 0 {
		e.breakDeadlock()
	}
	it := e.heapPop()
	r := &e.rank[it.rank]
	r.queued = false
	r.resume <- struct{}{}
}

// breakDeadlock handles an empty run heap with live ranks remaining: every
// live rank is parked and none can ever be woken — a communication deadlock
// in virtual time. Wake them all for teardown; each returns ErrDeadlock
// from its pending operation.
func (e *evEngine) breakDeadlock() {
	e.deadlocked = true
	e.aborted = true
	for i := range e.rank {
		if r := &e.rank[i]; !r.done && r.blocked {
			e.makeRunnable(i)
		}
	}
	if len(e.heap) == 0 {
		// Unreachable: exit() closes finish when the last rank leaves, and a
		// non-last exit hands the token to someone, so live > 0 implies at
		// least one blocked rank.
		panic("mpi: event engine: live ranks but nothing runnable or blocked")
	}
}

// park blocks the calling rank until another rank wakes it. Returns nil on
// a genuine wake-up and an error when the job is being torn down.
//
//palint:hotpath
func (e *evEngine) park(c *Ctx) error {
	r := c.ev
	if e.aborted {
		return e.teardownErr()
	}
	r.blocked = true
	e.handoff()
	<-r.resume
	r.blocked = false
	if e.aborted {
		return e.teardownErr()
	}
	return nil
}

func (e *evEngine) teardownErr() error {
	if e.deadlocked {
		return ErrDeadlock
	}
	return ErrAborted
}

// exit retires the calling rank's body. The last rank out signals the
// driver; anyone else passes the token on.
func (e *evEngine) exit(rank int) {
	e.rank[rank].done = true
	e.live--
	if e.live == 0 {
		close(e.finish)
		return
	}
	e.handoff()
}

// abortAll starts job teardown after a rank error: every parked rank is
// woken to observe the abort and unwind.
func (e *evEngine) abortAll() {
	e.aborted = true
	for i := range e.rank {
		if r := &e.rank[i]; !r.done && r.blocked {
			e.makeRunnable(i)
		}
	}
}

// send enqueues m on the src→dst queue, waking a parked receiver and
// honouring the mailboxDepth backpressure the goroutine engine gets from
// its channel capacity.
//
//palint:hotpath
func (e *evEngine) send(c *Ctx, dst int, m message) error {
	q := e.queue(c.rank, dst)
	for q.n == mailboxDepth {
		q.sendWaiter = c.rank
		if err := e.park(c); err != nil {
			q.sendWaiter = -1
			return err
		}
	}
	q.push(m)
	if q.waiter >= 0 {
		w := q.waiter
		q.waiter = -1
		e.makeRunnable(w)
	}
	return nil
}

// recv dequeues the next message from src, parking until one arrives.
//
//palint:hotpath
func (e *evEngine) recv(c *Ctx, src int) (message, error) {
	q := e.queue(src, c.rank)
	for q.n == 0 {
		q.waiter = c.rank
		if err := e.park(c); err != nil {
			q.waiter = -1
			return message{}, err
		}
	}
	m := q.pop()
	if q.sendWaiter >= 0 {
		s := q.sendWaiter
		q.sendWaiter = -1
		e.makeRunnable(s)
	}
	return m, nil
}

// waitRendezvous parks the sender of a rendezvous message until the
// receiver completes the transfer and reports the sender-side finish time.
//
//palint:hotpath
func (e *evEngine) waitRendezvous(c *Ctx) (float64, error) {
	r := c.ev
	r.rdvWaiting = true
	for r.rdvWaiting {
		if err := e.park(c); err != nil {
			r.rdvWaiting = false
			return 0, err
		}
	}
	return r.rdvDone, nil
}

// completeRendezvous is the receiver-side half of waitRendezvous: it
// delivers the sender's completion time and wakes it. A sender already torn
// down (teardown races the completion exactly as the goroutine engine's
// abandoned done channel does) is left alone.
//
//palint:hotpath
func (e *evEngine) completeRendezvous(src int, doneAt float64) {
	r := &e.rank[src]
	if r.done || !r.rdvWaiting {
		return
	}
	r.rdvDone = doneAt
	r.rdvWaiting = false
	e.makeRunnable(src)
}

// deposit is the event engine's collective epoch: the runtime's shared
// clock/payload arrays are safe to touch without the mutex because only the
// token holder runs. The last arrival publishes the rotating snapshot
// (same two-container argument as runtime.sync) and wakes every parked
// participant; earlier arrivals park until then.
//
//palint:hotpath
func (e *evEngine) deposit(c *Ctx, payload any) (*collSnapshot, error) {
	rt := c.rt
	rt.clocks[c.rank] = c.clock
	rt.payloads[c.rank] = payload
	rt.arrived++
	if rt.arrived == rt.w.N {
		snap := &rt.snaps[rt.epoch&1]
		rt.epoch++
		copy(snap.clocks, rt.clocks)
		copy(snap.payloads, rt.payloads)
		rt.snapshot = snap
		rt.arrived = 0
		for i := range e.rank {
			if r := &e.rank[i]; r.inSync {
				r.inSync = false
				e.makeRunnable(i)
			}
		}
		return snap, nil
	}
	r := c.ev
	r.inSync = true
	for r.inSync {
		if err := e.park(c); err != nil {
			r.inSync = false
			return nil, err
		}
	}
	// A later epoch cannot have overwritten the snapshot pointer: it would
	// need all N deposits, and this rank has not deposited again.
	return rt.snapshot, nil
}

// runEvent executes fn on every rank under the event engine. The rank
// goroutines are cooperative coroutines: each waits for the token, runs its
// body (parking inside communication primitives), and retires through
// exit(). The driver seeds the heap with every rank at virtual time zero,
// hands the token to the first, and waits for the last to leave.
func runEvent(w World, fn RankFunc) (*Result, error) {
	rt := newRuntime(w)
	ctxs := make([]*Ctx, w.N)
	errs := make([]error, w.N)
	for rank := 0; rank < w.N; rank++ {
		ctxs[rank] = newCtx(rt, rank)
	}
	e := newEvEngine(rt, ctxs)
	for rank := 0; rank < w.N; rank++ {
		ctxs[rank].ev = &e.rank[rank]
	}
	for rank := 0; rank < w.N; rank++ {
		//palint:ignore nakedgo -- event-engine coroutine fan-out: each goroutine writes only its own errs slot and all engine state is serialized by the execution token; the finish channel publishes the writes to the driver
		go func(rank int) {
			self := &e.rank[rank]
			<-self.resume
			if err := fn(ctxs[rank]); err != nil {
				errs[rank] = fmt.Errorf("rank %d: %w", rank, err)
				e.abortAll()
			}
			e.exit(rank)
		}(rank)
	}
	for rank := 0; rank < w.N; rank++ {
		e.makeRunnable(rank)
	}
	e.handoff()
	<-e.finish
	return finishRun(w, ctxs, errs)
}
