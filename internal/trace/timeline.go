package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// TimelineCSV renders the log as comma-separated rows
// (rank,phase,kind,start,end,duration), ordered by rank and start time —
// loadable into any plotting tool to draw a Gantt chart of the run.
func (l *Log) TimelineCSV() string {
	events := append([]Event(nil), l.events...)
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Rank != events[j].Rank {
			return events[i].Rank < events[j].Rank
		}
		return events[i].Start < events[j].Start
	})
	var b strings.Builder
	b.WriteString(timelineHeader + "\n")
	for _, e := range events {
		fmt.Fprintf(&b, "%d,%s,%s,%.9f,%.9f,%.9f,%.2f\n",
			e.Rank, e.Phase, e.Kind, e.Start, e.End, e.Duration(), e.Watts)
	}
	return b.String()
}

// timelineHeader is the first row TimelineCSV emits and ParseTimelineCSV
// requires.
const timelineHeader = "rank,phase,kind,start,end,duration,watts"

// ParseTimelineCSV is the inverse of TimelineCSV: it reads the CSV back
// into a log, resolving the kind column through ParseKind so a renamed or
// misspelled kind is an error rather than a silently mislabeled event. The
// redundant duration column is checked against end−start at the CSV's own
// print precision.
func ParseTimelineCSV(s string) (*Log, error) {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) == 0 || lines[0] != timelineHeader {
		return nil, fmt.Errorf("trace: timeline CSV missing header %q", timelineHeader)
	}
	l := &Log{}
	for i, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 7 {
			return nil, fmt.Errorf("trace: row %d has %d fields, want 7", i+1, len(fields))
		}
		rank, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d rank: %w", i+1, err)
		}
		kind, err := ParseKind(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", i+1, err)
		}
		var nums [4]float64
		for j, f := range fields[3:] {
			nums[j], err = strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d field %d: %w", i+1, j+3, err)
			}
		}
		start, end, dur := nums[0], nums[1], nums[2]
		// The CSV prints at 1e-9 resolution, so the redundant column can
		// disagree with end−start by at most one ulp of that grid.
		if d := end - start - dur; d > 1e-9 || d < -1e-9 {
			return nil, fmt.Errorf("trace: row %d duration %g inconsistent with end−start %g", i+1, dur, end-start)
		}
		l.Append(Event{Rank: rank, Phase: fields[1], Kind: kind, Start: start, End: end, Watts: nums[3]})
	}
	return l, nil
}

// Utilization returns, per rank, the fraction of the makespan spent
// computing — a quick load-balance diagnostic.
func (l *Log) Utilization() map[int]float64 {
	makespan := 0.0
	compute := map[int]float64{}
	ranks := map[int]bool{}
	for _, e := range l.events {
		ranks[e.Rank] = true
		if e.End > makespan {
			makespan = e.End
		}
		if e.Kind == Compute {
			compute[e.Rank] += e.Duration()
		}
	}
	out := map[int]float64{}
	if makespan == 0 {
		return out
	}
	for r := range ranks {
		out[r] = compute[r] / makespan
	}
	return out
}

// PowerProfile integrates the per-event power draws into a cluster power
// time series sampled at the given interval: sample k covers
// [k·dt, (k+1)·dt) and holds the mean total watts across ranks. Events
// with zero Watts (older traces) contribute nothing.
func (l *Log) PowerProfile(dt float64, makespan float64) []float64 {
	if dt <= 0 || makespan <= 0 {
		return nil
	}
	n := int(makespan/dt) + 1
	samples := make([]float64, n)
	for _, e := range l.events {
		if e.Watts == 0 || e.End <= e.Start {
			continue
		}
		for k := int(e.Start / dt); k <= int(e.End/dt) && k < n; k++ {
			lo, hi := float64(k)*dt, float64(k+1)*dt
			if e.Start > lo {
				lo = e.Start
			}
			if e.End < hi {
				hi = e.End
			}
			if hi > lo {
				samples[k] += e.Watts * (hi - lo) / dt
			}
		}
	}
	return samples
}

// CriticalPhase returns the phase with the largest summed duration and its
// share of all recorded time.
func (l *Log) CriticalPhase() (phase string, share float64) {
	by := l.ByPhase()
	total := 0.0
	for p, sec := range by {
		total += sec
		// Strict-greater with a name tie-break keeps the result independent
		// of map iteration order when two phases have equal durations.
		//palint:ignore floateq -- exact equality is the tie-break condition itself; a tolerance would reintroduce order dependence
		if phase == "" || sec > by[phase] || (sec == by[phase] && p < phase) {
			phase = p
		}
	}
	if total == 0 {
		return "", 0
	}
	return phase, by[phase] / total
}
