package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// FloatDiv flags floating-point divisions whose denominator is a plain
// parameter-like expression (identifier, field chain, or float conversion
// of one) with no dominating positivity/non-zero guard in the enclosing
// function. In this codebase such divisions sit on the model's hot path —
// Eq. 9–11 divide by frequency ratios and processor counts — and an
// unguarded zero silently turns a speedup table into ±Inf instead of
// crashing.
//
// The guard heuristic: the enclosing function must contain, textually
// before the division, a comparison (<, <=, >, >=, ==, !=) mentioning the
// denominator — or, when the denominator is a local like fn := float64(n),
// mentioning any identifier from its defining right-hand side. Early-return
// validation (`if n < 1 { return … }`) and branch guards (`if x > 0 { … }`)
// both satisfy it. Constant denominators are exempt (the compiler rejects
// constant zero division), as are compound arithmetic denominators, whose
// zero-ness is not a parameter-validation question.
var FloatDiv = &Analyzer{
	Name: "floatdiv",
	Doc:  "float division by an unguarded parameter-like denominator",
	Run:  runFloatDiv,
	Explain: `A float division whose denominator is a parameter-like value
(parameter, struct field, or a local derived from one) must sit under an
enclosing guard mentioning that value — an early-return validation or a
branch condition. Division by an unguarded value produces ±Inf or NaN
silently and propagates into every downstream speedup table. Constant
and compound-arithmetic denominators are exempt.`,
	Example: `func mean(sum float64, n float64) float64 {
	return sum / n // flagged: n unguarded; if n == 0 this is NaN/Inf
}`,
}

func runFloatDiv(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					checkDivisions(pass, d.Name.Name, d.Body)
				}
			case *ast.GenDecl:
				// Package-level initializers have no guard context at all.
				checkDivisions(pass, "package scope", d)
			}
		}
	}
}

// checkDivisions walks one guard scope (a function body, or a declaration
// with no guards) and reports unguarded float divisions inside it.
func checkDivisions(pass *Pass, where string, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		div, ok := n.(*ast.BinaryExpr)
		if !ok || div.Op != token.QUO {
			return true
		}
		den := ast.Unparen(div.Y)
		if !pass.IsFloat(den) {
			return true
		}
		if tv, ok := pass.Pkg.Info.Types[den]; ok && tv.Value != nil {
			return true // constant denominator
		}
		keys, simple := denominatorKeys(pass, den)
		if !simple || len(keys) == 0 {
			return true
		}
		keys = append(keys, definitionKeys(root, keys)...)
		keys = append(keys, rangeOriginKeys(root, keys)...)
		if hasDominatingGuard(root, keys, div.OpPos) {
			return true
		}
		pass.Reportf(den.Pos(),
			"division by %q has no dominating positivity guard in %s", render(den), where)
		return true
	})
}

// denominatorKeys extracts the guardable chains of a simple denominator.
// Returns simple=false for compound arithmetic, calls (other than float
// conversions), and indexing — expressions outside this check's scope.
func denominatorKeys(pass *Pass, den ast.Expr) (keys []string, simple bool) {
	switch x := ast.Unparen(den).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		s, ok := chainOf(x)
		if !ok {
			return nil, false
		}
		return []string{s}, true
	case *ast.UnaryExpr:
		if x.Op == token.SUB {
			return denominatorKeys(pass, x.X)
		}
	case *ast.CallExpr:
		if isFloatConversion(pass, x) {
			// float64(n): a guard on n guards the conversion.
			inner, ok := denominatorKeys(pass, x.Args[0])
			if !ok {
				// float64(len(xs)) and friends: key every chain inside.
				return collectChains(x.Args[0]), true
			}
			return inner, true
		}
	}
	return nil, false
}

// definitionKeys augments plain-identifier keys with the chains of their
// defining assignments inside root, so `fn := float64(n)` lets a guard on
// n cover divisions by fn. One level of indirection is enough in practice.
func definitionKeys(root ast.Node, keys []string) []string {
	want := map[string]bool{}
	for _, k := range keys {
		if !hasDot(k) {
			want[k] = true
		}
	}
	if len(want) == 0 {
		return nil
	}
	var extra []string
	ast.Inspect(root, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || !want[id.Name] {
				continue
			}
			if i < len(as.Rhs) {
				extra = append(extra, collectChains(as.Rhs[i])...)
			} else if len(as.Rhs) == 1 {
				extra = append(extra, collectChains(as.Rhs[0])...)
			}
		}
		return true
	})
	return extra
}

// rangeOriginKeys maps range variables back to their container: in
// `for i, c := range d.Classes`, a division by float64(i) is guarded by
// anything that validated d.Classes (typically d.Validate()), so the
// container's chains join the key set.
func rangeOriginKeys(root ast.Node, keys []string) []string {
	want := map[string]bool{}
	for _, k := range keys {
		if !hasDot(k) {
			want[k] = true
		}
	}
	if len(want) == 0 {
		return nil
	}
	var extra []string
	ast.Inspect(root, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		for _, v := range []ast.Expr{rng.Key, rng.Value} {
			if id, ok := v.(*ast.Ident); ok && want[id.Name] {
				extra = append(extra, collectChains(rng.X)...)
				break
			}
		}
		return true
	})
	return extra
}

func hasDot(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return true
		}
	}
	return false
}

// hasDominatingGuard reports whether, textually before pos inside root,
// either (a) a comparison mentions one of the keys, or (b) a Validate()
// call covers a key's receiver — this repository's pervasive idiom is an
// early `if err := x.Validate(); err != nil { return … }`, which
// establishes the positivity invariants the later arithmetic relies on.
// "Before" is textual order — a sound approximation of dominance for the
// early-return and if-guard shapes Go code uses.
func hasDominatingGuard(root ast.Node, keys []string, pos token.Pos) bool {
	keySet := map[string]bool{}
	for _, k := range keys {
		keySet[k] = true
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if !isComparison(x.Op) || x.OpPos >= pos {
				return true
			}
			for _, side := range []ast.Expr{x.X, x.Y} {
				for _, chain := range collectChains(side) {
					if keySet[chain] {
						found = true
						return false
					}
				}
			}
		case *ast.CallExpr:
			if x.Pos() >= pos || calleeName(x) != "Validate" {
				return true
			}
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv, ok := chainOf(sel.X)
			if !ok {
				return true
			}
			for k := range keySet {
				if k == recv || strings.HasPrefix(k, recv+".") {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
