package npb

import (
	"math"
	"testing"

	"pasp/internal/stats"
	"pasp/internal/trace"
)

func TestSPValidate(t *testing.T) {
	if err := (SP{N: 16, Steps: 2}).Validate(4); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []struct {
		name string
		s    SP
		n    int
	}{
		{"tiny grid", SP{N: 2, Steps: 1}, 1},
		{"zero steps", SP{N: 16}, 1},
		{"negative sigma", SP{N: 16, Steps: 1, Sigma: -1}, 1},
		{"too many chunks", SP{N: 4, Steps: 1, Chunks: 100}, 1},
		{"too many ranks", SP{N: 8, Steps: 1}, 16},
		{"bad ncomp", SP{N: 16, Steps: 1, Ncomp: -1}, 1},
	}
	for _, tc := range bad {
		if err := tc.s.Validate(tc.n); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

// Implicit heat steps with zero Dirichlet boundaries dissipate heat
// monotonically: the positivity-preserving tridiagonal solves shrink the
// field sum every step.
func TestSPHeatDecays(t *testing.T) {
	res, _, err := SP{N: 16, Steps: 5}.Run(npbWorld(1, 600))
	if err != nil {
		t.Fatal(err)
	}
	if res.Heat0 <= 0 {
		t.Fatal("non-positive initial heat")
	}
	if res.Heat >= res.Heat0 {
		t.Errorf("heat did not decay: %g → %g", res.Heat0, res.Heat)
	}
	if res.Heat <= 0 {
		t.Errorf("heat went non-positive: %g", res.Heat)
	}
}

// The distributed pipelined Thomas must produce exactly the serial
// arithmetic: forward/backward recurrences cross rank boundaries in the
// same order, so results are rank invariant to rounding.
func TestSPRankInvariance(t *testing.T) {
	sp := SP{N: 16, Steps: 3}
	ref, _, err := sp.Run(npbWorld(1, 600))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 8} {
		got, _, err := sp.Run(npbWorld(n, 600))
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if !stats.AlmostEqual(got.Heat, ref.Heat, 1e-9) {
			t.Errorf("N=%d: heat %.12g ≠ %.12g", n, got.Heat, ref.Heat)
		}
		if !stats.AlmostEqual(got.Checksum, ref.Checksum, 1e-9) {
			t.Errorf("N=%d: checksum %.12g ≠ %.12g", n, got.Checksum, ref.Checksum)
		}
	}
}

// Smoothness sanity: after many steps the field approaches the zero steady
// state of the homogeneous Dirichlet problem.
func TestSPApproachesSteadyState(t *testing.T) {
	short, _, err := SP{N: 12, Steps: 2}.Run(npbWorld(2, 600))
	if err != nil {
		t.Fatal(err)
	}
	long, _, err := SP{N: 12, Steps: 40}.Run(npbWorld(2, 600))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(long.Heat) >= math.Abs(short.Heat) {
		t.Errorf("heat after 40 steps (%g) not below 2 steps (%g)", long.Heat, short.Heat)
	}
}

func TestSPPipelinePhasesTraced(t *testing.T) {
	_, r, err := SP{N: 16, Steps: 2}.Run(npbWorld(4, 600))
	if err != nil {
		t.Fatal(err)
	}
	by := r.Trace.ByPhase()
	for _, phase := range []string{"sp-solve-x", "sp-solve-y", "sp-solve-z", "sp-z-forward", "sp-z-back"} {
		if by[phase] <= 0 {
			t.Errorf("phase %q missing from trace: %v", phase, by)
		}
	}
	// Each rank (except the edges) sends 2 messages per chunk per step.
	if r.PerRank[1].Msgs < 2*2 {
		t.Errorf("rank 1 sent %d messages", r.PerRank[1].Msgs)
	}
}

func TestSPChunkingInvariant(t *testing.T) {
	// The chunk count changes pipelining, not arithmetic.
	a := SP{N: 16, Steps: 2, Chunks: 1}
	b := SP{N: 16, Steps: 2, Chunks: 32}
	ra, _, err := a.Run(npbWorld(4, 600))
	if err != nil {
		t.Fatal(err)
	}
	rb, _, err := b.Run(npbWorld(4, 600))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(ra.Checksum, rb.Checksum, 1e-12) {
		t.Errorf("checksum depends on chunking: %g vs %g", ra.Checksum, rb.Checksum)
	}
	// Finer chunks pipeline better: more messages, at most equal makespan...
	// the tradeoff depends on latency; just require both to complete and
	// differ in message count.
	if ra.Checksum == 0 {
		t.Error("degenerate checksum")
	}
}

func TestSPChunksAffectPipelining(t *testing.T) {
	// With one chunk the z solve fully serializes rank by rank; finer
	// chunks overlap the ranks and cut the makespan substantially (measured
	// ~4.6× from 1 to 16 chunks at this configuration).
	_, one, err := SP{N: 24, Steps: 2, Chunks: 1}.Run(npbWorld(8, 600))
	if err != nil {
		t.Fatal(err)
	}
	_, many, err := SP{N: 24, Steps: 2, Chunks: 16}.Run(npbWorld(8, 600))
	if err != nil {
		t.Fatal(err)
	}
	if many.Seconds >= one.Seconds/2 {
		t.Errorf("16-chunk pipeline %.4f s not well below 1-chunk %.4f s", many.Seconds, one.Seconds)
	}
	// The finer pipeline pays in message count.
	if many.PerRank[1].Msgs <= one.PerRank[1].Msgs {
		t.Error("finer chunks did not increase message count")
	}
}

func TestSPDeterministic(t *testing.T) {
	sp := SP{N: 16, Steps: 2}
	_, a, err := sp.Run(npbWorld(4, 1000))
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := sp.Run(npbWorld(4, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds || a.Joules != b.Joules {
		t.Error("SP timing not deterministic")
	}
}

// TestSPPhaseSequenceUniform pins the commshape fix: SetPhase transitions
// in the z-sweep are unconditional, so every rank walks the identical
// phase sequence — the invariant the per-(rank, phase) energy attribution
// and the statically extracted skeleton both assume. The comm recorder sees
// the transitions themselves (unlike the energy trace, whose phase events
// only materialize where a rank spends time).
func TestSPPhaseSequenceUniform(t *testing.T) {
	var rec trace.CommRecorder
	w := npbWorld(4, 600)
	w.Comm = &rec
	if _, _, err := (SP{N: 16, Steps: 2}).Run(w); err != nil {
		t.Fatal(err)
	}
	seqs := make([][]string, rec.N())
	for i := range seqs {
		for _, ev := range rec.Rank(i) {
			if ev.Kind == trace.CommPhase {
				seqs[i] = append(seqs[i], ev.Name)
			}
		}
	}
	if len(seqs[0]) == 0 {
		t.Fatal("rank 0 recorded no phase transitions")
	}
	for rank := 1; rank < len(seqs); rank++ {
		if len(seqs[rank]) != len(seqs[0]) {
			t.Fatalf("rank %d phase sequence length %d != rank 0's %d:\n%v\nvs\n%v",
				rank, len(seqs[rank]), len(seqs[0]), seqs[rank], seqs[0])
		}
		for i := range seqs[0] {
			if seqs[rank][i] != seqs[0][i] {
				t.Fatalf("rank %d diverges at step %d: %q vs %q", rank, i, seqs[rank][i], seqs[0][i])
			}
		}
	}
}
