// Package hotalloc seeds allocations inside //palint:hotpath-tagged
// functions: direct make/append/&literal/closure/concatenation sites,
// interface boxing at a call boundary, an allocation inherited from an
// untagged helper (with a witness chain), a call through a bound function
// value, and the two clean shapes — an untagged allocator, and a helper
// whose allocation is sanctioned at the site.
package hotalloc

import "fmt"

type event struct{ id int }

type ring struct {
	buf []float64
	log []event
}

//palint:hotpath
func (r *ring) fill(n int) {
	r.buf = make([]float64, n)          // want: make
	r.log = append(r.log, event{id: n}) // want: append may grow
}

//palint:hotpath
func describe(id int) string {
	return "event-" + fmt.Sprintf("%d", id) // want: concatenation, boxing, Sprintf
}

//palint:hotpath
func escape(v float64) *event {
	return &event{id: int(v)} // want: &literal escapes
}

//palint:hotpath
func applyAll(xs []float64, f func(float64) float64) float64 { // clean body
	sum := 0.0
	for _, x := range xs {
		sum += f(x)
	}
	return sum
}

//palint:hotpath
func scaled(xs []float64, k float64) float64 {
	return applyAll(xs, func(x float64) float64 { return k * x }) // want: closure
}

// grow allocates; hot callers inherit the finding through the fact.
func grow(xs []float64) []float64 {
	return append(xs, 0)
}

//palint:hotpath
func hotGrow(xs []float64) []float64 {
	return grow(xs) // want: callee allocates, witness names grow
}

//palint:hotpath
func viaBoundValue(xs []float64) []float64 {
	g := grow
	return g(xs) // want: callee allocates through the bound value
}

// pooled's make is sanctioned: it models a freelist miss path whose cost
// is amortized.
func pooled(n int) []float64 {
	return make([]float64, n) //palint:ignore hotalloc -- seeded testdata: amortized freelist miss path, hot callers stay clean
}

//palint:hotpath
func hotPooled(n int) []float64 {
	return pooled(n) // clean: the callee's suppression sanctions the allocation
}

func untagged(n int) []float64 { // clean: not a hot path
	return make([]float64, n)
}
