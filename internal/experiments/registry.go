package experiments

import (
	"context"
	"fmt"
	"sort"

	"pasp/internal/cluster"
	"pasp/internal/mpi"
	"pasp/internal/obs"
	"pasp/internal/trace"
)

// Kernel is one registered benchmark: its runner and its campaign grid.
type Kernel struct {
	// Name is the lower-case NAS name ("ep", "ft", ...).
	Name string
	// Run executes the kernel's suite class on a world.
	Run cluster.RunFunc
	// Grid is the campaign the kernel sweeps (LU uses the smaller grid).
	Grid cluster.Grid
	// Measure sweeps the kernel's campaign through the campaign store. The
	// context bounds only this caller's interest in the result; see
	// store.go for the coalescing contract.
	Measure func(ctx context.Context) (*Campaign, error)
	// Peek returns the kernel's campaign only if the store has already
	// finished measuring it — the admission-free fast path paserve answers
	// cache hits from.
	Peek func() (*Campaign, bool)
}

// Kernels returns the suite's registered kernels keyed by name, so
// commands can resolve a -bench flag uniformly.
func (s Suite) Kernels() map[string]Kernel {
	return map[string]Kernel{
		"ep": {Name: "ep", Run: s.RunEP, Grid: s.Grid, Measure: s.MeasureEP,
			Peek: func() (*Campaign, bool) { return s.peekCached("EP", s.EP, s.Grid) }},
		"ft": {Name: "ft", Run: s.RunFT, Grid: s.Grid, Measure: s.MeasureFT,
			Peek: func() (*Campaign, bool) { return s.peekCached("FT", s.FT, s.Grid) }},
		"lu": {Name: "lu", Run: s.RunLU, Grid: s.LUGrid, Measure: s.MeasureLU,
			Peek: func() (*Campaign, bool) { return s.peekCached("LU", s.LU, s.LUGrid) }},
		"cg": {Name: "cg", Run: s.RunCG, Grid: s.Grid, Measure: s.MeasureCG,
			Peek: func() (*Campaign, bool) { return s.peekCached("CG", s.CG, s.Grid) }},
		"mg": {Name: "mg", Run: s.RunMG, Grid: s.Grid, Measure: s.MeasureMG,
			Peek: func() (*Campaign, bool) { return s.peekCached("MG", s.MG, s.Grid) }},
		"is": {Name: "is", Run: s.RunIS, Grid: s.Grid, Measure: s.MeasureIS,
			Peek: func() (*Campaign, bool) { return s.peekCached("IS", s.IS, s.Grid) }},
		"sp": {Name: "sp", Run: s.RunSP, Grid: s.Grid, Measure: s.MeasureSP,
			Peek: func() (*Campaign, bool) { return s.peekCached("SP", s.SP, s.Grid) }},
	}
}

// KernelNames returns the registered names, sorted.
func (s Suite) KernelNames() []string {
	ks := s.Kernels()
	out := make([]string, 0, len(ks))
	for n := range ks {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Kernel resolves one kernel by name.
func (s Suite) Kernel(name string) (Kernel, error) {
	k, ok := s.Kernels()[name]
	if !ok {
		return Kernel{}, fmt.Errorf("experiments: unknown kernel %q (have %v)", name, s.KernelNames())
	}
	return k, nil
}

// MeasureKernel sweeps the named kernel's grid through the campaign store:
// repeated calls for the same suite return the one memoized campaign.
func (s Suite) MeasureKernel(ctx context.Context, name string) (*Campaign, error) {
	k, err := s.Kernel(name)
	if err != nil {
		return nil, err
	}
	return k.Measure(ctx)
}

// RunKernelOnce executes the named kernel at one configuration.
func (s Suite) RunKernelOnce(name string, n int, mhz float64) (*mpi.Result, error) {
	return s.RunKernelObserved(name, n, mhz, nil)
}

// RunKernelObserved executes the named kernel at one configuration with an
// observability recorder attached: the run span (stamped with the kernel
// name), per-rank phase spans and run metrics land on rec. A nil rec is
// exactly RunKernelOnce.
func (s Suite) RunKernelObserved(name string, n int, mhz float64, rec *obs.Recorder) (*mpi.Result, error) {
	return s.RunKernelTraced(name, n, mhz, rec, nil)
}

// RunKernelTraced executes the named kernel at one configuration with an
// observability recorder and a communication-protocol recorder attached;
// either may be nil to disable that side. The recorders are injected on the
// World rather than the Platform so the campaign store's content
// fingerprint of Platform never sees a pointer.
func (s Suite) RunKernelTraced(name string, n int, mhz float64, rec *obs.Recorder, comm *trace.CommRecorder) (*mpi.Result, error) {
	k, err := s.Kernel(name)
	if err != nil {
		return nil, err
	}
	w, err := s.Platform.World(n, mhz)
	if err != nil {
		return nil, err
	}
	w.Obs = rec
	w.Comm = comm
	res, err := k.Run(w)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		rec.AddRunAttrs(obs.A("kernel", name))
	}
	return res, nil
}

// SuiteByName resolves the -suite flag shared by every command.
func SuiteByName(name string) (Suite, error) {
	switch name {
	case "paper":
		return Paper(), nil
	case "quick":
		return Quick(), nil
	case "scale":
		return Scale(), nil
	default:
		return Suite{}, fmt.Errorf("experiments: unknown suite %q (have paper, quick, scale)", name)
	}
}
