package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// FloatEq flags == and != between floating-point operands. The model's
// predictions come out of chains of rounding arithmetic; exact equality on
// them is either dead (never true) or flaky (true only at one operand
// ordering), so comparisons must go through a tolerance helper.
//
// Two idioms are exempt:
//
//   - comparison against the exact constant 0, the sentinel/guard idiom
//     (`if r.Seconds == 0 { return 0 }`): zero is exactly representable and
//     assigned exactly, so the comparison is deliberate and well-defined;
//   - self-comparison (`x != x`), the portable NaN test.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "exact floating-point equality comparison",
	Run:  runFloatEq,
	Explain: `== and != between floating-point expressions compare bit
patterns, and arithmetic results rarely reproduce them exactly; such
comparisons flip on rounding differences. Comparisons against the exact
constant 0 (the sentinel/guard idiom) and self-comparison (the portable
NaN test) are exempt.`,
	Example: `if speedup == ideal { // flagged: compare within a tolerance instead
	return true
}`,
}

func runFloatEq(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !pass.IsFloat(cmp.X) || !pass.IsFloat(cmp.Y) {
				return true
			}
			if isConstZero(pass, cmp.X) || isConstZero(pass, cmp.Y) {
				return true
			}
			if lx, okx := chainOf(cmp.X); okx {
				if ly, oky := chainOf(cmp.Y); oky && lx == ly {
					return true // x != x: the NaN test
				}
			}
			pass.Reportf(cmp.OpPos,
				"exact float comparison %s %s %s; use a tolerance helper",
				render(cmp.X), cmp.Op, render(cmp.Y))
			return true
		})
	}
}

// isConstZero reports whether e is a compile-time constant equal to zero.
func isConstZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	f, _ := constant.Float64Val(constant.ToFloat(tv.Value))
	return f == 0
}
