package experiments

import (
	"context"
	"fmt"
	"strings"

	"pasp/internal/core"
	"pasp/internal/faults"
	"pasp/internal/stats"
	"pasp/internal/table"
)

// The robustness campaign is a new results axis on top of the paper's
// evaluation: the SP and FP parameterizations are fitted on the *clean*
// (fault-free) measurement campaign — the golden numbers — and then scored
// against measurements of the same kernel on a progressively perturbed
// cluster. The paper's models assume quiet homogeneous nodes; the campaign
// quantifies how fast their prediction error grows once latency jitter,
// drops, transient bandwidth degradation or stragglers break that
// assumption.

// RobustnessSpec configures one robustness sweep.
type RobustnessSpec struct {
	// Kernel names the benchmark ("ft", "lu", ...); the clean fit uses its
	// registered campaign grid.
	Kernel string
	// Ns are the processor counts measured under perturbation; each must be
	// a point of the kernel's campaign grid so the clean-fitted SP model
	// has an overhead term for it.
	Ns []int
	// Magnitudes are the perturbation scale factors applied to Faults via
	// Config.Scale, ascending; conventionally starting at 0 (the control
	// row, which reproduces the clean fit error).
	Magnitudes []float64
	// Faults holds the knobs at magnitude 1.
	Faults faults.Config
}

// Validate reports an error for an unusable spec.
func (r RobustnessSpec) Validate() error {
	if r.Kernel == "" {
		return fmt.Errorf("experiments: robustness spec has no kernel")
	}
	if len(r.Ns) == 0 {
		return fmt.Errorf("experiments: robustness spec has no processor counts")
	}
	if len(r.Magnitudes) == 0 {
		return fmt.Errorf("experiments: robustness spec has no magnitudes")
	}
	for i := 1; i < len(r.Magnitudes); i++ {
		if r.Magnitudes[i] <= r.Magnitudes[i-1] {
			return fmt.Errorf("experiments: robustness magnitudes not ascending at %d", i)
		}
	}
	if err := r.Faults.Validate(); err != nil {
		return err
	}
	if !r.Faults.Enabled() {
		return fmt.Errorf("experiments: robustness spec's fault config injects nothing at magnitude 1")
	}
	return nil
}

// DefaultRobustnessFaults returns the reference knob setting at magnitude 1:
// strong latency jitter with mild drop, degradation and straggler rates, so
// scaling the magnitude moves the cluster smoothly from quiet to hostile.
func DefaultRobustnessFaults(seed uint64) faults.Config {
	return faults.Config{
		Seed:              seed,
		LatencyJitterFrac: 1.0,
		DropProb:          0.01,
		DegradeProb:       0.05,
		DegradeFactor:     2,
		StragglerFrac:     0.1,
		StragglerSlowdown: 1.5,
	}
}

// JitterOnlyFaults returns a pure latency-jitter config at magnitude 1:
// the axis of the headline robustness claim. With a fixed seed, the drawn
// uniforms are identical at every magnitude (the draw count per message is
// constant), so the injected time — and with it the prediction error — is
// monotone in the magnitude.
func JitterOnlyFaults(seed uint64) faults.Config {
	return faults.Config{Seed: seed, LatencyJitterFrac: 1.0}
}

// RobustnessResult holds one sweep's outcome. All slices are indexed
// [magnitude][n].
type RobustnessResult struct {
	// Spec echoes the input.
	Spec RobustnessSpec
	// BaseMHz is the frequency every perturbed run executes at (the clean
	// campaign's base frequency, where the SP fit is exact by
	// construction — any error is perturbation, not parameterization).
	BaseMHz float64
	// MeasSec are the perturbed measured execution times.
	MeasSec [][]float64
	// SPErr and FPErr are the relative errors of the clean-fitted SP and FP
	// time predictions against the perturbed measurements.
	SPErr, FPErr [][]float64
	// FaultSec is the summed injected time across ranks per run.
	FaultSec [][]float64
	// Retries is the total injected retransmissions per run.
	Retries [][]int
}

// Robustness runs the sweep: fit SP and FP on the kernel's clean memoized
// campaign, then measure every (magnitude, N) cell at the base frequency on
// a platform carrying the scaled fault config. Perturbed cells are fresh
// simulations (each scaled platform is a distinct campaign-store identity,
// and single cells are cheaper run directly), so repeated sweeps re-derive
// — and therefore actually test — the harness's determinism.
func (s Suite) Robustness(ctx context.Context, spec RobustnessSpec) (*RobustnessResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	k, err := s.Kernel(spec.Kernel)
	if err != nil {
		return nil, err
	}
	for _, n := range spec.Ns {
		found := false
		for _, gn := range k.Grid.Ns {
			if gn == n {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("experiments: robustness N=%d is not on %s's campaign grid %v",
				n, spec.Kernel, k.Grid.Ns)
		}
	}
	camp, err := k.Measure(ctx)
	if err != nil {
		return nil, err
	}
	sp, err := core.FitSP(camp.Meas)
	if err != nil {
		return nil, err
	}
	fp, err := s.FitFP(camp, k.Grid)
	if err != nil {
		return nil, err
	}
	base, err := camp.Meas.BaseMHz()
	if err != nil {
		return nil, err
	}
	out := &RobustnessResult{Spec: spec, BaseMHz: base}
	for _, m := range spec.Magnitudes {
		pl := s.Platform
		pl.Faults = spec.Faults.Scale(m)
		var meas, spErr, fpErr, fsec []float64
		var retries []int
		for _, n := range spec.Ns {
			w, err := pl.World(n, base)
			if err != nil {
				return nil, err
			}
			res, err := k.Run(w)
			if err != nil {
				return nil, fmt.Errorf("experiments: robustness %s N=%d mag=%g: %w", spec.Kernel, n, m, err)
			}
			spPred, err := sp.PredictTime(n, base)
			if err != nil {
				return nil, err
			}
			fpPred, err := fp.PredictTime(n, base)
			if err != nil {
				return nil, err
			}
			meas = append(meas, res.Seconds)
			spErr = append(spErr, stats.RelError(spPred, res.Seconds))
			fpErr = append(fpErr, stats.RelError(float64(fpPred), res.Seconds))
			fsec = append(fsec, res.FaultSec())
			retries = append(retries, res.Retries())
		}
		out.MeasSec = append(out.MeasSec, meas)
		out.SPErr = append(out.SPErr, spErr)
		out.FPErr = append(out.FPErr, fpErr)
		out.FaultSec = append(out.FaultSec, fsec)
		out.Retries = append(out.Retries, retries)
	}
	return out, nil
}

// errTable renders one error matrix as a magnitude × N table.
func (r *RobustnessResult) errTable(title string, v [][]float64) string {
	header := make([]string, 0, len(r.Spec.Ns)+1)
	header = append(header, "magnitude")
	for _, n := range r.Spec.Ns {
		header = append(header, fmt.Sprintf("N=%d", n))
	}
	t := table.New(title, header...)
	for i, m := range r.Spec.Magnitudes {
		row := make([]string, 0, len(v[i])+1)
		row = append(row, fmt.Sprintf("%g", m))
		for _, e := range v[i] {
			row = append(row, stats.Percent(e))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// String renders the sweep in the paper's table idiom: the clean-fitted SP
// and FP prediction errors against the perturbed measurements, plus the
// injected-time/retry diagnostics.
func (r *RobustnessResult) String() string {
	var b strings.Builder
	name := strings.ToUpper(r.Spec.Kernel)
	fmt.Fprintf(&b, "%s robustness at %g MHz (models fitted on the clean campaign)\n\n", name, r.BaseMHz)
	b.WriteString(r.errTable(fmt.Sprintf("SP prediction error vs perturbed %s", name), r.SPErr))
	b.WriteString("\n")
	b.WriteString(r.errTable(fmt.Sprintf("FP prediction error vs perturbed %s", name), r.FPErr))
	b.WriteString("\n")
	header := make([]string, 0, len(r.Spec.Ns)+1)
	header = append(header, "magnitude")
	for _, n := range r.Spec.Ns {
		header = append(header, fmt.Sprintf("N=%d", n))
	}
	t := table.New("measured time (s) / injected time (s) / retries", header...)
	for i, m := range r.Spec.Magnitudes {
		row := make([]string, 0, len(r.Spec.Ns)+1)
		row = append(row, fmt.Sprintf("%g", m))
		for j := range r.Spec.Ns {
			row = append(row, fmt.Sprintf("%.3f / %.3f / %d", r.MeasSec[i][j], r.FaultSec[i][j], r.Retries[i][j]))
		}
		t.AddRow(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

// CSV renders the sweep as comma-separated rows for plotting:
// kernel,magnitude,n,meas_sec,sp_err,fp_err,fault_sec,retries.
func (r *RobustnessResult) CSV() string {
	var b strings.Builder
	b.WriteString("kernel,magnitude,n,meas_sec,sp_err,fp_err,fault_sec,retries\n")
	for i, m := range r.Spec.Magnitudes {
		for j, n := range r.Spec.Ns {
			fmt.Fprintf(&b, "%s,%g,%d,%.9f,%.9f,%.9f,%.9f,%d\n",
				r.Spec.Kernel, m, n, r.MeasSec[i][j], r.SPErr[i][j], r.FPErr[i][j],
				r.FaultSec[i][j], r.Retries[i][j])
		}
	}
	return b.String()
}
