package npb

import (
	"fmt"
	"math"

	"pasp/internal/machine"
	"pasp/internal/mpi"
)

// IS is the NAS integer-sort kernel: bucket-sort 2^LogKeys integer keys
// drawn from the NPB near-Gaussian distribution (each key is the average of
// four uniform deviates). Each iteration histograms the local keys,
// combines the histogram with an allreduce, splits the bucket space into
// near-equal shares, redistributes the keys with a personalized all-to-all
// exchange and counting-sorts the received range. IS contributes the
// suite's integer-dominated, communication-heavy profile with *skewed*
// exchange volumes — unlike FT's uniform transpose, the central ranks
// receive more data than the edge ranks.
type IS struct {
	// LogKeys is the total key count exponent: 2^LogKeys keys, divided
	// evenly over ranks (the rank count must divide the key count).
	LogKeys int
	// LogMaxKey is the key-range exponent: keys lie in [0, 2^LogMaxKey).
	LogMaxKey int
	// Buckets is the bucket count for the histogram split; 0 selects 1024.
	Buckets int
	// Iters is the number of sort iterations.
	Iters int
	// ScaleLog inflates the timed workload and exchange sizes by
	// 2^ScaleLog (class A is LogKeys 23 at full scale).
	ScaleLog int
}

// Per-key instruction mixes. Keys stream from memory; the bucket count
// array lives in cache.
const (
	isHistReg = 4.0
	isHistL1  = 2.0
	isHistMem = 0.15
	isSortReg = 6.0
	isSortL1  = 4.0
	isSortL2  = 1.0
	isSortMem = 0.3
)

// ISResult is the kernel's verifiable outcome.
type ISResult struct {
	// Sorted reports whether the final global order was verified: every
	// rank's keys sorted, ranges non-overlapping across ranks, and the key
	// count conserved.
	Sorted bool
	// KeySum is the sum of all keys (conserved across redistribution).
	KeySum float64
	// MaxImbalance is the largest per-rank key share relative to the even
	// share in the final distribution.
	MaxImbalance float64
}

// Name returns the kernel's NAS name.
func (is IS) Name() string { return "IS" }

func (is IS) buckets() int {
	if is.Buckets == 0 {
		return 1024
	}
	return is.Buckets
}

// Validate reports an error for unusable parameters on n ranks.
func (is IS) Validate(n int) error {
	if is.LogKeys < 4 || is.LogKeys > 30 {
		return fmt.Errorf("npb: IS LogKeys %d, want 4..30", is.LogKeys)
	}
	if is.LogMaxKey < 4 || is.LogMaxKey > 30 {
		return fmt.Errorf("npb: IS LogMaxKey %d, want 4..30", is.LogMaxKey)
	}
	if is.Iters < 1 {
		return fmt.Errorf("npb: IS Iters %d, want ≥ 1", is.Iters)
	}
	if b := is.buckets(); b < n || b&(b-1) != 0 {
		return fmt.Errorf("npb: IS buckets %d must be a power of two ≥ ranks", b)
	}
	if (1<<uint(is.LogKeys))%n != 0 {
		return fmt.Errorf("npb: IS %d keys not divisible by %d ranks", 1<<uint(is.LogKeys), n)
	}
	if is.ScaleLog < 0 || is.ScaleLog > 30 {
		return fmt.Errorf("npb: IS ScaleLog %d out of range", is.ScaleLog)
	}
	return nil
}

// Run executes IS on the world.
func (is IS) Run(w mpi.World) (ISResult, *mpi.Result, error) {
	if err := is.Validate(w.N); err != nil {
		return ISResult{}, nil, err
	}
	var out ISResult
	res, err := mpi.Run(w, func(c *mpi.Ctx) error {
		r, err := is.rank(c)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = r
		}
		return nil
	})
	if err != nil {
		return ISResult{}, nil, err
	}
	return out, res, nil
}

func (is IS) rank(c *mpi.Ctx) (ISResult, error) {
	n, rank := c.Size(), c.Rank()
	total := 1 << uint(is.LogKeys)
	perRank := total / n
	maxKey := 1 << uint(is.LogMaxKey)
	nb := is.buckets()
	scale := math.Ldexp(1, is.ScaleLog)

	// Generate this rank's block of keys: key g consumes four deviates at
	// stream offset 4g, so the global key sequence is decomposition
	// invariant.
	c.SetPhase("is-keygen")
	keys := make([]float64, perRank)
	rng := newRandlc(uint64(4 * rank * perRank))
	for i := range keys {
		sum := rng.next() + rng.next() + rng.next() + rng.next()
		keys[i] = math.Floor(sum / 4 * float64(maxKey))
	}
	kf := float64(perRank)
	if err := c.Compute(machine.W(kf*8*scale, kf*4*scale, 0, kf*0.2*scale)); err != nil {
		return ISResult{}, err
	}
	var keySum float64
	for _, k := range keys {
		keySum += k
	}

	bucketShift := uint(is.LogMaxKey) - uint(math.Log2(float64(nb)))
	var imbalance float64
	// Per-iteration scratch, reused across sort iterations: the histogram,
	// the per-destination exchange parts (Alltoall snapshots them at deposit
	// time) and the counting-sort array.
	hist := make([]float64, nb)
	parts := make([][]float64, n)
	var counts []int
	for it := 0; it < is.Iters; it++ {
		// Local histogram.
		c.SetPhase("is-histogram")
		for i := range hist {
			hist[i] = 0
		}
		for _, k := range keys {
			hist[int(k)>>bucketShift]++
		}
		if err := c.Compute(machine.W(kf*isHistReg*scale, kf*isHistL1*scale, 0, kf*isHistMem*scale)); err != nil {
			return ISResult{}, err
		}

		// Global histogram and bucket→rank split.
		c.SetPhase("is-allreduce")
		global, err := c.Allreduce(hist, mpi.Sum, int(float64(nb*8)*scale))
		if err != nil {
			return ISResult{}, err
		}
		owner := splitBuckets(global, n)

		// Redistribute keys to their owners.
		c.SetPhase("is-exchange")
		for d := range parts {
			parts[d] = parts[d][:0]
		}
		for _, k := range keys {
			d := owner[int(k)>>bucketShift]
			parts[d] = append(parts[d], k)
		}
		maxPart := 0
		for d, p := range parts {
			if d != rank && len(p) > maxPart {
				maxPart = len(p)
			}
		}
		recv, err := c.Alltoall(parts, int(float64(maxPart*8)*scale))
		if err != nil {
			return ISResult{}, err
		}
		keys = keys[:0]
		for _, p := range recv {
			keys = append(keys, p...)
			if n > 1 {
				// n == 1 alltoall returns the pack buffer itself, not a copy.
				c.Free(p)
			}
		}

		// Counting sort of the received range.
		c.SetPhase("is-sort")
		lo, hi := keyRange(owner, rank, bucketShift)
		if cap(counts) < hi-lo {
			counts = make([]int, hi-lo)
		}
		counts = counts[:hi-lo]
		for i := range counts {
			counts[i] = 0
		}
		for _, k := range keys {
			ki := int(k)
			if ki < lo || ki >= hi {
				return ISResult{}, fmt.Errorf("npb: IS key %d outside owned range [%d,%d)", ki, lo, hi)
			}
			counts[ki-lo]++
		}
		keys = keys[:0]
		for v, cnt := range counts {
			for j := 0; j < cnt; j++ {
				keys = append(keys, float64(lo+v))
			}
		}
		sf := float64(len(keys))
		if err := c.Compute(machine.W(sf*isSortReg*scale, sf*isSortL1*scale, sf*isSortL2*scale, sf*isSortMem*scale)); err != nil {
			return ISResult{}, err
		}
		if total > 0 && n > 0 {
			if share := sf / (float64(total) / float64(n)); share > imbalance {
				imbalance = share
			}
		}
	}

	// Verification: local sortedness, global range ordering, conservation.
	c.SetPhase("is-verify")
	sorted := true
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			sorted = false
			break
		}
	}
	myMin, myMax := math.Inf(1), math.Inf(-1)
	if len(keys) > 0 {
		myMin, myMax = keys[0], keys[len(keys)-1]
	}
	// Gather boundaries so every rank checks the global order.
	bounds, err := c.Allgather([]float64{myMin, myMax, boolToF(sorted), float64(len(keys))}, 32)
	if err != nil {
		return ISResult{}, err
	}
	allSorted := true
	prevMax := math.Inf(-1)
	var totalKeys float64
	for _, b := range bounds {
		if b[2] == 0 {
			allSorted = false
		}
		if b[3] > 0 {
			if b[0] < prevMax {
				allSorted = false
			}
			prevMax = b[1]
		}
		totalKeys += b[3]
	}
	//palint:ignore floateq -- key counts are integer-valued floats carried through Allgather; conservation must be exact
	if totalKeys != float64(total) {
		allSorted = false
	}
	var localSum float64
	for _, k := range keys {
		localSum += k
	}
	sums, err := c.Allreduce([]float64{localSum, keySum}, mpi.Sum, 16)
	if err != nil {
		return ISResult{}, err
	}
	if math.Abs(sums[0]-sums[1]) > 1e-6 {
		allSorted = false
	}
	imbAll, err := c.Allreduce([]float64{imbalance}, mpi.Max, 8)
	if err != nil {
		return ISResult{}, err
	}
	return ISResult{Sorted: allSorted, KeySum: sums[0], MaxImbalance: imbAll[0]}, nil
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// splitBuckets assigns each bucket to a rank so cumulative key counts are
// near-even: rank d owns the buckets whose prefix sum falls in its share.
func splitBuckets(global []float64, n int) []int {
	total := 0.0
	for _, g := range global {
		total += g
	}
	owner := make([]int, len(global))
	if total == 0 {
		return owner // no keys anywhere: rank 0 owns every (empty) bucket
	}
	cum := 0.0
	for b, g := range global {
		// Midpoint rule keeps single giant buckets stable.
		mid := cum + g/2
		d := int(mid / total * float64(n))
		if d >= n {
			d = n - 1
		}
		owner[b] = d
		cum += g
	}
	// Owners must be non-decreasing so each rank's key range is contiguous.
	for b := 1; b < len(owner); b++ {
		if owner[b] < owner[b-1] {
			owner[b] = owner[b-1]
		}
	}
	return owner
}

// keyRange returns the half-open key interval covered by rank's buckets.
//
//palint:hotpath
func keyRange(owner []int, rank int, shift uint) (lo, hi int) {
	lo, hi = -1, -1
	for b, d := range owner {
		if d == rank {
			if lo < 0 {
				lo = b << shift
			}
			hi = (b + 1) << shift
		}
	}
	if lo < 0 {
		// Rank owns no buckets: empty range.
		return 0, 0
	}
	return lo, hi
}
