package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags fields with mixed synchronization disciplines: a field
// updated through sync/atomic in one method but read or written with a
// plain load/store in another races even on platforms where word access
// happens to be atomic (the race detector and the memory model both call
// it undefined), and a field the type's other methods only touch under a
// mutex is not safe to read lock-free just because the read "looks
// innocent". The obs package's lock-free counters and the mpi mailboxes
// make both mistakes easy, so the rules are mechanical here.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed both atomically and plainly; mutex-guarded fields touched without the lock",
	Run:  runAtomicMix,
	Explain: `atomicmix enforces one synchronization discipline per field:
  - A field whose address is passed to a sync/atomic function anywhere in
    the program must be accessed through sync/atomic everywhere. Plain
    reads ("if s.n > 0") and plain writes ("s.n = 0") of such a field are
    flagged — they race with the atomic updates.
  - A field of one of the sync/atomic wrapper types (atomic.Uint64,
    atomic.Pointer[T], ...) may only be used as a method-call receiver or
    have its address taken. Copying the wrapper ("n := s.hits") copies the
    value non-atomically and detaches it from future updates.
  - Inside a type with a sync.Mutex or sync.RWMutex field: fields the
    locking methods touch while holding the lock are mutex-guarded, and a
    method that touches them without calling Lock/RLock is flagged. An
    unexported method reached only from lock-holding methods inherits the
    lock interprocedurally and is exempt.`,
	Example: `type hits struct {
	mu sync.Mutex
	n  uint64 // updated via atomic.AddUint64 in Add
	m  map[string]int
}

func (h *hits) Add() { atomic.AddUint64(&h.n, 1) }
func (h *hits) Peek() uint64 { return h.n } // flagged: plain read of atomic field

func (h *hits) Get(k string) int {
	return h.m[k] // flagged: m is guarded by h.mu in other methods
}`,
}

// isAtomicPkgFunc reports whether f is a package-level sync/atomic function
// (AddUint64, LoadPointer, CompareAndSwapInt32, ...).
func isAtomicPkgFunc(f *types.Func) bool {
	return f != nil && !isMethod(f) && f.Pkg() != nil && f.Pkg().Path() == "sync/atomic"
}

// isAtomicWrapperType reports whether t is one of sync/atomic's wrapper
// types (atomic.Uint64, atomic.Bool, atomic.Value, atomic.Pointer[T], ...).
func isAtomicWrapperType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// fieldOf resolves a selector expression to the struct field it selects,
// or nil when it selects a method or a package member.
func fieldOf(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// gatherAtomicUses scans every loaded package once for sync/atomic calls
// whose first argument takes a field's address. The field set drives the
// plain-access rule; the allowed set holds the selector nodes inside those
// calls so they are not reported as plain accesses themselves.
func (prog *Program) gatherAtomicUses() {
	if prog.atomicGathered {
		return
	}
	prog.atomicGathered = true
	prog.atomicFields = map[types.Object]bool{}
	prog.atomicAllowed = map[ast.Node]bool{}
	for _, info := range prog.funcs {
		for _, cs := range info.calls {
			if !isAtomicPkgFunc(cs.callee) || len(cs.call.Args) == 0 {
				continue
			}
			un, ok := ast.Unparen(cs.call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op.String() != "&" {
				continue
			}
			sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if field := fieldOf(info.Pkg, sel); field != nil {
				prog.atomicFields[field] = true
				prog.atomicAllowed[sel] = true
			}
		}
	}
}

// parentsOf maps every node under root to its syntactic parent.
func parentsOf(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

func runAtomicMix(pass *Pass) {
	prog := pass.Prog
	prog.gatherAtomicUses()
	eachReportedFunc(pass, func(info *FuncInfo) {
		checkAtomicAccess(pass, info)
	})
	checkMutexDiscipline(pass)
}

// checkAtomicAccess applies the two atomic-field rules to one function
// body: plain access of an atomically-updated field, and copy of an
// atomic-wrapper field.
func checkAtomicAccess(pass *Pass, info *FuncInfo) {
	prog := pass.Prog
	parents := parentsOf(info.Decl.Body)
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		field := fieldOf(info.Pkg, sel)
		if field == nil {
			return true
		}
		if prog.atomicFields[field] && !prog.atomicAllowed[sel] {
			pass.Reportf(sel.Sel.Pos(), "field %s is updated through sync/atomic elsewhere; this plain access races with those atomic operations", field.Name())
			return true
		}
		if isAtomicWrapperType(field.Type()) {
			switch p := parents[sel].(type) {
			case *ast.SelectorExpr:
				// x.f.Load() — the wrapper is a method-call receiver.
				if p.X == sel {
					return true
				}
			case *ast.UnaryExpr:
				if p.Op.String() == "&" {
					return true
				}
			}
			pass.Reportf(sel.Sel.Pos(), "field %s has atomic wrapper type %s and may only be used as a method receiver or through its address; this use copies it non-atomically", field.Name(), field.Type())
		}
		return true
	})
}

// mutexState is the per-named-type context for the mutex-discipline rule.
type mutexState struct {
	typ     *types.Named
	fields  map[types.Object]bool // fields of the struct
	methods []*FuncInfo
	locking map[*types.Func]bool
}

// checkMutexDiscipline applies the mutex-guarded-field rule to every named
// struct type of the pass's package that embeds a sync mutex.
func checkMutexDiscipline(pass *Pass) {
	prog := pass.Prog
	scope := pass.Pkg.Types
	if scope == nil {
		return
	}
	for _, name := range scope.Scope().Names() {
		tn, ok := scope.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		state := &mutexState{typ: named, fields: map[types.Object]bool{}, locking: map[*types.Func]bool{}}
		hasMutex := false
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isMutexType(f.Type()) {
				hasMutex = true
				continue
			}
			// Atomic fields follow the atomic rules instead.
			if isAtomicWrapperType(f.Type()) || prog.atomicFields[f] {
				continue
			}
			state.fields[f] = true
		}
		if !hasMutex {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if info := prog.funcOf(m); info != nil {
				state.methods = append(state.methods, info)
				if methodLocks(info) {
					state.locking[m] = true
				}
			}
		}
		reportMutexViolations(pass, state)
	}
}

// methodLocks reports whether the method body calls Lock or RLock on a
// sync mutex (its own, by overwhelming convention).
func methodLocks(info *FuncInfo) bool {
	for _, cs := range info.calls {
		if !isMethod(cs.callee) || cs.callee.Pkg() == nil || cs.callee.Pkg().Path() != "sync" {
			continue
		}
		if n := cs.callee.Name(); n == "Lock" || n == "RLock" {
			return true
		}
	}
	return false
}

// reportMutexViolations computes the guarded-field set from the locking
// methods, extends the lock-holder set to unexported methods reachable
// only from holders, and reports guarded-field accesses everywhere else.
func reportMutexViolations(pass *Pass, state *mutexState) {
	prog := pass.Prog
	// Fields the locking methods WRITE while holding the lock are
	// mutex-guarded. Reads under the lock do not mark a field: a field
	// nobody writes after construction (immutable config like a power
	// profile) is safe to read lock-free even if some locked method also
	// happens to read it — a race needs a writer.
	guarded := map[types.Object]bool{}
	for _, info := range state.methods {
		if !state.locking[info.Obj] {
			continue
		}
		for _, acc := range fieldAccesses(info, state.fields) {
			if acc.write {
				guarded[acc.field] = true
			}
		}
	}
	if len(guarded) == 0 {
		return
	}
	// Interprocedural exemption: an unexported method whose in-program
	// callers are all lock holders (and which has at least one caller)
	// runs under the caller's lock. Fixpoint because exempt methods may
	// call further unexported helpers.
	callers := map[*types.Func]map[*types.Func]bool{}
	for _, info := range prog.funcs {
		for _, cs := range info.calls {
			set := callers[cs.callee]
			if set == nil {
				set = map[*types.Func]bool{}
				callers[cs.callee] = set
			}
			set[info.Obj] = true
		}
	}
	holder := map[*types.Func]bool{}
	for m := range state.locking {
		holder[m] = true
	}
	for changed := true; changed; {
		changed = false
		for _, info := range state.methods {
			m := info.Obj
			if holder[m] || m.Exported() {
				continue
			}
			ins := callers[m]
			if len(ins) == 0 {
				continue
			}
			all := true
			for c := range ins {
				if !holder[c] {
					all = false
					break
				}
			}
			if all {
				holder[m] = true
				changed = true
			}
		}
	}
	for _, info := range state.methods {
		if holder[info.Obj] || !prog.inReport[info.Pkg] {
			continue
		}
		for _, acc := range fieldAccesses(info, state.fields) {
			if guarded[acc.field] {
				pass.Reportf(acc.pos, "field %s.%s is accessed under the mutex in other methods but without holding the lock here", state.typ.Obj().Name(), acc.field.Name())
			}
		}
	}
}

// fieldAccess is one selector touch of a tracked struct field.
type fieldAccess struct {
	field types.Object
	pos   token.Pos
	// write is true for mutating touches: the selector (possibly behind
	// index expressions, "m.phases[k] = v") on an assignment's left side,
	// an IncDec operand, or an address-taken field.
	write bool
}

// fieldAccesses lists the body's selector accesses to the given fields,
// in source order, classified read/write.
func fieldAccesses(info *FuncInfo, fields map[types.Object]bool) []fieldAccess {
	parents := parentsOf(info.Decl.Body)
	var out []fieldAccess
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if f := fieldOf(info.Pkg, sel); f != nil && fields[f] {
			out = append(out, fieldAccess{field: f, pos: sel.Sel.Pos(), write: isWriteContext(parents, sel)})
		}
		return true
	})
	return out
}

// isWriteContext walks up from the selector through index/selector chains
// and reports whether it lands in a mutating position.
func isWriteContext(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for {
		p := parents[n]
		switch x := p.(type) {
		case *ast.IndexExpr:
			if x.X == n {
				n = x
				continue
			}
			return false
		case *ast.SelectorExpr:
			if x.X == n {
				n = x
				continue
			}
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if lhs == n {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return x.X == n
		case *ast.UnaryExpr:
			return x.Op == token.AND
		default:
			return false
		}
	}
}
