package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"
)

// The load harness drives a running paserve with a deterministic request
// schedule: which target each request hits is a pure function of (seed,
// request index) via a splitmix64 counter PRNG — the same construction the
// fault injector uses — so two runs with the same flags issue the identical
// request sequence. Only the wall-clock arrival times vary.

// Target is one weighted entry of the load mix.
type Target struct {
	// Name labels the target in the report ("predict", "healthz", ...).
	Name string
	// Method and Path address the endpoint; Body is sent verbatim.
	Method string
	Path   string
	Body   []byte
	// Weight is the target's relative share of the mix (≥ 1).
	Weight int
}

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// QPS is the offered request rate; Duration the run length. The total
	// request count is round(QPS·Duration) and is scheduled on a fixed
	// grid, so the offered load does not drift with response latency.
	QPS      float64
	Duration time.Duration
	// Targets is the weighted mix.
	Targets []Target
	// Seed keys the deterministic target schedule.
	Seed uint64
	// Concurrency caps outstanding requests (default 128). When the cap is
	// reached the sender blocks, so a stalled server shows up as achieved
	// QPS below offered QPS rather than unbounded goroutine growth.
	Concurrency int
	// Client is the HTTP client (default: one with a 30 s timeout).
	Client *http.Client
}

// TargetStats aggregates one target's outcomes.
type TargetStats struct {
	Name     string `json:"name"`
	Requests int    `json:"requests"`
}

// LoadReport summarizes a load run.
type LoadReport struct {
	Requests    int            `json:"requests"`
	Transport   int            `json:"transport_errors"`
	Status      map[string]int `json:"status"`
	Non2xx      int            `json:"non_2xx"`
	Status5xx   int            `json:"status_5xx"`
	P50Ms       float64        `json:"p50_ms"`
	P99Ms       float64        `json:"p99_ms"`
	MaxMs       float64        `json:"max_ms"`
	ElapsedSec  float64        `json:"elapsed_sec"`
	OfferedQPS  float64        `json:"offered_qps"`
	AchievedQPS float64        `json:"achieved_qps"`
	Targets     []TargetStats  `json:"targets"`
	// IDMismatches counts responses whose X-Request-ID echo differs from
	// the deterministic ID the harness sent; IDDuplicates counts echoed IDs
	// seen on more than one response. Either being nonzero means request
	// attribution in the server's telemetry cannot be trusted.
	IDMismatches int `json:"id_mismatches"`
	IDDuplicates int `json:"id_duplicates"`
}

// String renders the report as the human summary paload prints.
func (r *LoadReport) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "requests %d in %.2f s (offered %.0f QPS, achieved %.0f QPS)\n",
		r.Requests, r.ElapsedSec, r.OfferedQPS, r.AchievedQPS)
	fmt.Fprintf(&b, "latency p50 %.2f ms, p99 %.2f ms, max %.2f ms\n", r.P50Ms, r.P99Ms, r.MaxMs)
	codes := make([]string, 0, len(r.Status))
	for c := range r.Status {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "status %s: %d\n", c, r.Status[c])
	}
	if r.Transport > 0 {
		fmt.Fprintf(&b, "transport errors: %d\n", r.Transport)
	}
	if r.IDMismatches > 0 || r.IDDuplicates > 0 {
		fmt.Fprintf(&b, "request-id mismatches: %d, duplicates: %d\n", r.IDMismatches, r.IDDuplicates)
	}
	for _, t := range r.Targets {
		fmt.Fprintf(&b, "target %s: %d\n", t.Name, t.Requests)
	}
	return b.String()
}

// splitmix64 is the counter-based generator keying the target schedule
// (same construction as internal/faults: a pure function of the counter,
// so the schedule is independent of goroutine interleaving).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// loadRequestID derives request i's deterministic X-Request-ID as a
// counter stream from a per-seed origin. Mixing the seed through
// splitmix64 first (with the high bit as a domain tag, keeping it off the
// target-pick stream, which hashes seed^i directly) scatters different
// seeds' origins across the full 64-bit space — xor-ing a small seed into
// the counter would merely permute one shared stream, so two runs with
// different seeds would repeat each other's IDs. The "load-" prefix marks
// harness-issued IDs in the server's event log.
func loadRequestID(seed, i uint64) string {
	return "load-" + hexID(splitmix64(splitmix64(seed|1<<63)+i))
}

// pick maps request index i onto the weighted target list.
func pick(targets []Target, totalWeight int, seed, i uint64) *Target {
	w := int(splitmix64(seed^i) % uint64(totalWeight))
	for t := range targets {
		w -= targets[t].Weight
		if w < 0 {
			return &targets[t]
		}
	}
	return &targets[len(targets)-1]
}

// quantileMs returns the q-quantile of sorted latency samples, in ms.
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

// RunLoad drives the configured mix against BaseURL until the duration (or
// ctx) expires and returns the aggregate report. Request i fires at
// start + i/QPS; a response slower than the grid spacing never delays later
// arrivals unless the concurrency cap is hit.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.QPS <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("serve: load needs positive qps and duration (got %g, %s)", cfg.QPS, cfg.Duration)
	}
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("serve: load has no targets")
	}
	totalWeight := 0
	for _, t := range cfg.Targets {
		if t.Weight < 1 {
			return nil, fmt.Errorf("serve: target %s has weight %d (want ≥ 1)", t.Name, t.Weight)
		}
		totalWeight += t.Weight
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = 128
	}

	total := int(math.Round(cfg.QPS * cfg.Duration.Seconds()))
	if total < 1 {
		total = 1
	}
	spacing := time.Duration(float64(time.Second) / cfg.QPS)

	var (
		mu         sync.Mutex
		latencies  []time.Duration
		status     = map[string]int{}
		transport  int
		perTarget  = map[string]int{}
		seenIDs    = map[string]int{}
		mismatches int
		duplicates int
		wg         sync.WaitGroup
		sem        = make(chan struct{}, conc)
	)

	// The pacing clock is host wall time on purpose: the harness measures
	// the real server, not the simulated cluster.
	start := time.Now() //palint:ignore detsource -- load pacing is host wall time by design
	for i := 0; i < total; i++ {
		due := start.Add(time.Duration(i) * spacing)
		if d := time.Until(due); d > 0 { //palint:ignore detsource -- load pacing is host wall time by design
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		t := pick(cfg.Targets, totalWeight, cfg.Seed, uint64(i))
		id := loadRequestID(cfg.Seed, uint64(i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			req, err := http.NewRequestWithContext(ctx, t.Method, cfg.BaseURL+t.Path, bytes.NewReader(t.Body))
			if err == nil {
				req.Header.Set("X-Request-ID", id)
				if t.Body != nil {
					req.Header.Set("Content-Type", "application/json")
				}
			}
			var resp *http.Response
			sent := time.Now() //palint:ignore detsource -- measuring real request latency
			if err == nil {
				resp, err = client.Do(req)
			}
			elapsed := time.Since(sent) //palint:ignore detsource -- measuring real request latency
			mu.Lock()
			defer mu.Unlock()
			perTarget[t.Name]++
			if err != nil {
				transport++
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			latencies = append(latencies, elapsed)
			status[fmt.Sprintf("%d", resp.StatusCode)]++
			// The server must echo the ID it was handed, exactly once: a
			// mismatch means attribution is broken, a duplicate means two
			// responses claim the same request.
			echo := resp.Header.Get("X-Request-ID")
			if echo != id {
				mismatches++
			}
			seenIDs[echo]++
			if seenIDs[echo] == 2 {
				duplicates++
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start) //palint:ignore detsource -- load pacing is host wall time by design

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep := &LoadReport{
		Requests:     len(latencies) + transport,
		Transport:    transport,
		Status:       status,
		P50Ms:        quantileMs(latencies, 0.50),
		P99Ms:        quantileMs(latencies, 0.99),
		MaxMs:        quantileMs(latencies, 1.00),
		ElapsedSec:   elapsed.Seconds(),
		OfferedQPS:   cfg.QPS,
		IDMismatches: mismatches,
		IDDuplicates: duplicates,
	}
	if rep.ElapsedSec > 0 {
		rep.AchievedQPS = float64(rep.Requests) / rep.ElapsedSec
	}
	for code, n := range status {
		if code[0] != '2' {
			rep.Non2xx += n
		}
		if code[0] == '5' {
			rep.Status5xx += n
		}
	}
	names := make([]string, 0, len(perTarget))
	for n := range perTarget {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rep.Targets = append(rep.Targets, TargetStats{Name: n, Requests: perTarget[n]})
	}
	return rep, nil
}
