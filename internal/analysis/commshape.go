package analysis

import (
	"fmt"
)

// CommShape reports collective divergence: collectives and phase
// transitions control-dependent on rank-derived conditions.
var CommShape = &Analyzer{
	Name: "commshape",
	Doc:  "collectives or SetPhase control-dependent on rank-derived conditions",
	Explain: `The runtime's collectives (Barrier, Allreduce, Alltoall, ...) and
phase transitions must execute in lockstep: every rank reaches the same
call sites in the same order, or ranks block forever in mismatched
collectives and the per-(rank, phase) energy attribution silently
mispredicts. commshape extracts each function's communication tree and
reports any collective or SetPhase call (direct, or reached through a
module-internal helper) that is control-dependent on a rank-derived
condition — a branch or loop bound computed from Ctx.Rank(), from a
struct field holding a rank-derived value, or from a helper whose return
derives from the rank. Branches that merely take a rank-guarded error
return are exempt: the job aborts on error anyway. Point-to-point calls
are naturally rank-asymmetric and are left to the deadlock pass.`,
	Example: `if c.Rank() == 0 {
	c.Barrier() // commshape: collective Barrier control-dependent on rank-derived condition
}`,
	Run: runCommShape,
}

func runCommShape(pass *Pass) {
	if isMPIRuntimePkg(pass.Pkg) {
		return
	}
	prog := pass.Prog
	eachReportedFunc(pass, func(info *FuncInfo) {
		tree := prog.commTree(info)
		var walk func(nodes []*opNode, guards []string)
		walk = func(nodes []*opNode, guards []string) {
			// A rank-guarded arm that returns early makes everything after
			// the branch conditional too: ranks taking the return skip it.
			after := guards
			for _, n := range nodes {
				switch n.kind {
				case opBranch:
					g := after
					if n.condTainted {
						g = append(g[:len(g):len(g)], describeGuard(n))
					}
					walk(n.then, g)
					walk(n.els, g)
					if n.condTainted && branchReturnsNonError(n) {
						after = append(after[:len(after):len(after)],
							describeGuard(n)+" via early return")
					}
				case opLoop:
					g := after
					if n.loopTainted {
						g = append(g[:len(g):len(g)], "loop over rank-derived bounds")
					}
					walk(n.body, g)
				case opClosure:
					walk(n.body, after)
				case opColl:
					if len(after) > 0 {
						pass.Reportf(n.pos, "collective %s control-dependent on rank-derived condition %s; all ranks must reach collectives in lockstep", n.opName, after[len(after)-1])
					}
				case opPhase:
					if len(after) > 0 {
						pass.Reportf(n.pos, "phase transition SetPhase(%s) control-dependent on rank-derived condition %s; ranks would disagree on the phase sequence", phaseLabel(n), after[len(after)-1])
					}
				case opCall:
					if len(after) == 0 {
						continue
					}
					fact := prog.commFactOf(n.callee)
					step := shortFuncName(n.callee)
					for _, w := range fact.colls {
						if prog.sanctioned(pass.Analyzer.Name, w.pos) {
							continue
						}
						pass.Reportf(n.pos, "collective %s (via %s) control-dependent on rank-derived condition %s; all ranks must reach collectives in lockstep", w.name, joinVia(step, w.via), after[len(after)-1])
					}
					for _, w := range fact.phases {
						if prog.sanctioned(pass.Analyzer.Name, w.pos) {
							continue
						}
						pass.Reportf(n.pos, "phase transition (via %s) control-dependent on rank-derived condition %s; ranks would disagree on the phase sequence", joinVia(step, w.via), after[len(after)-1])
					}
				}
			}
		}
		walk(tree, nil)
	})
}

// branchReturnsNonError reports whether either arm of the branch returns
// without surfacing an error — the divergence that outlives the branch.
// Error returns abort the whole job, so ranks never run past them
// disagreeing.
func branchReturnsNonError(n *opNode) bool {
	pred := func(c *opNode) bool { return c.kind == opReturn && !c.errReturn }
	return subtreeHas(n.then, pred) || subtreeHas(n.els, pred)
}

// phaseLabel renders the SetPhase argument for reports.
func phaseLabel(n *opNode) string {
	if n.phaseConst {
		return fmt.Sprintf("%q", n.phaseName)
	}
	return "…"
}
