package obs

import "context"

// Request-scoped propagation. The serving layer stamps every HTTP request
// with an ID and threads it through the measurement pipeline via context:
// handler → campaign store → cluster.Sweep. The helpers live here rather
// than in the serve package because the store (internal/experiments) and
// the sweep (internal/cluster) already depend on obs and must not import
// the HTTP layer.

// ctxKey is the private key space for the package's context values.
type ctxKey int

const (
	ctxRequestID ctxKey = iota + 1
	ctxFlightInfo
	ctxSpanParent
)

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxRequestID, id)
}

// RequestIDFrom returns the context's request ID, or "" when none is set.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxRequestID).(string)
	return id
}

// FlightMode classifies how a store caller obtained its campaign.
type FlightMode string

const (
	// FlightNone: the caller never reached the store's flight machinery.
	FlightNone FlightMode = ""
	// FlightLed: the caller was the leader — its context's request paid
	// for the simulation.
	FlightLed FlightMode = "led"
	// FlightCoalesced: the caller rode another request's in-progress
	// flight; Leader names that request.
	FlightCoalesced FlightMode = "coalesced"
	// FlightDone: the entry was already measured when the caller arrived.
	FlightDone FlightMode = "done"
)

// FlightInfo is the store's per-caller annotation slot. A caller that
// wants to know how its campaign was obtained places a *FlightInfo in the
// context via WithFlightInfo; the store fills it in. Fields are written
// only from the caller's own goroutine (under the entry lock), so reading
// them after the store call returns is race-free.
type FlightInfo struct {
	// Mode says whether this caller led, coalesced or found the entry
	// measured.
	Mode FlightMode
	// Leader is the request ID of the flight leader when Mode is
	// FlightCoalesced — which request's simulation this caller rode.
	Leader string
}

// WithFlightInfo returns a context carrying the annotation slot.
func WithFlightInfo(ctx context.Context, fi *FlightInfo) context.Context {
	return context.WithValue(ctx, ctxFlightInfo, fi)
}

// FlightInfoFrom returns the context's annotation slot, or nil.
func FlightInfoFrom(ctx context.Context) *FlightInfo {
	fi, _ := ctx.Value(ctxFlightInfo).(*FlightInfo)
	return fi
}

// WithSpanParent returns a context carrying a recorder span ID under which
// downstream layers should parent the spans they record — how a serving
// request span comes to enclose the campaign span its simulation produced.
func WithSpanParent(ctx context.Context, id int) context.Context {
	return context.WithValue(ctx, ctxSpanParent, id)
}

// SpanParentFrom returns the context's parent span ID, or -1 (a root)
// when none is set.
func SpanParentFrom(ctx context.Context) int {
	if id, ok := ctx.Value(ctxSpanParent).(int); ok {
		return id
	}
	return -1
}
