package commspec

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Skeleton is the statically extracted communication contract of a module:
// one entry per kernel (a function that launches an mpi job), listing the
// phases it may enter and the collective and point-to-point operations it
// may perform, with partners/tags/guards in the rank algebra. palint
// -skeleton emits it; cmd/paverify replays recorded traces against it.
type Skeleton struct {
	// Module is the Go module the skeleton was extracted from.
	Module string `json:"module"`
	// Kernels is sorted by name for byte-deterministic output.
	Kernels []Kernel `json:"kernels"`
}

// Kernel is one mpi entry point's communication shape.
type Kernel struct {
	// Name is the lowercased receiver (or function) name — "ft", "lu" —
	// matching the -kernel flags of the simulation drivers.
	Name string `json:"name"`
	// Func is the declaring function, e.g. "npb.(FT).Run".
	Func string `json:"func"`
	// Phases are the SetPhase labels the kernel can enter, in static
	// traversal order. The implicit initial phase "main" is always legal.
	Phases []string `json:"phases"`
	// Collectives are the collective call sites.
	Collectives []Collective `json:"collectives,omitempty"`
	// P2P are the point-to-point endpoints; a SendRecv contributes one
	// send and one recv entry.
	P2P []P2P `json:"p2p,omitempty"`
}

// Collective is one collective call site.
type Collective struct {
	// Op is the mpi method name: "Allreduce", "Barrier", ...
	Op string `json:"op"`
	// Phase is the phase the call executes under, or "?" when ambiguous.
	Phase string `json:"phase"`
	// Guard is the conjunction of enclosing conditions in the rank
	// algebra; empty means unconditional, "?" unresolvable.
	Guard string `json:"guard,omitempty"`
	// Pos is the module-relative file:line of the call.
	Pos string `json:"pos"`
}

// P2P is one point-to-point endpoint.
type P2P struct {
	// Dir is "send" or "recv".
	Dir string `json:"dir"`
	// Partner is the peer rank expression over {rank, N}, or "?".
	Partner string `json:"partner"`
	// Tag is the message tag expression, or "?".
	Tag string `json:"tag"`
	// Phase is the phase the call executes under, or "?".
	Phase string `json:"phase"`
	// Guard is as in Collective.
	Guard string `json:"guard,omitempty"`
	// Pos is the module-relative file:line of the call.
	Pos string `json:"pos"`
}

// Normalize sorts the skeleton into its canonical order: kernels by name,
// collectives by (op, guard, pos), p2p by (dir, partner, tag, guard, pos).
// Phases keep their traversal order (it is already deterministic).
func (s *Skeleton) Normalize() {
	sort.Slice(s.Kernels, func(i, j int) bool { return s.Kernels[i].Name < s.Kernels[j].Name })
	for k := range s.Kernels {
		ker := &s.Kernels[k]
		sort.Slice(ker.Collectives, func(i, j int) bool {
			a, b := ker.Collectives[i], ker.Collectives[j]
			if a.Op != b.Op {
				return a.Op < b.Op
			}
			if a.Guard != b.Guard {
				return a.Guard < b.Guard
			}
			return a.Pos < b.Pos
		})
		sort.Slice(ker.P2P, func(i, j int) bool {
			a, b := ker.P2P[i], ker.P2P[j]
			if a.Dir != b.Dir {
				return a.Dir < b.Dir
			}
			if a.Partner != b.Partner {
				return a.Partner < b.Partner
			}
			if a.Tag != b.Tag {
				return a.Tag < b.Tag
			}
			if a.Guard != b.Guard {
				return a.Guard < b.Guard
			}
			return a.Pos < b.Pos
		})
	}
}

// JSON renders the skeleton as canonical indented JSON (Normalize first for
// byte determinism).
func (s *Skeleton) JSON() ([]byte, error) {
	s.Normalize()
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ParseSkeleton loads a skeleton written by JSON, validating every
// expression so conformance checking cannot fail mid-replay.
func ParseSkeleton(data []byte) (*Skeleton, error) {
	var s Skeleton
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("commspec: bad skeleton: %w", err)
	}
	for _, k := range s.Kernels {
		for _, c := range k.Collectives {
			if err := checkGuard(c.Guard); err != nil {
				return nil, fmt.Errorf("commspec: kernel %s collective %s: %w", k.Name, c.Op, err)
			}
		}
		for _, p := range k.P2P {
			if p.Dir != "send" && p.Dir != "recv" {
				return nil, fmt.Errorf("commspec: kernel %s: bad p2p dir %q", k.Name, p.Dir)
			}
			if _, err := Compile(p.Partner); err != nil {
				return nil, fmt.Errorf("commspec: kernel %s p2p partner: %w", k.Name, err)
			}
			if _, err := Compile(p.Tag); err != nil {
				return nil, fmt.Errorf("commspec: kernel %s p2p tag: %w", k.Name, err)
			}
			if err := checkGuard(p.Guard); err != nil {
				return nil, fmt.Errorf("commspec: kernel %s p2p guard: %w", k.Name, err)
			}
		}
	}
	return &s, nil
}

func checkGuard(g string) error {
	if g == "" {
		return nil
	}
	_, err := Compile(g)
	return err
}

// Kernel returns the named kernel, or nil.
func (s *Skeleton) Kernel(name string) *Kernel {
	for i := range s.Kernels {
		if s.Kernels[i].Name == name {
			return &s.Kernels[i]
		}
	}
	return nil
}

// guardHolds reports whether the guard can be satisfied at (rank, n):
// empty and wildcard guards are satisfiable, a resolvable guard must
// evaluate to true.
func guardHolds(guard string, rank, n int) bool {
	if guard == "" || guard == Unknown {
		return true
	}
	v, known, err := EvalBool(guard, rank, n)
	if err != nil || !known {
		return true // unresolvable at replay time: treat as wildcard
	}
	return v
}

// phaseMatches reports whether an observed phase is admitted by a site's
// static phase label.
func phaseMatches(site, observed string) bool {
	return site == observed || site == Unknown
}

// CheckPhase verifies an observed phase transition: the label must be one
// the skeleton predicts for this kernel.
func (k *Kernel) CheckPhase(name string) error {
	for _, p := range k.Phases {
		if p == name || p == Unknown {
			return nil
		}
	}
	return fmt.Errorf("phase %q not predicted by skeleton for kernel %s (static phases: %v)", name, k.Name, k.Phases)
}

// CheckCollective verifies an observed collective: some predicted
// collective site must match the op under a satisfiable guard in the
// observed phase.
func (k *Kernel) CheckCollective(op, phase string, rank, n int) error {
	for _, c := range k.Collectives {
		if c.Op == op && phaseMatches(c.Phase, phase) && guardHolds(c.Guard, rank, n) {
			return nil
		}
	}
	return fmt.Errorf("collective %s by rank %d in phase %q (N=%d) not predicted by skeleton for kernel %s", op, rank, phase, n, k.Name)
}

// CheckP2P verifies an observed message endpoint: some predicted p2p site
// with the right direction must resolve to the observed peer (or be a
// wildcard), carry the observed tag (or a wildcard), match the phase and
// hold its guard.
func (k *Kernel) CheckP2P(dir string, rank, peer, tag int, phase string, n int) error {
	for _, p := range k.P2P {
		if p.Dir != dir || !phaseMatches(p.Phase, phase) || !guardHolds(p.Guard, rank, n) {
			continue
		}
		pv, pKnown, err := EvalInt(p.Partner, rank, n)
		if err != nil {
			continue
		}
		if pKnown && pv != peer {
			continue
		}
		tv, tKnown, err := EvalInt(p.Tag, rank, n)
		if err != nil {
			continue
		}
		if tKnown && tv != tag {
			continue
		}
		return nil
	}
	return fmt.Errorf("%s rank %d ↔ rank %d tag %d in phase %q (N=%d) not predicted by skeleton for kernel %s", dir, rank, peer, tag, phase, n, k.Name)
}
