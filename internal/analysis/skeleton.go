package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"pasp/internal/commspec"
)

// This file extracts the module's communication skeleton (commspec.Skeleton)
// from the same guarded operation trees the commcheck passes analyze. The
// skeleton OVER-approximates: every operation a kernel can perform at some
// (rank, N) must appear, with guards and phases downgraded to the wildcard
// "?" whenever the static side cannot pin them — conformance checking
// (cmd/paverify) rejects observed events with no predicted site, so a
// missing prediction would be a false alarm while a loose one merely
// weakens the check.

// ModulePath exposes the loader's go.mod module reading for tools that
// stamp the skeleton.
func ModulePath(root string) (string, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return "", err
	}
	return modulePath(abs)
}

// BuildSkeleton extracts the communication skeleton of every kernel — a
// function in the reporting set that launches an mpi job — from the shared
// Program. root anchors the module-relative positions.
func BuildSkeleton(root, module string, pkgs []*Package, prog *Program) (*commspec.Skeleton, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	sk := &commspec.Skeleton{Module: module}
	names := map[string]int{}
	for _, pkg := range pkgs {
		if isMPIRuntimePkg(pkg) {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				info := prog.funcs[obj]
				if info == nil || !prog.containsMPIRun(info) {
					continue
				}
				name := kernelName(obj)
				if n := names[name]; n > 0 {
					name = fmt.Sprintf("%s-%d", name, n+1)
				}
				names[kernelName(obj)]++
				k := extractKernel(absRoot, prog, info)
				k.Name = name
				k.Func = shortFuncName(obj)
				sk.Kernels = append(sk.Kernels, *k)
			}
		}
	}
	sk.Normalize()
	return sk, nil
}

// kernelName derives the replay name: the lowercased receiver type
// ("FT" → "ft"), or the lowercased function name for plain functions.
func kernelName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			return strings.ToLower(named.Obj().Name())
		}
	}
	return strings.ToLower(fn.Name())
}

// skelWalker accumulates one kernel's sites during tree traversal.
type skelWalker struct {
	prog    *Program
	root    string
	kernel  *commspec.Kernel
	phases  map[string]bool
	collSet map[string]bool
	p2pSet  map[string]bool
}

func extractKernel(root string, prog *Program, info *FuncInfo) *commspec.Kernel {
	w := &skelWalker{
		prog:    prog,
		root:    root,
		kernel:  &commspec.Kernel{Phases: []string{}},
		phases:  map[string]bool{},
		collSet: map[string]bool{},
		p2pSet:  map[string]bool{},
	}
	w.walk(prog.commTree(info), "main", "", 0, map[*types.Func]bool{})
	return w.kernel
}

func (w *skelWalker) pos(p token.Pos) string {
	position := w.prog.fset.Position(p)
	file := position.Filename
	if rel, err := filepath.Rel(w.root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d", file, position.Line)
}

func (w *skelWalker) addPhase(name string) {
	if !w.phases[name] {
		w.phases[name] = true
		w.kernel.Phases = append(w.kernel.Phases, name)
	}
}

func (w *skelWalker) addColl(c commspec.Collective) {
	key := c.Op + "\x00" + c.Phase + "\x00" + c.Guard + "\x00" + c.Pos
	if !w.collSet[key] {
		w.collSet[key] = true
		w.kernel.Collectives = append(w.kernel.Collectives, c)
	}
}

func (w *skelWalker) addP2P(p commspec.P2P) {
	key := p.Dir + "\x00" + p.Partner + "\x00" + p.Tag + "\x00" + p.Phase + "\x00" + p.Guard + "\x00" + p.Pos
	if !w.p2pSet[key] {
		w.p2pSet[key] = true
		w.kernel.P2P = append(w.kernel.P2P, p)
	}
}

// conj extends a guard conjunction; any unknown conjunct poisons the whole
// guard to the wildcard.
func conj(guard, cond string) string {
	if guard == commspec.Unknown || cond == commspec.Unknown {
		return commspec.Unknown
	}
	if guard == "" {
		return cond
	}
	return "(" + guard + "&&" + cond + ")"
}

// walk traverses one tree, returning the exit phase ("?" when ambiguous).
func (w *skelWalker) walk(nodes []*opNode, phase, guard string, depth int, busy map[*types.Func]bool) string {
	for _, n := range nodes {
		switch n.kind {
		case opPhase:
			if n.phaseConst {
				phase = n.phaseName
			} else {
				phase = commspec.Unknown
			}
			w.addPhase(phase)
		case opColl:
			w.addColl(commspec.Collective{Op: n.opName, Phase: phase, Guard: guard, Pos: w.pos(n.pos)})
		case opP2P:
			p := w.pos(n.pos)
			switch n.comm {
			case commSend:
				w.addP2P(commspec.P2P{Dir: "send", Partner: n.partner, Tag: n.tag, Phase: phase, Guard: guard, Pos: p})
			case commRecv:
				w.addP2P(commspec.P2P{Dir: "recv", Partner: n.partner, Tag: n.tag, Phase: phase, Guard: guard, Pos: p})
			case commSendRecv:
				w.addP2P(commspec.P2P{Dir: "send", Partner: n.partner, Tag: n.tag, Phase: phase, Guard: guard, Pos: p})
				w.addP2P(commspec.P2P{Dir: "recv", Partner: n.partner2, Tag: n.tag, Phase: phase, Guard: guard, Pos: p})
			}
		case opBranch:
			thenGuard := conj(guard, n.condStr)
			elsGuard := guard
			if n.condStr == commspec.Unknown {
				elsGuard = commspec.Unknown
			} else if n.els != nil {
				elsGuard = conj(guard, "(!"+n.condStr+")")
			}
			thenPhase := w.walk(n.then, phase, thenGuard, depth, busy)
			elsPhase := w.walk(n.els, phase, elsGuard, depth, busy)
			if thenPhase == elsPhase {
				phase = thenPhase
			} else {
				phase = commspec.Unknown
				w.addPhase(phase)
			}
		case opLoop:
			exit := w.walk(n.body, phase, guard, depth, busy)
			if exit != phase {
				phase = commspec.Unknown
				w.addPhase(phase)
			}
		case opClosure:
			// Def-site approximation: the closure runs under some caller-
			// determined phase and condition.
			w.walk(n.body, commspec.Unknown, commspec.Unknown, depth, busy)
		case opCall:
			phase = w.walkCallee(n.callee, phase, guard, depth, busy)
		case opReturn:
			return phase
		}
	}
	return phase
}

// walkCallee descends into a module-internal callee's tree; recursion or
// excessive depth degrades to wildcard predictions from the fact table so
// the skeleton stays an over-approximation.
func (w *skelWalker) walkCallee(fn *types.Func, phase, guard string, depth int, busy map[*types.Func]bool) string {
	info := w.prog.funcOf(fn)
	if info == nil || isMPIRuntimePkg(info.Pkg) {
		return phase
	}
	if depth > 8 || busy[fn] {
		fact := w.prog.commFactOf(fn)
		for _, c := range fact.colls {
			w.addColl(commspec.Collective{Op: c.name, Phase: commspec.Unknown, Guard: commspec.Unknown, Pos: w.pos(c.pos)})
		}
		if len(fact.phases) > 0 {
			w.addPhase(commspec.Unknown)
			phase = commspec.Unknown
		}
		if fact.hasP2P {
			pos := w.pos(info.Decl.Pos())
			w.addP2P(commspec.P2P{Dir: "send", Partner: commspec.Unknown, Tag: commspec.Unknown, Phase: commspec.Unknown, Guard: commspec.Unknown, Pos: pos})
			w.addP2P(commspec.P2P{Dir: "recv", Partner: commspec.Unknown, Tag: commspec.Unknown, Phase: commspec.Unknown, Guard: commspec.Unknown, Pos: pos})
		}
		return phase
	}
	busy[fn] = true
	defer delete(busy, fn)
	return w.walk(w.prog.commTree(info), phase, guard, depth+1, busy)
}
