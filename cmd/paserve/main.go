// Command paserve serves the prediction pipeline over HTTP/JSON: measured
// campaign cells, SP/FP model predictions, robustness sweeps, Perfetto
// traces and the process metric snapshot.
//
// Usage:
//
//	paserve [-addr :8080] [-suite paper|quick|scale] [-engine goroutine|event]
//	        [-max-inflight 4] [-retry-after 1] [-max-body 65536]
//	        [-warm ft,ep] [-drain 10s]
//	        [-events events.jsonl] [-ring 256] [-trace serve-trace.json]
//
// Endpoints:
//
//	POST /predict        {"kernel":"ft","n":4,"f":1400}     → one grid cell
//	POST /sweep          {"kernel":"ft"}                     → the full grid
//	POST /robustness     {"kernel":"ft","ns":[4],"magnitudes":[0,1]}
//	POST /trace          {"kernel":"ft","n":4,"f":1400}     → Perfetto JSON
//	GET  /healthz
//	GET  /metrics        [?format=json]
//	GET  /debug/requests [?format=json]   (with -events or -ring)
//
// The first request for a kernel measures its campaign (bounded by
// -max-inflight; identical concurrent requests coalesce onto one sweep);
// later requests answer from the memoized campaign without admission
// control. -warm pre-measures kernels before the listener opens so a load
// test starts in the cache-hit regime. On SIGINT/SIGTERM the server stops
// accepting connections and drains in-flight requests for up to -drain.
//
// Telemetry: -events appends one wide JSON event per request (the format
// cmd/pastat analyzes) and enables /debug/requests over the last -ring
// events; -ring alone enables the debug endpoint without a file. -trace
// writes, at shutdown, a Perfetto trace of every request span with the
// campaign spans of the simulations they triggered nested inside.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pasp/internal/experiments"
	"pasp/internal/mpi"
	"pasp/internal/obs"
	"pasp/internal/serve"
)

// run executes the server against args, writing human output to stdout. It
// returns when the listener fails or a shutdown signal has been drained.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("paserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	suite := fs.String("suite", "paper", "kernel class scale: paper, quick or scale")
	engine := fs.String("engine", "", "rank runtime override: goroutine or event (default: the suite platform's engine)")
	maxInflight := fs.Int("max-inflight", 4, "maximum concurrently simulating requests (cache hits are unlimited)")
	retryAfter := fs.Int("retry-after", 1, "Retry-After seconds on 429 responses")
	maxBody := fs.Int64("max-body", 64<<10, "request body byte cap")
	warm := fs.String("warm", "", "comma-separated kernels to measure before listening (e.g. ft,ep)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	events := fs.String("events", "", "append one wide JSON event per request to this file")
	ring := fs.Int("ring", 0, "events retained for /debug/requests (0: default 256; enables the endpoint even without -events)")
	traceOut := fs.String("trace", "", "write a Perfetto trace of request + simulation spans here at shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s, err := experiments.SuiteByName(*suite)
	if err != nil {
		return err
	}
	if *engine != "" {
		e := mpi.Engine(*engine)
		if err := e.Validate(); err != nil {
			return err
		}
		s.Platform.Engine = e
	}

	// Telemetry sinks are wired before warming so even warm-up simulations
	// land in the trace (as root campaign spans — no request led them).
	var eventLog *obs.EventLog
	if *events != "" || *ring > 0 {
		var sink io.Writer
		if *events != "" {
			f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("paserve: opening event log: %w", err)
			}
			defer f.Close()
			sink = f
		}
		eventLog = obs.NewEventLog(sink, *ring)
	}
	var rec *obs.Recorder
	if *traceOut != "" {
		rec = obs.NewRecorder()
		obs.SetGlobal(rec)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *warm != "" {
		for _, name := range strings.Split(*warm, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, err := s.MeasureKernel(ctx, name); err != nil {
				return fmt.Errorf("paserve: warming %s: %w", name, err)
			}
			fmt.Fprintf(stdout, "paserve: warmed %s\n", name)
		}
	}

	srv := serve.New(serve.Config{
		Suite:         s,
		SuiteName:     *suite,
		MaxInFlight:   *maxInflight,
		RetryAfterSec: *retryAfter,
		MaxBodyBytes:  *maxBody,
		Events:        eventLog,
		Trace:         rec,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "paserve: suite %s listening on %s\n", *suite, ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintf(stdout, "paserve: draining for up to %s\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("paserve: drain: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if rec != nil {
		if err := writeServeTrace(rec, *traceOut, stdout); err != nil {
			return err
		}
	}
	fmt.Fprintln(stdout, "paserve: drained, bye")
	return nil
}

// writeServeTrace exports the recorder's request and campaign spans as a
// validated Perfetto trace. Campaign spans run on the simulator's virtual
// clock, so they are rebased under the wall-clock request spans that
// triggered them before export.
func writeServeTrace(rec *obs.Recorder, path string, stdout io.Writer) error {
	spans := obs.NestSpans(rec.Spans())
	data := obs.SpansChromeTrace(spans, "paserve")
	n, err := obs.ValidateChromeTrace(data)
	if err != nil {
		return fmt.Errorf("paserve: refusing to write invalid trace: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("paserve: writing trace: %w", err)
	}
	fmt.Fprintf(stdout, "paserve: wrote %d trace events to %s\n", n, path)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "paserve: %v\n", err)
		os.Exit(1)
	}
}
