// Dvfsschedule: three generations of phase-level DVFS on the same FT
// workload — a hand-written static policy, and a profile-free online
// adaptive tuner that learns per-phase gears from its own measurements —
// plus the static policy on LU, where fine-grained messages make derating
// unprofitable. This is the technique the paper's introduction motivates.
//
//	go run ./examples/dvfsschedule
package main

import (
	"fmt"
	"log"
	"sort"

	"pasp/internal/cluster"
	"pasp/internal/dvfs"
	"pasp/internal/mpi"
	"pasp/internal/npb"
)

func main() {
	platform := cluster.PentiumM()

	ft := npb.FT{Nx: 32, Ny: 32, Nz: 32, Iters: 4, Scale: 64}
	lu := npb.LU{N: 32, Iters: 12}

	for _, n := range []int{4, 8, 16} {
		w, err := platform.World(n, 1400)
		if err != nil {
			log.Fatal(err)
		}
		cmpFT, err := dvfs.Compare(w, dvfs.FTPolicy(platform.Prof), func(w mpi.World) (*mpi.Result, error) {
			_, r, err := ft.Run(w)
			return r, err
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("FT N=%2d: %v\n", n, cmpFT)
	}
	for _, n := range []int{4, 8} {
		w, err := platform.World(n, 1400)
		if err != nil {
			log.Fatal(err)
		}
		cmpLU, err := dvfs.Compare(w, dvfs.LUPolicy(platform.Prof), func(w mpi.World) (*mpi.Result, error) {
			_, r, err := lu.Run(w)
			return r, err
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("LU N=%2d: %v\n", n, cmpLU)
	}

	// The online tuner needs iterations to explore all five gears.
	long := ft
	long.Iters = 24
	w, err := platform.World(8, 1400)
	if err != nil {
		log.Fatal(err)
	}
	tuner := &dvfs.Adaptive{Prof: platform.Prof, SwitchSec: 50e-6}
	cmpA, chosen, err := dvfs.CompareAdaptive(w, tuner, func(w mpi.World) (*mpi.Result, error) {
		_, r, err := long.Run(w)
		return r, err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadaptive (online, no profile) FT N=8 over 24 iterations: %v\n", cmpA)
	fmt.Println("rank-0 converged gears:")
	phases := make([]string, 0, len(chosen))
	for phase := range chosen {
		phases = append(phases, phase)
	}
	sort.Strings(phases)
	for _, phase := range phases {
		fmt.Printf("  %-14s %v\n", phase, chosen[phase])
	}
}
