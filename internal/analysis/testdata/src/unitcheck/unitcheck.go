// Package unitcheck seeds dimensional-analysis violations for the
// unitcheck analyzer's golden test. Every function compiles — that is the
// point: Go's type system accepts all of these, and only the analyzer's
// derived dimensions tell the wrong ones apart.
package unitcheck

import "pasp/internal/units"

// Cross-dimension conversions: Go treats them as ordinary numeric
// conversions, but each one silently relabels a physical quantity.
func crossConversions(f units.Hertz, n units.Nanos) {
	_ = units.Seconds(f) // want: a frequency is not a duration
	_ = units.Cycles(f)  // want: Hz is cyc/s, not cyc
	_ = units.Ratio(f)   // want: dropping a dimension needs float64()
	_ = units.Seconds(n) // want: ns → s without NanosToSec loses the 1e-9
}

// Derived dimensions: the static type of a/b and t*t is still Hertz and
// Seconds, but the physical dimension is not.
func derivedDimensions(a, b units.Hertz, t units.Seconds) bool {
	_ = units.Hertz(a / b) // want: a frequency ratio is dimensionless
	_ = t + t*t            // want: s plus s²
	return t > t*t         // want: s compared against s²
}

// Bare scale literals: rescaling a dimensioned value inline instead of
// through the units package's blessed helpers.
func bareScaleLiterals(t units.Seconds, n units.Nanos) {
	_ = t * 1e9 // want: use t.Nanos()
	_ = n / 1e3 // want: rescaling ns by hand
}

// mhzToHertz hides the scale literal inside the conversion itself — the
// shape that motivated the check: units.MHz(mhz) is the blessed spelling.
func mhzToHertz(mhz float64) units.Hertz {
	return units.Hertz(mhz * 1e6) // want: use units.MHz(mhz)
}

// legacyNanos is the sanctioned way to silence a finding: name the
// analyzer and say why.
func legacyNanos(t units.Seconds) float64 {
	//palint:ignore unitcheck -- legacy CSV schema stores raw nanoseconds; helper landing separately
	return float64(t * 1e9)
}

// goodArithmetic exercises the shapes that must stay quiet: blessed
// helpers, like-dimension arithmetic, constant seeding, and the float64
// escape hatch.
func goodArithmetic(f units.Hertz, n units.Nanos, t units.Seconds, p units.Watts) float64 {
	_ = n.Sec()               // blessed rescale
	_ = units.MHz(1400)       // blessed scale constructor
	_ = f.CyclesIn(t)         // Hz·s → cyc through a helper
	_ = p.Energy(t)           // W·s → J through a helper
	_ = units.Seconds(10)     // constants adapt to any dimension
	_ = t + t.Times(2)        // s + s
	_ = f.Per(units.MHz(600)) // ratio through the helper
	sum := t + t
	if sum > t.Div(2) { // like dimensions compare freely
		return float64(f) // the escape hatch: explicit and visible
	}
	return float64(p)
}
