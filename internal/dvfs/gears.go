package dvfs

import (
	"fmt"
	"sort"

	"pasp/internal/mpi"
	"pasp/internal/power"
	"pasp/internal/units"
)

// GearPolicy is the general form of a phase schedule: any phase may run at
// any operating point, not just top/bottom. It is what a model-driven
// optimizer produces when intermediate gears pay off (e.g. a partially
// frequency-sensitive pack/unpack phase).
type GearPolicy struct {
	// Default is the gear for phases not listed.
	Default power.PState
	// Phases maps phase labels to their gear.
	Phases map[string]power.PState
	// SwitchSec is the gear-transition stall applied by the runtime.
	SwitchSec units.Seconds
}

// Validate reports an error for an unusable policy.
func (p GearPolicy) Validate() error {
	if p.Default.Freq <= 0 {
		return fmt.Errorf("dvfs: zero-frequency default gear")
	}
	for phase, st := range p.Phases {
		if st.Freq <= 0 {
			return fmt.Errorf("dvfs: zero-frequency gear for phase %q", phase)
		}
	}
	if p.SwitchSec < 0 {
		return fmt.Errorf("dvfs: negative switch time")
	}
	return nil
}

// Hook returns the phase hook implementing the policy.
func (p GearPolicy) Hook() func(c *mpi.Ctx, phase string) {
	return func(c *mpi.Ctx, phase string) {
		if st, ok := p.Phases[phase]; ok {
			c.SetPState(st)
			return
		}
		c.SetPState(p.Default)
	}
}

// Apply returns a copy of the world with the policy installed.
func (p GearPolicy) Apply(w mpi.World) (mpi.World, error) {
	if err := p.Validate(); err != nil {
		return mpi.World{}, err
	}
	w.State = p.Default
	w.OnPhase = p.Hook()
	w.GearSwitchSec = p.SwitchSec
	return w, nil
}

// String renders the schedule sorted by phase name.
func (p GearPolicy) String() string {
	names := make([]string, 0, len(p.Phases))
	for n := range p.Phases {
		names = append(names, n)
	}
	sort.Strings(names)
	s := fmt.Sprintf("default %v", p.Default)
	for _, n := range names {
		s += fmt.Sprintf(", %s→%v", n, p.Phases[n])
	}
	return s
}

// CompareGears runs the kernel once pinned at the policy's default gear and
// once under the multi-gear policy.
func CompareGears(w mpi.World, p GearPolicy, run func(w mpi.World) (*mpi.Result, error)) (Comparison, error) {
	if err := p.Validate(); err != nil {
		return Comparison{}, err
	}
	base := w
	base.State = p.Default
	base.OnPhase = nil
	base.GearSwitchSec = 0
	baseRes, err := run(base)
	if err != nil {
		return Comparison{}, fmt.Errorf("dvfs: baseline: %w", err)
	}
	sched, err := p.Apply(w)
	if err != nil {
		return Comparison{}, err
	}
	schedRes, err := run(sched)
	if err != nil {
		return Comparison{}, fmt.Errorf("dvfs: scheduled: %w", err)
	}
	return Comparison{
		BaselineSec:     units.Seconds(baseRes.Seconds),
		BaselineJoules:  units.Joules(baseRes.Joules),
		ScheduledSec:    units.Seconds(schedRes.Seconds),
		ScheduledJoules: units.Joules(schedRes.Joules),
	}, nil
}

// PhaseModel describes one phase's predicted time at any gear:
// T(f) = FlatSec + ScaledSecMHz/fMHz, the segment model's coefficients.
type PhaseModel struct {
	// FlatSec is the frequency-insensitive time.
	FlatSec float64
	// ScaledSecMHz is the frequency-scaled coefficient (seconds·MHz).
	ScaledSecMHz float64
}

// Time returns the predicted phase time at a gear.
func (m PhaseModel) Time(st power.PState) units.Seconds {
	//palint:ignore floatdiv -- MHz() of a validated P-state frequency is > 0
	t := units.Seconds(m.FlatSec + m.ScaledSecMHz/st.Freq.MHz())
	if t < 0 {
		return 0
	}
	return t
}

// OptimizeEDP picks, independently for each phase, the gear minimizing the
// phase's predicted cluster energy-delay product n·P(f)·T(f)², where the
// node power is the busy-poll draw. For a flat phase the bottom gear wins;
// for a fully scaled phase the top gear wins (P ∝ V²f grows slower than
// the T² delay shrinks); partially sensitive phases land on intermediate
// gears — the schedule only a power-aware model can find.
func OptimizeEDP(prof power.Profile, n int, phases map[string]PhaseModel, switchSec units.Seconds) (GearPolicy, error) {
	if err := prof.Validate(); err != nil {
		return GearPolicy{}, err
	}
	if n < 1 {
		return GearPolicy{}, fmt.Errorf("dvfs: N = %d", n)
	}
	if len(phases) == 0 {
		return GearPolicy{}, fmt.Errorf("dvfs: no phase models")
	}
	pol := GearPolicy{
		Default:   prof.TopState(),
		Phases:    map[string]power.PState{},
		SwitchSec: switchSec,
	}
	for name, m := range phases {
		if m.FlatSec < 0 || m.ScaledSecMHz < 0 {
			return GearPolicy{}, fmt.Errorf("dvfs: negative coefficients for phase %q", name)
		}
		best := prof.TopState()
		bestEDP := -1.0
		for _, st := range prof.States {
			t := m.Time(st)
			edp := float64(n) * power.EDP(prof.NodePower(st, 1).Energy(t), t)
			if bestEDP < 0 || edp < bestEDP {
				bestEDP, best = edp, st
			}
		}
		pol.Phases[name] = best
	}
	return pol, nil
}
