package mpptest

import (
	"testing"

	"pasp/internal/machine"
	"pasp/internal/mpi"
	"pasp/internal/power"
	"pasp/internal/simnet"
	"pasp/internal/stats"
	"pasp/internal/units"
)

func world(n int, mhz float64) mpi.World {
	prof := power.PentiumM()
	st, err := prof.StateAt(units.MHz(mhz))
	if err != nil {
		panic(err)
	}
	return mpi.World{N: n, Net: simnet.FastEthernet(), Mach: machine.PentiumM(), Prof: prof, State: st}
}

func TestPingPongMatchesModel(t *testing.T) {
	w := world(2, 1000)
	got, err := PingPong(w, 1240, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := w.Net.PointToPoint(1240, w.State.Freq, w.State.Freq)
	if !stats.AlmostEqual(float64(got), want, 0.02) {
		t.Errorf("ping-pong %g s, model point-to-point %g s", float64(got), want)
	}
}

func TestPingPongFrequencyShape(t *testing.T) {
	// Table 6's communication rows: larger messages pick up a visible
	// penalty at the lowest gear; small ones are latency-bound.
	small600, err := PingPong(world(2, 600), 155*8, 20)
	if err != nil {
		t.Fatal(err)
	}
	small1400, err := PingPong(world(2, 1400), 155*8, 20)
	if err != nil {
		t.Fatal(err)
	}
	large600, err := PingPong(world(2, 600), 310*8, 20)
	if err != nil {
		t.Fatal(err)
	}
	large1400, err := PingPong(world(2, 1400), 310*8, 20)
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := small600-small1400, large600-large1400; d2 <= d1 {
		t.Errorf("frequency penalty should grow with size: %g vs %g", d1, d2)
	}
}

func TestPingPongValidation(t *testing.T) {
	if _, err := PingPong(world(4, 600), 100, 10); err == nil {
		t.Error("4-rank ping-pong accepted")
	}
	if _, err := PingPong(world(2, 600), 0, 10); err == nil {
		t.Error("zero-size message accepted")
	}
	if _, err := PingPong(world(2, 600), 8, 0); err == nil {
		t.Error("zero reps accepted")
	}
}

func TestSweepMonotone(t *testing.T) {
	pts, err := Sweep(world(2, 800), 64, 64<<10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 11 {
		t.Fatalf("got %d points, want 11", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Sec <= pts[i-1].Sec {
			t.Errorf("time not increasing at %d bytes", pts[i].Bytes)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := Sweep(world(2, 800), 0, 1024, 5); err == nil {
		t.Error("zero min accepted")
	}
	if _, err := Sweep(world(2, 800), 1024, 512, 5); err == nil {
		t.Error("inverted range accepted")
	}
}

// The measured latency/bandwidth recovered by a linear fit should agree
// with the configured network model.
func TestLinearFitRecoversNetworkParameters(t *testing.T) {
	w := world(2, 1400)
	pts, err := Sweep(w, 1<<10, 32<<10, 10)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = float64(p.Bytes)
		ys[i] = float64(p.Sec)
	}
	intercept, slope, err := stats.LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Slope ≈ 1/BW + 2·per-byte-CPU/f.
	wantSlope := 1/w.Net.BandwidthBps + 2*w.Net.ByteCPUIns/float64(w.State.Freq)
	if !stats.AlmostEqual(slope, wantSlope, 0.05) {
		t.Errorf("slope %g, want ≈ %g", slope, wantSlope)
	}
	if intercept < w.Net.LatencySec {
		t.Errorf("intercept %g below wire latency %g", intercept, w.Net.LatencySec)
	}
}
