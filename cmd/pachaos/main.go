// Command pachaos runs the model-robustness campaign: it fits the paper's SP
// and FP models on a kernel's clean (fault-free) measurement campaign, then
// re-measures the kernel on a cluster perturbed by the deterministic chaos
// harness at a sweep of magnitudes, reporting how fast the prediction error
// grows as the platform departs from the paper's assumptions.
//
// Usage:
//
//	pachaos [-bench ft|lu|...] [-suite paper|quick] [-np 4,8,16] [-mags 0,0.25,0.5,1]
//	        [-chaos spec] [-seed 1] [-csv out.csv] [-trace out.trace.json] [-metrics]
//
// -trace exports the campaign's span tree (one span per measured campaign,
// sized in virtual seconds) as Chrome trace-event JSON; -metrics prints the
// campaign-store hit/miss counters and campaign span accounting after the
// sweep, which shows how much measurement the memoization avoided.
//
// Without -chaos the sweep perturbs latency jitter only (the headline axis,
// monotone in magnitude by construction); -chaos takes a key=value spec (see
// faults.ParseSpec) describing the knobs at magnitude 1, e.g.
//
//	pachaos -bench ft -np 4,8,16 -mags 0,0.5,1 -chaos "seed=1,jitter=1,drop=0.01"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"pasp/internal/experiments"
	"pasp/internal/faults"
	"pasp/internal/obs"
)

// parseInts parses a comma-separated list of integers.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("pachaos: bad integer %q in %q", f, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloats parses a comma-separated list of floats.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("pachaos: bad float %q in %q", f, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// buildSpec assembles the sweep specification from the parsed flags.
func buildSpec(bench, ns, mags, chaos string, seed uint64) (experiments.RobustnessSpec, error) {
	nsList, err := parseInts(ns)
	if err != nil {
		return experiments.RobustnessSpec{}, err
	}
	magList, err := parseFloats(mags)
	if err != nil {
		return experiments.RobustnessSpec{}, err
	}
	cfg := experiments.JitterOnlyFaults(seed)
	if chaos != "" {
		if cfg, err = faults.ParseSpec(chaos); err != nil {
			return experiments.RobustnessSpec{}, err
		}
	}
	spec := experiments.RobustnessSpec{
		Kernel:     bench,
		Ns:         nsList,
		Magnitudes: magList,
		Faults:     cfg,
	}
	return spec, spec.Validate()
}

func main() {
	bench := flag.String("bench", "ft", "kernel: ep, ft, lu, cg, mg, is or sp")
	suite := flag.String("suite", "paper", "kernel class scale: paper or quick")
	ns := flag.String("np", "4,8,16", "processor counts, comma-separated (must lie on the kernel's campaign grid)")
	mags := flag.String("mags", "0,0.25,0.5,1", "perturbation magnitudes, ascending, comma-separated")
	chaos := flag.String("chaos", "", "fault knobs at magnitude 1 (see faults.ParseSpec); default: latency jitter only")
	seed := flag.Uint64("seed", 1, "PRNG seed for the default jitter-only config (ignored with -chaos)")
	csv := flag.String("csv", "", "also write the sweep as CSV to this file")
	traceOut := flag.String("trace", "", "write the campaign span tree as Chrome trace-event JSON to this file")
	metrics := flag.Bool("metrics", false, "print campaign-store metrics after the sweep")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	s, err := experiments.SuiteByName(*suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pachaos: %v\n", err)
		os.Exit(2)
	}
	spec, err := buildSpec(*bench, *ns, *mags, *chaos, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pachaos: %v\n", err)
		os.Exit(2)
	}
	var rec *obs.Recorder
	if *traceOut != "" || *metrics {
		// The campaign store reports spans to the installed global
		// observer; the recorder never changes a measured number.
		rec = obs.NewRecorder()
		defer obs.SetGlobal(obs.SetGlobal(rec))
	}
	res, err := s.Robustness(ctx, spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pachaos: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.String())
	if *csv != "" {
		if err := os.WriteFile(*csv, []byte(res.CSV()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pachaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nCSV written to %s\n", *csv)
	}
	if *metrics {
		fmt.Printf("\ncampaign metrics:\n%s", rec.Metrics().Snapshot().Text())
		fmt.Printf("\nprocess store counters:\n%s", obs.Default().Snapshot().Text())
	}
	if *traceOut != "" {
		data := obs.SpansChromeTrace(rec.Spans(), "pachaos "+*bench)
		n, err := obs.ValidateChromeTrace(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pachaos: refusing to write invalid trace: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pachaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("campaign trace (%d events) written to %s\n", n, *traceOut)
	}
}
