package dvfs

import (
	"strings"
	"testing"

	"pasp/internal/cluster"
	"pasp/internal/mpi"
	"pasp/internal/npb"
	"pasp/internal/power"
)

func ftRun(ft npb.FT) func(w mpi.World) (*mpi.Result, error) {
	return func(w mpi.World) (*mpi.Result, error) {
		_, r, err := ft.Run(w)
		return r, err
	}
}

func TestPolicyValidate(t *testing.T) {
	prof := power.PentiumM()
	if err := FTPolicy(prof).Validate(); err != nil {
		t.Errorf("FT policy invalid: %v", err)
	}
	if err := LUPolicy(prof).Validate(); err != nil {
		t.Errorf("LU policy invalid: %v", err)
	}
	bad := Policy{ComputeState: prof.TopState(), CommState: prof.BaseState()}
	if err := bad.Validate(); err == nil {
		t.Error("policy without comm phases accepted")
	}
	neg := FTPolicy(prof)
	neg.SwitchSec = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative switch time accepted")
	}
}

// The paper's motivating claim: on a communication-bound code, scheduling
// the communication phases at the bottom gear saves substantial energy at
// a small slowdown.
func TestFTScheduleSavesEnergy(t *testing.T) {
	p := cluster.PentiumM()
	w, err := p.World(8, 1400)
	if err != nil {
		t.Fatal(err)
	}
	ft := npb.FT{Nx: 16, Ny: 16, Nz: 16, Iters: 3, Scale: 64}
	cmp, err := Compare(w, FTPolicy(p.Prof), ftRun(ft))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.EnergySavings() < 0.10 {
		t.Errorf("energy savings %.1f%%, want ≥ 10%% on a comm-bound code", cmp.EnergySavings()*100)
	}
	if cmp.Slowdown() > 0.10 {
		t.Errorf("slowdown %.1f%%, want ≤ 10%%", cmp.Slowdown()*100)
	}
	if !strings.Contains(cmp.String(), "energy") {
		t.Error("comparison rendering broken")
	}
}

// On a computation-bound code the policy must be near-neutral: there is
// hardly any communication to slow down.
func TestEPScheduleNearNeutral(t *testing.T) {
	p := cluster.PentiumM()
	w, err := p.World(4, 1400)
	if err != nil {
		t.Fatal(err)
	}
	pol := Policy{
		ComputeState: p.Prof.TopState(),
		CommState:    p.Prof.BaseState(),
		CommPhases:   map[string]bool{"ep-allreduce": true},
		SwitchSec:    50e-6,
	}
	ep := npb.EP{LogPairs: 16, ScaleLog: 4}
	cmp, err := Compare(w, pol, func(w mpi.World) (*mpi.Result, error) {
		_, r, err := ep.Run(w)
		return r, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := cmp.Slowdown(); s > 0.02 {
		t.Errorf("EP slowdown %.2f%%, want ≈ 0", s*100)
	}
	if sav := cmp.EnergySavings(); sav > 0.05 {
		t.Errorf("EP energy savings %.1f%% suspiciously high for a compute-bound code", sav*100)
	}
}

func TestGearSwitchCostCharged(t *testing.T) {
	p := cluster.PentiumM()
	w, err := p.World(2, 1400)
	if err != nil {
		t.Fatal(err)
	}
	ft := npb.FT{Nx: 16, Ny: 16, Nz: 8, Iters: 2, Scale: 1}
	cheap := FTPolicy(p.Prof)
	cheap.SwitchSec = 0
	costly := FTPolicy(p.Prof)
	costly.SwitchSec = 10e-3 // absurd 10 ms per switch
	a, err := Compare(w, cheap, ftRun(ft))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compare(w, costly, ftRun(ft))
	if err != nil {
		t.Fatal(err)
	}
	if b.ScheduledSec <= a.ScheduledSec {
		t.Errorf("gear-switch cost not charged: %g vs %g", b.ScheduledSec, a.ScheduledSec)
	}
}

func TestApplySetsHook(t *testing.T) {
	p := cluster.PentiumM()
	w, err := p.World(2, 600)
	if err != nil {
		t.Fatal(err)
	}
	pol := FTPolicy(p.Prof)
	got, err := pol.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	if got.OnPhase == nil {
		t.Error("hook not installed")
	}
	if got.State != p.Prof.TopState() {
		t.Error("initial state not the compute gear")
	}
	if got.GearSwitchSec != pol.SwitchSec {
		t.Error("switch cost not propagated")
	}
}

// The scheduled run's trace must show the gear actually dropping: the
// dvfs-switch phase appears and comm time at the low gear is recorded.
func TestScheduledTraceShowsSwitches(t *testing.T) {
	p := cluster.PentiumM()
	w, err := p.World(2, 1400)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := FTPolicy(p.Prof).Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	ft := npb.FT{Nx: 16, Ny: 16, Nz: 8, Iters: 2}
	_, res, err := ft.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.ByPhase()["dvfs-switch"] <= 0 {
		t.Error("no gear switches in trace")
	}
}

// The power timeline of a scheduled run must actually dip during the
// derated phases — the signature the paper's PowerPack-style measurements
// show for DVFS scheduling.
func TestScheduledPowerProfileDips(t *testing.T) {
	p := cluster.PentiumM()
	w, err := p.World(4, 1400)
	if err != nil {
		t.Fatal(err)
	}
	ft := npb.FT{Nx: 16, Ny: 16, Nz: 16, Iters: 3, Scale: 64}
	sched, err := FTPolicy(p.Prof).Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := ft.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	profile := res.Trace.PowerProfile(res.Seconds/100, res.Seconds)
	if len(profile) == 0 {
		t.Fatal("empty power profile")
	}
	top := float64(p.Prof.NodePower(p.Prof.TopState(), 1)) * 4
	low := float64(p.Prof.NodePower(p.Prof.BaseState(), 1)) * 4
	sawHigh, sawLow := false, false
	for _, watts := range profile {
		if watts > 0.95*top {
			sawHigh = true
		}
		if watts > 0 && watts < low*1.1 {
			sawLow = true
		}
	}
	if !sawHigh {
		t.Error("no full-power samples in the profile")
	}
	if !sawLow {
		t.Error("no low-gear samples in the profile; the schedule never engaged")
	}
}
