package core

import (
	"fmt"
	"math"
)

// Amdahl returns the speedup of the paper's Eq. 2: a workload of which
// fraction fe benefits from an enhancement with speedup factor se.
func Amdahl(fe, se float64) (float64, error) {
	if fe < 0 || fe > 1 {
		return 0, fmt.Errorf("core: enhanced fraction %g outside [0,1]", fe)
	}
	if se <= 0 {
		return 0, fmt.Errorf("core: enhancement speedup %g not positive", se)
	}
	return 1 / ((1 - fe) + fe/se), nil
}

// Enhancement is one (fraction, factor) pair of Eq. 3.
type Enhancement struct {
	// FE is the fraction of the workload the enhancement applies to.
	FE float64
	// SE is the speedup factor on that fraction.
	SE float64
}

// GeneralizedAmdahl returns the speedup of Eq. 3 for e simultaneous
// enhancements: the product of the individual Amdahl speedups. The paper's
// motivating example shows this over-predicts on power-aware clusters
// because it assumes the enhancements are independent.
func GeneralizedAmdahl(enh []Enhancement) (float64, error) {
	if len(enh) == 0 {
		return 0, fmt.Errorf("core: no enhancements")
	}
	s := 1.0
	for i, e := range enh {
		se, err := Amdahl(e.FE, e.SE)
		if err != nil {
			return 0, fmt.Errorf("core: enhancement %d: %w", i, err)
		}
		s *= se
	}
	return s, nil
}

// ProductSpeedup is the Table 1 predictor: applying Eq. 3 by measuring the
// two enhancements independently — S(N, f0) along the processor-count axis
// and S(1, f) along the frequency axis — and multiplying. Errors against
// measured S(N, f) quantify how interdependent the enhancements are.
func ProductSpeedup(m *Measurements, n int, mhz float64) (float64, error) {
	base, err := m.BaseMHz()
	if err != nil {
		return 0, err
	}
	sn, err := m.Speedup(n, base)
	if err != nil {
		return 0, err
	}
	sf, err := m.Speedup(1, mhz)
	if err != nil {
		return 0, err
	}
	return sn * sf, nil
}

// KarpFlatt returns the experimentally determined serial fraction of Karp
// and Flatt (related work [25]): f = (1/S − 1/N) / (1 − 1/N). Larger
// fractions at larger N diagnose growing parallel overhead.
func KarpFlatt(speedup float64, n int) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("core: Karp–Flatt needs N ≥ 2, got %d", n)
	}
	if speedup <= 0 {
		return 0, fmt.Errorf("core: non-positive speedup %g", speedup)
	}
	invN := 1 / float64(n)
	return (1/speedup - invN) / (1 - invN), nil
}

// Gustafson returns the fixed-time (scaled) speedup of related work [20]:
// S = N − α(N−1) for serial fraction α of the scaled workload.
func Gustafson(serialFrac float64, n int) (float64, error) {
	if serialFrac < 0 || serialFrac > 1 {
		return 0, fmt.Errorf("core: serial fraction %g outside [0,1]", serialFrac)
	}
	if n < 1 {
		return 0, fmt.Errorf("core: N = %d", n)
	}
	return float64(n) - serialFrac*float64(n-1), nil
}

// SunNi returns the memory-bounded speedup of related work [30]: with the
// workload scaled by the factor g(N) that fills N nodes' memory,
// S = (α + (1−α)·g(N)) / (α + (1−α)·g(N)/N).
func SunNi(serialFrac float64, n int, g func(n float64) float64) (float64, error) {
	if serialFrac < 0 || serialFrac > 1 {
		return 0, fmt.Errorf("core: serial fraction %g outside [0,1]", serialFrac)
	}
	if n < 1 {
		return 0, fmt.Errorf("core: N = %d", n)
	}
	if g == nil {
		return 0, fmt.Errorf("core: nil memory-scaling function")
	}
	gn := g(float64(n))
	if gn <= 0 {
		return 0, fmt.Errorf("core: non-positive scaled workload g(N) = %g", gn)
	}
	num := serialFrac + (1-serialFrac)*gn
	den := serialFrac + (1-serialFrac)*gn/float64(n)
	return num / den, nil
}

// Isoefficiency returns the workload growth factor needed to hold parallel
// efficiency constant when moving from n1 to n2 processors, given the
// overhead exponent b of T_overhead ∝ N^b·w^a with a < 1 folded into an
// empirical overhead function. This helper solves the common special case
// T_o(N, w) = c·N^b: w2/w1 = (N2/N1)^(b/(1−a)) with a = 0.
func Isoefficiency(n1, n2 int, b float64) (float64, error) {
	if n1 < 1 || n2 < 1 {
		return 0, fmt.Errorf("core: processor counts %d, %d", n1, n2)
	}
	if b < 0 {
		return 0, fmt.Errorf("core: negative overhead exponent %g", b)
	}
	return math.Pow(float64(n2)/float64(n1), b), nil
}
