package main

import (
	"reflect"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("4, 8,16")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{4, 8, 16}; !reflect.DeepEqual(got, want) {
		t.Errorf("parseInts = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "4,,8", "x", "1.5"} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) accepted", bad)
		}
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("0, 0.5,1")
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{0, 0.5, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("parseFloats = %v, want %v", got, want)
	}
	if _, err := parseFloats("0,fast"); err == nil {
		t.Error("parseFloats accepted a word")
	}
}

func TestBuildSpec(t *testing.T) {
	spec, err := buildSpec("ft", "4,8", "0,1", "", 9)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kernel != "ft" || len(spec.Ns) != 2 || len(spec.Magnitudes) != 2 {
		t.Errorf("buildSpec = %+v", spec)
	}
	if spec.Faults.Seed != 9 || spec.Faults.LatencyJitterFrac != 1 {
		t.Errorf("default config not jitter-only seeded: %+v", spec.Faults)
	}
	spec, err = buildSpec("lu", "2,4", "0,0.5,1", "seed=3,jitter=0.5,drop=0.01", 9)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Faults.Seed != 3 || spec.Faults.DropProb != 0.01 {
		t.Errorf("-chaos spec not honoured: %+v", spec.Faults)
	}
	for _, bad := range [][4]string{
		{"ft", "4;8", "0,1", ""},       // bad ints
		{"ft", "4,8", "0..1", ""},      // bad floats
		{"ft", "4,8", "1,0", ""},       // descending magnitudes
		{"ft", "4,8", "0,1", "warp=9"}, // unknown chaos key
		{"", "4,8", "0,1", ""},         // no kernel
	} {
		if _, err := buildSpec(bad[0], bad[1], bad[2], bad[3], 1); err == nil {
			t.Errorf("buildSpec(%q, %q, %q, %q) accepted", bad[0], bad[1], bad[2], bad[3])
		}
	}
}
