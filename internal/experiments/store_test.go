package experiments

import (
	"testing"
)

// TestStoreReturnsSharedCampaign proves the memoization contract: two calls
// to the same MeasureXX entry point return the same *Campaign, measured
// once.
func TestStoreReturnsSharedCampaign(t *testing.T) {
	s := Quick()
	a, err := s.MeasureFT()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.MeasureFT()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeat MeasureFT returned a distinct campaign; the store did not memoize")
	}
}

// TestStoreMatchesFreshMeasurement proves the cached campaign is
// bit-identical to an uncached sweep: the memoization may reorder nothing
// and recompute nothing that changes a reproduced number.
func TestStoreMatchesFreshMeasurement(t *testing.T) {
	s := Quick()
	cached, err := s.MeasureFT()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := s.measure(s.Grid, s.RunFT)
	if err != nil {
		t.Fatal(err)
	}
	if len(cached.Cells) != len(fresh.Cells) {
		t.Fatalf("cached campaign has %d cells, fresh %d", len(cached.Cells), len(fresh.Cells))
	}
	for i := range fresh.Cells {
		c, f := cached.Cells[i], fresh.Cells[i]
		if c.N != f.N || c.MHz != f.MHz {
			t.Fatalf("cell %d: cached (N=%d f=%g) vs fresh (N=%d f=%g)", i, c.N, c.MHz, f.N, f.MHz)
		}
		//palint:ignore floateq bit-identity is the property under test, not a tolerance comparison
		if c.Res.Seconds != f.Res.Seconds || c.Res.Joules != f.Res.Joules {
			t.Errorf("cell N=%d f=%g: cached (%.17g s, %.17g J) differs from fresh (%.17g s, %.17g J)",
				c.N, c.MHz, c.Res.Seconds, c.Res.Joules, f.Res.Seconds, f.Res.Joules)
		}
	}
}

// storeKeyTrial makes each TestStoreKeysOnPlatformContent invocation use a
// distinct platform variant: the campaign store is process-wide, so under
// `go test -count=2` a fixed variant would already be memoized on the
// second pass and the size-growth assertion would misfire.
var storeKeyTrial float64

// TestStoreKeysOnPlatformContent proves a mutated platform gets its own
// store entry rather than poisoning the stock one — the property the
// ablation benchmarks rely on.
func TestStoreKeysOnPlatformContent(t *testing.T) {
	s := Quick()
	if _, err := s.MeasureFT(); err != nil {
		t.Fatal(err)
	}
	before := CampaignStoreSize()
	storeKeyTrial++
	variant := s
	variant.Platform.Net.MsgCPUIns = 100 * storeKeyTrial
	vc, err := variant.MeasureFT()
	if err != nil {
		t.Fatal(err)
	}
	if CampaignStoreSize() != before+1 {
		t.Errorf("store size %d after measuring a platform variant, want %d", CampaignStoreSize(), before+1)
	}
	stock, err := s.MeasureFT()
	if err != nil {
		t.Fatal(err)
	}
	if vc == stock {
		t.Error("platform variant shares the stock campaign; keying ignores platform content")
	}
}

// TestMergeCampaigns proves the ExtrapolateLU fast path assembles exactly
// the campaign a single extended-grid sweep would have produced.
func TestMergeCampaigns(t *testing.T) {
	s := Quick()
	a, err := s.MeasureFT()
	if err != nil {
		t.Fatal(err)
	}
	merged := mergeCampaigns(a, a)
	if len(merged.Cells) != 2*len(a.Cells) {
		t.Fatalf("merged %d cells, want %d", len(merged.Cells), 2*len(a.Cells))
	}
	for _, c := range a.Cells {
		res, err := merged.Cell(c.N, c.MHz)
		if err != nil {
			t.Fatal(err)
		}
		if res != c.Res {
			t.Errorf("merged cell N=%d f=%g does not point at the source result", c.N, c.MHz)
		}
		tm, err := merged.Meas.Time(c.N, c.MHz)
		if err != nil {
			t.Fatal(err)
		}
		//palint:ignore floateq the merged measurement must carry the source value verbatim
		if tm != c.Res.Seconds {
			t.Errorf("merged time at N=%d f=%g is %.17g, want %.17g", c.N, c.MHz, tm, c.Res.Seconds)
		}
	}
}
