package simnet

import (
	"math/rand"
	"testing"

	"pasp/internal/units"
)

// Metamorphic relations of the network model: instead of asserting absolute
// times, these tests assert how outputs must move when an input is
// transformed — the invariants every calibration of the model has to obey.

func metamorphicConfigs() []Config {
	gigabit := FastEthernet()
	gigabit.BandwidthBps = 118e6
	gigabit.LatencySec = 20e-6
	ideal := FastEthernet()
	ideal.FlowConcurrency = 0
	noEager := FastEthernet()
	noEager.EagerBytes = 0
	return []Config{FastEthernet(), gigabit, ideal, noEager}
}

// TestMetamorphicBandwidthDoubling: doubling the port bandwidth never
// increases any transfer time, at any size or contention level.
func TestMetamorphicBandwidthDoubling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const f = units.Hertz(600e6)
	for _, c := range metamorphicConfigs() {
		fast := c
		fast.BandwidthBps *= 2
		for trial := 0; trial < 200; trial++ {
			b := rng.Intn(1 << 20)
			flows := 1 + rng.Intn(32)
			if w, w2 := c.WireTime(b), fast.WireTime(b); w2 > w {
				t.Fatalf("%d bytes: doubling bandwidth raised WireTime %g → %g", b, w, w2)
			}
			if w, w2 := c.ContendedWireTime(b, flows), fast.ContendedWireTime(b, flows); w2 > w {
				t.Fatalf("%d bytes, %d flows: doubling bandwidth raised ContendedWireTime %g → %g", b, flows, w, w2)
			}
			if p, p2 := c.PointToPoint(b, f, f), fast.PointToPoint(b, f, f); p2 > p {
				t.Fatalf("%d bytes: doubling bandwidth raised PointToPoint %g → %g", b, p, p2)
			}
		}
	}
}

// TestMetamorphicIdealSwitchLowerBound: the unlimited-concurrency fabric
// (FlowConcurrency = 0) lower-bounds every finite setting at every
// contention level.
func TestMetamorphicIdealSwitchLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := FastEthernet()
	ideal := base
	ideal.FlowConcurrency = 0
	for _, fc := range []int{1, 2, 8, 64} {
		c := base
		c.FlowConcurrency = fc
		for trial := 0; trial < 200; trial++ {
			b := rng.Intn(1 << 20)
			flows := 1 + rng.Intn(64)
			if lo, v := ideal.ContendedWireTime(b, flows), c.ContendedWireTime(b, flows); v < lo {
				t.Fatalf("FlowConcurrency=%d beat the ideal switch at %d bytes, %d flows: %g < %g",
					fc, b, flows, v, lo)
			}
			if lo, v := ideal.EffectiveBandwidth(flows), c.EffectiveBandwidth(flows); v > lo {
				t.Fatalf("FlowConcurrency=%d exceeded port bandwidth at %d flows: %g > %g", fc, flows, v, lo)
			}
		}
	}
}

// TestMetamorphicMonotoneInBytes: every timing is non-decreasing in the
// message size, and contention is non-decreasing in the flow count.
func TestMetamorphicMonotoneInBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const f = units.Hertz(1400e6)
	for _, c := range metamorphicConfigs() {
		for trial := 0; trial < 200; trial++ {
			b := rng.Intn(1 << 20)
			bigger := b + 1 + rng.Intn(1<<16)
			flows := 1 + rng.Intn(32)
			if c.WireTime(bigger) < c.WireTime(b) {
				t.Fatalf("WireTime decreased: %d → %d bytes", b, bigger)
			}
			if c.CPUOverhead(bigger, f) < c.CPUOverhead(b, f) {
				t.Fatalf("CPUOverhead decreased: %d → %d bytes", b, bigger)
			}
			if c.PointToPoint(bigger, f, f) < c.PointToPoint(b, f, f) {
				t.Fatalf("PointToPoint decreased: %d → %d bytes", b, bigger)
			}
			if c.ContendedWireTime(b, flows+1) < c.ContendedWireTime(b, flows) {
				t.Fatalf("ContendedWireTime decreased with more flows at %d bytes", b)
			}
		}
	}
}

// TestMetamorphicProtocolRegimes: the eager/rendezvous split is a clean
// threshold — everything at or below EagerBytes is eager, everything above
// is rendezvous, and a zero threshold means eager-only.
func TestMetamorphicProtocolRegimes(t *testing.T) {
	c := FastEthernet()
	for _, b := range []int{0, 1, c.EagerBytes - 1, c.EagerBytes} {
		if c.Rendezvous(b) {
			t.Errorf("%d bytes (≤ threshold %d) classified rendezvous", b, c.EagerBytes)
		}
	}
	for _, b := range []int{c.EagerBytes + 1, 2 * c.EagerBytes, 1 << 24} {
		if !c.Rendezvous(b) {
			t.Errorf("%d bytes (> threshold %d) classified eager", b, c.EagerBytes)
		}
	}
	c.EagerBytes = 0
	if c.Rendezvous(1 << 30) {
		t.Error("EagerBytes=0 still rendezvous")
	}
}

// TestMetamorphicFaultHooksIdentity: the chaos-harness entry points with
// neutral arguments are exact identities — the equality the fault-off
// bit-identity contract rests on — and move monotonically with their
// perturbation argument.
func TestMetamorphicFaultHooksIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, c := range metamorphicConfigs() {
		for trial := 0; trial < 200; trial++ {
			b := rng.Intn(1 << 20)
			if c.DegradedWireTime(b, 1) != c.WireTime(b) {
				t.Fatalf("DegradedWireTime(%d, 1) != WireTime", b)
			}
			if c.DegradedWireTime(b, 0.5) != c.WireTime(b) {
				t.Fatalf("DegradedWireTime(%d, 0.5) not clamped to WireTime", b)
			}
			if c.JitteredLatency(0) != c.LatencySec {
				t.Fatal("JitteredLatency(0) != LatencySec")
			}
			if c.JitteredLatency(-1) != c.LatencySec {
				t.Fatal("JitteredLatency(-1) not clamped to LatencySec")
			}
			f1, f2 := 1+rng.Float64()*3, 0.0
			f2 = f1 + rng.Float64()
			if c.DegradedWireTime(b, f2) < c.DegradedWireTime(b, f1) {
				t.Fatalf("DegradedWireTime decreased in factor at %d bytes", b)
			}
			e1 := rng.Float64() * 1e-3
			e2 := e1 + rng.Float64()*1e-3
			if c.JitteredLatency(e2) < c.JitteredLatency(e1) {
				t.Fatal("JitteredLatency decreased in extra delay")
			}
		}
	}
}
