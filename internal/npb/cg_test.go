package npb

import (
	"math"
	"testing"

	"pasp/internal/papi"
	"pasp/internal/stats"
)

func TestCGValidate(t *testing.T) {
	ok := CG{Size: 512, OuterIters: 2, CGIters: 10}
	if err := ok.Validate(4); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []struct {
		name string
		c    CG
		n    int
	}{
		{"tiny", CG{Size: 4, OuterIters: 1, CGIters: 1}, 1},
		{"indivisible", CG{Size: 100, OuterIters: 1, CGIters: 1}, 3},
		{"zero outer", CG{Size: 512, CGIters: 1}, 1},
		{"zero inner", CG{Size: 512, OuterIters: 1}, 1},
		{"bad diag", CG{Size: 512, OuterIters: 1, CGIters: 1, Diag: 5}, 1},
		{"band too big", CG{Size: 64, Band: 9, OuterIters: 1, CGIters: 1}, 1},
		{"halo exceeds rows", CG{Size: 512, Band: 8, OuterIters: 1, CGIters: 1}, 16},
		{"neg scale", CG{Size: 512, OuterIters: 1, CGIters: 1, Scale: -1}, 1},
	}
	for _, tc := range bad {
		if err := tc.c.Validate(tc.n); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

// The CG solve must reduce the residual: the operator is SPD by
// construction (diagonally dominant, d > 6).
func TestCGConverges(t *testing.T) {
	cg := CG{Size: 512, OuterIters: 2, CGIters: 25}
	res, _, err := cg.Run(npbWorld(1, 600))
	if err != nil {
		t.Fatal(err)
	}
	// ‖x‖ = √512 ≈ 22.6 initially; 25 CG steps on a well-conditioned SPD
	// operator reduce the residual by many orders of magnitude.
	if res.Residual > 1e-6 {
		t.Errorf("final residual %g, want < 1e-6", res.Residual)
	}
	if res.Zeta <= 0 {
		t.Errorf("eigenvalue estimate %g not positive", res.Zeta)
	}
	// ζ estimates 1/λmin-ish quantity: for d=6.5 the smallest eigenvalue of
	// the operator is below d and above d−6 = 0.5, so ζ (= x·z⁻¹ with
	// z = A⁻¹x) lies between those operator bounds too.
	if res.Zeta < 0.4 || res.Zeta > 6.6 {
		t.Errorf("ζ = %g outside the operator's spectral range (0.5, 6.5)", res.Zeta)
	}
}

func TestCGRankInvariance(t *testing.T) {
	cg := CG{Size: 512, OuterIters: 2, CGIters: 15} // 64 rows/rank at N=8 ≥ halo 64
	ref, _, err := cg.Run(npbWorld(1, 600))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 8} {
		got, _, err := cg.Run(npbWorld(n, 600))
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if !stats.AlmostEqual(got.Zeta, ref.Zeta, 1e-9) {
			t.Errorf("N=%d: ζ = %.12g ≠ %.12g", n, got.Zeta, ref.Zeta)
		}
		if !stats.AlmostEqual(got.Residual, ref.Residual, 1e-6) && math.Abs(got.Residual-ref.Residual) > 1e-12 {
			t.Errorf("N=%d: residual %g ≠ %g", n, got.Residual, ref.Residual)
		}
	}
}

// CG's defining profile for the power-aware model: a large OFF-chip share
// (the matrix streams from memory), so frequency scaling helps much less
// than for EP.
func TestCGMemoryBoundProfile(t *testing.T) {
	cg := CG{Size: 512, OuterIters: 1, CGIters: 10}
	_, r, err := cg.Run(npbWorld(1, 600))
	if err != nil {
		t.Fatal(err)
	}
	w, err := r.Counters.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if frac := w.OffChip() / w.Total(); frac < 0.03 {
		t.Errorf("CG OFF-chip instruction fraction %g too small", frac)
	}
	_, fast, err := cg.Run(npbWorld(1, 1400))
	if err != nil {
		t.Fatal(err)
	}
	speedup := r.Seconds / fast.Seconds
	if speedup >= 2.0 {
		t.Errorf("CG frequency speedup %g too close to linear 2.33; memory boundedness lost", speedup)
	}
	if speedup <= 1.05 {
		t.Errorf("CG frequency speedup %g implausibly flat", speedup)
	}
}

func TestCGCommunicationProfile(t *testing.T) {
	cg := CG{Size: 256, OuterIters: 1, CGIters: 10}
	_, r, err := cg.Run(npbWorld(4, 600))
	if err != nil {
		t.Fatal(err)
	}
	by := r.Trace.ByPhase()
	if by["cg-halo"] <= 0 {
		t.Fatalf("no halo-exchange time: %v", by)
	}
	// Per CG step: 2 halo messages + 3 allreduces; messages must be recorded.
	if r.PerRank[0].Msgs == 0 {
		t.Error("no messages profiled")
	}
}

func TestCGScaleMultipliesWork(t *testing.T) {
	base := CG{Size: 256, OuterIters: 1, CGIters: 5}
	scaled := base
	scaled.Scale = 8
	_, rb, err := base.Run(npbWorld(2, 600))
	if err != nil {
		t.Fatal(err)
	}
	_, rs, err := scaled.Run(npbWorld(2, 600))
	if err != nil {
		t.Fatal(err)
	}
	ratio := rs.Counters.Get(papi.TotIns) / rb.Counters.Get(papi.TotIns)
	if !stats.AlmostEqual(ratio, 8, 0.01) {
		t.Errorf("TOT_INS ratio %g, want 8", ratio)
	}
	if rs.Seconds <= rb.Seconds {
		t.Error("scaled run not slower")
	}
}

func TestCGDeterministic(t *testing.T) {
	cg := CG{Size: 256, OuterIters: 1, CGIters: 8}
	_, a, err := cg.Run(npbWorld(4, 1000))
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := cg.Run(npbWorld(4, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds || a.Joules != b.Joules {
		t.Error("CG timing not deterministic")
	}
}

// The operator must be symmetric: x·(A y) = y·(A x) for arbitrary vectors —
// the property CG's convergence theory requires.
func TestCGOperatorSymmetric(t *testing.T) {
	cg := CG{Size: 128, OuterIters: 1, CGIters: 1}
	if err := cg.Validate(1); err != nil {
		t.Fatal(err)
	}
	// Evaluate the band operator directly, mirroring spmv's formula.
	apply := func(x []float64) []float64 {
		n, b, d := cg.Size, cg.band(), cg.diag()
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			v := d * x[i]
			for _, off := range []int{1, b, b * b} {
				if i-off >= 0 {
					v -= x[i-off]
				}
				if i+off < n {
					v -= x[i+off]
				}
			}
			y[i] = v
		}
		return y
	}
	rng := newRandlc(123)
	x := make([]float64, cg.Size)
	y := make([]float64, cg.Size)
	rng.fill(x)
	rng.fill(y)
	dot := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	if lhs, rhs := dot(x, apply(y)), dot(y, apply(x)); !stats.AlmostEqual(lhs, rhs, 1e-9) {
		t.Errorf("operator asymmetric: %g vs %g", lhs, rhs)
	}
}
