// Command patrace runs one NAS kernel on the simulated cluster with the
// observability layer attached and exports the run: a Chrome trace-event
// JSON file viewable in Perfetto (ui.perfetto.dev) or chrome://tracing, a
// per-phase energy attribution report, a deterministic metric snapshot, and
// a reproducibility manifest.
//
// Usage:
//
//	patrace -kernel ft -n 16 -f 1.4ghz [-suite paper|quick|scale] [-chaos spec]
//	        [-engine goroutine|event] [-out run.trace.json] [-manifest run.json]
//	        [-metrics] [-commlog comm.json]
//
// With -commlog the run also records its communication-protocol events
// (phase transitions, message endpoints, collective entries) and writes
// them as a deterministic rank-major JSON log; cmd/paverify replays that
// log against the skeleton palint -skeleton extracts.
//
// The -f flag accepts "1.4ghz", "1400mhz" or a plain megahertz count. The
// exported trace is validated against the trace-event schema before it is
// written, and the energy attribution is checked to sum to the run's total
// energy within 1e-9 — so a zero exit status certifies a well-formed,
// self-consistent export.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"pasp/internal/experiments"
	"pasp/internal/faults"
	"pasp/internal/mpi"
	"pasp/internal/obs"
	"pasp/internal/trace"
	"pasp/internal/units"
)

// parseFreq parses the -f flag into megahertz: "1.4ghz", "1400mhz" or a
// bare number (taken as MHz, the repo's CLI convention).
func parseFreq(s string) (float64, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	scale := 1.0
	switch {
	case strings.HasSuffix(t, "ghz"):
		t, scale = strings.TrimSuffix(t, "ghz"), 1000
	case strings.HasSuffix(t, "mhz"):
		t = strings.TrimSuffix(t, "mhz")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("patrace: bad frequency %q (want e.g. 1.4ghz, 1400mhz or 1400)", s)
	}
	return v * scale, nil
}

// run executes the driver against args, writing human output to stdout.
// Returned errors carry exit status 1; flag errors surface as status 2 via
// the FlagSet's own handling.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("patrace", flag.ContinueOnError)
	kernel := fs.String("kernel", "ft", "kernel: ep, ft, lu, cg, mg, is or sp")
	n := fs.Int("n", 4, "number of processors")
	freq := fs.String("f", "1400mhz", "operating frequency: 1.4ghz, 1400mhz or plain MHz")
	suite := fs.String("suite", "paper", "kernel class scale: paper, quick or scale")
	engine := fs.String("engine", "", "rank runtime override: goroutine or event (default: the suite platform's engine)")
	chaos := fs.String("chaos", "", "fault-injection spec, e.g. seed=1,jitter=0.5 (see faults.ParseSpec)")
	out := fs.String("out", "run.trace.json", "write the Chrome trace-event JSON here")
	manifest := fs.String("manifest", "", "write the run manifest JSON here")
	metrics := fs.Bool("metrics", false, "print the metric snapshot")
	commlog := fs.String("commlog", "", "record communication-protocol events and write them here (for cmd/paverify)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	mhz, err := parseFreq(*freq)
	if err != nil {
		return err
	}
	s, err := experiments.SuiteByName(*suite)
	if err != nil {
		return err
	}
	if *engine != "" {
		e := mpi.Engine(*engine)
		if err := e.Validate(); err != nil {
			return err
		}
		s.Platform.Engine = e
	}
	cfg, err := faults.ParseSpec(*chaos)
	if err != nil {
		return err
	}
	s.Platform.Faults = cfg

	rec := obs.NewRecorder()
	var comm *trace.CommRecorder
	if *commlog != "" {
		comm = new(trace.CommRecorder)
	}
	res, err := s.RunKernelTraced(*kernel, *n, mhz, rec, comm)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "%s on %d node(s) at %.0f MHz: %.3f s, %.1f J, %.1f W avg\n",
		*kernel, *n, mhz, res.Seconds, res.Joules, res.AvgWatts())

	// Per-phase energy attribution, self-checked against the run total.
	rankEnds := make([]float64, len(res.PerRank))
	for i, r := range res.PerRank {
		rankEnds[i] = r.Seconds
	}
	st, err := s.Platform.Prof.StateAt(units.MHz(mhz))
	if err != nil {
		return err
	}
	rep := obs.AttributeEnergy(res.Trace, s.Platform.Prof, st, res.Seconds, rankEnds)
	if math.Abs(rep.TotalJoules-res.Joules) > 1e-9*res.Joules {
		return fmt.Errorf("patrace: energy attribution sums to %.15g J but the run total is %.15g J",
			rep.TotalJoules, res.Joules)
	}
	fmt.Fprintf(stdout, "\nper-phase energy attribution (sums to run total within 1e-9):\n%s", rep.Text())

	if *metrics {
		fmt.Fprintf(stdout, "\nmetrics:\n%s", rec.Metrics().Snapshot().Text())
	}

	data := obs.ChromeTrace(res.Trace, "patrace "+*kernel)
	nEvents, err := obs.ValidateChromeTrace(data)
	if err != nil {
		return fmt.Errorf("patrace: refusing to write invalid trace: %w", err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\ntrace OK (%d events) written to %s\n", nEvents, *out)

	if comm != nil {
		cdata, err := comm.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*commlog, cdata, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "comm log (%d events over %d ranks) written to %s\n",
			len(comm.Events()), comm.N(), *commlog)
	}

	if *manifest != "" {
		m := obs.NewManifest("patrace")
		m.Kernel, m.Suite, m.N, m.MHz = *kernel, *suite, *n, mhz
		m.ChaosSpec, m.Seed = *chaos, cfg.Seed
		m.PlatformFingerprint = obs.Fingerprint(s.Platform)
		m.Seconds, m.Joules, m.AvgWatts = res.Seconds, res.Joules, res.AvgWatts()
		m.EDP = res.EDP()
		m.TraceEvents = nEvents
		m.Metrics = rec.Metrics().Snapshot()
		mdata, err := m.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*manifest, mdata, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "manifest written to %s\n", *manifest)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "patrace: %v\n", err)
		os.Exit(1)
	}
}
