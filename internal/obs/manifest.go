package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"runtime"
)

// Manifest captures everything needed to reproduce and diff a run: the
// configuration that produced it, a content fingerprint of the platform,
// the toolchain, the headline results and the full metric snapshot. Two
// runs of the same seed on the same tree produce identical manifests
// except for the go_version field when toolchains differ.
type Manifest struct {
	Tool                string   `json:"tool"`
	GoVersion           string   `json:"go_version"`
	Kernel              string   `json:"kernel"`
	Suite               string   `json:"suite"`
	N                   int      `json:"n"`
	MHz                 float64  `json:"mhz"`
	ChaosSpec           string   `json:"chaos_spec,omitempty"`
	Seed                uint64   `json:"seed"`
	PlatformFingerprint string   `json:"platform_fingerprint"`
	Seconds             float64  `json:"seconds"`
	Joules              float64  `json:"joules"`
	AvgWatts            float64  `json:"avg_watts"`
	EDP                 float64  `json:"edp"`
	TraceEvents         int      `json:"trace_events"`
	Metrics             Snapshot `json:"metrics"`
}

// NewManifest returns a manifest stamped with the running toolchain.
func NewManifest(tool string) Manifest {
	return Manifest{Tool: tool, GoVersion: runtime.Version()}
}

// Fingerprint content-hashes a value by its %+v rendering — the same
// content-keying scheme as the experiments campaign store, so a platform
// that keys apart there fingerprints apart here.
func Fingerprint(v any) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", v)
	return fmt.Sprintf("%016x", h.Sum64())
}

// JSON renders the manifest as indented JSON with a trailing newline.
func (m Manifest) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("obs: marshal manifest: %w", err)
	}
	return append(data, '\n'), nil
}
