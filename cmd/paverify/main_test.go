package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pasp/internal/commspec"
	"pasp/internal/trace"
)

// ftSkeleton mirrors the pipeline-shift kernel the extractor tests use:
// two phases, a guarded shift and one collective.
func ftSkeleton() *commspec.Skeleton {
	return &commspec.Skeleton{
		Module: "pasp",
		Kernels: []commspec.Kernel{{
			Name:   "ft",
			Func:   "skel.(FT).Run",
			Phases: []string{"ft-setup", "ft-exchange"},
			Collectives: []commspec.Collective{
				{Op: "Allreduce", Phase: "ft-exchange", Pos: "skel.go:34"},
			},
			P2P: []commspec.P2P{
				{Dir: "recv", Partner: "(rank-1)", Tag: "1", Phase: "ft-exchange", Guard: "(rank>0)", Pos: "skel.go:23"},
				{Dir: "send", Partner: "(rank+1)", Tag: "1", Phase: "ft-exchange", Guard: "(rank<(N-1))", Pos: "skel.go:30"},
			},
		}},
	}
}

// ftLog builds the rank-major log a conformant n-rank run of the kernel
// would record.
func ftLog(n int) *trace.CommLog {
	l := &trace.CommLog{N: n}
	for r := 0; r < n; r++ {
		l.Events = append(l.Events,
			trace.CommEvent{Rank: r, Kind: trace.CommPhase, Name: "ft-setup"},
			trace.CommEvent{Rank: r, Kind: trace.CommPhase, Name: "ft-exchange"},
		)
		if r > 0 {
			l.Events = append(l.Events, trace.CommEvent{Rank: r, Kind: trace.CommRecv, Peer: r - 1, Tag: 1, Phase: "ft-exchange"})
		}
		if r < n-1 {
			l.Events = append(l.Events, trace.CommEvent{Rank: r, Kind: trace.CommSend, Peer: r + 1, Tag: 1, Phase: "ft-exchange"})
		}
		l.Events = append(l.Events, trace.CommEvent{Rank: r, Kind: trace.CommColl, Name: "Allreduce", Phase: "ft-exchange"})
	}
	return l
}

// write writes the skeleton and log fixtures into dir and returns their
// paths.
func write(t *testing.T, dir string, sk *commspec.Skeleton, log *trace.CommLog) (string, string) {
	t.Helper()
	sdata, err := sk.JSON()
	if err != nil {
		t.Fatal(err)
	}
	ldata, err := json.Marshal(log)
	if err != nil {
		t.Fatal(err)
	}
	sfile := filepath.Join(dir, "skeleton.json")
	lfile := filepath.Join(dir, "comm.json")
	if err := os.WriteFile(sfile, sdata, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(lfile, ldata, 0o644); err != nil {
		t.Fatal(err)
	}
	return sfile, lfile
}

func TestConformantRun(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		sfile, lfile := write(t, t.TempDir(), ftSkeleton(), ftLog(n))
		var out strings.Builder
		count, err := run([]string{"-skeleton", sfile, "-commlog", lfile, "-kernel", "ft"}, &out)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if count != 0 {
			t.Errorf("N=%d: %d divergences on a conformant log:\n%s", n, count, out.String())
		}
		if !strings.Contains(out.String(), "conformance OK") {
			t.Errorf("N=%d: missing OK banner:\n%s", n, out.String())
		}
	}
}

func TestDivergencesDetected(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(l *trace.CommLog)
		want   string
	}{
		{
			name: "wrong tag",
			mutate: func(l *trace.CommLog) {
				for i := range l.Events {
					if l.Events[i].Kind == trace.CommSend {
						l.Events[i].Tag = 99
					}
				}
			},
			want: "tag 99",
		},
		{
			name: "unpredicted phase",
			mutate: func(l *trace.CommLog) {
				l.Events = append(l.Events, trace.CommEvent{Rank: 0, Kind: trace.CommPhase, Name: "cooldown"})
			},
			want: `phase "cooldown" not predicted`,
		},
		{
			name: "unpredicted collective",
			mutate: func(l *trace.CommLog) {
				l.Events = append(l.Events, trace.CommEvent{Rank: 0, Kind: trace.CommColl, Name: "Barrier", Phase: "ft-exchange"})
			},
			want: "collective Barrier",
		},
		{
			name: "guard violated",
			mutate: func(l *trace.CommLog) {
				// The last rank sends although its guard rank<N-1 is false.
				l.Events = append(l.Events, trace.CommEvent{Rank: 3, Kind: trace.CommSend, Peer: 0, Tag: 1, Phase: "ft-exchange"})
			},
			want: "send rank 3",
		},
		{
			name: "inconsistent recorded phase",
			mutate: func(l *trace.CommLog) {
				l.Events = append(l.Events, trace.CommEvent{Rank: 0, Kind: trace.CommColl, Name: "Allreduce", Phase: "ft-setup"})
			},
			want: "log records phase",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := ftLog(4)
			tc.mutate(l)
			sfile, lfile := write(t, t.TempDir(), ftSkeleton(), l)
			var out strings.Builder
			count, err := run([]string{"-skeleton", sfile, "-commlog", lfile, "-kernel", "ft"}, &out)
			if err != nil {
				t.Fatal(err)
			}
			if count == 0 {
				t.Fatalf("seeded divergence not detected:\n%s", out.String())
			}
			if !strings.Contains(out.String(), tc.want) {
				t.Errorf("report missing %q:\n%s", tc.want, out.String())
			}
			if !strings.Contains(out.String(), "conformance FAILED") {
				t.Errorf("missing FAILED banner:\n%s", out.String())
			}
		})
	}
}

func TestMaxReportCapsOutput(t *testing.T) {
	l := ftLog(4)
	for i := range l.Events {
		if l.Events[i].Kind == trace.CommSend {
			l.Events[i].Tag = 99
		}
	}
	sfile, lfile := write(t, t.TempDir(), ftSkeleton(), l)
	var out strings.Builder
	count, err := run([]string{"-skeleton", sfile, "-commlog", lfile, "-kernel", "ft", "-max-report", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3 (one per sending rank)", count)
	}
	if got := strings.Count(out.String(), "divergence: "); got != 1 {
		t.Errorf("printed %d divergence lines, want 1:\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "and 2 more") {
		t.Errorf("missing overflow note:\n%s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	sfile, lfile := write(t, t.TempDir(), ftSkeleton(), ftLog(2))
	cases := []struct {
		name string
		args []string
	}{
		{"missing kernel flag", []string{"-skeleton", sfile, "-commlog", lfile}},
		{"unknown kernel", []string{"-skeleton", sfile, "-commlog", lfile, "-kernel", "nope"}},
		{"missing skeleton file", []string{"-skeleton", sfile + ".gone", "-commlog", lfile, "-kernel", "ft"}},
		{"missing commlog file", []string{"-skeleton", sfile, "-commlog", lfile + ".gone", "-kernel", "ft"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			if _, err := run(tc.args, &out); err == nil {
				t.Errorf("run(%v) succeeded, want usage error", tc.args)
			}
		})
	}
}

func TestMalformedInputsAreUsageErrors(t *testing.T) {
	dir := t.TempDir()
	sfile, lfile := write(t, dir, ftSkeleton(), ftLog(2))
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := run([]string{"-skeleton", bad, "-commlog", lfile, "-kernel", "ft"}, &out); err == nil {
		t.Error("malformed skeleton accepted")
	}
	if _, err := run([]string{"-skeleton", sfile, "-commlog", bad, "-kernel", "ft"}, &out); err == nil {
		t.Error("malformed comm log accepted")
	}
}
