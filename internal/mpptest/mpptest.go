// Package mpptest reproduces the methodology of Gropp & Lusk's MPPTEST,
// which the paper uses (Section 5.2, Step 2) to measure seconds per
// communication for the message sizes an application sends: a ping-pong
// between two nodes, repeated and averaged, swept over sizes and operating
// points. The fine-grain parameterization multiplies the measured
// per-message time by the profiled message count to obtain T(wPO, f).
package mpptest

import (
	"fmt"

	"pasp/internal/mpi"
	"pasp/internal/units"
)

// Point is one message-size measurement.
type Point struct {
	// Bytes is the message size.
	Bytes int
	// Sec is the measured one-way time per message.
	Sec units.Seconds
}

// PingPong measures the one-way message time for msgBytes on the given
// two-rank world by timing reps round trips.
func PingPong(w mpi.World, msgBytes, reps int) (units.Seconds, error) {
	if w.N != 2 {
		return 0, fmt.Errorf("mpptest: ping-pong needs exactly 2 ranks, got %d", w.N)
	}
	if msgBytes <= 0 || reps <= 0 {
		return 0, fmt.Errorf("mpptest: non-positive size or reps")
	}
	payload := []float64{0}
	res, err := mpi.Run(w, func(c *mpi.Ctx) error {
		for i := 0; i < reps; i++ {
			if c.Rank() == 0 {
				if err := c.Send(1, i, payload, msgBytes); err != nil {
					return err
				}
				if _, err := c.Recv(1, i); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(0, i); err != nil {
					return err
				}
				if err := c.Send(0, i, payload, msgBytes); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return units.Seconds(res.Seconds).Div(float64(2 * reps)), nil
}

// Sweep measures one-way times over a doubling size schedule between
// minBytes and maxBytes inclusive.
func Sweep(w mpi.World, minBytes, maxBytes, reps int) ([]Point, error) {
	if minBytes <= 0 || maxBytes < minBytes {
		return nil, fmt.Errorf("mpptest: bad sweep range [%d, %d]", minBytes, maxBytes)
	}
	var out []Point
	for b := minBytes; b <= maxBytes; b *= 2 {
		sec, err := PingPong(w, b, reps)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{Bytes: b, Sec: sec})
	}
	return out, nil
}
