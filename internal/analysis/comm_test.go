package analysis

import (
	"bytes"
	"encoding/json"
	"testing"

	"pasp/internal/commspec"
)

// loadSkel loads the kernel-shaped testdata package for skeleton tests.
func loadSkel(t *testing.T) (string, []*Package) {
	t.Helper()
	root := repoRoot(t)
	pkgs, err := Load(root, []string{"internal/analysis/testdata/src/skel"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return root, pkgs
}

func TestBuildSkeletonShape(t *testing.T) {
	root, pkgs := loadSkel(t)
	module, err := ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := BuildSkeleton(root, module, pkgs, NewProgram(pkgs))
	if err != nil {
		t.Fatal(err)
	}
	if sk.Module != module {
		t.Errorf("module = %q, want %q", sk.Module, module)
	}
	k := sk.Kernel("ft")
	if k == nil {
		t.Fatalf("no kernel \"ft\" extracted; kernels: %+v", sk.Kernels)
	}
	wantPhases := map[string]bool{"ft-setup": false, "ft-exchange": false}
	for _, p := range k.Phases {
		if _, ok := wantPhases[p]; ok {
			wantPhases[p] = true
		}
	}
	for p, seen := range wantPhases {
		if !seen {
			t.Errorf("phase %q missing from skeleton: %v", p, k.Phases)
		}
	}
	if len(k.Collectives) != 1 || k.Collectives[0].Op != "Allreduce" {
		t.Errorf("collectives = %+v, want one Allreduce", k.Collectives)
	}
	var dirs []string
	for _, p := range k.P2P {
		dirs = append(dirs, p.Dir+" "+p.Partner)
		if p.Guard == "" {
			t.Errorf("pipeline-shift p2p entry lost its guard: %+v", p)
		}
	}
	if len(k.P2P) != 2 {
		t.Fatalf("p2p entries = %v, want recv (rank-1) and send (rank+1)", dirs)
	}
	// A named function passed as the mpi.Run body is descended into like
	// an inline closure.
	mg := sk.Kernel("mg")
	if mg == nil {
		t.Fatalf("no kernel \"mg\" extracted; kernels: %+v", sk.Kernels)
	}
	if len(mg.Phases) != 1 || mg.Phases[0] != "mg-smooth" {
		t.Errorf("named-body kernel phases = %v, want [mg-smooth]", mg.Phases)
	}
	if len(mg.Collectives) != 1 || mg.Collectives[0].Op != "Barrier" || mg.Collectives[0].Phase != "mg-smooth" {
		t.Errorf("named-body kernel collectives = %+v, want one Barrier in mg-smooth", mg.Collectives)
	}

	// The skeleton round-trips through its own parser (expressions valid).
	data, err := sk.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := commspec.ParseSkeleton(data); err != nil {
		t.Fatalf("extracted skeleton does not re-parse: %v", err)
	}
}

// TestSkeletonJSONDeterministic pins byte determinism across fully
// independent extraction runs (fresh FileSet, fresh Program).
func TestSkeletonJSONDeterministic(t *testing.T) {
	render := func() []byte {
		root, pkgs := loadSkel(t)
		module, err := ModulePath(root)
		if err != nil {
			t.Fatal(err)
		}
		sk, err := BuildSkeleton(root, module, pkgs, NewProgram(pkgs))
		if err != nil {
			t.Fatal(err)
		}
		data, err := sk.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Errorf("skeleton JSON differs across extraction runs:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}

// TestRunWithProgramEquivalence pins the shared-Program contract: one
// Program serving every analyzer produces byte-identical diagnostics to the
// convenience Run wrapper.
func TestRunWithProgramEquivalence(t *testing.T) {
	root := repoRoot(t)
	pkgs, err := Load(root, []string{
		"internal/analysis/testdata/src/commshape",
		"internal/analysis/testdata/src/phasebal",
		"internal/analysis/testdata/src/deadlock",
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(Run(pkgs, All()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(RunWithProgram(NewProgram(pkgs), pkgs, All()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("shared-Program run differs from Run:\n--- Run ---\n%s\n--- RunWithProgram ---\n%s", a, b)
	}
}

// BenchmarkPalintTree measures the full 13-pass suite over the repository
// with a shared interprocedural Program — the configuration `make lint`
// runs. Loading is excluded: the benchmark isolates analysis cost.
func BenchmarkPalintTree(b *testing.B) {
	wd, err := Load("../..", []string{"./..."})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := NewProgram(wd)
		if diags := RunWithProgram(prog, wd, All()); len(Active(diags)) != 0 {
			b.Fatalf("tree not clean: %d active findings", len(Active(diags)))
		}
	}
}
