package core

import (
	"fmt"

	"pasp/internal/machine"
	"pasp/internal/units"
)

// FP is the fine-grain parameterization of Section 5.2. Instead of
// measuring whole-program times, it composes the prediction from measured
// low-level parameters:
//
//	Step 1 — workload distribution: hardware counters classify the
//	         program's instructions by memory level (Table 5).
//	Step 2 — workload time: an LMbench-style sweep measures the seconds per
//	         instruction of each level at each frequency (Table 6), and an
//	         MPPTEST-style ping-pong prices the profiled communication.
//	Step 3 — composition: Eq. 14 predicts the sequential time, Eq. 15 adds
//	         the communication time to the perfectly-parallelized share.
type FP struct {
	// Work is the per-level instruction mix of the whole program (Step 1).
	Work machine.Work
	// SecPerIns maps frequency (MHz) to the measured time per instruction
	// at each level (Step 2).
	SecPerIns map[float64][machine.NumLevels]units.Seconds
	// CommSec maps processor count, then frequency (MHz), to the total
	// communication time of the run: profiled message count × measured
	// per-message time (Step 2).
	CommSec map[int]map[float64]units.Seconds
}

// Validate reports an error for a model missing its required parameters.
func (f *FP) Validate() error {
	if err := f.Work.Validate(); err != nil {
		return err
	}
	if f.Work.Total() == 0 {
		return fmt.Errorf("core: FP has an empty workload")
	}
	if len(f.SecPerIns) == 0 {
		return fmt.Errorf("core: FP has no per-level timings")
	}
	for mhz, sec := range f.SecPerIns {
		for l, s := range sec {
			if s <= 0 {
				return fmt.Errorf("core: FP sec/ins at %g MHz level %v not positive", mhz, machine.Level(l))
			}
		}
	}
	return nil
}

// PredictT1 evaluates Eq. 14: the sequential execution time as the dot
// product of the per-level workload and the per-level seconds per
// instruction at the given frequency.
func (f *FP) PredictT1(mhz float64) (units.Seconds, error) {
	sec, ok := f.SecPerIns[mhz]
	if !ok {
		return 0, fmt.Errorf("core: FP has no level timings at %g MHz", mhz)
	}
	t := units.Seconds(0)
	for l := machine.Reg; l < machine.NumLevels; l++ {
		t += sec[l].Times(f.Work.Ops[l])
	}
	return t, nil
}

// PredictTime evaluates Eq. 15: the fully-parallelized sequential time plus
// the measured communication time for this processor count and frequency.
func (f *FP) PredictTime(n int, mhz float64) (units.Seconds, error) {
	if n < 1 {
		return 0, fmt.Errorf("core: N = %d", n)
	}
	t1, err := f.PredictT1(mhz)
	if err != nil {
		return 0, err
	}
	comm := units.Seconds(0)
	if n > 1 {
		byN, ok := f.CommSec[n]
		if !ok {
			return 0, fmt.Errorf("core: FP has no communication profile for N=%d", n)
		}
		comm, ok = byN[mhz]
		if !ok {
			return 0, fmt.Errorf("core: FP has no communication time for N=%d at %g MHz", n, mhz)
		}
	}
	return t1.Div(float64(n)) + comm, nil
}

// PredictSpeedup predicts power-aware speedup relative to the model's own
// base sequential time at baseMHz.
func (f *FP) PredictSpeedup(n int, mhz, baseMHz float64) (float64, error) {
	t1, err := f.PredictT1(baseMHz)
	if err != nil {
		return 0, err
	}
	tn, err := f.PredictTime(n, mhz)
	if err != nil {
		return 0, err
	}
	if tn <= 0 {
		return 0, fmt.Errorf("core: FP predicted non-positive time")
	}
	//palint:ignore floatdiv -- guarded: tn <= 0 returns above
	return float64(t1) / float64(tn), nil
}
