// Package trace records what each simulated rank was doing over virtual
// time. Traces let the experiment harness attribute execution time to
// computation vs parallel overhead — the decomposition the paper's SP
// parameterization performs analytically — and let the DVFS scheduler
// (package dvfs) identify communication-bound phases.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies an interval of a rank's virtual time.
type Kind int

const (
	// Compute is time spent executing kernel instructions.
	Compute Kind = iota
	// Comm is time spent inside a communication call (including the wait
	// for the peer and the wire transfer).
	Comm
	// Fault is virtual time injected by the chaos harness (package faults):
	// latency jitter, transient bandwidth degradation and straggler compute
	// stretch. Fault-free runs record no such events, so their traces stay
	// bit-identical to the golden reproduction.
	Fault
	// Retry is virtual time spent in injected retransmission timeouts and
	// exponential backoff after a dropped message.
	Retry
	// NumKinds is the number of interval classes.
	NumKinds
)

// kindNames is the single source of the kind spellings: String indexes it
// and ParseKind searches it, so the two round-trip by construction and no
// exporter or test ever switches on a magic string.
var kindNames = [NumKinds]string{
	Compute: "compute",
	Comm:    "comm",
	Fault:   "fault",
	Retry:   "retry",
}

// String names the kind.
func (k Kind) String() string {
	if k >= 0 && k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind is the inverse of Kind.String: it maps a kind name back to the
// enum value, rejecting anything String cannot produce.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown kind %q (want one of %s)", s, strings.Join(kindNames[:], ", "))
}

// Event is one interval on one rank.
type Event struct {
	// Rank is the MPI rank the interval belongs to.
	Rank int
	// Phase is the kernel-assigned label, e.g. "fft-z" or "exchange".
	Phase string
	// Kind classifies the interval.
	Kind Kind
	// Start and End are virtual-time seconds.
	Start, End float64
	// Watts is the node's power draw during the interval, letting the
	// timeline double as a power profile.
	Watts float64
}

// Duration returns End − Start.
func (e Event) Duration() float64 { return e.End - e.Start }

// Log is an append-only collection of events for one rank. Ranks each own a
// Log (no locking needed); Merge combines them after the run.
type Log struct {
	events []Event
}

// Append adds one event. Events with non-positive duration are kept: zero
// intervals are legal (e.g. empty compute), negative ones indicate a
// simulator bug and are surfaced by Validate.
func (l *Log) Append(e Event) { l.events = append(l.events, e) }

// Grow reserves capacity for n further events, for callers that know the
// final size in advance (e.g. a replayed run, whose event count matches the
// recorded one).
func (l *Log) Grow(n int) {
	if free := cap(l.events) - len(l.events); free < n {
		grown := make([]Event, len(l.events), len(l.events)+n)
		copy(grown, l.events)
		l.events = grown
	}
}

// Events returns the recorded events in insertion order.
func (l *Log) Events() []Event { return l.events }

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Validate reports an error when any event has negative duration or events
// of the same rank overlap going backwards in time.
func (l *Log) Validate() error {
	lastEnd := map[int]float64{}
	for i, e := range l.events {
		if e.End < e.Start {
			return fmt.Errorf("trace: event %d has negative duration: %+v", i, e)
		}
		if e.Start < lastEnd[e.Rank]-1e-12 {
			return fmt.Errorf("trace: event %d starts before rank %d's previous end", i, e.Rank)
		}
		lastEnd[e.Rank] = e.End
	}
	return nil
}

// Merge returns a new log holding the events of all inputs, ordered by
// (rank, start time).
func Merge(logs ...*Log) *Log {
	total := 0
	for _, l := range logs {
		total += len(l.events)
	}
	out := &Log{events: make([]Event, 0, total)}
	for _, l := range logs {
		out.events = append(out.events, l.events...)
	}
	sort.SliceStable(out.events, func(i, j int) bool {
		a, b := out.events[i], out.events[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Start < b.Start
	})
	return out
}

// TotalByKind returns the summed duration of each kind across all ranks.
func (l *Log) TotalByKind() [NumKinds]float64 {
	var t [NumKinds]float64
	for _, e := range l.events {
		if e.Kind >= 0 && e.Kind < NumKinds {
			t[e.Kind] += e.Duration()
		}
	}
	return t
}

// ByPhase returns the summed duration per phase label across all ranks.
func (l *Log) ByPhase() map[string]float64 {
	m := map[string]float64{}
	for _, e := range l.events {
		m[e.Phase] += e.Duration()
	}
	return m
}

// RankSpan returns the earliest start and latest end recorded for a rank,
// or (0,0) when the rank has no events.
func (l *Log) RankSpan(rank int) (start, end float64) {
	first := true
	for _, e := range l.events {
		if e.Rank != rank {
			continue
		}
		if first || e.Start < start {
			start = e.Start
		}
		if first || e.End > end {
			end = e.End
		}
		first = false
	}
	return start, end
}

// Summary renders a per-phase duration table sorted by descending time, for
// human inspection.
func (l *Log) Summary() string {
	type row struct {
		phase string
		sec   float64
	}
	var rows []row
	for p, s := range l.ByPhase() {
		rows = append(rows, row{p, s})
	}
	sort.Slice(rows, func(i, j int) bool {
		//palint:ignore floateq -- exact inequality as sort tie-break: equal values fall through to the name key
		if rows[i].sec != rows[j].sec {
			return rows[i].sec > rows[j].sec
		}
		return rows[i].phase < rows[j].phase
	})
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %12.6f s\n", r.phase, r.sec)
	}
	return b.String()
}
