package core

import (
	"fmt"
	"math"
	"testing"

	"pasp/internal/units"
)

// benchSink keeps the compiler from optimizing the benchmarked call away.
var benchSink float64

// benchTerms is a representative Eq. 11 decomposition: mostly parallel
// ON-chip work with small serial and overhead components, the shape the
// sweep experiments evaluate millions of times.
var benchTerms = Terms{
	SeqOn:  2,
	SeqOff: 1,
	ParOn:  80,
	ParOff: 10,
	POOn:   func(n int) float64 { return 0.05 * float64(n) },
	POOff:  func(n int) float64 { return 0.02 * float64(n) },
}

// rawTermsTime is Terms.Time transliterated to take a plain float64
// frequency ratio: identical validation and arithmetic, no units.Ratio in
// the signature. BenchmarkTermsTime runs both; the typed wrapper is a
// named float64, so the two must be indistinguishable beyond noise.
func rawTermsTime(t Terms, n int, rf float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("core: N = %d", n)
	}
	if math.IsNaN(rf) || rf <= 0 {
		return 0, fmt.Errorf("core: frequency ratio %g not positive", rf)
	}
	if err := t.Validate(); err != nil {
		return 0, err
	}
	on, off := t.poOn(n), t.poOff(n)
	if math.IsNaN(on) || math.IsInf(on, 0) || on < 0 ||
		math.IsNaN(off) || math.IsInf(off, 0) || off < 0 {
		return 0, fmt.Errorf("core: overhead (%g, %g) at N=%d is not a finite non-negative time", on, off, n)
	}
	fn := float64(n)
	sec := (t.SeqOn+t.ParOn/fn)/rf + t.SeqOff + t.ParOff/fn + on/rf + off
	if math.IsNaN(sec) || math.IsInf(sec, 0) {
		return 0, fmt.Errorf("core: non-finite time %g at N=%d r=%g", sec, n, rf)
	}
	return sec, nil
}

// BenchmarkTermsTime measures the Eq. 11 hot path with the typed
// units.Ratio parameter against the raw-float64 transliteration:
//
//	go test -bench BenchmarkTermsTime -count 5 ./internal/core
func BenchmarkTermsTime(b *testing.B) {
	r := units.MHz(600).Per(units.MHz(1400))
	b.Run("typed-ratio", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sec, err := benchTerms.Time(16, r)
			if err != nil {
				b.Fatal(err)
			}
			benchSink = sec
		}
	})
	b.Run("raw-float64", func(b *testing.B) {
		rf := float64(r)
		for i := 0; i < b.N; i++ {
			sec, err := rawTermsTime(benchTerms, 16, rf)
			if err != nil {
				b.Fatal(err)
			}
			benchSink = sec
		}
	})
}

// TestTypedRatioMatchesRawFloat pins the benchmark's premise: the typed
// and raw paths compute bit-identical times.
func TestTypedRatioMatchesRawFloat(t *testing.T) {
	for _, n := range []int{1, 2, 16, 64} {
		for _, rf := range []float64{600.0 / 1400.0, 1, 2.5} {
			typed, err := benchTerms.Time(n, units.Ratio(rf))
			if err != nil {
				t.Fatal(err)
			}
			raw, err := rawTermsTime(benchTerms, n, rf)
			if err != nil {
				t.Fatal(err)
			}
			if typed != raw {
				t.Errorf("N=%d r=%g: typed %v ≠ raw %v", n, rf, typed, raw)
			}
		}
	}
}
