package core

import (
	"math"
	"math/rand"
	"testing"

	"pasp/internal/units"
)

// randTerms draws a random but physical Eq. 11 decomposition: non-negative
// components with overhead growing in N, the shape every real campaign
// produces.
func randTerms(rng *rand.Rand) Terms {
	poOn := rng.Float64() * 0.1
	poOff := rng.Float64() * 0.5
	return Terms{
		SeqOn:  rng.Float64() * 2,
		SeqOff: rng.Float64(),
		ParOn:  1e-3 + rng.Float64()*10,
		ParOff: rng.Float64() * 5,
		POOn:   func(n int) float64 { return poOn * float64(n-1) },
		POOff:  func(n int) float64 { return poOff * math.Log2(float64(n)) },
	}
}

// TestPropertySpeedupMonotoneInFreq checks S_N(f) is non-decreasing in f for
// any physical decomposition: raising the ON-chip frequency can only shrink
// the frequency-scaled components of Eq. 11.
func TestPropertySpeedupMonotoneInFreq(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ratios := []units.Ratio{0.25, 0.5, 0.75, 1, 1.5, 2, 4}
	for trial := 0; trial < 200; trial++ {
		terms := randTerms(rng)
		n := 1 + rng.Intn(32)
		prev := -1.0
		for _, r := range ratios {
			s, err := terms.Speedup(n, r)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if s < prev {
				t.Fatalf("trial %d: speedup decreased in f at N=%d r=%g: %g after %g", trial, n, float64(r), s, prev)
			}
			prev = s
		}
	}
}

// TestPropertyWorkConservation checks N·T_N ≥ T_1 at the base frequency:
// parallelization cannot beat the sequential run on total work, since
// overhead only adds time.
func TestPropertyWorkConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		terms := randTerms(rng)
		t1, err := terms.Time(1, 1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, n := range []int{2, 4, 8, 16, 64} {
			tn, err := terms.Time(n, 1)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if float64(n)*tn < t1*(1-1e-12) {
				t.Fatalf("trial %d: N·T_N = %g below T_1 = %g at N=%d", trial, float64(n)*tn, t1, n)
			}
		}
	}
}

// TestPropertySPRoundTrip checks the Eq. 17 → Eq. 18 round trip on synthetic
// campaigns generated from decompositions satisfying the SP assumptions
// (fully parallelizable, frequency-immune overhead): the fitted overhead is
// the generator's overhead, non-negative, and PredictTime reproduces every
// grid cell exactly up to float64 rounding.
func TestPropertySPRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ns := []int{1, 2, 4, 8, 16}
	freqs := []float64{600, 800, 1000, 1200, 1400}
	for trial := 0; trial < 100; trial++ {
		poOff := rng.Float64() * 0.5
		terms := Terms{
			ParOn:  1e-3 + rng.Float64()*10,
			ParOff: rng.Float64() * 5,
			POOff:  func(n int) float64 { return poOff * math.Log2(float64(n)) },
		}
		m := NewMeasurements()
		for _, n := range ns {
			for _, f := range freqs {
				sec, err := terms.Time(n, units.Ratio(f/freqs[0]))
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				m.SetTime(n, f, sec)
			}
		}
		sp, err := FitSP(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, n := range ns {
			got, err := sp.Overhead(n)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if got < -1e-12 {
				t.Fatalf("trial %d: fitted overhead %g negative at N=%d", trial, got, n)
			}
			want := 0.0
			if n > 1 {
				want = terms.POOff(n)
			}
			if math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("trial %d: overhead at N=%d fitted as %g, generated as %g", trial, n, got, want)
			}
			for _, f := range freqs {
				pred, err := sp.PredictTime(n, f)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				meas, err := m.Time(n, f)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if math.Abs(pred-meas) > 1e-9*meas {
					t.Fatalf("trial %d: SP-assumption campaign not reproduced at N=%d f=%g: %g vs %g",
						trial, n, f, pred, meas)
				}
			}
		}
	}
}

// TestPropertySPExactOnFitSlices checks that even for campaigns violating
// the SP assumptions (serial work, ON-chip overhead), the fit is exact by
// construction on the slices it was derived from: the base-frequency column
// and the one-processor row.
func TestPropertySPExactOnFitSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ns := []int{1, 2, 4, 8}
	freqs := []float64{600, 1000, 1400}
	for trial := 0; trial < 100; trial++ {
		terms := randTerms(rng)
		m := NewMeasurements()
		for _, n := range ns {
			for _, f := range freqs {
				sec, err := terms.Time(n, units.Ratio(f/freqs[0]))
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				m.SetTime(n, f, sec)
			}
		}
		sp, err := FitSP(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		check := func(n int, f float64) {
			pred, err := sp.PredictTime(n, f)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			meas, err := m.Time(n, f)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if math.Abs(pred-meas) > 1e-9*meas {
				t.Fatalf("trial %d: fit slice not reproduced at N=%d f=%g: %g vs %g", trial, n, f, pred, meas)
			}
		}
		for _, n := range ns {
			check(n, freqs[0]) // base column: Eq. 17 is the identity here
		}
		for _, f := range freqs {
			check(1, f) // one-processor row: no overhead by definition
		}
	}
}
