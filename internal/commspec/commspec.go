// Package commspec is the partner-expression algebra shared by the static
// commcheck passes (package analysis) and the dynamic conformance checker
// (cmd/paverify). A communication skeleton describes each kernel's message
// partners, tags and guards as small integer/boolean expressions over two
// free variables — "rank" (the executing rank) and "N" (the job size) —
// rendered as Go expression syntax: "((rank+1)%N)", "(rank^1)",
// "((rank>0)&&(rank<(N-1)))". The static side emits these strings; this
// package parses and evaluates them at concrete (rank, N) points so the
// deadlock simulation and the trace-conformance gate agree on one semantics
// (Go's: truncated division and remainder, exactly what the kernels
// themselves compute).
//
// The distinguished string "?" (Unknown) marks an expression the static
// analysis could not resolve; evaluation reports it as not-known rather
// than an error, and conformance checks treat it as a wildcard.
package commspec

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
)

// Unknown is the wildcard expression: the static side emits it when a
// partner, tag or guard is not expressible over {rank, N, constants}.
const Unknown = "?"

// Expr is one compiled expression.
type Expr struct {
	src  string
	node ast.Expr
	wild bool
}

// Compile parses src into an evaluable expression. The wildcard "?"
// compiles to an expression whose evaluations report not-known.
func Compile(src string) (*Expr, error) {
	if src == Unknown {
		return &Expr{src: src, wild: true}, nil
	}
	node, err := parser.ParseExpr(src)
	if err != nil {
		return nil, fmt.Errorf("commspec: parse %q: %w", src, err)
	}
	// Validate eagerly so malformed skeletons fail at load, not mid-check.
	if _, err := eval(node, 0, 2); err != nil {
		return nil, err
	}
	return &Expr{src: src, node: node}, nil
}

// String returns the source form.
func (e *Expr) String() string { return e.src }

// Int evaluates the expression as an integer at (rank, n). known is false
// for the wildcard.
func (e *Expr) Int(rank, n int) (v int, known bool, err error) {
	if e.wild {
		return 0, false, nil
	}
	val, err := eval(e.node, rank, n)
	if err != nil {
		return 0, false, err
	}
	if val.isBool {
		return 0, false, fmt.Errorf("commspec: %q is boolean, want integer", e.src)
	}
	return val.i, true, nil
}

// Bool evaluates the expression as a boolean at (rank, n). known is false
// for the wildcard — conformance treats an unknown guard as satisfiable.
func (e *Expr) Bool(rank, n int) (v bool, known bool, err error) {
	if e.wild {
		return false, false, nil
	}
	val, err := eval(e.node, rank, n)
	if err != nil {
		return false, false, err
	}
	if !val.isBool {
		return false, false, fmt.Errorf("commspec: %q is integer, want boolean", e.src)
	}
	return val.b, true, nil
}

// EvalInt is the one-shot form of Compile + Int.
func EvalInt(src string, rank, n int) (v int, known bool, err error) {
	e, err := Compile(src)
	if err != nil {
		return 0, false, err
	}
	return e.Int(rank, n)
}

// EvalBool is the one-shot form of Compile + Bool.
func EvalBool(src string, rank, n int) (v bool, known bool, err error) {
	e, err := Compile(src)
	if err != nil {
		return false, false, err
	}
	return e.Bool(rank, n)
}

// value is an evaluation result: an integer or a boolean.
type value struct {
	i      int
	b      bool
	isBool bool
}

// eval walks the parsed expression with Go's integer semantics.
func eval(e ast.Expr, rank, n int) (value, error) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return eval(x.X, rank, n)
	case *ast.BasicLit:
		if x.Kind != token.INT {
			return value{}, fmt.Errorf("commspec: literal %s is not an integer", x.Value)
		}
		v, err := strconv.ParseInt(x.Value, 0, 64)
		if err != nil {
			return value{}, fmt.Errorf("commspec: bad integer %s", x.Value)
		}
		return value{i: int(v)}, nil
	case *ast.Ident:
		switch x.Name {
		case "rank":
			return value{i: rank}, nil
		case "N":
			return value{i: n}, nil
		case "true":
			return value{b: true, isBool: true}, nil
		case "false":
			return value{b: false, isBool: true}, nil
		}
		return value{}, fmt.Errorf("commspec: unknown identifier %q (want rank or N)", x.Name)
	case *ast.UnaryExpr:
		v, err := eval(x.X, rank, n)
		if err != nil {
			return value{}, err
		}
		switch x.Op {
		case token.SUB:
			if v.isBool {
				return value{}, fmt.Errorf("commspec: unary minus on boolean")
			}
			return value{i: -v.i}, nil
		case token.NOT:
			if !v.isBool {
				return value{}, fmt.Errorf("commspec: ! on integer")
			}
			return value{b: !v.b, isBool: true}, nil
		case token.ADD:
			return v, nil
		}
		return value{}, fmt.Errorf("commspec: unsupported unary operator %s", x.Op)
	case *ast.BinaryExpr:
		l, err := eval(x.X, rank, n)
		if err != nil {
			return value{}, err
		}
		r, err := eval(x.Y, rank, n)
		if err != nil {
			return value{}, err
		}
		return applyBinary(x.Op, l, r)
	}
	return value{}, fmt.Errorf("commspec: unsupported expression node %T", e)
}

func applyBinary(op token.Token, l, r value) (value, error) {
	switch op {
	case token.LAND, token.LOR:
		if !l.isBool || !r.isBool {
			return value{}, fmt.Errorf("commspec: %s needs boolean operands", op)
		}
		if op == token.LAND {
			return value{b: l.b && r.b, isBool: true}, nil
		}
		return value{b: l.b || r.b, isBool: true}, nil
	}
	if l.isBool || r.isBool {
		// == and != over booleans are legal Go but never emitted; keep the
		// algebra minimal.
		return value{}, fmt.Errorf("commspec: %s needs integer operands", op)
	}
	a, b := l.i, r.i
	switch op {
	case token.ADD:
		return value{i: a + b}, nil
	case token.SUB:
		return value{i: a - b}, nil
	case token.MUL:
		return value{i: a * b}, nil
	case token.QUO:
		if b == 0 {
			return value{}, fmt.Errorf("commspec: division by zero")
		}
		return value{i: a / b}, nil
	case token.REM:
		if b == 0 {
			return value{}, fmt.Errorf("commspec: remainder by zero")
		}
		return value{i: a % b}, nil
	case token.AND:
		return value{i: a & b}, nil
	case token.OR:
		return value{i: a | b}, nil
	case token.XOR:
		return value{i: a ^ b}, nil
	case token.SHL:
		if b < 0 || b > 62 {
			return value{}, fmt.Errorf("commspec: shift count %d out of range", b)
		}
		return value{i: a << uint(b)}, nil
	case token.SHR:
		if b < 0 || b > 62 {
			return value{}, fmt.Errorf("commspec: shift count %d out of range", b)
		}
		return value{i: a >> uint(b)}, nil
	case token.EQL:
		return value{b: a == b, isBool: true}, nil
	case token.NEQ:
		return value{b: a != b, isBool: true}, nil
	case token.LSS:
		return value{b: a < b, isBool: true}, nil
	case token.LEQ:
		return value{b: a <= b, isBool: true}, nil
	case token.GTR:
		return value{b: a > b, isBool: true}, nil
	case token.GEQ:
		return value{b: a >= b, isBool: true}, nil
	}
	return value{}, fmt.Errorf("commspec: unsupported binary operator %s", op)
}
