package mpi

import (
	"errors"
	"fmt"

	"pasp/internal/machine"
	"pasp/internal/power"
)

// Record/replay across the frequency axis.
//
// A kernel's control flow, data movement and message sizes are functions of
// the problem size and rank count only — never of the operating frequency.
// Frequency enters the simulation purely through the timing arithmetic
// inside Ctx (TimeFor, cpuOverhead, ReduceInsPerByte/hz). So a frequency
// sweep does not need to execute the kernel's arithmetic once per
// frequency: execute it once, record each rank's operation stream (phase
// transitions, compute work, message and collective shapes), and re-time
// the stream through the exact same public Ctx API at the other
// frequencies with placeholder payloads. Replay runs the identical timing,
// counter, energy, fault-injection and trace code, so its Result is
// bit-identical to a direct run at that frequency — a property pinned by
// TestReplayMatchesDirect. The chaos harness stays replayable because its
// draws are a pure function of (seed, rank, draw index) and the per-rank
// draw counts are frequency-independent: Message consumes a fixed number
// of draws per received message, Collective a fixed number per collective.
//
// What recording refuses: an OnPhase hook (a DVFS scheduler's decisions
// need not be frequency-independent; Run rejects the combination). What it
// cannot see: a RankFunc that branches on Ctx.Now, Ctx.Freq or received
// payload values. No NPB kernel does — their iteration structure is fixed
// by the class parameters — and cluster.Sweep, the only in-tree replayer,
// records those kernels exclusively.

// opKind discriminates the recorded operations.
type opKind uint8

const (
	opPhase opKind = iota
	opPState
	opCompute
	opSend
	opRecv
	opSendRecv
	opBarrier
	opBcast
	opAllreduce
	opReduce
	opAlltoall
	opAllgather
	opGather
	opScatter
)

// recOp is one recorded Ctx call: the operation's shape, never its data.
type recOp struct {
	kind opKind
	// peer is the destination, source or root rank, kind-dependent; peer2
	// is SendRecv's source.
	peer, peer2 int
	tag         int
	// nlen is the payload length in float64s; vbytes the virtual-size
	// override passed through unchanged.
	nlen   int
	vbytes int
	// lens holds the per-destination part lengths of Alltoall and Scatter.
	lens []int
	red  Op
	work machine.Work
	// name is the phase label (opPhase); state the target operating point
	// (opPState).
	name  string
	state power.PState
}

// rankTape is one rank's recorded stream; appended to only by the rank
// itself.
type rankTape struct {
	ops []recOp
}

func (t *rankTape) add(o recOp) {
	t.ops = append(t.ops, o)
}

// Recording captures the operation streams of exactly one run (attach via
// World.Record), after which Replay can re-time it at other operating
// points. A Recording is single-use on the capture side: attaching it to a
// second run fails, so a tape can never silently interleave two runs.
type Recording struct {
	n int
	// state: 0 fresh, 1 capturing, 2 complete. Guarded by Run's
	// fork/join — only the driver goroutine moves it.
	state int
	tapes []rankTape
	// events is each rank's trace-event count from the capture run. Event
	// counts are frequency-independent (the same operation stream emits the
	// same intervals at every operating point), so Replay uses them to
	// presize the per-rank trace logs instead of growing them by doubling.
	events []int
}

// NewRecording returns an empty recording ready to attach to one run.
func NewRecording() *Recording { return &Recording{} }

func (r *Recording) begin(n int) error {
	if r.state != 0 {
		return errors.New("mpi: Recording already used; a recording captures exactly one run")
	}
	r.state = 1
	r.n = n
	r.tapes = make([]rankTape, n)
	return nil
}

func (r *Recording) finish(ctxs []*Ctx) {
	r.state = 2
	r.events = make([]int, len(ctxs))
	for i, c := range ctxs {
		r.events[i] = c.log.Len()
	}
}

// Complete reports whether the recording captured a full successful run
// and can be replayed.
func (r *Recording) Complete() bool { return r != nil && r.state == 2 }

// N returns the rank count the recording was captured at.
func (r *Recording) N() int { return r.n }

// Ops returns the number of operations recorded for one rank.
func (r *Recording) Ops(rank int) int { return len(r.tapes[rank].ops) }

// Replay re-times a recorded run under w — typically the same world at a
// different P-state — without executing any kernel code. It returns the
// same Result a direct run of the original RankFunc under w would: the
// replayed stream passes through the identical timing, energy, fault and
// trace paths, with placeholder payloads standing in for the data (payload
// values never influence timing).
func Replay(w World, rec *Recording) (*Result, error) {
	if !rec.Complete() {
		return nil, errors.New("mpi: Replay needs a Recording completed by a successful run")
	}
	if w.N != rec.n {
		return nil, fmt.Errorf("mpi: Replay world has %d ranks but the recording was captured at %d", w.N, rec.n)
	}
	if w.OnPhase != nil {
		return nil, errors.New("mpi: cannot replay into a world with an OnPhase hook")
	}
	w.Record = nil
	w.traceHint = rec.events
	return Run(w, rec.replayRank)
}

// replayRank is the RankFunc that re-issues one rank's tape. One scratch
// buffer stands in for every payload: collectives and sends snapshot their
// inputs, so sharing it between operations is safe, and received buffers
// are recycled where ownership is unambiguous so replay's allocation
// profile stays flat like the kernels'.
func (rec *Recording) replayRank(c *Ctx) error {
	ops := rec.tapes[c.Rank()].ops
	maxLen := 0
	for i := range ops {
		if ops[i].nlen > maxLen {
			maxLen = ops[i].nlen
		}
		for _, l := range ops[i].lens {
			if l > maxLen {
				maxLen = l
			}
		}
	}
	scratch := make([]float64, maxLen)
	n := c.Size()
	var parts [][]float64
	for i := range ops {
		o := &ops[i]
		switch o.kind {
		case opPhase:
			c.SetPhase(o.name)
		case opPState:
			c.SetPState(o.state)
		case opCompute:
			if err := c.Compute(o.work); err != nil {
				return err
			}
		case opSend:
			if err := c.Send(o.peer, o.tag, scratch[:o.nlen], o.vbytes); err != nil {
				return err
			}
		case opRecv:
			got, err := c.Recv(o.peer, o.tag)
			if err != nil {
				return err
			}
			c.Free(got)
		case opSendRecv:
			got, err := c.SendRecv(o.peer, o.peer2, o.tag, scratch[:o.nlen], o.vbytes)
			if err != nil {
				return err
			}
			c.Free(got)
		case opBarrier:
			if err := c.Barrier(); err != nil {
				return err
			}
		case opBcast:
			got, err := c.Bcast(o.peer, scratch[:o.nlen], o.vbytes)
			if err != nil {
				return err
			}
			if n > 1 {
				c.Free(got) // n == 1 aliases the input; see Bcast
			}
		case opAllreduce:
			got, err := c.Allreduce(scratch[:o.nlen], o.red, o.vbytes)
			if err != nil {
				return err
			}
			c.Free(got)
		case opReduce:
			if _, err := c.Reduce(o.peer, scratch[:o.nlen], o.red, o.vbytes); err != nil {
				return err
			}
		case opAlltoall:
			parts = parts[:0]
			for _, l := range o.lens {
				parts = append(parts, scratch[:l])
			}
			outs, err := c.Alltoall(parts, o.vbytes)
			if err != nil {
				return err
			}
			if n > 1 { // n == 1 aliases the input part
				for _, b := range outs {
					c.Free(b)
				}
			}
		case opAllgather:
			outs, err := c.Allgather(scratch[:o.nlen], o.vbytes)
			if err != nil {
				return err
			}
			if n > 1 { // n == 1 aliases the input
				for _, b := range outs {
					c.Free(b)
				}
			}
		case opGather:
			if _, err := c.Gather(o.peer, scratch[:o.nlen], o.vbytes); err != nil {
				return err
			}
		case opScatter:
			var sp [][]float64
			if c.Rank() == o.peer {
				parts = parts[:0]
				for _, l := range o.lens {
					parts = append(parts, scratch[:l])
				}
				sp = parts
			}
			if _, err := c.Scatter(o.peer, sp, o.vbytes); err != nil {
				return err
			}
		default:
			return fmt.Errorf("mpi: replay: unknown operation kind %d", o.kind)
		}
	}
	return nil
}
