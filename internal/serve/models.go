package serve

import (
	"sync"

	"pasp/internal/core"
	"pasp/internal/experiments"
)

// kernelFits bundles the models fitted on one campaign. Campaigns are
// store-memoized and shared, so the fits are memoized by campaign pointer:
// the first request for a kernel pays for the SP and FP fits, every later
// request — the ≥1000-QPS cache-hit regime — reuses them with one map
// lookup. The FP fit legitimately fails for workload shapes outside its
// methodology (a grid cell that sent no messages); that failure is as
// deterministic as the fit itself, so it is cached too and simply omits
// the FP fields from responses.
type kernelFits struct {
	once  sync.Once
	sp    *core.SP
	spErr error
	fp    *core.FP
	fpErr error
}

// fitCache memoizes kernelFits per campaign pointer.
type fitCache struct {
	mu sync.Mutex
	m  map[*experiments.Campaign]*kernelFits
}

// fit returns the memoized models for camp, fitting them on first use.
func (c *fitCache) fit(s experiments.Suite, k experiments.Kernel, camp *experiments.Campaign) *kernelFits {
	c.mu.Lock()
	f, ok := c.m[camp]
	if !ok {
		if c.m == nil {
			c.m = map[*experiments.Campaign]*kernelFits{}
		}
		f = &kernelFits{}
		c.m[camp] = f
	}
	c.mu.Unlock()
	f.once.Do(func() {
		f.sp, f.spErr = core.FitSP(camp.Meas)
		f.fp, f.fpErr = s.FitFP(camp, k.Grid)
	})
	return f
}
