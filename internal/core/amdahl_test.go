package core

import (
	"math"
	"testing"
	"testing/quick"

	"pasp/internal/stats"
)

func TestAmdahlLimits(t *testing.T) {
	if s, _ := Amdahl(0, 10); s != 1 {
		t.Errorf("FE=0 speedup %g, want 1", s)
	}
	if s, _ := Amdahl(1, 10); s != 10 {
		t.Errorf("FE=1 speedup %g, want SE=10", s)
	}
	// Classic: 95% parallel, N→∞ caps at 20.
	s, _ := Amdahl(0.95, 1e12)
	if !stats.AlmostEqual(s, 20, 1e-6) {
		t.Errorf("asymptote %g, want 20", s)
	}
}

func TestAmdahlErrors(t *testing.T) {
	if _, err := Amdahl(-0.1, 2); err == nil {
		t.Error("negative FE accepted")
	}
	if _, err := Amdahl(1.1, 2); err == nil {
		t.Error("FE>1 accepted")
	}
	if _, err := Amdahl(0.5, 0); err == nil {
		t.Error("zero SE accepted")
	}
}

func TestGeneralizedAmdahlIsProduct(t *testing.T) {
	enh := []Enhancement{{FE: 0.9, SE: 4}, {FE: 0.5, SE: 2.33}}
	got, err := GeneralizedAmdahl(enh)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Amdahl(0.9, 4)
	b, _ := Amdahl(0.5, 2.33)
	if !stats.AlmostEqual(got, a*b, 1e-12) {
		t.Errorf("generalized %g ≠ product %g", got, a*b)
	}
	if _, err := GeneralizedAmdahl(nil); err == nil {
		t.Error("empty enhancement list accepted")
	}
}

func TestProductSpeedupOverPredictsWithOverhead(t *testing.T) {
	// On a workload with parallel overhead, the Eq. 3 product prediction
	// must over-predict the measured combined speedup — the Table 1 errors.
	m := synthetic(10, 5, func(n int) float64 { return 0.3 * float64(n) })
	pred, err := ProductSpeedup(m, 16, 1400)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := m.Speedup(16, 1400)
	if err != nil {
		t.Fatal(err)
	}
	if pred <= meas {
		t.Errorf("product prediction %g not above measured %g", pred, meas)
	}
}

func TestProductSpeedupExactWithoutInteraction(t *testing.T) {
	// A pure ON-chip, overhead-free workload has independent enhancements,
	// so the product rule is exact (the EP case).
	m := synthetic(10, 0, nil)
	pred, _ := ProductSpeedup(m, 8, 1200)
	meas, _ := m.Speedup(8, 1200)
	if !stats.AlmostEqual(pred, meas, 1e-9) {
		t.Errorf("product %g ≠ measured %g on EP-like workload", pred, meas)
	}
}

func TestKarpFlattRecoversSerialFraction(t *testing.T) {
	// Generate speedups from Amdahl with serial fraction 0.1 and recover it.
	serial := 0.1
	for _, n := range []int{2, 4, 8, 16} {
		s := 1 / (serial + (1-serial)/float64(n))
		f, err := KarpFlatt(s, n)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.AlmostEqual(f, serial, 1e-9) {
			t.Errorf("N=%d: Karp–Flatt %g, want %g", n, f, serial)
		}
	}
	if _, err := KarpFlatt(2, 1); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := KarpFlatt(0, 4); err == nil {
		t.Error("zero speedup accepted")
	}
}

func TestGustafson(t *testing.T) {
	if s, _ := Gustafson(0, 16); s != 16 {
		t.Errorf("fully parallel scaled speedup %g, want 16", s)
	}
	if s, _ := Gustafson(1, 16); s != 1 {
		t.Errorf("fully serial scaled speedup %g, want 1", s)
	}
	if _, err := Gustafson(-0.1, 4); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := Gustafson(0.5, 0); err == nil {
		t.Error("N=0 accepted")
	}
}

func TestSunNiReductions(t *testing.T) {
	// g(n) = 1 (no memory scaling) reduces to fixed-size Amdahl.
	alpha := 0.2
	n := 8
	got, err := SunNi(alpha, n, func(float64) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	amdahl := 1 / (alpha + (1-alpha)/float64(n))
	if !stats.AlmostEqual(got, amdahl, 1e-12) {
		t.Errorf("Sun–Ni(g=1) = %g, want Amdahl %g", got, amdahl)
	}
	// g(n) = n reduces to Gustafson.
	got, err = SunNi(alpha, n, func(x float64) float64 { return x })
	if err != nil {
		t.Fatal(err)
	}
	gus, _ := Gustafson(alpha, n)
	if !stats.AlmostEqual(got, gus, 1e-12) {
		t.Errorf("Sun–Ni(g=n) = %g, want Gustafson %g", got, gus)
	}
	// g growing faster than n exceeds Gustafson.
	got, _ = SunNi(alpha, n, func(x float64) float64 { return x * x })
	if got <= gus {
		t.Errorf("memory-bounded speedup %g not above Gustafson %g", got, gus)
	}
	if _, err := SunNi(alpha, n, nil); err == nil {
		t.Error("nil g accepted")
	}
}

func TestIsoefficiency(t *testing.T) {
	// Linear overhead growth (b=1): doubling processors doubles workload.
	k, err := Isoefficiency(4, 8, 1)
	if err != nil || k != 2 {
		t.Errorf("Isoefficiency = %g, %v", k, err)
	}
	if _, err := Isoefficiency(0, 8, 1); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := Isoefficiency(2, 4, -1); err == nil {
		t.Error("negative exponent accepted")
	}
}

// Property: Amdahl speedup is bounded by the enhancement factor and at
// least min(1, se).
func TestAmdahlBoundsProperty(t *testing.T) {
	f := func(feRaw, seRaw uint16) bool {
		fe := float64(feRaw) / 65535
		se := 0.1 + float64(seRaw)/100
		s, err := Amdahl(fe, se)
		if err != nil {
			return false
		}
		lo, hi := math.Min(1, se), math.Max(1, se)
		return s >= lo-1e-12 && s <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
