package faults

import (
	"math"
	"testing"

	"pasp/internal/units"
)

func TestZeroConfigDisabled(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Fatal("zero Config reports Enabled")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("zero Config invalid: %v", err)
	}
	// GearSwitchSec alone must not demand an injector on the message path.
	c.GearSwitchSec = units.Seconds(50e-6)
	if c.Enabled() {
		t.Fatal("GearSwitchSec alone reports Enabled")
	}
}

func TestEnabledPerKnob(t *testing.T) {
	cases := []struct {
		name string
		c    Config
		want bool
	}{
		{"jitter", Config{LatencyJitterFrac: 0.5}, true},
		{"drop", Config{DropProb: 0.1}, true},
		{"degrade", Config{DegradeProb: 0.1, DegradeFactor: 2}, true},
		{"degrade prob only", Config{DegradeProb: 0.1}, false},
		{"degrade factor only", Config{DegradeFactor: 2}, false},
		{"straggler", Config{StragglerFrac: 0.2, StragglerSlowdown: 1.5}, true},
		{"straggler frac only", Config{StragglerFrac: 0.2}, false},
	}
	for _, tc := range cases {
		if got := tc.c.Enabled(); got != tc.want {
			t.Errorf("%s: Enabled() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{DropProb: -0.1},
		{DropProb: 1.5},
		{DropProb: math.NaN()},
		{DegradeProb: 2},
		{StragglerFrac: -1},
		{LatencyJitterFrac: -0.5},
		{LatencyJitterFrac: math.Inf(1)},
		{RetryTimeoutSec: -1},
		{MaxRetries: -1},
		{DegradeFactor: 0.5},
		{DegradeFactor: math.NaN()},
		{StragglerSlowdown: 0.9},
		{GearSwitchSec: -1e-6},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate accepted a non-physical config", i, c)
		}
	}
}

func TestScale(t *testing.T) {
	c := Config{
		Seed:              7,
		LatencyJitterFrac: 0.4,
		DropProb:          0.6,
		DegradeProb:       0.3,
		DegradeFactor:     2,
		StragglerFrac:     0.5,
		StragglerSlowdown: 1.5,
		RetryTimeoutSec:   units.Seconds(2e-3),
	}
	s := c.Scale(2)
	if s.LatencyJitterFrac != 0.8 {
		t.Errorf("jitter scaled to %g, want 0.8", s.LatencyJitterFrac)
	}
	// Probabilities cap at 1.
	if s.DropProb != 1 || s.StragglerFrac != 1 {
		t.Errorf("probabilities not capped: drop=%g straggler=%g", s.DropProb, s.StragglerFrac)
	}
	if s.DegradeProb != 0.6 {
		t.Errorf("DegradeProb scaled to %g, want 0.6", s.DegradeProb)
	}
	// Magnitudes are untouched.
	if s.DegradeFactor != 2 || s.StragglerSlowdown != 1.5 || s.RetryTimeoutSec != c.RetryTimeoutSec || s.Seed != 7 {
		t.Errorf("Scale perturbed magnitude knobs: %+v", s)
	}
	// Scale(0) turns everything off; negative clamps to 0.
	if c.Scale(0).Enabled() || c.Scale(-3).Enabled() {
		t.Error("Scale(0) or Scale(-3) still enabled")
	}
	if err := c.Scale(1e9).Validate(); err != nil {
		t.Errorf("huge scale yields invalid config: %v", err)
	}
}

func TestBackoffSec(t *testing.T) {
	c := Config{RetryTimeoutSec: units.Seconds(1e-3)}
	if got := c.BackoffSec(0); got != 0 {
		t.Errorf("BackoffSec(0) = %g", got)
	}
	// 1 retry waits one timeout; 3 retries wait 1+2+4 = 7 timeouts.
	if got := c.BackoffSec(1); got != 1e-3 {
		t.Errorf("BackoffSec(1) = %g, want 1e-3", got)
	}
	if got := c.BackoffSec(3); got != 7e-3 {
		t.Errorf("BackoffSec(3) = %g, want 7e-3", got)
	}
	// Zero timeout falls back to the default.
	var d Config
	if got := d.BackoffSec(1); got != float64(DefaultRetryTimeout) {
		t.Errorf("default BackoffSec(1) = %g, want %g", got, float64(DefaultRetryTimeout))
	}
}

func TestRankDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, LatencyJitterFrac: 1, DropProb: 0.3, DegradeProb: 0.2, DegradeFactor: 2}
	a, b := NewRank(cfg, 3), NewRank(cfg, 3)
	for i := 0; i < 1000; i++ {
		fa, fb := a.Message(1e-4), b.Message(1e-4)
		if fa != fb {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, fa, fb)
		}
	}
	// A different rank with the same seed draws a different sequence.
	other := NewRank(cfg, 4)
	same := true
	a2 := NewRank(cfg, 3)
	for i := 0; i < 100; i++ {
		if a2.Message(1e-4) != other.Message(1e-4) {
			same = false
			break
		}
	}
	if same {
		t.Error("ranks 3 and 4 drew identical sequences")
	}
	// A different seed changes the sequence for the same rank.
	cfg2 := cfg
	cfg2.Seed = 43
	seeded := NewRank(cfg2, 3)
	a3 := NewRank(cfg, 3)
	same = true
	for i := 0; i < 100; i++ {
		if a3.Message(1e-4) != seeded.Message(1e-4) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 drew identical sequences")
	}
}

func TestMessageBounds(t *testing.T) {
	cfg := Config{Seed: 1, LatencyJitterFrac: 0.5, DropProb: 0.5, DegradeProb: 0.5, DegradeFactor: 3, MaxRetries: 2}
	r := NewRank(cfg, 0)
	const latency = 1e-4
	sawRetry, sawDegrade := false, false
	for i := 0; i < 2000; i++ {
		f := r.Message(latency)
		if f.ExtraLatencySec < 0 || f.ExtraLatencySec >= cfg.LatencyJitterFrac*latency {
			t.Fatalf("jitter %g outside [0, %g)", f.ExtraLatencySec, cfg.LatencyJitterFrac*latency)
		}
		if f.WireFactor != 1 && f.WireFactor != 3 {
			t.Fatalf("WireFactor = %g", f.WireFactor)
		}
		if f.Retries < 0 || f.Retries > cfg.MaxRetries {
			t.Fatalf("Retries = %d outside [0, %d]", f.Retries, cfg.MaxRetries)
		}
		sawRetry = sawRetry || f.Retries > 0
		sawDegrade = sawDegrade || f.WireFactor > 1
	}
	if !sawRetry || !sawDegrade {
		t.Errorf("2000 draws at p=0.5 produced retry=%v degrade=%v; PRNG looks broken", sawRetry, sawDegrade)
	}
}

// TestJitterScaleInvariance is the property the robustness monotonicity
// claim rests on: scaling the jitter knob rescales every drawn delay by the
// same factor without disturbing the rest of the sequence, because each
// message consumes a fixed number of draws.
func TestJitterScaleInvariance(t *testing.T) {
	base := Config{Seed: 9, LatencyJitterFrac: 0.5}
	a, b := NewRank(base, 2), NewRank(base.Scale(2), 2)
	for i := 0; i < 500; i++ {
		fa, fb := a.Message(1e-4), b.Message(1e-4)
		if math.Abs(fb.ExtraLatencySec-2*fa.ExtraLatencySec) > 1e-18 {
			t.Fatalf("draw %d: jitter %g did not scale to %g", i, fa.ExtraLatencySec, fb.ExtraLatencySec)
		}
		if fa.WireFactor != fb.WireFactor || fa.Retries != fb.Retries {
			t.Fatalf("draw %d: scaling jitter disturbed other knobs: %+v vs %+v", i, fa, fb)
		}
	}
}

func TestStragglerStability(t *testing.T) {
	cfg := Config{Seed: 5, StragglerFrac: 0.5, StragglerSlowdown: 2}
	slow := 0
	for rank := 0; rank < 64; rank++ {
		a, b := NewRank(cfg, rank), NewRank(cfg, rank)
		if a.Straggler() != b.Straggler() {
			t.Fatalf("rank %d straggler decision unstable", rank)
		}
		if a.Straggler() {
			slow++
			if a.ComputeFactor() != 2 {
				t.Fatalf("straggler rank %d has ComputeFactor %g", rank, a.ComputeFactor())
			}
		} else if a.ComputeFactor() != 1 {
			t.Fatalf("healthy rank %d has ComputeFactor %g", rank, a.ComputeFactor())
		}
		// Message draws must not move the straggler decision (separate stream).
		a.Message(1e-4)
		if a.Straggler() != b.Straggler() {
			t.Fatalf("rank %d straggler decision moved after a draw", rank)
		}
	}
	if slow == 0 || slow == 64 {
		t.Errorf("straggler count %d/64 at frac 0.5; selection looks degenerate", slow)
	}
}

func TestCollective(t *testing.T) {
	cfg := Config{Seed: 11, LatencyJitterFrac: 0.5, DegradeProb: 0.3, DegradeFactor: 2}
	r := NewRank(cfg, 0)
	const cost = 1e-3
	for i := 0; i < 500; i++ {
		extra := r.Collective(cost)
		// Bounded by jitter plus one full-cost degrade stretch.
		if extra < 0 || extra >= cost*(cfg.LatencyJitterFrac+cfg.DegradeFactor-1) {
			t.Fatalf("draw %d: collective extra %g out of range", i, extra)
		}
	}
	if got := r.Collective(0); got != 0 {
		t.Errorf("Collective(0) = %g", got)
	}
	if got := r.Collective(-1); got != 0 {
		t.Errorf("Collective(-1) = %g", got)
	}
}

func TestParseSpec(t *testing.T) {
	c, err := ParseSpec("seed=42,jitter=0.5,drop=0.01,timeout=2ms,retries=5,degradeprob=0.1,degradefactor=2,straggler=0.25,slowdown=1.5,gear=50us")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed:              42,
		LatencyJitterFrac: 0.5,
		DropProb:          0.01,
		RetryTimeoutSec:   units.Seconds(2e-3),
		MaxRetries:        5,
		DegradeProb:       0.1,
		DegradeFactor:     2,
		StragglerFrac:     0.25,
		StragglerSlowdown: 1.5,
		GearSwitchSec:     units.Seconds(50e-6),
	}
	if c != want {
		t.Fatalf("ParseSpec = %+v, want %+v", c, want)
	}
	if c, err := ParseSpec("  "); err != nil || c != (Config{}) {
		t.Errorf("empty spec: %+v, %v", c, err)
	}
	for _, bad := range []string{
		"jitter",          // no value
		"warp=9",          // unknown key
		"jitter=fast",     // unparseable float
		"drop=1.5",        // fails validation
		"timeout=3 miles", // unparseable duration
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestValueAtUniformity(t *testing.T) {
	// Crude sanity check on the counter PRNG: mean of [0,1) uniforms near
	// 0.5, all values in range.
	key := mixKey(123, 0)
	sum := 0.0
	const n = 10000
	for i := uint64(0); i < n; i++ {
		u := valueAt(key, streamEvent, i)
		if u < 0 || u >= 1 {
			t.Fatalf("valueAt out of [0,1): %g", u)
		}
		sum += u
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean of %d draws = %g, want ≈ 0.5", n, mean)
	}
}
