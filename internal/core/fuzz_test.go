package core

import (
	"math"
	"pasp/internal/units"
	"testing"
)

// terms assembles a Terms whose overheads return the raw fuzzed values, so
// the fuzzer can drive NaN, Inf, and negative overheads through the po
// callbacks as well as the struct fields.
func fuzzTerms(seqOn, seqOff, parOn, parOff, poOn, poOff float64) Terms {
	return Terms{
		SeqOn: seqOn, SeqOff: seqOff,
		ParOn: parOn, ParOff: parOff,
		POOn:  func(n int) float64 { return poOn * float64(n) },
		POOff: func(n int) float64 { return poOff * float64(n) },
	}
}

// FuzzTermsTime asserts the contract of Eq. 11's denominator: for arbitrary
// inputs, Time returns either an error or a finite, non-negative time —
// never NaN or ±Inf, and never a silent garbage value.
func FuzzTermsTime(f *testing.F) {
	f.Add(1.0, 0.5, 8.0, 2.0, 0.1, 0.05, 4, 1.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1, 1.0)
	f.Add(math.NaN(), 1.0, 1.0, 1.0, 0.0, 0.0, 2, 0.75)
	f.Add(1.0, 1.0, math.Inf(1), 1.0, 0.0, 0.0, 2, 1.0)
	f.Add(1.0, 1.0, 1.0, 1.0, math.NaN(), 0.0, 2, 1.0)
	f.Add(1e308, 1e308, 1e308, 1e308, 1e308, 1e308, 2, 5e-324)
	f.Add(1.0, 1.0, 1.0, 1.0, 0.0, 0.0, -3, 1.0)
	f.Add(1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 2, -1.0)
	f.Fuzz(func(t *testing.T, seqOn, seqOff, parOn, parOff, poOn, poOff float64, n int, r float64) {
		tm := fuzzTerms(seqOn, seqOff, parOn, parOff, poOn, poOff)
		sec, err := tm.Time(n, units.Ratio(r))
		if err != nil {
			if sec != 0 {
				t.Fatalf("Time(%d, %g) = (%g, %v): non-zero value alongside an error", n, r, sec, err)
			}
			return
		}
		if math.IsNaN(sec) || math.IsInf(sec, 0) || sec < 0 {
			t.Fatalf("Time(%d, %g) = %g with nil error for %+v", n, r, sec, tm)
		}
	})
}

// FuzzTermsSpeedup asserts the same contract for Eq. 11 itself: Speedup
// returns either an error or a finite, non-negative ratio.
func FuzzTermsSpeedup(f *testing.F) {
	f.Add(1.0, 0.5, 8.0, 2.0, 0.1, 0.05, 4, 1.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 4, 1.0)
	f.Add(math.Inf(1), 0.0, 0.0, 0.0, 0.0, 0.0, 2, 1.0)
	f.Add(1e308, 0.0, 0.0, 0.0, 0.0, 0.0, 16, 1e300)
	f.Add(5e-324, 0.0, 0.0, 0.0, 0.0, 0.0, 1024, 1e308)
	f.Add(1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0, 1.0)
	f.Fuzz(func(t *testing.T, seqOn, seqOff, parOn, parOff, poOn, poOff float64, n int, r float64) {
		tm := fuzzTerms(seqOn, seqOff, parOn, parOff, poOn, poOff)
		s, err := tm.Speedup(n, units.Ratio(r))
		if err != nil {
			if s != 0 {
				t.Fatalf("Speedup(%d, %g) = (%g, %v): non-zero value alongside an error", n, r, s, err)
			}
			return
		}
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			t.Fatalf("Speedup(%d, %g) = %g with nil error for %+v", n, r, s, tm)
		}
	})
}
