package core

import (
	"testing"

	"pasp/internal/stats"
)

// segSynthetic builds phase times obeying T_p = A_p(n) + B_p(n)/f exactly.
func segSynthetic() map[string]map[Config]float64 {
	phases := map[string]map[Config]float64{
		"compute": {},
		"comm":    {},
	}
	for _, n := range []int{1, 2, 4} {
		for _, mhz := range []float64{600, 800, 1000, 1200, 1400} {
			// Compute: fully frequency-scaled, perfectly parallel.
			phases["compute"][Config{n, mhz}] = 6000 / mhz / float64(n)
			// Comm: mostly flat with a small 1/f tail, grows with n.
			if n > 1 {
				phases["comm"][Config{n, mhz}] = 0.5*float64(n) + 120/mhz
			} else {
				phases["comm"][Config{n, mhz}] = 0
			}
		}
	}
	return phases
}

func TestFitSegExactOnModelFamily(t *testing.T) {
	pt := segSynthetic()
	m, err := FitSeg(pt, 600, 1400)
	if err != nil {
		t.Fatal(err)
	}
	// Interior frequencies were never shown to the fit; predictions must
	// still be exact because the data is in the model family.
	for _, n := range []int{1, 2, 4} {
		for _, mhz := range []float64{800, 1000, 1200} {
			want := pt["compute"][Config{n, mhz}] + pt["comm"][Config{n, mhz}]
			got, err := m.PredictTime(n, mhz)
			if err != nil {
				t.Fatal(err)
			}
			if !stats.AlmostEqual(got, want, 1e-9) {
				t.Errorf("N=%d f=%g: predicted %g, want %g", n, mhz, got, want)
			}
		}
	}
}

func TestSegPhaseAccessors(t *testing.T) {
	m, err := FitSeg(segSynthetic(), 600, 1400)
	if err != nil {
		t.Fatal(err)
	}
	ph := m.Phases()
	if len(ph) != 2 || ph[0] != "comm" || ph[1] != "compute" {
		t.Errorf("Phases = %v", ph)
	}
	if _, err := m.PredictPhase("nope", 2, 600); err == nil {
		t.Error("unknown phase accepted")
	}
	if _, err := m.PredictPhase("comm", 16, 600); err == nil {
		t.Error("unfitted N accepted")
	}
	if _, err := m.PredictPhase("comm", 2, -5); err == nil {
		t.Error("negative frequency accepted")
	}
}

func TestSegFrequencySensitivity(t *testing.T) {
	m, err := FitSeg(segSynthetic(), 600, 1400)
	if err != nil {
		t.Fatal(err)
	}
	// Compute is fully frequency-scaled.
	s, err := m.FrequencySensitivity("compute", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(s, 1, 1e-9) {
		t.Errorf("compute sensitivity %g, want 1", s)
	}
	// Comm at N=4: flat 2 s + 0.2 s at 600 MHz → ~9%.
	s, err = m.FrequencySensitivity("comm", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(s, 0.2/2.2, 1e-9) {
		t.Errorf("comm sensitivity %g, want %g", s, 0.2/2.2)
	}
}

func TestFitSegValidation(t *testing.T) {
	if _, err := FitSeg(nil, 600, 1400); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := FitSeg(segSynthetic(), 1400, 600); err == nil {
		t.Error("inverted columns accepted")
	}
	missing := map[string]map[Config]float64{
		"p": {Config{1, 600}: 1}, // no 1400 column
	}
	if _, err := FitSeg(missing, 600, 1400); err == nil {
		t.Error("missing column accepted")
	}
	neg := map[string]map[Config]float64{
		"p": {Config{1, 600}: -1, Config{1, 1400}: 1},
	}
	if _, err := FitSeg(neg, 600, 1400); err == nil {
		t.Error("negative time accepted")
	}
}

func TestFitSegClampsNegativeFlatTerm(t *testing.T) {
	// A phase whose time grows with frequency (inverted) would fit A < 0;
	// the clamp keeps predictions non-negative and the low column matched.
	pt := map[string]map[Config]float64{
		"odd": {
			Config{2, 600}:  1.0,
			Config{2, 1400}: 2.0,
		},
	}
	m, err := FitSeg(pt, 600, 1400)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.PredictPhase("odd", 2, 600)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(got, 1.0, 1e-9) {
		t.Errorf("low-column prediction %g, want 1.0", got)
	}
	for _, mhz := range []float64{800, 2000} {
		v, err := m.PredictPhase("odd", 2, mhz)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 {
			t.Errorf("negative prediction %g at %g MHz", v, mhz)
		}
	}
}

func TestSegCoefficients(t *testing.T) {
	m, err := FitSeg(segSynthetic(), 600, 1400)
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := m.Coefficients("comm", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(a, 2.0, 1e-9) || !stats.AlmostEqual(b, 120, 1e-9) {
		t.Errorf("comm coefficients (%g, %g), want (2, 120)", a, b)
	}
	if _, _, err := m.Coefficients("nope", 4); err == nil {
		t.Error("unknown phase accepted")
	}
	if _, _, err := m.Coefficients("comm", 64); err == nil {
		t.Error("unfitted N accepted")
	}
}
