package core

import (
	"fmt"

	"pasp/internal/power"
	"pasp/internal/units"
)

// PredictEnergy estimates the cluster energy of a run from a predicted
// execution time: n nodes drawing node power at the given utilization for
// the whole run. With MPICH's busy-poll progress engine the platform's
// cores stay near full utilization even while communicating, so util = 1 is
// the paper-faithful choice; lower values model interrupt-driven stacks.
//
// Combined with a time model (SP or FP), this is how the paper predicts
// "the power-aware performance and energy-delay products ... within 7%".
func PredictEnergy(prof power.Profile, st power.PState, n int, seconds units.Seconds, util float64) (units.Joules, error) {
	if n < 1 {
		return 0, fmt.Errorf("core: N = %d", n)
	}
	if seconds < 0 {
		return 0, fmt.Errorf("core: negative predicted time %g", seconds)
	}
	if util < 0 || util > 1 {
		return 0, fmt.Errorf("core: utilization %g outside [0,1]", util)
	}
	return prof.NodePower(st, util).Energy(seconds).Times(float64(n)), nil
}

// PredictEDP estimates the energy-delay product from a predicted time.
func PredictEDP(prof power.Profile, st power.PState, n int, seconds units.Seconds, util float64) (float64, error) {
	e, err := PredictEnergy(prof, st, n, seconds, util)
	if err != nil {
		return 0, err
	}
	return power.EDP(e, seconds), nil
}
