package commspec

import (
	"bytes"
	"strings"
	"testing"
)

func TestEvalInt(t *testing.T) {
	cases := []struct {
		src       string
		rank, n   int
		want      int
		wantKnown bool
	}{
		{"rank", 3, 8, 3, true},
		{"N", 3, 8, 8, true},
		{"((rank+1)%N)", 7, 8, 0, true},
		{"(((rank-1)+N)%N)", 0, 8, 7, true},
		{"(rank^1)", 6, 8, 7, true},
		{"(rank^2)", 1, 8, 3, true},
		{"((rank*2)+1)", 3, 8, 7, true},
		{"(N-1)", 0, 4, 3, true},
		{"(rank/2)", 5, 8, 2, true},
		{"(rank<<1)", 3, 8, 6, true},
		{"(rank>>1)", 5, 8, 2, true},
		{"(rank&1)", 5, 8, 1, true},
		{"(rank|4)", 1, 8, 5, true},
		{"(-1)", 0, 2, -1, true},
		{"42", 0, 2, 42, true},
		{"?", 5, 8, 0, false},
		// Go remainder semantics: truncated toward zero, sign of dividend.
		{"((rank-1)%N)", 0, 4, -1, true},
	}
	for _, c := range cases {
		got, known, err := EvalInt(c.src, c.rank, c.n)
		if err != nil {
			t.Errorf("EvalInt(%q, %d, %d): %v", c.src, c.rank, c.n, err)
			continue
		}
		if known != c.wantKnown || (known && got != c.want) {
			t.Errorf("EvalInt(%q, %d, %d) = (%d, %v), want (%d, %v)", c.src, c.rank, c.n, got, known, c.want, c.wantKnown)
		}
	}
}

func TestEvalBool(t *testing.T) {
	cases := []struct {
		src       string
		rank, n   int
		want      bool
		wantKnown bool
	}{
		{"(rank>0)", 0, 4, false, true},
		{"(rank>0)", 3, 4, true, true},
		{"(rank<(N-1))", 3, 4, false, true},
		{"((rank>0)&&(rank<(N-1)))", 2, 4, true, true},
		{"((rank==0)||(rank==(N-1)))", 1, 4, false, true},
		{"(!(rank==0))", 0, 4, false, true},
		{"((rank&1)==0)", 2, 4, true, true},
		{"true", 0, 2, true, true},
		{"false", 0, 2, false, true},
		{"?", 0, 2, false, false},
	}
	for _, c := range cases {
		got, known, err := EvalBool(c.src, c.rank, c.n)
		if err != nil {
			t.Errorf("EvalBool(%q, %d, %d): %v", c.src, c.rank, c.n, err)
			continue
		}
		if known != c.wantKnown || (known && got != c.want) {
			t.Errorf("EvalBool(%q, %d, %d) = (%v, %v), want (%v, %v)", c.src, c.rank, c.n, got, known, c.want, c.wantKnown)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	bad := []string{
		"rank+",   // syntax
		"x",       // unknown identifier
		"rank()",  // call
		"1.5",     // float literal
		`"s"`,     // string literal
		"rank[0]", // index
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
	if _, _, err := EvalInt("(rank%N)", 1, 0); err == nil {
		t.Error("remainder by zero succeeded")
	}
	if _, _, err := EvalInt("(rank/0)", 1, 2); err == nil {
		t.Error("division by zero succeeded")
	}
	if _, _, err := EvalInt("(rank>0)", 1, 2); err == nil {
		t.Error("boolean evaluated as integer")
	}
	if _, _, err := EvalBool("(rank+1)", 1, 2); err == nil {
		t.Error("integer evaluated as boolean")
	}
}

func testSkeleton() *Skeleton {
	return &Skeleton{
		Module: "pasp",
		Kernels: []Kernel{
			{
				Name:   "ring",
				Func:   "x.Ring",
				Phases: []string{"halo", "norm"},
				Collectives: []Collective{
					{Op: "Allreduce", Phase: "norm", Pos: "x.go:30"},
				},
				P2P: []P2P{
					{Dir: "send", Partner: "((rank+1)%N)", Tag: "1", Phase: "halo", Pos: "x.go:10"},
					{Dir: "recv", Partner: "(((rank-1)+N)%N)", Tag: "1", Phase: "halo", Pos: "x.go:11"},
					{Dir: "send", Partner: "(rank-1)", Tag: "2", Phase: "halo", Guard: "(rank>0)", Pos: "x.go:12"},
				},
			},
			{Name: "alone", Func: "x.Alone", Phases: []string{"p"}},
		},
	}
}

func TestSkeletonRoundTrip(t *testing.T) {
	s := testSkeleton()
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSkeleton(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("round trip not byte-identical:\n%s\nvs\n%s", data, data2)
	}
}

func TestSkeletonJSONDeterministic(t *testing.T) {
	// Kernels and sites deliberately shuffled relative to testSkeleton.
	a := testSkeleton()
	b := testSkeleton()
	b.Kernels[0], b.Kernels[1] = b.Kernels[1], b.Kernels[0]
	k := &b.Kernels[1]
	k.P2P[0], k.P2P[2] = k.P2P[2], k.P2P[0]
	da, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Errorf("JSON depends on input order:\n%s\nvs\n%s", da, db)
	}
}

func TestParseSkeletonRejectsBadExpressions(t *testing.T) {
	bad := []string{
		`{"module":"m","kernels":[{"name":"k","func":"f","phases":[],"p2p":[{"dir":"send","partner":"x+","tag":"1","phase":"p","pos":"a:1"}]}]}`,
		`{"module":"m","kernels":[{"name":"k","func":"f","phases":[],"p2p":[{"dir":"sideways","partner":"rank","tag":"1","phase":"p","pos":"a:1"}]}]}`,
		`{"module":"m","kernels":[{"name":"k","func":"f","phases":[],"collectives":[{"op":"Barrier","phase":"p","guard":"bogus$","pos":"a:1"}]}]}`,
		`not json`,
	}
	for _, src := range bad {
		if _, err := ParseSkeleton([]byte(src)); err == nil {
			t.Errorf("ParseSkeleton accepted %q", src)
		}
	}
}

func TestConformanceChecks(t *testing.T) {
	k := testSkeleton().Kernel("ring")
	if k == nil {
		t.Fatal("kernel lookup failed")
	}

	if err := k.CheckPhase("halo"); err != nil {
		t.Errorf("predicted phase rejected: %v", err)
	}
	if err := k.CheckPhase("rogue"); err == nil {
		t.Error("unpredicted phase accepted")
	}

	if err := k.CheckCollective("Allreduce", "norm", 0, 4); err != nil {
		t.Errorf("predicted collective rejected: %v", err)
	}
	if err := k.CheckCollective("Allreduce", "halo", 0, 4); err == nil {
		t.Error("collective in wrong phase accepted")
	}
	if err := k.CheckCollective("Barrier", "norm", 0, 4); err == nil {
		t.Error("unpredicted collective op accepted")
	}

	// Ring send: rank 3 → 0 at N=4.
	if err := k.CheckP2P("send", 3, 0, 1, "halo", 4); err != nil {
		t.Errorf("predicted send rejected: %v", err)
	}
	// Wrong peer.
	if err := k.CheckP2P("send", 3, 1, 1, "halo", 4); err == nil {
		t.Error("send to unpredicted peer accepted")
	}
	// Wrong tag.
	if err := k.CheckP2P("recv", 0, 3, 9, "halo", 4); err == nil {
		t.Error("recv with unpredicted tag accepted")
	}
	// Guarded site: rank 0 may not take the (rank>0) send.
	if err := k.CheckP2P("send", 0, -1, 2, "halo", 4); err == nil {
		t.Error("guarded send accepted for rank violating the guard")
	}
	if err := k.CheckP2P("send", 2, 1, 2, "halo", 4); err != nil {
		t.Errorf("guarded send rejected for rank satisfying the guard: %v", err)
	}
}

func TestWildcardsAreSatisfiable(t *testing.T) {
	k := &Kernel{
		Name:   "w",
		Phases: []string{"p"},
		Collectives: []Collective{
			{Op: "Barrier", Phase: Unknown, Guard: Unknown, Pos: "a:1"},
		},
		P2P: []P2P{
			{Dir: "send", Partner: Unknown, Tag: Unknown, Phase: Unknown, Pos: "a:2"},
		},
	}
	if err := k.CheckCollective("Barrier", "anything", 5, 16); err != nil {
		t.Errorf("wildcard collective rejected: %v", err)
	}
	if err := k.CheckP2P("send", 5, 11, 99, "anything", 16); err != nil {
		t.Errorf("wildcard p2p rejected: %v", err)
	}
	if err := k.CheckP2P("recv", 5, 11, 99, "anything", 16); err == nil {
		t.Error("wildcard send matched a recv")
	}
}

func TestCompileWildcard(t *testing.T) {
	e, err := Compile(Unknown)
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != Unknown {
		t.Errorf("String() = %q", e.String())
	}
	if _, known, err := e.Int(1, 2); known || err != nil {
		t.Errorf("wildcard Int = known %v err %v", known, err)
	}
	if _, known, err := e.Bool(1, 2); known || err != nil {
		t.Errorf("wildcard Bool = known %v err %v", known, err)
	}
}

func TestKernelLookupMissing(t *testing.T) {
	s := testSkeleton()
	if s.Kernel("nosuch") != nil {
		t.Error("missing kernel resolved")
	}
	if !strings.Contains(s.Kernels[0].Func, ".") {
		t.Error("test skeleton shape changed")
	}
}
