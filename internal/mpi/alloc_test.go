package mpi

import "testing"

// pingPongAllocs measures the allocations of one full Run executing rounds
// eager ping-pong exchanges between two ranks.
func pingPongAllocs(t *testing.T, rounds int) float64 {
	t.Helper()
	w := testWorld(2, 600)
	data := []float64{1, 2, 3, 4}
	return testing.AllocsPerRun(3, func() {
		_, err := Run(w, func(c *Ctx) error {
			for r := 0; r < rounds; r++ {
				if c.Rank() == 0 {
					if err := c.Send(1, 7, data, 32); err != nil {
						return err
					}
					got, err := c.Recv(1, 8)
					if err != nil {
						return err
					}
					c.Free(got)
				} else {
					got, err := c.Recv(0, 7)
					if err != nil {
						return err
					}
					c.Free(got)
					if err := c.Send(0, 8, data, 32); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestEagerPathAllocs pins the steady-state allocation cost of the eager
// Send/Recv path. Differencing two round counts cancels every per-Run fixed
// cost (goroutines, mailboxes, result assembly) and isolates the per-round
// marginal allocations. Before payload pooling each round allocated at
// least two payload snapshots (one per Send); the freelist brings the
// steady state to zero, and the budget of one allocation per round keeps
// the required ≥50% reduction enforced with headroom for runtime noise.
func TestEagerPathAllocs(t *testing.T) {
	const r = 64
	base := pingPongAllocs(t, r)
	double := pingPongAllocs(t, 2*r)
	perRound := (double - base) / r
	if perRound > 1.0 {
		t.Errorf("eager ping-pong allocates %.2f allocs/round, want ≤ 1 (pre-pooling cost was ≥ 2)", perRound)
	}
}
