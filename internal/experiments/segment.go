package experiments

import (
	"fmt"
	"sort"

	"pasp/internal/core"
	"pasp/internal/dvfs"
)

// PhaseTimes extracts per-phase, per-configuration times from a campaign's
// traces: each phase's summed duration divided by the rank count (the mean
// rank's share — exact for the synchronized SPMD phases the NAS kernels
// use).
func PhaseTimes(camp *Campaign) map[string]map[core.Config]float64 {
	out := map[string]map[core.Config]float64{}
	for _, cell := range camp.Cells {
		if cell.N < 1 {
			continue // malformed cell: nothing to attribute a share to
		}
		by := cell.Res.Trace.ByPhase()
		for phase, sec := range by {
			if out[phase] == nil {
				out[phase] = map[core.Config]float64{}
			}
			out[phase][core.Config{N: cell.N, MHz: cell.MHz}] = sec / float64(cell.N)
		}
	}
	// Phases that do not occur at some configuration (e.g. communication
	// phases at N=1) are zero there, not missing.
	for _, cell := range camp.Cells {
		for phase := range out {
			cfg := core.Config{N: cell.N, MHz: cell.MHz}
			if _, ok := out[phase][cfg]; !ok {
				out[phase][cfg] = 0
			}
		}
	}
	return out
}

// SegmentResult compares the segment-granularity model (the paper's §7
// future work) against the whole-program SP parameterization on held-out
// interior frequencies.
type SegmentResult struct {
	// Seg and SP are execution-time error grids over the interior
	// frequencies (the fitted columns are excluded — both models are exact
	// or near-exact there by construction).
	Seg, SP *ErrorGrid
	// Sensitivity maps phase → frequency-sensitive fraction at the largest
	// N, the quantity a segment-level DVFS scheduler consumes.
	Sensitivity map[string]float64
}

// String renders the comparison.
func (r *SegmentResult) String() string {
	s := r.Seg.String() + "\n" + r.SP.String() + "\nphase frequency sensitivity (largest N):\n"
	for _, p := range sortedKeys(r.Sensitivity) {
		s += fmt.Sprintf("  %-16s %5.1f%%\n", p, r.Sensitivity[p]*100)
	}
	return s
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SegmentVsSP fits both models from the campaign — SegModel from the two
// extreme frequency columns' per-phase times, SP from the standard slices —
// and scores their execution-time predictions at the interior frequencies.
//
// The comparison is deliberately asymmetric in measurement budget: SP has
// *measured* the one-processor time at every interior frequency, while the
// segment model extrapolates them from two columns. On a platform with a
// pure-1/f frequency response the two tie; on this platform the bus-speed
// drop below 900 MHz (Table 6's 140 ns vs 110 ns) breaks the A + B/f
// family, so the segment model pays a visible penalty at 800 MHz — an
// honest cost of the smaller budget, reported as such in EXPERIMENTS.md.
// The model's distinctive payoff is the per-phase frequency-sensitivity
// classification that drives ModelDrivenDVFS.
func (s Suite) SegmentVsSP(camp *Campaign) (*SegmentResult, error) {
	mhz := s.Grid.MHz
	if len(mhz) < 3 {
		return nil, fmt.Errorf("experiments: segment comparison needs ≥ 3 frequencies")
	}
	lo, hi := mhz[0], mhz[len(mhz)-1]
	interior := mhz[1 : len(mhz)-1]

	seg, err := core.FitSeg(PhaseTimes(camp), lo, hi)
	if err != nil {
		return nil, err
	}
	sp, err := core.FitSP(camp.Meas)
	if err != nil {
		return nil, err
	}

	segGrid, err := errorGridFrom("Segment-granularity model: execution-time error (held-out frequencies)",
		s.Grid.Ns, interior, seg.PredictTime, timeOf(camp.Meas))
	if err != nil {
		return nil, err
	}
	spGrid, err := errorGridFrom("Whole-program SP: execution-time error (same cells)",
		s.Grid.Ns, interior, sp.PredictTime, timeOf(camp.Meas))
	if err != nil {
		return nil, err
	}

	sens := map[string]float64{}
	maxN := s.Grid.Ns[len(s.Grid.Ns)-1]
	for _, phase := range seg.Phases() {
		v, err := seg.FrequencySensitivity(phase, maxN)
		if err == nil {
			sens[phase] = v
		}
	}
	return &SegmentResult{Seg: segGrid, SP: spGrid, Sensitivity: sens}, nil
}

// SensitivityThreshold is the frequency-sensitive fraction below which a
// phase is scheduled at the bottom gear by the model-driven DVFS policy:
// slowing a phase whose time is mostly flat costs little and saves power.
const SensitivityThreshold = 0.5

// ModelDrivenDVFS builds a DVFS policy *automatically* from the fitted
// segment model — the paper's §7 vision: classify each code segment by its
// measured frequency sensitivity and derate the insensitive ones. It
// returns the policy and the discovered low-gear phase set.
func (s Suite) ModelDrivenDVFS(camp *Campaign) (dvfs.Policy, []string, error) {
	mhz := s.Grid.MHz
	seg, err := core.FitSeg(PhaseTimes(camp), mhz[0], mhz[len(mhz)-1])
	if err != nil {
		return dvfs.Policy{}, nil, err
	}
	maxN := s.Grid.Ns[len(s.Grid.Ns)-1]
	comm := map[string]bool{}
	var names []string
	for _, phase := range seg.Phases() {
		v, err := seg.FrequencySensitivity(phase, maxN)
		if err != nil {
			continue
		}
		if v < SensitivityThreshold {
			comm[phase] = true
			names = append(names, phase)
		}
	}
	if len(comm) == 0 {
		return dvfs.Policy{}, nil, fmt.Errorf("experiments: no frequency-insensitive phases found")
	}
	return dvfs.Policy{
		ComputeState: s.Platform.Prof.TopState(),
		CommState:    s.Platform.Prof.BaseState(),
		CommPhases:   comm,
		SwitchSec:    50e-6,
	}, names, nil
}

// EDPOptimalGears builds the multi-gear schedule: each phase's fitted
// (A, B) coefficients are priced at every operating point and the gear
// minimizing the phase's predicted energy-delay product is chosen —
// intermediate gears included, which neither a hand-written nor a
// threshold policy can express.
func (s Suite) EDPOptimalGears(camp *Campaign) (dvfs.GearPolicy, error) {
	mhz := s.Grid.MHz
	seg, err := core.FitSeg(PhaseTimes(camp), mhz[0], mhz[len(mhz)-1])
	if err != nil {
		return dvfs.GearPolicy{}, err
	}
	maxN := s.Grid.Ns[len(s.Grid.Ns)-1]
	models := map[string]dvfs.PhaseModel{}
	for _, phase := range seg.Phases() {
		a, b, err := seg.Coefficients(phase, maxN)
		if err != nil {
			continue
		}
		models[phase] = dvfs.PhaseModel{FlatSec: a, ScaledSecMHz: b}
	}
	return dvfs.OptimizeEDP(s.Platform.Prof, maxN, models, 50e-6)
}
