package npb

import (
	"testing"
	"testing/quick"
)

func TestRandlcRange(t *testing.T) {
	r := newRandlc(0)
	for i := 0; i < 10000; i++ {
		v := r.next()
		if v <= 0 || v >= 1 {
			t.Fatalf("deviate %d = %g outside (0,1)", i, v)
		}
	}
}

func TestRandlcDeterministic(t *testing.T) {
	a, b := newRandlc(0), newRandlc(0)
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestRandlcJumpAhead(t *testing.T) {
	// Skipping k deviates by jumping must equal generating and discarding k.
	for _, k := range []uint64{0, 1, 2, 7, 100, 4096} {
		seq := newRandlc(0)
		for i := uint64(0); i < k; i++ {
			seq.next()
		}
		jumped := newRandlc(k)
		for i := 0; i < 16; i++ {
			a, b := seq.next(), jumped.next()
			if a != b {
				t.Fatalf("skip %d: deviate %d differs: %g vs %g", k, i, a, b)
			}
		}
	}
}

func TestRandlcUniformity(t *testing.T) {
	// Crude uniformity: decile counts of 100k deviates within 5% of expected.
	r := newRandlc(0)
	var buckets [10]int
	const n = 100000
	for i := 0; i < n; i++ {
		b := int(r.next() * 10)
		if b == 10 {
			b = 9
		}
		buckets[b]++
	}
	for i, c := range buckets {
		if c < n/10-n/200 || c > n/10+n/200 {
			t.Errorf("decile %d count %d deviates >5%% from %d", i, c, n/10)
		}
	}
}

func TestMul46MatchesDirectProduct(t *testing.T) {
	// For operands below 2^23, a·b fits in 46 bits exactly.
	f := func(a, b uint32) bool {
		x := uint64(a) & ((1 << 23) - 1)
		y := uint64(b) & ((1 << 23) - 1)
		return mul46(x, y) == (x*y)&mod46
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowAExponentLaws(t *testing.T) {
	if powA(defaultA, 0) != 1 {
		t.Error("a^0 ≠ 1")
	}
	if powA(defaultA, 1) != defaultA&mod46 {
		t.Error("a^1 ≠ a")
	}
	f := func(m8, n8 uint8) bool {
		m, n := uint64(m8), uint64(n8)
		return powA(defaultA, m+n) == mul46(powA(defaultA, m), powA(defaultA, n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckPow2(t *testing.T) {
	for _, ok := range []int{1, 2, 64, 1 << 20} {
		if err := checkPow2("v", ok); err != nil {
			t.Errorf("checkPow2(%d): %v", ok, err)
		}
	}
	for _, bad := range []int{0, -4, 3, 12, 63} {
		if err := checkPow2("v", bad); err == nil {
			t.Errorf("checkPow2(%d) succeeded, want error", bad)
		}
	}
}
