package machine

import (
	"math"
	"testing"
	"testing/quick"

	"pasp/internal/stats"
	"pasp/internal/units"
)

func TestPentiumMValid(t *testing.T) {
	if err := PentiumM().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestLevelStrings(t *testing.T) {
	want := map[Level]string{
		Reg: "CPU/Register", L1: "L1 Cache", L2: "L2 Cache", Mem: "Main Memory",
	}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), s)
		}
	}
	if Level(99).String() == "" {
		t.Error("unknown level should still render")
	}
}

func TestOnChipClassification(t *testing.T) {
	for _, l := range []Level{Reg, L1, L2} {
		if !l.OnChip() {
			t.Errorf("%v should be ON-chip", l)
		}
	}
	if Mem.OnChip() {
		t.Error("Mem should be OFF-chip")
	}
}

// Table 6 reproduction: the blended ON-chip CPI under the paper's LU mix
// (44.6% register, 53.9% L1, 1.4% L2 of ON-chip instructions) must come out
// near 2.19 cycles.
func TestBlendedCPIMatchesTable6(t *testing.T) {
	c := PentiumM()
	mix := W(0.446, 0.539, 0.014, 0)
	cpi, err := c.BlendedCPIOn(mix)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(cpi, 2.19, 0.02) {
		t.Errorf("blended CPION = %.3f, want ≈ 2.19 (Table 6)", cpi)
	}
}

// Table 6 reproduction: seconds per ON-chip instruction scale as 1/f, and
// seconds per OFF-chip instruction are 140 ns below the bus-drop threshold
// and 110 ns above it.
func TestSecPerInsTable6(t *testing.T) {
	c := PentiumM()
	mix := W(0.446, 0.539, 0.014, 0)
	cpi, _ := c.BlendedCPIOn(mix)
	for _, tc := range []struct {
		mhz     float64
		wantOn  float64 // ×1e-9 s
		wantMem float64 // ×1e-9 s
	}{
		{600, 3.65, 140},
		{800, 2.74, 140},
		{1000, 2.19, 110},
		{1200, 1.83, 110},
		{1400, 1.56, 110},
	} {
		f := units.MHz(tc.mhz)
		on := float64(units.Cycles(cpi).At(f).Nanos())
		if !stats.AlmostEqual(on, tc.wantOn, 0.02) {
			t.Errorf("%g MHz: sec/ON-ins = %.2f ns, want ≈ %.2f ns", tc.mhz, on, tc.wantOn)
		}
		if got := float64(c.MemNanos(f)); !stats.AlmostEqual(got, tc.wantMem, 1e-9) {
			t.Errorf("%g MHz: mem ns = %g, want %g", tc.mhz, got, tc.wantMem)
		}
	}
}

func TestBusDropDisable(t *testing.T) {
	c := PentiumM()
	c.BusDrop = false
	if got := c.MemNanos(600e6); got != c.MemNanosFast {
		t.Errorf("with BusDrop off, MemNanos(600MHz) = %g, want %g", got, c.MemNanosFast)
	}
}

func TestTimeForEq6(t *testing.T) {
	c := PentiumM()
	// Pure register work: w instructions at 1 cycle each.
	w := W(1e9, 0, 0, 0)
	f := units.GHz(1)
	if got := c.TimeFor(w, f); !stats.AlmostEqual(float64(got), 1.0, 1e-12) {
		t.Errorf("1e9 reg ins at 1GHz = %g s, want 1", got)
	}
	// Pure memory work is frequency-independent above the bus threshold.
	m := W(0, 0, 0, 1e6)
	if a, b := c.TimeFor(m, 1000e6), c.TimeFor(m, 1400e6); a != b {
		t.Errorf("OFF-chip time varies with frequency above threshold: %g vs %g", a, b)
	}
	// ON-chip time at 600 MHz is 1400/600 × the time at 1400 MHz.
	on := W(1e8, 1e8, 1e7, 0)
	ratio := c.TimeFor(on, 600e6) / c.TimeFor(on, 1400e6)
	if !stats.AlmostEqual(float64(ratio), 1400.0/600.0, 1e-9) {
		t.Errorf("ON-chip frequency scaling ratio = %g, want %g", ratio, 1400.0/600.0)
	}
}

func TestWorkAccessors(t *testing.T) {
	w := W(1, 2, 3, 4)
	if w.Total() != 10 {
		t.Errorf("Total = %g, want 10", w.Total())
	}
	if w.OnChip() != 6 {
		t.Errorf("OnChip = %g, want 6", w.OnChip())
	}
	if w.OffChip() != 4 {
		t.Errorf("OffChip = %g, want 4", w.OffChip())
	}
	fr := w.Fractions()
	if fr[Mem] != 0.4 {
		t.Errorf("Fractions[Mem] = %g, want 0.4", fr[Mem])
	}
	var zero Work
	if zero.Fractions() != ([NumLevels]float64{}) {
		t.Error("zero work should have zero fractions")
	}
}

func TestWorkAddScale(t *testing.T) {
	a, b := W(1, 2, 3, 4), W(10, 20, 30, 40)
	sum := a.Add(b)
	if sum != W(11, 22, 33, 44) {
		t.Errorf("Add = %v", sum)
	}
	if got := a.Scale(2); got != W(2, 4, 6, 8) {
		t.Errorf("Scale = %v", got)
	}
}

func TestWorkValidate(t *testing.T) {
	if err := W(1, 1, 1, 1).Validate(); err != nil {
		t.Errorf("valid work rejected: %v", err)
	}
	if err := W(-1, 0, 0, 0).Validate(); err == nil {
		t.Error("negative count accepted")
	}
}

func TestLevelFor(t *testing.T) {
	c := PentiumM()
	cases := []struct {
		bytes int
		want  Level
	}{
		{1 << 10, L1},
		{32 << 10, L1},
		{33 << 10, L2},
		{1 << 20, L2},
		{2 << 20, Mem},
	}
	for _, tc := range cases {
		if got := c.LevelFor(tc.bytes); got != tc.want {
			t.Errorf("LevelFor(%d) = %v, want %v", tc.bytes, got, tc.want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Config){
		"zero reg cycles":    func(c *Config) { c.Cycles[Reg] = 0 },
		"L1 faster than reg": func(c *Config) { c.Cycles[L1] = 0.5 },
		"slow < fast":        func(c *Config) { c.MemNanosSlow = 50 },
		"zero mem nanos":     func(c *Config) { c.MemNanosFast = 0; c.MemNanosSlow = 0 },
		"L2 smaller than L1": func(c *Config) { c.L2Bytes = 1 },
		"zero line":          func(c *Config) { c.LineBytes = 0 },
	}
	for name, mutate := range cases {
		c := PentiumM()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", name)
		}
	}
}

func TestBlendedCPIErrorOnNoOnChip(t *testing.T) {
	if _, err := PentiumM().BlendedCPIOn(W(0, 0, 0, 5)); err == nil {
		t.Error("BlendedCPIOn with no ON-chip work succeeded, want error")
	}
}

// Property: with overlap disabled, TimeFor is additive — time(a+b) =
// time(a)+time(b) at any frequency — which is exactly the paper's Eq. 6.
// (The default MemOverlap breaks additivity on purpose; see footnote 1.)
func TestTimeForAdditiveProperty(t *testing.T) {
	c := PentiumM()
	c.MemOverlap = 0
	freqs := []units.Hertz{600e6, 800e6, 1000e6, 1200e6, 1400e6}
	f := func(a, b [NumLevels]uint32, fi uint8) bool {
		wa := W(float64(a[0]), float64(a[1]), float64(a[2]), float64(a[3]))
		wb := W(float64(b[0]), float64(b[1]), float64(b[2]), float64(b[3]))
		freq := freqs[int(fi)%len(freqs)]
		lhs := c.TimeFor(wa.Add(wb), freq)
		rhs := c.TimeFor(wa, freq) + c.TimeFor(wb, freq)
		return stats.AlmostEqual(float64(lhs), float64(rhs), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: time never increases when frequency increases (memory time is
// flat, on-chip time shrinks).
func TestTimeMonotoneInFrequencyProperty(t *testing.T) {
	c := PentiumM()
	freqs := []units.Hertz{600e6, 800e6, 1000e6, 1200e6, 1400e6}
	f := func(ops [NumLevels]uint32, i, j uint8) bool {
		w := W(float64(ops[0]), float64(ops[1]), float64(ops[2]), float64(ops[3]))
		a, b := int(i)%len(freqs), int(j)%len(freqs)
		if a > b {
			a, b = b, a
		}
		return c.TimeFor(w, freqs[b]) <= c.TimeFor(w, freqs[a])+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeForZeroWork(t *testing.T) {
	if got := PentiumM().TimeFor(Work{}, 600e6); got != 0 {
		t.Errorf("zero work time = %g, want 0", got)
	}
}

func TestMemTimeFreqIndependentWithinRegime(t *testing.T) {
	c := PentiumM()
	w := W(0, 0, 0, 1e7)
	if a, b := c.TimeFor(w, 600e6), c.TimeFor(w, 800e6); math.Abs(float64(a-b)) > 1e-15 {
		t.Errorf("mem time differs within slow regime: %g vs %g", a, b)
	}
}

// The default overlap hides part of the shorter side, so a mixed workload
// runs faster than the additive Eq. 6 predicts — the FP model's footnote-1
// error source.
func TestMemOverlapHidesStall(t *testing.T) {
	c := PentiumM()
	w := W(1e8, 1e8, 0, 2e6)
	withOverlap := c.TimeFor(w, 600e6)
	c.MemOverlap = 0
	additive := c.TimeFor(w, 600e6)
	if withOverlap >= additive {
		t.Errorf("overlap did not reduce time: %g vs %g", withOverlap, additive)
	}
	// Pure workloads are unaffected (nothing to overlap with).
	for _, pure := range []Work{W(1e8, 0, 0, 0), W(0, 0, 0, 1e6)} {
		d := PentiumM()
		z := d
		z.MemOverlap = 0
		if d.TimeFor(pure, 600e6) != z.TimeFor(pure, 600e6) {
			t.Errorf("pure workload affected by overlap: %v", pure)
		}
	}
}

func TestValidateRejectsBadOverlap(t *testing.T) {
	c := PentiumM()
	c.MemOverlap = 1.5
	if err := c.Validate(); err == nil {
		t.Error("MemOverlap > 1 accepted")
	}
}
