package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// DetSource guards the repository's determinism contract: reproduction
// output, store fingerprints, golden files and obs exports must be pure
// functions of their inputs, so nothing in the tree may read wall-clock
// time, the global math/rand source, or the environment — and nothing may
// fold map-iteration order or fmt-rendered pointer identities into a value.
// The pass is interprocedural: a helper that reads time.Now taints every
// (module-internal) caller, a function that forwards a parameter into a
// %v/%+v verb is checked at each call site against the concrete argument
// type, and a //palint:ignore detsource -- <reason> at the source line
// sanctions the behaviour for all callers at once (the CLI drivers' wall
// clocks use exactly that escape).
var DetSource = &Analyzer{
	Name: "detsource",
	Doc:  "nondeterminism sources (wall clock, global rand, env, map order, pointer rendering) reaching deterministic code",
	Run:  runDetSource,
	Explain: `Reproduction output must be bit-identical run to run, so every value in
the tree must be a pure function of its inputs. detsource flags, including
through any chain of module-internal calls:
  - wall-clock reads: time.Now / Since / Until
  - the global math/rand source (rand.Int, rand.Float64, ...; an explicitly
    seeded *rand.Rand is fine) and crypto/rand
  - environment reads: os.Getenv / LookupEnv / Environ / Hostname
  - map iteration accumulated into an ordered value (append in the loop
    body) with no later sort in the same function
  - %v / %+v / %#v rendering of a type that transitively contains a
    pointer, func or chan (fmt prints their addresses, which differ every
    run — the store-fingerprint leak), checked through helpers that
    forward an interface parameter into the verb (obs.Fingerprint).
Suppressing the source line with //palint:ignore detsource -- <reason>
sanctions it for every caller.`,
	Example: `func stamp() string        { return time.Now().String() }    // flagged
func key(v any) string     { return fmt.Sprintf("%+v", v) }   // forwards param 0
type cfg struct{ log *Log }
func fingerprint(c cfg)    { _ = key(c) }                     // flagged: pointer reaches %+v
func order(m map[int]int) (out []int) {
	for k := range m {
		out = append(out, k) // flagged: no sort after the loop
	}
	return out
}`,
}

// taintKind names one class of nondeterminism source.
type taintKind string

const (
	taintWallClock taintKind = "wall-clock read"
	taintRand      taintKind = "global math/rand draw"
	taintEnv       taintKind = "environment read"
)

// nondetStdFuncs maps standard-library functions to the taint they
// introduce. Package-level math/rand and math/rand/v2 functions are handled
// separately (any of them draws from the unseeded global source).
var nondetStdFuncs = map[string]taintKind{
	"time.Now":         taintWallClock,
	"time.Since":       taintWallClock,
	"time.Until":       taintWallClock,
	"os.Getenv":        taintEnv,
	"os.LookupEnv":     taintEnv,
	"os.Environ":       taintEnv,
	"os.Hostname":      taintEnv,
	"crypto/rand.Read": taintRand,
	"crypto/rand.Int":  taintRand,
}

// directTaint classifies a resolved callee as a nondeterminism source.
func directTaint(callee *types.Func) (taintKind, string, bool) {
	key := stdFuncKey(callee)
	if kind, ok := nondetStdFuncs[key]; ok {
		return kind, key, true
	}
	if callee.Pkg() != nil {
		path := callee.Pkg().Path()
		if (path == "math/rand" || path == "math/rand/v2") && !isMethod(callee) {
			return taintRand, key, true
		}
	}
	return "", "", false
}

func isMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// nondetFacts returns the taints reachable from f's body, keyed by kind,
// with a representative witness chain ("helper → time.Now"). Sources whose
// line carries a detsource suppression are sanctioned and do not propagate.
// Cycles in the call graph resolve to the facts discovered so far.
func (prog *Program) nondetFacts(f *types.Func) map[taintKind]string {
	if facts, ok := prog.nondet[f]; ok {
		return facts
	}
	info := prog.funcOf(f)
	if info == nil || prog.nondetBusy[f] {
		return nil
	}
	prog.nondetBusy[f] = true
	facts := map[taintKind]string{}
	for _, cs := range info.calls {
		if prog.sanctioned("detsource", cs.call.Pos()) {
			continue
		}
		if kind, witness, ok := directTaint(cs.callee); ok {
			if _, have := facts[kind]; !have {
				facts[kind] = witness
			}
			continue
		}
		for kind, chain := range prog.nondetFacts(cs.callee) {
			if _, have := facts[kind]; !have {
				facts[kind] = shortFuncName(cs.callee) + " → " + chain
			}
		}
	}
	delete(prog.nondetBusy, f)
	prog.nondet[f] = facts
	return facts
}

// fmtVerbFuncs maps fmt functions that render values through verbs to the
// index of their format-string argument. fmt.Errorf is deliberately absent:
// error text is not an identity and flagging it would bury the fingerprint
// signal in noise.
var fmtVerbFuncs = map[string]int{
	"fmt.Sprintf": 0,
	"fmt.Fprintf": 1,
	"fmt.Printf":  0,
	"fmt.Appendf": 1,
}

// fmtForwardFacts returns the indices of f's interface-typed parameters
// whose values reach a %v/%+v/%#v verb, directly or by forwarding to
// another function with this fact. The concrete types behind those
// parameters are only known at call sites, which is where runDetSource
// checks them.
func (prog *Program) fmtForwardFacts(f *types.Func) map[int]bool {
	if facts, ok := prog.fmtParams[f]; ok {
		return facts
	}
	info := prog.funcOf(f)
	if info == nil || prog.fmtBusy[f] {
		return nil
	}
	prog.fmtBusy[f] = true
	facts := map[int]bool{}
	record := func(arg ast.Expr) {
		if idx, ok := paramIndexOf(info, arg); ok {
			facts[idx] = true
		}
	}
	for _, cs := range info.calls {
		if prog.sanctioned("detsource", cs.call.Pos()) {
			continue
		}
		for _, arg := range verbArgs(info.Pkg, cs) {
			record(arg)
		}
		for idx := range prog.fmtForwardFacts(cs.callee) {
			if idx < len(cs.call.Args) {
				record(cs.call.Args[idx])
			}
		}
	}
	delete(prog.fmtBusy, f)
	prog.fmtParams[f] = facts
	return facts
}

// paramIndexOf reports which parameter of info's function the expression
// names, when it is a plain reference to one.
func paramIndexOf(info *FuncInfo, e ast.Expr) (int, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := info.Pkg.Info.Uses[id]
	if obj == nil {
		return 0, false
	}
	sig, ok := info.Obj.Type().(*types.Signature)
	if !ok {
		return 0, false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i, true
		}
	}
	return 0, false
}

// verbArgs returns the arguments of cs that a %v/%+v/%#v verb renders, when
// the callee is a fmt verb function with a constant format string.
func verbArgs(pkg *Package, cs callSite) []ast.Expr {
	fmtIdx, ok := fmtVerbFuncs[stdFuncKey(cs.callee)]
	if !ok || fmtIdx >= len(cs.call.Args) {
		return nil
	}
	format, ok := constantString(pkg, cs.call.Args[fmtIdx])
	if !ok {
		return nil
	}
	var out []ast.Expr
	argIdx := fmtIdx + 1
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		j := i + 1
		// Width/precision stars consume one argument each.
		for j < len(format) && strings.ContainsRune("+-# 0123456789.*", rune(format[j])) {
			if format[j] == '*' {
				argIdx++
			}
			j++
		}
		if j >= len(format) {
			break
		}
		verb := format[j]
		i = j
		if verb == '%' {
			continue
		}
		if verb == 'v' && argIdx < len(cs.call.Args) {
			out = append(out, cs.call.Args[argIdx])
		}
		argIdx++
	}
	return out
}

// constantString evaluates e as a constant string.
func constantString(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	s, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return "", false
	}
	return s, true
}

// rendersNondet reports whether fmt's %v family renders t nondeterministic-
// ally: the type transitively contains a pointer, func or chan, whose
// addresses differ between runs. Types implementing fmt.Stringer or error
// control their own rendering and are trusted; interface-typed components
// are opaque (a documented soundness limit — the forwarding fact closes the
// common helper case).
func rendersNondet(t types.Type) (string, bool) {
	return rendersNondetSeen(t, map[types.Type]bool{})
}

func rendersNondetSeen(t types.Type, seen map[types.Type]bool) (string, bool) {
	if t == nil || seen[t] {
		return "", false
	}
	seen[t] = true
	if hasStringMethod(t) {
		return "", false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return "pointer", true
	case *types.Signature:
		return "func value", true
	case *types.Chan:
		return "chan", true
	case *types.Slice:
		if what, bad := rendersNondetSeen(u.Elem(), seen); bad {
			return what, true
		}
	case *types.Array:
		if what, bad := rendersNondetSeen(u.Elem(), seen); bad {
			return what, true
		}
	case *types.Map:
		// fmt sorts map keys since Go 1.12, so iteration order is safe,
		// but pointer-bearing keys or values still render as addresses.
		if what, bad := rendersNondetSeen(u.Key(), seen); bad {
			return what, true
		}
		if what, bad := rendersNondetSeen(u.Elem(), seen); bad {
			return what, true
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			fld := u.Field(i)
			if what, bad := rendersNondetSeen(fld.Type(), seen); bad {
				return fmt.Sprintf("field %s holds a %s", fld.Name(), what), true
			}
		}
	}
	return "", false
}

// hasStringMethod reports whether t (or *t) has a String() string method.
func hasStringMethod(t types.Type) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		obj, _, _ := types.LookupFieldOrMethod(typ, true, nil, "String")
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
			types.Identical(sig.Results().At(0).Type(), types.Typ[types.String]) {
			return true
		}
	}
	return false
}

func runDetSource(pass *Pass) {
	prog := pass.Prog
	eachReportedFunc(pass, func(info *FuncInfo) {
		for _, cs := range info.calls {
			// Direct sources report at the call; taints reached through a
			// function outside the reporting set report here too, because
			// the source line itself is not part of this run's output.
			if kind, witness, ok := directTaint(cs.callee); ok {
				pass.Reportf(cs.call.Pos(), "%s (%s) in deterministic code; derive the value from explicit inputs or suppress with a reason", kind, witness)
			} else if callee := prog.funcOf(cs.callee); callee != nil && !prog.inReport[callee.Pkg] {
				for kind, chain := range prog.nondetFacts(cs.callee) {
					pass.Reportf(cs.call.Pos(), "call to %s reaches a %s (%s → %s)",
						shortFuncName(cs.callee), kind, shortFuncName(cs.callee), chain)
				}
			}
			// Concrete arguments meeting a %v verb — directly or through a
			// forwarding helper like obs.Fingerprint — must render
			// deterministically.
			for _, arg := range verbArgs(info.Pkg, cs) {
				reportNondetRender(pass, info, arg, "")
			}
			for idx := range prog.fmtForwardFacts(cs.callee) {
				if idx < len(cs.call.Args) {
					reportNondetRender(pass, info, cs.call.Args[idx], shortFuncName(cs.callee))
				}
			}
		}
		checkMapOrderAccumulation(pass, info)
	})
}

// reportNondetRender flags arg when its concrete static type would render
// pointer/func/chan addresses through a %v verb. via names the forwarding
// helper, or "" for a direct fmt call.
func reportNondetRender(pass *Pass, info *FuncInfo, arg ast.Expr, via string) {
	t := info.Pkg.Info.Types[arg].Type
	if t == nil {
		return
	}
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		return // opaque: checked at this call's own call sites instead
	}
	what, bad := rendersNondet(t)
	if !bad {
		return
	}
	if via != "" {
		pass.Reportf(arg.Pos(), "%s renders %s through a %%v verb, but %s: the rendering embeds a run-dependent address", via, t, what)
	} else {
		pass.Reportf(arg.Pos(), "%%v rendering of %s embeds a run-dependent address (%s)", t, what)
	}
}

// checkMapOrderAccumulation flags map-range loops that append into a slice
// declared outside the loop when no sort call follows in the same function:
// the element order then depends on Go's randomized map iteration. (The
// maporder pass covers formatted-output sinks; this rule covers values.)
func checkMapOrderAccumulation(pass *Pass, info *FuncInfo) {
	type loopAppend struct {
		rng *ast.RangeStmt
		pos token.Pos
	}
	var appends []loopAppend
	var sortCalls []token.Pos
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if pkgPathOfCall(info.Pkg, x) == "sort" || pkgPathOfCall(info.Pkg, x) == "slices" {
				sortCalls = append(sortCalls, x.Pos())
			}
		case *ast.RangeStmt:
			t := info.Pkg.Info.Types[x.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(x.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
					if _, isBuiltin := info.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
						appends = append(appends, loopAppend{rng: x, pos: call.Pos()})
						return false
					}
				}
				return true
			})
		}
		return true
	})
	for _, la := range appends {
		sorted := false
		for _, sp := range sortCalls {
			if sp > la.rng.Body.End() {
				sorted = true
				break
			}
		}
		if !sorted {
			pass.Reportf(la.pos, "append inside map iteration builds an order-dependent value; collect and sort, or sort the result before it escapes")
		}
	}
}

// pkgPathOfCall returns the import path of the package a call's qualifier
// names, or "".
func pkgPathOfCall(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pkg.Info.ObjectOf(id).(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
