package experiments

import (
	"context"
	"fmt"

	"pasp/internal/cluster"
	"pasp/internal/core"
	"pasp/internal/stats"
)

// ExtrapolationResult quantifies how well the overhead-growth model (SPX)
// predicts a processor count that was never measured — the experiment the
// paper's footnote 3 could not run for lack of a larger cluster.
type ExtrapolationResult struct {
	// Kernel names the workload.
	Kernel string
	// FitNs are the processor counts the model saw; HeldOutN the count it
	// predicted blind.
	FitNs    []int
	HeldOutN int
	// MHz, Predicted, Measured and Err are per-frequency outcomes at the
	// held-out count.
	MHz       []float64
	Predicted []float64
	Measured  []float64
	Err       []float64
}

// MaxErr returns the largest relative error at the held-out count.
func (r *ExtrapolationResult) MaxErr() float64 { return stats.Max(r.Err) }

// String renders the comparison.
func (r *ExtrapolationResult) String() string {
	s := fmt.Sprintf("%s: overhead model fitted on N=%v, extrapolated to N=%d\n", r.Kernel, r.FitNs, r.HeldOutN)
	for i := range r.MHz {
		s += fmt.Sprintf("  %4.0f MHz: predicted %8.3f s, measured %8.3f s (error %s)\n",
			r.MHz[i], r.Predicted[i], r.Measured[i], stats.Percent(r.Err[i]))
	}
	s += fmt.Sprintf("  max error %s\n", stats.Percent(r.MaxErr()))
	return s
}

// Extrapolate fits SPX on the campaign's configurations with N ≤ maxFitN
// and scores its blind predictions at heldOutN, which must be present in
// the campaign for validation.
func Extrapolate(kernel string, camp *Campaign, maxFitN, heldOutN int) (*ExtrapolationResult, error) {
	x, err := core.FitSPX(camp.Meas, maxFitN)
	if err != nil {
		return nil, err
	}
	res := &ExtrapolationResult{Kernel: kernel, FitNs: x.FittedNs(), HeldOutN: heldOutN}
	for _, mhz := range camp.Meas.Freqs() {
		pred, err := x.PredictTime(heldOutN, mhz)
		if err != nil {
			return nil, err
		}
		meas, err := camp.Meas.Time(heldOutN, mhz)
		if err != nil {
			return nil, fmt.Errorf("experiments: held-out N=%d not measured: %w", heldOutN, err)
		}
		res.MHz = append(res.MHz, mhz)
		res.Predicted = append(res.Predicted, pred)
		res.Measured = append(res.Measured, meas)
		res.Err = append(res.Err, stats.RelError(pred, meas))
	}
	return res, nil
}

// ExtrapolateLU runs the footnote-3 experiment on LU, whose wavefront and
// message overheads grow smoothly with N: measure N ∈ {1..8} plus a
// validation run at 16, fit on ≤ 8, predict 16. The fit rows reuse the
// memoized MeasureLU campaign; only the held-out N=16 row is swept here.
// Every cell is an independent deterministic simulation and cluster.Sweep
// orders cells Ns-outer/MHz-inner, so concatenating the two campaigns
// reproduces the extended-grid sweep cell for cell, bit-identically.
func (s Suite) ExtrapolateLU(ctx context.Context) (*ExtrapolationResult, error) {
	base, err := s.MeasureLU(ctx)
	if err != nil {
		return nil, err
	}
	held, err := s.measureCached(ctx, "LU", s.LU, cluster.Grid{Ns: []int{16}, MHz: s.LUGrid.MHz}, s.RunLU)
	if err != nil {
		return nil, err
	}
	return Extrapolate("LU", mergeCampaigns(base, held), 8, 16)
}

// mergeCampaigns assembles a fresh Campaign from the concatenated cells of
// the inputs, in order. The inputs stay untouched (they may be shared store
// entries); the merged campaign rebuilds Meas and the cell index exactly as
// Suite.measure would have for a single sweep over the combined grid.
func mergeCampaigns(parts ...*Campaign) *Campaign {
	merged := &Campaign{Meas: core.NewMeasurements()}
	for _, p := range parts {
		merged.Cells = append(merged.Cells, p.Cells...)
	}
	merged.indexOnce.Do(merged.buildIndex)
	for _, c := range merged.Cells {
		merged.Meas.SetTime(c.N, c.MHz, c.Res.Seconds)
		merged.Meas.SetEnergy(c.N, c.MHz, c.Res.Joules)
	}
	return merged
}

// ExtrapolateFT runs the same experiment on FT, where the transpose
// alltoall crosses the fabric's contention knee between 8 and 16 nodes —
// the regime change no smooth overhead model can see from below.
func (s Suite) ExtrapolateFT(ctx context.Context) (*ExtrapolationResult, error) {
	camp, err := s.MeasureFT(ctx)
	if err != nil {
		return nil, err
	}
	return Extrapolate("FT", camp, 8, 16)
}
