package faults

import (
	"math"
	"testing"
)

// FuzzMessageFault checks the injector's contract over arbitrary knob
// settings: every drawn perturbation is finite, non-negative, bounded by the
// configured limits, and reproducible from the same (seed, rank) key.
func FuzzMessageFault(f *testing.F) {
	f.Add(uint64(1), 0.5, 0.1, 0.2, 2.0, 1e-4)
	f.Add(uint64(42), 0.0, 0.0, 0.0, 0.0, 1e-4)
	f.Add(uint64(7), 10.0, 1.0, 1.0, 100.0, 1e-6)
	f.Fuzz(func(t *testing.T, seed uint64, jitter, drop, degradeProb, degradeFactor, latency float64) {
		cfg := Config{
			Seed:              seed,
			LatencyJitterFrac: jitter,
			DropProb:          drop,
			DegradeProb:       degradeProb,
			DegradeFactor:     degradeFactor,
		}
		if cfg.Validate() != nil {
			t.Skip("non-physical config")
		}
		if latency < 0 || math.IsNaN(latency) || math.IsInf(latency, 0) {
			t.Skip("non-physical latency")
		}
		a, b := NewRank(cfg, 0), NewRank(cfg, 0)
		for i := 0; i < 32; i++ {
			fa := a.Message(latency)
			if fa != b.Message(latency) {
				t.Fatalf("draw %d not reproducible", i)
			}
			if math.IsNaN(fa.ExtraLatencySec) || math.IsInf(fa.ExtraLatencySec, 0) || fa.ExtraLatencySec < 0 {
				t.Fatalf("ExtraLatencySec = %g", fa.ExtraLatencySec)
			}
			if fa.ExtraLatencySec > jitter*latency {
				t.Fatalf("jitter %g above bound %g", fa.ExtraLatencySec, jitter*latency)
			}
			if fa.WireFactor < 1 || math.IsInf(fa.WireFactor, 0) {
				t.Fatalf("WireFactor = %g", fa.WireFactor)
			}
			if fa.Retries < 0 || fa.Retries > cfg.maxRetries() {
				t.Fatalf("Retries = %d outside [0, %d]", fa.Retries, cfg.maxRetries())
			}
			if back := cfg.BackoffSec(fa.Retries); back < 0 || math.IsNaN(back) || math.IsInf(back, 0) {
				t.Fatalf("BackoffSec(%d) = %g", fa.Retries, back)
			}
		}
	})
}

// FuzzParseSpec checks the CLI parser never panics and every accepted spec
// round-trips into a config that passes validation.
func FuzzParseSpec(f *testing.F) {
	f.Add("seed=1,jitter=0.5")
	f.Add("drop=0.01,timeout=1ms,retries=3")
	f.Add("gear=50us")
	f.Add("")
	f.Add("jitter=,=,x==")
	f.Fuzz(func(t *testing.T, spec string) {
		c, err := ParseSpec(spec)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted invalid config: %v", spec, verr)
		}
	})
}
