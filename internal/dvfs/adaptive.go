package dvfs

import (
	"fmt"
	"sync"

	"pasp/internal/mpi"
	"pasp/internal/power"
	"pasp/internal/units"
)

// Adaptive is an online per-phase gear tuner: with no offline model or
// hand-written phase list, each rank explores the available operating
// points on each phase it encounters, estimates the phase's energy-delay
// product from its measured durations and the power law, and locks in the
// best gear. This is the runtime-governor approach the paper's authors
// later pursued (CPU MISER): purely reactive, profile-free, paying an
// exploration cost up front.
//
// Each rank tunes independently from its own virtual-time history, so the
// schedule remains deterministic; the measured durations are still coupled
// through communication (a rank's wait depends on its peers' gears), which
// is the genuine noise online tuning has to live with.
type Adaptive struct {
	// Prof supplies the operating points and the power law.
	Prof power.Profile
	// SwitchSec is the gear-transition stall.
	SwitchSec units.Seconds
	// Explore is how many visits each gear gets per phase before the tuner
	// commits; 0 selects 2.
	Explore int

	mu    sync.Mutex
	ranks map[int]*tuner
}

// tuner is one rank's state.
type tuner struct {
	lastPhase string
	lastGear  int
	lastTime  float64
	started   bool
	phases    map[string]*phaseStats
}

// phaseStats tracks one phase's per-gear observations on one rank.
type phaseStats struct {
	visits []int
	total  []float64
	chosen int // gear index, or −1 while exploring
}

// Validate reports an error for unusable parameters.
func (a *Adaptive) Validate() error {
	if err := a.Prof.Validate(); err != nil {
		return err
	}
	if a.SwitchSec < 0 {
		return fmt.Errorf("dvfs: negative switch time")
	}
	if a.Explore < 0 {
		return fmt.Errorf("dvfs: negative exploration count")
	}
	return nil
}

func (a *Adaptive) explore() int {
	if a.Explore == 0 {
		return 2
	}
	return a.Explore
}

func (a *Adaptive) tunerFor(rank int) *tuner {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ranks == nil {
		a.ranks = map[int]*tuner{}
	}
	t, ok := a.ranks[rank]
	if !ok {
		t = &tuner{phases: map[string]*phaseStats{}}
		a.ranks[rank] = t
	}
	return t
}

// pick selects the gear for a phase: round-robin exploration until every
// gear has Explore visits, then the EDP-argmin (node power × mean duration
// squared) forever after.
func (a *Adaptive) pick(ps *phaseStats) int {
	if ps.chosen >= 0 {
		return ps.chosen
	}
	for g := range a.Prof.States {
		if ps.visits[g] < a.explore() {
			return g
		}
	}
	best, bestEDP := len(a.Prof.States)-1, -1.0
	for g, st := range a.Prof.States {
		mean := units.Seconds(ps.total[g] / float64(ps.visits[g]))
		edp := power.EDP(a.Prof.NodePower(st, 1).Energy(mean), mean)
		if bestEDP < 0 || edp < bestEDP {
			bestEDP, best = edp, g
		}
	}
	ps.chosen = best
	return best
}

// Hook returns the runtime phase hook implementing the tuner.
func (a *Adaptive) Hook() func(c *mpi.Ctx, phase string) {
	return func(c *mpi.Ctx, phase string) {
		t := a.tunerFor(c.Rank())
		now := c.Now()
		if t.started {
			// Attribute the interval since the previous boundary to the
			// previous phase at the gear it ran at.
			prev := t.phases[t.lastPhase]
			prev.visits[t.lastGear]++
			prev.total[t.lastGear] += now - t.lastTime
		}
		ps, ok := t.phases[phase]
		if !ok {
			n := len(a.Prof.States)
			ps = &phaseStats{visits: make([]int, n), total: make([]float64, n), chosen: -1}
			t.phases[phase] = ps
		}
		gear := a.pick(ps)
		c.SetPState(a.Prof.States[gear])
		t.lastPhase, t.lastGear, t.started = phase, gear, true
		t.lastTime = c.Now() // after any switch stall
	}
}

// Apply installs the tuner on the world, starting every rank at the top
// gear.
func (a *Adaptive) Apply(w mpi.World) (mpi.World, error) {
	if err := a.Validate(); err != nil {
		return mpi.World{}, err
	}
	w.State = a.Prof.TopState()
	w.OnPhase = a.Hook()
	w.GearSwitchSec = a.SwitchSec
	return w, nil
}

// Chosen reports the gear each phase converged to on the given rank
// (phases still exploring are omitted). Valid after a run completes.
func (a *Adaptive) Chosen(rank int) map[string]power.PState {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := map[string]power.PState{}
	t, ok := a.ranks[rank]
	if !ok {
		return out
	}
	for phase, ps := range t.phases {
		if ps.chosen >= 0 {
			out[phase] = a.Prof.States[ps.chosen]
		}
	}
	return out
}

// CompareAdaptive runs the kernel pinned at the top gear and then under a
// fresh adaptive tuner, reporting the tradeoff and the gears rank 0
// converged to.
func CompareAdaptive(w mpi.World, a *Adaptive, run func(w mpi.World) (*mpi.Result, error)) (Comparison, map[string]power.PState, error) {
	if err := a.Validate(); err != nil {
		return Comparison{}, nil, err
	}
	base := w
	base.State = a.Prof.TopState()
	base.OnPhase = nil
	base.GearSwitchSec = 0
	baseRes, err := run(base)
	if err != nil {
		return Comparison{}, nil, fmt.Errorf("dvfs: baseline: %w", err)
	}
	sched, err := a.Apply(w)
	if err != nil {
		return Comparison{}, nil, err
	}
	schedRes, err := run(sched)
	if err != nil {
		return Comparison{}, nil, fmt.Errorf("dvfs: adaptive: %w", err)
	}
	return Comparison{
		BaselineSec:     units.Seconds(baseRes.Seconds),
		BaselineJoules:  units.Joules(baseRes.Joules),
		ScheduledSec:    units.Seconds(schedRes.Seconds),
		ScheduledJoules: units.Joules(schedRes.Joules),
	}, a.Chosen(0), nil
}
