package obs

import (
	"fmt"
	"sort"
	"strings"

	"pasp/internal/power"
	"pasp/internal/trace"
	"pasp/internal/units"
)

// IdleTailPhase labels the synthesized interval between a rank's last event
// and the job makespan, during which the node idles waiting for slower
// ranks. mpi's aggregate bills it at zero utilization; AttributeEnergy
// reproduces that arithmetic exactly so the report sums to the run total.
const IdleTailPhase = "idle-tail"

// EnergyRow attributes one rank's time in one phase.
type EnergyRow struct {
	Rank    int     `json:"rank"`
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
	Joules  float64 `json:"joules"`
	// EDP is the row's energy-delay product J·s.
	EDP float64 `json:"edp"`
}

// PhaseEnergy aggregates one phase across all ranks.
type PhaseEnergy struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
	Joules  float64 `json:"joules"`
}

// EnergyReport is the per-phase energy attribution of one run.
type EnergyReport struct {
	// Rows holds one entry per (rank, phase) pair, sorted by rank then
	// phase name, idle tails included.
	Rows []EnergyRow `json:"rows"`
	// TotalSeconds sums row seconds: the cluster's occupied node-seconds
	// (N × makespan when every rank's tail is included).
	TotalSeconds float64 `json:"total_seconds"`
	// TotalJoules sums row joules and equals the run's Result.Joules to
	// within float re-association (the property test pins 1e-9 relative).
	TotalJoules float64 `json:"total_joules"`
}

// AttributeEnergy decomposes a run's energy by (rank, phase). Every trace
// event already carries the node wattage the meter priced it at, so a
// phase's joules are Σ watts×duration over its events; the idle tail of
// each rank is billed at zero utilization at the job's base state, using
// the same expression as mpi's aggregate. rankEnds[i] is rank i's final
// virtual clock; makespan is the job's Result.Seconds.
func AttributeEnergy(l *trace.Log, prof power.Profile, st power.PState, makespan float64, rankEnds []float64) *EnergyReport {
	type key struct {
		rank  int
		phase string
	}
	acc := map[key]*EnergyRow{}
	add := func(rank int, phase string, sec, joules float64) {
		k := key{rank, phase}
		r, ok := acc[k]
		if !ok {
			r = &EnergyRow{Rank: rank, Phase: phase}
			acc[k] = r
		}
		r.Seconds += sec
		r.Joules += joules
	}
	for _, e := range l.Events() {
		d := e.Duration()
		add(e.Rank, e.Phase, d, float64(units.Watts(e.Watts).Energy(units.Seconds(d))))
	}
	for rank, end := range rankEnds {
		idle := units.Seconds(makespan - end)
		if idle <= 0 {
			continue
		}
		add(rank, IdleTailPhase, float64(idle), float64(prof.NodePower(st, 0).Energy(idle)))
	}
	rep := &EnergyReport{}
	for _, r := range acc {
		r.EDP = power.EDP(units.Joules(r.Joules), units.Seconds(r.Seconds))
		rep.Rows = append(rep.Rows, *r)
		rep.TotalSeconds += r.Seconds
		rep.TotalJoules += r.Joules
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		a, b := rep.Rows[i], rep.Rows[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Phase < b.Phase
	})
	return rep
}

// ByPhase aggregates the report across ranks, sorted by descending joules
// with the phase name as tie-break, so the dominant phase leads.
func (r *EnergyReport) ByPhase() []PhaseEnergy {
	acc := map[string]*PhaseEnergy{}
	for _, row := range r.Rows {
		p, ok := acc[row.Phase]
		if !ok {
			p = &PhaseEnergy{Phase: row.Phase}
			acc[row.Phase] = p
		}
		p.Seconds += row.Seconds
		p.Joules += row.Joules
	}
	out := make([]PhaseEnergy, 0, len(acc))
	for _, p := range acc {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		//palint:ignore floateq -- exact inequality as sort tie-break: equal values fall through to the name key
		if out[i].Joules != out[j].Joules {
			return out[i].Joules > out[j].Joules
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// Text renders the per-phase aggregation as a table for the CLI drivers.
func (r *EnergyReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %14s %14s\n", "phase", "seconds", "joules")
	for _, p := range r.ByPhase() {
		fmt.Fprintf(&b, "%-24s %14.6f %14.6f\n", p.Phase, p.Seconds, p.Joules)
	}
	fmt.Fprintf(&b, "%-24s %14.6f %14.6f\n", "total", r.TotalSeconds, r.TotalJoules)
	return b.String()
}
