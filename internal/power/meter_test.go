package power

import (
	"math"
	"testing"
	"testing/quick"

	"pasp/internal/units"
)

func TestMeterAccumulate(t *testing.T) {
	p := PentiumM()
	m := NewMeter(p)
	s := p.BaseState()
	if err := m.Accumulate(s, 1, 10); err != nil {
		t.Fatalf("Accumulate: %v", err)
	}
	want := p.NodePower(s, 1).Energy(10)
	if math.Abs(float64(m.Joules()-want)) > 1e-9 {
		t.Errorf("Joules = %g, want %g", m.Joules(), want)
	}
	if m.Seconds() != 10 {
		t.Errorf("Seconds = %g, want 10", m.Seconds())
	}
	if m.Utilization() != 1 {
		t.Errorf("Utilization = %g, want 1", m.Utilization())
	}
}

func TestMeterRejectsNegativeInterval(t *testing.T) {
	m := NewMeter(PentiumM())
	if err := m.Accumulate(PentiumM().BaseState(), 1, -1); err == nil {
		t.Error("Accumulate(-1s) succeeded, want error")
	}
}

func TestMeterUtilizationWeighted(t *testing.T) {
	p := PentiumM()
	m := NewMeter(p)
	s := p.TopState()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.Accumulate(s, 1.0, 1))
	must(m.Accumulate(s, 0.0, 3))
	if got, want := m.Utilization(), 0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("Utilization = %g, want %g", got, want)
	}
}

func TestMeterAddAndReset(t *testing.T) {
	p := PentiumM()
	a, b := NewMeter(p), NewMeter(p)
	s := p.BaseState()
	if err := a.Accumulate(s, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Accumulate(s, 0.5, 4); err != nil {
		t.Fatal(err)
	}
	a.Add(b)
	if a.Seconds() != 6 {
		t.Errorf("after Add, Seconds = %g, want 6", a.Seconds())
	}
	a.Reset()
	if a.Joules() != 0 || a.Seconds() != 0 || a.Utilization() != 0 {
		t.Error("Reset did not clear totals")
	}
}

func TestMeterEmptyUtilization(t *testing.T) {
	if got := NewMeter(PentiumM()).Utilization(); got != 0 {
		t.Errorf("empty meter Utilization = %g, want 0", got)
	}
}

// Property: energy grows monotonically as intervals accumulate, and total
// energy is at least Base power × time.
func TestMeterMonotoneProperty(t *testing.T) {
	p := PentiumM()
	f := func(samples []struct {
		State uint8
		Util  uint8
		Dt    uint16
	}) bool {
		m := NewMeter(p)
		prev := units.Joules(0)
		for _, s := range samples {
			st := p.States[int(s.State)%len(p.States)]
			dt := units.Seconds(s.Dt) / 1000
			if err := m.Accumulate(st, float64(s.Util)/255, dt); err != nil {
				return false
			}
			if m.Joules() < prev {
				return false
			}
			prev = m.Joules()
		}
		return float64(m.Joules()) >= p.Base*float64(m.Seconds())-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
