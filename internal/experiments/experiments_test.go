package experiments

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"pasp/internal/cluster"
	"pasp/internal/core"
	"pasp/internal/dvfs"
	"pasp/internal/machine"
	"pasp/internal/power"
	"pasp/internal/stats"
)

func TestValueGridAccessors(t *testing.T) {
	g := newValueGrid("t", []int{1, 2}, []float64{600, 1400}, "")
	g.V[0][0], g.V[0][1] = 1, 2
	g.V[1][0], g.V[1][1] = 3, 4
	if v, err := g.At(2, 600); err != nil || v != 3 {
		t.Errorf("At = %g, %v", v, err)
	}
	if _, err := g.At(3, 600); err == nil {
		t.Error("missing N accepted")
	}
	if _, err := g.At(1, 700); err == nil {
		t.Error("missing f accepted")
	}
	if g.Max() != 4 || g.Mean() != 2.5 {
		t.Errorf("Max/Mean = %g/%g", g.Max(), g.Mean())
	}
	csv := g.CSV()
	if !strings.Contains(csv, "N,600,1400") || !strings.Contains(csv, "2,3,4") {
		t.Errorf("CSV malformed:\n%s", csv)
	}
	if !strings.Contains(g.String(), "1400") {
		t.Errorf("String missing header:\n%s", g.String())
	}
}

func TestErrorGridRendersPercent(t *testing.T) {
	e := newErrorGrid("errs", []int{2}, []float64{600})
	e.V[0][0] = 0.123
	if !strings.Contains(e.String(), "12.3%") {
		t.Errorf("percent missing:\n%s", e.String())
	}
}

func TestQuickSuiteValid(t *testing.T) {
	s := Quick()
	if err := s.Platform.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Grid.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := s.FT.Validate(4); err != nil {
		t.Fatal(err)
	}
	if err := s.LU.Validate(4); err != nil {
		t.Fatal(err)
	}
	if err := s.EP.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperSuiteValid(t *testing.T) {
	s := Paper()
	if err := s.FT.Validate(16); err != nil {
		t.Fatal(err)
	}
	if err := s.LU.Validate(8); err != nil {
		t.Fatal(err)
	}
}

// E1 and E4 (shape): the Eq. 3 product prediction has large errors on FT,
// the SP parameterization has much smaller ones, and the base-frequency
// column of both is exact by construction.
func TestTables1And3Shapes(t *testing.T) {
	s := Quick()
	camp, err := s.MeasureFT(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t1, err := s.Table1From(camp)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := s.Table3From(camp)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*ErrorGrid{t1, t3} {
		for i, n := range g.Ns {
			if g.V[i][0] > 1e-9 {
				t.Errorf("%s: base column error %g at N=%d, want 0", g.Title, g.V[i][0], n)
			}
		}
	}
	if t1.Max() < 0.10 {
		t.Errorf("Table 1 max error %s too small; product rule should fail badly", stats.Percent(t1.Max()))
	}
	if t3.Max() > t1.Max()/2 {
		t.Errorf("Table 3 max %s not well below Table 1 max %s", stats.Percent(t3.Max()), stats.Percent(t1.Max()))
	}
	if t3.Mean() > 0.10 {
		t.Errorf("Table 3 mean error %s above 10%%", stats.Percent(t3.Mean()))
	}
}

// E5: the LU counters decompose into Table 5's level shares.
func TestTable5Shares(t *testing.T) {
	s := Quick()
	r, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	fr := r.Work.Fractions()
	want := [machine.NumLevels]float64{machine.Reg: 0.442, machine.L1: 0.533, machine.L2: 0.014, machine.Mem: 0.012}
	for l := machine.Reg; l < machine.NumLevels; l++ {
		if fr[l] < want[l]*0.85 || fr[l] > want[l]*1.15 {
			t.Errorf("%v share %.4f, want ≈ %.3f", l, fr[l], want[l])
		}
	}
	out := r.String()
	for _, needle := range []string{"PAPI_TOT_INS", "PAPI_L2_TCM", "ON-chip", "Main Memory"} {
		if !strings.Contains(out, needle) {
			t.Errorf("Table 5 rendering missing %q:\n%s", needle, out)
		}
	}
}

// E6: the measured parameter table has the Table 6 shapes.
func TestTable6Shapes(t *testing.T) {
	s := Quick()
	r, err := s.Table6()
	if err != nil {
		t.Fatal(err)
	}
	// Blended ON-chip CPI is frequency-invariant and near 2.19 cycles.
	for i, cpi := range r.CPIOn {
		if !stats.AlmostEqual(cpi, 2.19, 0.08) {
			t.Errorf("CPIon at %g MHz = %.3f, want ≈ 2.19", r.MHz[i], cpi)
		}
	}
	// Memory row: 140 ns at the 600 MHz gear, 110 ns at 1400.
	if !stats.AlmostEqual(float64(r.LevelNanos[0][machine.Mem]), 140, 0.05) {
		t.Errorf("mem ns at base = %g, want ≈ 140", float64(r.LevelNanos[0][machine.Mem]))
	}
	last := len(r.MHz) - 1
	if !stats.AlmostEqual(float64(r.LevelNanos[last][machine.Mem]), 110, 0.05) {
		t.Errorf("mem ns at top = %g, want ≈ 110", float64(r.LevelNanos[last][machine.Mem]))
	}
	// Communication: 310 doubles cost more than 155, and more at 600 MHz
	// than at the top gear.
	for i := range r.MHz {
		if r.CommLarge[i] <= r.CommSmall[i] {
			t.Errorf("at %g MHz large message %g µs not above small %g µs", r.MHz[i], r.CommLarge[i], r.CommSmall[i])
		}
	}
	if r.CommLarge[0] <= r.CommLarge[last] {
		t.Errorf("large-message time at 600 MHz (%g µs) not above top gear (%g µs)", r.CommLarge[0], r.CommLarge[last])
	}
	if !strings.Contains(r.String(), "310 doubles") {
		t.Errorf("rendering missing comm row:\n%s", r.String())
	}
}

// E7: SP is exact at the fitted slices; FP errors are nonzero at N=1
// (memory-overlap, the paper's footnote 1) and bounded overall.
func TestTable7Shapes(t *testing.T) {
	s := Quick()
	r, err := s.Table7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	spN1, err := r.SP.At(1, 600)
	if err != nil {
		t.Fatal(err)
	}
	if spN1 > 1e-9 {
		t.Errorf("SP error at fitted cell (1,600) = %g, want 0", spN1)
	}
	fpN1, err := r.FP.At(1, 600)
	if err != nil {
		t.Fatal(err)
	}
	if fpN1 <= 0 {
		t.Error("FP error at N=1 is zero; the additive-composition error is lost")
	}
	if r.FP.Max() > 0.30 || r.SP.Max() > 0.30 {
		t.Errorf("Table 7 errors too large: FP max %s, SP max %s", stats.Percent(r.FP.Max()), stats.Percent(r.SP.Max()))
	}
}

// E10: the EP observations of §4.2.
func TestFigure1EPObservations(t *testing.T) {
	s := Quick()
	fig, err := s.Figure1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mustAt := func(g *ValueGrid, n int, f float64) float64 {
		t.Helper()
		v, err := g.At(n, f)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// (1, 2) time falls with N and with f.
	if !(mustAt(fig.Time, 4, 600) < mustAt(fig.Time, 2, 600) && mustAt(fig.Time, 2, 600) < mustAt(fig.Time, 1, 600)) {
		t.Error("EP time not decreasing with N")
	}
	if !(mustAt(fig.Time, 1, 1400) < mustAt(fig.Time, 1, 600)) {
		t.Error("EP time not decreasing with f")
	}
	// (3) speedup at base frequency ≈ N.
	if s4 := mustAt(fig.Speedup, 4, 600); !stats.AlmostEqual(s4, 4, 0.02) {
		t.Errorf("EP speedup at (4,600) = %g, want ≈ 4", s4)
	}
	// (4) frequency speedup ≈ f/f0.
	if sf := mustAt(fig.Speedup, 1, 1400); !stats.AlmostEqual(sf, 1400.0/600, 0.02) {
		t.Errorf("EP speedup at (1,1400) = %g, want ≈ 2.33", sf)
	}
	// (5) combined ≈ product (within the paper's 2.3%).
	prod := mustAt(fig.Speedup, 4, 600) * mustAt(fig.Speedup, 1, 1400)
	if comb := mustAt(fig.Speedup, 4, 1400); !stats.AlmostEqual(comb, prod, 0.025) {
		t.Errorf("EP combined speedup %g vs product %g beyond 2.5%%", comb, prod)
	}
}

// E11: the FT observations of §4.3.
func TestFigure2FTObservations(t *testing.T) {
	s := Quick()
	fig, err := s.Figure2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mustAt := func(g *ValueGrid, n int, f float64) float64 {
		t.Helper()
		v, err := g.At(n, f)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// (3) the 1→2 slowdown at the base frequency.
	if !(mustAt(fig.Time, 2, 600) > mustAt(fig.Time, 1, 600)) {
		t.Error("FT did not slow down from 1 to 2 processors")
	}
	if sp := mustAt(fig.Speedup, 2, 600); sp >= 1 {
		t.Errorf("FT speedup at (2,600) = %g, want < 1", sp)
	}
	// (4) sub-linear frequency speedup on one processor.
	sf := mustAt(fig.Speedup, 1, 1400)
	if sf <= 1.2 || sf >= 1400.0/600 {
		t.Errorf("FT frequency speedup %g not sub-linear in (1.2, 2.33)", sf)
	}
	// (5) the frequency benefit diminishes as N grows.
	gain1 := mustAt(fig.Speedup, 1, 1400) / mustAt(fig.Speedup, 1, 600)
	gain4 := mustAt(fig.Speedup, 4, 1400) / mustAt(fig.Speedup, 4, 600)
	if gain4 >= gain1 {
		t.Errorf("frequency gain did not diminish: %g at N=1 vs %g at N=4", gain1, gain4)
	}
}

// E8: the abstract's claim — EDP predicted within single-digit percent.
func TestEDPPredictionAccuracy(t *testing.T) {
	s := Quick()
	r, err := s.EDPForFT(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Time.Max() > 0.10 {
		t.Errorf("SP time error max %s above 10%%", stats.Percent(r.Time.Max()))
	}
	if r.EDP.Max() > 0.15 {
		t.Errorf("EDP error max %s above 15%%", stats.Percent(r.EDP.Max()))
	}
}

func TestSweetSpotRecommendation(t *testing.T) {
	s := Quick()
	camp, err := s.MeasureFT(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	measured, predicted, err := s.SweetSpotFrom(camp)
	if err != nil {
		t.Fatal(err)
	}
	if measured.N < 1 || predicted.N < 1 {
		t.Fatalf("degenerate sweet spots: %+v %+v", measured, predicted)
	}
	// The model's recommendation must be near-optimal when executed: its
	// measured EDP within 20% of the true optimum.
	recEDP, err := camp.Meas.EDP(predicted.N, predicted.MHz)
	if err != nil {
		t.Fatal(err)
	}
	if recEDP > measured.EDP()*1.2 {
		t.Errorf("model recommendation %v has EDP %g, optimum %v has %g",
			predicted.Config, recEDP, measured.Config, measured.EDP())
	}
}

func TestTable2Rendering(t *testing.T) {
	out := Quick().Table2()
	for _, needle := range []string{"1400MHz", "1.484V", "600MHz", "0.956V"} {
		if !strings.Contains(out, needle) {
			t.Errorf("Table 2 missing %q:\n%s", needle, out)
		}
	}
}

func TestCampaignCellLookup(t *testing.T) {
	s := Quick()
	camp, err := s.MeasureEP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := camp.Cell(1, 600); err != nil {
		t.Errorf("cell lookup failed: %v", err)
	}
	if _, err := camp.Cell(99, 600); err == nil {
		t.Error("missing cell accepted")
	}
}

// Extension kernels: every campaign must produce a sane speedup surface.
func TestExtensionKernelCampaigns(t *testing.T) {
	s := Quick()
	for _, tc := range []struct {
		name    string
		measure func(context.Context) (*Campaign, error)
	}{
		{"CG", s.MeasureCG},
		{"MG", s.MeasureMG},
		{"IS", s.MeasureIS},
	} {
		camp, err := tc.measure(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		base, err := camp.Meas.Speedup(1, 600)
		if err != nil || base != 1 {
			t.Errorf("%s: base speedup %g, %v", tc.name, base, err)
		}
		s4, err := camp.Meas.Speedup(4, 1400)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if s4 <= 0 || s4 > 4*1400.0/600 {
			t.Errorf("%s: combined speedup %g outside (0, N·f/f0]", tc.name, s4)
		}
	}
}

// SP generalizes across the whole suite: fitting from the standard slices
// must predict the held-out cells of every kernel within a loose band.
func TestSPGeneralizesAcrossKernels(t *testing.T) {
	s := Quick()
	for _, tc := range []struct {
		name    string
		measure func(context.Context) (*Campaign, error)
		maxErr  float64
	}{
		{"EP", s.MeasureEP, 0.01},
		{"FT", s.MeasureFT, 0.10},
		{"CG", s.MeasureCG, 0.10},
		{"MG", s.MeasureMG, 0.15}, // agglomerated coarse levels violate Assumption 1 hardest
		{"IS", s.MeasureIS, 0.15},
	} {
		camp, err := tc.measure(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sp, err := core.FitSP(camp.Meas)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		grid, err := errorGridFrom(tc.name, s.Grid.Ns, s.Grid.MHz, sp.PredictTime, timeOf(camp.Meas))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if grid.Max() > tc.maxErr {
			t.Errorf("%s: SP max time error %s above %s", tc.name,
				stats.Percent(grid.Max()), stats.Percent(tc.maxErr))
		}
	}
}

// The segment-granularity model (paper §7): its two-column fit predicts
// held-out frequencies within a modest band (it cannot see the bus-speed
// drop, unlike SP which measures every frequency), and — its actual payoff
// — it classifies each phase by frequency sensitivity.
func TestSegmentModelOnFT(t *testing.T) {
	s := Quick()
	camp, err := s.MeasureFT(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.SegmentVsSP(camp)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seg.Max() > 0.10 {
		t.Errorf("segment model max error %s above 10%%", stats.Percent(r.Seg.Max()))
	}
	// The alltoall phase must show partial frequency sensitivity: above
	// zero (endpoint CPU cost) but well below the compute phases.
	alltoall, ok := r.Sensitivity["ft-alltoall"]
	if !ok {
		t.Fatalf("no alltoall sensitivity: %v", r.Sensitivity)
	}
	fft, ok := r.Sensitivity["ft-fft-x"]
	if !ok {
		t.Fatalf("no fft sensitivity: %v", r.Sensitivity)
	}
	if alltoall <= 0.001 || alltoall >= fft {
		t.Errorf("alltoall sensitivity %.3f should be in (0, %.3f)", alltoall, fft)
	}
}

// §7's vision end to end: the segment model automatically discovers the
// communication-bound phases and its derived DVFS policy saves energy with
// a bounded slowdown, without any hand-written phase list.
func TestModelDrivenDVFS(t *testing.T) {
	s := Quick()
	camp, err := s.MeasureFT(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pol, phases, err := s.ModelDrivenDVFS(camp)
	if err != nil {
		t.Fatal(err)
	}
	if !pol.CommPhases["ft-alltoall"] {
		t.Errorf("alltoall not classified as frequency-insensitive: %v", phases)
	}
	for _, compute := range []string{"ft-fft-x", "ft-fft-y", "ft-fft-z", "ft-evolve"} {
		if pol.CommPhases[compute] {
			t.Errorf("compute phase %q misclassified for the low gear", compute)
		}
	}
	w, err := s.Platform.World(4, 1400)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := dvfs.Compare(w, pol, s.RunFT)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.EnergySavings() < 0.05 {
		t.Errorf("model-driven policy saves only %.1f%% energy", cmp.EnergySavings()*100)
	}
	if cmp.Slowdown() > 0.10 {
		t.Errorf("model-driven policy slows down %.1f%%", cmp.Slowdown()*100)
	}
}

func TestPhaseTimesCoverAllCells(t *testing.T) {
	s := Quick()
	camp, err := s.MeasureFT(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pt := PhaseTimes(camp)
	if len(pt) < 4 {
		t.Fatalf("only %d phases extracted", len(pt))
	}
	cells := len(s.Grid.Ns) * len(s.Grid.MHz)
	for phase, times := range pt {
		if len(times) != cells {
			t.Errorf("phase %q has %d cells, want %d", phase, len(times), cells)
		}
	}
}

// The EDP-optimal multi-gear schedule must pick sensible endpoints (low
// gear for the alltoall, top gear for the FFTs) and beat the all-top
// baseline's EDP when executed.
func TestEDPOptimalGears(t *testing.T) {
	s := Quick()
	camp, err := s.MeasureFT(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pol, err := s.EDPOptimalGears(camp)
	if err != nil {
		t.Fatal(err)
	}
	if got := pol.Phases["ft-alltoall"]; got != s.Platform.Prof.BaseState() {
		t.Errorf("alltoall gear %v, want bottom", got)
	}
	if got := pol.Phases["ft-fft-x"]; got != s.Platform.Prof.TopState() {
		t.Errorf("fft-x gear %v, want top", got)
	}
	w, err := s.Platform.World(4, 1400)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := dvfs.CompareGears(w, pol, s.RunFT)
	if err != nil {
		t.Fatal(err)
	}
	if sched, base := power.EDP(cmp.ScheduledJoules, cmp.ScheduledSec), power.EDP(cmp.BaselineJoules, cmp.BaselineSec); sched >= base {
		t.Errorf("optimized EDP %g not below baseline %g", sched, base)
	}
}

// Fixed-time (Gustafson) scaling: EP reaches the clean N·f/f0 product, and
// MG — whose ghost faces grow sublinearly with the volume — recovers
// scalability its fixed-size surface loses.
func TestScaledSpeedup(t *testing.T) {
	s := Quick()
	ep, err := s.ScaledEP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ep.Scaled.At(4, 1400)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * 1400.0 / 600
	if !stats.AlmostEqual(got, want, 0.02) {
		t.Errorf("EP scaled speedup at (4,1400) = %g, want ≈ %g", got, want)
	}

	mg, err := s.ScaledMG(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	maxN := s.Grid.Ns[len(s.Grid.Ns)-1]
	scaled, err := mg.Scaled.At(maxN, 600)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := mg.Fixed.At(maxN, 600)
	if err != nil {
		t.Fatal(err)
	}
	if scaled <= fixed {
		t.Errorf("MG scaled speedup %g not above fixed-size %g", scaled, fixed)
	}
}

// The footnote-3 experiment: extrapolating the overhead model to an
// unmeasured cluster size works for LU (smooth overhead growth) and is
// expected to degrade for FT (the contention knee) — both directions are
// part of the finding.
func TestExtrapolation(t *testing.T) {
	s := Quick()
	s.Grid = cluster.Grid{Ns: []int{1, 2, 4, 8, 16}, MHz: []float64{600, 1400}}
	s.LUGrid = cluster.Grid{Ns: []int{1, 2, 4, 8}, MHz: []float64{600, 1400}}
	lu, err := s.ExtrapolateLU(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := lu.FitNs; len(got) != 3 || got[2] != 8 {
		t.Errorf("LU fit Ns = %v, want [2 4 8]", got)
	}
	if lu.MaxErr() > 0.25 {
		t.Errorf("LU extrapolation max error %s; smooth overhead should extrapolate", stats.Percent(lu.MaxErr()))
	}
	ft, err := s.ExtrapolateFT(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// FT's knee makes blind extrapolation markedly worse than LU's.
	if ft.MaxErr() < lu.MaxErr() {
		t.Errorf("FT extrapolation (%s) unexpectedly better than LU (%s); the contention knee is lost",
			stats.Percent(ft.MaxErr()), stats.Percent(lu.MaxErr()))
	}
}

func TestEDPForEPNearExact(t *testing.T) {
	s := Quick()
	r, err := s.EDPForEP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// EP satisfies both SP assumptions almost exactly, so its EDP
	// prediction is near-perfect.
	if r.EDP.Max() > 0.02 {
		t.Errorf("EP EDP max error %s, want ≈ 0", stats.Percent(r.EDP.Max()))
	}
}

func TestSweetSpotFTDirect(t *testing.T) {
	s := Quick()
	measured, predicted, err := s.SweetSpotFT(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if measured.N < 1 || predicted.N < 1 {
		t.Error("degenerate sweet spots")
	}
}

func TestEDPAndTablesDirectEntryPoints(t *testing.T) {
	// The convenience wrappers that run their own campaigns.
	s := Quick()
	if _, err := s.Table1(context.Background()); err != nil {
		t.Errorf("Table1: %v", err)
	}
	if _, err := s.Table3(context.Background()); err != nil {
		t.Errorf("Table3: %v", err)
	}
	if _, err := s.EDPForFT(context.Background()); err != nil {
		t.Errorf("EDPForFT: %v", err)
	}
	if _, err := s.Figure2(context.Background()); err != nil {
		t.Errorf("Figure2: %v", err)
	}
	if _, err := s.ScaledEP(context.Background()); err != nil {
		t.Errorf("ScaledEP: %v", err)
	}
}

func TestKernelRegistry(t *testing.T) {
	s := Quick()
	names := s.KernelNames()
	if len(names) != 7 {
		t.Fatalf("registry has %d kernels: %v", len(names), names)
	}
	if _, err := s.Kernel("nope"); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := SuiteByName("nope"); err == nil {
		t.Error("unknown suite accepted")
	}
	for _, name := range names {
		res, err := s.RunKernelOnce(name, 2, 600)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Seconds <= 0 || res.Joules <= 0 {
			t.Errorf("%s: degenerate result %g s / %g J", name, res.Seconds, res.Joules)
		}
	}
}

// The paper's remark that the fine-grain technique "applied to FT with
// error rates similar to those in Table 3": FP fitted from FT's counters,
// the lmbench latencies and its profiled alltoall traffic predicts the
// grid within a similar band.
func TestFPAppliedToFT(t *testing.T) {
	s := Quick()
	camp, err := s.MeasureFT(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s.FitFP(camp, s.Grid)
	if err != nil {
		t.Fatal(err)
	}
	base, err := camp.Meas.BaseMHz()
	if err != nil {
		t.Fatal(err)
	}
	t1, err := camp.Meas.Time(1, base)
	if err != nil {
		t.Fatal(err)
	}
	predict := func(n int, f float64) (float64, error) {
		tp, err := fp.PredictTime(n, f)
		if err != nil {
			return 0, err
		}
		if tp <= 0 {
			return 0, fmt.Errorf("FP predicted non-positive time at N=%d f=%g", n, f)
		}
		return t1 / float64(tp), nil
	}
	grid, err := errorGridFrom("FT FP", s.Grid.Ns, s.Grid.MHz, predict, speedupOf(camp.Meas))
	if err != nil {
		t.Fatal(err)
	}
	// FT's alltoall volume per rank varies with N while the ping-pong
	// prices a fixed message size, so FP's FT errors run higher than LU's —
	// but they must stay far below the Table 1 product-rule failures.
	if grid.Max() > 0.35 {
		t.Errorf("FT FP max error %s; parameterization broke down", stats.Percent(grid.Max()))
	}
}

// Isoefficiency (Grama et al., related work [18]): holding CG's parallel
// efficiency constant requires growing the workload with the processor
// count; the required multiplier is finite because CG's overheads are
// workload-independent.
func TestIsoefficiencyCG(t *testing.T) {
	s := Quick()
	res, err := s.IsoefficiencyCG([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Target <= 0 || res.Target > 1 {
		t.Fatalf("target efficiency %g out of range", res.Target)
	}
	if res.Multiplier[0] != 1 {
		t.Errorf("base multiplier %g, want 1", res.Multiplier[0])
	}
	if res.Multiplier[1] < 1 {
		t.Errorf("multiplier at N=4 is %g; efficiency cannot be held with less work", res.Multiplier[1])
	}
	if res.Multiplier[1] >= maxIsoMult {
		t.Errorf("multiplier hit the cap; target unreachable")
	}
}
