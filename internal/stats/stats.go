// Package stats provides the small numeric helpers the experiment harness
// uses to summarize simulated measurements and model predictions: relative
// errors, means, extrema, and linear least squares for parameter fitting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// RelError returns |predicted−measured| / |measured|, the error metric used
// throughout the paper's Tables 1, 3 and 7. It returns +Inf when measured is
// zero and predicted is not, and 0 when both are zero.
func RelError(predicted, measured float64) float64 {
	if measured == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-measured) / math.Abs(measured)
}

// SignedRelError returns (predicted−measured)/|measured|, preserving the
// sign so over- and under-prediction can be distinguished.
func SignedRelError(predicted, measured float64) float64 {
	if measured == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (predicted - measured) / math.Abs(measured)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive; it
// returns an error otherwise so a bad benchmark result cannot silently skew
// a summary.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: geomean of empty slice")
	}
	sum := 0.0
	for i, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean requires positive values, got %g at index %d", x, i)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Max returns the maximum of xs, or −Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs, or 0 for an empty slice. The input is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Stddev returns the sample standard deviation of xs, or 0 when fewer than
// two values are present.
func Stddev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mean := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// LinearFit fits y = a + b·x by ordinary least squares and returns (a, b).
// It is used to extract latency/bandwidth pairs from message-size sweeps in
// the mpptest substrate. It returns an error when fewer than two distinct x
// values are supplied.
func LinearFit(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, fmt.Errorf("stats: LinearFit length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, 0, fmt.Errorf("stats: LinearFit needs ≥ 2 points, got %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, 0, fmt.Errorf("stats: LinearFit degenerate: all x equal")
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b, nil
}

// Percent formats a fraction as a percentage string with one decimal, e.g.
// 0.0213 → "2.1%". The paper's error tables are printed this way.
func Percent(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

// AlmostEqual reports whether a and b agree to within tol relative error
// (absolute error for values near zero). It is the comparison helper the
// test suites use for floating-point assertions.
func AlmostEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// LeastSquares solves the overdetermined system rows·β ≈ y by normal
// equations with Gaussian elimination (partial pivoting). Each row holds
// the basis-function values of one observation. It returns an error when
// there are fewer observations than coefficients or the system is
// singular.
func LeastSquares(rows [][]float64, y []float64) ([]float64, error) {
	m := len(rows)
	if m == 0 || m != len(y) {
		return nil, fmt.Errorf("stats: LeastSquares needs matching rows and targets, got %d/%d", m, len(y))
	}
	k := len(rows[0])
	if k == 0 || m < k {
		return nil, fmt.Errorf("stats: LeastSquares has %d observations for %d coefficients", m, k)
	}
	// Normal equations: (XᵀX)β = Xᵀy.
	a := make([][]float64, k)
	b := make([]float64, k)
	for i := 0; i < k; i++ {
		a[i] = make([]float64, k)
	}
	for r, row := range rows {
		if len(row) != k {
			return nil, fmt.Errorf("stats: LeastSquares row %d has %d values, want %d", r, len(row), k)
		}
		for i := 0; i < k; i++ {
			b[i] += row[i] * y[r]
			for j := 0; j < k; j++ {
				a[i][j] += row[i] * row[j]
			}
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < k; col++ {
		piv := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return nil, fmt.Errorf("stats: LeastSquares singular system at column %d", col)
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < k; r++ {
			f := a[r][col] / a[col][col]
			for j := col; j < k; j++ {
				a[r][j] -= f * a[col][j]
			}
			b[r] -= f * b[col]
		}
	}
	beta := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < k; j++ {
			s -= a[i][j] * beta[j]
		}
		beta[i] = s / a[i][i]
	}
	return beta, nil
}
