package npb

import (
	"testing"

	"pasp/internal/papi"
)

func TestLUValidate(t *testing.T) {
	if err := (LU{N: 12, Iters: 5}).Validate(4); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []struct {
		name string
		l    LU
		n    int
	}{
		{"tiny grid", LU{N: 2, Iters: 5}, 1},
		{"zero iters", LU{N: 12}, 1},
		{"omega out of range", LU{N: 12, Iters: 5, Omega: 2.5}, 1},
		{"negative ncomp", LU{N: 12, Iters: 5, Ncomp: -1}, 1},
	}
	for _, tc := range bad {
		if err := tc.l.Validate(tc.n); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestDecompose2D(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 8: {2, 4}, 16: {4, 4}, 6: {2, 3}, 12: {3, 4},
	}
	for n, want := range cases {
		px, py := Decompose2D(n)
		if px != want[0] || py != want[1] {
			t.Errorf("Decompose2D(%d) = (%d,%d), want %v", n, px, py, want)
		}
		if px*py != n {
			t.Errorf("Decompose2D(%d) does not partition", n)
		}
	}
}

func TestBlockRangePartitions(t *testing.T) {
	for _, n := range []int{12, 62, 17} {
		for _, p := range []int{1, 2, 3, 4} {
			prev := 1
			total := 0
			for b := 0; b < p; b++ {
				lo, hi := blockRange(n, p, b)
				if lo != prev {
					t.Errorf("n=%d p=%d b=%d: lo=%d, want %d", n, p, b, lo, prev)
				}
				if hi <= lo {
					t.Errorf("n=%d p=%d b=%d: empty block", n, p, b)
				}
				total += hi - lo
				prev = hi
			}
			if total != n {
				t.Errorf("n=%d p=%d: blocks cover %d points", n, p, total)
			}
		}
	}
}

func TestLUSerialConvergence(t *testing.T) {
	res, _, err := LU{N: 12, Iters: 30}.Run(npbWorld(1, 600))
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual0 <= 0 {
		t.Fatal("zero initial residual")
	}
	if res.Residual > 0.01*res.Residual0 {
		t.Errorf("SSOR did not converge: %g → %g", res.Residual0, res.Residual)
	}
	// The exact solution has unit scale (max 1.0), so a converged run's RMS
	// error is small in absolute terms; it lags the residual by the
	// operator's condition number.
	if res.SolutionErr > 0.01 {
		t.Errorf("solution error %g too large", res.SolutionErr)
	}
}

func TestLUParallelConvergesLikeSerial(t *testing.T) {
	cfg := LU{N: 12, Iters: 30}
	ser, _, err := cfg.Run(npbWorld(1, 600))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 8} {
		par, _, err := cfg.Run(npbWorld(n, 600))
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		// Block-wavefront ordering differs from lexicographic, so results
		// are not bitwise equal (as in NPB); but both converge to the same
		// exact discrete solution.
		if par.Residual > 0.01*par.Residual0 {
			t.Errorf("N=%d did not converge: %g → %g", n, par.Residual0, par.Residual)
		}
		ratio := par.SolutionErr / ser.SolutionErr
		if ratio > 5 || ratio < 0.2 {
			t.Errorf("N=%d solution error %g far from serial %g", n, par.SolutionErr, ser.SolutionErr)
		}
	}
}

func TestLUUnevenGrid(t *testing.T) {
	// 13 interior points over a 2×2 rank grid forces uneven blocks.
	res, _, err := LU{N: 13, Iters: 30}.Run(npbWorld(4, 600))
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 0.05*res.Residual0 {
		t.Errorf("uneven decomposition broke convergence: %g → %g", res.Residual0, res.Residual)
	}
}

func TestLUWorkloadMatchesTable5Proportions(t *testing.T) {
	_, r, err := LU{N: 12, Iters: 10}.Run(npbWorld(1, 600))
	if err != nil {
		t.Fatal(err)
	}
	w, err := r.Counters.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	fr := w.Fractions()
	// Table 5: 145/175/4.71/3.97 ×10⁹ → 44.2%, 53.3%, 1.4%, 1.2% of total.
	want := []float64{0.442, 0.533, 0.014, 0.012}
	for l, f := range fr {
		if f < want[l]*0.9 || f > want[l]*1.1 {
			t.Errorf("level %d fraction %.4f, want ≈ %.3f (Table 5)", l, f, want[l])
		}
	}
}

func TestLUMessageProfile(t *testing.T) {
	// At N=2 (1×2 grid) with Ncomp=5 the wavefront messages carry
	// lx·5 = N·5 doubles — the paper's 310-double observation for a
	// 62-point grid.
	_, r, err := LU{N: 12, Iters: 4}.Run(npbWorld(2, 600))
	if err != nil {
		t.Fatal(err)
	}
	for rank, s := range r.PerRank {
		if s.Msgs == 0 || s.MsgBytes == 0 {
			t.Errorf("rank %d has no message profile", rank)
		}
	}
	// At N=2 each rank has one neighbour and sends a wavefront row per
	// plane in one sweep direction: ≥ Iters·N messages.
	if r.PerRank[0].Msgs < 4*12 {
		t.Errorf("rank 0 sent %d messages, want ≥ %d", r.PerRank[0].Msgs, 4*12)
	}
}

func TestLUPipelineLimitsSpeedup(t *testing.T) {
	// LU's wavefront pipeline and fine-grained messages keep its speedup
	// clearly sublinear, unlike EP.
	cfg := LU{N: 24, Iters: 6}
	_, r1, err := cfg.Run(npbWorld(1, 600))
	if err != nil {
		t.Fatal(err)
	}
	_, r8, err := cfg.Run(npbWorld(8, 600))
	if err != nil {
		t.Fatal(err)
	}
	s := r1.Seconds / r8.Seconds
	if s >= 7.5 {
		t.Errorf("LU speedup at N=8 is %g; wavefront overhead lost", s)
	}
	if s < 1 {
		t.Errorf("LU slowdown at N=8: speedup %g", s)
	}
}

func TestLUOffChipSensitiveToBusDrop(t *testing.T) {
	cfg := LU{N: 12, Iters: 5}
	slow := npbWorld(1, 600)
	fast := npbWorld(1, 800)
	_, r600, err := cfg.Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	_, r800, err := cfg.Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	// Both run in the slow-bus regime; scaling 600→800 must be sublinear
	// because OFF-chip time is flat.
	ratio := r600.Seconds / r800.Seconds
	if ratio >= 800.0/600.0 {
		t.Errorf("LU 600→800 speedup %g not sublinear", ratio)
	}
}

func TestLUCountersConsistentAcrossRanks(t *testing.T) {
	// SPMD: per-rank instruction counts should be within a few percent of
	// each other (the paper's footnote 6 observes within 2%).
	_, r, err := LU{N: 16, Iters: 5}.Run(npbWorld(4, 600))
	if err != nil {
		t.Fatal(err)
	}
	first := r.RankCounters[0].Get(papi.TotIns)
	for i, c := range r.RankCounters {
		got := c.Get(papi.TotIns)
		if got < 0.9*first || got > 1.1*first {
			t.Errorf("rank %d TOT_INS %g deviates from rank 0 %g", i, got, first)
		}
	}
}

// With residual tracking, SSOR's convergence history is monotone: every
// iteration reduces the RMS residual.
func TestLUResidualHistoryMonotone(t *testing.T) {
	res, _, err := LU{N: 12, Iters: 12, TrackResiduals: true}.Run(npbWorld(4, 600))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 12 {
		t.Fatalf("history has %d entries, want 12", len(res.History))
	}
	prev := res.Residual0
	for i, r := range res.History {
		if r >= prev {
			t.Errorf("iteration %d: residual %g did not decrease from %g", i, r, prev)
		}
		prev = r
	}
	if res.History[len(res.History)-1] != res.Residual {
		t.Error("final history entry disagrees with Residual")
	}
}
