package power_test

import (
	"fmt"

	"pasp/internal/power"
)

// The Pentium M's five operating points (the paper's Table 2) and the CMOS
// power law: dropping from the top gear to the bottom one costs 2.33× in
// peak throughput but saves far more in processor power.
func ExampleProfile_Dynamic() {
	p := power.PentiumM()
	top, base := p.TopState(), p.BaseState()
	fmt.Printf("top:  %v  %.1f W dynamic\n", top, p.Dynamic(top))
	fmt.Printf("base: %v   %.1f W dynamic\n", base, p.Dynamic(base))
	fmt.Printf("throughput ratio %.2f, power ratio %.2f\n",
		top.Freq/base.Freq, p.Dynamic(top)/p.Dynamic(base))
	// Output:
	// top:  1400MHz@1.484V  21.0 W dynamic
	// base: 600MHz@0.956V   3.7 W dynamic
	// throughput ratio 2.33, power ratio 5.62
}

// An energy meter integrates node power over a run's intervals.
func ExampleMeter() {
	p := power.PentiumM()
	m := power.NewMeter(p)
	_ = m.Accumulate(p.TopState(), 1.0, 10) // 10 s computing flat out
	_ = m.Accumulate(p.BaseState(), 0.2, 5) // 5 s mostly waiting at low gear
	fmt.Printf("%.0f J over %.0f s (mean utilization %.2f)\n",
		m.Joules(), m.Seconds(), m.Utilization())
	// Output:
	// 517 J over 15 s (mean utilization 0.73)
}
