package mpi

import (
	"fmt"

	"pasp/internal/faults"
	"pasp/internal/machine"
	"pasp/internal/obs"
	"pasp/internal/papi"
	"pasp/internal/power"
	"pasp/internal/trace"
	"pasp/internal/units"
)

// Ctx is one rank's handle on the job: its identity, virtual clock,
// counters, energy meter and trace. All methods must be called from the
// rank's own goroutine.
type Ctx struct {
	rt   *runtime
	rank int

	// ev is the rank's event-engine scheduling state; nil under the
	// goroutine engine. Communication primitives branch on it to pick the
	// blocking mechanism — all timing arithmetic is engine-independent.
	ev *evRank

	// rec is the rank's operation tape when the world carries a Recording;
	// nil otherwise, the same nil-pointer hot-path guard as faults and obs.
	rec *rankTape

	state power.PState

	clock       float64
	egressFree  float64
	ingressBusy float64

	computeSec float64
	commSec    float64
	faultSec   float64
	retries    int

	msgs     int
	msgBytes int

	// faults is the rank's chaos injector; nil when the world's fault
	// config is disabled, which is the hot-path guard: a fault-free run
	// performs no draw, no extra event and no arithmetic change.
	faults *faults.Rank

	// obs is the rank's phase-span log and msgHist the shared message-size
	// histogram; both nil when the world carries no recorder, the same
	// nil-pointer hot-path guard as faults.
	obs     *obs.RankLog
	msgHist *obs.Histogram

	// comm is the world's protocol-event recorder; nil disables recording
	// with the same nil-pointer hot-path guard as obs.
	comm *trace.CommRecorder

	// gearSwitches counts actual P-state changes for the observability
	// metrics; a plain increment on the rare SetPState path.
	gearSwitches int

	counters papi.Counters
	meter    *power.Meter
	log      trace.Log

	phase string

	// bufCache recycles payload buffers between Free calls and later
	// snapshot copies. It is touched only from the rank's own goroutine;
	// buffers migrate between ranks through the mailbox channels, whose
	// send/receive pairs provide the ownership hand-off (and the
	// happens-before edge the race detector checks).
	bufCache [][]float64

	// collFree / collFreeParts hold this rank's deposit from its previous
	// collective epoch, reclaimed into bufCache once the next epoch's
	// synchronization proves every reader is done with it (see
	// Ctx.collective). Only deposits whose snapshot references never escape
	// the collective call are parked here; Gather and Scatter hand deposit
	// slices to callers, so theirs are never recycled.
	collFree      []float64
	collFreeParts [][]float64

	// done is the rank's reusable rendezvous-completion channel. A sender
	// has at most one rendezvous in flight, so one buffered slot suffices
	// for the whole run instead of one channel per large message.
	done chan float64

	// ovFreq/ovBytes/ovSecs/ovValid memoize simnet.Config.CPUOverhead for
	// the handful of distinct message sizes a kernel uses, keyed by the
	// current frequency. See cpuOverhead.
	ovFreq  units.Hertz
	ovBytes [overheadSlots]int
	ovSecs  [overheadSlots]float64
	ovValid [overheadSlots]bool
}

// overheadSlots sizes the per-rank CPU-overhead memo. A direct-mapped cache
// this small covers the working set: a kernel phase cycles through only a
// few message sizes (face bytes, column bytes, reduction words).
const overheadSlots = 8

// cpuOverhead returns the per-message CPU cost of a payload of the given
// size at the rank's current frequency, memoized per (frequency, bytes).
// The cached value is the result of the exact same Config.CPUOverhead call,
// so timing stays bit-identical to the unmemoized path.
//
//palint:hotpath
func (c *Ctx) cpuOverhead(bytes int) float64 {
	if c.ovFreq != c.state.Freq { //palint:ignore floateq -- exact-key cache invalidation, not a tolerance comparison
		c.ovFreq = c.state.Freq
		c.ovValid = [overheadSlots]bool{}
	}
	slot := (bytes ^ bytes>>6 ^ bytes>>12) & (overheadSlots - 1)
	if c.ovValid[slot] && c.ovBytes[slot] == bytes {
		return c.ovSecs[slot]
	}
	o := c.rt.w.Net.CPUOverhead(bytes, c.state.Freq)
	c.ovBytes[slot], c.ovSecs[slot], c.ovValid[slot] = bytes, o, true
	return o
}

// maxCachedBuffers bounds the per-rank buffer cache so a kernel that frees
// many odd-sized buffers cannot pin unbounded memory. Sized to cover an
// Alltoall epoch at the platform's 16 ranks: n deposit parts plus n output
// copies cycle through the cache in alternation, so 2×16 keeps the transpose
// allocation-free in steady state.
const maxCachedBuffers = 32

// Free returns a payload buffer to the rank's buffer cache for reuse by a
// later Send or collective copy. Only buffers the caller owns may be freed:
// a slice returned by Recv, SendRecv, Alltoall or Allgather after its
// contents have been copied out or fully consumed. The caller must not
// retain or read the slice after freeing it. Freeing is purely an
// optimization — dropping the slice for the garbage collector is always
// correct.
//
//palint:hotpath
func (c *Ctx) Free(buf []float64) {
	if cap(buf) == 0 || len(c.bufCache) >= maxCachedBuffers {
		return
	}
	c.bufCache = append(c.bufCache, buf) //palint:ignore hotalloc -- cache growth is bounded by maxCachedBuffers, then Free becomes a no-op
}

// snapshotPayload copies data into a caller-owned buffer, reusing a freed
// one when a large enough buffer is cached. The copy preserves the eager
// snapshot-at-send semantics: the sender may overwrite data immediately
// after Send returns.
//
//palint:hotpath
func (c *Ctx) snapshotPayload(data []float64) []float64 {
	if len(data) == 0 {
		return nil // matches append([]float64(nil), data...) exactly
	}
	for i := len(c.bufCache) - 1; i >= 0; i-- {
		if b := c.bufCache[i]; cap(b) >= len(data) {
			last := len(c.bufCache) - 1
			c.bufCache[i] = c.bufCache[last]
			c.bufCache = c.bufCache[:last]
			b = b[:len(data)]
			copy(b, data)
			return b
		}
	}
	b := make([]float64, len(data)) //palint:ignore hotalloc -- freelist miss path: amortized away once the cache warms up
	copy(b, data)
	return b
}

func newCtx(rt *runtime, rank int) *Ctx {
	c := &Ctx{
		rt:    rt,
		rank:  rank,
		state: rt.w.State,
		meter: power.NewMeter(rt.w.Prof),
		phase: "main",
	}
	if rt.w.Faults.Enabled() {
		c.faults = faults.NewRank(rt.w.Faults, rank)
	}
	if rt.w.Obs != nil {
		c.obs = rt.w.Obs.Rank(rank)
		c.obs.Phase(c.phase, 0)
		c.msgHist = rt.w.Obs.Metrics().Histogram("mpi.msg_bytes", obs.MsgBytesBuckets)
	}
	c.comm = rt.w.Comm
	if rt.w.traceHint != nil {
		c.log.Grow(rt.w.traceHint[rank])
	}
	if rt.w.Record != nil {
		c.rec = &rt.w.Record.tapes[rank]
	}
	return c
}

// Rank returns this rank's index in [0, Size).
func (c *Ctx) Rank() int { return c.rank }

// Size returns the number of ranks in the job.
func (c *Ctx) Size() int { return c.rt.w.N }

// Now returns the rank's current virtual time in seconds.
func (c *Ctx) Now() float64 { return c.clock }

// Freq returns the core clock frequency of the node's current P-state.
func (c *Ctx) Freq() units.Hertz { return c.state.Freq }

// hz returns the current frequency as a plain float64 for virtual-clock
// arithmetic that divides instruction counts by it.
func (c *Ctx) hz() float64 { return float64(c.state.Freq) }

// State returns the node's current operating point.
func (c *Ctx) State() power.PState { return c.state }

// SetPState switches the node to a new operating point, charging the
// world's gear-switch penalty when the state actually changes. DVFS
// schedulers call this from a phase hook to slow the processor through
// communication-bound phases.
func (c *Ctx) SetPState(st power.PState) {
	if st == c.state {
		return
	}
	dt := c.rt.w.GearSwitchSec
	if dt > 0 {
		start := c.clock
		c.clock += float64(dt)
		// The transition is billed at the old gear's busy power: the PLL
		// relock stalls the pipeline but the core stays powered.
		_ = c.meter.Accumulate(c.state, 1, dt)
		c.log.Append(trace.Event{Rank: c.rank, Phase: "dvfs-switch", Kind: trace.Comm, Start: start, End: c.clock,
			Watts: float64(c.rt.w.Prof.NodePower(c.state, 1))})
		c.commSec += float64(dt)
	}
	c.state = st
	c.gearSwitches++
	if c.rec != nil {
		c.rec.add(recOp{kind: opPState, state: st})
	}
}

// Machine returns the node timing model, letting kernels size working sets
// against the cache geometry.
func (c *Ctx) Machine() machine.Config { return c.rt.w.Mach }

// SetPhase labels subsequent trace events; kernels call it at phase
// boundaries ("fft-z", "exchange", ...). When the world has an OnPhase
// hook (a DVFS scheduler), it runs on every transition to a new label.
func (c *Ctx) SetPhase(name string) {
	if name == c.phase {
		return
	}
	c.phase = name
	if c.rec != nil {
		c.rec.add(recOp{kind: opPhase, name: name})
	}
	if c.obs != nil {
		c.obs.Phase(name, c.clock)
	}
	if c.comm != nil {
		c.comm.Record(trace.CommEvent{Rank: c.rank, T: c.clock, Kind: trace.CommPhase, Name: name})
	}
	if c.rt.w.OnPhase != nil {
		c.rt.w.OnPhase(c, name)
	}
}

// Counters returns a snapshot of the rank's simulated PAPI counters.
func (c *Ctx) Counters() papi.Counters { return c.counters }

// Compute advances the rank's clock by the time the instruction mix takes
// on the node at the job's P-state, and accounts the mix on the PAPI
// counters and the energy meter.
func (c *Ctx) Compute(w machine.Work) error {
	if err := w.Validate(); err != nil {
		return err
	}
	if c.rec != nil {
		c.rec.add(recOp{kind: opCompute, work: w})
	}
	dt := c.rt.w.Mach.TimeFor(w, c.Freq())
	start := c.clock
	c.clock += float64(dt)
	c.computeSec += float64(dt)
	c.counters.AddWork(w)
	if err := c.meter.Accumulate(c.state, 1, dt); err != nil {
		return err
	}
	c.log.Append(trace.Event{Rank: c.rank, Phase: c.phase, Kind: trace.Compute, Start: start, End: c.clock,
		Watts: float64(c.rt.w.Prof.NodePower(c.state, 1))})
	// A straggler rank's compute stretches by its persistent slowdown —
	// equivalent to the node running at a lower effective frequency for
	// ON-chip work. The stretch is a separate Fault interval at busy power,
	// so traces attribute injected heterogeneity, not mislabel it compute.
	if c.faults != nil {
		if f := c.faults.ComputeFactor(); f > 1 {
			if err := c.advanceFault(float64(dt)*(f-1), trace.Fault, 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// advanceFault advances the clock by dt of chaos-injected time, recording
// it under the given trace kind at the given utilization (1 for a straggler
// compute stretch, the poll utilization for network waits and backoff).
func (c *Ctx) advanceFault(dt float64, kind trace.Kind, util float64) error {
	if dt <= 0 {
		return nil
	}
	start := c.clock
	c.clock += dt
	c.faultSec += dt
	if err := c.meter.Accumulate(c.state, util, units.Seconds(dt)); err != nil {
		return err
	}
	c.log.Append(trace.Event{Rank: c.rank, Phase: c.phase, Kind: kind, Start: start, End: c.clock,
		Watts: float64(c.rt.w.Prof.NodePower(c.state, util))})
	return nil
}

// advanceComm moves the clock to end (≥ current clock), attributing the
// interval to communication at the configured poll utilization.
func (c *Ctx) advanceComm(end float64) error {
	if end < c.clock {
		end = c.clock
	}
	dt := end - c.clock
	start := c.clock
	c.clock = end
	c.commSec += dt
	if err := c.meter.Accumulate(c.state, c.rt.w.PollUtil, units.Seconds(dt)); err != nil {
		return err
	}
	c.log.Append(trace.Event{Rank: c.rank, Phase: c.phase, Kind: trace.Comm, Start: start, End: end,
		Watts: float64(c.rt.w.Prof.NodePower(c.state, c.rt.w.PollUtil))})
	return nil
}

// noteMsgs records count outbound messages of bytesEach bytes on the rank's
// communication profile (the "number of messages × message size" product the
// paper obtains by profiling).
func (c *Ctx) noteMsgs(count, bytesEach int) {
	c.msgs += count
	c.msgBytes += count * bytesEach
	if c.msgHist != nil {
		c.msgHist.ObserveN(float64(bytesEach), int64(count))
	}
}

// noteP2P records a point-to-point protocol event when the world carries a
// comm recorder; kind is trace.CommSend or trace.CommRecv.
//
//palint:hotpath
func (c *Ctx) noteP2P(kind string, peer, tag int) {
	if c.comm != nil {
		c.comm.Record(trace.CommEvent{Rank: c.rank, T: c.clock, Kind: kind, Peer: peer, Tag: tag, Phase: c.phase}) //palint:ignore hotalloc -- conformance recording is opt-in; a nil recorder skips the call and the default hot path stays allocation-free
	}
}

// noteColl records a collective entry when the world carries a comm
// recorder; op is the collective's method name ("Barrier", "Allreduce", ...).
//
//palint:hotpath
func (c *Ctx) noteColl(op string) {
	if c.comm != nil {
		c.comm.Record(trace.CommEvent{Rank: c.rank, T: c.clock, Kind: trace.CommColl, Name: op, Phase: c.phase}) //palint:ignore hotalloc -- conformance recording is opt-in; a nil recorder skips the call and the default hot path stays allocation-free
	}
}

// checkPeer validates a peer rank index.
func (c *Ctx) checkPeer(peer string, r int) error {
	if r < 0 || r >= c.Size() {
		return fmt.Errorf("mpi: %s rank %d out of range [0,%d)", peer, r, c.Size())
	}
	if r == c.rank {
		return fmt.Errorf("mpi: %s rank %d is self", peer, r)
	}
	return nil
}
