// Package simnet models the paper's interconnect: 16 nodes on a 100 Mb
// switched Fast Ethernet (Cisco Catalyst 2950) running an MPICH-style TCP
// message-passing stack.
//
// The model is LogGP-flavoured with two additions that matter for
// power-aware speedup:
//
//  1. Endpoint CPU cost. Each message costs the sending and receiving CPU a
//     fixed number of instructions plus a per-byte copy/checksum charge.
//     These instructions execute at the core clock, so at low P-states
//     large-message communication slows down — the effect the paper observed
//     in Table 6 (310-double messages take 200 µs at 600 MHz but 167 µs at
//     800 MHz and above) and the reason Assumption 2 ("parallel overhead is
//     not affected by frequency") is only approximately true.
//  2. Flow-concurrency limit. Dense patterns such as FT's transpose
//     alltoall drive every port at once; TCP incast and switch buffering on
//     Fast Ethernet limit how many flows sustain full bandwidth. The
//     effective per-flow bandwidth is BW·min(1, C/flows). This is what makes
//     FT's speedup flatten by 16 nodes. Setting FlowConcurrency to 0 removes
//     the limit (used by the contention ablation).
package simnet

import (
	"fmt"

	"pasp/internal/units"
)

// Config holds the interconnect parameters.
type Config struct {
	// LatencySec is the one-way wire+switch latency per message in seconds.
	LatencySec float64
	// BandwidthBps is the per-port sustainable bandwidth in bytes per
	// second (TCP goodput, not line rate).
	BandwidthBps float64
	// MsgCPUIns is the per-message instruction count executed on each
	// endpoint (protocol traversal, matching, syscalls).
	MsgCPUIns float64
	// ByteCPUIns is the per-byte instruction count on each endpoint
	// (buffer copies, checksum).
	ByteCPUIns float64
	// FlowConcurrency is the number of simultaneous flows the fabric
	// sustains at full per-port bandwidth; beyond it, per-flow bandwidth
	// degrades proportionally. 0 means unlimited (ideal switch).
	FlowConcurrency int
	// EagerBytes is the rendezvous threshold: messages strictly larger use
	// the rendezvous protocol, which synchronizes sender with receiver.
	EagerBytes int
}

// FastEthernet returns the model of the paper's network: 100 Mb switched
// Ethernet with an MPICH ch_p4 (TCP) stack. Bandwidth is TCP goodput
// (~11.5 MB/s of the 12.5 MB/s line rate); the CPU charges are calibrated
// so small-message time is latency-bound (frequency-insensitive) while
// multi-KB messages pick up tens of microseconds at the 600 MHz gear,
// matching the shape of Table 6's communication rows.
func FastEthernet() Config {
	return Config{
		LatencySec:      60e-6,
		BandwidthBps:    11.5e6,
		MsgCPUIns:       12000,
		ByteCPUIns:      3.0,
		FlowConcurrency: 8,
		EagerBytes:      64 << 10,
	}
}

// String renders the interconnect parameters as a compact deterministic
// one-liner for run manifests and span attributes; every field that keys a
// campaign-store entry appears, so two configs with equal strings simulate
// identically.
func (c Config) String() string {
	return fmt.Sprintf("lat=%gs bw=%gB/s msgins=%g byteins=%g flows=%d eager=%dB",
		c.LatencySec, c.BandwidthBps, c.MsgCPUIns, c.ByteCPUIns, c.FlowConcurrency, c.EagerBytes)
}

// Validate reports an error for non-physical parameters.
func (c Config) Validate() error {
	if c.LatencySec < 0 {
		return fmt.Errorf("simnet: negative latency")
	}
	if c.BandwidthBps <= 0 {
		return fmt.Errorf("simnet: non-positive bandwidth")
	}
	if c.MsgCPUIns < 0 || c.ByteCPUIns < 0 {
		return fmt.Errorf("simnet: negative CPU overhead")
	}
	if c.FlowConcurrency < 0 {
		return fmt.Errorf("simnet: negative flow concurrency")
	}
	if c.EagerBytes < 0 {
		return fmt.Errorf("simnet: negative eager threshold")
	}
	return nil
}

// CPUOverhead returns the endpoint CPU time in seconds to process one
// message of the given size at core frequency freq. The result is plain
// float64 seconds: it feeds the simulator's virtual clock.
func (c Config) CPUOverhead(bytes int, freq units.Hertz) float64 {
	//palint:ignore floatdiv -- freq is a validated P-state frequency (> 0); callers pass machine gear frequencies
	return (c.MsgCPUIns + c.ByteCPUIns*float64(bytes)) / float64(freq)
}

// WireTime returns the serialization time of bytes on an uncontended port.
func (c Config) WireTime(bytes int) float64 {
	//palint:ignore floatdiv -- Config.Validate rejects non-positive BandwidthBps before any simulation runs
	return float64(bytes) / c.BandwidthBps
}

// EffectiveBandwidth returns the per-flow bandwidth when flows transfers
// share the fabric simultaneously.
func (c Config) EffectiveBandwidth(flows int) float64 {
	if flows <= 1 || c.FlowConcurrency == 0 || flows <= c.FlowConcurrency {
		return c.BandwidthBps
	}
	return c.BandwidthBps * float64(c.FlowConcurrency) / float64(flows)
}

// ContendedWireTime returns the serialization time of bytes when flows
// flows are active at once.
func (c Config) ContendedWireTime(bytes, flows int) float64 {
	return float64(bytes) / c.EffectiveBandwidth(flows)
}

// DegradedWireTime returns the serialization time of bytes on a transiently
// degraded fabric: the uncontended wire time stretched by factor (≥ 1). The
// chaos harness (package faults) draws the factor per message; factor ≤ 1
// means a healthy fabric and returns WireTime exactly, so a disabled
// injector cannot change any timing.
func (c Config) DegradedWireTime(bytes int, factor float64) float64 {
	w := c.WireTime(bytes)
	if factor <= 1 {
		return w
	}
	return w * factor
}

// JitteredLatency returns the one-way message latency with an injected
// extra delay (≥ 0) added: the per-message latency-jitter perturbation of
// the chaos harness. A non-positive extra returns LatencySec exactly.
func (c Config) JitteredLatency(extraSec float64) float64 {
	if extraSec <= 0 {
		return c.LatencySec
	}
	return c.LatencySec + extraSec
}

// PointToPoint returns the end-to-end time of a single message on a quiet
// network: sender CPU + latency + wire + receiver CPU, with the endpoints at
// core frequencies fsrc and fdst.
func (c Config) PointToPoint(bytes int, fsrc, fdst units.Hertz) float64 {
	return c.CPUOverhead(bytes, fsrc) + c.LatencySec + c.WireTime(bytes) + c.CPUOverhead(bytes, fdst)
}

// Rendezvous reports whether a message of the given size uses the
// rendezvous protocol.
func (c Config) Rendezvous(bytes int) bool {
	return c.EagerBytes > 0 && bytes > c.EagerBytes
}
