package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// chainOf renders a pure identifier/selector chain ("a", "a.b.c") and
// reports whether e is one. Conversions to a float type are looked through:
// float64(n) keys as "n", because a positivity guard on n guards the
// converted value too.
func chainOf(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := chainOf(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.ParenExpr:
		return chainOf(x.X)
	}
	return "", false
}

// render produces a compact source-like rendering of simple expressions for
// diagnostics; falls back to a type-name placeholder for compound ones.
func render(e ast.Expr) string {
	if s, ok := chainOf(e); ok {
		return s
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		if len(x.Args) == 1 {
			if fn, ok := chainOf(x.Fun); ok {
				return fn + "(" + render(x.Args[0]) + ")"
			}
		}
		return "call"
	case *ast.ParenExpr:
		return render(x.X)
	case *ast.UnaryExpr:
		return x.Op.String() + render(x.X)
	case *ast.BasicLit:
		return x.Value
	case *ast.IndexExpr:
		return render(x.X) + "[" + render(x.Index) + "]"
	}
	return "expression"
}

// collectChains gathers every identifier/selector chain appearing anywhere
// inside e (including call arguments), longest-chain first for selectors.
func collectChains(e ast.Expr) []string {
	var out []string
	seen := map[string]bool{}
	add := func(s string) {
		if s != "" && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if s, ok := chainOf(x); ok {
				add(s)
				// Also add the base so a guard on the container counts.
				if i := strings.LastIndex(s, "."); i > 0 {
					add(s[:i])
				}
				return false
			}
		case *ast.Ident:
			add(x.Name)
		}
		return true
	})
	return out
}

// isFloatConversion reports whether call converts to a floating-point type.
func isFloatConversion(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	t := pass.TypeOf(call.Fun)
	if t == nil {
		return false
	}
	// A conversion's Fun is the type itself.
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0 && pass.typeExprIsType(call.Fun)
}

// typeExprIsType reports whether e denotes a type (vs a value).
func (p *Pass) typeExprIsType(e ast.Expr) bool {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.IsType()
	}
	return false
}

// isComparison reports whether op is an ordering or equality operator.
func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// calleeName returns the bare name a call invokes ("Speedup" for both
// Speedup(...) and m.Speedup(...)), or "" when the callee is not named.
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// pkgQualifier returns the imported package path when the call's qualifier
// is a package name (fmt.Fprintf → "fmt"), or "".
func pkgQualifier(pass *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.Pkg.Info.ObjectOf(id).(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// isErrorType reports whether t is the predeclared error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
