// Package cluster assembles the substrates into the paper's experimental
// platform — a 16-node DVS-enabled cluster of Pentium M laptops on 100 Mb
// switched Ethernet — and provides grid sweeps over (processor count,
// frequency) configurations, the measurement campaign every experiment
// starts from.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"pasp/internal/faults"
	"pasp/internal/machine"
	"pasp/internal/mpi"
	"pasp/internal/obs"
	"pasp/internal/power"
	"pasp/internal/simnet"
	"pasp/internal/units"
)

// Platform bundles the hardware models of one cluster type.
type Platform struct {
	// Mach is the node timing model.
	Mach machine.Config
	// Net is the interconnect model.
	Net simnet.Config
	// Prof is the node power profile.
	Prof power.Profile
	// MaxNodes is how many nodes the cluster has.
	MaxNodes int
	// Faults is the chaos-harness configuration applied to every world the
	// platform builds. The zero value injects nothing; a non-zero config is
	// part of the platform's identity, so perturbed campaigns are keyed
	// apart from clean ones in the campaign store.
	Faults faults.Config
	// Engine selects the mpi rank runtime for every world the platform
	// builds. Engines are timing-equivalent (pinned by the cross-engine
	// differential tests), so this only changes how fast the simulation
	// runs, not what it computes. It is still part of the campaign-store
	// key via the platform fingerprint, which keeps cache entries
	// attributable to the runtime that produced them.
	Engine mpi.Engine
}

// PentiumM returns the paper's platform: 16 Dell Inspiron 8600 nodes
// (Pentium M 1.4 GHz, Table 2 P-states) on a Cisco Catalyst 2950 switch,
// running MPICH over TCP.
func PentiumM() Platform {
	return Platform{
		Mach:     machine.PentiumM(),
		Net:      simnet.FastEthernet(),
		Prof:     power.PentiumM(),
		MaxNodes: 16,
		// The event engine is the default runtime: identical results to the
		// goroutine engine (see the differential goldens in internal/npb)
		// with far less real scheduler time, which is what keeps the full
		// paper reproduction under its wall-clock budget.
		Engine: mpi.EngineEvent,
	}
}

// Validate reports an error for an inconsistent platform.
func (p Platform) Validate() error {
	if err := p.Mach.Validate(); err != nil {
		return err
	}
	if err := p.Net.Validate(); err != nil {
		return err
	}
	if err := p.Prof.Validate(); err != nil {
		return err
	}
	if p.MaxNodes < 1 {
		return fmt.Errorf("cluster: MaxNodes = %d", p.MaxNodes)
	}
	if err := p.Faults.Validate(); err != nil {
		return err
	}
	if err := p.Engine.Validate(); err != nil {
		return err
	}
	return nil
}

// World returns an MPI world of n nodes at the P-state closest to mhz.
func (p Platform) World(n int, mhz float64) (mpi.World, error) {
	if n < 1 || n > p.MaxNodes {
		return mpi.World{}, fmt.Errorf("cluster: %d nodes outside [1, %d]", n, p.MaxNodes)
	}
	st, err := p.Prof.StateAt(units.MHz(mhz))
	if err != nil {
		return mpi.World{}, err
	}
	w := mpi.World{N: n, Net: p.Net, Mach: p.Mach, Prof: p.Prof, State: st, Faults: p.Faults, Engine: p.Engine}
	// A configured P-state transition latency relaxes the paper's
	// Assumption 2: gear switches are no longer free. DVFS policies that
	// set their own SwitchSec override this downstream.
	if p.Faults.GearSwitchSec > 0 {
		w.GearSwitchSec = p.Faults.GearSwitchSec
	}
	return w, nil
}

// Grid is a measurement campaign: every (N, MHz) combination.
type Grid struct {
	// Ns is the processor counts, ascending; Ns[0] is usually 1.
	Ns []int
	// MHz is the frequencies in megahertz, ascending; MHz[0] is the base.
	MHz []float64
}

// PaperGrid returns the grid of the paper's Tables 1 and 3 and Figures 1–2:
// N ∈ {1, 2, 4, 8, 16}, f ∈ {600 … 1400} MHz.
func PaperGrid() Grid {
	return Grid{
		Ns:  []int{1, 2, 4, 8, 16},
		MHz: []float64{600, 800, 1000, 1200, 1400},
	}
}

// Validate reports an error for an empty or unsorted grid.
func (g Grid) Validate() error {
	if len(g.Ns) == 0 || len(g.MHz) == 0 {
		return fmt.Errorf("cluster: empty grid")
	}
	for i := 1; i < len(g.Ns); i++ {
		if g.Ns[i] <= g.Ns[i-1] {
			return fmt.Errorf("cluster: Ns not ascending at %d", i)
		}
	}
	for i := 1; i < len(g.MHz); i++ {
		if g.MHz[i] <= g.MHz[i-1] {
			return fmt.Errorf("cluster: MHz not ascending at %d", i)
		}
	}
	return nil
}

// Cell is one grid measurement.
type Cell struct {
	// N and MHz identify the configuration.
	N   int
	MHz float64
	// Res is the simulation outcome.
	Res *mpi.Result
}

// RunFunc executes a kernel on a configured world.
type RunFunc func(w mpi.World) (*mpi.Result, error)

// Sweep measures run at every grid cell on a pool of up to GOMAXPROCS
// workers; each cell's simulation is itself deterministic and the work
// distribution never influences results, so the sweep's bytes are
// identical at any GOMAXPROCS (pinned by TestSweepGOMAXPROCSDeterminism).
//
// A cancelled ctx stops the sweep at cell granularity: no new cell starts
// once ctx.Done() is closed, in-flight cells finish (one simulation is the
// abort latency), and the sweep returns ctx's error. Cancellation is how a
// caller that went away — an HTTP client that disconnected, a drained
// server — stops paying for the rest of a campaign it no longer wants.
//
// Under the event engine the frequency axis is swept by record/replay:
// kernel control flow, data movement and message shapes do not depend on
// the operating frequency, so the kernel executes for real once per rank
// count (at the grid's base frequency, recording every rank's operation
// stream) and the remaining frequencies re-time the recorded stream
// through the same mpi timing paths — bit-identical to direct runs (see
// mpi.Replay) at a fifth of the work on the paper's five-frequency grid.
func Sweep(ctx context.Context, p Platform, g Grid, run RunFunc) ([]Cell, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	cells := make([]Cell, 0, len(g.Ns)*len(g.MHz))
	for _, n := range g.Ns {
		for _, f := range g.MHz {
			cells = append(cells, Cell{N: n, MHz: f})
		}
	}
	errs := make([]error, len(cells))
	if p.Engine == mpi.EngineEvent && len(g.MHz) > 1 {
		// Replay path: one unit per rank count, so a unit's record run and
		// its replays share a worker while independent rank counts spread
		// across the pool.
		sweepUnits(ctx, len(g.Ns), func(u int) {
			base := u * len(g.MHz)
			rec := mpi.NewRecording()
			for j := 0; j < len(g.MHz); j++ {
				if j > 0 && ctx.Err() != nil {
					return
				}
				i := base + j
				runCell(p, run, &cells[i], &errs[i], rec, j > 0)
			}
		})
	} else {
		sweepUnits(ctx, len(cells), func(i int) {
			runCell(p, run, &cells[i], &errs[i], nil, false)
		})
	}
	// Cancellation trumps the per-cell surface: the cells a cancelled sweep
	// never ran carry no errors, so without this check a half-swept grid
	// could look like a success.
	if err := ctx.Err(); err != nil {
		// The request ID (when the sweep ran on behalf of a serving
		// request) names which caller's cancellation killed the work.
		if id := obs.RequestIDFrom(ctx); id != "" {
			return nil, fmt.Errorf("cluster: sweep cancelled (request %s): %w", id, err)
		}
		return nil, fmt.Errorf("cluster: sweep cancelled: %w", err)
	}
	// A failing sweep reports every broken cell, not just the first: a
	// parameter that breaks several (N, MHz) configurations shows its whole
	// footprint in one error.
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return cells, nil
}

// sweepUnits runs do(0..units-1) on up to GOMAXPROCS workers. Units are
// handed out in order; each writes only its own cells, so the fan-out is
// race-free and the results are scheduling-independent. A cancelled ctx
// stops the hand-out; units already dispatched run to completion.
func sweepUnits(ctx context.Context, units int, do func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > units {
		workers = units
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		//palint:ignore nakedgo -- sweep fan-out idiom: each unit writes only its own cell/err slots and wg.Wait publishes them to the caller
		go func() {
			defer wg.Done()
			for u := range next {
				do(u)
			}
		}()
	}
dispatch:
	for u := 0; u < units; u++ {
		select {
		case next <- u:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
}

// runCell measures one grid cell. With a recording attached, the first
// cell of a unit captures the kernel's operation stream and later cells
// replay it; a recording the first run did not complete (the RunFunc
// failed, or never reached mpi.Run) falls back to direct execution so the
// per-cell error surface is unchanged.
func runCell(p Platform, run RunFunc, cell *Cell, errSlot *error, rec *mpi.Recording, replay bool) {
	w, err := p.World(cell.N, cell.MHz)
	if err != nil {
		*errSlot = fmt.Errorf("cluster: N=%d f=%gMHz: %w", cell.N, cell.MHz, err)
		return
	}
	var res *mpi.Result
	switch {
	case replay && rec.Complete():
		res, err = mpi.Replay(w, rec)
	case rec != nil && !replay:
		w.Record = rec
		res, err = run(w)
	default:
		res, err = run(w)
	}
	if err != nil {
		*errSlot = fmt.Errorf("cluster: N=%d f=%gMHz: %w", cell.N, cell.MHz, err)
		return
	}
	cell.Res = res
}
