package npb

import (
	"fmt"
	"math"

	"pasp/internal/machine"
	"pasp/internal/mpi"
)

// EP is the NAS "embarrassingly parallel" kernel: evaluate an integral by
// generating 2^LogPairs pseudorandom pairs, accepting those inside the unit
// circle, transforming them to Gaussian deviates (Box–Muller) and tallying
// them into annulus counts. Cluster-wide computation needs a single small
// allreduce at the end, so EP is the paper's computation-bound extreme:
// virtually no OFF-chip work and no parallel overhead.
type EP struct {
	// LogPairs is M: 2^M pairs are actually generated and verified.
	LogPairs int
	// ScaleLog inflates the timed workload by 2^ScaleLog, so a reduced run
	// is billed as the full NAS class (class A is LogPairs+ScaleLog = 28).
	ScaleLog int
}

// Instruction mix per generated pair and per accepted pair. EP's working
// set is a handful of scalars and a 10-entry table, so everything is
// register/L1 traffic — the reason its speedup is the clean product N·f/f0
// (paper Eq. 12).
const (
	epPairRegIns   = 55 // two LCG steps, scaling to [-1,1], t = x²+y², compare
	epPairL1Ins    = 25
	epAcceptRegIns = 30 // log, sqrt, two multiplies, annulus classify
	epAcceptL1Ins  = 10
)

// EPResult is the kernel's verifiable outcome.
type EPResult struct {
	// Sx and Sy are the sums of the accepted Gaussian deviates.
	Sx, Sy float64
	// Q counts accepted deviates per annulus l = ⌊max(|X|,|Y|)⌋.
	Q [10]float64
	// Accepted is the number of accepted pairs (= ΣQ).
	Accepted float64
}

// Name returns the kernel's NAS name.
func (e EP) Name() string { return "EP" }

// Validate reports an error for unusable parameters.
func (e EP) Validate() error {
	if e.LogPairs < 1 || e.LogPairs > 40 {
		return fmt.Errorf("npb: EP LogPairs = %d, want 1..40", e.LogPairs)
	}
	if e.ScaleLog < 0 || e.LogPairs+e.ScaleLog > 60 {
		return fmt.Errorf("npb: EP ScaleLog = %d out of range", e.ScaleLog)
	}
	return nil
}

// TotalPairs returns the logical (timed) pair count 2^(LogPairs+ScaleLog).
func (e EP) TotalPairs() float64 {
	return math.Ldexp(1, e.LogPairs+e.ScaleLog)
}

// Run executes EP on the world and returns the verifiable tallies alongside
// the simulation result.
func (e EP) Run(w mpi.World) (EPResult, *mpi.Result, error) {
	if err := e.Validate(); err != nil {
		return EPResult{}, nil, err
	}
	var out EPResult
	res, err := mpi.Run(w, func(c *mpi.Ctx) error {
		r, err := e.rank(c)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = r
		}
		return nil
	})
	if err != nil {
		return EPResult{}, nil, err
	}
	return out, res, nil
}

// rank is the per-rank body: generate this rank's contiguous block of
// pairs, tally, account the workload, and combine with one allreduce.
func (e EP) rank(c *mpi.Ctx) (EPResult, error) {
	total := int64(1) << uint(e.LogPairs)
	n := int64(c.Size())
	r := int64(c.Rank())
	lo := total * r / n
	hi := total * (r + 1) / n

	c.SetPhase("ep-compute")
	rng := newRandlc(uint64(2 * lo)) // each pair consumes two deviates
	var sx, sy float64
	var q [10]float64
	accepted := int64(0)
	for i := lo; i < hi; i++ {
		x := 2*rng.next() - 1
		y := 2*rng.next() - 1
		t := x*x + y*y
		if t > 1 {
			continue
		}
		accepted++
		f := math.Sqrt(-2 * math.Log(t) / t)
		gx, gy := x*f, y*f
		l := int(math.Max(math.Abs(gx), math.Abs(gy)))
		if l > 9 {
			l = 9
		}
		q[l]++
		sx += gx
		sy += gy
	}

	// Bill the full logical workload: every generated pair plus the
	// accepted-pair tail, inflated by the class scale.
	scale := math.Ldexp(1, e.ScaleLog)
	pairs := float64(hi - lo)
	acc := float64(accepted)
	work := machine.W(
		(pairs*epPairRegIns+acc*epAcceptRegIns)*scale,
		(pairs*epPairL1Ins+acc*epAcceptL1Ins)*scale,
		0, 0,
	)
	if err := c.Compute(work); err != nil {
		return EPResult{}, err
	}

	c.SetPhase("ep-allreduce")
	buf := make([]float64, 13)
	buf[0], buf[1], buf[2] = sx, sy, acc
	copy(buf[3:], q[:])
	sum, err := c.Allreduce(buf, mpi.Sum, 0)
	if err != nil {
		return EPResult{}, err
	}
	var res EPResult
	res.Sx, res.Sy, res.Accepted = sum[0], sum[1], sum[2]
	copy(res.Q[:], sum[3:])
	return res, nil
}
