// Command pasim runs one NAS kernel at one cluster configuration on the
// simulated power-aware cluster and reports execution time, energy,
// counter-derived workload decomposition and the per-phase time breakdown.
//
// Usage:
//
//	pasim [-bench ep|ft|lu|cg|mg|is|sp] [-np 4] [-mhz 600] [-suite paper|quick|scale] [-v]
//	      [-engine goroutine|event] [-timeline out.csv] [-chaos spec] [-trace out.trace.json] [-metrics]
//
// The -chaos flag perturbs the run through the deterministic fault-injection
// harness (package faults); its argument is a comma-separated key=value spec,
// e.g. -chaos "seed=1,jitter=0.5,drop=0.01". See faults.ParseSpec for keys.
//
// -trace exports the run as Chrome trace-event JSON (open in Perfetto or
// chrome://tracing); -metrics prints the observability metric snapshot.
// Either flag attaches the observability recorder, which never changes the
// simulated numbers. For the full export pipeline (energy attribution,
// manifest) use the dedicated patrace command.
package main

import (
	"flag"
	"fmt"
	"os"

	"pasp/internal/experiments"
	"pasp/internal/faults"
	"pasp/internal/mpi"
	"pasp/internal/obs"
	"pasp/internal/units"
)

func main() {
	bench := flag.String("bench", "ft", "kernel: ep, ft, lu, cg, mg, is or sp")
	np := flag.Int("np", 4, "number of processors")
	mhz := flag.Float64("mhz", 600, "operating frequency in MHz")
	suite := flag.String("suite", "paper", "kernel class scale: paper, quick or scale")
	engine := flag.String("engine", "", "rank runtime override: goroutine or event (default: the suite platform's engine)")
	verbose := flag.Bool("v", false, "print the per-phase breakdown")
	timeline := flag.String("timeline", "", "write the per-rank trace timeline CSV to this file")
	chaos := flag.String("chaos", "", "fault-injection spec, e.g. seed=1,jitter=0.5,drop=0.01 (see faults.ParseSpec)")
	traceOut := flag.String("trace", "", "write the run as Chrome trace-event JSON to this file (Perfetto-compatible)")
	metrics := flag.Bool("metrics", false, "print the observability metric snapshot")
	flag.Parse()

	s, err := experiments.SuiteByName(*suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pasim: %v\n", err)
		os.Exit(2)
	}
	if *engine != "" {
		e := mpi.Engine(*engine)
		if err := e.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "pasim: %v\n", err)
			os.Exit(2)
		}
		s.Platform.Engine = e
	}
	cfg, err := faults.ParseSpec(*chaos)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pasim: %v\n", err)
		os.Exit(2)
	}
	s.Platform.Faults = cfg
	var rec *obs.Recorder
	if *traceOut != "" || *metrics {
		rec = obs.NewRecorder()
	}
	res, err := s.RunKernelObserved(*bench, *np, *mhz, rec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pasim: %v\n", err)
		os.Exit(1)
	}

	st, err := s.Platform.Prof.StateAt(units.MHz(*mhz))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pasim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s on %d node(s) at %.0f MHz (%.3f V)\n", *bench, *np, *mhz, st.Voltage)
	fmt.Printf("  execution time : %10.3f s\n", res.Seconds)
	fmt.Printf("  cluster energy : %10.1f J\n", res.Joules)
	fmt.Printf("  average power  : %10.1f W\n", res.AvgWatts())
	fmt.Printf("  energy-delay   : %10.1f J·s\n", res.EDP())
	if work, err := res.Counters.Decompose(); err == nil && work.Total() > 0 {
		fmt.Printf("  workload       : %.1f%% ON-chip, %.1f%% OFF-chip (%.2e instructions)\n",
			work.OnChip()/work.Total()*100, work.OffChip()/work.Total()*100, work.Total())
	}
	fmt.Printf("  compute/comm   : %10.3f s / %.3f s (summed over ranks)\n",
		res.ComputeSec(), res.CommSec())
	if cfg.Enabled() || cfg.GearSwitchSec > 0 {
		fmt.Printf("  injected chaos : %10.3f s across ranks, %d retransmissions\n",
			res.FaultSec(), res.Retries())
	}
	if *verbose {
		fmt.Println("\nper-phase time (summed over ranks):")
		fmt.Print(res.Trace.Summary())
		phase, share := res.Trace.CriticalPhase()
		fmt.Printf("dominant phase: %s (%.1f%% of recorded time)\n", phase, share*100)
	}
	if *timeline != "" {
		if err := os.WriteFile(*timeline, []byte(res.Trace.TimelineCSV()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pasim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("timeline written to %s\n", *timeline)
	}
	if *metrics {
		fmt.Printf("\nmetrics:\n%s", rec.Metrics().Snapshot().Text())
	}
	if *traceOut != "" {
		data := obs.ChromeTrace(res.Trace, "pasim "+*bench)
		n, err := obs.ValidateChromeTrace(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pasim: refusing to write invalid trace: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pasim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace (%d events) written to %s\n", n, *traceOut)
	}
}
