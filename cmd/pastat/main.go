// Command pastat analyzes a paserve wide-event log (one JSON object per
// request, as written by paserve -events) and reports where request latency
// goes: per-target percentiles with the stage that dominates each, the
// cache/coalescing efficiency of the campaign store, and the status-class
// breakdown.
//
// Usage:
//
//	pastat -events events.jsonl [-slo p99=500ms,err_rate=0.01]
//	       [-strict] [-json] [-validate-trace serve-trace.json]
//
// The -slo flag takes a comma-separated list of objectives over the whole
// log: p50, p99 and max (Go durations) bound the corresponding overall
// latency quantile; err_rate (a fraction) bounds 5xx responses per request.
// A violated objective is a finding.
//
// -strict adds the telemetry-integrity checks as findings: duplicate
// request IDs, any 5xx response, and any event whose stage breakdown does
// not sum to its measured latency within max(1%, 100µs) — the wide-event
// contract that lets the breakdown be trusted.
//
// -validate-trace parses the named file as Chrome trace-event JSON and
// checks the invariants Perfetto relies on (the same validation paserve
// runs before writing it).
//
// Exit status: 0 clean, 1 findings (SLO burn or strict violations), 2
// usage or input errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"pasp/internal/obs"
)

// slo is the parsed -slo flag: zero-valued fields are unchecked.
type slo struct {
	p50, p99, max time.Duration
	errRate       float64
	hasErrRate    bool
}

// parseSLO parses "p99=500ms,err_rate=0.01".
func parseSLO(s string) (slo, error) {
	var out slo
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return out, fmt.Errorf("pastat: slo term %q is not key=value", part)
		}
		switch key {
		case "p50", "p99", "max":
			d, err := time.ParseDuration(val)
			if err != nil {
				return out, fmt.Errorf("pastat: slo %s: %w", key, err)
			}
			if d <= 0 {
				return out, fmt.Errorf("pastat: slo %s must be positive (got %s)", key, d)
			}
			switch key {
			case "p50":
				out.p50 = d
			case "p99":
				out.p99 = d
			default:
				out.max = d
			}
		case "err_rate":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return out, fmt.Errorf("pastat: slo err_rate: %w", err)
			}
			if r < 0 || r > 1 {
				return out, fmt.Errorf("pastat: slo err_rate must be in [0,1] (got %g)", r)
			}
			out.errRate, out.hasErrRate = r, true
		default:
			return out, fmt.Errorf("pastat: unknown slo key %q (have p50, p99, max, err_rate)", key)
		}
	}
	return out, nil
}

// quantileEvent returns the event at the q-quantile of events sorted by
// TotalS (the nearest-rank convention the load harness also uses).
func quantileEvent(sorted []*obs.Event, q float64) *obs.Event {
	if len(sorted) == 0 {
		return nil
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// TargetReport is one endpoint's latency breakdown.
type TargetReport struct {
	Target string  `json:"target"`
	Events int     `json:"events"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	// P50Stage/P99Stage name the dominant stage of the event at that
	// quantile — which pipeline stage to look at first when that percentile
	// is slow — with the stage's fraction of the event's latency.
	P50Stage     string  `json:"p50_stage"`
	P50StageFrac float64 `json:"p50_stage_frac"`
	P99Stage     string  `json:"p99_stage"`
	P99StageFrac float64 `json:"p99_stage_frac"`
}

// Report is pastat's full analysis of one event log.
type Report struct {
	Events    int            `json:"events"`
	Status    map[string]int `json:"status"`
	Rate5xx   float64        `json:"rate_5xx"`
	P50Ms     float64        `json:"p50_ms"`
	P99Ms     float64        `json:"p99_ms"`
	MaxMs     float64        `json:"max_ms"`
	CacheHits int            `json:"cache_hits"`
	CacheMiss int            `json:"cache_misses"`
	Coalesced int            `json:"cache_coalesced"`
	// ReqPerSim is the coalescing efficiency: store-touching requests per
	// simulation actually run. 1.0 means no sharing; k means each sweep
	// served k requests.
	ReqPerSim float64 `json:"requests_per_simulation"`
	// StageShare is each stage's fraction of summed latency across all
	// events, in obs.StageNames order.
	StageShare []float64      `json:"stage_share"`
	Targets    []TargetReport `json:"targets"`
	// DuplicateIDs counts request IDs appearing on more than one event;
	// MaxStageGap is the worst |TotalS − StageSum| over the log, in
	// seconds. Both are strict-mode findings when nonzero/over-budget.
	DuplicateIDs int     `json:"duplicate_ids"`
	MaxStageGap  float64 `json:"max_stage_gap_s"`
}

// analyze builds the report from the parsed events.
func analyze(events []obs.Event) *Report {
	rep := &Report{Status: map[string]int{}, StageShare: make([]float64, len(obs.StageNames))}
	rep.Events = len(events)
	byTarget := map[string][]*obs.Event{}
	seen := map[string]int{}
	var all []*obs.Event
	totalLatency := 0.0
	n5xx := 0
	for i := range events {
		e := &events[i]
		all = append(all, e)
		byTarget[e.Target] = append(byTarget[e.Target], e)
		rep.Status[strconv.Itoa(e.Status/100)+"xx"]++
		if e.Status >= 500 {
			n5xx++
		}
		switch e.Cache {
		case "hit":
			rep.CacheHits++
		case "miss":
			rep.CacheMiss++
		case "coalesced":
			rep.Coalesced++
		}
		seen[e.ID]++
		if seen[e.ID] == 2 {
			rep.DuplicateIDs++
		}
		totalLatency += e.TotalS
		if gap := math.Abs(e.TotalS - e.StageSum()); gap > rep.MaxStageGap {
			rep.MaxStageGap = gap
		}
		for j, v := range e.Stages() {
			rep.StageShare[j] += v
		}
	}
	if rep.Events > 0 {
		rep.Rate5xx = float64(n5xx) / float64(rep.Events)
	}
	if totalLatency > 0 {
		for j := range rep.StageShare {
			rep.StageShare[j] /= totalLatency
		}
	}
	if rep.CacheMiss > 0 {
		rep.ReqPerSim = float64(rep.CacheMiss+rep.Coalesced) / float64(rep.CacheMiss)
	}
	byLatency := func(evs []*obs.Event) {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].TotalS < evs[j].TotalS })
	}
	byLatency(all)
	if e := quantileEvent(all, 0.50); e != nil {
		rep.P50Ms = e.TotalS * 1e3
	}
	if e := quantileEvent(all, 0.99); e != nil {
		rep.P99Ms = e.TotalS * 1e3
	}
	if e := quantileEvent(all, 1.00); e != nil {
		rep.MaxMs = e.TotalS * 1e3
	}
	names := make([]string, 0, len(byTarget))
	for name := range byTarget {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		evs := byTarget[name]
		byLatency(evs)
		tr := TargetReport{Target: name, Events: len(evs)}
		if e := quantileEvent(evs, 0.50); e != nil {
			tr.P50Ms = e.TotalS * 1e3
			tr.P50Stage, tr.P50StageFrac = e.Dominant()
		}
		if e := quantileEvent(evs, 0.99); e != nil {
			tr.P99Ms = e.TotalS * 1e3
			tr.P99Stage, tr.P99StageFrac = e.Dominant()
		}
		if e := quantileEvent(evs, 1.00); e != nil {
			tr.MaxMs = e.TotalS * 1e3
		}
		rep.Targets = append(rep.Targets, tr)
	}
	return rep
}

// text renders the report as the human summary.
func (rep *Report) text(w io.Writer) {
	fmt.Fprintf(w, "events %d", rep.Events)
	classes := make([]string, 0, len(rep.Status))
	for c := range rep.Status {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Fprintf(w, " %s=%d", c, rep.Status[c])
	}
	fmt.Fprintf(w, " err_rate=%.4f\n", rep.Rate5xx)
	fmt.Fprintf(w, "latency p50 %.3fms p99 %.3fms max %.3fms\n", rep.P50Ms, rep.P99Ms, rep.MaxMs)
	if rep.CacheHits+rep.CacheMiss+rep.Coalesced > 0 {
		fmt.Fprintf(w, "store: %d hits, %d misses, %d coalesced", rep.CacheHits, rep.CacheMiss, rep.Coalesced)
		if rep.ReqPerSim > 0 {
			fmt.Fprintf(w, " (%.2f requests per simulation)", rep.ReqPerSim)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprint(w, "stage share:")
	for j, name := range obs.StageNames {
		fmt.Fprintf(w, " %s=%.1f%%", name, rep.StageShare[j]*100)
	}
	fmt.Fprintln(w)
	for _, tr := range rep.Targets {
		fmt.Fprintf(w, "target %s: %d events, p50 %.3fms (dominant %s %.0f%%), p99 %.3fms (dominant %s %.0f%%), max %.3fms\n",
			tr.Target, tr.Events,
			tr.P50Ms, tr.P50Stage, tr.P50StageFrac*100,
			tr.P99Ms, tr.P99Stage, tr.P99StageFrac*100,
			tr.MaxMs)
	}
	if rep.DuplicateIDs > 0 {
		fmt.Fprintf(w, "duplicate request ids: %d\n", rep.DuplicateIDs)
	}
}

// stageGapBudget is the strict-mode tolerance on |TotalS − StageSum| for an
// event: 1% of the measured latency, floored at 100µs so microsecond-scale
// requests are not held to nanosecond bookkeeping.
func stageGapBudget(total float64) float64 {
	b := 0.01 * total
	if b < 100e-6 {
		b = 100e-6
	}
	return b
}

// findings evaluates the SLOs and (in strict mode) the integrity checks,
// printing one line per violation. The returned count drives the exit code.
func findings(rep *Report, events []obs.Event, obj slo, strict bool, w io.Writer) int {
	n := 0
	check := func(name string, limitMs, gotMs float64) {
		if limitMs > 0 && gotMs > limitMs {
			n++
			fmt.Fprintf(w, "SLO BURN: %s %.3fms over objective %.3fms\n", name, gotMs, limitMs)
		}
	}
	check("p50", float64(obj.p50)/float64(time.Millisecond), rep.P50Ms)
	check("p99", float64(obj.p99)/float64(time.Millisecond), rep.P99Ms)
	check("max", float64(obj.max)/float64(time.Millisecond), rep.MaxMs)
	if obj.hasErrRate && rep.Rate5xx > obj.errRate {
		n++
		fmt.Fprintf(w, "SLO BURN: err_rate %.4f over objective %.4f\n", rep.Rate5xx, obj.errRate)
	}
	if !strict {
		return n
	}
	if rep.DuplicateIDs > 0 {
		n++
		fmt.Fprintf(w, "STRICT: %d request id(s) appear on more than one event\n", rep.DuplicateIDs)
	}
	for i := range events {
		e := &events[i]
		if e.Status >= 500 {
			n++
			fmt.Fprintf(w, "STRICT: request %s (%s) answered %d: %s\n", e.ID, e.Target, e.Status, e.Err)
		}
		if gap := math.Abs(e.TotalS - e.StageSum()); gap > stageGapBudget(e.TotalS) {
			n++
			fmt.Fprintf(w, "STRICT: request %s stage sum %.6fs differs from total %.6fs by %.6fs\n",
				e.ID, e.StageSum(), e.TotalS, gap)
		}
	}
	return n
}

// run executes the analyzer; the returned count is the number of findings.
func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("pastat", flag.ContinueOnError)
	eventsFile := fs.String("events", "", "wide-event log to analyze (as written by paserve -events)")
	sloFlag := fs.String("slo", "", "objectives: p50/p99/max (durations) and err_rate (fraction), comma-separated")
	strict := fs.Bool("strict", false, "fail on duplicate ids, 5xx responses and stage sums that do not close")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	validateTrace := fs.String("validate-trace", "", "also validate this Chrome trace-event file")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if *eventsFile == "" && *validateTrace == "" {
		return 0, fmt.Errorf("pastat: nothing to do (pass -events and/or -validate-trace)")
	}
	obj, err := parseSLO(*sloFlag)
	if err != nil {
		return 0, err
	}

	n := 0
	if *validateTrace != "" {
		data, err := os.ReadFile(*validateTrace)
		if err != nil {
			return 0, err
		}
		count, err := obs.ValidateChromeTrace(data)
		if err != nil {
			n++
			fmt.Fprintf(stdout, "TRACE INVALID: %s: %v\n", *validateTrace, err)
		} else {
			fmt.Fprintf(stdout, "trace %s: %d event(s), valid\n", *validateTrace, count)
		}
	}
	if *eventsFile == "" {
		return n, nil
	}

	f, err := os.Open(*eventsFile)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	events, err := obs.ParseEvents(f)
	if err != nil {
		return 0, err
	}
	if len(events) == 0 {
		return 0, fmt.Errorf("pastat: %s has no events", *eventsFile)
	}

	rep := analyze(events)
	if *jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return 0, err
		}
		stdout.Write(append(data, '\n'))
	} else {
		rep.text(stdout)
	}
	n += findings(rep, events, obj, *strict, stdout)
	return n, nil
}

func main() {
	n, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintf(os.Stderr, "pastat: %v\n", err)
		}
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}
