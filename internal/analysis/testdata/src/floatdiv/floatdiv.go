// Package floatdiv seeds violations and non-violations for the floatdiv
// analyzer's golden test.
package floatdiv

import "fmt"

// Bad1 divides with no guard anywhere in the function.
func Bad1(a, b float64) float64 {
	return a / b // seeded violation 1
}

// Bad2 guards the denominator only after the division — not dominating.
func Bad2(t1, tn float64) float64 {
	s := t1 / tn // seeded violation 2
	if tn <= 0 {
		return 0
	}
	return s
}

// Bad3 divides by a converted parameter with no guard on the source.
func Bad3(sec float64, n int) float64 {
	return sec / float64(n) // seeded violation 3
}

// GoodEarlyReturn uses the early-return validation idiom; the guard on n
// covers the conversion-derived local fn.
func GoodEarlyReturn(n int, r float64) (float64, error) {
	if n < 1 || r <= 0 {
		return 0, fmt.Errorf("bad input N=%d r=%g", n, r)
	}
	fn := float64(n)
	return 1/fn + 1/r, nil
}

// GoodConstant divides by a constant; the compiler rejects constant zero.
func GoodConstant(x float64) float64 {
	return x / 2
}

// GoodBranchGuard divides inside the positive branch.
func GoodBranchGuard(num, den float64) float64 {
	if den > 0 {
		return num / den
	}
	return 0
}

type terms struct {
	Seq float64
}

// Validate establishes the invariants the arithmetic relies on.
func (t terms) Validate() error {
	if t.Seq <= 0 {
		return fmt.Errorf("non-positive Seq %g", t.Seq)
	}
	return nil
}

// GoodValidateCall relies on the repo's Validate() idiom.
func GoodValidateCall(t terms) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	return 1 / t.Seq, nil
}

// GoodRangeOrigin divides by a range key whose container was validated.
func GoodRangeOrigin(t terms, classes map[int]float64) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	span := 0.0
	for i, w := range t.classesOf(classes) {
		span += w / float64(i)
	}
	return span, nil
}

func (t terms) classesOf(m map[int]float64) map[int]float64 { return m }
