package experiments

import (
	"fmt"
	"sync"

	"pasp/internal/cluster"
	"pasp/internal/obs"
)

// The campaign store memoizes measurement campaigns for the lifetime of the
// process. Every table, figure, EDP, segment-model and DVFS experiment
// starts from a campaign, and most of them start from the *same* campaign:
// before the store, the benchmark harness re-simulated the FT sweep seven
// times. A campaign is a pure function of (kernel class and parameters,
// grid, platform), so it is content-keyed on exactly those and measured at
// most once.
//
// Cached campaigns are shared: every caller receives the same *Campaign and
// must treat it — Meas, Cells and the per-cell Results and Traces — as
// read-only. All in-tree consumers only read (fits, grids, trace scans).
//
// Variant platforms are naturally distinct keys: the ablations mutate a
// copy of Suite.Platform (FlowConcurrency, MsgCPUIns, BusDrop, ...) and the
// fingerprint of the modified struct no longer matches the stock one.

// campaignKey identifies one campaign by content, not by call site.
type campaignKey struct {
	kernel   string // kernel name plus its full parameter struct
	grid     string // Ns × MHz
	platform string // machine, network and power models plus MaxNodes
}

// storeEntry is one memoized campaign; once guards the single measurement.
type storeEntry struct {
	once sync.Once
	camp *Campaign
	err  error
}

// campaignStore is the process-wide cache. A mutex guards the map; each
// entry's sync.Once guards its measurement, so two goroutines asking for
// the same key concurrently trigger exactly one sweep and both block on it
// (the singleflight pattern) while campaigns under different keys measure
// concurrently.
var campaignStore = struct {
	mu sync.Mutex
	m  map[campaignKey]*storeEntry
}{m: map[campaignKey]*storeEntry{}}

// storeKey fingerprints the campaign inputs. The structs involved
// (machine.Config, simnet.Config, power.Profile and the npb kernel types)
// contain only scalars, arrays and slices — no maps — so their %+v
// rendering is deterministic and content-complete.
func storeKey(kernel string, params any, g cluster.Grid, p cluster.Platform) campaignKey {
	return campaignKey{
		kernel:   fmt.Sprintf("%s %+v", kernel, params),
		grid:     fmt.Sprintf("%v %v", g.Ns, g.MHz),
		platform: fmt.Sprintf("%+v", p),
	}
}

// measureCached returns the memoized campaign for (kernel, params, grid,
// platform), sweeping the grid at most once per process. params must be the
// kernel's full parameter struct so that two classes of the same kernel
// cannot collide.
func (s Suite) measureCached(kernel string, params any, g cluster.Grid, run cluster.RunFunc) (*Campaign, error) {
	key := storeKey(kernel, params, g, s.Platform)
	campaignStore.mu.Lock()
	e, ok := campaignStore.m[key]
	if !ok {
		e = &storeEntry{}
		campaignStore.m[key] = e
	}
	campaignStore.mu.Unlock()
	// An entry found in the map is a hit — a reuse of a measured (or
	// in-flight) campaign — and a created one is a miss. The counters live
	// on the process-wide registry so the memoization rate is observable
	// end-to-end; TestStoreHitMissCounters pins the accounting against
	// known reuse counts to catch silent regressions.
	if ok {
		obs.Default().Counter("store.hits").Inc()
	} else {
		obs.Default().Counter("store.misses").Inc()
	}
	e.once.Do(func() {
		e.camp, e.err = s.measure(g, run)
		if e.err == nil {
			recordCampaignSpan(kernel, e.camp)
		}
	})
	return e.camp, e.err
}

// recordCampaignSpan reports a freshly measured campaign to the global
// observer when one is installed (patrace/pachaos). Campaigns have no
// single virtual clock, so the span covers [0, summed cell seconds] —
// deterministic per platform. The nil-observer path is one atomic load.
func recordCampaignSpan(kernel string, camp *Campaign) {
	g := obs.Global()
	if g == nil {
		return
	}
	total := 0.0
	for _, c := range camp.Cells {
		total += c.Res.Seconds
	}
	id := g.StartSpan(-1, "campaign:"+kernel, 0,
		obs.F("cells", float64(len(camp.Cells))),
		obs.F("virtual_seconds", total))
	g.EndSpan(id, total)
	g.Metrics().Counter("campaigns.measured").Inc()
}

// CampaignStoreSize reports how many distinct campaigns the process has
// measured — observability for tests and the benchmark harness.
func CampaignStoreSize() int {
	campaignStore.mu.Lock()
	defer campaignStore.mu.Unlock()
	return len(campaignStore.m)
}
