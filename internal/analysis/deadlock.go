package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"

	"pasp/internal/commspec"
)

// Deadlock simulates each kernel's matched Send/Recv protocol symbolically
// and reports rendezvous cycles, unmatched endpoints and self-sends.
var Deadlock = &Analyzer{
	Name: "deadlock",
	Doc:  "rendezvous cycles, unmatched endpoints and self-sends in the p2p protocol",
	Explain: `The runtime's Send/Recv rendezvous blocks both sides until the
partners meet, so a protocol whose wait-for graph contains a cycle
hangs every run. deadlock expands each analysis root (a function that
launches an mpi job, or an uncalled function performing p2p) into a
whole-protocol operation tree, renders every partner and tag as an
expression over {rank, N} (ring neighbours "(rank+1)%N", xor pairs
"rank^1", mirrors "N-1-rank"), instantiates the tree for every rank at
N ∈ {2, 4, 8}, and runs the rendezvous semantics: sends and receives
match by (source, destination) and compatible tag, SendRecv posts its
send buffered before blocking in the receive, collectives are an
all-ranks barrier. It reports cycles ("rank 0 → 1 → 0"), endpoints
with no matching operation, ranks that return while others block in a
collective, buffered messages never received, tag mismatches, and
sends whose partner expression is the sender itself. Functions whose
branches or partners cannot be resolved over {rank, N} are skipped
(unsimulatable), never guessed at.`,
	Example: `// every rank sends first: nobody reaches Recv — rendezvous cycle
c.Send((c.Rank()+1)%c.Size(), 1, data)
c.Recv((c.Rank()-1+c.Size())%c.Size(), 1)`,
	Run: runDeadlock,
}

// simSizes are the job sizes the simulation instantiates. Power-of-two
// sizes match the tree's kernels (FT/CG transpose and reduction patterns
// assume them); composite sizes would spuriously fail xor-pair protocols.
var simSizes = []int{2, 4, 8}

// simKind discriminates instantiated operations.
type simKind int

const (
	simSend simKind = iota
	simSendBuf
	simRecv
	simColl
)

// simOp is one concrete operation of one rank at one N.
type simOp struct {
	kind    simKind
	partner int
	tag     int // -1 when unresolvable: matches any tag
	opName  string
	pos     token.Pos
}

func runDeadlock(pass *Pass) {
	if isMPIRuntimePkg(pass.Pkg) {
		return
	}
	prog := pass.Prog
	called := prog.calledFuncs()
	// Deduplicate program-wide: several roots (a kernel's Run method and
	// an experiments wrapper, say) expand to the same protocol and would
	// re-report the same operation from different reporting packages.
	if prog.commDeadlockSeen == nil {
		prog.commDeadlockSeen = map[string]bool{}
	}
	report := func(pos token.Pos, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		key := pass.Fset().Position(pos).String() + "\x00" + msg
		if prog.commDeadlockSeen[key] {
			return
		}
		prog.commDeadlockSeen[key] = true
		pass.Reportf(pos, "%s", msg)
	}
	eachReportedFunc(pass, func(info *FuncInfo) {
		isRoot := prog.containsMPIRun(info) || !called[info.Obj]
		if !isRoot {
			return
		}
		tree, ok := prog.expandTree(info.Obj, 0, map[*types.Func]bool{})
		if !ok {
			return
		}
		if !forestHasP2P(tree) {
			return
		}
		// Self-sends are manifest in the partner expression alone.
		reportSelfSends(tree, report)
		for _, n := range simSizes {
			perRank := make([][]simOp, n)
			simulatable := true
			for r := 0; r < n; r++ {
				ops, ok := instantiate(tree, r, n)
				if !ok {
					simulatable = false
					break
				}
				perRank[r] = ops
			}
			if !simulatable {
				continue
			}
			simulate(perRank, n, report)
		}
	})
}

// forestHasP2P reports whether any p2p leaf survives expansion.
func forestHasP2P(nodes []*opNode) bool {
	return subtreeHas(nodes, func(n *opNode) bool { return n.kind == opP2P })
}

// reportSelfSends flags p2p calls whose partner expression is literally the
// executing rank — a guaranteed runtime abort at every N.
func reportSelfSends(nodes []*opNode, report func(token.Pos, string, ...any)) {
	subtreeHas(nodes, func(n *opNode) bool {
		if n.kind == opP2P && n.partner == "rank" {
			report(n.pos, "%s targets the executing rank itself; the runtime rejects self-directed messages", n.opName)
		}
		return false
	})
}

// instantiate renders the tree into rank r's concrete operation sequence
// at job size n. ok=false marks the protocol unsimulatable at this N:
// an unresolvable rank-dependent branch over communication, a partner
// outside [0, n), or a division-by-zero in a partner expression.
func instantiate(nodes []*opNode, r, n int) ([]simOp, bool) {
	var out []simOp
	var walk func(nodes []*opNode) (terminated, ok bool)
	evalPartner := func(src string, pos token.Pos) (int, bool) {
		if src == commspec.Unknown {
			return 0, false
		}
		v, known, err := commspec.EvalInt(src, r, n)
		if err != nil || !known {
			return 0, false
		}
		if v < 0 || v >= n || v == r {
			// Out of range at this N (or a self-message already reported
			// statically): the protocol is not meant for this job size.
			return 0, false
		}
		return v, true
	}
	evalTag := func(src string) int {
		if src == commspec.Unknown {
			return -1
		}
		v, known, err := commspec.EvalInt(src, r, n)
		if err != nil || !known {
			return -1
		}
		return v
	}
	walk = func(nodes []*opNode) (bool, bool) {
		for _, node := range nodes {
			switch node.kind {
			case opP2P:
				p, ok := evalPartner(node.partner, node.pos)
				if !ok {
					return false, false
				}
				tag := evalTag(node.tag)
				switch node.comm {
				case commSend:
					out = append(out, simOp{kind: simSend, partner: p, tag: tag, opName: node.opName, pos: node.pos})
				case commRecv:
					out = append(out, simOp{kind: simRecv, partner: p, tag: tag, opName: node.opName, pos: node.pos})
				case commSendRecv:
					src, ok := evalPartner(node.partner2, node.pos)
					if !ok {
						return false, false
					}
					out = append(out, simOp{kind: simSendBuf, partner: p, tag: tag, opName: node.opName, pos: node.pos})
					out = append(out, simOp{kind: simRecv, partner: src, tag: tag, opName: node.opName, pos: node.pos})
				}
			case opColl:
				out = append(out, simOp{kind: simColl, opName: node.opName, pos: node.pos})
			case opBranch:
				if node.condStr != commspec.Unknown {
					v, known, err := commspec.EvalBool(node.condStr, r, n)
					if err != nil || !known {
						return false, false
					}
					arm := node.then
					if !v {
						arm = node.els
					}
					term, ok := walk(arm)
					if !ok {
						return false, false
					}
					if term {
						return true, true
					}
					continue
				}
				// Unresolvable condition. Rank-uniform ones take the same
				// arm on every rank, so preferring the communicating arm is
				// consistent; neither-arm communication (error returns,
				// bookkeeping) falls through. Rank-dependent ones cannot be
				// guessed: give up rather than invent a protocol.
				thenComm := forestHasComm(node.then)
				elsComm := forestHasComm(node.els)
				if node.condTainted && (thenComm || elsComm) {
					return false, false
				}
				var arm []*opNode
				switch {
				case thenComm:
					arm = node.then
				case elsComm:
					arm = node.els
				default:
					continue
				}
				term, ok := walk(arm)
				if !ok {
					return false, false
				}
				if term {
					return true, true
				}
			case opLoop:
				// One symbolic iteration: rendezvous matching is per-site,
				// so iteration counts cancel as long as all ranks loop
				// alike; rank-dependent trip counts are commshape findings.
				term, ok := walk(node.body)
				if !ok {
					return false, false
				}
				if term {
					return true, true
				}
			case opClosure:
				term, ok := walk(node.body)
				if !ok {
					return false, false
				}
				if term {
					return true, true
				}
			case opReturn:
				return true, true
			}
		}
		return false, true
	}
	if _, ok := walk(nodes); !ok {
		return nil, false
	}
	return out, true
}

// forestHasComm reports p2p or collective leaves (opCall edges are gone
// after expansion).
func forestHasComm(nodes []*opNode) bool {
	return subtreeHas(nodes, func(n *opNode) bool {
		return n.kind == opP2P || n.kind == opColl
	})
}

// bufMsg is one posted-but-unreceived buffered send.
type bufMsg struct {
	tag int
	pos token.Pos
}

// simulate runs the rendezvous semantics over the per-rank sequences and
// reports every way the protocol fails to drain.
func simulate(perRank [][]simOp, n int, report func(token.Pos, string, ...any)) {
	idx := make([]int, n)
	buffered := map[[2]int][]bufMsg{} // (src, dst) → FIFO
	cur := func(r int) *simOp {
		if idx[r] >= len(perRank[r]) {
			return nil
		}
		return &perRank[r][idx[r]]
	}
	tagsMatch := func(a, b int) bool { return a == -1 || b == -1 || a == b }

	for {
		moved := false
		// Buffered sends post without blocking.
		for r := 0; r < n; r++ {
			for op := cur(r); op != nil && op.kind == simSendBuf; op = cur(r) {
				key := [2]int{r, op.partner}
				buffered[key] = append(buffered[key], bufMsg{tag: op.tag, pos: op.pos})
				idx[r]++
				moved = true
			}
		}
		// Receives drain buffered messages first (FIFO per pair).
		for r := 0; r < n; r++ {
			op := cur(r)
			if op == nil || op.kind != simRecv {
				continue
			}
			key := [2]int{op.partner, r}
			q := buffered[key]
			if len(q) == 0 {
				continue
			}
			if !tagsMatch(q[0].tag, op.tag) {
				report(op.pos, "tag mismatch at N=%d: rank %d receives tag %d from rank %d but the pending message carries tag %d", n, r, op.tag, op.partner, q[0].tag)
			}
			buffered[key] = q[1:]
			idx[r]++
			moved = true
		}
		// Rendezvous: a send meets a receive pointed back at it.
		for r := 0; r < n; r++ {
			op := cur(r)
			if op == nil || op.kind != simSend {
				continue
			}
			peer := cur(op.partner)
			if peer == nil || peer.kind != simRecv || peer.partner != r {
				continue
			}
			if !tagsMatch(op.tag, peer.tag) {
				report(peer.pos, "tag mismatch at N=%d: rank %d receives tag %d from rank %d but the matching send carries tag %d", n, op.partner, peer.tag, r, op.tag)
			}
			idx[r]++
			idx[op.partner]++
			moved = true
		}
		// Collectives: an all-ranks barrier, advanced when everyone arrives.
		allAtColl := true
		for r := 0; r < n; r++ {
			op := cur(r)
			if op == nil || op.kind != simColl {
				allAtColl = false
				break
			}
		}
		if allAtColl {
			for r := 0; r < n; r++ {
				idx[r]++
			}
			moved = true
		}
		if !moved {
			break
		}
	}

	var stuck []int
	for r := 0; r < n; r++ {
		if cur(r) != nil {
			stuck = append(stuck, r)
		}
	}
	if len(stuck) == 0 {
		// Everything drained; leftover buffered sends are lost messages.
		keys := make([][2]int, 0, len(buffered))
		for k, q := range buffered {
			if len(q) > 0 {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			m := buffered[k][0]
			report(m.pos, "message from rank %d to rank %d is never received at N=%d", k[0], k[1], n)
		}
		return
	}

	// Wait-for edges: who is each stuck rank waiting on?
	waitsOn := map[int]int{}
	for _, r := range stuck {
		op := cur(r)
		if op.kind == simSend || op.kind == simRecv {
			waitsOn[r] = op.partner
		}
	}
	// Cycle detection over the (functional) wait-for graph.
	inCycle := map[int]bool{}
	for _, r := range stuck {
		seen := map[int]int{}
		path := []int{}
		cur := r
		for {
			if step, ok := seen[cur]; ok {
				cycle := path[step:]
				if len(cycle) > 1 && !inCycle[cycle[0]] {
					for _, c := range cycle {
						inCycle[c] = true
					}
					first := cycle[0]
					desc := ""
					for _, c := range cycle {
						desc += fmt.Sprintf("%d → ", c)
					}
					desc += fmt.Sprintf("%d", first)
					op := perRank[first][idx[first]]
					report(op.pos, "rendezvous deadlock at N=%d: wait-for cycle rank %s", n, desc)
				}
				break
			}
			next, ok := waitsOn[cur]
			if !ok {
				break
			}
			seen[cur] = len(path)
			path = append(path, cur)
			cur = next
		}
	}
	for _, r := range stuck {
		if inCycle[r] {
			continue
		}
		op := cur(r)
		switch op.kind {
		case simColl:
			report(op.pos, "rank %d blocks in collective %s at N=%d while other ranks never arrive", r, op.opName, n)
		case simSend:
			report(op.pos, "unmatched endpoint at N=%d: rank %d blocks in %s to rank %d with no matching receive", n, r, op.opName, op.partner)
		case simRecv:
			report(op.pos, "unmatched endpoint at N=%d: rank %d blocks in %s from rank %d with no matching send", n, r, op.opName, op.partner)
		}
	}
}
