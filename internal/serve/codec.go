package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// The request decoders are the service's untrusted-input boundary, and the
// FuzzPredictRequest/FuzzParseGear fuzzers pin their contract: any byte
// sequence either decodes into a validated request or produces a 400 —
// never a 500, never a panic, never a half-validated struct reaching the
// model layer.

// PredictRequest asks for one configuration of one kernel.
type PredictRequest struct {
	// Kernel is the lower-case NAS name ("ep", "ft", ...).
	Kernel string `json:"kernel"`
	// N is the processor count; it must lie on the kernel's campaign grid.
	N int `json:"n"`
	// F is the operating frequency (number in MHz, or "1.4ghz"/"1400mhz").
	F Gear `json:"f"`
}

// Validate reports the first structural problem with the request.
func (r PredictRequest) Validate() error {
	if r.Kernel == "" {
		return fmt.Errorf("serve: request has no kernel")
	}
	if r.N < 1 {
		return fmt.Errorf("serve: processor count n = %d", r.N)
	}
	if r.F.MHz <= 0 {
		return fmt.Errorf("serve: request has no frequency")
	}
	return nil
}

// SweepRequest asks for a kernel's full campaign grid.
type SweepRequest struct {
	Kernel string `json:"kernel"`
}

// Validate reports the first structural problem with the request.
func (r SweepRequest) Validate() error {
	if r.Kernel == "" {
		return fmt.Errorf("serve: request has no kernel")
	}
	return nil
}

// RobustnessRequest asks for a clean-fit-vs-perturbed-measurement sweep.
type RobustnessRequest struct {
	Kernel string `json:"kernel"`
	// Ns are the perturbed processor counts (on the kernel's grid).
	Ns []int `json:"ns"`
	// Magnitudes are the ascending perturbation scales.
	Magnitudes []float64 `json:"magnitudes"`
	// Chaos is a faults.ParseSpec string for the magnitude-1 knobs; empty
	// selects experiments.DefaultRobustnessFaults(Seed).
	Chaos string `json:"chaos,omitempty"`
	// Seed keys the default fault config when Chaos is empty.
	Seed uint64 `json:"seed,omitempty"`
}

// TraceRequest asks for one observed run exported as Chrome trace-event
// JSON (Perfetto-compatible).
type TraceRequest struct {
	Kernel string `json:"kernel"`
	N      int    `json:"n"`
	F      Gear   `json:"f"`
	// Chaos optionally perturbs the run (faults.ParseSpec string).
	Chaos string `json:"chaos,omitempty"`
}

// Validate reports the first structural problem with the request.
func (r TraceRequest) Validate() error {
	return PredictRequest{Kernel: r.Kernel, N: r.N, F: r.F}.Validate()
}

// errorBody is the uniform JSON error payload.
type errorBody struct {
	Error string `json:"error"`
}

// decode reads one strict JSON document into dst: unknown fields, trailing
// data and bodies over the server's byte cap are all client errors. The
// http.MaxBytesReader wrapping happens in the handler, so an oversized body
// surfaces here as a decode error rather than a connection reset.
func decode(r io.Reader, dst any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return fmt.Errorf("serve: request body over %d bytes", maxErr.Limit)
		}
		return fmt.Errorf("serve: bad request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("serve: trailing data after the JSON document")
	}
	return nil
}

// writeJSON marshals v followed by one newline. The response structs
// contain only scalars and slices, so the bytes are a deterministic
// function of the values — the property the contract goldens pin.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Only a programming error (unmarshalable type) lands here.
		http.Error(w, `{"error":"serve: encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// writeError renders err as the uniform JSON error payload. When w is the
// instrumented statusWriter, the message is also captured for the request's
// wide event, so the event log explains its non-2xx statuses.
func writeError(w http.ResponseWriter, status int, err error) {
	if sw, ok := w.(*statusWriter); ok && sw.errMsg == "" {
		sw.errMsg = err.Error()
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}
