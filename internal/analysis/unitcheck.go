package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// UnitCheck performs dimensional analysis over the typed units layer
// (internal/units). Go's named types already stop a Hertz from being
// assigned to a Seconds, but three mistakes still compile:
//
//   - an explicit conversion between unit types — units.Seconds(f) where f
//     is a Hertz compiles like any numeric conversion, silently relabeling
//     a frequency as a duration;
//   - arithmetic whose derived dimension disagrees with its static type —
//     t*t has static type Seconds but dimension s², so t + t*t and t > t*t
//     type-check while mixing unlike quantities;
//   - a bare scale literal (1e6, 1e-9, …) multiplying a dimensioned value,
//     re-scaling it outside the blessed helpers the units package provides
//     (MHz, Sec, Nanos, Micros).
//
// The analyzer seeds dimensions from the units package's named types,
// derives them through arithmetic (Hz·s → cycles, W·s → J, same-dimension
// division → dimensionless) and reports the three classes above. The
// conversion float64(x) deliberately discards the dimension and is the
// explicit, visible escape hatch into untyped code; expressions of plain
// float64 type carry no dimension and are never flagged. Files of the
// units package itself are exempt — scale conversions are its job.
var UnitCheck = &Analyzer{
	Name: "unitcheck",
	Doc:  "dimension mismatch in typed-units arithmetic or conversion",
	Run:  runUnitCheck,
	Explain: `Arithmetic over the typed units layer must be dimensionally
consistent: adding unlike dimensions (seconds + hertz), converting across
dimensions (Seconds(f) for f a frequency), and scaling by bare non-unit
literals are all flagged. float64(x) is the explicit escape hatch and is
never flagged; the units package itself is exempt.`,
	Example: `lat := units.Seconds(freq)  // flagged: hertz converted to seconds
sum := dt + f               // flagged: seconds + hertz`,
}

// unitsPkgSuffix identifies the units package by import-path suffix so the
// seeded testdata package (loaded under the same module) resolves the same
// types the repository proper does.
const unitsPkgSuffix = "internal/units"

// dimension is a physical dimension: integer exponents over the base
// quantities the model computes with, plus a power-of-ten scale exponent
// relative to the SI member of the family (Nanos carries exp10 = -9).
// Integer exponents keep every comparison exact.
type dimension struct {
	sec, cyc, joule, volt int
	exp10                 int
}

// dimless is the dimension of a pure number.
var dimless = dimension{}

// unitDims maps each named type of the units package to its dimension.
var unitDims = map[string]dimension{
	"Hertz":   {cyc: 1, sec: -1},
	"Seconds": {sec: 1},
	"Nanos":   {sec: 1, exp10: -9},
	"Cycles":  {cyc: 1},
	"Watts":   {joule: 1, sec: -1},
	"Joules":  {joule: 1},
	"Volts":   {volt: 1},
	"Ratio":   {},
}

// magicExp10 maps the bare scale literals unitcheck polices to their
// power-of-ten exponent.
var magicExp10 = map[float64]int{
	1e3: 3, 1e6: 6, 1e9: 9, 1e-3: -3, 1e-6: -6, 1e-9: -9,
}

// sameBase reports whether two dimensions agree up to scale.
func (d dimension) sameBase(o dimension) bool {
	return d.sec == o.sec && d.cyc == o.cyc && d.joule == o.joule && d.volt == o.volt
}

func (d dimension) mul(o dimension) dimension {
	return dimension{d.sec + o.sec, d.cyc + o.cyc, d.joule + o.joule, d.volt + o.volt, d.exp10 + o.exp10}
}

func (d dimension) div(o dimension) dimension {
	return dimension{d.sec - o.sec, d.cyc - o.cyc, d.joule - o.joule, d.volt - o.volt, d.exp10 - o.exp10}
}

// String renders the dimension compactly: "s", "cyc·s⁻¹" prints as
// "cyc/s", Nanos as "1e-9·s", a square as "s^2".
func (d dimension) String() string {
	var num, den []string
	part := func(sym string, exp int) {
		switch {
		case exp == 1:
			num = append(num, sym)
		case exp > 1:
			num = append(num, fmt.Sprintf("%s^%d", sym, exp))
		case exp == -1:
			den = append(den, sym)
		case exp < -1:
			den = append(den, fmt.Sprintf("%s^%d", sym, -exp))
		}
	}
	part("s", d.sec)
	part("cyc", d.cyc)
	part("J", d.joule)
	part("V", d.volt)
	s := strings.Join(num, "·")
	if s == "" {
		s = "1"
	}
	if len(den) > 0 {
		s += "/" + strings.Join(den, "·")
	}
	if d.exp10 != 0 {
		s = fmt.Sprintf("1e%d·%s", d.exp10, s)
	}
	if s == "1" {
		return "dimensionless"
	}
	return s
}

// unitDimOf returns the dimension of a units-package named type.
func unitDimOf(t types.Type) (dimension, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return dimension{}, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), unitsPkgSuffix) {
		return dimension{}, false
	}
	d, ok := unitDims[obj.Name()]
	return d, ok
}

func runUnitCheck(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path, unitsPkgSuffix) {
		return // the units package is where scale conversions live
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				checkUnitBinary(pass, x)
			case *ast.CallExpr:
				checkUnitConversion(pass, x)
			}
			return true
		})
	}
}

// deriveDim computes the physical dimension of an expression, or ok=false
// when it has none to speak of: plain float64 values, constants (untyped
// constants adapt to either operand), and anything routed through the
// float64() escape hatch.
func deriveDim(pass *Pass, e ast.Expr) (dimension, bool) {
	e = ast.Unparen(e)
	if isConstExpr(pass, e) {
		return dimension{}, false
	}
	switch x := e.(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.MUL, token.QUO:
			ld, lok := deriveDim(pass, x.X)
			rd, rok := deriveDim(pass, x.Y)
			// A constant or dimensionless-typed factor scales without
			// changing the dimension.
			if !lok && isConstExpr(pass, x.X) {
				ld, lok = dimless, true
			}
			if !rok && isConstExpr(pass, x.Y) {
				rd, rok = dimless, true
			}
			if !lok || !rok {
				return dimension{}, false
			}
			if x.Op == token.MUL {
				return ld.mul(rd), true
			}
			return ld.div(rd), true
		case token.ADD, token.SUB:
			ld, lok := deriveDim(pass, x.X)
			rd, rok := deriveDim(pass, x.Y)
			if lok && rok && ld == rd {
				return ld, true
			}
			return dimension{}, false
		}
		return dimension{}, false
	case *ast.UnaryExpr:
		if x.Op == token.SUB || x.Op == token.ADD {
			return deriveDim(pass, x.X)
		}
		return dimension{}, false
	case *ast.CallExpr:
		if len(x.Args) == 1 && pass.typeExprIsType(x.Fun) {
			if d, ok := unitDimOf(pass.TypeOf(x.Fun)); ok {
				return d, true
			}
			return dimension{}, false // float64(x) and friends: the escape hatch
		}
	}
	if t := pass.TypeOf(e); t != nil {
		return unitDimOf(t)
	}
	return dimension{}, false
}

// isConstExpr reports whether e is a compile-time constant.
func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// magicScaleLit returns the power-of-ten exponent when e is a bare scale
// literal (1e3, 1e6, 1e9, 1e-3, 1e-6, 1e-9), possibly parenthesized.
func magicScaleLit(pass *Pass, e ast.Expr) (int, bool) {
	e = ast.Unparen(e)
	if _, ok := e.(*ast.BasicLit); !ok {
		return 0, false
	}
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	f, _ := constant.Float64Val(constant.ToFloat(tv.Value))
	exp, ok := magicExp10[f]
	return exp, ok
}

// containsMagicScaleLit reports whether a bare scale literal appears
// anywhere inside e, returning the first one's exponent.
func containsMagicScaleLit(pass *Pass, e ast.Expr) (int, bool) {
	found, exp := false, 0
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := n.(ast.Expr); ok {
			if x, ok := magicScaleLit(pass, lit); ok {
				exp, found = x, true
				return false
			}
		}
		return true
	})
	return exp, found
}

// checkUnitBinary reports addition/subtraction/comparison of unlike
// dimensions and bare scale literals multiplying a dimensioned value.
func checkUnitBinary(pass *Pass, x *ast.BinaryExpr) {
	switch x.Op {
	case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		ld, lok := deriveDim(pass, x.X)
		rd, rok := deriveDim(pass, x.Y)
		if !lok || !rok || ld == rd {
			return
		}
		what := "mixes scales"
		if !ld.sameBase(rd) {
			what = "mixes dimensions"
		}
		pass.Reportf(x.OpPos, "%q %s: %s %s %s", x.Op, what, ld, x.Op, rd)
	case token.MUL, token.QUO:
		for _, pair := range [2][2]ast.Expr{{x.X, x.Y}, {x.Y, x.X}} {
			lit, other := pair[0], pair[1]
			exp, ok := magicScaleLit(pass, lit)
			if !ok {
				continue
			}
			if d, ok := deriveDim(pass, other); ok {
				pass.Reportf(lit.Pos(),
					"bare scale literal 1e%d rescales a dimensioned value (%s); use a units helper (MHz, GHz, Sec, Nanos, Micros)",
					exp, d)
				return
			}
		}
	}
}

// checkUnitConversion reports conversions to a units type that change the
// operand's dimension or scale, and conversions whose operand hides a bare
// scale literal (units.Hertz(mhz * 1e6)).
func checkUnitConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 || !pass.typeExprIsType(call.Fun) {
		return
	}
	target := pass.TypeOf(call.Fun)
	td, ok := unitDimOf(target)
	if !ok {
		return // float64(x) and other non-units targets: the escape hatch
	}
	arg := call.Args[0]
	if isConstExpr(pass, arg) {
		return // units.Seconds(10): seeding a dimension onto a pure number
	}
	name := "units." + target.(*types.Named).Obj().Name()
	if ad, ok := deriveDim(pass, arg); ok {
		switch {
		case ad == td:
			return // redundant but harmless re-assertion of the same unit
		case !ad.sameBase(td):
			pass.Reportf(call.Pos(),
				"cross-dimension conversion %s(%s): %s → %s; convert through float64() if the relabeling is intentional",
				name, render(arg), ad, td)
		default:
			pass.Reportf(call.Pos(),
				"conversion %s(%s) changes scale (%s → %s) outside the blessed helpers; use Sec/Nanos/MHz",
				name, render(arg), ad, td)
		}
		return
	}
	if exp, ok := containsMagicScaleLit(pass, arg); ok {
		pass.Reportf(call.Pos(),
			"scale literal 1e%d inside conversion to %s; use a blessed helper (units.MHz, units.GHz, NanosToSec, …)",
			exp, name)
	}
}
