package lmbench

import (
	"testing"

	"pasp/internal/machine"
	"pasp/internal/stats"
	"pasp/internal/units"
)

func TestLatencyPlateaus(t *testing.T) {
	m := machine.PentiumM()
	f := units.GHz(1)
	l1, err := Latency(m, f, m.L1Bytes/2)
	if err != nil {
		t.Fatal(err)
	}
	wantL1 := m.SecPerIns(machine.L1, f).Nanos()
	if !stats.AlmostEqual(float64(l1), float64(wantL1), 0.05) {
		t.Errorf("L1 plateau %g ns, want ≈ %g ns", float64(l1), float64(wantL1))
	}
	mem, err := Latency(m, f, 4*m.L2Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(float64(mem), float64(m.MemNanos(f)), 0.05) {
		t.Errorf("memory plateau %g ns, want ≈ %g ns", float64(mem), float64(m.MemNanos(f)))
	}
}

func TestSweepMonotoneAcrossLevels(t *testing.T) {
	m := machine.PentiumM()
	pts, err := Sweep(m, 600e6, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 10 {
		t.Fatalf("sweep too short: %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Nanos+1e-9 < pts[i-1].Nanos {
			t.Errorf("latency decreased at ws=%d: %g → %g", pts[i].WSBytes, pts[i-1].Nanos, pts[i].Nanos)
		}
	}
	// The last point (8 MB) must sit at memory latency, the first at L1.
	if !stats.AlmostEqual(float64(pts[len(pts)-1].Nanos), float64(m.MemNanos(600e6)), 0.05) {
		t.Errorf("tail latency %g, want memory %g", float64(pts[len(pts)-1].Nanos), float64(m.MemNanos(600e6)))
	}
}

// Table 6 reproduction through the measurement path: ON-chip levels scale
// with frequency, memory does not (within a bus regime), and the 600 MHz
// bus drop appears.
func TestLevelNanosTable6(t *testing.T) {
	m := machine.PentiumM()
	at600, err := LevelNanos(m, 600e6)
	if err != nil {
		t.Fatal(err)
	}
	at1200, err := LevelNanos(m, 1200e6)
	if err != nil {
		t.Fatal(err)
	}
	// ON-chip: halving comes from doubling the clock.
	for _, l := range []machine.Level{machine.Reg, machine.L1, machine.L2} {
		if !stats.AlmostEqual(float64(at600[l]), 2*float64(at1200[l]), 0.05) {
			t.Errorf("%v: %g ns at 600 vs %g ns at 1200; want 2×", l, float64(at600[l]), float64(at1200[l]))
		}
	}
	// OFF-chip: 140 ns at 600 MHz, 110 ns at 1200 MHz (bus drop).
	if !stats.AlmostEqual(float64(at600[machine.Mem]), 140, 0.05) {
		t.Errorf("mem at 600 MHz = %g ns, want ≈ 140", float64(at600[machine.Mem]))
	}
	if !stats.AlmostEqual(float64(at1200[machine.Mem]), 110, 0.05) {
		t.Errorf("mem at 1200 MHz = %g ns, want ≈ 110", float64(at1200[machine.Mem]))
	}
}

func TestLatencyRejectsTinyWorkingSet(t *testing.T) {
	if _, err := Latency(machine.PentiumM(), 600e6, 16); err == nil {
		t.Error("working set below line size accepted")
	}
}
