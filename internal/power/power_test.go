package power

import (
	"math"
	"testing"
	"testing/quick"

	"pasp/internal/units"
)

func TestPentiumMTable2(t *testing.T) {
	p := PentiumM()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// The five operating points of Table 2.
	want := []PState{
		{units.MHz(600), 0.956},
		{units.MHz(800), 1.180},
		{units.MHz(1000), 1.308},
		{units.MHz(1200), 1.436},
		{units.MHz(1400), 1.484},
	}
	if len(p.States) != len(want) {
		t.Fatalf("got %d states, want %d", len(p.States), len(want))
	}
	for i, w := range want {
		if p.States[i] != w {
			t.Errorf("state %d = %v, want %v", i, p.States[i], w)
		}
	}
	if p.BaseState().Freq != units.MHz(600) {
		t.Errorf("BaseState = %v, want 600 MHz", p.BaseState())
	}
	if p.TopState().Freq != units.MHz(1400) {
		t.Errorf("TopState = %v, want 1400 MHz", p.TopState())
	}
}

func TestStateAt(t *testing.T) {
	p := PentiumM()
	s, err := p.StateAt(units.MHz(800))
	if err != nil {
		t.Fatalf("StateAt(800MHz): %v", err)
	}
	if s.Voltage != 1.180 {
		t.Errorf("voltage = %g, want 1.180", s.Voltage)
	}
	if _, err := p.StateAt(units.MHz(700)); err == nil {
		t.Error("StateAt(700MHz) succeeded, want error")
	}
	// Frequencies within 0.5% resolve to the same state.
	if _, err := p.StateAt(units.MHz(801)); err != nil {
		t.Errorf("StateAt(801MHz): %v", err)
	}
}

func TestDynamicPowerMonotone(t *testing.T) {
	p := PentiumM()
	prev := units.Watts(0)
	for _, s := range p.States {
		d := p.Dynamic(s)
		if d <= prev {
			t.Errorf("dynamic power not increasing at %v: %g ≤ %g", s, d, prev)
		}
		prev = d
	}
	// Top state should land near the Pentium M's ~21 W TDP.
	top := p.Dynamic(p.TopState())
	if top < 15 || top > 27 {
		t.Errorf("top-state dynamic power %g W outside plausible 15–27 W", top)
	}
	// Base state should be a small fraction of the top state: cubic-ish law.
	base := p.Dynamic(p.BaseState())
	if ratio := top / base; ratio < 3 {
		t.Errorf("top/base dynamic power ratio %g, want ≥ 3 (V²f scaling)", ratio)
	}
}

func TestCPUPowerUtilization(t *testing.T) {
	p := PentiumM()
	s := p.TopState()
	idle := p.CPUPower(s, 0)
	busy := p.CPUPower(s, 1)
	half := p.CPUPower(s, 0.5)
	if !(idle < half && half < busy) {
		t.Errorf("power not monotone in utilization: idle=%g half=%g busy=%g", idle, half, busy)
	}
	// Clamping outside [0,1].
	if got := p.CPUPower(s, -1); got != idle {
		t.Errorf("util=-1 power %g, want idle %g", got, idle)
	}
	if got := p.CPUPower(s, 2); got != busy {
		t.Errorf("util=2 power %g, want busy %g", got, busy)
	}
}

func TestNodePowerIncludesBase(t *testing.T) {
	p := PentiumM()
	s := p.BaseState()
	if diff := p.NodePower(s, 1) - p.CPUPower(s, 1); math.Abs(float64(diff)-p.Base) > 1e-12 {
		t.Errorf("node−cpu power = %g, want Base %g", diff, p.Base)
	}
}

func TestClampState(t *testing.T) {
	p := PentiumM()
	cases := []struct {
		in   units.Hertz
		want units.Hertz
	}{
		{units.MHz(100), units.MHz(600)},
		{units.MHz(600), units.MHz(600)},
		{units.MHz(601), units.MHz(800)},
		{units.MHz(1100), units.MHz(1200)},
		{units.MHz(1400), units.MHz(1400)},
		{units.MHz(2000), units.MHz(1400)},
	}
	for _, c := range cases {
		if got := p.ClampState(c.in); got.Freq != c.want {
			t.Errorf("ClampState(%.0fMHz) = %.0fMHz, want %.0fMHz", c.in.MHz(), got.Freq.MHz(), c.want.MHz())
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	good := PentiumM()
	cases := map[string]func(*Profile){
		"no states":        func(p *Profile) { p.States = nil },
		"zero frequency":   func(p *Profile) { p.States[0].Freq = 0 },
		"zero voltage":     func(p *Profile) { p.States[2].Voltage = 0 },
		"unsorted":         func(p *Profile) { p.States[1].Freq = units.MHz(500) },
		"voltage inverted": func(p *Profile) { p.States[1].Voltage = 0.5 },
		"zero ceff":        func(p *Profile) { p.CEff = 0 },
		"negative static":  func(p *Profile) { p.Static = -1 },
		"idle factor >1":   func(p *Profile) { p.IdleFactor = 1.5 },
	}
	for name, mutate := range cases {
		p := good
		p.States = append([]PState(nil), good.States...)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", name)
		}
	}
}

func TestEDPMetrics(t *testing.T) {
	if got := EDP(10, 2); got != 20 {
		t.Errorf("EDP(10,2) = %g, want 20", got)
	}
	if got := ED2P(10, 2); got != 40 {
		t.Errorf("ED2P(10,2) = %g, want 40", got)
	}
}

// Property: for any utilization in [0,1] and any P-state, node power is
// between the idle floor and the busy ceiling, and never below Base.
func TestNodePowerBoundsProperty(t *testing.T) {
	p := PentiumM()
	f := func(stateIdx uint8, utilRaw uint16) bool {
		s := p.States[int(stateIdx)%len(p.States)]
		util := float64(utilRaw) / 65535
		w := p.NodePower(s, util)
		return w >= p.NodePower(s, 0) && w <= p.NodePower(s, 1) && float64(w) > p.Base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: higher P-states dominate lower ones in busy power.
func TestBusyPowerMonotoneInStateProperty(t *testing.T) {
	p := PentiumM()
	f := func(a, b uint8) bool {
		i, j := int(a)%len(p.States), int(b)%len(p.States)
		if i > j {
			i, j = j, i
		}
		return p.CPUPower(p.States[i], 1) <= p.CPUPower(p.States[j], 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
