// The scaling harness: per-engine sweeps of the scaling kernels past the
// paper's 16 nodes, up to N=1024. `make bench-scale` (PASP_BENCH_SUITE=scale)
// runs it and tees the rows through cmd/pabench into BENCH_2.json, the
// scaling companion to the reproduction artifact BENCH_1.json:
//
//	BenchmarkScale/<kernel>/<engine>/n<NNNN>
//
// Every row reports the simulated seconds and joules at the grid's base and
// top gears alongside the real ns/op, so one artifact answers both "what
// does the model predict at 1024 ranks" and "what does simulating it cost"
// — per engine, which is the measured form of the ISSUE's 10× claim.
//
// Each row sweeps its (single-N, two-gear) grid through cluster.Sweep, so
// the event-engine rows exercise the record/replay frequency axis and the
// campaign worker pool exactly as the full reproduction does. Rows the
// kernel's decomposition cannot reach (FT needs Ny and Nz divisible by N,
// so it stops at 256) skip with the Validate reason rather than silently
// shrinking the matrix.
package pasp

import (
	"context"
	"fmt"
	"os"
	"testing"

	"pasp/internal/cluster"
	"pasp/internal/experiments"
	"pasp/internal/mpi"
)

// scaleSuite gates the scaling harness: it runs only under
// PASP_BENCH_SUITE=scale, keeping the BENCH_1.json row set stable.
func scaleSuite(b *testing.B) experiments.Suite {
	b.Helper()
	if v := os.Getenv("PASP_BENCH_SUITE"); v != "scale" {
		b.Skipf("scaling harness runs under PASP_BENCH_SUITE=scale (have %q)", v)
	}
	return experiments.Scale()
}

// scaleValidate reports whether the suite's class of the named scaling
// kernel is runnable on n ranks.
func scaleValidate(s experiments.Suite, kernel string, n int) error {
	switch kernel {
	case "ft":
		return s.FT.Validate(n)
	case "cg":
		return s.CG.Validate(n)
	}
	return fmt.Errorf("scale harness: unknown kernel %q", kernel)
}

func BenchmarkScale(b *testing.B) {
	s := scaleSuite(b)
	for _, kernel := range []string{"ft", "cg"} {
		k, err := s.Kernel(kernel)
		if err != nil {
			b.Fatal(err)
		}
		for _, eng := range []mpi.Engine{mpi.EngineGoroutine, mpi.EngineEvent} {
			for _, n := range s.Grid.Ns {
				b.Run(fmt.Sprintf("%s/%s/n%04d", kernel, eng, n), func(b *testing.B) {
					if err := scaleValidate(s, kernel, n); err != nil {
						b.Skipf("decomposition limit: %v", err)
					}
					p := s.Platform
					p.Engine = eng
					g := cluster.Grid{Ns: []int{n}, MHz: s.Grid.MHz}
					for i := 0; i < b.N; i++ {
						cells, err := cluster.Sweep(context.Background(), p, g, k.Run)
						if err != nil {
							b.Fatal(err)
						}
						for _, c := range cells {
							b.ReportMetric(c.Res.Seconds, fmt.Sprintf("simsec@%.0f", c.MHz))
							b.ReportMetric(c.Res.Joules, fmt.Sprintf("simJ@%.0f", c.MHz))
						}
					}
				})
			}
		}
	}
}
