package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseGear parses a frequency gear into megahertz. It accepts the repo's
// CLI conventions — "1.4ghz", "1400mhz" or a bare number taken as MHz —
// case-insensitively and with surrounding whitespace. The result is always
// finite and positive; everything else (NaN, Inf, zero, negative, empty,
// trailing garbage) is an error, so a request decoder built on ParseGear
// can never let a non-physical frequency into the model layer.
func ParseGear(s string) (float64, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	scale := 1.0
	switch {
	case strings.HasSuffix(t, "ghz"):
		t, scale = strings.TrimSuffix(t, "ghz"), 1000
	case strings.HasSuffix(t, "mhz"):
		t = strings.TrimSuffix(t, "mhz")
	}
	t = strings.TrimSpace(t)
	if t == "" {
		return 0, fmt.Errorf("serve: empty frequency %q", s)
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: bad frequency %q (want e.g. 1.4ghz, 1400mhz or 1400)", s)
	}
	v *= scale
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return 0, fmt.Errorf("serve: non-physical frequency %q", s)
	}
	return v, nil
}

// Gear is a frequency in a JSON request: either a number (megahertz) or a
// string in any ParseGear form. The zero value is invalid, so a request
// that omits the field fails validation instead of defaulting silently.
type Gear struct {
	// MHz is the parsed frequency in megahertz; 0 means absent.
	MHz float64
}

// UnmarshalJSON accepts 1400, "1400", "1400mhz" or "1.4ghz".
func (g *Gear) UnmarshalJSON(data []byte) error {
	s := strings.TrimSpace(string(data))
	if s == "null" {
		return fmt.Errorf("serve: frequency must not be null")
	}
	if strings.HasPrefix(s, `"`) {
		var str string
		if err := json.Unmarshal(data, &str); err != nil {
			return err
		}
		mhz, err := ParseGear(str)
		if err != nil {
			return err
		}
		g.MHz = mhz
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	// encoding/json already rejects the NaN/Inf literals, so only range
	// needs checking here.
	if v <= 0 {
		return fmt.Errorf("serve: non-physical frequency %s", s)
	}
	g.MHz = v
	return nil
}

// MarshalJSON renders the gear as its megahertz number.
func (g Gear) MarshalJSON() ([]byte, error) {
	return json.Marshal(g.MHz)
}
