// Command paload drives a running paserve with a deterministic load
// schedule and reports latency percentiles and the status breakdown.
//
// Usage:
//
//	paload -url http://127.0.0.1:8080 [-qps 200] [-duration 10s]
//	       [-mix predict|quick] [-kernel ft] [-n 4] [-f 1400mhz]
//	       [-seed 1] [-concurrency 128] [-strict] [-json report.json]
//
// The mix names a weighted endpoint blend: "predict" is 100% POST /predict
// for the flagged configuration (the cache-hit throughput test), "quick"
// blends predict with /sweep, /healthz and /metrics. Which endpoint each
// request hits is a pure function of (seed, request index) — a counter
// PRNG, the same construction as the fault injector — so two runs with the
// same flags issue the identical request sequence.
//
// Every request carries a deterministic X-Request-ID (a pure function of
// seed and request index) and the harness asserts the server echoes each ID
// exactly once; mismatches and duplicates land in the report.
//
// With -strict the exit status is 1 unless every request completed with a
// 2xx status, zero transport errors, and every request ID echoed exactly
// once: the CI smoke gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pasp/internal/serve"
)

// predictBody renders the /predict (and /trace) request body.
func predictBody(kernel string, n int, mhz float64) []byte {
	b, err := json.Marshal(serve.PredictRequest{Kernel: kernel, N: n, F: serve.Gear{MHz: mhz}})
	if err != nil {
		panic(err) // a struct of scalars cannot fail to marshal
	}
	return b
}

// mixTargets resolves the -mix flag into a weighted target list.
func mixTargets(mix, kernel string, n int, mhz float64) ([]serve.Target, error) {
	predict := serve.Target{Name: "predict", Method: "POST", Path: "/predict",
		Body: predictBody(kernel, n, mhz), Weight: 1}
	switch mix {
	case "predict":
		return []serve.Target{predict}, nil
	case "quick":
		predict.Weight = 6
		sweepBody, err := json.Marshal(serve.SweepRequest{Kernel: kernel})
		if err != nil {
			return nil, err
		}
		return []serve.Target{
			predict,
			{Name: "sweep", Method: "POST", Path: "/sweep", Body: sweepBody, Weight: 1},
			{Name: "healthz", Method: "GET", Path: "/healthz", Weight: 2},
			{Name: "metrics", Method: "GET", Path: "/metrics", Weight: 1},
		}, nil
	default:
		return nil, fmt.Errorf("paload: unknown mix %q (have predict, quick)", mix)
	}
}

// run executes the load driver against args, writing the report to stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("paload", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "paserve base URL")
	qps := fs.Float64("qps", 200, "offered request rate")
	duration := fs.Duration("duration", 10*time.Second, "run length")
	mix := fs.String("mix", "predict", "request blend: predict or quick")
	kernel := fs.String("kernel", "ft", "kernel for predict/sweep bodies")
	n := fs.Int("n", 4, "processor count for predict bodies")
	freq := fs.String("f", "1400mhz", "frequency for predict bodies: 1.4ghz, 1400mhz or plain MHz")
	seed := fs.Uint64("seed", 1, "schedule seed")
	concurrency := fs.Int("concurrency", 128, "outstanding-request cap")
	strict := fs.Bool("strict", false, "exit 1 on any transport error or non-2xx response")
	jsonOut := fs.String("json", "", "write the report as JSON here")
	if err := fs.Parse(args); err != nil {
		return err
	}

	mhz, err := serve.ParseGear(*freq)
	if err != nil {
		return err
	}
	targets, err := mixTargets(*mix, *kernel, *n, mhz)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := serve.RunLoad(ctx, serve.LoadConfig{
		BaseURL:     strings.TrimRight(*url, "/"),
		QPS:         *qps,
		Duration:    *duration,
		Targets:     targets,
		Seed:        *seed,
		Concurrency: *concurrency,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, rep.String())

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", *jsonOut)
	}

	if *strict && (rep.Transport > 0 || rep.Non2xx > 0 || rep.IDMismatches > 0 || rep.IDDuplicates > 0) {
		return fmt.Errorf("paload: strict run saw %d transport error(s), %d non-2xx response(s), %d request-id mismatch(es), %d duplicate id(s)",
			rep.Transport, rep.Non2xx, rep.IDMismatches, rep.IDDuplicates)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "paload: %v\n", err)
		os.Exit(1)
	}
}
