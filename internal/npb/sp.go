package npb

import (
	"fmt"

	"pasp/internal/machine"
	"pasp/internal/mpi"
)

// SP is the NAS scalar-ADI application class: implicit time steps of the
// 3-D heat equation by alternating-direction factorization, each step
// solving independent tridiagonal systems along x, y and z (the Thomas
// algorithm). With the domain in slabs over z, the x and y line solves are
// local, but the z solve's forward elimination and back substitution are
// inherently serial across ranks; the kernel pipelines them in column
// chunks, so rank r works on chunk c while rank r−1 already forwards chunk
// c+1 — a coarser-grained wavefront than LU's plane sweeps and a third
// distinct communication pattern in the suite.
//
// (NPB's SP solves five coupled pentadiagonal systems; the reproduction
// solves one scalar tridiagonal system per line with the same sweep and
// communication structure, and carries the five-component cost in the
// timed workload and message sizes, as LU does.)
type SP struct {
	// N is the interior grid points per side.
	N int
	// Steps is the number of ADI time steps.
	Steps int
	// Sigma is the implicit step coefficient σ = κ·dt/h²; 0 selects 0.5.
	Sigma float64
	// Chunks is the pipeline granularity of the z solve: the n² lines are
	// processed in this many batches. 0 selects 8.
	Chunks int
	// Ncomp is the component multiplier for the timed workload and message
	// sizes (NPB carries 5 solution variables). 0 selects 5.
	Ncomp int
}

// Per-cell instruction mix for one tridiagonal sweep over one axis
// (forward elimination + back substitution, ~9 flops per unknown), carrying
// the Ncomp multiplier at billing time.
const (
	spCellReg = 9.0
	spCellL1  = 7.0
	spCellL2  = 0.4
	spCellMem = 0.5
)

// SP message tags.
const (
	spTagForward = 90
	spTagBack    = 91
)

// SPResult is the kernel's verifiable outcome.
type SPResult struct {
	// Heat0 and Heat are the field sums before and after the steps; with
	// zero boundaries, heat decays monotonically toward zero.
	Heat0, Heat float64
	// Checksum is the final field's sampled checksum (rank invariant).
	Checksum float64
}

// Name returns the kernel's NAS name.
func (s SP) Name() string { return "SP" }

func (s SP) sigma() float64 {
	if s.Sigma == 0 {
		return 0.5
	}
	return s.Sigma
}

func (s SP) chunks() int {
	if s.Chunks == 0 {
		return 8
	}
	return s.Chunks
}

func (s SP) ncomp() int {
	if s.Ncomp == 0 {
		return 5
	}
	return s.Ncomp
}

// Validate reports an error for unusable parameters on n ranks.
func (s SP) Validate(n int) error {
	if s.N < 4 {
		return fmt.Errorf("npb: SP grid %d, want ≥ 4", s.N)
	}
	if s.Steps < 1 {
		return fmt.Errorf("npb: SP steps %d, want ≥ 1", s.Steps)
	}
	if s.sigma() <= 0 {
		return fmt.Errorf("npb: SP sigma %g, want > 0", s.sigma())
	}
	if s.chunks() < 1 || s.chunks() > s.N*s.N {
		return fmt.Errorf("npb: SP chunks %d outside [1, N²]", s.chunks())
	}
	if s.ncomp() < 1 {
		return fmt.Errorf("npb: SP ncomp %d, want ≥ 1", s.Ncomp)
	}
	if s.N/n < 1 {
		return fmt.Errorf("npb: SP grid %d too small for %d ranks", s.N, n)
	}
	return nil
}

// Run executes SP on the world.
func (s SP) Run(w mpi.World) (SPResult, *mpi.Result, error) {
	if err := s.Validate(w.N); err != nil {
		return SPResult{}, nil, err
	}
	var out SPResult
	res, err := mpi.Run(w, func(c *mpi.Ctx) error {
		r, err := s.rank(c)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = r
		}
		return nil
	})
	if err != nil {
		return SPResult{}, nil, err
	}
	return out, res, nil
}

// spState is one rank's slab: planes [zlo, zhi) of an n×n×n field.
type spState struct {
	sp       SP
	c        *mpi.Ctx
	n        int
	zlo, zhi int
	u        []float64 // lz × n × n, interior only (boundaries are zero)
	sigma    float64
}

func (st *spState) lz() int { return st.zhi - st.zlo }

func (st *spState) idx(p, j, i int) int { return (p*st.n+j)*st.n + i }

// billCells accounts cells tridiagonal-sweep cell updates.
func (st *spState) billCells(cells float64) error {
	k := cells * float64(st.sp.ncomp())
	return st.c.Compute(machine.W(k*spCellReg, k*spCellL1, k*spCellL2, k*spCellMem))
}

// solveLocalLines solves (1+2σ)x_i − σx_{i−1} − σx_{i+1} = rhs_i for every
// line along a local axis. lines indexes the orthogonal plane; stride walks
// along the axis; length is the line length. The solve happens in place.
func (st *spState) solveLocalLines(a []float64, base func(line int) int, stride, length, lines int) {
	sig := st.sigma
	diag := 1 + 2*sig
	cp := make([]float64, length)
	for ln := 0; ln < lines; ln++ {
		b0 := base(ln)
		// Thomas forward elimination.
		//palint:ignore floatdiv -- diag = 1+2σ >= 1: the system is diagonally dominant for any σ >= 0
		cPrev := -sig / diag
		a[b0] /= diag
		cp[0] = cPrev
		for i := 1; i < length; i++ {
			id := b0 + i*stride
			m := diag - (-sig)*cp[i-1]
			cp[i] = -sig / m
			a[id] = (a[id] + sig*a[id-stride]) / m
		}
		// Back substitution.
		for i := length - 2; i >= 0; i-- {
			id := b0 + i*stride
			a[id] -= cp[i] * a[id+stride]
		}
	}
}

// solveZ performs the distributed tridiagonal solve along z with chunked
// pipelining: forward elimination flows from rank 0 upward, back
// substitution flows back down, one message of chunk-width boundary values
// per direction per chunk.
func (st *spState) solveZ(a []float64) error {
	n, lz := st.n, st.lz()
	nranks, rank := st.c.Size(), st.c.Rank()
	sig := st.sigma
	diag := 1 + 2*sig
	total := n * n
	nchunks := st.sp.chunks()
	if nchunks > total {
		nchunks = total
	}
	// cp holds the c' coefficients for every line and local plane.
	cp := make([]float64, lz*total)
	ncomp := st.sp.ncomp()

	for ch := 0; ch < nchunks; ch++ {
		lo := total * ch / nchunks
		hi := total * (ch + 1) / nchunks
		width := hi - lo
		// Forward elimination: receive (c', d') of the plane below.
		prevC := make([]float64, width)
		prevD := make([]float64, width)
		// Unconditional: every rank walks the same phase sequence even when
		// its rank skips the transfer, or per-(rank, phase) attribution
		// diverges (commshape).
		st.c.SetPhase("sp-z-forward")
		if rank > 0 {
			got, err := st.c.Recv(rank-1, spTagForward)
			if err != nil {
				return err
			}
			copy(prevC, got[:width])
			copy(prevD, got[width:2*width])
		} else {
			for i := range prevC {
				prevC[i] = 0
				prevD[i] = 0
			}
		}
		st.c.SetPhase("sp-solve-z")
		first := rank == 0
		for p := 0; p < lz; p++ {
			for q := lo; q < hi; q++ {
				id := p*total + q
				var m float64
				if p == 0 && first {
					m = diag
				} else {
					var cPrev float64
					if p == 0 {
						cPrev = prevC[q-lo]
					} else {
						cPrev = cp[(p-1)*total+q]
					}
					m = diag - (-sig)*cPrev
				}
				//palint:ignore floatdiv -- m >= 1 by diagonal dominance: diag = 1+2σ and the Thomas recurrence keeps |c'| < 1
				cp[id] = -sig / m
				var dPrev float64
				if p == 0 {
					if !first {
						dPrev = prevD[q-lo]
					}
				} else {
					dPrev = a[(p-1)*total+q]
				}
				//palint:ignore floatdiv -- m >= 1 by diagonal dominance: diag = 1+2σ and the Thomas recurrence keeps |c'| < 1
				a[id] = (a[id] + sig*dPrev) / m
			}
		}
		if err := st.billCells(float64(width * lz)); err != nil {
			return err
		}
		st.c.SetPhase("sp-z-forward")
		if rank < nranks-1 {
			msg := make([]float64, 2*width)
			for q := lo; q < hi; q++ {
				msg[q-lo] = cp[(lz-1)*total+q]
				msg[width+q-lo] = a[(lz-1)*total+q]
			}
			if err := st.c.Send(rank+1, spTagForward, msg, 2*width*8*ncomp); err != nil {
				return err
			}
		}
	}

	// Back substitution: top rank finishes first, boundary flows downward.
	for ch := 0; ch < nchunks; ch++ {
		lo := total * ch / nchunks
		hi := total * (ch + 1) / nchunks
		width := hi - lo
		upper := make([]float64, width) // x of the plane above (zero beyond the top)
		st.c.SetPhase("sp-z-back")
		if rank < nranks-1 {
			got, err := st.c.Recv(rank+1, spTagBack)
			if err != nil {
				return err
			}
			copy(upper, got[:width])
		}
		st.c.SetPhase("sp-solve-z")
		for p := lz - 1; p >= 0; p-- {
			for q := lo; q < hi; q++ {
				id := p*total + q
				var next float64
				if p == lz-1 {
					next = upper[q-lo]
				} else {
					next = a[(p+1)*total+q]
				}
				a[id] -= cp[id] * next
			}
		}
		if err := st.billCells(float64(width*lz) * 0.5); err != nil {
			return err
		}
		st.c.SetPhase("sp-z-back")
		if rank > 0 {
			msg := make([]float64, width)
			for q := lo; q < hi; q++ {
				msg[q-lo] = a[q] // plane p = 0
			}
			if err := st.c.Send(rank-1, spTagBack, msg, width*8*ncomp); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s SP) rank(c *mpi.Ctx) (SPResult, error) {
	n := s.N
	st := &spState{sp: s, c: c, n: n, sigma: s.sigma()}
	st.zlo, st.zhi = blockRange(n, c.Size(), c.Rank())
	st.zlo-- // blockRange is 1-based; convert to 0-based plane indices
	st.zhi--
	lz := st.lz()
	st.u = make([]float64, lz*n*n)

	// Initial condition from the NPB generator, seeded per global plane.
	c.SetPhase("sp-init")
	for p := 0; p < lz; p++ {
		rng := newRandlc(uint64((st.zlo + p) * n * n))
		for i := p * n * n; i < (p+1)*n*n; i++ {
			st.u[i] = rng.next()
		}
	}
	if err := st.billCells(float64(lz * n * n)); err != nil {
		return SPResult{}, err
	}

	heat := func() (float64, error) {
		local := 0.0
		for _, v := range st.u {
			local += v
		}
		sum, err := c.Allreduce([]float64{local}, mpi.Sum, 8)
		if err != nil {
			return 0, err
		}
		return sum[0], nil
	}
	var out SPResult
	h0, err := heat()
	if err != nil {
		return SPResult{}, err
	}
	out.Heat0 = h0

	for step := 0; step < s.Steps; step++ {
		// x sweep: lines along i (stride 1) for every (p, j).
		c.SetPhase("sp-solve-x")
		st.solveLocalLines(st.u, func(ln int) int { return ln * n }, 1, n, lz*n)
		if err := st.billCells(float64(lz * n * n)); err != nil {
			return SPResult{}, err
		}
		// y sweep: lines along j (stride n) for every (p, i).
		c.SetPhase("sp-solve-y")
		st.solveLocalLines(st.u, func(ln int) int {
			p, i := ln/n, ln%n
			return p*n*n + i
		}, n, n, lz*n)
		if err := st.billCells(float64(lz * n * n)); err != nil {
			return SPResult{}, err
		}
		// z sweep: distributed pipelined Thomas.
		if err := st.solveZ(st.u); err != nil {
			return SPResult{}, err
		}
	}

	hN, err := heat()
	if err != nil {
		return SPResult{}, err
	}
	out.Heat = hN

	// Checksum: sample fixed global points, as FT does.
	c.SetPhase("sp-checksum")
	local := 0.0
	for j := 1; j <= 512; j++ {
		q := (3 * j) % n
		r := (7 * j) % n
		z := j % n
		if z >= st.zlo && z < st.zhi {
			local += st.u[st.idx(z-st.zlo, r, q)]
		}
	}
	sum, err := c.Allreduce([]float64{local}, mpi.Sum, 8)
	if err != nil {
		return SPResult{}, err
	}
	out.Checksum = sum[0]
	return out, nil
}
