// Package analysis is a self-contained, stdlib-only static-analysis
// framework specialized for this repository's failure modes. The model core
// (package core) is pure floating-point arithmetic over frequency ratios,
// DOP classes and overhead terms: its bugs are silent — an unguarded
// division producing ±Inf, a NaN propagating into a speedup table, a
// dropped error from Time/Speedup, a report whose row order depends on map
// iteration — rather than crashes. The analyzers here make those classes of
// bug mechanically unmergeable.
//
// The framework deliberately depends only on go/ast, go/parser and
// go/types (go.mod has zero dependencies and builds must work offline), so
// it reimplements the small slice of golang.org/x/tools/go/analysis it
// needs: a Pass carrying a type-checked package, analyzers that report
// position-tagged diagnostics, and inline //palint:ignore suppressions.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name is the identifier used in reports and suppression comments.
	Name string
	// Doc is a one-line description shown by `palint -list`.
	Doc string
	// Explain is the full rule statement shown by `palint -explain <name>`;
	// empty falls back to Doc.
	Explain string
	// Example is a representative violation, lifted from the analyzer's
	// seeded testdata, shown by `palint -explain <name>`.
	Example string
	// Run executes the check against one package, reporting through pass.
	Run func(pass *Pass)
}

// All returns every analyzer in the suite, in stable (alphabetical) order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicMix,
		CommShape,
		Deadlock,
		DetSource,
		DroppedErr,
		FloatDiv,
		FloatEq,
		HotAlloc,
		MapOrder,
		NakedGo,
		OwnFree,
		PhaseBal,
		UnitCheck,
	}
}

// ByName returns the named analyzers, or an error naming the first unknown.
func ByName(names []string) ([]*Analyzer, error) {
	index := map[string]*Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := index[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer is the reporting check's name.
	Analyzer string `json:"analyzer"`
	// File is the path of the offending file as loaded.
	File string `json:"file"`
	// Line and Col are 1-based.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message explains the finding.
	Message string `json:"message"`
	// Suppressed is true when an inline //palint:ignore comment covers the
	// finding; Reason carries the comment's justification.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// Pos renders the canonical file:line:col prefix.
func (d Diagnostic) Pos() string {
	return fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col)
}

// String renders the finding in grep-friendly form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos(), d.Analyzer, d.Message)
}

// Pass is the per-(analyzer, package) run context handed to Analyzer.Run.
type Pass struct {
	// Analyzer is the running check.
	Analyzer *Analyzer
	// Pkg is the loaded package under analysis.
	Pkg *Package
	// Prog is the whole-program view (call graph plus memoized
	// interprocedural facts) shared by every pass of one Run call.
	Prog *Program

	diags *[]Diagnostic
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// TypeOf returns the type of an expression, or nil when type information is
// unavailable (e.g. a file that failed to type-check).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Pkg.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// IsFloat reports whether the expression has floating-point type.
func (p *Pass) IsFloat(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// NewProgram builds the whole-program context (call graph plus memoized
// interprocedural fact tables) once, for callers that run several analyzer
// sets — or the skeleton emitter — over one load.
func NewProgram(pkgs []*Package) *Program {
	return newProgram(pkgs)
}

// Run executes the analyzers over the packages and returns every diagnostic
// — suppressed ones included, flagged as such — sorted by file, line,
// column, analyzer. Callers filter on Suppressed for the exit status.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunWithProgram(NewProgram(pkgs), pkgs, analyzers)
}

// RunWithProgram is Run against an existing Program, so one load and one
// fact computation serve every pass and the -skeleton emitter alike.
func RunWithProgram(prog *Program, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog, diags: &diags}
			a.Run(pass)
		}
	}
	index := buildSuppressionIndex(pkgs)
	for i := range diags {
		markSuppressed(&diags[i], index)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// Active filters to the diagnostics not silenced by a suppression.
func Active(diags []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}
