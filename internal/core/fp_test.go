package core

import (
	"testing"

	"pasp/internal/machine"
	"pasp/internal/stats"
	"pasp/internal/units"
)

// table6SecPerIns builds the per-level timing table of the paper's Table 6
// for a blended CPION of 2.19 cycles... here split per level using the
// PentiumM machine model's published values.
func table6SecPerIns() map[float64][machine.NumLevels]units.Seconds {
	m := machine.PentiumM()
	out := map[float64][machine.NumLevels]units.Seconds{}
	for _, mhz := range []float64{600, 800, 1000, 1200, 1400} {
		var sec [machine.NumLevels]units.Seconds
		for l := machine.Reg; l < machine.NumLevels; l++ {
			sec[l] = m.SecPerIns(l, units.MHz(mhz))
		}
		out[mhz] = sec
	}
	return out
}

func testFP() *FP {
	return &FP{
		Work:      machine.W(145e9, 175e9, 4.71e9, 3.97e9), // Table 5
		SecPerIns: table6SecPerIns(),
		CommSec: map[int]map[float64]units.Seconds{
			2: {600: 8, 800: 7, 1000: 7, 1200: 7, 1400: 7},
			4: {600: 6, 800: 5, 1000: 5, 1200: 5, 1400: 5},
		},
	}
}

func TestFPValidate(t *testing.T) {
	if err := testFP().Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	empty := &FP{SecPerIns: table6SecPerIns()}
	if err := empty.Validate(); err == nil {
		t.Error("empty workload accepted")
	}
	noTimes := &FP{Work: machine.W(1, 1, 1, 1)}
	if err := noTimes.Validate(); err == nil {
		t.Error("missing timings accepted")
	}
}

func TestFPPredictT1Eq14(t *testing.T) {
	fp := testFP()
	got, err := fp.PredictT1(600)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-evaluated dot product at 600 MHz: reg 1 cyc, L1 3 cyc, L2 9 cyc,
	// mem 140 ns.
	want := 145e9*(1.0/600e6) + 175e9*(3.0/600e6) + 4.71e9*(9.0/600e6) + 3.97e9*140e-9
	if !stats.AlmostEqual(float64(got), want, 1e-9) {
		t.Errorf("T1(600) = %g, want %g", float64(got), want)
	}
	// Frequency scaling is sublinear because the memory term is flat.
	fast, _ := fp.PredictT1(1400)
	if ratio := got / fast; float64(ratio) >= 1400.0/600 || ratio <= 1 {
		t.Errorf("T1 ratio %g not in (1, 2.33)", float64(ratio))
	}
}

func TestFPPredictTimeEq15(t *testing.T) {
	fp := testFP()
	t1, _ := fp.PredictT1(800)
	got, err := fp.PredictTime(4, 800)
	if err != nil {
		t.Fatal(err)
	}
	want := t1.Div(4) + 5
	if !stats.AlmostEqual(float64(got), float64(want), 1e-9) {
		t.Errorf("T(4,800) = %g, want %g", float64(got), float64(want))
	}
	// N=1 needs no communication profile.
	if _, err := fp.PredictTime(1, 800); err != nil {
		t.Errorf("N=1 prediction failed: %v", err)
	}
}

func TestFPPredictSpeedup(t *testing.T) {
	fp := testFP()
	s, err := fp.PredictSpeedup(1, 600, 600)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(s, 1, 1e-12) {
		t.Errorf("base speedup %g, want 1", s)
	}
	s4, err := fp.PredictSpeedup(4, 1400, 600)
	if err != nil {
		t.Fatal(err)
	}
	if s4 <= 1 {
		t.Errorf("speedup at N=4@1400 is %g", s4)
	}
}

func TestFPMissingParameters(t *testing.T) {
	fp := testFP()
	if _, err := fp.PredictT1(700); err == nil {
		t.Error("unmeasured frequency accepted")
	}
	if _, err := fp.PredictTime(8, 600); err == nil {
		t.Error("unprofiled N accepted")
	}
	if _, err := fp.PredictTime(0, 600); err == nil {
		t.Error("N=0 accepted")
	}
	delete(fp.CommSec[2], 600)
	if _, err := fp.PredictTime(2, 600); err == nil {
		t.Error("unprofiled frequency for N accepted")
	}
}
