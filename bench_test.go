// Package pasp's benchmark harness regenerates every table and figure of
// the paper's evaluation at full scale and prints the reproduced rows, so
// `go test -bench=. -benchmem` doubles as the reproduction run:
//
//	BenchmarkTable1  — Eq. 3 product-prediction errors on FT   (Table 1)
//	BenchmarkTable3  — SP parameterization errors on FT        (Table 3)
//	BenchmarkTable5  — LU workload decomposition               (Table 5)
//	BenchmarkTable6  — per-level and per-message timings       (Table 6)
//	BenchmarkTable7  — FP vs SP errors on LU                   (Table 7)
//	BenchmarkFigure1 — EP time and 2-D speedup surfaces        (Fig. 1)
//	BenchmarkFigure2 — FT time and 2-D speedup surfaces        (Fig. 2)
//	BenchmarkEDP     — energy-delay-product prediction errors  (abstract)
//	BenchmarkDVFSSchedule — phase-level DVFS tradeoff          (intro)
//	BenchmarkAblation*    — design-choice ablations            (DESIGN.md §5)
//
// PASP_BENCH_SUITE=quick swaps in the reduced suite for smoke runs (the CI
// bench-smoke job); probe points are derived from the suite's grid so both
// scales exercise the same code paths.
package pasp

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"pasp/internal/cluster"
	"pasp/internal/core"
	"pasp/internal/dvfs"
	"pasp/internal/experiments"
	"pasp/internal/mpi"
	"pasp/internal/npb"
	"pasp/internal/power"
)

// printOnce guards each benchmark's table output so repeated iterations do
// not flood the log.
var printOnce sync.Map

func emit(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
}

// benchSuite selects the harness scale: unset or "paper" runs the full
// paper reproduction, "quick" the reduced suite.
func benchSuite(b *testing.B) experiments.Suite {
	b.Helper()
	switch v := os.Getenv("PASP_BENCH_SUITE"); v {
	case "", "paper":
		return experiments.Paper()
	case "quick":
		return experiments.Quick()
	case "scale":
		// The scaling harness is its own benchmark set (BenchmarkScale in
		// bench_scale_test.go): the paper tables are defined on the 16-node
		// grid and would take hours at N=1024.
		b.Skipf("PASP_BENCH_SUITE=scale runs BenchmarkScale only (make bench-scale)")
		panic("unreachable")
	default:
		b.Fatalf("unknown PASP_BENCH_SUITE %q (want \"paper\", \"quick\" or \"scale\")", v)
		panic("unreachable")
	}
}

// Probe points derived from the suite's grid: the largest measured N, the
// base and top gears, and a preferred count capped to the grid.
func maxN(s experiments.Suite) int      { return s.Grid.Ns[len(s.Grid.Ns)-1] }
func baseF(s experiments.Suite) float64 { return s.Grid.MHz[0] }
func topF(s experiments.Suite) float64  { return s.Grid.MHz[len(s.Grid.MHz)-1] }
func capN(s experiments.Suite, n int) int {
	if m := maxN(s); m < n {
		return m
	}
	return n
}

func BenchmarkTable1(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		grid, err := s.Table1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(grid.Max()*100, "maxerr%")
		b.ReportMetric(grid.Mean()*100, "meanerr%")
		emit("table1", grid.String())
	}
}

func BenchmarkTable3(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		grid, err := s.Table3(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(grid.Max()*100, "maxerr%")
		b.ReportMetric(grid.Mean()*100, "meanerr%")
		emit("table3", grid.String())
	}
}

func BenchmarkTable5(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Table5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Work.OnChip()/r.Work.Total()*100, "onchip%")
		emit("table5", r.String())
	}
}

func BenchmarkTable6(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Table6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CPIOn[0], "cpi_on")
		emit("table6", r.String())
	}
}

func BenchmarkTable7(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Table7(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FP.Max()*100, "fp_maxerr%")
		b.ReportMetric(r.SP.Max()*100, "sp_maxerr%")
		emit("table7", r.String())
	}
}

func BenchmarkFigure1(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		fig, err := s.Figure1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		top, err := fig.Speedup.At(maxN(s), topF(s))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(top, fmt.Sprintf("speedup@%dx%.0f", maxN(s), topF(s)))
		emit("figure1", fig.String())
	}
}

func BenchmarkFigure2(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		fig, err := s.Figure2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		flat, err := fig.Speedup.At(maxN(s), baseF(s))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(flat, fmt.Sprintf("speedup@%dx%.0f", maxN(s), baseF(s)))
		emit("figure2", fig.String())
	}
}

func BenchmarkEDP(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.EDPForFT(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.EDP.Max()*100, "edp_maxerr%")
		b.ReportMetric(r.Time.Max()*100, "time_maxerr%")
		emit("edp", r.String())
	}
}

func BenchmarkDVFSSchedule(b *testing.B) {
	s := benchSuite(b)
	w, err := s.Platform.World(maxN(s), topF(s))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cmp, err := dvfs.Compare(w, dvfs.FTPolicy(s.Platform.Prof), s.RunFT)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.EnergySavings()*100, "energysave%")
		b.ReportMetric(cmp.Slowdown()*100, "slowdown%")
		emit("dvfs", fmt.Sprintf("DVFS phase schedule, FT N=%d@%.0fMHz: %s",
			maxN(s), topF(s), cmp.String()))
	}
}

// ftSpeedupAt measures FT's speedup at (n, f MHz) on a platform variant.
func ftSpeedupAt(b *testing.B, p cluster.Platform, ft npb.FT, n int, f float64) float64 {
	b.Helper()
	run := func(w mpi.World) (*mpi.Result, error) {
		_, r, err := ft.Run(w)
		return r, err
	}
	w1, err := p.World(1, f)
	if err != nil {
		b.Fatal(err)
	}
	r1, err := run(w1)
	if err != nil {
		b.Fatal(err)
	}
	wn, err := p.World(n, f)
	if err != nil {
		b.Fatal(err)
	}
	rn, err := run(wn)
	if err != nil {
		b.Fatal(err)
	}
	return r1.Seconds / rn.Seconds
}

// BenchmarkAblationContention removes the fabric's flow-concurrency limit:
// with an ideal switch the FT transpose stops flattening, demonstrating the
// mechanism behind Figure 2's saturation.
func BenchmarkAblationContention(b *testing.B) {
	s := benchSuite(b)
	ideal := s.Platform
	ideal.Net.FlowConcurrency = 0
	for i := 0; i < b.N; i++ {
		limited := ftSpeedupAt(b, s.Platform, s.FT, maxN(s), baseF(s))
		unlimited := ftSpeedupAt(b, ideal, s.FT, maxN(s), baseF(s))
		b.ReportMetric(limited, "speedup_contended")
		b.ReportMetric(unlimited, "speedup_ideal")
		emit("abl-contention", fmt.Sprintf(
			"Ablation, flow contention: FT speedup at (%d, %.0fMHz) = %.2f contended vs %.2f on an ideal switch",
			maxN(s), baseF(s), limited, unlimited))
	}
}

// BenchmarkAblationCommCPU removes the per-message/per-byte endpoint CPU
// cost: communication becomes frequency-insensitive and the SP model's
// Assumption 2 holds exactly, shrinking the Table 3 errors.
func BenchmarkAblationCommCPU(b *testing.B) {
	s := benchSuite(b)
	noCPU := s
	noCPU.Platform.Net.MsgCPUIns = 0
	noCPU.Platform.Net.ByteCPUIns = 0
	for i := 0; i < b.N; i++ {
		withCPU, err := s.Table3(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		without, err := noCPU.Table3(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(withCPU.Max()*100, "maxerr_with%")
		b.ReportMetric(without.Max()*100, "maxerr_without%")
		emit("abl-commcpu", fmt.Sprintf(
			"Ablation, comm CPU cost: Table 3 max error %.1f%% with endpoint CPU cost vs %.1f%% without",
			withCPU.Max()*100, without.Max()*100))
	}
}

// BenchmarkAblationBusDrop removes the low-gear bus-speed reduction: the
// memory row of Table 6 flattens to 110 ns and FT's sequential frequency
// speedup grows.
func BenchmarkAblationBusDrop(b *testing.B) {
	s := benchSuite(b)
	flat := s
	flat.Platform.Mach.BusDrop = false
	freqSpeedup := func(p cluster.Platform) float64 {
		run := func(w mpi.World) (*mpi.Result, error) {
			_, r, err := s.FT.Run(w)
			return r, err
		}
		slow, err := p.World(1, baseF(s))
		if err != nil {
			b.Fatal(err)
		}
		rs, err := run(slow)
		if err != nil {
			b.Fatal(err)
		}
		fast, err := p.World(1, topF(s))
		if err != nil {
			b.Fatal(err)
		}
		rf, err := run(fast)
		if err != nil {
			b.Fatal(err)
		}
		return rs.Seconds / rf.Seconds
	}
	for i := 0; i < b.N; i++ {
		with := freqSpeedup(s.Platform)
		without := freqSpeedup(flat.Platform)
		b.ReportMetric(with, "fspeedup_busdrop")
		b.ReportMetric(without, "fspeedup_flat")
		emit("abl-busdrop", fmt.Sprintf(
			"Ablation, bus-speed drop: FT sequential %.0f→%.0f speedup %.2f with the 140ns low-gear bus vs %.2f without",
			baseF(s), topF(s), with, without))
	}
}

// BenchmarkAblationWavefront quantifies LU's pipeline-fill and
// fine-grained-message cost: the Eq. 17-derived parallel overhead as a
// share of the measured runtime at the base gear, for each processor count.
// This is the quantity the SP model folds into T(wPO) and the FP model
// misses (Table 7's error growth with N).
func BenchmarkAblationWavefront(b *testing.B) {
	s := benchSuite(b)
	fitNs := s.LUGrid.Ns[1:] // overhead exists at N ≥ 2; N=1 anchors the fit
	last := fitNs[len(fitNs)-1]
	f0 := s.LUGrid.MHz[0]
	for i := 0; i < b.N; i++ {
		camp, err := s.MeasureLU(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		sp, err := core.FitSP(camp.Meas)
		if err != nil {
			b.Fatal(err)
		}
		var lines string
		for _, n := range fitNs {
			tpo, err := sp.Overhead(n)
			if err != nil {
				b.Fatal(err)
			}
			t, err := camp.Meas.Time(n, f0)
			if err != nil {
				b.Fatal(err)
			}
			share := tpo / t
			lines += fmt.Sprintf("  N=%d: overhead %.2f s = %.1f%% of T(N, %.0fMHz)\n", n, tpo, share*100, f0)
			if n == last {
				b.ReportMetric(share*100, fmt.Sprintf("overhead@%d%%", last))
			}
		}
		emit("abl-wavefront",
			"Ablation, wavefront pipelining: LU parallel overhead derived via Eq. 17\n"+lines)
	}
}

// kernelFigure measures a campaign and prints its two-panel figure.
func kernelFigure(b *testing.B, key, name string, s experiments.Suite,
	measure func(context.Context) (*experiments.Campaign, error), probeN int, probeMHz float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		camp, err := measure(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		fig, err := s.FigureFrom(name, camp)
		if err != nil {
			b.Fatal(err)
		}
		v, err := fig.Speedup.At(probeN, probeMHz)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v, fmt.Sprintf("speedup@%dx%.0f", probeN, probeMHz))
		emit(key, fig.String())
	}
}

// BenchmarkFigureCG extends the evaluation to the NAS CG kernel: strongly
// memory-bound, allreduce-chained — frequency scaling buys little.
func BenchmarkFigureCG(b *testing.B) {
	s := benchSuite(b)
	kernelFigure(b, "figure-cg", "CG (extension)", s, s.MeasureCG, maxN(s), baseF(s))
}

// BenchmarkFigureMG extends the evaluation to the NAS MG kernel:
// hierarchical communication with coarse-grid agglomeration; it peaks at an
// interior processor count on Fast Ethernet.
func BenchmarkFigureMG(b *testing.B) {
	s := benchSuite(b)
	kernelFigure(b, "figure-mg", "MG (extension)", s, s.MeasureMG, capN(s, 4), baseF(s))
}

// BenchmarkFigureIS extends the evaluation to the NAS IS kernel: integer
// bucket sort with skewed all-to-all exchanges.
func BenchmarkFigureIS(b *testing.B) {
	s := benchSuite(b)
	kernelFigure(b, "figure-is", "IS (extension)", s, s.MeasureIS, capN(s, 8), baseF(s))
}

// BenchmarkSegmentModel runs the §7 future-work experiment: the
// segment-granularity model fitted from two frequency columns versus
// whole-program SP at interior frequencies, plus the per-phase frequency
// sensitivities.
func BenchmarkSegmentModel(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		camp, err := s.MeasureFT(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		r, err := s.SegmentVsSP(camp)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Seg.Max()*100, "seg_maxerr%")
		b.ReportMetric(r.SP.Max()*100, "sp_maxerr%")
		emit("segment", r.String())
	}
}

// BenchmarkModelDrivenDVFS closes the §7 loop: the segment model's phase
// classification drives the DVFS schedule with no hand-written phase list.
func BenchmarkModelDrivenDVFS(b *testing.B) {
	s := benchSuite(b)
	camp, err := s.MeasureFT(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	pol, phases, err := s.ModelDrivenDVFS(camp)
	if err != nil {
		b.Fatal(err)
	}
	w, err := s.Platform.World(maxN(s), topF(s))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cmp, err := dvfs.Compare(w, pol, s.RunFT)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.EnergySavings()*100, "energysave%")
		b.ReportMetric(cmp.Slowdown()*100, "slowdown%")
		emit("model-dvfs", fmt.Sprintf(
			"Model-driven DVFS (auto-classified low-gear phases %v), FT N=%d@%.0fMHz: %v",
			phases, maxN(s), topF(s), cmp))
	}
}

// BenchmarkEDPOptimalGears builds the multi-gear schedule from the fitted
// segment model — each phase at its predicted-EDP-optimal operating point —
// and scores it against the all-top baseline.
func BenchmarkEDPOptimalGears(b *testing.B) {
	s := benchSuite(b)
	camp, err := s.MeasureFT(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	pol, err := s.EDPOptimalGears(camp)
	if err != nil {
		b.Fatal(err)
	}
	w, err := s.Platform.World(maxN(s), topF(s))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cmp, err := dvfs.CompareGears(w, pol, s.RunFT)
		if err != nil {
			b.Fatal(err)
		}
		base := power.EDP(cmp.BaselineJoules, cmp.BaselineSec)
		sched := power.EDP(cmp.ScheduledJoules, cmp.ScheduledSec)
		b.ReportMetric((1-sched/base)*100, "edp_improve%")
		emit("edp-gears", fmt.Sprintf(
			"EDP-optimal gear schedule (%v)\nFT N=%d@%.0fMHz: EDP %.0f → %.0f J·s (%.1f%% better); %v",
			pol, maxN(s), topF(s), base, sched, (1-sched/base)*100, cmp))
	}
}

// BenchmarkScaledSpeedup runs the fixed-time (Gustafson) scaling experiment
// from the related work: EP's scaled surface reaches N·f/f0; MG — ghost
// faces ∝ volume^(2/3) — recovers the scalability its fixed-size surface
// loses on Fast Ethernet (the Sun–Ni memory-bounded argument).
func BenchmarkScaledSpeedup(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		mg, err := s.ScaledMG(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		sc, err := mg.Scaled.At(maxN(s), baseF(s))
		if err != nil {
			b.Fatal(err)
		}
		fx, err := mg.Fixed.At(maxN(s), baseF(s))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sc, fmt.Sprintf("mg_scaled@%dx%.0f", maxN(s), baseF(s)))
		b.ReportMetric(fx, fmt.Sprintf("mg_fixed@%dx%.0f", maxN(s), baseF(s)))
		emit("scaled", mg.String())
	}
}

// BenchmarkExtrapolation runs the footnote-3 experiment at paper scale:
// fit the overhead-growth model on N ≤ 8 and predict the 16-node cluster
// blind. LU's smooth wavefront overhead extrapolates; FT's transpose
// crosses the fabric's contention knee between 8 and 16 nodes and defeats
// any model fitted below it — quantifying why the authors wanted the bigger
// machine before concluding.
func BenchmarkExtrapolation(b *testing.B) {
	s := benchSuite(b)
	if maxN(s) < 16 {
		b.Skipf("extrapolation validates against a held-out N=16 run; grid tops out at %d", maxN(s))
	}
	for i := 0; i < b.N; i++ {
		lu, err := s.ExtrapolateLU(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		ft, err := s.ExtrapolateFT(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lu.MaxErr()*100, "lu_maxerr%")
		b.ReportMetric(ft.MaxErr()*100, "ft_maxerr%")
		emit("extrapolate", lu.String()+"\n"+ft.String())
	}
}

// BenchmarkFigureSP extends the evaluation to the ADI application class:
// local x/y line solves plus a chunk-pipelined distributed Thomas solve
// along z.
func BenchmarkFigureSP(b *testing.B) {
	s := benchSuite(b)
	kernelFigure(b, "figure-sp", "SP (extension)", s, s.MeasureSP, capN(s, 8), baseF(s))
}

// BenchmarkAblationPipelineChunks quantifies the z-solve pipelining choice:
// the same ADI step with a monolithic (1-chunk) forward/backward sweep
// versus the default chunked pipeline.
func BenchmarkAblationPipelineChunks(b *testing.B) {
	s := benchSuite(b)
	run := func(chunks int) float64 {
		sp := s.SP
		sp.Chunks = chunks
		w, err := s.Platform.World(maxN(s), baseF(s))
		if err != nil {
			b.Fatal(err)
		}
		_, r, err := sp.Run(w)
		if err != nil {
			b.Fatal(err)
		}
		return r.Seconds
	}
	for i := 0; i < b.N; i++ {
		serial := run(1)
		piped := run(8)
		b.ReportMetric(serial, "sec_monolithic")
		b.ReportMetric(piped, "sec_pipelined")
		emit("abl-chunks", fmt.Sprintf(
			"Ablation, z-solve pipelining: SP at (%d, %.0fMHz) takes %.2f s with a monolithic sweep vs %.2f s with 8-chunk pipelining (%.1f×)",
			maxN(s), baseF(s), serial, piped, serial/piped))
	}
}

// BenchmarkAdaptiveDVFS runs the profile-free online tuner on FT and
// reports its converged tradeoff — the runtime-governor counterpart to the
// offline model-driven schedules.
func BenchmarkAdaptiveDVFS(b *testing.B) {
	s := benchSuite(b)
	ft := s.FT
	ft.Iters = 24 // room to explore 5 gears × 2 visits per phase
	w, err := s.Platform.World(maxN(s), topF(s))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		a := &dvfs.Adaptive{Prof: s.Platform.Prof, SwitchSec: 50e-6}
		cmp, chosen, err := dvfs.CompareAdaptive(w, a, func(w2 mpi.World) (*mpi.Result, error) {
			_, r, err := ft.Run(w2)
			return r, err
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.EnergySavings()*100, "energysave%")
		b.ReportMetric(cmp.Slowdown()*100, "slowdown%")
		emit("adaptive", fmt.Sprintf(
			"Adaptive (online, profile-free) DVFS, FT N=%d@%.0fMHz over 24 iterations: %v\nrank-0 converged gears: %v",
			maxN(s), topF(s), cmp, chosen))
	}
}

// BenchmarkIsoefficiency runs the Grama-style scalability study (related
// work [18]) on CG: the workload multiplier that holds the 2-processor
// efficiency at each larger count.
func BenchmarkIsoefficiency(b *testing.B) {
	s := benchSuite(b)
	var ns []int
	for _, n := range s.Grid.Ns {
		if n >= 2 {
			ns = append(ns, n)
		}
	}
	for i := 0; i < b.N; i++ {
		res, err := s.IsoefficiencyCG(ns)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Multiplier[len(res.Multiplier)-1], fmt.Sprintf("mult@%d", ns[len(ns)-1]))
		emit("isoeff", res.String())
	}
}
