package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"pasp/internal/cluster"
	"pasp/internal/obs"
)

// The campaign store memoizes measurement campaigns for the lifetime of the
// process. Every table, figure, EDP, segment-model and DVFS experiment
// starts from a campaign, and most of them start from the *same* campaign:
// before the store, the benchmark harness re-simulated the FT sweep seven
// times. A campaign is a pure function of (kernel class and parameters,
// grid, platform), so it is content-keyed on exactly those and measured at
// most once.
//
// Cached campaigns are shared: every caller receives the same *Campaign and
// must treat it — Meas, Cells and the per-cell Results and Traces — as
// read-only. All in-tree consumers only read (fits, grids, trace scans).
//
// Variant platforms are naturally distinct keys: the ablations mutate a
// copy of Suite.Platform (FlowConcurrency, MsgCPUIns, BusDrop, ...) and the
// fingerprint of the modified struct no longer matches the stock one.
//
// Measurement is singleflighted per entry with caller-cancellation
// semantics, which is what lets paserve coalesce a storm of identical
// requests onto one simulation:
//
//   - The first caller of an unmeasured entry becomes the *leader* and runs
//     the sweep; concurrent callers for the same key become *waiters* and
//     block until the leader finishes.
//   - Every caller passes its own context. The sweep itself runs under an
//     internal context that is cancelled only when every interested caller
//     has gone away — one impatient waiter leaving never aborts a
//     measurement others still want.
//   - A caller whose context is cancelled returns that context's error
//     immediately (before the leader even starts, if the context arrives
//     dead); if it was the last interested caller the in-flight sweep stops
//     at its next cell boundary.
//   - A sweep that aborts on cancellation is *not* cached: the entry resets
//     and the next caller measures afresh. Genuine measurement errors are
//     cached exactly as the pre-context store cached them.

// campaignKey identifies one campaign by content, not by call site.
type campaignKey struct {
	kernel   string // kernel name plus its full parameter struct
	grid     string // Ns × MHz
	platform string // machine, network and power models plus MaxNodes
}

// flight is one in-progress measurement attempt of an entry. Its fields are
// guarded by the owning entry's mutex; ctx/cancel control the sweep and
// finished is closed when the attempt's outcome has been recorded.
type flight struct {
	ctx      context.Context
	cancel   context.CancelFunc
	finished chan struct{}
	waiters  int // callers (leader included) still interested in this attempt
	// leader is the request ID of the caller that started this attempt
	// (empty outside the serving path). Coalesced waiters surface it in
	// their wide events so a slow request can be traced to the one
	// simulation every rider shared.
	leader string
}

// storeEntry is one memoized campaign slot.
type storeEntry struct {
	mu     sync.Mutex
	done   bool
	camp   *Campaign
	err    error
	flight *flight // non-nil while a measurement attempt is in progress
}

// campaignStore is the process-wide cache. A mutex guards the map; each
// entry serializes its own measurement (see storeEntry.get), so campaigns
// under different keys measure concurrently.
var campaignStore = struct {
	mu sync.Mutex
	m  map[campaignKey]*storeEntry
}{m: map[campaignKey]*storeEntry{}}

// storeKey fingerprints the campaign inputs. The structs involved
// (machine.Config, simnet.Config, power.Profile and the npb kernel types)
// contain only scalars, arrays and slices — no maps — so their %+v
// rendering is deterministic and content-complete.
func storeKey(kernel string, params any, g cluster.Grid, p cluster.Platform) campaignKey {
	return campaignKey{
		kernel:   fmt.Sprintf("%s %+v", kernel, params),
		grid:     fmt.Sprintf("%v %v", g.Ns, g.MHz),
		platform: fmt.Sprintf("%+v", p),
	}
}

// measureCached returns the memoized campaign for (kernel, params, grid,
// platform), sweeping the grid at most once per process. params must be the
// kernel's full parameter struct so that two classes of the same kernel
// cannot collide. ctx bounds this caller's interest only — see the
// singleflight contract at the top of the file.
func (s Suite) measureCached(ctx context.Context, kernel string, params any, g cluster.Grid, run cluster.RunFunc) (*Campaign, error) {
	key := storeKey(kernel, params, g, s.Platform)
	campaignStore.mu.Lock()
	e, ok := campaignStore.m[key]
	if !ok {
		e = &storeEntry{}
		campaignStore.m[key] = e
	}
	campaignStore.mu.Unlock()
	// An entry found in the map is a hit — a reuse of a measured (or
	// in-flight) campaign — and a created one is a miss. The counters live
	// on the process-wide registry so the memoization rate is observable
	// end-to-end; TestStoreHitMissCounters pins the accounting against
	// known reuse counts to catch silent regressions.
	if ok {
		obs.Default().Counter("store.hits").Inc()
	} else {
		obs.Default().Counter("store.misses").Inc()
	}
	return e.get(ctx, func(mctx context.Context) (*Campaign, error) {
		camp, err := s.measure(mctx, g, run)
		if err == nil {
			recordCampaignSpan(mctx, kernel, camp)
		}
		return camp, err
	})
}

// peekCached reports the memoized campaign for the key if — and only if —
// its measurement has already completed. It never joins or starts a flight,
// so servers can answer cache hits without consuming an admission slot.
func (s Suite) peekCached(kernel string, params any, g cluster.Grid) (*Campaign, bool) {
	key := storeKey(kernel, params, g, s.Platform)
	campaignStore.mu.Lock()
	e, ok := campaignStore.m[key]
	campaignStore.mu.Unlock()
	if !ok {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.done || e.err != nil {
		return nil, false
	}
	return e.camp, true
}

// isCancellation reports whether err is (or wraps) a context cancellation —
// the class of measurement failure the store must not cache, because it
// says nothing about the campaign, only about the callers who asked for it.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// get returns the entry's campaign, measuring it with measure if needed.
// Exactly one caller at a time runs measure (the leader); the rest wait.
func (e *storeEntry) get(ctx context.Context, measure func(context.Context) (*Campaign, error)) (*Campaign, error) {
	fi := obs.FlightInfoFrom(ctx)
	e.mu.Lock()
	for {
		if e.done {
			// Only callers that never led or coalesced report "done": a
			// waiter whose flight completed re-enters this branch, and its
			// event must keep saying which leader it rode.
			if fi != nil && fi.Mode == obs.FlightNone {
				fi.Mode = obs.FlightDone
			}
			e.mu.Unlock()
			return e.camp, e.err
		}
		// A dead context never starts, joins or waits on a flight: the
		// cancellation-before-leader-starts case aborts here with zero
		// simulation work.
		if err := ctx.Err(); err != nil {
			e.mu.Unlock()
			return nil, err
		}
		if e.flight == nil {
			f := &flight{finished: make(chan struct{}), waiters: 1, leader: obs.RequestIDFrom(ctx)}
			// The measurement context is detached from any one caller's
			// lifetime (cancellation is interest-counted, not inherited),
			// but it inherits the leader's request identity and span parent
			// so the sweep's error messages and the recorded campaign span
			// attribute the simulation to the request that started it.
			mctx := obs.WithRequestID(context.Background(), f.leader)
			mctx = obs.WithSpanParent(mctx, obs.SpanParentFrom(ctx))
			f.ctx, f.cancel = context.WithCancel(mctx)
			e.flight = f
			if fi != nil {
				fi.Mode = obs.FlightLed
			}
			e.mu.Unlock()
			// The leader is about to block inside measure, so its own
			// context is watched from the side: if it dies mid-sweep the
			// leader's interest is withdrawn exactly like a waiter's, and
			// the sweep keeps running only while someone still wants it.
			stop := context.AfterFunc(ctx, func() { e.abandon(f) })
			camp, err := measure(f.ctx)
			if stop() {
				e.abandon(f)
			}
			f.cancel()
			e.mu.Lock()
			e.flight = nil
			if err == nil || !isCancellation(err) {
				e.done, e.camp, e.err = true, camp, err
			}
			close(f.finished)
			if e.done {
				e.mu.Unlock()
				return e.camp, e.err
			}
			// The sweep was abandoned. If this leader's own context is the
			// one that died, report it; otherwise (every waiter left but the
			// leader is still interested) loop and lead a fresh attempt.
			if cerr := ctx.Err(); cerr != nil {
				e.mu.Unlock()
				return nil, cerr
			}
			continue
		}
		f := e.flight
		f.waiters++
		if fi != nil {
			fi.Mode, fi.Leader = obs.FlightCoalesced, f.leader
		}
		obs.Default().Counter("store.coalesced").Inc()
		e.mu.Unlock()
		select {
		case <-f.finished:
			e.mu.Lock()
			// Either the entry is done now, or the attempt was abandoned and
			// this waiter races to become the next leader.
		case <-ctx.Done():
			e.abandon(f)
			return nil, ctx.Err()
		}
	}
}

// abandon withdraws one caller's interest in a flight; the last withdrawal
// cancels the measurement context, stopping the sweep at its next cell.
func (e *storeEntry) abandon(f *flight) {
	e.mu.Lock()
	f.waiters--
	if f.waiters == 0 {
		f.cancel()
	}
	e.mu.Unlock()
}

// recordCampaignSpan reports a freshly measured campaign to the global
// observer when one is installed (patrace/pachaos/paserve). Campaigns have
// no single virtual clock, so the span covers [0, summed cell seconds] —
// deterministic per platform. When the measurement context carries a span
// parent (a serving request span), the campaign span nests under it and is
// tagged with the leading request's ID, so a Perfetto request track shows
// which simulation a slow request paid for. The nil-observer path is one
// atomic load.
func recordCampaignSpan(ctx context.Context, kernel string, camp *Campaign) {
	g := obs.Global()
	if g == nil {
		return
	}
	total := 0.0
	for _, c := range camp.Cells {
		total += c.Res.Seconds
	}
	attrs := []obs.Attr{
		obs.F("cells", float64(len(camp.Cells))),
		obs.F("virtual_seconds", total),
	}
	if id := obs.RequestIDFrom(ctx); id != "" {
		attrs = append(attrs, obs.A("request_id", id))
	}
	id := g.StartSpan(obs.SpanParentFrom(ctx), "campaign:"+kernel, 0, attrs...)
	g.EndSpan(id, total)
	g.Metrics().Counter("campaigns.measured").Inc()
}

// CampaignStoreSize reports how many distinct campaigns the process has
// measured — observability for tests and the benchmark harness.
func CampaignStoreSize() int {
	campaignStore.mu.Lock()
	defer campaignStore.mu.Unlock()
	return len(campaignStore.m)
}
