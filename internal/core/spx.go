package core

import (
	"fmt"
	"math"

	"pasp/internal/stats"
)

// SPX extends the simplified parameterization with an overhead *growth
// model*, so it can predict processor counts that were never measured —
// the capability the paper's footnote 3 wishes for ("it would be nice to
// confirm this result on a larger power-aware cluster"). The Eq. 17
// overheads derived at the measured counts are fitted with
//
//	T_PO(N) ≈ β₀ + β₁·N + β₂·log₂N
//
// (constant term: bandwidth-bound volume; linear term: per-neighbour and
// pipeline costs; logarithmic term: tree collectives) and the fit is
// evaluated at any N.
//
// Extrapolation is only as good as the regime it was fitted in: crossing a
// contention knee (FT's alltoall saturating the fabric between 8 and 16
// nodes) breaks it, which the extrapolation experiment quantifies.
type SPX struct {
	sp   *SP
	beta []float64
	fitN []int
}

// overheadBasis evaluates the growth model's basis at a processor count.
func overheadBasis(n int) []float64 {
	return []float64{1, float64(n), math.Log2(float64(n))}
}

// FitSPX fits the extrapolating model from the campaign's configurations
// with 1 < N ≤ maxFitN (0 means all measured counts). At least three such
// counts are required to identify the three-term growth model.
func FitSPX(m *Measurements, maxFitN int) (*SPX, error) {
	sp, err := FitSP(m)
	if err != nil {
		return nil, err
	}
	var rows [][]float64
	var y []float64
	var fitN []int
	for _, n := range m.Ns() {
		if n == 1 || (maxFitN > 0 && n > maxFitN) {
			continue
		}
		tpo, err := sp.Overhead(n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, overheadBasis(n))
		y = append(y, tpo)
		fitN = append(fitN, n)
	}
	if len(rows) < 3 {
		return nil, fmt.Errorf("core: SPX needs ≥ 3 parallel counts to fit, got %d", len(rows))
	}
	beta, err := stats.LeastSquares(rows, y)
	if err != nil {
		return nil, err
	}
	return &SPX{sp: sp, beta: beta, fitN: fitN}, nil
}

// FittedNs returns the processor counts the overhead model was fitted on.
func (x *SPX) FittedNs() []int { return append([]int(nil), x.fitN...) }

// Overhead returns the modelled overhead at any processor count.
func (x *SPX) Overhead(n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("core: N = %d", n)
	}
	if n == 1 {
		return 0, nil
	}
	basis := overheadBasis(n)
	t := 0.0
	for i, b := range basis {
		t += x.beta[i] * b
	}
	if t < 0 {
		t = 0
	}
	return t, nil
}

// PredictTime predicts the execution time at any processor count and any
// measured frequency: Eq. 18 with the modelled overhead.
func (x *SPX) PredictTime(n int, mhz float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("core: N = %d", n)
	}
	t1, ok := x.sp.t1[mhz]
	if !ok {
		return 0, fmt.Errorf("core: SPX has no sequential time at %g MHz", mhz)
	}
	tpo, err := x.Overhead(n)
	if err != nil {
		return 0, err
	}
	return t1/float64(n) + tpo, nil
}

// PredictSpeedup predicts power-aware speedup at any processor count.
func (x *SPX) PredictSpeedup(n int, mhz float64) (float64, error) {
	t1, ok := x.sp.t1[x.sp.baseMHz]
	if !ok {
		return 0, fmt.Errorf("core: SPX missing base sequential time")
	}
	tn, err := x.PredictTime(n, mhz)
	if err != nil {
		return 0, err
	}
	if tn <= 0 {
		return 0, fmt.Errorf("core: SPX predicted non-positive time")
	}
	return t1 / tn, nil
}
