// Command pareport runs the complete reproduction — every paper table and
// figure plus the extension experiments — and emits one self-contained
// Markdown report with the measured values, suitable for diffing against
// EXPERIMENTS.md.
//
// Usage:
//
//	pareport [-suite paper|quick] [-o report.md]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"pasp/internal/dvfs"
	"pasp/internal/experiments"
)

func main() {
	suite := flag.String("suite", "paper", "experiment scale: paper or quick")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	// An interrupt mid-reproduction cancels the in-flight campaign sweep at
	// its next cell instead of leaving worker goroutines mid-grid.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	s, err := experiments.SuiteByName(*suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pareport: %v\n", err)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pareport: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	die := func(stage string, err error) {
		fmt.Fprintf(os.Stderr, "pareport: %s: %v\n", stage, err)
		os.Exit(1)
	}
	section := func(title string) { fmt.Fprintf(w, "\n## %s\n\n", title) }
	block := func(v any) { fmt.Fprintf(w, "```\n%v\n```\n", v) }

	start := time.Now() //palint:ignore detsource -- CLI driver: wall clock only times report generation for the footer line
	fmt.Fprintf(w, "# Power-Aware Speedup — reproduction report (%s suite)\n", *suite)

	section("Platform (Table 2)")
	block(s.Table2())

	section("Figure 1 — EP")
	fig1, err := s.Figure1(ctx)
	if err != nil {
		die("figure 1", err)
	}
	block(fig1)

	section("Figure 2 — FT")
	ftCamp, err := s.MeasureFT(ctx)
	if err != nil {
		die("ft campaign", err)
	}
	fig2, err := s.FigureFrom("Fig 2: FT", ftCamp)
	if err != nil {
		die("figure 2", err)
	}
	block(fig2)

	section("Table 1 — generalized Amdahl on FT")
	t1, err := s.Table1From(ftCamp)
	if err != nil {
		die("table 1", err)
	}
	block(t1)

	section("Table 3 — SP parameterization on FT")
	t3, err := s.Table3From(ftCamp)
	if err != nil {
		die("table 3", err)
	}
	block(t3)

	section("Table 5 — LU workload decomposition")
	t5, err := s.Table5()
	if err != nil {
		die("table 5", err)
	}
	block(t5)

	section("Table 6 — measured model parameters")
	t6, err := s.Table6()
	if err != nil {
		die("table 6", err)
	}
	block(t6)

	section("Table 7 — FP vs SP on LU")
	t7, err := s.Table7(ctx)
	if err != nil {
		die("table 7", err)
	}
	block(t7)

	section("Energy-delay prediction (abstract claim)")
	edp, err := s.EDPFrom("FT", ftCamp, s.Grid.Ns[1:], s.Grid.MHz)
	if err != nil {
		die("edp", err)
	}
	block(edp)
	measured, predicted, err := s.SweetSpotFrom(ftCamp)
	if err != nil {
		die("sweet spot", err)
	}
	fmt.Fprintf(w, "measured EDP optimum: %v (%.2f s, %.0f J); model recommends %v\n",
		measured.Config, measured.Seconds, measured.Joules, predicted.Config)

	section("DVFS phase scheduling (intro motivation)")
	wld, err := s.Platform.World(s.Grid.Ns[len(s.Grid.Ns)-1], s.Grid.MHz[len(s.Grid.MHz)-1])
	if err != nil {
		die("dvfs world", err)
	}
	cmp, err := dvfs.Compare(wld, dvfs.FTPolicy(s.Platform.Prof), s.RunFT)
	if err != nil {
		die("dvfs", err)
	}
	fmt.Fprintf(w, "static FT policy: %v\n", cmp)

	section("Segment-granularity model (paper §7 future work)")
	segRes, err := s.SegmentVsSP(ftCamp)
	if err != nil {
		die("segment", err)
	}
	block(segRes)
	pol, phases, err := s.ModelDrivenDVFS(ftCamp)
	if err != nil {
		die("model dvfs", err)
	}
	mcmp, err := dvfs.Compare(wld, pol, s.RunFT)
	if err != nil {
		die("model dvfs compare", err)
	}
	fmt.Fprintf(w, "model-driven policy (auto low-gear phases %v): %v\n", phases, mcmp)
	gearPol, err := s.EDPOptimalGears(ftCamp)
	if err != nil {
		die("edp gears", err)
	}
	gcmp, err := dvfs.CompareGears(wld, gearPol, s.RunFT)
	if err != nil {
		die("edp gears compare", err)
	}
	fmt.Fprintf(w, "EDP-optimal gear schedule (%v): %v\n", gearPol, gcmp)

	section("Extension kernels — CG, MG, IS, SP speedup surfaces")
	for _, k := range []struct {
		name    string
		measure func(context.Context) (*experiments.Campaign, error)
	}{{"CG", s.MeasureCG}, {"MG", s.MeasureMG}, {"IS", s.MeasureIS}, {"SP", s.MeasureSP}} {
		camp, err := k.measure(ctx)
		if err != nil {
			die(k.name, err)
		}
		fig, err := s.FigureFrom(k.name+" (extension)", camp)
		if err != nil {
			die(k.name, err)
		}
		block(fig.Speedup)
	}

	elapsed := time.Since(start).Seconds() //palint:ignore detsource -- CLI driver: elapsed wall time is a human-facing footer, outside every golden output
	fmt.Fprintf(w, "\n---\ngenerated in %.1f s (virtual-time simulation; deterministic)\n", elapsed)
}
