// Package obs is the simulator's observability layer: hierarchical spans
// (campaign → kernel run → rank → phase), a metrics registry (counters,
// gauges, fixed-bucket histograms), and deterministic exporters — Chrome
// trace-event JSON viewable in Perfetto, a per-phase energy attribution
// report, and a reproducibility run manifest.
//
// Everything is keyed by virtual time and derived state, never the wall
// clock, so two runs of the same seed produce byte-identical exports. The
// layer follows the nil-injector pattern of package faults: a nil
// *Recorder on mpi.World costs the simulation nothing — no allocation, no
// branch beyond a pointer test, bit-identical traces — which the mpi alloc
// and golden tests enforce.
//
// Import discipline: package mpi imports obs, so obs may depend only on
// trace, power and units. Exporters therefore take a *trace.Log and plain
// values rather than an mpi.Result.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Attr is one key/value attribute on a span. Values are pre-rendered
// strings so span storage stays comparison- and export-friendly.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A builds a string attribute.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// F builds a numeric attribute, rendered shortest-exact so attributes are
// deterministic.
func F(key string, value float64) Attr { return Attr{Key: key, Value: fmtFloat(value)} }

// Span is one named interval in the hierarchy. Start and End are virtual
// seconds for run, rank and phase spans; campaign spans use summed virtual
// seconds of their cells (campaigns have no single virtual clock).
type Span struct {
	// ID is the span's index in the recorder's deterministic ordering.
	ID int `json:"id"`
	// Parent is the ID of the enclosing span, or -1 for a root.
	Parent int `json:"parent"`
	// Name labels the span: "campaign:ft", "run", "rank 3", "ft-fft-z".
	Name string `json:"name"`
	// Rank is the owning rank for rank and phase spans, -1 otherwise.
	Rank int `json:"rank"`
	// Start and End bound the span in virtual seconds.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Attrs carries the span's attributes (N, f, kernel, CPI terms, ...).
	Attrs []Attr `json:"attrs,omitempty"`
}

// Duration returns End − Start.
func (s Span) Duration() float64 { return s.End - s.Start }

// RankLog is one rank's lock-free phase-span buffer. It is owned by the
// rank's goroutine: Phase and Finish may only be called from there, exactly
// like the rank's trace.Log, so recording needs no synchronization.
type RankLog struct {
	rank   int
	phases []Span
	open   string
	start  float64
	opened bool
	end    float64
	done   bool
}

// Phase closes the currently open phase span at now and opens a new one.
// Consecutive calls with the same name are collapsed by the caller
// (mpi.Ctx.SetPhase early-returns on no-change), mirroring trace semantics.
func (l *RankLog) Phase(name string, now float64) {
	if l.opened {
		l.phases = append(l.phases, Span{Name: l.open, Rank: l.rank, Start: l.start, End: now})
	}
	l.open, l.start, l.opened = name, now, true
}

// Finish closes the open phase span at now and seals the log.
func (l *RankLog) Finish(now float64) {
	if l.done {
		return
	}
	if l.opened {
		l.phases = append(l.phases, Span{Name: l.open, Rank: l.rank, Start: l.start, End: now})
		l.opened = false
	}
	l.end, l.done = now, true
}

// Recorder collects one instrumented kernel run — its run span, per-rank
// phase spans and run-scoped metrics — plus any surrounding campaign spans.
// A recorder instruments at most one mpi run (BeginRun panics on reuse);
// campaign-level recorders that never call BeginRun just collect top-level
// spans and metrics.
type Recorder struct {
	reg *Registry

	mu    sync.Mutex
	spans []Span
	runID int
	ranks []*RankLog
}

// NewRecorder returns a recorder with its own private metrics registry, so
// concurrent runs and tests never share counts.
func NewRecorder() *Recorder {
	return &Recorder{reg: NewRegistry(), runID: -1}
}

// Metrics returns the recorder's registry.
func (r *Recorder) Metrics() *Registry { return r.reg }

// StartSpan opens a span under parent (-1 for a root) and returns its ID.
// Safe from any goroutine; campaign code calls it around cached measures.
func (r *Recorder) StartSpan(parent int, name string, start float64, attrs ...Attr) int {
	return r.StartSpanAt(parent, name, -1, start, attrs...)
}

// StartSpanAt is StartSpan with an explicit track: rank selects the
// exporter track the span renders on (-1 for track 0). The serving layer
// uses it to spread concurrent request spans across tracks so overlapping
// requests stay readable in Perfetto.
func (r *Recorder) StartSpanAt(parent int, name string, rank int, start float64, attrs ...Attr) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := len(r.spans)
	r.spans = append(r.spans, Span{ID: id, Parent: parent, Name: name, Rank: rank, Start: start, Attrs: attrs})
	return id
}

// AddSpanAttrs appends attributes to an already-started span — outcomes
// that are only known at the end (status codes, cache dispositions).
// Unknown IDs are ignored.
func (r *Recorder) AddSpanAttrs(id int, attrs ...Attr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id >= 0 && id < len(r.spans) {
		r.spans[id].Attrs = append(r.spans[id].Attrs, attrs...)
	}
}

// EndSpan closes the span at end. Unknown IDs are ignored.
func (r *Recorder) EndSpan(id int, end float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id >= 0 && id < len(r.spans) {
		r.spans[id].End = end
	}
}

// BeginRun opens the "run" span and allocates one RankLog per rank. A
// recorder instruments exactly one run; a second BeginRun panics, because
// two runs sharing per-rank buffers would interleave nondeterministically.
func (r *Recorder) BeginRun(n int, start float64, attrs ...Attr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ranks != nil {
		panic("obs: Recorder.BeginRun called twice; use one Recorder per run")
	}
	r.runID = len(r.spans)
	r.spans = append(r.spans, Span{ID: r.runID, Parent: -1, Name: "run", Rank: -1, Start: start, Attrs: attrs})
	r.ranks = make([]*RankLog, n)
	for i := range r.ranks {
		r.ranks[i] = &RankLog{rank: i}
	}
}

// AddRunAttrs appends attributes to the run span (the caller's kernel name,
// chaos spec, ...). No-op before BeginRun.
func (r *Recorder) AddRunAttrs(attrs ...Attr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.runID >= 0 {
		r.spans[r.runID].Attrs = append(r.spans[r.runID].Attrs, attrs...)
	}
}

// Rank returns rank i's phase-span log. Only valid after BeginRun.
//
//palint:ignore atomicmix -- ranks is written once inside BeginRun before any rank goroutine starts; the mpi.Run barrier publishes it
func (r *Recorder) Rank(i int) *RankLog { return r.ranks[i] }

// EndRun closes the run span at the job's makespan.
func (r *Recorder) EndRun(makespan float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.runID >= 0 {
		r.spans[r.runID].End = makespan
	}
}

// Spans returns the full hierarchy in deterministic order: top-level spans
// in creation order, then per rank (ascending) one synthesized "rank i"
// span parented to the run span followed by that rank's phase spans. IDs
// are reassigned to match the returned order.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]Span(nil), r.spans...)
	for _, l := range r.ranks {
		rankID := len(out)
		rs := Span{ID: rankID, Parent: r.runID, Name: "rank " + itoa(l.rank), Rank: l.rank, End: l.end}
		if len(l.phases) > 0 {
			rs.Start = l.phases[0].Start
		}
		out = append(out, rs)
		for _, p := range l.phases {
			p.ID = len(out)
			p.Parent = rankID
			out = append(out, p)
		}
	}
	return out
}

// itoa renders a small non-negative int without importing strconv twice
// over; ranks are tiny so the simple loop is fine.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 && i > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// globalRecorder is the process-wide observer campaign code reports spans
// to when one is installed (patrace/pachaos install one; tests and the
// plain reproduction leave it nil, which costs the store one atomic load).
var globalRecorder atomic.Pointer[Recorder]

// SetGlobal installs (or, with nil, removes) the process-wide recorder and
// returns the previous one so callers can restore it.
func SetGlobal(r *Recorder) *Recorder {
	prev := globalRecorder.Load()
	globalRecorder.Store(r)
	return prev
}

// Global returns the process-wide recorder, or nil when none is installed.
func Global() *Recorder { return globalRecorder.Load() }

// SortSpans orders spans by (rank, start, ID) in place — the layout
// exporters and tests want when combining spans from several sources.
func SortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Start != b.Start { //palint:ignore floateq -- exact inequality as sort key: equal starts fall through to the ID tie-break
			return a.Start < b.Start
		}
		return a.ID < b.ID
	})
}
