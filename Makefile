# Verification chain for the pasp repository. `make verify` is the gate a
# change must pass before merging; the individual targets are the tiers.
#
#   tier 1: build + test        (must always pass)
#   tier 2: race + lint + fmt   (race detector over the goroutine-heavy
#                                packages, go vet, the domain linter palint,
#                                and gofmt cleanliness)

GO ?= go

# Benchmark harness knobs: BENCHTIME feeds -benchtime (1x = one reproduction
# pass), BENCHJSON names the machine-readable artifact pabench writes, and
# PASP_BENCH_SUITE=quick (exported to the test process) swaps in the reduced
# suite for smoke runs.
BENCHTIME ?= 1x
BENCHJSON ?= BENCH_1.json
BENCH2JSON ?= BENCH_2.json

# Fuzz budget per target; CI's fuzz smoke runs with FUZZTIME=10s.
FUZZTIME ?= 30s

.PHONY: all build test shuffle race lint fmt-check fuzz bench bench-scale trace-smoke conformance-smoke serve-smoke verify

# trace-smoke output names; CI uploads both as artifacts.
TRACEJSON ?= run.trace.json
MANIFESTJSON ?= run.json

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Shuffled double pass: catches tests that only pass in declaration order or
# that leak state (memoized campaign stores, global gauges) between runs.
shuffle:
	$(GO) test -shuffle=on -count=2 ./...

# The mpi, cluster and simnet packages run ranks as goroutines; the race
# detector is the check that the virtual-time synchronization is real
# synchronization.
race:
	$(GO) test -race ./...

# go vet plus palint, the repo's domain-aware analyzer: the v1 per-file
# checks (unguarded float division, exact float comparison, dropped
# model-API errors, map-order output, unsynchronized goroutine writes,
# unitcheck's dimensional analysis), the v3 interprocedural passes
# (detsource nondeterminism tainting, ownfree payload ownership, atomicmix
# synchronization discipline, hotalloc hot-path allocation budgets) and
# the v4 communication passes (commshape rank-dependent collectives,
# phasebal phase discipline, deadlock symbolic rendezvous simulation).
# Suppressions live in the source as //palint:ignore comments with
# mandatory reasons; the full finding set — suppressed entries and their
# reasons included — lands in $(LINTJSON), which CI uploads per run.
LINTJSON ?= palint.json

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/palint -artifact $(LINTJSON) ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Full benchmark harness with allocation counts, teed through pabench which
# writes $(BENCHJSON). pabench is the pipeline's last stage, so a FAILing or
# empty benchmark stream fails the target even without pipefail.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) . | $(GO) run ./cmd/pabench -o $(BENCHJSON)

# Scaling harness (BenchmarkScale): FT and CG swept past the paper's 16
# nodes — per engine, N up to 1024, base and top gears — writing the
# scaling artifact $(BENCH2JSON) next to the reproduction's $(BENCHJSON).
# The simulated seconds/joules in the rows are engine-independent (the
# equivalence contract); ns/op is what the event engine buys.
bench-scale:
	PASP_BENCH_SUITE=scale $(GO) test -run '^$$' -bench Scale -benchmem -benchtime $(BENCHTIME) . | \
		PASP_BENCH_SUITE=scale $(GO) run ./cmd/pabench -o $(BENCH2JSON)

# One observed FT run through the patrace exporter. patrace validates the
# trace-event JSON against the schema and checks the per-phase energy
# attribution sums to the run total before writing anything, so a zero exit
# status certifies both artifacts; CI uploads $(TRACEJSON) and
# $(MANIFESTJSON) for loading into Perfetto.
trace-smoke:
	$(GO) run ./cmd/patrace -kernel ft -n 4 -f 600 -suite quick \
		-chaos "seed=7,jitter=0.5" -metrics \
		-out $(TRACEJSON) -manifest $(MANIFESTJSON)

# Trace conformance smoke: extract the module's communication skeleton with
# palint, run the FT kernel with the protocol recorder attached at N = 2, 4
# and 8 (quick suite) plus N = 64 on the event engine (scale suite — the
# protocol contract past the paper's grid), and replay each log against the
# skeleton with paverify. A non-zero exit means the run performed a phase
# transition, collective or message endpoint the static extraction does not
# predict — the commcheck passes and the runtime have drifted apart. CI
# uploads $(SKELJSON) and the report.
SKELJSON ?= skeleton.json
CONFREPORT ?= conformance.txt

conformance-smoke:
	$(GO) run ./cmd/palint -skeleton $(SKELJSON) ./...
	@: > $(CONFREPORT)
	@for n in 2 4 8; do \
		$(GO) run ./cmd/patrace -kernel ft -n $$n -f 600 -suite quick \
			-out /dev/null -commlog comm_$$n.json >/dev/null || exit 1; \
		$(GO) run ./cmd/paverify -skeleton $(SKELJSON) \
			-commlog comm_$$n.json -kernel ft >> $(CONFREPORT) \
			|| { cat $(CONFREPORT); exit 1; }; \
	done
	@$(GO) run ./cmd/patrace -kernel ft -n 64 -f 600 -suite scale -engine event \
		-out /dev/null -commlog comm_64.json >/dev/null || exit 1; \
	$(GO) run ./cmd/paverify -skeleton $(SKELJSON) \
		-commlog comm_64.json -kernel ft >> $(CONFREPORT) \
		|| { cat $(CONFREPORT); exit 1; }; \
	cat $(CONFREPORT)

# Short fuzz pass over the core model contract (finite, non-negative,
# error-or-value) and the chaos harness's injector/parser invariants.
# CI-sized via FUZZTIME=10s; crank FUZZTIME locally for a deeper run.
fuzz:
	$(GO) test -fuzz=FuzzTermsTime -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz=FuzzTermsSpeedup -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -fuzz=FuzzMessageFault -fuzztime=$(FUZZTIME) ./internal/faults/
	$(GO) test -fuzz=FuzzParseSpec -fuzztime=$(FUZZTIME) ./internal/faults/
	$(GO) test -fuzz=FuzzPredictRequest -fuzztime=$(FUZZTIME) ./internal/serve/
	$(GO) test -fuzz=FuzzParseGear -fuzztime=$(FUZZTIME) ./internal/serve/

# Serving smoke: start paserve on the quick suite with FT pre-warmed and
# full telemetry on (wide events to $(SERVEEVENTS), serve spans to
# $(SERVETRACE)), then drive it with paload in two strict phases — the
# cache-hit regime at 1000 QPS (the throughput floor the serving layer
# promises) and a 10 s mixed blend at 200 QPS. -strict fails the target on
# any transport error, non-2xx response (429s included: a warmed
# quick-suite server must never shed this load), or request-ID echo
# mismatch. The two phases use distinct seeds so their deterministic
# request IDs stay disjoint — pastat -strict treats a duplicate ID as a
# finding. After the graceful drain, pastat closes the loop offline: the
# wide-event log must satisfy a loose SLO, pass the telemetry-integrity
# checks, and the Perfetto trace must validate. The /metrics and
# /debug/requests scrapes, the paload JSON report, the event log, the trace
# and the pastat report are the artifacts.
SERVEADDR ?= 127.0.0.1:18080
LOADJSON ?= load.json
SERVEMETRICS ?= serve-metrics.txt
SERVEEVENTS ?= serve-events.jsonl
SERVETRACE ?= serve-trace.json
SERVEDEBUG ?= debug-requests.txt
PASTATREPORT ?= pastat-report.txt

serve-smoke:
	$(GO) build -o paserve.bin ./cmd/paserve
	$(GO) build -o paload.bin ./cmd/paload
	$(GO) build -o pastat.bin ./cmd/pastat
	@rm -f $(SERVEEVENTS); \
	./paserve.bin -addr $(SERVEADDR) -suite quick -warm ft \
		-events $(SERVEEVENTS) -trace $(SERVETRACE) -ring 512 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	up=0; for i in $$(seq 1 100); do \
		curl -fsS http://$(SERVEADDR)/healthz >/dev/null 2>&1 && { up=1; break; }; \
		sleep 0.2; done; \
	[ $$up -eq 1 ] || { echo "paserve did not come up on $(SERVEADDR)"; exit 1; }; \
	./paload.bin -url http://$(SERVEADDR) -qps 1000 -duration 5s -seed 1 \
		-mix predict -kernel ft -n 4 -f 1400mhz -strict -json $(LOADJSON) || exit 1; \
	./paload.bin -url http://$(SERVEADDR) -qps 200 -duration 10s -seed 2 \
		-mix quick -kernel ft -n 4 -f 1400mhz -strict || exit 1; \
	curl -fsS http://$(SERVEADDR)/metrics > $(SERVEMETRICS) || exit 1; \
	curl -fsS http://$(SERVEADDR)/debug/requests > $(SERVEDEBUG) || exit 1; \
	trap - EXIT; \
	kill -TERM $$pid && wait $$pid || exit 1; \
	./pastat.bin -events $(SERVEEVENTS) -strict \
		-slo p99=2s,err_rate=0.001 -validate-trace $(SERVETRACE) \
		> $(PASTATREPORT); status=$$?; cat $(PASTATREPORT); \
	[ $$status -eq 0 ] || exit 1; \
	echo "serve-smoke OK"

verify: build test lint fmt-check race
