package papi

import (
	"testing"
	"testing/quick"

	"pasp/internal/machine"
	"pasp/internal/stats"
)

func TestEventNames(t *testing.T) {
	want := map[Event]string{
		TotIns: "PAPI_TOT_INS",
		L1DCA:  "PAPI_L1_DCA",
		L1DCM:  "PAPI_L1_DCM",
		L2TCA:  "PAPI_L2_TCA",
		L2TCM:  "PAPI_L2_TCM",
	}
	for e, s := range want {
		if e.String() != s {
			t.Errorf("%d.String() = %q, want %q", e, e.String(), s)
		}
	}
}

func TestAddWorkIdentities(t *testing.T) {
	var c Counters
	c.AddWork(machine.W(10, 20, 5, 2))
	cases := []struct {
		e    Event
		want float64
	}{
		{TotIns, 37},
		{L1DCA, 27},
		{L1DCM, 7},
		{L2TCA, 7},
		{L2TCM, 2},
	}
	for _, tc := range cases {
		if got := c.Get(tc.e); got != tc.want {
			t.Errorf("%v = %g, want %g", tc.e, got, tc.want)
		}
	}
}

func TestDecomposeRoundTrip(t *testing.T) {
	w := machine.W(145e9, 175e9, 4.71e9, 3.97e9) // Table 5's LU counts
	var c Counters
	c.AddWork(w)
	got, err := c.Decompose()
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	for l := machine.Reg; l < machine.NumLevels; l++ {
		if !stats.AlmostEqual(got.Ops[l], w.Ops[l], 1e-12) {
			t.Errorf("level %v: got %g, want %g", l, got.Ops[l], w.Ops[l])
		}
	}
}

func TestDecomposeRejectsInconsistent(t *testing.T) {
	var c Counters
	// L1_DCA exceeding TOT_INS is impossible on real hardware.
	c.v[TotIns] = 5
	c.v[L1DCA] = 10
	if _, err := c.Decompose(); err == nil {
		t.Error("inconsistent counters decomposed without error")
	}
}

func TestAddAndReset(t *testing.T) {
	var a, b Counters
	a.AddWork(machine.W(1, 1, 1, 1))
	b.AddWork(machine.W(2, 2, 2, 2))
	a.Add(b)
	if got := a.Get(TotIns); got != 12 {
		t.Errorf("after Add, TOT_INS = %g, want 12", got)
	}
	a.Reset()
	if a.Get(TotIns) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestDerivationsCoverAllLevels(t *testing.T) {
	d := Derivations()
	for l := machine.Reg; l < machine.NumLevels; l++ {
		if d[l] == "" {
			t.Errorf("missing derivation for %v", l)
		}
	}
}

// Property: AddWork → Decompose is the identity on any non-negative mix.
func TestRoundTripProperty(t *testing.T) {
	f := func(reg, l1, l2, mem uint32) bool {
		w := machine.W(float64(reg), float64(l1), float64(l2), float64(mem))
		var c Counters
		c.AddWork(w)
		got, err := c.Decompose()
		if err != nil {
			return false
		}
		return got == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: counters are additive — accounting two mixes separately equals
// accounting their sum.
func TestAdditiveProperty(t *testing.T) {
	f := func(a, b [4]uint32) bool {
		wa := machine.W(float64(a[0]), float64(a[1]), float64(a[2]), float64(a[3]))
		wb := machine.W(float64(b[0]), float64(b[1]), float64(b[2]), float64(b[3]))
		var c1, c2 Counters
		c1.AddWork(wa)
		c1.AddWork(wb)
		c2.AddWork(wa.Add(wb))
		return c1 == c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
