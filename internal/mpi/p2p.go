package mpi

import (
	"fmt"

	"pasp/internal/trace"
)

// message is one point-to-point transfer in flight.
type message struct {
	tag    int
	data   []float64
	vbytes int
	// arrival is when the last byte reaches the receiver's port (eager
	// protocol), already including the sender's egress serialization and
	// the wire latency.
	arrival float64
	// ready is the sender's clock after protocol processing; used by the
	// rendezvous and exchange protocols, where the transfer cannot start
	// before both sides are ready.
	ready float64
	// rendezvous marks a large message whose sender blocks until the
	// receiver drains it; done carries the sender's completion time back.
	rendezvous bool
	// exchange marks a message sent from inside SendRecv, whose timing is
	// symmetric (both sides block).
	exchange bool
	done     chan float64
}

// Bytes returns the size used for timing: the virtual byte count when set,
// otherwise 8 bytes per float64 of payload.
func (m message) Bytes() int {
	if m.vbytes > 0 {
		return m.vbytes
	}
	return 8 * len(m.data)
}

func (c *Ctx) box(src, dst int) chan message { return c.rt.box(src, dst) }

// msgFaultDelays draws the chaos perturbation of one received message and
// splits it into the retry backoff (dropped transmissions redelivered after
// exponentially backed-off timeouts) and the fault stretch (degraded
// serialization plus latency jitter). Delivery-side injection keeps the
// draw order deterministic: per-pair FIFO fixes which message each Recv
// sees, and the receiving rank's draw stream advances in its own program
// order. The caller must have checked c.faults != nil.
func (c *Ctx) msgFaultDelays(bytes int) (backoff, stretch float64) {
	net := &c.rt.w.Net
	f := c.faults.Message(net.LatencySec)
	c.retries += f.Retries
	backoff = c.faults.BackoffSec(f.Retries)
	stretch = (net.DegradedWireTime(bytes, f.WireFactor) - net.WireTime(bytes)) +
		(net.JitteredLatency(f.ExtraLatencySec) - net.LatencySec)
	return backoff, stretch
}

// chargeMsgFaults appends the injected intervals of one received message
// after its clean bookkeeping: backoff under the Retry kind, then the
// stretch under the Fault kind, both billed at the poll utilization (the
// receiver busy-waits through them like any other communication stall).
func (c *Ctx) chargeMsgFaults(backoff, stretch float64) error {
	if err := c.advanceFault(backoff, trace.Retry, c.rt.w.PollUtil); err != nil {
		return err
	}
	return c.advanceFault(stretch, trace.Fault, c.rt.w.PollUtil)
}

// Send transmits data to rank dst with the given tag. vbytes, when
// positive, overrides the timed message size so a scaled-down payload can
// stand in for a full-size NAS-class message; pass 0 to time the actual
// payload. Small messages use the eager protocol (the sender only pays its
// CPU overhead); messages above the rendezvous threshold block the sender
// until the receiver arrives, like MPICH's rendezvous protocol.
func (c *Ctx) Send(dst, tag int, data []float64, vbytes int) error {
	if err := c.checkPeer("destination", dst); err != nil {
		return err
	}
	if c.rec != nil {
		c.rec.add(recOp{kind: opSend, peer: dst, tag: tag, nlen: len(data), vbytes: vbytes})
	}
	c.noteP2P(trace.CommSend, dst, tag)
	// MPI semantics: the send buffer is the caller's again as soon as Send
	// returns, so the payload must be snapshotted here — senders routinely
	// reuse (and mutate) their buffers immediately.
	m := message{tag: tag, data: c.snapshotPayload(data), vbytes: vbytes}
	b := m.Bytes()
	c.noteMsgs(1, b)
	net := &c.rt.w.Net
	o := c.cpuOverhead(b)
	m.ready = c.clock + o

	if net.Rendezvous(b) {
		m.rendezvous = true
		if c.ev != nil {
			// Event engine: enqueue, then park until the receiver reports
			// the sender-side completion time. The completion flags are set
			// by the receiver under the execution token, so no channel is
			// needed.
			if err := c.ev.eng.send(c, dst, m); err != nil {
				return err
			}
			doneAt, err := c.ev.eng.waitRendezvous(c)
			if err != nil {
				return err
			}
			c.egressFree = doneAt
			return c.advanceComm(doneAt)
		}
		if c.done == nil {
			c.done = make(chan float64, 1)
		}
		m.done = c.done
		select {
		case c.box(c.rank, dst) <- m:
		case <-c.rt.abort:
			return ErrAborted
		}
		select {
		case doneAt := <-m.done:
			c.egressFree = doneAt
			return c.advanceComm(doneAt)
		case <-c.rt.abort:
			// The receiver may still complete this rendezvous during
			// teardown; abandon the channel so a stale completion can never
			// be mistaken for a future message's.
			c.done = nil
			return ErrAborted
		}
	}

	// Eager: inject as soon as both the stack work is done and the port is
	// free; the sender returns after its CPU overhead.
	injectStart := m.ready
	if c.egressFree > injectStart {
		injectStart = c.egressFree
	}
	injectEnd := injectStart + net.WireTime(b)
	c.egressFree = injectEnd
	m.arrival = injectEnd + net.LatencySec
	if err := c.post(dst, m); err != nil {
		return err
	}
	return c.advanceComm(m.ready)
}

// post enqueues an outbound message on the engine-appropriate queue,
// blocking on mailboxDepth backpressure.
//
//palint:hotpath
func (c *Ctx) post(dst int, m message) error {
	if c.ev != nil {
		return c.ev.eng.send(c, dst, m)
	}
	select {
	case c.box(c.rank, dst) <- m: //palint:ignore hotalloc -- the mailbox literal allocates only on a pair's first message; every later send reuses the published channel
		return nil
	case <-c.rt.abort:
		return ErrAborted
	}
}

// Recv receives the next message from rank src, which must carry the given
// tag (per-pair FIFO ordering is guaranteed, as in MPI). It returns the
// payload. The returned slice is owned exclusively by the caller; once its
// contents have been copied out or consumed, the caller may recycle it with
// Free.
func (c *Ctx) Recv(src, tag int) ([]float64, error) {
	if c.rec != nil {
		c.rec.add(recOp{kind: opRecv, peer: src, tag: tag})
	}
	return c.recvTimed(src, tag)
}

// recvTimed is Recv without the recording hook: SendRecv's interior receive
// goes through here so a recorded SendRecv replays as one operation, not
// two.
func (c *Ctx) recvTimed(src, tag int) ([]float64, error) {
	if err := c.checkPeer("source", src); err != nil {
		return nil, err
	}
	c.noteP2P(trace.CommRecv, src, tag)
	var m message
	if c.ev != nil {
		var err error
		if m, err = c.ev.eng.recv(c, src); err != nil {
			return nil, err
		}
	} else {
		select {
		case m = <-c.box(src, c.rank):
		case <-c.rt.abort:
			return nil, ErrAborted
		}
	}
	if m.tag != tag {
		c.rt.doAbort()
		return nil, fmt.Errorf("mpi: rank %d expected tag %d from rank %d, got %d", c.rank, tag, src, m.tag)
	}
	b := m.Bytes()
	net := &c.rt.w.Net
	or := c.cpuOverhead(b)

	switch {
	case m.rendezvous:
		// Transfer starts once both sides are ready; the sender streams the
		// data (staying busy), the receiver gets it a latency plus wire
		// time later.
		start := m.ready
		if c.clock > start {
			start = c.clock
		}
		if c.egressFree > start {
			// Receiver's CTS cannot overtake its own port activity; a minor
			// effect, ignored for the ingress side.
			_ = start
		}
		var backoff, stretch float64
		if c.faults != nil {
			// The handshake retries and the perturbed transfer hold the
			// sender too: its completion reflects the same injected time.
			backoff, stretch = c.msgFaultDelays(b)
		}
		wire := net.WireTime(b)
		senderDone := start + wire + backoff + stretch
		if c.ev != nil {
			c.ev.eng.completeRendezvous(src, senderDone)
		} else {
			m.done <- senderDone
		}
		end := start + net.LatencySec + wire
		if end < c.ingressBusy+wire {
			end = c.ingressBusy + wire
		}
		c.ingressBusy = end + backoff + stretch
		if err := c.advanceComm(end + or); err != nil {
			return nil, err
		}
		if err := c.chargeMsgFaults(backoff, stretch); err != nil {
			return nil, err
		}
		return m.data, nil

	case m.exchange:
		// Symmetric exchange: completes when both sides were ready plus one
		// transfer.
		start := m.ready
		if c.clock > start {
			start = c.clock
		}
		end := start + net.LatencySec + net.WireTime(b)
		if end < c.ingressBusy+net.WireTime(b) {
			end = c.ingressBusy + net.WireTime(b)
		}
		c.ingressBusy = end
		if c.faults == nil {
			return m.data, c.advanceComm(end + or)
		}
		backoff, stretch := c.msgFaultDelays(b)
		c.ingressBusy = end + backoff + stretch
		if err := c.advanceComm(end + or); err != nil {
			return nil, err
		}
		if err := c.chargeMsgFaults(backoff, stretch); err != nil {
			return nil, err
		}
		return m.data, nil

	default:
		// Eager: data is available at m.arrival; the ingress port can only
		// drain one message at a time.
		end := m.arrival
		if min := c.ingressBusy + net.WireTime(b); end < min {
			end = min
		}
		c.ingressBusy = end
		if c.faults == nil {
			return m.data, c.advanceComm(end + or)
		}
		// A dropped eager message is redelivered: the receiver eats the
		// retransmission timeouts (Retry) and the perturbed transfer
		// (Fault) before the payload is usable.
		backoff, stretch := c.msgFaultDelays(b)
		c.ingressBusy = end + backoff + stretch
		if err := c.advanceComm(end + or); err != nil {
			return nil, err
		}
		if err := c.chargeMsgFaults(backoff, stretch); err != nil {
			return nil, err
		}
		return m.data, nil
	}
}

// SendRecv exchanges messages with two (possibly equal) peers: data goes to
// dst while a message is received from src. Both transfers are timed as a
// full-duplex exchange, so a symmetric neighbour exchange cannot deadlock
// regardless of message size.
func (c *Ctx) SendRecv(dst, src, tag int, data []float64, vbytes int) ([]float64, error) {
	if err := c.checkPeer("destination", dst); err != nil {
		return nil, err
	}
	if c.rec != nil {
		c.rec.add(recOp{kind: opSendRecv, peer: dst, peer2: src, tag: tag, nlen: len(data), vbytes: vbytes})
	}
	c.noteP2P(trace.CommSend, dst, tag)
	net := &c.rt.w.Net
	out := message{tag: tag, data: c.snapshotPayload(data), vbytes: vbytes, exchange: true}
	c.noteMsgs(1, out.Bytes())
	out.ready = c.clock + c.cpuOverhead(out.Bytes())
	c.egressFree = out.ready + net.WireTime(out.Bytes())
	if err := c.post(dst, out); err != nil {
		return nil, err
	}
	got, err := c.recvTimed(src, tag)
	if err != nil {
		return nil, err
	}
	// Recv advanced the clock past the incoming transfer; the outgoing one
	// overlaps on the full-duplex link, so no extra charge beyond the send
	// CPU overhead already folded into out.ready (covered because the
	// exchange completion takes the max of both ready times at the peer).
	return got, nil
}
