package core

import (
	"testing"
	"testing/quick"

	"pasp/internal/stats"
	"pasp/internal/units"
)

func TestDOPValidate(t *testing.T) {
	if err := (DOP{}).Validate(); err == nil {
		t.Error("empty decomposition accepted")
	}
	if err := (DOP{Classes: map[int]DOPClass{0: {OnSec: 1}}}).Validate(); err == nil {
		t.Error("DOP 0 accepted")
	}
	if err := (DOP{Classes: map[int]DOPClass{2: {OnSec: -1}}}).Validate(); err == nil {
		t.Error("negative time accepted")
	}
}

func TestSpeedupFactor(t *testing.T) {
	cases := []struct {
		i, n int
		want float64
	}{
		{1, 16, 1},
		{8, 16, 8},
		{16, 16, 16},
		{17, 16, 8.5},   // 2 batches: 17/2
		{32, 16, 16},    // 2 batches: 32/2
		{33, 16, 11},    // 3 batches: 33/3
		{5, 2, 5.0 / 3}, // 3 batches
	}
	for _, c := range cases {
		if got := speedupFactor(c.i, c.n); !stats.AlmostEqual(got, c.want, 1e-12) {
			t.Errorf("speedupFactor(%d,%d) = %g, want %g", c.i, c.n, got, c.want)
		}
	}
}

// Eq. 9 reduces to Eq. 11 on a two-class decomposition.
func TestDOPMatchesTermsOnTwoClasses(t *testing.T) {
	po := func(n int) float64 { return 0.1 * float64(n) }
	d := DOP{
		Classes: map[int]DOPClass{
			1:  {OnSec: 5, OffSec: 2},
			16: {OnSec: 80, OffSec: 13},
		},
		POOff: po,
	}
	terms, err := d.Terms()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 8, 16} {
		for _, r := range []units.Ratio{1, 2, 7.0 / 3} {
			a, err := d.Time(n, r)
			if err != nil {
				t.Fatal(err)
			}
			b, err := terms.Time(n, r)
			if err != nil {
				t.Fatal(err)
			}
			if !stats.AlmostEqual(a, b, 1e-12) {
				t.Errorf("N=%d r=%g: Eq.9 %g ≠ Eq.11 %g", n, float64(r), a, b)
			}
		}
	}
}

func TestDOPTermsRejectsMiddleClasses(t *testing.T) {
	d := DOP{Classes: map[int]DOPClass{1: {OnSec: 1}, 4: {OnSec: 1}, 16: {OnSec: 1}}}
	if _, err := d.Terms(); err == nil {
		t.Error("three-class decomposition converted to Terms")
	}
}

// Footnote 2: with DOP above the processor count, the class still helps but
// in batches. m=32 work on 16 processors runs exactly 16× faster, and on 15
// processors slower than that.
func TestDOPFootnote2Ceiling(t *testing.T) {
	d := DOP{Classes: map[int]DOPClass{32: {OnSec: 32}}}
	t16, err := d.Time(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(t16, 2, 1e-12) {
		t.Errorf("T(16) = %g, want 2 (two full batches)", t16)
	}
	t15, err := d.Time(15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if t15 <= t16 {
		t.Errorf("T(15) = %g not above T(16) = %g", t15, t16)
	}
	// Speedup can never exceed N even when DOP is larger.
	s, err := d.Speedup(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s > 16+1e-12 {
		t.Errorf("speedup %g exceeds N", s)
	}
}

func TestDOPAverageParallelism(t *testing.T) {
	// Equal time at DOP 1 and DOP 3: A = 2/(1+1/3) = 1.5.
	d := DOP{Classes: map[int]DOPClass{1: {OnSec: 1}, 3: {OnSec: 1}}}
	a, err := d.AverageParallelism()
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(a, 1.5, 1e-12) {
		t.Errorf("average parallelism %g, want 1.5", a)
	}
}

func TestDOPSpeedupBound(t *testing.T) {
	d := DOP{Classes: map[int]DOPClass{1: {OnSec: 10}, 10: {OnSec: 90}}}
	bound, err := d.SpeedupBound(1)
	if err != nil {
		t.Fatal(err)
	}
	// T1 = 100, T∞ = 10 + 9 = 19.
	if !stats.AlmostEqual(bound, 100.0/19, 1e-12) {
		t.Errorf("bound %g, want %g", bound, 100.0/19)
	}
	// The bound is respected at every finite n.
	for _, n := range []int{2, 10, 1000} {
		s, err := d.Speedup(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if s > bound+1e-9 {
			t.Errorf("speedup %g at N=%d exceeds bound %g", s, n, bound)
		}
	}
}

func TestUniformDOP(t *testing.T) {
	d, err := UniformDOP(4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.DOPs(); len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Errorf("DOPs = %v", got)
	}
	t1, err := d.Time(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(t1, 12, 1e-12) {
		t.Errorf("T1 = %g, want 12", t1)
	}
	if _, err := UniformDOP(0, 1, 1); err == nil {
		t.Error("m=0 accepted")
	}
}

// Property: DOP speedup is monotone non-decreasing in n and bounded by n·r.
func TestDOPSpeedupMonotoneBoundedProperty(t *testing.T) {
	d := DOP{
		Classes: map[int]DOPClass{
			1: {OnSec: 3, OffSec: 1},
			4: {OnSec: 20, OffSec: 5},
			9: {OnSec: 40, OffSec: 8},
		},
	}
	f := func(aRaw, bRaw, rRaw uint8) bool {
		a, b := int(aRaw)%20+1, int(bRaw)%20+1
		if a > b {
			a, b = b, a
		}
		r := units.Ratio(1 + float64(rRaw)/192)
		sa, err1 := d.Speedup(a, r)
		sb, err2 := d.Speedup(b, r)
		if err1 != nil || err2 != nil {
			return false
		}
		return sa <= sb+1e-9 && sb <= float64(b)*float64(r)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
