package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pasp/internal/experiments"
	"pasp/internal/obs"
)

// variantSeq numbers quickVariant calls so every invocation gets its own
// campaign-store identity — also across `go test -count=2`, where a fixed
// tag would find the first pass's memoized campaign and break the
// fresh-entry assumptions (storm counting, admission, cancellation).
var variantSeq atomic.Int64

// quickVariant returns the quick suite with an invocation-unique platform
// fingerprint (MaxNodes is far above the grid, so the semantics do not
// change). The campaign store is process-wide and content-keyed, so each
// test that needs *fresh* store entries must use a platform nothing else
// measures — and a unique platform makes every kernel of the suite fresh.
func quickVariant() experiments.Suite {
	s := experiments.Quick()
	s.Platform.MaxNodes = 1000 + int(variantSeq.Add(1))
	return s
}

// newTestServer builds a Server on its own metric registry (the store's
// counters stay on obs.Default regardless) and mounts it on httptest.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// post sends body to path and returns the status and response body.
func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestPredictValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Suite: experiments.Quick(), SuiteName: "quick"})
	cases := []struct {
		name, body string
		want       int
	}{
		{"empty", ``, http.StatusBadRequest},
		{"not json", `}{`, http.StatusBadRequest},
		{"unknown field", `{"kernel":"ft","n":4,"f":1400,"x":1}`, http.StatusBadRequest},
		{"trailing data", `{"kernel":"ft","n":4,"f":1400} true`, http.StatusBadRequest},
		{"no kernel", `{"n":4,"f":1400}`, http.StatusBadRequest},
		{"no n", `{"kernel":"ft","f":1400}`, http.StatusBadRequest},
		{"negative n", `{"kernel":"ft","n":-4,"f":1400}`, http.StatusBadRequest},
		{"no f", `{"kernel":"ft","n":4}`, http.StatusBadRequest},
		{"zero f", `{"kernel":"ft","n":4,"f":0}`, http.StatusBadRequest},
		{"negative f", `{"kernel":"ft","n":4,"f":-600}`, http.StatusBadRequest},
		{"null f", `{"kernel":"ft","n":4,"f":null}`, http.StatusBadRequest},
		{"nan f", `{"kernel":"ft","n":4,"f":NaN}`, http.StatusBadRequest},
		{"string nan f", `{"kernel":"ft","n":4,"f":"nan"}`, http.StatusBadRequest},
		{"inf f", `{"kernel":"ft","n":4,"f":"inf"}`, http.StatusBadRequest},
		{"garbage f", `{"kernel":"ft","n":4,"f":"fast"}`, http.StatusBadRequest},
		{"unknown kernel", `{"kernel":"zz","n":4,"f":1400}`, http.StatusNotFound},
		{"off-grid n", `{"kernel":"ft","n":3,"f":1400}`, http.StatusNotFound},
		{"off-grid f", `{"kernel":"ft","n":4,"f":1234}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := post(t, ts, "/predict", tc.body)
			if code != tc.want {
				t.Fatalf("status = %d, want %d (body %s)", code, tc.want, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Fatalf("error body %q is not the uniform error payload", body)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{Suite: experiments.Quick()})
	resp, err := http.Get(ts.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Fatalf("Allow = %q, want POST", allow)
	}
}

func TestBodyByteCap(t *testing.T) {
	_, ts := newTestServer(t, Config{Suite: experiments.Quick(), MaxBodyBytes: 64})
	big := fmt.Sprintf(`{"kernel":"ft","n":4,"f":1400,"pad":%q}`, strings.Repeat("x", 256))
	code, body := post(t, ts, "/predict", big)
	if code != http.StatusBadRequest {
		t.Fatalf("oversized body = %d (%s), want 400", code, body)
	}
	if !bytes.Contains(body, []byte("over 64 bytes")) {
		t.Fatalf("error %s does not mention the byte cap", body)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Suite: experiments.Quick(), SuiteName: "quick"})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if want := `{"status":"ok","suite":"quick"}` + "\n"; string(data) != want {
		t.Fatalf("healthz = %q, want %q", data, want)
	}
}

func TestMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Suite: experiments.Quick(), Registry: reg})
	if _, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(text, []byte("counter serve.healthz.requests 1")) {
		t.Fatalf("text metrics missing the healthz request count:\n%s", text)
	}
	resp2, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp2.Body).Decode(&snap); err != nil {
		t.Fatalf("JSON metrics do not decode as a snapshot: %v", err)
	}
	if snap.Counter("serve.healthz.requests") < 1 {
		t.Fatal("JSON metrics missing the healthz request count")
	}
}

// TestStormCoalesces pins the tentpole concurrency claim: k identical
// concurrent /predict requests for an unmeasured kernel cost exactly one
// campaign measurement. The store's counters are the witness — one miss
// (the leader), and every other request either coalesces onto the flight
// (a store hit) or, if it arrives after completion, answers from the
// admission-free peek path. Either way: k requests, one simulation.
func TestStormCoalesces(t *testing.T) {
	reg := obs.NewRegistry()
	srv, ts := newTestServer(t, Config{Suite: quickVariant(), MaxInFlight: 64, Registry: reg})
	const k = 16
	before := obs.Default().Snapshot()

	body := `{"kernel":"ft","n":4,"f":1400}`
	codes := make([]int, k)
	bodies := make([][]byte, k)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	close(start)
	wg.Wait()

	delta := obs.Default().Snapshot().Delta(before)
	misses := delta.Counter("store.misses")
	hits := delta.Counter("store.hits")
	peeks := reg.Counter("serve.predict.cache_hits").Value()
	if misses != 1 {
		t.Errorf("store.misses delta = %g, want exactly 1 (one simulation for %d requests)", misses, k)
	}
	if hits+peeks != k-1 {
		t.Errorf("store.hits (%g) + peek hits (%g) = %g, want %d", hits, peeks, hits+peeks, k-1)
	}
	for i := range codes {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d answered different bytes than request 0", i)
		}
	}
	if got := srv.reg.Counter("serve.predict.requests").Value(); got != k {
		t.Errorf("serve.predict.requests = %g, want %d", got, k)
	}
}

// TestAdmissionFullHouse pins the 429 contract: with every slot held,
// simulating requests bounce with Retry-After while peek-served cache hits
// keep flowing; freeing a slot readmits.
func TestAdmissionFullHouse(t *testing.T) {
	reg := obs.NewRegistry()
	srv, ts := newTestServer(t, Config{Suite: quickVariant(), MaxInFlight: 2, RetryAfterSec: 3, Registry: reg})

	// Measure FT through the server first so it peeks afterwards.
	if code, body := post(t, ts, "/predict", `{"kernel":"ft","n":4,"f":1400}`); code != http.StatusOK {
		t.Fatalf("warm request: %d (%s)", code, body)
	}

	srv.slots <- struct{}{} // hold both admission slots
	srv.slots <- struct{}{}

	resp, err := http.Post(ts.URL+"/predict", "application/json",
		strings.NewReader(`{"kernel":"ep","n":4,"f":1400}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full house = %d (%s), want 429", resp.StatusCode, body)
	}
	// The warm request led a flight, so the hint is adaptive: ceil of the
	// median led-flight duration, at least 1 s — not the configured
	// fallback (TestRetryAfterFallsBackWhenUnmeasured pins that case).
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if want, ok := reg.Histogram("serve.flight.seconds", nil).Quantile(0.5); !ok {
		t.Fatal("warm flight was not observed in serve.flight.seconds")
	} else if expect := int(math.Ceil(want)); ra != expect && !(want < 1 && ra == 1) {
		t.Fatalf("Retry-After = %d, want ceil(median flight) = %d", ra, expect)
	}
	if got := reg.Counter("serve.rejected").Value(); got != 1 {
		t.Fatalf("serve.rejected = %g, want 1", got)
	}
	// Cache hits are not admission-controlled.
	if code, body := post(t, ts, "/predict", `{"kernel":"ft","n":4,"f":1400}`); code != http.StatusOK {
		t.Fatalf("cache hit under full house: %d (%s), want 200", code, body)
	}
	// A freed slot readmits.
	srv.release()
	if code, body := post(t, ts, "/predict", `{"kernel":"ep","n":4,"f":1400}`); code != http.StatusOK {
		t.Fatalf("after release: %d (%s), want 200", code, body)
	}
	srv.release()
}

// TestCancelledRequestReleasesSlot pins the drain property: a client that
// goes away mid-measurement frees its admission slot, the abandoned sweep
// is not cached, and the next request re-measures successfully.
func TestCancelledRequestReleasesSlot(t *testing.T) {
	srv, ts := newTestServer(t, Config{Suite: quickVariant(), MaxInFlight: 1})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/predict",
		strings.NewReader(`{"kernel":"ft","n":4,"f":1400}`))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// Give the handler a moment to take the slot, then pull the plug.
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled request unexpectedly completed")
	}

	// The slot must come back; the handler releases it on its way out.
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.slots) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("admission slot still held %d ms after cancellation", 5000)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The abandoned measurement was not cached: a fresh request re-measures
	// and succeeds on the single remaining slot.
	if code, body := post(t, ts, "/predict", `{"kernel":"ft","n":4,"f":1400}`); code != http.StatusOK {
		t.Fatalf("post-cancellation request: %d (%s), want 200", code, body)
	}
}

func TestSweepRowsInSweepOrder(t *testing.T) {
	s := experiments.Quick()
	_, ts := newTestServer(t, Config{Suite: s})
	code, body := post(t, ts, "/sweep", `{"kernel":"ep"}`)
	if code != http.StatusOK {
		t.Fatalf("sweep: %d (%s)", code, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if want := len(s.Grid.Ns) * len(s.Grid.MHz); len(resp.Rows) != want {
		t.Fatalf("sweep has %d rows, want %d", len(resp.Rows), want)
	}
	i := 0
	for _, n := range s.Grid.Ns {
		for _, f := range s.Grid.MHz {
			if resp.Rows[i].N != n || resp.Rows[i].MHz != f {
				t.Fatalf("row %d is (N=%d, f=%g), want (N=%d, f=%g) — not sweep order",
					i, resp.Rows[i].N, resp.Rows[i].MHz, n, f)
			}
			i++
		}
	}
}

func TestTraceEndpointServesValidPerfetto(t *testing.T) {
	_, ts := newTestServer(t, Config{Suite: experiments.Quick()})
	code, body := post(t, ts, "/trace", `{"kernel":"ft","n":2,"f":1000}`)
	if code != http.StatusOK {
		t.Fatalf("trace: %d (%s)", code, body)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace body is not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	// An impossible configuration is the client's fault, not a 500.
	if code, _ := post(t, ts, "/trace", `{"kernel":"ft","n":100000,"f":1000}`); code != http.StatusBadRequest {
		t.Fatalf("impossible trace config: %d, want 400", code)
	}
}

func TestRobustnessEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Suite: experiments.Quick()})
	code, body := post(t, ts, "/robustness",
		`{"kernel":"ft","ns":[2,4],"magnitudes":[0,1],"seed":7}`)
	if code != http.StatusOK {
		t.Fatalf("robustness: %d (%s)", code, body)
	}
	var resp RobustnessResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.SPErr) != 2 || len(resp.SPErr[0]) != 2 {
		t.Fatalf("SPErr shape %dx%d, want 2x2", len(resp.SPErr), len(resp.SPErr[0]))
	}
	// Magnitude 0 is the control row: the clean fit is exact at the base
	// frequency, so the SP error must be identically zero.
	if resp.SPErr[0][0] != 0 || resp.SPErr[0][1] != 0 {
		t.Fatalf("control-row SP error %v, want zeros", resp.SPErr[0])
	}
	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"off-grid n", `{"kernel":"ft","ns":[3],"magnitudes":[0,1]}`, http.StatusBadRequest},
		{"no magnitudes", `{"kernel":"ft","ns":[2]}`, http.StatusBadRequest},
		{"bad chaos", `{"kernel":"ft","ns":[2],"magnitudes":[0,1],"chaos":"zap=1"}`, http.StatusBadRequest},
		{"unknown kernel", `{"kernel":"zz","ns":[2],"magnitudes":[0,1]}`, http.StatusNotFound},
	} {
		if code, body := post(t, ts, "/robustness", tc.body); code != tc.want {
			t.Fatalf("%s: %d (%s), want %d", tc.name, code, body, tc.want)
		}
	}
}
