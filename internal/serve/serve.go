// Package serve exposes the prediction pipeline as an HTTP/JSON service:
// measured campaigns, SP/FP model predictions, robustness sweeps and
// Perfetto traces, all computed on demand and memoized by the process-wide
// campaign store.
//
// The server's concurrency model has two tiers. Requests answerable from an
// already-measured campaign (the steady-state regime) take a lock-free peek
// at the store and bypass admission entirely, so cache hits stay cheap at
// thousands of QPS. Requests that need simulation first acquire one of a
// bounded set of slots — a full house answers 429 with Retry-After instead
// of queueing unboundedly — and then join the store's per-entry
// singleflight, so any number of concurrent identical requests cost one
// sweep. The caller's context travels into cluster.Sweep; when every
// interested request has gone away the sweep itself is cancelled.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"pasp/internal/cluster"
	"pasp/internal/experiments"
	"pasp/internal/faults"
	"pasp/internal/obs"
	"pasp/internal/stats"
)

// statusClientClosed is the non-standard status reported when the client
// cancelled the request before the answer was ready (nginx's 499
// convention). The connection is gone, so the code is only visible in the
// metrics — it keeps abandoned requests out of the 5xx error budget.
const statusClientClosed = 499

// Config parameterizes a Server. The zero value of every field has a
// usable default.
type Config struct {
	// Suite supplies the platform, grids and kernel classes.
	Suite experiments.Suite
	// SuiteName labels the suite in /healthz ("paper", "quick", "scale").
	SuiteName string
	// MaxInFlight bounds concurrently *simulating* requests — cache hits
	// are not admission-controlled. Default 4.
	MaxInFlight int
	// RetryAfterSec is the Retry-After hint on 429 responses. Default 1.
	RetryAfterSec int
	// MaxBodyBytes caps request bodies. Default 64 KiB.
	MaxBodyBytes int64
	// Registry receives the server's metrics. Default obs.Default(), which
	// also carries the campaign store's hit/miss/coalesced counters, so one
	// /metrics scrape shows the whole pipeline.
	Registry *obs.Registry
	// Events receives one wide event per request and backs /debug/requests.
	// nil (the default) disables per-request event telemetry entirely —
	// responses and the remaining instruments are byte-identical either way.
	Events *obs.EventLog
	// Trace receives one span per request, under which the campaign spans
	// of any simulations the request triggered nest (via the store's global
	// recorder). nil disables request spans.
	Trace *obs.Recorder
}

// Server is the HTTP frontend. Create one with New and mount Handler.
type Server struct {
	suite     experiments.Suite
	suiteName string
	kernels   map[string]experiments.Kernel
	reg       *obs.Registry
	// slots is the admission semaphore: held while a request is entitled to
	// run (or wait on) a simulation, never by peek-served cache hits.
	slots      chan struct{}
	retryAfter string
	maxBody    int64
	fits       fitCache
	events     *obs.EventLog
	trace      *obs.Recorder
	// epoch anchors request-span timestamps and the uptime gauge; idSeed
	// and idSeq key the splitmix64 request-ID stream; spanSeq spreads
	// request spans across exporter tracks; flights feeds the adaptive
	// Retry-After hint with led-flight durations.
	epoch   time.Time
	idSeed  uint64
	idSeq   atomic.Uint64
	spanSeq atomic.Uint64
	flights *obs.Histogram
}

// New builds a server over cfg, applying defaults for zero fields.
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4
	}
	if cfg.RetryAfterSec <= 0 {
		cfg.RetryAfterSec = 1
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 10
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.SuiteName == "" {
		cfg.SuiteName = "custom"
	}
	epoch := time.Now() //palint:ignore detsource -- the server's epoch is host time by definition
	return &Server{
		suite:      cfg.Suite,
		suiteName:  cfg.SuiteName,
		kernels:    cfg.Suite.Kernels(),
		reg:        cfg.Registry,
		slots:      make(chan struct{}, cfg.MaxInFlight),
		retryAfter: fmt.Sprintf("%d", cfg.RetryAfterSec),
		maxBody:    cfg.MaxBodyBytes,
		events:     cfg.Events,
		trace:      cfg.Trace,
		epoch:      epoch,
		idSeed:     splitmix64(uint64(epoch.UnixNano())),
		flights:    cfg.Registry.Histogram("serve.flight.seconds", flightBuckets),
	}
}

// Handler returns the server's routed, instrumented handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.instrument("predict", http.MethodPost, s.handlePredict))
	mux.HandleFunc("/sweep", s.instrument("sweep", http.MethodPost, s.handleSweep))
	mux.HandleFunc("/robustness", s.instrument("robustness", http.MethodPost, s.handleRobustness))
	mux.HandleFunc("/trace", s.instrument("trace", http.MethodPost, s.handleTrace))
	mux.HandleFunc("/healthz", s.instrument("healthz", http.MethodGet, s.handleHealthz))
	mux.HandleFunc("/metrics", s.instrument("metrics", http.MethodGet, s.handleMetrics))
	mux.HandleFunc("/debug/requests", s.instrument("debug.requests", http.MethodGet, s.handleDebugRequests))
	return mux
}

// statusWriter records the response status for the status-class counters
// and the error message (set by writeError) for the wide event.
type statusWriter struct {
	http.ResponseWriter
	code   int
	errMsg string
}

func (w *statusWriter) WriteHeader(c int) {
	if w.code == 0 {
		w.code = c
	}
	w.ResponseWriter.WriteHeader(c)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps h with the per-endpoint plumbing: method enforcement,
// the request-body byte cap, request-ID assignment and propagation, the
// serve.<name>.{requests,inflight,seconds,status.Nxx} instruments, and —
// when the server carries an event log or trace recorder — the reqTrack
// accumulating the request's wide event and span.
func (s *Server) instrument(name, method string, h http.HandlerFunc) http.HandlerFunc {
	requests := s.reg.Counter("serve." + name + ".requests")
	inflight := s.reg.Gauge("serve." + name + ".inflight")
	latency := s.reg.Histogram("serve."+name+".seconds", obs.SecondsBuckets)
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		// Every response echoes the request's ID — the client's handle for
		// correlating its own logs with the server's wide events.
		id := s.requestID(r)
		sw.Header().Set("X-Request-ID", id)
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeError(sw, http.StatusMethodNotAllowed,
				fmt.Errorf("serve: %s %s (the endpoint takes %s)", r.Method, r.URL.Path, method))
			s.reg.Counter(fmt.Sprintf("serve.%s.status.%dxx", name, sw.code/100)).Inc()
			return
		}
		requests.Inc()
		inflight.Add(1)
		// Request latency is wall-clock by definition: it measures this
		// process, not the simulated cluster.
		start := time.Now() //palint:ignore detsource -- serving latency is host time, not virtual time
		ctx := obs.WithRequestID(r.Context(), id)
		var t *reqTrack
		if s.events != nil || s.trace != nil {
			t = &reqTrack{start: start, last: start, spanID: -1}
			t.ev.ID = id
			t.ev.Target = name
			if s.trace != nil {
				track := int(s.spanSeq.Add(1)-1) % requestTracks
				t.spanID = s.trace.StartSpanAt(-1, "req:"+name, track,
					start.Sub(s.epoch).Seconds(), obs.A("request_id", id))
				// The campaign span of any simulation this request leads
				// nests under the request span (recordCampaignSpan reads
				// the parent from the measurement context).
				ctx = obs.WithSpanParent(ctx, t.spanID)
			}
			ctx = withTrack(ctx, t)
		}
		r = r.WithContext(ctx)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		h(sw, r)
		elapsed := time.Since(start) //palint:ignore detsource -- serving latency is host time, not virtual time
		latency.Observe(elapsed.Seconds())
		inflight.Add(-1)
		s.reg.Counter(fmt.Sprintf("serve.%s.status.%dxx", name, sw.code/100)).Inc()
		s.finishRequest(t, sw, elapsed)
	}
}

// acquire takes an admission slot, or answers 429 + Retry-After and
// reports false when MaxInFlight simulations are already running. The
// Retry-After value adapts to how long this server's flights actually take
// (see retryAfterHint).
func (s *Server) acquire(w http.ResponseWriter) bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		s.reg.Counter("serve.rejected").Inc()
		w.Header().Set("Retry-After", s.retryAfterHint())
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("serve: %d simulations already in flight", cap(s.slots)))
		return false
	}
}

// release returns an admission slot.
func (s *Server) release() { <-s.slots }

// isCtxErr reports whether err is a context cancellation or deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// writeRunError maps a measurement failure to a status: the client taking
// its context away is 499 (its problem, not ours); anything else is 500.
func writeRunError(w http.ResponseWriter, err error) {
	if isCtxErr(err) {
		writeError(w, statusClientClosed, fmt.Errorf("serve: client cancelled: %w", err))
		return
	}
	writeError(w, http.StatusInternalServerError, err)
}

// kernel resolves the request's kernel name, answering 404 on miss.
func (s *Server) kernel(w http.ResponseWriter, name string) (experiments.Kernel, bool) {
	k, ok := s.kernels[name]
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("serve: unknown kernel %q (have %v)", name, s.suite.KernelNames()))
	}
	return k, ok
}

// onGrid reports whether (n, mhz) is a cell of g.
func onGrid(g cluster.Grid, n int, mhz float64) bool {
	foundN := false
	for _, gn := range g.Ns {
		if gn == n {
			foundN = true
			break
		}
	}
	if !foundN {
		return false
	}
	for _, f := range g.MHz {
		if f == mhz { //palint:ignore floateq -- grid membership: gears are discrete identity values (ParseGear round-trips them exactly), not measurements
			return true
		}
	}
	return false
}

// campaign returns the kernel's measured campaign: peek-served from the
// store when already measured (counted on hits, no admission slot), else
// measured under an admission slot with the request's context. On failure
// the response has been written and ok is false.
func (s *Server) campaign(w http.ResponseWriter, r *http.Request, k experiments.Kernel, hits *obs.Counter) (*experiments.Campaign, bool) {
	t := trackFrom(r.Context())
	if camp, ok := k.Peek(); ok {
		hits.Inc()
		t.lap(stagePeek)
		t.setCache("hit", "")
		return camp, true
	}
	t.lap(stagePeek)
	if !s.acquire(w) {
		return nil, false
	}
	t.lap(stageAdmission)
	defer s.release()
	// The flight annotation slot tells us afterwards whether this request
	// led the simulation, coalesced onto another request's flight, or found
	// the entry measured — which decides both the event's cache disposition
	// and which stage the elapsed time belongs to.
	var fi obs.FlightInfo
	ctx := obs.WithFlightInfo(r.Context(), &fi)
	begin := time.Now() //palint:ignore detsource -- flight duration is host time feeding the Retry-After hint
	camp, err := k.Measure(ctx)
	d := time.Since(begin) //palint:ignore detsource -- flight duration is host time feeding the Retry-After hint
	switch fi.Mode {
	case obs.FlightCoalesced:
		t.addStage(stageCoalesce, d)
		t.setCache("coalesced", fi.Leader)
	case obs.FlightDone:
		// Measured between the peek and the store call — a hit in all but
		// timing; the (tiny) wait is store bookkeeping, charged to peek.
		t.addStage(stagePeek, d)
		t.setCache("hit", "")
	default:
		t.addStage(stageSweep, d)
		t.setCache("miss", "")
		if err == nil {
			s.flights.Observe(d.Seconds())
		}
	}
	if err != nil {
		writeRunError(w, err)
		return nil, false
	}
	return camp, true
}

// PredictResponse is the answer for one configuration. The fields are a
// deterministic function of the measured campaign and the fitted models —
// no timestamps, engine tags or pointers — which is what lets the contract
// goldens demand byte-identical bodies across engines and GOMAXPROCS.
type PredictResponse struct {
	Kernel string  `json:"kernel"`
	N      int     `json:"n"`
	MHz    float64 `json:"mhz"`
	// Measured values of the cell.
	Seconds float64 `json:"seconds"`
	Joules  float64 `json:"joules"`
	Watts   float64 `json:"watts"`
	EDP     float64 `json:"edp"`
	Speedup float64 `json:"speedup"`
	// SP-model predictions (Eq. 18) and their relative error.
	SPSeconds float64 `json:"sp_seconds"`
	SPSpeedup float64 `json:"sp_speedup"`
	SPErr     float64 `json:"sp_err"`
	// FP-model predictions, present only where the full parameterization is
	// fittable for this kernel (it needs per-N message statistics).
	FPSeconds *float64 `json:"fp_seconds,omitempty"`
	FPErr     *float64 `json:"fp_err,omitempty"`
}

// predictRow assembles one PredictResponse from a measured campaign.
func (s *Server) predictRow(k experiments.Kernel, camp *experiments.Campaign, n int, mhz float64) (PredictResponse, error) {
	res, err := camp.Cell(n, mhz)
	if err != nil {
		return PredictResponse{}, err
	}
	speedup, err := camp.Meas.Speedup(n, mhz)
	if err != nil {
		return PredictResponse{}, err
	}
	f := s.fits.fit(s.suite, k, camp)
	if f.spErr != nil {
		return PredictResponse{}, f.spErr
	}
	spT, err := f.sp.PredictTime(n, mhz)
	if err != nil {
		return PredictResponse{}, err
	}
	spS, err := f.sp.PredictSpeedup(n, mhz)
	if err != nil {
		return PredictResponse{}, err
	}
	row := PredictResponse{
		Kernel:    k.Name,
		N:         n,
		MHz:       mhz,
		Seconds:   res.Seconds,
		Joules:    res.Joules,
		Watts:     res.AvgWatts(),
		EDP:       res.EDP(),
		Speedup:   speedup,
		SPSeconds: spT,
		SPSpeedup: spS,
		SPErr:     stats.RelError(spT, res.Seconds),
	}
	if f.fpErr == nil {
		if fpT, err := f.fp.PredictTime(n, mhz); err == nil {
			v := float64(fpT)
			e := stats.RelError(v, res.Seconds)
			row.FPSeconds, row.FPErr = &v, &e
		}
	}
	return row, nil
}

// handlePredict answers POST /predict: one kernel configuration.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	t := trackFrom(r.Context())
	var req PredictRequest
	if err := decode(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	k, ok := s.kernel(w, req.Kernel)
	if !ok {
		return
	}
	if !onGrid(k.Grid, req.N, req.F.MHz) {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("serve: (N=%d, f=%g MHz) is not on %s's campaign grid (Ns %v, MHz %v)",
				req.N, req.F.MHz, k.Name, k.Grid.Ns, k.Grid.MHz))
		return
	}
	t.lap(stageDecode)
	t.setConfig(k.Name, req.N, req.F.MHz)
	camp, ok := s.campaign(w, r, k, s.reg.Counter("serve.predict.cache_hits"))
	if !ok {
		return
	}
	row, err := s.predictRow(k, camp, req.N, req.F.MHz)
	t.lap(stageFit)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, row)
	t.lap(stageEncode)
}

// SweepResponse is the answer for a kernel's full campaign grid, rows in
// sweep order (N-major, frequency-minor — exactly the cell order of
// cluster.Sweep).
type SweepResponse struct {
	Kernel string            `json:"kernel"`
	Rows   []PredictResponse `json:"rows"`
}

// handleSweep answers POST /sweep: every cell of the kernel's grid.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	t := trackFrom(r.Context())
	var req SweepRequest
	if err := decode(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	k, ok := s.kernel(w, req.Kernel)
	if !ok {
		return
	}
	t.lap(stageDecode)
	t.setConfig(k.Name, 0, 0)
	camp, ok := s.campaign(w, r, k, s.reg.Counter("serve.sweep.cache_hits"))
	if !ok {
		return
	}
	resp := SweepResponse{Kernel: k.Name, Rows: make([]PredictResponse, 0, len(camp.Cells))}
	for _, cell := range camp.Cells {
		row, err := s.predictRow(k, camp, cell.N, cell.MHz)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		resp.Rows = append(resp.Rows, row)
	}
	t.lap(stageFit)
	writeJSON(w, http.StatusOK, resp)
	t.lap(stageEncode)
}

// RobustnessResponse is the answer for a perturbation sweep. Matrices are
// indexed [magnitude][n], mirroring experiments.RobustnessResult.
type RobustnessResponse struct {
	Kernel     string      `json:"kernel"`
	BaseMHz    float64     `json:"base_mhz"`
	Ns         []int       `json:"ns"`
	Magnitudes []float64   `json:"magnitudes"`
	MeasSec    [][]float64 `json:"meas_sec"`
	SPErr      [][]float64 `json:"sp_err"`
	FPErr      [][]float64 `json:"fp_err"`
	FaultSec   [][]float64 `json:"fault_sec"`
	Retries    [][]int     `json:"retries"`
}

// handleRobustness answers POST /robustness: fit on the clean campaign,
// score against perturbed measurements. The perturbed cells are fresh
// simulations, so the request always holds an admission slot.
func (s *Server) handleRobustness(w http.ResponseWriter, r *http.Request) {
	var req RobustnessRequest
	if err := decode(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	k, ok := s.kernel(w, req.Kernel)
	if !ok {
		return
	}
	cfg := experiments.DefaultRobustnessFaults(req.Seed)
	if req.Chaos != "" {
		var err error
		cfg, err = faults.ParseSpec(req.Chaos)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	spec := experiments.RobustnessSpec{
		Kernel:     req.Kernel,
		Ns:         req.Ns,
		Magnitudes: req.Magnitudes,
		Faults:     cfg,
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	for _, n := range spec.Ns {
		if !onGrid(k.Grid, n, k.Grid.MHz[0]) {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("serve: robustness N=%d is not on %s's campaign grid %v", n, k.Name, k.Grid.Ns))
			return
		}
	}
	t := trackFrom(r.Context())
	t.lap(stageDecode)
	t.setConfig(k.Name, 0, 0)
	if !s.acquire(w) {
		return
	}
	t.lap(stageAdmission)
	defer s.release()
	res, err := s.suite.Robustness(r.Context(), spec)
	t.lap(stageSweep)
	if err != nil {
		writeRunError(w, err)
		return
	}
	defer t.lap(stageEncode)
	writeJSON(w, http.StatusOK, RobustnessResponse{
		Kernel:     res.Spec.Kernel,
		BaseMHz:    res.BaseMHz,
		Ns:         res.Spec.Ns,
		Magnitudes: res.Spec.Magnitudes,
		MeasSec:    res.MeasSec,
		SPErr:      res.SPErr,
		FPErr:      res.FPErr,
		FaultSec:   res.FaultSec,
		Retries:    res.Retries,
	})
}

// handleTrace answers POST /trace: one observed run exported as validated
// Chrome trace-event JSON (open the body in ui.perfetto.dev). The run is a
// fresh simulation at any (n, f) the platform supports — not limited to
// the campaign grid — so it always holds an admission slot.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	var req TraceRequest
	if err := decode(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, ok := s.kernel(w, req.Kernel); !ok {
		return
	}
	cfg, err := faults.ParseSpec(req.Chaos)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	t := trackFrom(r.Context())
	t.lap(stageDecode)
	t.setConfig(req.Kernel, req.N, req.F.MHz)
	if !s.acquire(w) {
		return
	}
	t.lap(stageAdmission)
	defer s.release()
	st := s.suite
	st.Platform.Faults = cfg
	res, err := st.RunKernelOnce(req.Kernel, req.N, req.F.MHz)
	t.lap(stageSweep)
	if err != nil {
		// The platform rejecting the configuration (too many nodes, no such
		// operating point) is the client's asking, not a server fault.
		writeError(w, http.StatusBadRequest, err)
		return
	}
	data := obs.ChromeTrace(res.Trace, "paserve "+req.Kernel)
	if _, err := obs.ValidateChromeTrace(data); err != nil {
		writeError(w, http.StatusInternalServerError,
			fmt.Errorf("serve: refusing to send invalid trace: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
	t.lap(stageEncode)
}

// healthBody is the /healthz payload.
type healthBody struct {
	Status string `json:"status"`
	Suite  string `json:"suite"`
}

// handleHealthz answers GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthBody{Status: "ok", Suite: s.suiteName})
}

// handleMetrics answers GET /metrics: the registry snapshot as the obs
// text exposition, or JSON with ?format=json. Go runtime gauges are
// refreshed on every scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.runtimeGauges()
	snap := s.reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		data, err := snap.JSON()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, snap.Text())
}
