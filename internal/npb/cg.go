package npb

import (
	"fmt"
	"math"

	"pasp/internal/machine"
	"pasp/internal/mpi"
)

// CG is the NAS conjugate-gradient kernel: estimate the smallest
// eigenvalue of a sparse symmetric positive-definite matrix with inverse
// power iteration, solving A·z = x by OuterIters × CGIters conjugate
// gradient steps. Its profile complements EP and FT: the sparse
// matrix-vector product streams the matrix from memory every iteration
// (strongly OFF-chip bound, so DVFS barely hurts it), and every CG step
// costs a chain of latency-bound allreduces (the dot products — CG's
// classic scaling bottleneck on commodity networks) plus halo exchanges of
// the band-width vector segments the SpMV needs from the neighbours.
//
// The matrix is the symmetric 7-band operator d·I − shifts at offsets
// ±1, ±Band, ±Band² (a 3-D Laplacian flattened to 1-D bands), which is SPD
// for d > 6 and gives CG the NPB kernel's streaming access pattern while
// keeping the spectrum — and therefore the convergence behaviour —
// verifiable in closed form. (NPB's randomized makea pattern is replaced
// by a deterministic one; the communication and memory profile, which is
// what the power-aware model sees, is preserved.)
type CG struct {
	// Size is the matrix dimension; it must be divisible by the rank count.
	Size int
	// Band is the stride of the outer diagonal bands; 0 picks the cube
	// root of Size (the flattened 3-D structure's natural strides 1, m, m²).
	Band int
	// OuterIters is the number of inverse-power iterations.
	OuterIters int
	// CGIters is the number of CG steps per solve (NPB uses 25).
	CGIters int
	// Diag is the diagonal value d > 6; 0 picks the NPB-flavoured 6.5.
	Diag float64
	// Scale inflates the timed matrix workload, modelling a denser
	// operator (NPB's makea has ~11 nonzeros per row and heavy setup); it
	// deliberately does not widen the halo exchanges, which depend on the
	// band structure, not the density. 0 means 1.
	Scale float64
}

// Per-nonzero and per-vector-element instruction mixes. The matrix row
// (values + indices) streams from memory each SpMV; the source vector is
// L2-resident at NAS sizes.
const (
	cgNnzReg = 2.0
	cgNnzL1  = 1.2
	cgNnzL2  = 0.5
	cgNnzMem = 0.25
	cgVecReg = 3.0 // axpy/dot per element
	cgVecL1  = 2.0
	cgVecMem = 0.25
)

// nnzPerRow is the band count of the operator.
const nnzPerRow = 7

// CGResult is the kernel's verifiable outcome.
type CGResult struct {
	// Zeta is the eigenvalue estimate after the final outer iteration.
	Zeta float64
	// Residual is the final CG residual norm of the last solve.
	Residual float64
}

// Name returns the kernel's NAS name.
func (c CG) Name() string { return "CG" }

func (c CG) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

func (c CG) band() int {
	if c.Band > 0 {
		return c.Band
	}
	return int(math.Round(math.Cbrt(float64(c.Size))))
}

func (c CG) diag() float64 {
	if c.Diag != 0 {
		return c.Diag
	}
	return 6.5
}

// Validate reports an error for unusable parameters on n ranks.
func (c CG) Validate(n int) error {
	if c.Size < 8 {
		return fmt.Errorf("npb: CG size %d, want ≥ 8", c.Size)
	}
	if c.Size%n != 0 {
		return fmt.Errorf("npb: CG size %d not divisible by %d ranks", c.Size, n)
	}
	if c.OuterIters < 1 || c.CGIters < 1 {
		return fmt.Errorf("npb: CG iterations must be ≥ 1")
	}
	if b := c.band(); b < 2 || b*b >= c.Size {
		return fmt.Errorf("npb: CG band %d out of range for size %d", b, c.Size)
	}
	if b := c.band(); c.Size/n < b*b {
		return fmt.Errorf("npb: CG rows per rank %d below halo width %d; reduce ranks or band", c.Size/n, b*b)
	}
	if c.diag() <= 6 {
		return fmt.Errorf("npb: CG diagonal %g ≤ 6 is not positive definite", c.diag())
	}
	if c.Scale < 0 {
		return fmt.Errorf("npb: CG negative scale")
	}
	return nil
}

// Run executes CG on the world.
func (c CG) Run(w mpi.World) (CGResult, *mpi.Result, error) {
	if err := c.Validate(w.N); err != nil {
		return CGResult{}, nil, err
	}
	var out CGResult
	res, err := mpi.Run(w, func(ctx *mpi.Ctx) error {
		r, err := c.rank(ctx)
		if err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			out = r
		}
		return nil
	})
	if err != nil {
		return CGResult{}, nil, err
	}
	return out, res, nil
}

// cgState carries one rank's share: rows [lo, hi) of the operator plus a
// halo-extended vector buffer.
type cgState struct {
	c      CG
	ctx    *mpi.Ctx
	lo, hi int
	n      int
	band   int
	halo   int // band² — the widest off-diagonal reach
	d      float64
	scale  float64
	xExt   []float64 // len rows + 2·halo; local values at [halo, halo+rows)
}

// haloExchange fills xExt's halo regions with the neighbours' boundary
// segments of the local vector x. Sends toward higher ranks run first (the
// top rank anchors the chain), so rendezvous-sized halos cannot deadlock.
func (s *cgState) haloExchange(x []float64) error {
	rows := s.hi - s.lo
	copy(s.xExt[s.halo:], x)
	if s.ctx.Size() == 1 {
		return nil
	}
	s.ctx.SetPhase("cg-halo")
	rank, n := s.ctx.Rank(), s.ctx.Size()
	vb := s.halo * 8
	// Upward: my top halo-width segment feeds the upper neighbour's lower
	// halo.
	if rank+1 < n {
		if err := s.ctx.Send(rank+1, 80, x[rows-s.halo:], vb); err != nil {
			return err
		}
	}
	if rank > 0 {
		got, err := s.ctx.Recv(rank-1, 80)
		if err != nil {
			return err
		}
		copy(s.xExt[:s.halo], got)
		s.ctx.Free(got)
	} else {
		for i := 0; i < s.halo; i++ {
			s.xExt[i] = 0 // domain boundary
		}
	}
	// Downward: my bottom segment feeds the lower neighbour's upper halo.
	if rank > 0 {
		if err := s.ctx.Send(rank-1, 81, x[:s.halo], vb); err != nil {
			return err
		}
	}
	if rank+1 < n {
		got, err := s.ctx.Recv(rank+1, 81)
		if err != nil {
			return err
		}
		copy(s.xExt[s.halo+rows:], got)
		s.ctx.Free(got)
	} else {
		for i := s.halo + rows; i < len(s.xExt); i++ {
			s.xExt[i] = 0
		}
	}
	return nil
}

// spmv computes y = A·x for the local rows; x is the local segment, and
// the band neighbours come from the halo exchange.
func (s *cgState) spmv(x []float64, y []float64) error {
	if err := s.haloExchange(x); err != nil {
		return err
	}
	s.ctx.SetPhase("cg-spmv")
	// Every neighbour offset is within ±band² = ±halo of row i, so all
	// seven accesses land inside xExt: [0, halo) and [halo+rows, end) hold
	// the neighbours' boundary segments or explicit zeros at the domain
	// edges (haloExchange), which reproduces the old out-of-domain guard
	// without a branch per access.
	b, b2 := s.band, s.halo
	xe, d := s.xExt, s.d
	for j := 0; j < s.hi-s.lo; j++ {
		e := j + b2
		y[j] = d*xe[e] - xe[e-1] - xe[e+1] - xe[e-b] - xe[e+b] - xe[e-b2] - xe[e+b2]
	}
	rows := float64(s.hi - s.lo)
	nnz := rows * nnzPerRow
	return s.ctx.Compute(machine.W(
		nnz*cgNnzReg*s.scale, nnz*cgNnzL1*s.scale, nnz*cgNnzL2*s.scale, nnz*cgNnzMem*s.scale))
}

// billVector accounts k vector operations (dot/axpy) over the local rows.
func (s *cgState) billVector(k float64) error {
	rows := float64(s.hi-s.lo) * k
	return s.ctx.Compute(machine.W(
		rows*cgVecReg*s.scale, rows*cgVecL1*s.scale, 0, rows*cgVecMem*s.scale))
}

// dot computes the global dot product of two local segments.
func (s *cgState) dot(a, b []float64) (float64, error) {
	local := 0.0
	for i := range a {
		local += a[i] * b[i]
	}
	if err := s.billVector(1); err != nil {
		return 0, err
	}
	sum, err := s.ctx.Allreduce([]float64{local}, mpi.Sum, 8)
	if err != nil {
		return 0, err
	}
	return sum[0], nil
}

func (c CG) rank(ctx *mpi.Ctx) (CGResult, error) {
	n := c.Size
	rows := n / ctx.Size()
	b := c.band()
	s := &cgState{
		c:     c,
		ctx:   ctx,
		lo:    ctx.Rank() * rows,
		hi:    (ctx.Rank() + 1) * rows,
		n:     n,
		band:  b,
		halo:  b * b,
		d:     c.diag(),
		scale: c.scale(),
	}
	s.xExt = make([]float64, rows+2*s.halo)

	ctx.SetPhase("cg-init") //palint:ignore phasebal -- cg-init labels allocation that bills no virtual time by design; the zero-width phase keeps the event stream stable
	// x starts as the all-ones vector, as in NPB.
	x := make([]float64, rows)
	for i := range x {
		x[i] = 1
	}
	z := make([]float64, rows)
	r := make([]float64, rows)
	p := make([]float64, rows)
	q := make([]float64, rows)

	var result CGResult
	for outer := 0; outer < c.OuterIters; outer++ {
		// Solve A z = x by CGIters steps of conjugate gradient.
		ctx.SetPhase("cg-solve")
		for i := range z {
			z[i] = 0
			r[i] = x[i]
			p[i] = x[i]
		}
		rho, err := s.dot(r, r)
		if err != nil {
			return CGResult{}, err
		}
		for it := 0; it < c.CGIters; it++ {
			if err := s.spmv(p, q); err != nil {
				return CGResult{}, err
			}
			ctx.SetPhase("cg-solve")
			pq, err := s.dot(p, q)
			if err != nil {
				return CGResult{}, err
			}
			if pq == 0 {
				return CGResult{}, fmt.Errorf("npb: CG breakdown, p·q = 0 at iteration %d", it)
			}
			alpha := rho / pq
			for i := range z {
				z[i] += alpha * p[i]
				r[i] -= alpha * q[i]
			}
			if err := s.billVector(2); err != nil {
				return CGResult{}, err
			}
			rhoNew, err := s.dot(r, r)
			if err != nil {
				return CGResult{}, err
			}
			if rho == 0 {
				return CGResult{}, fmt.Errorf("npb: CG breakdown, r·r = 0 at iteration %d", it)
			}
			beta := rhoNew / rho
			rho = rhoNew
			for i := range p {
				p[i] = r[i] + beta*p[i]
			}
			if err := s.billVector(1); err != nil {
				return CGResult{}, err
			}
		}
		result.Residual = math.Sqrt(rho)

		// ζ = shift + 1/(x·z); x = z/‖z‖.
		ctx.SetPhase("cg-norm")
		xz, err := s.dot(x, z)
		if err != nil {
			return CGResult{}, err
		}
		zz, err := s.dot(z, z)
		if err != nil {
			return CGResult{}, err
		}
		norm := math.Sqrt(zz)
		if norm == 0 {
			return CGResult{}, fmt.Errorf("npb: CG produced the zero vector after outer iteration %d", outer)
		}
		for i := range x {
			x[i] = z[i] / norm
		}
		if err := s.billVector(1); err != nil {
			return CGResult{}, err
		}
		if xz == 0 {
			return CGResult{}, fmt.Errorf("npb: CG breakdown, x·z = 0 after outer iteration %d", outer)
		}
		result.Zeta = 1 / xz
	}
	return result, nil
}
