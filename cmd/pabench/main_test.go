package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleStream = `goos: linux
goarch: amd64
pkg: pasp
cpu: Intel(R) Xeon(R)
BenchmarkTable1-8      	       1	1317150123 ns/op	        12.34 maxerr%	         5.67 meanerr%	  123456 B/op	    1234 allocs/op
BenchmarkFigure2-8     	       2	 658575061 ns/op	         1.50 speedup@16x600
some table row that is not a benchmark
BenchmarkTable1-8      	       1	1317150124 ns/op	        12.34 maxerr%
PASS
ok  	pasp	49.601s
`

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkTable1-8 \t 1 \t 1317150123 ns/op \t 12.34 maxerr% \t 123456 B/op \t 1234 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if b.Name != "Table1" {
		t.Errorf("name %q, want Table1", b.Name)
	}
	if b.Iterations != 1 {
		t.Errorf("iterations %d, want 1", b.Iterations)
	}
	want := map[string]float64{"ns/op": 1317150123, "maxerr%": 12.34, "B/op": 123456, "allocs/op": 1234}
	for k, v := range want {
		if b.Metrics[k] != v {
			t.Errorf("metric %q = %g, want %g", k, b.Metrics[k], v)
		}
	}
}

func TestParseBenchLineRejectsNonBenchmarks(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  \tpasp\t49.601s",
		"goos: linux",
		"N    600   800  1000",
		"BenchmarkBroken-8\tnot-a-number\t12 ns/op",
		"Benchmark0nly-8\t1", // result line with no metrics
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q parsed as a benchmark", line)
		}
	}
}

func TestRunTeesAndCollects(t *testing.T) {
	var out strings.Builder
	benches, failed, err := run(strings.NewReader(sampleStream), &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Error("stream without FAIL reported as failed")
	}
	if out.String() != sampleStream {
		t.Error("tee output differs from input")
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(benches))
	}
}

func TestRunDetectsFail(t *testing.T) {
	var out strings.Builder
	_, failed, err := run(strings.NewReader("--- FAIL: BenchmarkX\nFAIL\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("FAIL line not detected")
	}
}

func TestReportSortsAndMarshalsDeterministically(t *testing.T) {
	var out strings.Builder
	benches, _, err := run(strings.NewReader(sampleStream), &out)
	if err != nil {
		t.Fatal(err)
	}
	rep := report("", benches)
	if rep.Suite != "paper" {
		t.Errorf("default suite %q, want paper", rep.Suite)
	}
	if got := []string{rep.Benchmarks[0].Name, rep.Benchmarks[1].Name, rep.Benchmarks[2].Name}; got[0] != "Figure2" || got[1] != "Table1" || got[2] != "Table1" {
		t.Errorf("sorted names %v, want [Figure2 Table1 Table1]", got)
	}
	// The duplicate Table1 rows must keep input order (stable sort).
	if rep.Benchmarks[1].Metrics["ns/op"] != 1317150123 || rep.Benchmarks[2].Metrics["ns/op"] != 1317150124 {
		t.Error("stable sort did not preserve the input order of duplicate names")
	}
	a, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(report("", append([]Bench(nil), rep.Benchmarks...)))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("marshalling the same report twice produced different bytes")
	}
}
