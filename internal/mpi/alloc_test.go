package mpi

import (
	"testing"

	"pasp/internal/obs"
)

// pingPongAllocs measures the allocations of one full Run executing rounds
// eager ping-pong exchanges between two ranks.
func pingPongAllocs(t *testing.T, rounds int) float64 {
	t.Helper()
	w := testWorld(2, 600)
	data := []float64{1, 2, 3, 4}
	return testing.AllocsPerRun(3, func() {
		_, err := Run(w, func(c *Ctx) error {
			for r := 0; r < rounds; r++ {
				if c.Rank() == 0 {
					if err := c.Send(1, 7, data, 32); err != nil {
						return err
					}
					got, err := c.Recv(1, 8)
					if err != nil {
						return err
					}
					c.Free(got)
				} else {
					got, err := c.Recv(0, 7)
					if err != nil {
						return err
					}
					c.Free(got)
					if err := c.Send(0, 8, data, 32); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestEagerPathAllocs pins the steady-state allocation cost of the eager
// Send/Recv path. Differencing two round counts cancels every per-Run fixed
// cost (goroutines, mailboxes, result assembly) and isolates the per-round
// marginal allocations. Before payload pooling each round allocated at
// least two payload snapshots (one per Send); the freelist brings the
// steady state to zero, and the budget of one allocation per round keeps
// the required ≥50% reduction enforced with headroom for runtime noise.
func TestEagerPathAllocs(t *testing.T) {
	const r = 64
	base := pingPongAllocs(t, r)
	double := pingPongAllocs(t, 2*r)
	perRound := (double - base) / r
	if perRound > 1.0 {
		t.Errorf("eager ping-pong allocates %.2f allocs/round, want ≤ 1 (pre-pooling cost was ≥ 2)", perRound)
	}
}

// obsPingPongAllocs is pingPongAllocs with a fresh observability recorder
// attached to each Run, measuring the enabled recording path.
func obsPingPongAllocs(t *testing.T, rounds int) float64 {
	t.Helper()
	data := []float64{1, 2, 3, 4}
	return testing.AllocsPerRun(3, func() {
		w := testWorld(2, 600)
		w.Obs = obs.NewRecorder()
		_, err := Run(w, func(c *Ctx) error {
			for r := 0; r < rounds; r++ {
				if c.Rank() == 0 {
					if err := c.Send(1, 7, data, 32); err != nil {
						return err
					}
					got, err := c.Recv(1, 8)
					if err != nil {
						return err
					}
					c.Free(got)
				} else {
					got, err := c.Recv(0, 7)
					if err != nil {
						return err
					}
					c.Free(got)
					if err := c.Send(0, 8, data, 32); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestObsEnabledSteadyStateAllocs pins the recording hot path's allocation
// cost: per-round, an *enabled* recorder must stay within the same ≤1
// alloc/round budget as the plain path, because steady-state recording is
// atomic histogram increments only — spans allocate on SetPhase, not per
// message. Differencing two round counts cancels the recorder's fixed
// per-run cost (rank logs, registry, the initial phase span) and isolates
// the marginal cost the lock-free design promises is zero.
func TestObsEnabledSteadyStateAllocs(t *testing.T) {
	const r = 64
	base := obsPingPongAllocs(t, r)
	double := obsPingPongAllocs(t, 2*r)
	perRound := (double - base) / r
	if perRound > 1.0 {
		t.Errorf("observed eager ping-pong allocates %.2f allocs/round, want ≤ 1 (recording must be alloc-free per message)", perRound)
	}
}
