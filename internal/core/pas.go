package core

import (
	"fmt"
	"math"

	"pasp/internal/units"
)

// Terms is the execution-time decomposition of the paper's Eq. 11,
// expressed as the time each component takes at the reference point
// (1 processor, base frequency f0). The components are:
//
//	SeqOn  — T(w1_ON, f0):  serial work scaled by frequency, not by N
//	SeqOff — T(w1_OFF):     serial work scaled by neither
//	ParOn  — T(wN_ON, f0):  parallelizable work scaled by both
//	ParOff — T(wN_OFF):     parallelizable work scaled by N only
//	POOn   — T(wPO_ON, f0): parallel overhead scaled by frequency
//	POOff  — T(wPO_OFF):    parallel overhead scaled by neither
//
// Overheads are functions of N because the overhead workload grows with
// the processor count; nil functions mean zero overhead.
type Terms struct {
	SeqOn, SeqOff float64
	ParOn, ParOff float64
	POOn, POOff   func(n int) float64
}

// Validate reports an error for components that are not finite,
// non-negative times. NaN and ±Inf are rejected explicitly: they satisfy
// no ordering, so a plain sign check would silently accept them and
// poison every downstream prediction.
func (t Terms) Validate() error {
	for _, c := range [...]float64{t.SeqOn, t.SeqOff, t.ParOn, t.ParOff} {
		if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
			return fmt.Errorf("core: time component %g in %+v is not a finite non-negative time", c, t)
		}
	}
	return nil
}

func (t Terms) poOn(n int) float64 {
	if t.POOn == nil || n == 1 {
		return 0
	}
	return t.POOn(n)
}

func (t Terms) poOff(n int) float64 {
	if t.POOff == nil || n == 1 {
		return 0
	}
	return t.POOff(n)
}

// Time evaluates Eq. 11's denominator: the execution time on n processors
// at frequency ratio r = f/f0.
func (t Terms) Time(n int, r units.Ratio) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("core: N = %d", n)
	}
	rf := float64(r)
	if math.IsNaN(rf) || rf <= 0 {
		return 0, fmt.Errorf("core: frequency ratio %g not positive", rf)
	}
	if err := t.Validate(); err != nil {
		return 0, err
	}
	on, off := t.poOn(n), t.poOff(n)
	if math.IsNaN(on) || math.IsInf(on, 0) || on < 0 ||
		math.IsNaN(off) || math.IsInf(off, 0) || off < 0 {
		return 0, fmt.Errorf("core: overhead (%g, %g) at N=%d is not a finite non-negative time", on, off, n)
	}
	fn := float64(n)
	sec := (t.SeqOn+t.ParOn/fn)/rf + t.SeqOff + t.ParOff/fn + on/rf + off
	if math.IsNaN(sec) || math.IsInf(sec, 0) {
		return 0, fmt.Errorf("core: non-finite time %g at N=%d r=%g", sec, n, rf)
	}
	return sec, nil
}

// Speedup evaluates the power-aware speedup of Eq. 11: the base sequential
// time divided by Time(n, r).
func (t Terms) Speedup(n int, r units.Ratio) (float64, error) {
	t1, err := t.Time(1, 1)
	if err != nil {
		return 0, err
	}
	tn, err := t.Time(n, r)
	if err != nil {
		return 0, err
	}
	if tn <= 0 {
		return 0, fmt.Errorf("core: degenerate zero execution time")
	}
	s := t1 / tn
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return 0, fmt.Errorf("core: non-finite speedup %g at N=%d r=%g", s, n, float64(r))
	}
	return s, nil
}

// EPSpeedup is the closed form of Eq. 12, valid for a fully parallelizable
// ON-chip-only workload with no overhead (the EP benchmark): the speedup is
// the plain product N·(f/f0).
func EPSpeedup(n int, r units.Ratio) (float64, error) {
	if n < 1 || r <= 0 {
		return 0, fmt.Errorf("core: EPSpeedup(%d, %g)", n, float64(r))
	}
	return float64(n) * float64(r), nil
}

// FTTerms builds the Eq. 13 special case: a fully parallelizable mixed
// ON/OFF-chip workload whose overhead is OFF-chip only (all-to-all
// communication unaffected by CPU frequency). parOn and parOff are the
// sequential times of the two workload parts at f0; po gives the overhead
// time as a function of N.
func FTTerms(parOn, parOff float64, po func(n int) float64) Terms {
	return Terms{ParOn: parOn, ParOff: parOff, POOff: po}
}
