// Package pasp reproduces "Power-Aware Speedup" (Rong Ge and Kirk Cameron,
// IPPS 2007): an analytical speedup model for DVFS-capable clusters,
// together with a complete virtual-time simulation of the paper's
// experimental platform — a 16-node Pentium M cluster on 100 Mb switched
// Ethernet — and NAS-style benchmark kernels to exercise it.
//
// The root package carries the benchmark harness (bench_test.go): one
// testing.B benchmark per paper table and figure plus the extension
// experiments and design ablations. Run
//
//	go test -bench=. -benchmem
//
// to regenerate every artifact. The library lives under internal/ (see
// README.md for the architecture map); runnable entry points are under
// cmd/ and examples/.
package pasp
