// Package papi simulates the hardware performance counters the paper uses
// to parameterize its fine-grain model (Section 5.2, Table 5).
//
// On the real platform, PAPI exposes event counters; the paper monitors
// PAPI_TOT_INS, PAPI_L1_DCA, PAPI_L1_DCM, PAPI_L2_TCA and PAPI_L2_TCM and
// derives the ON-/OFF-chip workload decomposition with the identities of
// Table 5:
//
//	CPU/Register = TOT_INS − L1_DCA
//	L1 cache     = L1_DCA − L1_DCM
//	L2 cache     = L2_TCA − L2_TCM
//	Main memory  = L2_TCM
//
// In the simulator, kernels account their instruction mixes as machine.Work
// values; this package converts between that ground truth and the raw event
// view, so the fine-grain parameterization consumes exactly the quantities
// a real PAPI measurement would provide.
package papi

import (
	"fmt"

	"pasp/internal/machine"
)

// Event enumerates the monitored counters.
type Event int

const (
	// TotIns is PAPI_TOT_INS: total instructions completed.
	TotIns Event = iota
	// L1DCA is PAPI_L1_DCA: L1 data cache accesses.
	L1DCA
	// L1DCM is PAPI_L1_DCM: L1 data cache misses.
	L1DCM
	// L2TCA is PAPI_L2_TCA: L2 total cache accesses.
	L2TCA
	// L2TCM is PAPI_L2_TCM: L2 total cache misses.
	L2TCM
	// NumEvents is the number of monitored counters.
	NumEvents
)

// String returns the PAPI preset name of the event.
func (e Event) String() string {
	switch e {
	case TotIns:
		return "PAPI_TOT_INS"
	case L1DCA:
		return "PAPI_L1_DCA"
	case L1DCM:
		return "PAPI_L1_DCM"
	case L2TCA:
		return "PAPI_L2_TCA"
	case L2TCM:
		return "PAPI_L2_TCM"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// Counters is a snapshot of the five monitored events. Counts are float64
// because kernels may account fractional analytic mixes; a real counter
// read would round them.
type Counters struct {
	v [NumEvents]float64
}

// Get returns one event's count.
func (c *Counters) Get(e Event) float64 { return c.v[e] }

// Add accumulates another snapshot into c.
func (c *Counters) Add(o Counters) {
	for i := range c.v {
		c.v[i] += o.v[i]
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() { c.v = [NumEvents]float64{} }

// AddWork accounts an instruction mix the way the hardware would: every
// instruction retires (TOT_INS); instructions whose data is at L1 or beyond
// perform an L1 access; those at L2 or beyond miss L1 and access L2; those
// at memory miss L2.
func (c *Counters) AddWork(w machine.Work) {
	reg, l1, l2, mem := w.Ops[machine.Reg], w.Ops[machine.L1], w.Ops[machine.L2], w.Ops[machine.Mem]
	c.v[TotIns] += reg + l1 + l2 + mem
	c.v[L1DCA] += l1 + l2 + mem
	c.v[L1DCM] += l2 + mem
	c.v[L2TCA] += l2 + mem
	c.v[L2TCM] += mem
}

// Decompose applies the Table 5 identities, recovering the per-level
// instruction mix from the raw events. It returns an error when the counts
// are inconsistent (an identity would go negative), which on real hardware
// indicates a multiplexed-counter artifact.
func (c *Counters) Decompose() (machine.Work, error) {
	reg := c.v[TotIns] - c.v[L1DCA]
	l1 := c.v[L1DCA] - c.v[L1DCM]
	l2 := c.v[L2TCA] - c.v[L2TCM]
	mem := c.v[L2TCM]
	w := machine.W(reg, l1, l2, mem)
	if err := w.Validate(); err != nil {
		return machine.Work{}, fmt.Errorf("papi: inconsistent counters: %w", err)
	}
	return w, nil
}

// Derivations returns the Table 5 formula strings, in level order, for the
// harness to print alongside the counts.
func Derivations() [machine.NumLevels]string {
	return [machine.NumLevels]string{
		machine.Reg: "PAPI_TOT_INS - PAPI_L1_DCA",
		machine.L1:  "PAPI_L1_DCA - PAPI_L1_DCM",
		machine.L2:  "PAPI_L2_TCA - PAPI_L2_TCM",
		machine.Mem: "PAPI_L2_TCM",
	}
}
