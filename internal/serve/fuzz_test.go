package serve

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"pasp/internal/experiments"
	"pasp/internal/obs"
)

// fuzzHandler lazily builds one warmed quick-suite server shared by every
// fuzz execution: FT is pre-measured so the valid seed inputs answer from
// the peek path and the fuzzer spends its time on the decode boundary, not
// on simulations.
var fuzzHandler = sync.OnceValue(func() http.Handler {
	s := experiments.Quick()
	if _, err := s.MeasureKernel(context.Background(), "ft"); err != nil {
		panic(err)
	}
	srv := New(Config{Suite: s, SuiteName: "quick", MaxInFlight: 2, Registry: obs.NewRegistry()})
	return srv.Handler()
})

// FuzzPredictRequest pins the input-boundary contract of POST /predict:
// any body whatsoever is answered — malformed JSON, NaN/Inf/negative
// numbers, unknown fields, trailing garbage, huge payloads — and the
// answer is never a 5xx and never a panic. Bad inputs map to 400 (shape),
// 404 (unknown kernel / off-grid cell) or 413-as-400 (oversized).
func FuzzPredictRequest(f *testing.F) {
	seeds := []string{
		`{"kernel":"ft","n":4,"f":1400}`,
		`{"kernel":"ft","n":4,"f":"1.4ghz"}`,
		`{"kernel":"ep","n":1,"f":"600mhz"}`,
		`{"kernel":"ft","n":-1,"f":1400}`,
		`{"kernel":"ft","n":4,"f":-600}`,
		`{"kernel":"ft","n":4,"f":0}`,
		`{"kernel":"ft","n":4,"f":NaN}`,
		`{"kernel":"ft","n":4,"f":"nan"}`,
		`{"kernel":"ft","n":4,"f":"+inf"}`,
		`{"kernel":"ft","n":4,"f":1e309}`,
		`{"kernel":"ft","n":99999999,"f":1400}`,
		`{"kernel":"zz","n":4,"f":1400}`,
		`{"kernel":"ft","n":4,"f":1400,"extra":true}`,
		`{"kernel":"ft","n":4,"f":1400}{"kernel":"ft"}`,
		`{"kernel":"ft","n":4.5,"f":1400}`,
		`[1,2,3]`,
		`null`,
		`"ft"`,
		``,
		`}{`,
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	h := fuzzHandler()
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/predict", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("body %q answered %d:\n%s", body, rec.Code, rec.Body.Bytes())
		}
		if rec.Code != http.StatusOK && rec.Body.Len() == 0 {
			t.Fatalf("body %q answered %d with an empty error payload", body, rec.Code)
		}
	})
}

// FuzzParseGear pins ParseGear's contract: it never panics, and whenever
// it accepts an input the result is finite and strictly positive — the
// property that keeps non-physical frequencies out of the model layer.
func FuzzParseGear(f *testing.F) {
	for _, s := range []string{
		"1400", "1400mhz", "1.4ghz", " 1.4 GHz ", "0.6ghz", "600",
		"", " ", "mhz", "ghz", "-1", "0", "nan", "inf", "-inf", "1e309",
		"1,400", "fast", "1400mhz extra", "0x10", "１４００",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseGear(s)
		if err != nil {
			return
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			t.Fatalf("ParseGear(%q) accepted non-physical %v", s, v)
		}
	})
}
