package core

import "fmt"

// SP is the simplified parameterization of Section 5.1. It makes two
// assumptions — the workload is fully parallelizable (Assumption 1) and
// parallel overhead is unaffected by ON-chip frequency (Assumption 2) —
// under which the parallel time obeys Eq. 16:
//
//	T_N(w, f) = T_1(w, f)/N + T(wPO_OFF)
//
// The model is fitted from two measured slices of the configuration grid
// (the base-frequency column and the one-processor row) and predicts every
// other cell.
type SP struct {
	baseMHz float64
	t1      map[float64]float64 // Step 3: T_1(w, f) per frequency
	tpo     map[int]float64     // Step 2: overhead per processor count (Eq. 17)
}

// FitSP derives the model from a measurement campaign: Step 1 uses the
// parallel times at the base frequency, Step 2 derives each N's overhead
// via Eq. 17, Step 3 collects the sequential times per frequency.
func FitSP(m *Measurements) (*SP, error) {
	base, err := m.BaseMHz()
	if err != nil {
		return nil, err
	}
	sp := &SP{baseMHz: base, t1: map[float64]float64{}, tpo: map[int]float64{}}
	t1base, err := m.Time(1, base)
	if err != nil {
		return nil, fmt.Errorf("core: SP fit needs T(1, f0): %w", err)
	}
	for _, mhz := range m.Freqs() {
		t1, err := m.Time(1, mhz)
		if err != nil {
			return nil, fmt.Errorf("core: SP fit needs the full 1-processor row: %w", err)
		}
		sp.t1[mhz] = t1
	}
	for _, n := range m.Ns() {
		if n < 1 {
			return nil, fmt.Errorf("core: measured processor count N = %d", n)
		}
		tn, err := m.Time(n, base)
		if err != nil {
			return nil, fmt.Errorf("core: SP fit needs the full base-frequency column: %w", err)
		}
		// Eq. 17: T(wPO_OFF) = T_N(w, f0) − T_1(w, f0)/N.
		sp.tpo[n] = tn - t1base/float64(n)
	}
	return sp, nil
}

// BaseMHz returns the fitted model's reference frequency f0.
func (s *SP) BaseMHz() float64 { return s.baseMHz }

// Overhead returns the derived parallel-overhead time T(wPO_OFF) for n
// processors (Eq. 17). The derivation can come out slightly negative when
// the workload scales superlinearly (cache effects); the value is reported
// as derived, since Eq. 18 consumes it unchanged.
func (s *SP) Overhead(n int) (float64, error) {
	t, ok := s.tpo[n]
	if !ok {
		return 0, fmt.Errorf("core: SP has no overhead for N=%d", n)
	}
	return t, nil
}

// PredictTime evaluates Eq. 18: T_N(w, f) = T_1(w, f)/N + T(wPO_OFF).
func (s *SP) PredictTime(n int, mhz float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("core: N = %d", n)
	}
	t1, ok := s.t1[mhz]
	if !ok {
		return 0, fmt.Errorf("core: SP has no sequential time at %g MHz", mhz)
	}
	tpo, err := s.Overhead(n)
	if err != nil {
		return 0, err
	}
	return t1/float64(n) + tpo, nil
}

// PredictSpeedup predicts the power-aware speedup of a configuration:
// T_1(w, f0) divided by the Eq. 18 time.
func (s *SP) PredictSpeedup(n int, mhz float64) (float64, error) {
	t1, ok := s.t1[s.baseMHz]
	if !ok {
		return 0, fmt.Errorf("core: SP missing base sequential time")
	}
	tn, err := s.PredictTime(n, mhz)
	if err != nil {
		return 0, err
	}
	if tn <= 0 {
		return 0, fmt.Errorf("core: SP predicted non-positive time for %v", Config{n, mhz})
	}
	return t1 / tn, nil
}
