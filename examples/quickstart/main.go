// Quickstart: simulate a NAS kernel on the power-aware cluster, measure
// the two slices the simplified parameterization needs, and predict the
// execution time and power-aware speedup of configurations that were never
// run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pasp/internal/cluster"
	"pasp/internal/core"
	"pasp/internal/mpi"
	"pasp/internal/npb"
)

func main() {
	// The paper's platform: 16 Pentium M nodes, five P-states, 100 Mb
	// switched Ethernet.
	platform := cluster.PentiumM()

	// A communication-bound workload: the FT kernel (3-D FFT with a
	// transpose alltoall every iteration).
	ft := npb.FT{Nx: 32, Ny: 32, Nz: 32, Iters: 3, Scale: 32}
	run := func(w mpi.World) (*mpi.Result, error) {
		_, r, err := ft.Run(w)
		return r, err
	}

	// Step 1+3 of the SP parameterization: measure the base-frequency
	// column and the one-processor row.
	meas := core.NewMeasurements()
	for _, n := range []int{1, 2, 4, 8, 16} {
		w, err := platform.World(n, 600)
		if err != nil {
			log.Fatal(err)
		}
		res, err := run(w)
		if err != nil {
			log.Fatal(err)
		}
		meas.SetTime(n, 600, res.Seconds)
		fmt.Printf("measured T(%2d, 600MHz) = %6.2f s\n", n, res.Seconds)
	}
	for _, mhz := range []float64{800, 1000, 1200, 1400} {
		w, err := platform.World(1, mhz)
		if err != nil {
			log.Fatal(err)
		}
		res, err := run(w)
		if err != nil {
			log.Fatal(err)
		}
		meas.SetTime(1, mhz, res.Seconds)
		fmt.Printf("measured T( 1, %4.0fMHz) = %6.2f s\n", mhz, res.Seconds)
	}

	// Fit the model (Eqs. 16–18) from those nine runs.
	sp, err := core.FitSP(meas)
	if err != nil {
		log.Fatal(err)
	}

	// Predict an unmeasured configuration, then check it against the
	// simulator.
	const n, mhz = 8, 1200
	predT, err := sp.PredictTime(n, mhz)
	if err != nil {
		log.Fatal(err)
	}
	predS, err := sp.PredictSpeedup(n, mhz)
	if err != nil {
		log.Fatal(err)
	}
	w, err := platform.World(n, mhz)
	if err != nil {
		log.Fatal(err)
	}
	res, err := run(w)
	if err != nil {
		log.Fatal(err)
	}
	if res.Seconds <= 0 {
		log.Fatalf("degenerate zero-time measurement at N=%d", n)
	}
	fmt.Printf("\npower-aware prediction for N=%d at %d MHz:\n", n, mhz)
	fmt.Printf("  predicted time    %6.2f s, measured %6.2f s (error %.1f%%)\n",
		predT, res.Seconds, (predT-res.Seconds)/res.Seconds*100)
	fmt.Printf("  predicted speedup %6.2f\n", predS)
}
