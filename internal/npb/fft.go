package npb

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
)

// fftDir selects the transform direction.
type fftDir int

const (
	fftForward fftDir = -1
	fftInverse fftDir = +1
)

// fftPlan caches the twiddle factors and bit-reversal permutation for a
// power-of-two length, so the per-transform cost is the butterflies alone.
type fftPlan struct {
	n       int
	rev     []int
	twiddle []complex128 // e^{±2πi k/n} for the largest stage, both dirs derived
}

// planCache memoizes plans by length. A plan is immutable after
// construction (transform only reads rev and twiddle), so one plan per
// length safely serves every rank of every concurrent simulation — a
// measurement campaign builds each plan once instead of three per rank per
// grid cell.
var planCache sync.Map // int -> *fftPlan

// getFFTPlan returns the shared plan for length n, building it on first use.
func getFFTPlan(n int) (*fftPlan, error) {
	if p, ok := planCache.Load(n); ok {
		return p.(*fftPlan), nil
	}
	p, err := newFFTPlan(n)
	if err != nil {
		return nil, err
	}
	actual, _ := planCache.LoadOrStore(n, p)
	return actual.(*fftPlan), nil
}

// newFFTPlan builds a plan for length n (a power of two).
func newFFTPlan(n int) (*fftPlan, error) {
	if err := checkPow2("fft length", n); err != nil {
		return nil, err
	}
	p := &fftPlan{n: n, rev: make([]int, n), twiddle: make([]complex128, n/2)}
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for i := 0; i < n; i++ {
		r := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		p.rev[i] = r
	}
	for k := 0; k < n/2; k++ {
		p.twiddle[k] = cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
	}
	return p, nil
}

// transform runs an in-place radix-2 Cooley–Tukey FFT on x (length n). The
// inverse transform conjugates twiddles and scales by 1/n, so
// transform(inverse(x)) == x up to rounding.
func (p *fftPlan) transform(x []complex128, dir fftDir) error {
	if len(x) != p.n {
		return fmt.Errorf("npb: fft length %d, plan is for %d", len(x), p.n)
	}
	for i, r := range p.rev {
		if i < r {
			x[i], x[r] = x[r], x[i]
		}
	}
	for size := 2; size <= p.n; size <<= 1 {
		half := size / 2
		step := p.n / size
		// k outer, block inner: the butterflies of one stage touch
		// disjoint index pairs, so hoisting the twiddle load (and the
		// direction conjugate) out of the block loop reorders independent
		// operations only — each butterfly's arithmetic, and therefore the
		// result, is bit-identical to the block-major order.
		for k := 0; k < half; k++ {
			w := p.twiddle[k*step]
			if dir == fftInverse {
				w = cmplx.Conj(w)
			}
			for i := k; i < p.n; i += size {
				a := x[i]
				b := x[i+half] * w
				x[i] = a + b
				x[i+half] = a - b
			}
		}
	}
	if dir == fftInverse {
		inv := complex(1/float64(p.n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}

// fftFlopsPerPoint returns the arithmetic operation count per point of one
// 1-D transform of length n: the standard 5·log₂n for a radix-2 complex
// FFT.
func fftFlopsPerPoint(n int) float64 {
	return 5 * math.Log2(float64(n))
}
