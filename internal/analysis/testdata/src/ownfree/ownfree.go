// Package ownfree seeds payload-ownership violations against a local
// freelist-style conn type: straight-line and branch-compatible double
// frees, use after free, per-iteration frees of a loop-external buffer,
// unguarded frees of the n==1-aliased collective result, and
// interprocedural variants through a param-freeing helper, an
// ownership-returning helper, and a bound method value — next to the
// clean idioms (exclusive branches, size-guarded frees).
package ownfree

type conn struct{}

func (c *conn) Recv(src, tag int) ([]float64, error)                  { return nil, nil }
func (c *conn) Allgather(data []float64, vb int) ([][]float64, error) { return nil, nil }
func (c *conn) Free(buf []float64)                                    {}
func (c *conn) Size() int                                             { return 2 }

func doubleFree(c *conn) {
	buf, _ := c.Recv(0, 1)
	c.Free(buf)
	c.Free(buf) // want: second Free
}

func useAfterFree(c *conn) float64 {
	buf, _ := c.Recv(0, 1)
	c.Free(buf)
	return buf[0] // want: read after Free
}

func freeEveryIteration(c *conn) {
	buf, _ := c.Recv(0, 1)
	for i := 0; i < 3; i++ {
		c.Free(buf) // want: freed on every iteration, bound outside the loop
	}
}

func exclusiveBranches(c *conn, cond bool) { // clean: the two frees cannot both execute
	buf, _ := c.Recv(0, 1)
	if cond {
		c.Free(buf)
	} else {
		c.Free(buf)
	}
}

func branchThenFallthrough(c *conn, cond bool) {
	buf, _ := c.Recv(0, 1)
	if cond {
		c.Free(buf)
	}
	c.Free(buf) // want: second Free when cond held
}

func unguardedAliasedFree(c *conn, mine []float64) {
	parts, _ := c.Allgather(mine, 8)
	for _, p := range parts {
		c.Free(p) // want: aliases the caller's input at world size 1
	}
}

func guardedAliasedFree(c *conn, mine []float64) { // clean: guarded by the size check
	parts, _ := c.Allgather(mine, 8)
	for _, p := range parts {
		if len(parts) > 1 {
			c.Free(p)
		}
	}
}

// release frees its argument; callers inherit the Free through the fact.
func release(c *conn, buf []float64) {
	c.Free(buf)
}

func doubleFreeThroughHelper(c *conn) {
	buf, _ := c.Recv(0, 1)
	c.Free(buf)
	release(c, buf) // want: second Free through the helper
}

func viaBoundValue(c *conn) {
	get := c.Recv
	buf, _ := get(0, 1)
	c.Free(buf)
	c.Free(buf) // want: second Free of a buffer produced through the bound value
}

// fetch returns the unfreed Recv result; ownership transfers to the caller.
func fetch(c *conn) []float64 {
	buf, _ := c.Recv(0, 1)
	return buf
}

func doubleFreeOfTransferred(c *conn) {
	buf := fetch(c)
	c.Free(buf)
	c.Free(buf) // want: second Free of the helper-owned buffer
}

func singleFreeOfTransferred(c *conn) { // clean: exactly one Free
	buf := fetch(c)
	c.Free(buf)
}
