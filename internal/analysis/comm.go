package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"pasp/internal/commspec"
)

// This file is the shared substrate of the commcheck passes (commshape,
// phasebal, deadlock) and the -skeleton emitter. It classifies call sites
// against the mpi runtime's API shape, tracks which values derive from the
// executing rank's identity (rank taint), renders partner/tag/guard
// expressions into the commspec algebra over {rank, N}, and builds one
// memoized guarded operation tree per function that all four consumers
// walk. DESIGN §12 documents the model and its soundness limits.
//
// The runtime is recognized structurally — a package named "mpi" whose Ctx
// methods carry the MPI-shaped names — so the seeded testdata can exercise
// the passes against a tiny stub without loading the real simulator.

// commKind classifies one mpi operation.
type commKind int

const (
	commNone commKind = iota
	commSend
	commRecv
	commSendRecv
	commColl
	commPhase
	commCompute
)

// commCollectives are the synchronizing collectives of the runtime.
var commCollectives = map[string]bool{
	"Barrier":   true,
	"Bcast":     true,
	"Allreduce": true,
	"Reduce":    true,
	"Alltoall":  true,
	"Allgather": true,
	"Gather":    true,
	"Scatter":   true,
}

// isMPIRuntimePkg reports whether the package IS an mpi runtime: the passes
// verify the runtime's clients, never the protocol implementation itself
// (SendRecv legitimately calls Recv on another rank's behalf there).
func isMPIRuntimePkg(pkg *Package) bool {
	return pkg.Types != nil && pkg.Types.Name() == "mpi"
}

// classifyComm maps a resolved callee to the communication operation it
// performs: a method of an mpi-package Ctx with an MPI-shaped name.
func classifyComm(callee *types.Func) (commKind, string) {
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Name() != "mpi" {
		return commNone, ""
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return commNone, ""
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Ctx" {
		return commNone, ""
	}
	name := callee.Name()
	switch {
	case name == "Send":
		return commSend, name
	case name == "Recv":
		return commRecv, name
	case name == "SendRecv":
		return commSendRecv, name
	case name == "SetPhase":
		return commPhase, name
	case name == "Compute":
		return commCompute, name
	case commCollectives[name]:
		return commColl, name
	}
	return commNone, ""
}

// isCtxRankCall / isCtxSizeCall classify the two identity accessors.
func ctxAccessor(callee *types.Func) string {
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Name() != "mpi" {
		return ""
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if callee.Name() == "Rank" || callee.Name() == "Size" {
		return callee.Name()
	}
	return ""
}

// isMPIRunCall reports whether the callee is the runtime's job launcher
// (package-level mpi.Run).
func isMPIRunCall(callee *types.Func) bool {
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Name() != "mpi" {
		return false
	}
	sig, ok := callee.Type().(*types.Signature)
	return ok && sig.Recv() == nil && callee.Name() == "Run"
}

// callMap returns call-expression → resolved callee for one function,
// memoized on the Program.
func (prog *Program) callMap(info *FuncInfo) map[*ast.CallExpr]*types.Func {
	if m, ok := prog.commCallMaps[info.Obj]; ok {
		return m
	}
	m := make(map[*ast.CallExpr]*types.Func, len(info.calls))
	for _, cs := range info.calls {
		m[cs.call] = cs.callee
	}
	prog.commCallMaps[info.Obj] = m
	return m
}

// ---------------------------------------------------------------------------
// Rank taint: which values derive from the executing rank's identity.
//
// Roots are Ctx.Rank() results. Taint flows through arithmetic, local
// assignment, struct fields assigned rank-derived values anywhere in the
// program, and module-internal calls (through arguments, and through
// callees whose returns are rank-derived). Collective results are uniform
// by construction and immune; so are Ctx.Size() and received payloads —
// the analysis tracks identity divergence, not data divergence.
// ---------------------------------------------------------------------------

// ensureRankFields gathers, program-wide, the struct fields assigned
// rank-derived values ("g.ix = c.Rank() % px"). Two rounds reach the
// field-through-field chains the kernels use.
func (prog *Program) ensureRankFields() {
	if prog.rankFieldsGathered {
		return
	}
	prog.rankFieldsGathered = true
	prog.rankFields = map[types.Object]bool{}
	for round := 0; round < 2; round++ {
		changed := false
		for _, pkg := range prog.all {
			if isMPIRuntimePkg(pkg) {
				continue
			}
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					info := prog.funcs[obj]
					if info == nil {
						continue
					}
					taint := prog.computeLocalTaint(info)
					if prog.gatherFieldWrites(info, taint) {
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
}

// gatherFieldWrites records rank-tainted field assignments and composite
// literals of one function; it reports whether any new field was found.
func (prog *Program) gatherFieldWrites(info *FuncInfo, taint map[types.Object]bool) bool {
	pkg := info.Pkg
	changed := false
	mark := func(obj types.Object) {
		if obj != nil && !prog.rankFields[obj] {
			prog.rankFields[obj] = true
			changed = true
		}
	}
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				// Multi-value: taint every field target if the call is tainted.
				tainted := false
				for _, r := range x.Rhs {
					if prog.exprRankTainted(info, taint, r) {
						tainted = true
					}
				}
				if tainted {
					for _, l := range x.Lhs {
						if sel, ok := l.(*ast.SelectorExpr); ok {
							mark(fieldObj(pkg, sel))
						}
					}
				}
				return true
			}
			for i, l := range x.Lhs {
				sel, ok := l.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if prog.exprRankTainted(info, taint, x.Rhs[i]) {
					mark(fieldObj(pkg, sel))
				}
			}
		case *ast.CompositeLit:
			st, ok := pkg.TypeOfExpr(x).Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for i, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					if prog.exprRankTainted(info, taint, kv.Value) {
						mark(pkg.Info.Uses[key])
					}
					continue
				}
				if i < st.NumFields() && prog.exprRankTainted(info, taint, elt) {
					mark(st.Field(i))
				}
			}
		}
		return true
	})
	return changed
}

// fieldObj resolves a selector to the struct field it denotes, or nil.
func fieldObj(pkg *Package, sel *ast.SelectorExpr) types.Object {
	if s, ok := pkg.Info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	return nil
}

// TypeOfExpr mirrors Pass.TypeOf for contexts without a Pass.
func (p *Package) TypeOfExpr(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return types.Typ[types.Invalid]
}

// localTaint returns the function's rank-tainted local objects, memoized.
func (prog *Program) localTaint(info *FuncInfo) map[types.Object]bool {
	prog.ensureRankFields()
	if t, ok := prog.commTaints[info.Obj]; ok {
		return t
	}
	t := prog.computeLocalTaint(info)
	prog.commTaints[info.Obj] = t
	return t
}

// computeLocalTaint walks assignments to a fixpoint (two rounds cover the
// kernels' forward-flow) marking locals assigned rank-derived values.
func (prog *Program) computeLocalTaint(info *FuncInfo) map[types.Object]bool {
	pkg := info.Pkg
	taint := map[types.Object]bool{}
	bind := func(l ast.Expr, tainted bool) bool {
		if !tainted {
			return false
		}
		id, ok := l.(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil || taint[obj] {
			return false
		}
		taint[obj] = true
		return true
	}
	for round := 0; round < 2; round++ {
		changed := false
		ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Lhs {
						if bind(x.Lhs[i], prog.exprRankTainted(info, taint, x.Rhs[i])) {
							changed = true
						}
					}
					return true
				}
				tainted := false
				for _, r := range x.Rhs {
					if prog.exprRankTainted(info, taint, r) {
						tainted = true
					}
				}
				for _, l := range x.Lhs {
					if bind(l, tainted) {
						changed = true
					}
				}
			case *ast.GenDecl:
				for _, spec := range x.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					tainted := false
					for _, v := range vs.Values {
						if prog.exprRankTainted(info, taint, v) {
							tainted = true
						}
					}
					for _, name := range vs.Names {
						if bind(name, tainted) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if prog.exprRankTainted(info, taint, x.X) {
					// The key is a uniform index (container lengths are
					// assumed rank-uniform); the values are the
					// rank-derived data.
					if x.Value != nil && bind(x.Value, true) {
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return taint
}

// exprRankTainted reports whether the expression's value derives from the
// executing rank's identity.
func (prog *Program) exprRankTainted(info *FuncInfo, taint map[types.Object]bool, e ast.Expr) bool {
	if e == nil {
		return false
	}
	pkg := info.Pkg
	calls := prog.callMap(info)
	var walk func(e ast.Expr) bool
	walk = func(e ast.Expr) bool {
		switch x := e.(type) {
		case nil:
			return false
		case *ast.Ident:
			obj := pkg.Info.Uses[x]
			if obj == nil {
				obj = pkg.Info.Defs[x]
			}
			return obj != nil && (taint[obj] || prog.rankFields[obj])
		case *ast.SelectorExpr:
			if obj := fieldObj(pkg, x); obj != nil && prog.rankFields[obj] {
				return true
			}
			return walk(x.X)
		case *ast.CallExpr:
			callee := calls[x]
			switch ctxAccessor(callee) {
			case "Rank":
				return true
			case "Size":
				return false // N is rank-uniform
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "len" || id.Name == "cap") {
					// Container lengths are assumed rank-uniform: the
					// kernels size their containers from N, not from the
					// rank. A rank-sized container is a documented miss.
					return false
				}
			}
			if kind, _ := classifyComm(callee); kind == commColl || kind == commRecv || kind == commSendRecv {
				// Collective results are uniform; received payloads carry
				// data divergence, not identity divergence — out of scope.
				return false
			}
			if callee != nil && prog.funcOf(callee) != nil && prog.rankReturns(callee) {
				return true
			}
			// Taint flows through arguments of ordinary calls
			// (blockRange(n, size, rank) → rank-derived bounds).
			for _, a := range x.Args {
				if walk(a) {
					return true
				}
			}
			return false
		case *ast.ParenExpr:
			return walk(x.X)
		case *ast.UnaryExpr:
			return walk(x.X)
		case *ast.StarExpr:
			return walk(x.X)
		case *ast.BinaryExpr:
			return walk(x.X) || walk(x.Y)
		case *ast.IndexExpr:
			return walk(x.X) || walk(x.Index)
		case *ast.SliceExpr:
			return walk(x.X) || walk(x.Low) || walk(x.High) || walk(x.Max)
		case *ast.TypeAssertExpr:
			return walk(x.X)
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if walk(kv.Value) {
						return true
					}
					continue
				}
				if walk(elt) {
					return true
				}
			}
			return false
		case *ast.KeyValueExpr:
			return walk(x.Value)
		case *ast.FuncLit:
			return false
		}
		return false
	}
	return walk(e)
}

// rankReturns reports (memoized, cycle-safe) whether a function's return
// values derive from its rank identity — "g.west()" returning a neighbour
// rank makes every caller's guard rank-derived.
func (prog *Program) rankReturns(fn *types.Func) bool {
	if v, ok := prog.commRankRet[fn]; ok {
		return v
	}
	if prog.commRankRetBusy[fn] {
		return false
	}
	info := prog.funcOf(fn)
	if info == nil || isMPIRuntimePkg(info.Pkg) {
		prog.commRankRet[fn] = false
		return false
	}
	prog.commRankRetBusy[fn] = true
	defer delete(prog.commRankRetBusy, fn)
	taint := prog.localTaint(info)
	tainted := false
	namedResults := map[types.Object]bool{}
	if info.Decl.Type.Results != nil {
		for _, f := range info.Decl.Type.Results.List {
			for _, name := range f.Names {
				if obj := info.Pkg.Info.Defs[name]; obj != nil {
					namedResults[obj] = true
				}
			}
		}
	}
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		if tainted {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closure returns are not the function's returns
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			for obj := range namedResults {
				if taint[obj] {
					tainted = true
				}
			}
			return true
		}
		for _, r := range ret.Results {
			if prog.exprRankTainted(info, taint, r) {
				tainted = true
			}
		}
		return true
	})
	prog.commRankRet[fn] = tainted
	return tainted
}

// ---------------------------------------------------------------------------
// Symbolic rendering into the commspec algebra.
// ---------------------------------------------------------------------------

// renderEnv renders expressions of one function into commspec strings over
// {rank, N}: integer constants, Rank()/Size() calls, and single-assignment
// locals whose initializer renders ("up, down := rank+1, rank-1").
type renderEnv struct {
	prog *Program
	info *FuncInfo
	rhs  map[types.Object]ast.Expr
	bad  map[types.Object]bool // assigned more than once, or unrenderable shape
	memo map[types.Object]string
	busy map[types.Object]bool
}

// renderer builds (memoized) the function's render environment.
func (prog *Program) renderer(info *FuncInfo) *renderEnv {
	if env, ok := prog.commRenders[info.Obj]; ok {
		return env
	}
	env := &renderEnv{
		prog: prog,
		info: info,
		rhs:  map[types.Object]ast.Expr{},
		bad:  map[types.Object]bool{},
		memo: map[types.Object]string{},
		busy: map[types.Object]bool{},
	}
	pkg := info.Pkg
	record := func(l ast.Expr, r ast.Expr) {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if _, seen := env.rhs[obj]; seen || env.bad[obj] {
			delete(env.rhs, obj)
			env.bad[obj] = true
			return
		}
		if r == nil {
			env.bad[obj] = true
			return
		}
		env.rhs[obj] = r
	}
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					record(x.Lhs[i], x.Rhs[i])
				}
			} else {
				for _, l := range x.Lhs {
					record(l, nil)
				}
			}
		case *ast.IncDecStmt:
			record(x.X, nil)
		case *ast.GenDecl:
			for _, spec := range x.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						record(name, vs.Values[i])
					} else {
						record(name, nil)
					}
				}
			}
		case *ast.RangeStmt:
			if x.Key != nil {
				record(x.Key, nil)
			}
			if x.Value != nil {
				record(x.Value, nil)
			}
		}
		return true
	})
	prog.commRenders[info.Obj] = env
	return env
}

// renderTokens maps the operators the algebra admits.
var renderTokens = map[token.Token]string{
	token.ADD: "+", token.SUB: "-", token.MUL: "*", token.QUO: "/", token.REM: "%",
	token.AND: "&", token.OR: "|", token.XOR: "^", token.SHL: "<<", token.SHR: ">>",
	token.EQL: "==", token.NEQ: "!=", token.LSS: "<", token.LEQ: "<=",
	token.GTR: ">", token.GEQ: ">=", token.LAND: "&&", token.LOR: "||",
}

// render maps an expression to its commspec string, or ok=false.
func (env *renderEnv) render(e ast.Expr) (string, bool) {
	pkg := env.info.Pkg
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
		switch tv.Value.Kind() {
		case constant.Int:
			return tv.Value.ExactString(), true
		case constant.Bool:
			return tv.Value.ExactString(), true
		}
		return "", false
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return env.render(x.X)
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
		if obj == nil || env.bad[obj] {
			return "", false
		}
		if s, ok := env.memo[obj]; ok {
			return s, s != commspec.Unknown
		}
		rhs, ok := env.rhs[obj]
		if !ok || env.busy[obj] {
			return "", false
		}
		env.busy[obj] = true
		s, ok := env.render(rhs)
		delete(env.busy, obj)
		if !ok {
			env.memo[obj] = commspec.Unknown
			return "", false
		}
		env.memo[obj] = s
		return s, true
	case *ast.CallExpr:
		switch ctxAccessor(env.prog.callMap(env.info)[x]) {
		case "Rank":
			return "rank", true
		case "Size":
			return "N", true
		}
		return "", false
	case *ast.SelectorExpr:
		// The runtime's World.N field IS the job size: rendering it lets
		// guards like "if w.N != 2 { return ... }" bound the simulated N.
		if obj := fieldObj(pkg, x); obj != nil && obj.Name() == "N" {
			if owner, ok := pkg.TypeOfExpr(x.X).(*types.Named); ok &&
				owner.Obj().Name() == "World" && owner.Obj().Pkg() != nil &&
				owner.Obj().Pkg().Name() == "mpi" {
				return "N", true
			}
		}
		return "", false
	case *ast.BinaryExpr:
		op, ok := renderTokens[x.Op]
		if !ok {
			return "", false
		}
		l, ok := env.render(x.X)
		if !ok {
			return "", false
		}
		r, ok := env.render(x.Y)
		if !ok {
			return "", false
		}
		return "(" + l + op + r + ")", true
	case *ast.UnaryExpr:
		v, ok := env.render(x.X)
		if !ok {
			return "", false
		}
		switch x.Op {
		case token.SUB:
			return "(-" + v + ")", true
		case token.NOT:
			return "(!" + v + ")", true
		case token.ADD:
			return v, true
		}
		return "", false
	}
	return "", false
}

// ---------------------------------------------------------------------------
// Transitive communication facts.
// ---------------------------------------------------------------------------

// commWitness is one collective or phase transition reachable from a
// function, with the call chain that reaches it.
type commWitness struct {
	name string    // mpi method name
	via  string    // "" for direct calls, else "helper → deeper"
	pos  token.Pos // the underlying mpi call, for suppressed-at-callee sanctions
}

// commFact summarizes the communication a function performs transitively.
type commFact struct {
	colls      []commWitness
	phases     []commWitness
	hasP2P     bool
	hasCompute bool
}

func (f *commFact) hasComm() bool {
	return f.hasP2P || len(f.colls) > 0 || len(f.phases) > 0
}

// witnessCap bounds fact fan-out so wide call trees stay cheap.
const witnessCap = 8

// commFactOf computes (memoized, cycle-safe) the function's transitive
// communication fact. Bodies inside the mpi runtime are never entered.
func (prog *Program) commFactOf(fn *types.Func) *commFact {
	if f, ok := prog.commFacts[fn]; ok {
		return f
	}
	if prog.commFactBusy[fn] {
		return &commFact{}
	}
	info := prog.funcOf(fn)
	if info == nil || isMPIRuntimePkg(info.Pkg) {
		f := &commFact{}
		prog.commFacts[fn] = f
		return f
	}
	prog.commFactBusy[fn] = true
	defer delete(prog.commFactBusy, fn)
	f := &commFact{}
	addColl := func(w commWitness) {
		if len(f.colls) < witnessCap {
			f.colls = append(f.colls, w)
		}
	}
	addPhase := func(w commWitness) {
		if len(f.phases) < witnessCap {
			f.phases = append(f.phases, w)
		}
	}
	for _, cs := range info.calls {
		kind, name := classifyComm(cs.callee)
		switch kind {
		case commColl:
			addColl(commWitness{name: name, pos: cs.call.Pos()})
			continue
		case commPhase:
			addPhase(commWitness{name: name, pos: cs.call.Pos()})
			continue
		case commSend, commRecv, commSendRecv:
			f.hasP2P = true
			continue
		case commCompute:
			f.hasCompute = true
			continue
		}
		callee := prog.funcOf(cs.callee)
		if callee == nil || isMPIRuntimePkg(callee.Pkg) {
			continue
		}
		sub := prog.commFactOf(cs.callee)
		if sub.hasCompute {
			f.hasCompute = true
		}
		if !sub.hasComm() {
			continue
		}
		step := shortFuncName(cs.callee)
		for _, w := range sub.colls {
			addColl(commWitness{name: w.name, via: joinVia(step, w.via), pos: w.pos})
		}
		for _, w := range sub.phases {
			addPhase(commWitness{name: w.name, via: joinVia(step, w.via), pos: w.pos})
		}
		if sub.hasP2P {
			f.hasP2P = true
		}
	}
	prog.commFacts[fn] = f
	return f
}

func joinVia(step, rest string) string {
	if rest == "" {
		return step
	}
	return step + " → " + rest
}

// ---------------------------------------------------------------------------
// Guarded operation trees.
// ---------------------------------------------------------------------------

// opKind discriminates tree nodes.
type opKind int

const (
	opP2P opKind = iota
	opColl
	opPhase
	opCompute
	opBranch
	opLoop
	opReturn
	opCall
	opClosure
)

// opNode is one node of a function's communication tree.
type opNode struct {
	kind opKind
	pos  token.Pos

	// opP2P / opColl / opPhase
	comm     commKind
	opName   string
	partner  string // commspec rank expression, or "?"
	partner2 string // SendRecv source
	tag      string

	// opPhase
	phaseName  string
	phaseConst bool

	// opBranch
	condSrc     string
	condStr     string // commspec boolean, or "?"
	condTainted bool
	then, els   []*opNode

	// opLoop / opClosure
	body        []*opNode
	loopTainted bool

	// opReturn
	errReturn bool

	// opCall
	callee *types.Func
}

// commTree builds (memoized) the function's guarded operation tree.
// FuncLit arguments of mpi.Run are inlined in place — the rank body
// executes exactly there; other function literals become opClosure nodes,
// a def-site approximation the consumers treat conservatively.
func (prog *Program) commTree(info *FuncInfo) []*opNode {
	if t, ok := prog.commTrees[info.Obj]; ok {
		return t
	}
	b := &treeBuilder{
		prog:  prog,
		info:  info,
		calls: prog.callMap(info),
		taint: prog.localTaint(info),
		env:   prog.renderer(info),
	}
	b.pushResults(info.Decl.Type.Results)
	t := b.walkStmts(info.Decl.Body.List)
	prog.commTrees[info.Obj] = t
	return t
}

type treeBuilder struct {
	prog  *Program
	info  *FuncInfo
	calls map[*ast.CallExpr]*types.Func
	taint map[types.Object]bool
	env   *renderEnv

	// errResult tracks, per enclosing function literal, whether the last
	// result is an error — the walker is inside inlined closures at times.
	errResult []bool
}

func (b *treeBuilder) pushResults(results *ast.FieldList) {
	isErr := false
	if results != nil && len(results.List) > 0 {
		last := results.List[len(results.List)-1]
		if t := b.info.Pkg.TypeOfExpr(last.Type); t != nil {
			if named, ok := t.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				isErr = true
			}
		}
	}
	b.errResult = append(b.errResult, isErr)
}

func (b *treeBuilder) popResults() { b.errResult = b.errResult[:len(b.errResult)-1] }

func (b *treeBuilder) walkStmts(stmts []ast.Stmt) []*opNode {
	var out []*opNode
	for _, s := range stmts {
		out = append(out, b.walkStmt(s)...)
	}
	return out
}

func (b *treeBuilder) tainted(e ast.Expr) bool {
	return b.prog.exprRankTainted(b.info, b.taint, e)
}

func (b *treeBuilder) walkStmt(s ast.Stmt) []*opNode {
	switch x := s.(type) {
	case nil:
		return nil
	case *ast.BlockStmt:
		return b.walkStmts(x.List)
	case *ast.ExprStmt:
		return b.scanExpr(x.X)
	case *ast.AssignStmt:
		var out []*opNode
		for _, r := range x.Rhs {
			out = append(out, b.scanExpr(r)...)
		}
		for _, l := range x.Lhs {
			out = append(out, b.scanExpr(l)...)
		}
		return out
	case *ast.DeclStmt:
		var out []*opNode
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						out = append(out, b.scanExpr(v)...)
					}
				}
			}
		}
		return out
	case *ast.IfStmt:
		var out []*opNode
		out = append(out, b.walkStmt(x.Init)...)
		out = append(out, b.scanExpr(x.Cond)...)
		n := &opNode{
			kind:        opBranch,
			pos:         x.Pos(),
			condSrc:     types.ExprString(x.Cond),
			condTainted: b.tainted(x.Cond),
			then:        b.walkStmts(x.Body.List),
			els:         b.walkStmt(x.Else),
		}
		if s, ok := b.env.render(x.Cond); ok {
			n.condStr = s
		} else {
			n.condStr = commspec.Unknown
		}
		return append(out, n)
	case *ast.ForStmt:
		var out []*opNode
		out = append(out, b.walkStmt(x.Init)...)
		if x.Cond != nil {
			out = append(out, b.scanExpr(x.Cond)...)
		}
		n := &opNode{
			kind:        opLoop,
			pos:         x.Pos(),
			body:        append(b.walkStmts(x.Body.List), b.walkStmt(x.Post)...),
			loopTainted: x.Cond != nil && b.tainted(x.Cond),
		}
		return append(out, n)
	case *ast.RangeStmt:
		n := &opNode{
			kind:        opLoop,
			pos:         x.Pos(),
			body:        b.walkStmts(x.Body.List),
			loopTainted: b.tainted(x.X),
		}
		return append(b.scanExpr(x.X), n)
	case *ast.ReturnStmt:
		var out []*opNode
		for _, r := range x.Results {
			out = append(out, b.scanExpr(r)...)
		}
		return append(out, &opNode{kind: opReturn, pos: x.Pos(), errReturn: b.isErrReturn(x)})
	case *ast.SwitchStmt:
		var out []*opNode
		out = append(out, b.walkStmt(x.Init)...)
		if x.Tag != nil {
			out = append(out, b.scanExpr(x.Tag)...)
		}
		return append(out, b.switchChain(x)...)
	case *ast.TypeSwitchStmt:
		var out []*opNode
		for _, cc := range x.Body.List {
			clause := cc.(*ast.CaseClause)
			out = append(out, &opNode{
				kind:    opBranch,
				pos:     clause.Pos(),
				condSrc: "type switch",
				condStr: commspec.Unknown,
				then:    b.walkStmts(clause.Body),
			})
		}
		return out
	case *ast.SelectStmt:
		var out []*opNode
		for _, cc := range x.Body.List {
			clause := cc.(*ast.CommClause)
			out = append(out, &opNode{
				kind:    opBranch,
				pos:     clause.Pos(),
				condSrc: "select",
				condStr: commspec.Unknown,
				then:    b.walkStmts(clause.Body),
			})
		}
		return out
	case *ast.LabeledStmt:
		return b.walkStmt(x.Stmt)
	case *ast.GoStmt:
		return b.scanExpr(x.Call)
	case *ast.DeferStmt:
		return b.scanExpr(x.Call)
	case *ast.SendStmt:
		return append(b.scanExpr(x.Chan), b.scanExpr(x.Value)...)
	case *ast.IncDecStmt:
		return b.scanExpr(x.X)
	}
	return nil
}

// switchChain folds a value switch into nested two-way branches so the
// consumers see ordinary guarded arms.
func (b *treeBuilder) switchChain(x *ast.SwitchStmt) []*opNode {
	var clauses []*ast.CaseClause
	var def *ast.CaseClause
	for _, cc := range x.Body.List {
		clause := cc.(*ast.CaseClause)
		if clause.List == nil {
			def = clause
			continue
		}
		clauses = append(clauses, clause)
	}
	var build func(i int) []*opNode
	build = func(i int) []*opNode {
		if i >= len(clauses) {
			if def != nil {
				return b.walkStmts(def.Body)
			}
			return nil
		}
		clause := clauses[i]
		tainted := x.Tag != nil && b.tainted(x.Tag)
		cond := commspec.Unknown
		src := "switch case"
		if x.Tag != nil {
			src = types.ExprString(x.Tag)
			if tagStr, ok := b.env.render(x.Tag); ok {
				parts := make([]string, 0, len(clause.List))
				for _, ce := range clause.List {
					cs, ok := b.env.render(ce)
					if !ok {
						parts = nil
						break
					}
					parts = append(parts, "("+tagStr+"=="+cs+")")
				}
				if parts != nil {
					cond = strings.Join(parts, "||")
					if len(parts) > 1 {
						cond = "(" + cond + ")"
					}
				}
			}
		}
		for _, ce := range clause.List {
			if b.tainted(ce) {
				tainted = true
			}
		}
		return []*opNode{{
			kind:        opBranch,
			pos:         clause.Pos(),
			condSrc:     src,
			condStr:     cond,
			condTainted: tainted,
			then:        b.walkStmts(clause.Body),
			els:         build(i + 1),
		}}
	}
	return build(0)
}

// isErrReturn reports whether a return statement surfaces an error (the
// abort path the simulations assume is not taken).
func (b *treeBuilder) isErrReturn(ret *ast.ReturnStmt) bool {
	if !b.errResult[len(b.errResult)-1] || len(ret.Results) == 0 {
		return false
	}
	last := ret.Results[len(ret.Results)-1]
	if id, ok := ast.Unparen(last).(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return true
}

// funcRef resolves an expression used as a function value — a plain
// identifier or a selector — to its declared function, or nil.
func (b *treeBuilder) funcRef(e ast.Expr) *types.Func {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := b.info.Pkg.Info.Uses[x].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := b.info.Pkg.Info.Uses[x.Sel].(*types.Func)
		return fn
	}
	return nil
}

// scanExpr extracts communication leaves from an expression in evaluation
// order: arguments before the call itself.
func (b *treeBuilder) scanExpr(e ast.Expr) []*opNode {
	var out []*opNode
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch x := e.(type) {
		case nil:
			return
		case *ast.CallExpr:
			callee := b.calls[x]
			if isMPIRunCall(callee) {
				// mpi.Run(w, func(c *Ctx) error { ... }): the rank body
				// executes here — inline it transparently. A named function
				// passed as the body becomes a call node, so consumers
				// descend into it exactly as they would for a direct call.
				for _, a := range x.Args {
					if fl, ok := a.(*ast.FuncLit); ok {
						b.pushResults(fl.Type.Results)
						out = append(out, b.walkStmts(fl.Body.List)...)
						b.popResults()
					} else if fn := b.funcRef(a); fn != nil {
						out = append(out, &opNode{kind: opCall, pos: a.Pos(), callee: fn})
					} else {
						walk(a)
					}
				}
				return
			}
			for _, a := range x.Args {
				walk(a)
			}
			walk(x.Fun)
			if n := b.leafFor(x, callee); n != nil {
				out = append(out, n)
			}
		case *ast.FuncLit:
			b.pushResults(x.Type.Results)
			body := b.walkStmts(x.Body.List)
			b.popResults()
			if len(body) > 0 {
				out = append(out, &opNode{kind: opClosure, pos: x.Pos(), body: body})
			}
		case *ast.ParenExpr:
			walk(x.X)
		case *ast.SelectorExpr:
			walk(x.X)
		case *ast.StarExpr:
			walk(x.X)
		case *ast.UnaryExpr:
			walk(x.X)
		case *ast.BinaryExpr:
			walk(x.X)
			walk(x.Y)
		case *ast.IndexExpr:
			walk(x.X)
			walk(x.Index)
		case *ast.SliceExpr:
			walk(x.X)
			walk(x.Low)
			walk(x.High)
			walk(x.Max)
		case *ast.TypeAssertExpr:
			walk(x.X)
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				walk(elt)
			}
		case *ast.KeyValueExpr:
			walk(x.Value)
		}
	}
	walk(e)
	return out
}

// leafFor builds the leaf node for one classified call, or nil.
func (b *treeBuilder) leafFor(call *ast.CallExpr, callee *types.Func) *opNode {
	kind, name := classifyComm(callee)
	renderArg := func(i int) string {
		if i >= len(call.Args) {
			return commspec.Unknown
		}
		if s, ok := b.env.render(call.Args[i]); ok {
			return s
		}
		return commspec.Unknown
	}
	switch kind {
	case commSend:
		return &opNode{kind: opP2P, pos: call.Pos(), comm: commSend, opName: name,
			partner: renderArg(0), tag: renderArg(1)}
	case commRecv:
		return &opNode{kind: opP2P, pos: call.Pos(), comm: commRecv, opName: name,
			partner: renderArg(0), tag: renderArg(1)}
	case commSendRecv:
		return &opNode{kind: opP2P, pos: call.Pos(), comm: commSendRecv, opName: name,
			partner: renderArg(0), partner2: renderArg(1), tag: renderArg(2)}
	case commColl:
		return &opNode{kind: opColl, pos: call.Pos(), comm: commColl, opName: name}
	case commPhase:
		n := &opNode{kind: opPhase, pos: call.Pos(), comm: commPhase, opName: name,
			phaseName: commspec.Unknown}
		if len(call.Args) > 0 {
			if tv, ok := b.info.Pkg.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				n.phaseName = constant.StringVal(tv.Value)
				n.phaseConst = true
			}
		}
		return n
	case commCompute:
		return &opNode{kind: opCompute, pos: call.Pos(), comm: commCompute, opName: name}
	}
	if callee == nil {
		return nil
	}
	if info := b.prog.funcOf(callee); info != nil && !isMPIRuntimePkg(info.Pkg) {
		if f := b.prog.commFactOf(callee); f.hasComm() || f.hasCompute {
			return &opNode{kind: opCall, pos: call.Pos(), callee: callee}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Tree queries shared by the passes.
// ---------------------------------------------------------------------------

// subtreeHas reports whether any node in the forest satisfies pred,
// descending through branches, loops and closures but not opCall edges.
func subtreeHas(nodes []*opNode, pred func(*opNode) bool) bool {
	for _, n := range nodes {
		if pred(n) {
			return true
		}
		switch n.kind {
		case opBranch:
			if subtreeHas(n.then, pred) || subtreeHas(n.els, pred) {
				return true
			}
		case opLoop, opClosure:
			if subtreeHas(n.body, pred) {
				return true
			}
		}
	}
	return false
}

// subtreeHasCommOp reports p2p or collective presence, resolving opCall
// edges through the fact table.
func (prog *Program) subtreeHasCommOp(nodes []*opNode) bool {
	return subtreeHas(nodes, func(n *opNode) bool {
		switch n.kind {
		case opP2P, opColl:
			return true
		case opCall:
			f := prog.commFactOf(n.callee)
			return f.hasP2P || len(f.colls) > 0
		}
		return false
	})
}

// expandTree replaces opCall nodes by their callees' trees so a whole
// kernel becomes one instantiable forest. Recursive or overly deep call
// chains fail the expansion (ok=false) — the callers then treat the
// function as unsimulatable rather than analyze a truncated protocol.
func (prog *Program) expandTree(fn *types.Func, depth int, busy map[*types.Func]bool) ([]*opNode, bool) {
	if depth > 8 || busy[fn] {
		return nil, false
	}
	info := prog.funcOf(fn)
	if info == nil || isMPIRuntimePkg(info.Pkg) {
		return nil, false
	}
	busy[fn] = true
	defer delete(busy, fn)
	var expand func(nodes []*opNode) ([]*opNode, bool)
	expand = func(nodes []*opNode) ([]*opNode, bool) {
		out := make([]*opNode, 0, len(nodes))
		for _, n := range nodes {
			switch n.kind {
			case opCall:
				sub, ok := prog.expandTree(n.callee, depth+1, busy)
				if !ok {
					return nil, false
				}
				out = append(out, sub...)
			case opBranch:
				then, ok := expand(n.then)
				if !ok {
					return nil, false
				}
				els, ok := expand(n.els)
				if !ok {
					return nil, false
				}
				c := *n
				c.then, c.els = then, els
				out = append(out, &c)
			case opLoop, opClosure:
				body, ok := expand(n.body)
				if !ok {
					return nil, false
				}
				c := *n
				c.body = body
				out = append(out, &c)
			default:
				out = append(out, n)
			}
		}
		return out, true
	}
	return expand(prog.commTree(info))
}

// calledFuncs returns (memoized) every function with a static caller in
// the program — the complement identifies the analysis roots.
func (prog *Program) calledFuncs() map[*types.Func]bool {
	if prog.commCalled != nil {
		return prog.commCalled
	}
	called := map[*types.Func]bool{}
	for _, info := range prog.funcs {
		for _, cs := range info.calls {
			called[cs.callee] = true
		}
	}
	prog.commCalled = called
	return called
}

// containsMPIRun reports whether the function launches an mpi job — the
// kernel-root marker for the skeleton and the deadlock simulation.
func (prog *Program) containsMPIRun(info *FuncInfo) bool {
	for _, cs := range info.calls {
		if isMPIRunCall(cs.callee) {
			return true
		}
	}
	return false
}

// describeGuard renders a human-facing guard description for reports.
func describeGuard(n *opNode) string {
	return fmt.Sprintf("(%s)", n.condSrc)
}
