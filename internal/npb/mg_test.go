package npb

import (
	"testing"

	"pasp/internal/stats"
)

func TestMGValidate(t *testing.T) {
	if err := (MG{Size: 31, Cycles: 3}).Validate(4); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []struct {
		name string
		m    MG
		n    int
	}{
		{"tiny", MG{Size: 1, Cycles: 1}, 1},
		{"not 2^k-1", MG{Size: 32, Cycles: 1}, 1},
		{"zero cycles", MG{Size: 31}, 1},
		{"negative pre", MG{Size: 31, Cycles: 1, Pre: -1}, 1},
		{"too many ranks", MG{Size: 15, Cycles: 1}, 8}, // 15/8 < 2 planes
		{"neg scale", MG{Size: 31, Cycles: 1, Scale: -1}, 1},
	}
	for _, tc := range bad {
		if err := tc.m.Validate(tc.n); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

// The V-cycle must contract the residual by a healthy factor per cycle —
// the defining property of multigrid.
func TestMGConverges(t *testing.T) {
	mg := MG{Size: 31, Cycles: 4}
	res, _, err := mg.Run(npbWorld(1, 600))
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual0 <= 0 {
		t.Fatal("zero initial residual")
	}
	prev := res.Residual0
	for i, r := range res.Residuals {
		if r >= prev*0.6 {
			t.Errorf("cycle %d: residual %g did not contract from %g (factor %.2f)", i, r, prev, r/prev)
		}
		prev = r
	}
	if res.SolutionErr > 0.05 {
		t.Errorf("solution error %g too large", res.SolutionErr)
	}
}

// Weighted Jacobi and linear grid transfers are order-independent, so the
// residual history must be invariant under the rank count to rounding.
func TestMGRankInvariance(t *testing.T) {
	mg := MG{Size: 31, Cycles: 3}
	ref, _, err := mg.Run(npbWorld(1, 600))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 8} {
		got, _, err := mg.Run(npbWorld(n, 600))
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if !stats.AlmostEqual(got.Residual0, ref.Residual0, 1e-9) {
			t.Errorf("N=%d: initial residual %g ≠ %g", n, got.Residual0, ref.Residual0)
		}
		for i := range ref.Residuals {
			if !stats.AlmostEqual(got.Residuals[i], ref.Residuals[i], 1e-6) {
				t.Errorf("N=%d cycle %d: residual %.12g ≠ %.12g", n, i, got.Residuals[i], ref.Residuals[i])
			}
		}
		if !stats.AlmostEqual(got.SolutionErr, ref.SolutionErr, 1e-6) {
			t.Errorf("N=%d: solution error %g ≠ %g", n, got.SolutionErr, ref.SolutionErr)
		}
	}
}

// The agglomeration path must engage: at 8 ranks on a 31³ grid the coarse
// levels cannot keep 2 planes per rank, so an allgather appears in the
// trace.
func TestMGAgglomerationEngages(t *testing.T) {
	mg := MG{Size: 31, Cycles: 1}
	_, r, err := mg.Run(npbWorld(8, 600))
	if err != nil {
		t.Fatal(err)
	}
	by := r.Trace.ByPhase()
	if by["mg-agglomerate"] <= 0 {
		t.Errorf("no agglomeration in trace: %v", by)
	}
	if by["mg-exchange"] <= 0 {
		t.Errorf("no ghost exchanges in trace: %v", by)
	}
}

func TestMGCommunicationShrinksWithLevel(t *testing.T) {
	// Message bytes are dominated by the fine level; the whole V-cycle's
	// per-rank traffic should be within a small multiple of the fine-level
	// face size × number of fine exchanges.
	mg := MG{Size: 31, Cycles: 1}
	_, r, err := mg.Run(npbWorld(4, 600))
	if err != nil {
		t.Fatal(err)
	}
	if r.PerRank[1].Msgs == 0 {
		t.Fatal("no messages")
	}
	finePlane := (31 + 2) * (31 + 2) * 8
	avg := r.PerRank[1].MsgBytes / r.PerRank[1].Msgs
	if avg >= finePlane {
		t.Errorf("average message %d B not below the fine plane %d B; coarse levels missing", avg, finePlane)
	}
}

func TestMGMemoryBoundProfile(t *testing.T) {
	mg := MG{Size: 31, Cycles: 2}
	_, slow, err := mg.Run(npbWorld(1, 600))
	if err != nil {
		t.Fatal(err)
	}
	_, fast, err := mg.Run(npbWorld(1, 1400))
	if err != nil {
		t.Fatal(err)
	}
	s := slow.Seconds / fast.Seconds
	if s >= 2.33 || s <= 1.1 {
		t.Errorf("MG frequency speedup %g outside sub-linear band", s)
	}
}

func TestMGDeterministic(t *testing.T) {
	mg := MG{Size: 15, Cycles: 2}
	_, a, err := mg.Run(npbWorld(4, 800))
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := mg.Run(npbWorld(4, 800))
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds || a.Joules != b.Joules {
		t.Error("MG timing not deterministic")
	}
}

func TestOwnedCoarsePartition(t *testing.T) {
	// The coarse ranges must chain into a partition of 1..mc for any fine
	// partition produced by blockRange.
	for _, m := range []int{31, 63, 15} {
		for _, n := range []int{2, 3, 4, 8} {
			if m/n < 2 {
				continue
			}
			mc := (m+1)/2 - 1
			prev := 1
			for r := 0; r < n; r++ {
				lo, hi := blockRange(m, n, r)
				clo, chi := ownedCoarse(lo, hi)
				if clo != prev {
					t.Errorf("m=%d n=%d r=%d: coarse lo %d, want %d", m, n, r, clo, prev)
				}
				prev = chi
			}
			if prev != mc+1 {
				t.Errorf("m=%d n=%d: coarse coverage ends at %d, want %d", m, n, prev, mc+1)
			}
		}
	}
}
