package dvfs

import (
	"testing"

	"pasp/internal/cluster"
	"pasp/internal/npb"
	"pasp/internal/obs"
	"pasp/internal/trace"
)

// TestPolicyGearSwitchMetric cross-checks the observability layer against
// the trace under a live DVFS policy: the mpi.gear_switches counter must
// equal the number of dvfs-switch stall events the runtime logged — every
// actual P-state change charges one stall when SwitchSec > 0.
func TestPolicyGearSwitchMetric(t *testing.T) {
	plat := cluster.PentiumM()
	w, err := plat.World(4, 1400)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := FTPolicy(plat.Prof).Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	applied.Obs = rec
	ft := npb.FT{Nx: 16, Ny: 16, Nz: 16, Iters: 2}
	_, res, err := ft.Run(applied)
	if err != nil {
		t.Fatal(err)
	}
	switches := 0
	for _, e := range res.Trace.Events() {
		if e.Phase == "dvfs-switch" && e.Kind == trace.Comm {
			switches++
		}
	}
	if switches == 0 {
		t.Fatal("policy run logged no dvfs-switch events; the policy did not engage")
	}
	got := rec.Metrics().Snapshot().Counter("mpi.gear_switches")
	if got != float64(switches) { //palint:ignore floateq -- exact integer counts
		t.Errorf("mpi.gear_switches = %g, trace has %d dvfs-switch stalls", got, switches)
	}
}
