package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// The wide-event log is the serving layer's per-request telemetry: one
// canonical structured record per HTTP request, carrying the full timing
// breakdown (admission wait, store peek, coalesce wait, sweep seconds,
// model fit, response encode), the outcome and the cache disposition. It
// follows the package's nil-injector discipline — a nil *EventLog is
// bit-transparent: every method no-ops, so a server built without -events
// behaves byte-for-byte like one that predates the log.
//
// Events render as JSON lines with a fixed, hand-built field order (the
// same technique as ChromeTrace), so identical event sequences produce
// identical bytes regardless of GOMAXPROCS or map iteration, and the hot
// path reuses one scratch buffer per log — recording an event allocates
// nothing in steady state.

// Event is one wide, request-scoped telemetry record. Stage fields tile
// the request: consecutive wall-clock stamps mean DecodeS + PeekS +
// AdmissionS + CoalesceS + SweepS + FitS + EncodeS + OtherS == TotalS (up
// to float addition), which is what lets pastat attribute a latency
// percentile to a named stage instead of guessing.
type Event struct {
	// Seq is the log-assigned sequence number; T is seconds since the
	// log's epoch on the log's clock (wall by default, injectable in
	// tests).
	Seq uint64  `json:"seq"`
	T   float64 `json:"t"`
	// ID is the request ID (inbound X-Request-ID or server-generated).
	ID string `json:"id"`
	// Target names the endpoint ("predict", "sweep", "healthz", ...).
	Target string `json:"target"`
	// Kernel, N and MHz identify the asked-for configuration where the
	// endpoint has one (zero values are omitted).
	Kernel string  `json:"kernel,omitempty"`
	N      int     `json:"n,omitempty"`
	MHz    float64 `json:"mhz,omitempty"`
	// Status is the HTTP status written (499 for client-cancelled).
	Status int `json:"status"`
	// Cache is the campaign disposition: "hit" (peek-served), "miss"
	// (this request led the simulation), "coalesced" (rode another
	// request's flight), or empty for endpoints that never touch the
	// store.
	Cache string `json:"cache,omitempty"`
	// Leader is the request ID of the flight leader whose simulation a
	// coalesced request rode; set only when Cache == "coalesced".
	Leader string `json:"leader,omitempty"`
	// The stage breakdown, in pipeline order, wall-clock seconds.
	DecodeS    float64 `json:"decode_s"`
	PeekS      float64 `json:"peek_s"`
	AdmissionS float64 `json:"admission_s"`
	CoalesceS  float64 `json:"coalesce_s"`
	SweepS     float64 `json:"sweep_s"`
	FitS       float64 `json:"fit_s"`
	EncodeS    float64 `json:"encode_s"`
	// OtherS closes the books: TotalS minus the tracked stages (router,
	// header writes, instrumentation) — never negative.
	OtherS float64 `json:"other_s"`
	// TotalS is the measured request latency.
	TotalS float64 `json:"total_s"`
	// Err carries the error body's message for non-2xx outcomes.
	Err string `json:"err,omitempty"`
}

// StageNames lists the stage fields in pipeline order; Stages returns the
// matching values. The two are index-aligned so analyzers can iterate the
// breakdown without reflection.
var StageNames = []string{"decode", "peek", "admission", "coalesce", "sweep", "fit", "encode", "other"}

// Stages returns the stage durations in StageNames order.
func (e *Event) Stages() [8]float64 {
	return [8]float64{e.DecodeS, e.PeekS, e.AdmissionS, e.CoalesceS, e.SweepS, e.FitS, e.EncodeS, e.OtherS}
}

// StageSum returns the sum of all stage fields — the quantity the serving
// acceptance check compares against TotalS.
func (e *Event) StageSum() float64 {
	s := 0.0
	for _, v := range e.Stages() {
		s += v
	}
	return s
}

// Dominant returns the largest stage's name and its fraction of TotalS
// (fraction 0 when the event has no measured time).
func (e *Event) Dominant() (string, float64) {
	vals := e.Stages()
	best := 0
	for i, v := range vals {
		if v > vals[best] {
			best = i
		}
	}
	frac := 0.0
	if e.TotalS > 0 {
		frac = vals[best] / e.TotalS
	}
	return StageNames[best], frac
}

// appendFloat renders v shortest-exact, the same convention as the metric
// expositions, so event bytes round-trip and stay deterministic.
func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendStr appends a JSON string literal. The fast path covers the IDs
// and stage names the serving layer emits (no escapes); anything needing
// escaping takes the encoding/json slow path.
func appendStr(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x7f {
			enc, err := json.Marshal(s)
			if err != nil {
				return append(b, `""`...)
			}
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// AppendJSON appends the event as one JSON object in canonical field
// order (no trailing newline). The order is fixed by this function, not by
// a marshaller, so two identical events always render identical bytes.
func (e *Event) AppendJSON(b []byte) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, `,"t":`...)
	b = appendFloat(b, e.T)
	b = append(b, `,"id":`...)
	b = appendStr(b, e.ID)
	b = append(b, `,"target":`...)
	b = appendStr(b, e.Target)
	if e.Kernel != "" {
		b = append(b, `,"kernel":`...)
		b = appendStr(b, e.Kernel)
	}
	if e.N != 0 {
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, int64(e.N), 10)
	}
	if e.MHz != 0 {
		b = append(b, `,"mhz":`...)
		b = appendFloat(b, e.MHz)
	}
	b = append(b, `,"status":`...)
	b = strconv.AppendInt(b, int64(e.Status), 10)
	if e.Cache != "" {
		b = append(b, `,"cache":`...)
		b = appendStr(b, e.Cache)
	}
	if e.Leader != "" {
		b = append(b, `,"leader":`...)
		b = appendStr(b, e.Leader)
	}
	stages := e.Stages()
	for i, name := range StageNames {
		b = append(b, `,"`...)
		b = append(b, name...)
		b = append(b, `_s":`...)
		b = appendFloat(b, stages[i])
	}
	b = append(b, `,"total_s":`...)
	b = appendFloat(b, e.TotalS)
	if e.Err != "" {
		b = append(b, `,"err":`...)
		b = appendStr(b, e.Err)
	}
	return append(b, '}')
}

// EventLog collects wide events: each Record renders the event as one JSON
// line to the sink (when one is configured) and retains the event in a
// fixed-size ring for live introspection (/debug/requests). A nil log is
// bit-transparent; Record on a nil log is a single pointer test.
type EventLog struct {
	mu    sync.Mutex
	w     io.Writer
	clock func() float64
	buf   []byte
	ring  []Event
	next  int
	total uint64
}

// DefaultEventRing is the ring capacity NewEventLog applies when the
// caller passes ring <= 0.
const DefaultEventRing = 256

// NewEventLog returns a log writing JSON lines to w (nil for ring-only
// operation) and retaining the last ring events. The clock starts at zero
// on creation and advances with the wall clock; tests override it with
// SetClock for byte-deterministic output.
func NewEventLog(w io.Writer, ring int) *EventLog {
	if ring <= 0 {
		ring = DefaultEventRing
	}
	epoch := time.Now() //palint:ignore detsource -- event timestamps are wall-clock telemetry, not simulation output
	return &EventLog{
		w:     w,
		clock: func() float64 { return time.Since(epoch).Seconds() }, //palint:ignore detsource -- event timestamps are wall-clock telemetry, not simulation output
		buf:   make([]byte, 0, 512),
		ring:  make([]Event, 0, ring),
	}
}

// SetClock replaces the log's clock (seconds since epoch). Tests inject a
// counter here so rendered bytes are a pure function of the events.
func (l *EventLog) SetClock(fn func() float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.clock = fn
	l.mu.Unlock()
}

// Record stamps e with the next sequence number and the log's clock, then
// appends it to the sink and the ring. Safe from any goroutine; no-op on a
// nil log. The scratch buffer is reused, so steady-state recording does
// not allocate.
func (l *EventLog) Record(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	e.Seq = l.total
	e.T = l.clock()
	l.total++
	l.buf = e.AppendJSON(l.buf[:0])
	l.buf = append(l.buf, '\n')
	if l.w != nil {
		l.w.Write(l.buf) //palint:ignore droppederr -- a failing telemetry sink must never fail the request it describes
	}
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
	}
	l.next = (l.next + 1) % cap(l.ring)
	l.mu.Unlock()
}

// Total reports how many events have been recorded over the log's
// lifetime (not just the ring's retention window). Zero on a nil log.
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot copies the retained events out of the ring, oldest first.
// Empty on a nil log.
func (l *EventLog) Snapshot() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.ring))
	if len(l.ring) < cap(l.ring) {
		// The ring has not wrapped yet: entries sit in record order.
		return append(out, l.ring...)
	}
	out = append(out, l.ring[l.next:]...)
	return append(out, l.ring[:l.next]...)
}

// ParseEvents reads a wide-event log (one JSON object per line, as
// EventLog writes) and returns the events in file order. Blank lines are
// skipped; a malformed line is an error carrying its line number, so a
// truncated or corrupted log fails loudly instead of silently shortening
// the analysis.
func ParseEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(text, &e); err != nil {
			return nil, fmt.Errorf("obs: event log line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading event log: %w", err)
	}
	return out, nil
}
