package units

import (
	"math"
	"testing"
)

// These tests pin the blessed helpers to the repo's unit conventions (Hz
// internally, MHz in tables and CLI flags, ns in the lmbench layer).
// Positive powers of ten are exactly representable, so the up-scaling
// comparisons are exact; down-scaling multiplies by an inexact 1e-6/1e-9
// and is checked to relative precision instead.

// closeTo reports a relative error below 1e-12 — far tighter than any
// model tolerance, loose enough for one rounding of an inexact scale.
func closeTo(got, want float64) bool {
	return math.Abs(got-want) <= 1e-12*math.Abs(want)
}

func TestFrequencyScales(t *testing.T) {
	if got := MHz(600); float64(got) != 600e6 {
		t.Errorf("MHz(600) = %g Hz, want 6e8", float64(got))
	}
	if got := GHz(1.4); float64(got) != 1.4e9 {
		t.Errorf("GHz(1.4) = %g Hz, want 1.4e9", float64(got))
	}
	if got := MHz(1400).MHz(); got != 1400 {
		t.Errorf("MHz roundtrip = %g, want 1400", got)
	}
}

func TestTimeScales(t *testing.T) {
	if got := NanosToSec(110); !closeTo(float64(got), 110e-9) {
		t.Errorf("NanosToSec(110) = %g s, want 1.1e-7", float64(got))
	}
	if got := SecToNanos(2); float64(got) != 2e9 {
		t.Errorf("SecToNanos(2) = %g ns, want 2e9", float64(got))
	}
	if got := Nanos(140).Sec().Nanos(); !closeTo(float64(got), 140) {
		t.Errorf("ns→s→ns roundtrip = %g, want 140", float64(got))
	}
	if got := Seconds(0.5).Micros(); got != 5e5 {
		t.Errorf("Micros(0.5s) = %g µs, want 5e5", got)
	}
	if got := MicrosToSec(50); !closeTo(float64(got), 50e-6) {
		t.Errorf("MicrosToSec(50) = %g s, want 5e-5", float64(got))
	}
}

func TestDerivedQuantities(t *testing.T) {
	// Hz·s → cycles and its inverse cycles/Hz → s.
	if got := MHz(1000).CyclesIn(2); float64(got) != 2e9 {
		t.Errorf("1 GHz × 2 s = %g cycles, want 2e9", float64(got))
	}
	if got := Cycles(3).At(MHz(1000)); float64(got) != 3e-9 {
		t.Errorf("3 cycles at 1 GHz = %g s, want 3e-9", float64(got))
	}
	// W·s → J.
	if got := Watts(25).Energy(4); float64(got) != 100 {
		t.Errorf("25 W × 4 s = %g J, want 100", float64(got))
	}
	// Same-dimension division → dimensionless ratio.
	if got := MHz(600).Per(MHz(1400)); math.Abs(float64(got)-600.0/1400.0) > 1e-15 {
		t.Errorf("600/1400 MHz = %g, want %g", float64(got), 600.0/1400.0)
	}
}

func TestScalingHelpers(t *testing.T) {
	if got := Hertz(100).Times(3); float64(got) != 300 {
		t.Errorf("Hertz.Times = %g, want 300", float64(got))
	}
	if got := Seconds(10).Times(0.5); float64(got) != 5 {
		t.Errorf("Seconds.Times = %g, want 5", float64(got))
	}
	if got := Seconds(10).Div(4); float64(got) != 2.5 {
		t.Errorf("Seconds.Div = %g, want 2.5", float64(got))
	}
	if got := Nanos(110).Times(2); float64(got) != 220 {
		t.Errorf("Nanos.Times = %g, want 220", float64(got))
	}
	if got := Nanos(220).Div(2); float64(got) != 110 {
		t.Errorf("Nanos.Div = %g, want 110", float64(got))
	}
	if got := Cycles(6).Times(1.5); float64(got) != 9 {
		t.Errorf("Cycles.Times = %g, want 9", float64(got))
	}
	if got := Cycles(9).Div(3); float64(got) != 3 {
		t.Errorf("Cycles.Div = %g, want 3", float64(got))
	}
	if got := Watts(7).Times(2); float64(got) != 14 {
		t.Errorf("Watts.Times = %g, want 14", float64(got))
	}
	if got := Joules(50).Times(4); float64(got) != 200 {
		t.Errorf("Joules.Times = %g, want 200", float64(got))
	}
}
