// Package nakedgo seeds violations and non-violations for the nakedgo
// analyzer's golden test.
package nakedgo

import "sync"

// Bad1 increments a captured counter from goroutines: a textbook race.
func Bad1() int {
	counter := 0
	for i := 0; i < 4; i++ {
		go func() {
			counter++ // seeded violation 1
		}()
	}
	return counter
}

// Bad2 appends to a captured slice from a goroutine.
func Bad2() []int {
	var shared []int
	go func() {
		shared = append(shared, 1) // seeded violation 2
	}()
	return shared
}

// Bad3 writes a captured struct field from a goroutine.
type result struct{ seconds float64 }

func Bad3() result {
	var res result
	go func() {
		res.seconds = 1.5 // seeded violation 3
	}()
	return res
}

// GoodSlotWrite is the simulator's fan-out idiom: each goroutine owns a
// distinct element, indexed by its own parameter.
func GoodSlotWrite(n int) []error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = nil
		}(i)
	}
	wg.Wait()
	return errs
}

// GoodMutex locks around the shared write.
func GoodMutex() int {
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// GoodLocal mutates only goroutine-local state.
func GoodLocal(ch chan<- int) {
	go func() {
		sum := 0
		for i := 0; i < 10; i++ {
			sum += i
		}
		ch <- sum
	}()
}

// BadPool recycles a buffer through a sync.Pool inside the goroutine but
// still writes a captured variable: Get and Put manage memory, they do not
// synchronize, so the write must stay flagged.
func BadPool(p *sync.Pool) int {
	hits := 0
	go func() {
		buf := p.Get()
		hits++ // seeded violation 4
		p.Put(buf)
	}()
	return hits
}

// GoodPool combines buffer recycling with the fan-out idiom: every write is
// either goroutine-local or lands in the goroutine's own slot.
func GoodPool(p *sync.Pool, n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			buf := p.Get().([]byte)
			out[slot] = len(buf)
			p.Put(buf)
		}(i)
	}
	wg.Wait()
	return out
}
