// Customkernel: use the virtual-time MPI runtime directly to model your
// own parallel application — here a 1-D Jacobi heat solver with halo
// exchanges — then fit the power-aware speedup model to it and locate its
// energy-delay sweet spot. This is the workflow a user follows for codes
// outside the NAS suite.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"pasp/internal/cluster"
	"pasp/internal/core"
	"pasp/internal/machine"
	"pasp/internal/mpi"
)

// jacobi runs iters sweeps of a 1-D three-point stencil over cells points
// distributed across the ranks, exchanging one-point halos each sweep.
func jacobi(cells, iters int) func(c *mpi.Ctx) error {
	return func(c *mpi.Ctx) error {
		n, rank := c.Size(), c.Rank()
		local := cells / n
		// The local field with two halo points; real math, verifiable.
		u := make([]float64, local+2)
		for i := range u {
			u[i] = float64(rank*local + i)
		}
		next := make([]float64, local+2)
		for it := 0; it < iters; it++ {
			c.SetPhase("halo")
			if rank > 0 {
				got, err := c.SendRecv(rank-1, rank-1, it, []float64{u[1]}, 0)
				if err != nil {
					return err
				}
				u[0] = got[0]
			}
			if rank < n-1 {
				got, err := c.SendRecv(rank+1, rank+1, it, []float64{u[local]}, 0)
				if err != nil {
					return err
				}
				u[local+1] = got[0]
			}
			c.SetPhase("sweep")
			for i := 1; i <= local; i++ {
				next[i] = (u[i-1] + u[i] + u[i+1]) / 3
			}
			u, next = next, u
			// Account the sweep: ~6 instructions per point, a third of them
			// memory-streaming at this footprint.
			pts := float64(local)
			if err := c.Compute(machine.W(3*pts, 2*pts, 0, pts*0.25)); err != nil {
				return err
			}
		}
		c.SetPhase("norm")
		sum := 0.0
		for i := 1; i <= local; i++ {
			sum += u[i]
		}
		if _, err := c.Allreduce([]float64{sum}, mpi.Sum, 0); err != nil {
			return err
		}
		return nil
	}
}

func main() {
	platform := cluster.PentiumM()
	const cells, iters = 1 << 22, 40

	meas := core.NewMeasurements()
	for _, n := range []int{1, 2, 4, 8, 16} {
		for _, mhz := range []float64{600, 800, 1000, 1200, 1400} {
			w, err := platform.World(n, mhz)
			if err != nil {
				log.Fatal(err)
			}
			res, err := mpi.Run(w, jacobi(cells, iters))
			if err != nil {
				log.Fatal(err)
			}
			meas.SetTime(n, mhz, res.Seconds)
			meas.SetEnergy(n, mhz, res.Joules)
		}
	}

	sp, err := core.FitSP(meas)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Jacobi heat solver on the power-aware cluster:")
	for _, n := range []int{2, 8, 16} {
		pred, err := sp.PredictSpeedup(n, 1400)
		if err != nil {
			log.Fatal(err)
		}
		meas1400, err := meas.Speedup(n, 1400)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  N=%2d at 1400 MHz: measured speedup %5.2f, SP model %5.2f\n",
			n, meas1400, pred)
	}
	best, err := core.SweetSpot(meas, core.MinEDP, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  EDP sweet spot: %v (%.2f s, %.0f J)\n", best.Config, best.Seconds, best.Joules)
}
