package npb

import (
	"fmt"
	"math"

	"pasp/internal/machine"
	"pasp/internal/mpi"
)

// MG is the NAS multigrid kernel: V-cycles of weighted-Jacobi smoothing,
// full-weighting restriction and linear prolongation solving the 7-point
// Poisson problem on an (m × m × m) vertex grid, m = 2^k − 1. Its
// communication profile is the hierarchical one the NAS suite contributes:
// large nearest-neighbour face exchanges at the fine levels shrink
// geometrically until the coarse levels are pure latency — and once a level
// has fewer than two planes per rank it is agglomerated (allgathered) and
// solved redundantly on every rank, trading computation for messages, as
// real MG codes do.
//
// The domain decomposes in slabs over z. The right-hand side is
// manufactured from an exact solution, so convergence is verifiable, and
// weighted Jacobi is order-independent, so results are invariant under the
// rank count to rounding.
type MG struct {
	// Size is the interior points per dimension; Size+1 must be a power of
	// two (vertex grids 2^k − 1).
	Size int
	// Cycles is the number of V-cycles.
	Cycles int
	// Pre and Post are the smoothing sweeps before and after coarse-grid
	// correction; 0 selects 2.
	Pre, Post int
	// Scale inflates the timed workload as a volume multiplier; ghost-face
	// message sizes grow with the surface, i.e. by Scale^(2/3), and the
	// agglomerated coarse levels (whole grids) by Scale. 0 means 1.
	Scale float64
}

// Per-point instruction mixes for one smoothing or residual sweep. MG
// streams three arrays through memory at the fine levels.
const (
	mgPointReg = 18.0
	mgPointL1  = 14.0
	mgPointL2  = 0.8
	mgPointMem = 0.8
	// Grid-transfer sweeps (restrict/prolong) cost about half a smooth.
	mgTransferFactor = 0.5
	// The weighted-Jacobi relaxation factor.
	mgOmega = 2.0 / 3.0
)

// MGResult is the kernel's verifiable outcome.
type MGResult struct {
	// Residual0 is the RMS residual before the first cycle.
	Residual0 float64
	// Residuals holds the RMS residual after each V-cycle.
	Residuals []float64
	// SolutionErr is the final RMS error against the manufactured solution.
	SolutionErr float64
}

// Name returns the kernel's NAS name.
func (m MG) Name() string { return "MG" }

func (m MG) pre() int {
	if m.Pre == 0 {
		return 2
	}
	return m.Pre
}

func (m MG) post() int {
	if m.Post == 0 {
		return 2
	}
	return m.Post
}

func (m MG) scale() float64 {
	if m.Scale <= 0 {
		return 1
	}
	return m.Scale
}

// Validate reports an error for unusable parameters on n ranks.
func (m MG) Validate(n int) error {
	if m.Size < 3 {
		return fmt.Errorf("npb: MG size %d, want ≥ 3", m.Size)
	}
	if s := m.Size + 1; s&(s-1) != 0 {
		return fmt.Errorf("npb: MG size %d is not 2^k−1", m.Size)
	}
	if m.Cycles < 1 {
		return fmt.Errorf("npb: MG cycles %d, want ≥ 1", m.Cycles)
	}
	if m.Pre < 0 || m.Post < 0 {
		return fmt.Errorf("npb: MG negative smoothing counts")
	}
	if m.Scale < 0 {
		return fmt.Errorf("npb: MG negative scale")
	}
	if m.Size/n < 2 {
		return fmt.Errorf("npb: MG size %d too small for %d ranks (needs ≥ 2 planes each)", m.Size, n)
	}
	return nil
}

// Run executes MG on the world.
func (m MG) Run(w mpi.World) (MGResult, *mpi.Result, error) {
	if err := m.Validate(w.N); err != nil {
		return MGResult{}, nil, err
	}
	var out MGResult
	res, err := mpi.Run(w, func(c *mpi.Ctx) error {
		r, err := m.rank(c)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = r
		}
		return nil
	})
	if err != nil {
		return MGResult{}, nil, err
	}
	return out, res, nil
}

// mgLevel is one grid level on one rank.
type mgLevel struct {
	// m is the interior points per dimension at this level.
	m int
	// zlo, zhi is the owned global plane range [zlo, zhi), 1-based. For
	// agglomerated levels it is the whole grid on every rank.
	zlo, zhi int
	// distributed reports whether this level still exchanges ghosts; once
	// false, every rank holds and smooths the full level redundantly.
	distributed bool
	// u, rhs and res are the solution, right-hand side and scratch
	// residual, stored as (lz+2) planes of (m+2)² with zero borders.
	u, rhs, res []float64
}

func (l *mgLevel) lz() int   { return l.zhi - l.zlo }
func (l *mgLevel) side() int { return l.m + 2 }

// idx maps (local plane p ∈ 0..lz+1, row j, column i) to the flat index.
func (l *mgLevel) idx(p, j, i int) int {
	s := l.side()
	return (p*s+j)*s + i
}

// mgState is one rank's multigrid hierarchy.
type mgState struct {
	mg     MG
	c      *mpi.Ctx
	levels []*mgLevel
	// ranges[li][r] is the plane range rank r owns at level li ({1, m+1}
	// everywhere once the level is agglomerated). It is computed from the
	// same deterministic chain on every rank.
	ranges [][][2]int
	scale  float64
	// faceScale sizes ghost-face messages: surface ∝ volume^(2/3).
	faceScale float64
	// aggBuf is the agglomeration pack scratch, reused across V-cycles
	// (Allgather snapshots its payload at deposit time).
	aggBuf []float64
}

// ownedCoarse maps a fine ownership range to the coarse range: coarse
// plane kc lives at fine plane 2kc, so the range is [⌈zlo/2⌉, ⌈zhi/2⌉).
func ownedCoarse(zlo, zhi int) (int, int) {
	return (zlo + 1) / 2, (zhi + 1) / 2
}

// buildLevels constructs the hierarchy down to the 1-point grid,
// agglomerating once any rank would own fewer than two planes.
func (s *mgState) buildLevels() {
	n, rank := s.c.Size(), s.c.Rank()
	m := s.mg.Size
	cur := make([][2]int, n)
	for r := 0; r < n; r++ {
		lo, hi := blockRange(m, n, r)
		cur[r] = [2]int{lo, hi}
	}
	distributed := n > 1
	for m >= 1 {
		if !distributed {
			for r := range cur {
				cur[r] = [2]int{1, m + 1}
			}
		}
		lv := &mgLevel{
			m:           m,
			zlo:         cur[rank][0],
			zhi:         cur[rank][1],
			distributed: distributed,
		}
		size := (lv.lz() + 2) * lv.side() * lv.side()
		lv.u = make([]float64, size)
		lv.rhs = make([]float64, size)
		lv.res = make([]float64, size)
		s.levels = append(s.levels, lv)
		s.ranges = append(s.ranges, append([][2]int(nil), cur...))
		if m == 1 {
			break
		}
		mc := (m+1)/2 - 1
		if distributed {
			next := make([][2]int, n)
			min := mc
			for r := 0; r < n; r++ {
				lo, hi := ownedCoarse(cur[r][0], cur[r][1])
				next[r] = [2]int{lo, hi}
				if hi-lo < min {
					min = hi - lo
				}
			}
			if min < 2 {
				distributed = false
			} else {
				cur = next
			}
		}
		m = mc
	}
}

// bill accounts sweeps×points of the per-point mix, scaled by factor.
func (s *mgState) bill(points float64, factor float64) error {
	p := points * factor * s.scale
	return s.c.Compute(machine.W(p*mgPointReg, p*mgPointL1, p*mgPointL2, p*mgPointMem))
}

// ownedPoints returns the number of interior points this rank owns at a
// level.
func (s *mgState) ownedPoints(l *mgLevel) float64 {
	return float64(l.lz()) * float64(l.m) * float64(l.m)
}

// exchange refreshes the ghost planes of array a at a distributed level.
// Sends toward the top rank run first (the top rank has no upward partner
// and anchors the chain), so rendezvous-sized planes cannot deadlock.
func (s *mgState) exchange(l *mgLevel, a []float64) error {
	if !l.distributed {
		return nil
	}
	s.c.SetPhase("mg-exchange")
	rank, n := s.c.Rank(), s.c.Size()
	planeLen := l.side() * l.side()
	vb := int(float64(planeLen*8) * s.faceScale)
	up, down := rank+1, rank-1
	// Upward pass: my top plane becomes the upper neighbour's bottom ghost.
	if up < n {
		if err := s.c.Send(up, 70, a[l.idx(l.lz(), 0, 0):l.idx(l.lz(), 0, 0)+planeLen], vb); err != nil {
			return err
		}
	}
	if down >= 0 {
		got, err := s.c.Recv(down, 70)
		if err != nil {
			return err
		}
		copy(a[l.idx(0, 0, 0):l.idx(0, 0, 0)+planeLen], got)
		s.c.Free(got)
	}
	// Downward pass: my bottom plane becomes the lower neighbour's top ghost.
	if down >= 0 {
		if err := s.c.Send(down, 71, a[l.idx(1, 0, 0):l.idx(1, 0, 0)+planeLen], vb); err != nil {
			return err
		}
	}
	if up < n {
		got, err := s.c.Recv(up, 71)
		if err != nil {
			return err
		}
		copy(a[l.idx(l.lz()+1, 0, 0):l.idx(l.lz()+1, 0, 0)+planeLen], got)
		s.c.Free(got)
	}
	return nil
}

// applyA evaluates the 7-point operator at (p, j, i). One index computation
// serves all seven accesses (the neighbours sit at strides ±side², ±side,
// ±1); the operand order matches the indexed form, so the result is
// bit-identical.
//
//palint:hotpath
func (l *mgLevel) applyA(a []float64, p, j, i int) float64 {
	s := l.side()
	id := (p*s+j)*s + i
	return 6*a[id] -
		a[id-s*s] - a[id+s*s] -
		a[id-s] - a[id+s] -
		a[id-1] - a[id+1]
}

// smooth runs one weighted-Jacobi sweep: u ← u + ω(rhs − A·u)/6.
func (s *mgState) smooth(l *mgLevel) error {
	if err := s.exchange(l, l.u); err != nil {
		return err
	}
	s.c.SetPhase("mg-smooth")
	if l.m == 1 && l.lz() == 1 {
		// The 1-point grid solves exactly in one step.
		l.u[l.idx(1, 1, 1)] = l.rhs[l.idx(1, 1, 1)] / 6
		return nil
	}
	// Inlined applyA with an incrementing index: same operand order, so the
	// result is bit-identical to the indexed form.
	sd := l.side()
	ss := sd * sd
	u, rhs, res := l.u, l.rhs, l.res
	for p := 1; p <= l.lz(); p++ {
		for j := 1; j <= l.m; j++ {
			id := l.idx(p, j, 1)
			for i := 1; i <= l.m; i++ {
				au := 6*u[id] -
					u[id-ss] - u[id+ss] -
					u[id-sd] - u[id+sd] -
					u[id-1] - u[id+1]
				res[id] = u[id] + mgOmega*(rhs[id]-au)/6
				id++
			}
		}
	}
	// Publish the sweep by swapping the buffers instead of copying the
	// interior back. Both buffers carry the level's zero borders (neither
	// sweep loop ever writes them), and ghost planes are refreshed by
	// exchange before any consumer reads them — on non-distributed levels
	// they are the never-written boundary zeros in both buffers — so the
	// observable values match the copy exactly.
	l.u, l.res = l.res, l.u
	return s.bill(s.ownedPoints(l), 1)
}

// residual computes res = rhs − A·u over the owned interior.
func (s *mgState) residual(l *mgLevel) error {
	if err := s.exchange(l, l.u); err != nil {
		return err
	}
	s.c.SetPhase("mg-residual")
	sd := l.side()
	ss := sd * sd
	u, rhs, res := l.u, l.rhs, l.res
	for p := 1; p <= l.lz(); p++ {
		for j := 1; j <= l.m; j++ {
			id := l.idx(p, j, 1)
			for i := 1; i <= l.m; i++ {
				au := 6*u[id] -
					u[id-ss] - u[id+ss] -
					u[id-sd] - u[id+sd] -
					u[id-1] - u[id+1]
				res[id] = rhs[id] - au
				id++
			}
		}
	}
	return s.bill(s.ownedPoints(l), 1)
}

// weights1D are the full-weighting stencil weights per dimension.
var weights1D = [3]float64{0.25, 0.5, 0.25}

// restrict transfers the fine residual into the coarse right-hand side
// (27-point full weighting) and zeroes the coarse solution. When the
// coarse level is agglomerated, the locally computed coarse planes are
// allgathered so every rank holds the full coarse problem.
func (s *mgState) restrict(fine, coarse *mgLevel) error {
	if err := s.residual(fine); err != nil {
		return err
	}
	if err := s.exchange(fine, fine.res); err != nil {
		return err
	}
	s.c.SetPhase("mg-restrict")
	for i := range coarse.u {
		coarse.u[i] = 0
		coarse.rhs[i] = 0
	}
	// My coarse planes derive from my fine planes: kc ∈ ownedCoarse(fine).
	clo, chi := ownedCoarse(fine.zlo, fine.zhi)
	for kc := clo; kc < chi; kc++ {
		pf := 2*kc - fine.zlo + 1 // fine local plane of the coarse point
		var pc int
		if coarse.distributed {
			pc = kc - coarse.zlo + 1
		} else {
			pc = kc
		}
		// Flattened 27-point gather: the weight products and the
		// accumulation order match the nested dz/dy/dx loops exactly
		// ((wz·wy)·wx, added in the same sequence), so the sums are
		// bit-identical to the indexed form.
		fs := fine.side()
		fss := fs * fs
		fres := fine.res
		for jc := 1; jc <= coarse.m; jc++ {
			for ic := 1; ic <= coarse.m; ic++ {
				base := fine.idx(pf, 2*jc, 2*ic)
				sum := 0.0
				for dz := -1; dz <= 1; dz++ {
					wz := weights1D[dz+1]
					zb := base + dz*fss
					for dy := -1; dy <= 1; dy++ {
						wzy := wz * weights1D[dy+1]
						rb := zb + dy*fs
						sum += wzy * weights1D[0] * fres[rb-1]
						sum += wzy * weights1D[1] * fres[rb]
						sum += wzy * weights1D[2] * fres[rb+1]
					}
				}
				// Galerkin-free rediscretization scaling: the 7-point
				// operator halves its h⁻² weight per level; with the
				// unscaled stencil the restriction carries a factor 4.
				coarse.rhs[coarse.idx(pc, jc, ic)] = 4 * sum
			}
		}
	}
	if err := s.bill(s.ownedPoints(fine), mgTransferFactor); err != nil {
		return err
	}
	if !coarse.distributed && s.c.Size() > 1 {
		return s.agglomerate(fine, coarse)
	}
	return nil
}

// agglomerate allgathers the per-rank coarse planes into the full coarse
// grid on every rank.
func (s *mgState) agglomerate(fine, coarse *mgLevel) error {
	s.c.SetPhase("mg-agglomerate")
	clo, chi := ownedCoarse(fine.zlo, fine.zhi)
	planeLen := coarse.side() * coarse.side()
	mine := s.aggBuf[:0]
	for kc := clo; kc < chi; kc++ {
		base := coarse.idx(kc, 0, 0)
		mine = append(mine, coarse.rhs[base:base+planeLen]...)
	}
	s.aggBuf = mine
	vb := int(float64(len(mine)*8)*s.scale) + 8
	parts, err := s.c.Allgather(mine, vb)
	if err != nil {
		return err
	}
	// Reassemble using each source rank's deterministic coarse range.
	fi := s.levelIndex(fine)
	for src, part := range parts {
		srcRange := s.ranges[fi][src]
		cslo, cshi := ownedCoarse(srcRange[0], srcRange[1])
		want := (cshi - cslo) * planeLen
		if len(part) != want {
			return fmt.Errorf("npb: MG agglomerate: rank %d sent %d values, want %d", src, len(part), want)
		}
		off := 0
		for kc := cslo; kc < cshi; kc++ {
			base := coarse.idx(kc, 0, 0)
			copy(coarse.rhs[base:base+planeLen], part[off:off+planeLen])
			off += planeLen
		}
		if len(parts) > 1 {
			// n == 1 allgather returns the caller's own buffer (here kept
			// as s.aggBuf), not a copy; freeing it would recycle live data.
			s.c.Free(part)
		}
	}
	return nil
}

// levelIndex returns the position of lv in the hierarchy.
func (s *mgState) levelIndex(lv *mgLevel) int {
	for i, l := range s.levels {
		if l == lv {
			return i
		}
	}
	return -1
}

// prolong interpolates the coarse correction onto the fine solution.
func (s *mgState) prolong(coarse, fine *mgLevel) error {
	if err := s.exchange(coarse, coarse.u); err != nil {
		return err
	}
	s.c.SetPhase("mg-prolong")
	// Separable linear interpolation per dimension: interp1D(f) yields one
	// tap of weight 1 on even fine coordinates, two taps of weight ½ on odd
	// ones. A zero-weight tap was skipped by the original nested form, so
	// the tap lists below (length 1 or 2) visit exactly the taps it summed,
	// in the same z → y → x order with the same ((wz·wy)·wx)·u product
	// shape — the interpolated values are bit-identical.
	//
	// The y/x tap indices always land in [0, coarse.m] (fine.m = 2·coarse.m),
	// so only the z tap needs the out-of-range guard the old coarseAt
	// applied; an out-of-range plane contributes a literal zero through the
	// same multiply-add the in-range path runs.
	interp1D := func(f int) (t [2]int, w [2]float64, n int) {
		if f%2 == 0 {
			return [2]int{f / 2}, [2]float64{1}, 1
		}
		return [2]int{(f - 1) / 2, (f + 1) / 2}, [2]float64{0.5, 0.5}, 2
	}
	cu := coarse.u
	cs := coarse.side()
	fu := fine.u
	for kf := fine.zlo; kf < fine.zhi; kf++ {
		pf := kf - fine.zlo + 1
		zk, zw, nz := interp1D(kf)
		var pbase [2]int
		var pok [2]bool
		for zi := 0; zi < nz; zi++ {
			var pc int
			if coarse.distributed {
				pc = zk[zi] - coarse.zlo + 1
				pok[zi] = pc >= 0 && pc <= coarse.lz()+1
			} else {
				pc = zk[zi]
				pok[zi] = pc >= 0 && pc <= coarse.m+1
			}
			pbase[zi] = pc * cs * cs
		}
		for jf := 1; jf <= fine.m; jf++ {
			yj, yw, ny := interp1D(jf)
			// The (z, y) tap pairs — weight product, row base, plane
			// validity — are fixed across the row; flatten them once in
			// the same z → y order the nested loops visit.
			var pw [4]float64
			var prb [4]int
			var pvalid [4]bool
			np := 0
			for zi := 0; zi < nz; zi++ {
				for yi := 0; yi < ny; yi++ {
					pw[np] = zw[zi] * yw[yi]
					prb[np] = pbase[zi] + yj[yi]*cs
					pvalid[np] = pok[zi]
					np++
				}
			}
			fid := fine.idx(pf, jf, 1)
			for ifx := 1; ifx <= fine.m; ifx++ {
				var x0, x1 int
				var w0, w1 float64
				nx := 1
				if ifx&1 == 0 {
					x0, w0 = ifx>>1, 1
				} else {
					x0, w0 = (ifx-1)>>1, 0.5
					x1, w1 = x0+1, 0.5
					nx = 2
				}
				v := 0.0
				for pi := 0; pi < np; pi++ {
					wp := pw[pi]
					val0, val1 := 0.0, 0.0
					if pvalid[pi] {
						rb := prb[pi]
						val0 = cu[rb+x0]
						if nx == 2 {
							val1 = cu[rb+x1]
						}
					}
					v += wp * w0 * val0
					if nx == 2 {
						v += wp * w1 * val1
					}
				}
				fu[fid] += v
				fid++
			}
		}
	}
	return s.bill(s.ownedPoints(fine), mgTransferFactor)
}

// vcycle runs one V-cycle starting at hierarchy level li.
func (s *mgState) vcycle(li int) error {
	l := s.levels[li]
	if li == len(s.levels)-1 {
		// Coarsest level: smooth to convergence (it is tiny).
		sweeps := 8
		if l.m == 1 {
			sweeps = 1
		}
		for i := 0; i < sweeps; i++ {
			if err := s.smooth(l); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < s.mg.pre(); i++ {
		if err := s.smooth(l); err != nil {
			return err
		}
	}
	if err := s.restrict(l, s.levels[li+1]); err != nil {
		return err
	}
	if err := s.vcycle(li + 1); err != nil {
		return err
	}
	if err := s.prolong(s.levels[li+1], l); err != nil {
		return err
	}
	for i := 0; i < s.mg.post(); i++ {
		if err := s.smooth(l); err != nil {
			return err
		}
	}
	return nil
}

// rmsResidual returns the global RMS residual at the finest level.
func (s *mgState) rmsResidual() (float64, error) {
	l := s.levels[0]
	if err := s.residual(l); err != nil {
		return 0, err
	}
	s.c.SetPhase("mg-norm")
	local := 0.0
	for p := 1; p <= l.lz(); p++ {
		for j := 1; j <= l.m; j++ {
			for i := 1; i <= l.m; i++ {
				v := l.res[l.idx(p, j, i)]
				local += v * v
			}
		}
	}
	sum, err := s.c.Allreduce([]float64{local}, mpi.Sum, 8)
	if err != nil {
		return 0, err
	}
	total := float64(l.m) * float64(l.m) * float64(l.m)
	return math.Sqrt(sum[0] / total), nil
}

func (m MG) rank(c *mpi.Ctx) (MGResult, error) {
	s := &mgState{mg: m, c: c, scale: m.scale()}
	s.faceScale = math.Pow(s.scale, 2.0/3.0)
	s.buildLevels()

	// Manufactured problem on the finest level: rhs = A·u* with
	// u* = 64·xyz(1−x)(1−y)(1−z), zero on the boundary.
	c.SetPhase("mg-setup")
	fin := s.levels[0]
	//palint:ignore floatdiv -- m+1 >= 1 for any non-negative grid size, so the mesh spacing denominator is structurally positive
	h := 1.0 / float64(fin.m+1)
	exact := func(k, j, i int) float64 {
		x, y, z := float64(i)*h, float64(j)*h, float64(k)*h
		return 64 * x * (1 - x) * y * (1 - y) * z * (1 - z)
	}
	for k := fin.zlo; k < fin.zhi; k++ {
		p := k - fin.zlo + 1
		for j := 1; j <= fin.m; j++ {
			for i := 1; i <= fin.m; i++ {
				fin.rhs[fin.idx(p, j, i)] = 6*exact(k, j, i) -
					exact(k-1, j, i) - exact(k+1, j, i) -
					exact(k, j-1, i) - exact(k, j+1, i) -
					exact(k, j, i-1) - exact(k, j, i+1)
			}
		}
	}
	if err := s.bill(s.ownedPoints(fin), 1); err != nil {
		return MGResult{}, err
	}

	var out MGResult
	r0, err := s.rmsResidual()
	if err != nil {
		return MGResult{}, err
	}
	out.Residual0 = r0
	for cycle := 0; cycle < m.Cycles; cycle++ {
		if err := s.vcycle(0); err != nil {
			return MGResult{}, err
		}
		r, err := s.rmsResidual()
		if err != nil {
			return MGResult{}, err
		}
		out.Residuals = append(out.Residuals, r)
	}

	// Final solution error.
	local := 0.0
	for k := fin.zlo; k < fin.zhi; k++ {
		p := k - fin.zlo + 1
		for j := 1; j <= fin.m; j++ {
			for i := 1; i <= fin.m; i++ {
				d := fin.u[fin.idx(p, j, i)] - exact(k, j, i)
				local += d * d
			}
		}
	}
	sum, err := c.Allreduce([]float64{local}, mpi.Sum, 8)
	if err != nil {
		return MGResult{}, err
	}
	total := float64(fin.m) * float64(fin.m) * float64(fin.m)
	out.SolutionErr = math.Sqrt(sum[0] / total)
	return out, nil
}
