package analysis

import (
	"strings"
)

// Suppression comments have the form
//
//	//palint:ignore <analyzer>[,<analyzer>...] -- <reason>
//
// placed either on the flagged line or on the line immediately above it.
// "all" matches every analyzer. The " -- " separator and a reason are both
// mandatory: a suppression that cannot say why it exists is a finding, not
// an exemption — the comment is ignored (and the diagnostic stays active)
// when the separator or the reason is missing, so bare ignores cannot rot
// silently in the tree.
const ignorePrefix = "palint:ignore"

// suppression is one parsed ignore directive.
type suppression struct {
	analyzers map[string]bool // nil means "all"
	reason    string
}

// matches reports whether the directive covers the named analyzer.
func (s suppression) matches(name string) bool {
	return s.analyzers == nil || s.analyzers[name]
}

// parseSuppression extracts a directive from one comment's text, which
// arrives without the // or /* markers. It returns ok=false for ordinary
// comments and for directives missing the " -- " separator or the reason.
func parseSuppression(text string) (suppression, bool) {
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, ignorePrefix)
	if !ok {
		return suppression{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 3 || fields[1] != "--" {
		// No analyzer list, no -- separator, or no reason: not a valid
		// directive, so the underlying finding stays active.
		return suppression{}, false
	}
	s := suppression{reason: strings.Join(fields[2:], " ")}
	if fields[0] != "all" {
		s.analyzers = map[string]bool{}
		for _, name := range strings.Split(fields[0], ",") {
			s.analyzers[name] = true
		}
	}
	return s, true
}

// suppressionIndex maps file → line → directives declared on that line.
func buildSuppressionIndex(pkgs []*Package) map[string]map[int][]suppression {
	index := map[string]map[int][]suppression{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimPrefix(text, "/*")
					text = strings.TrimSuffix(text, "*/")
					s, ok := parseSuppression(text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					byLine := index[pos.Filename]
					if byLine == nil {
						byLine = map[int][]suppression{}
						index[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], s)
				}
			}
		}
	}
	return index
}

// markSuppressed flags d when an ignore directive on its line or the line
// above covers its analyzer.
func markSuppressed(d *Diagnostic, index map[string]map[int][]suppression) {
	byLine := index[d.File]
	if byLine == nil {
		return
	}
	for _, line := range []int{d.Line, d.Line - 1} {
		for _, s := range byLine[line] {
			if s.matches(d.Analyzer) {
				d.Suppressed = true
				d.Reason = s.reason
				return
			}
		}
	}
}
