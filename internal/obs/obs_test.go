package obs

import (
	"math"
	"strings"
	"sync"
	"testing"

	"pasp/internal/power"
	"pasp/internal/trace"
	"pasp/internal/units"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msgs")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 { //palint:ignore floateq -- exact sums of exactly-representable values
		t.Errorf("counter = %g, want 3.5", got)
	}
	if r.Counter("msgs") != c {
		t.Error("second Counter lookup returned a different instrument")
	}
	g := r.Gauge("makespan")
	g.Set(12.25)
	if got := g.Value(); got != 12.25 { //palint:ignore floateq -- exact round-trip of a stored value
		t.Errorf("gauge = %g, want 12.25", got)
	}
}

func TestCounterConcurrentAdds(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 { //palint:ignore floateq -- integer counts are exact in float64
		t.Errorf("concurrent counter = %g, want 8000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bytes", []float64{10, 100})
	h.Observe(5)    // ≤10
	h.Observe(10)   // ≤10 (boundary lands in its bucket)
	h.Observe(50)   // ≤100
	h.Observe(1000) // overflow
	h.ObserveN(7, 2)
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms, want 1", len(s.Histograms))
	}
	p := s.Histograms[0]
	want := []int64{4, 1, 1}
	for i, w := range want {
		if p.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, p.Counts[i], w)
		}
	}
	if p.Count != 6 {
		t.Errorf("count = %d, want 6", p.Count)
	}
	if p.Sum != 5+10+50+1000+14 { //palint:ignore floateq -- exact sums of exactly-representable values
		t.Errorf("sum = %g", p.Sum)
	}
}

func TestSnapshotDeterministicText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("z").Set(3)
	r.Histogram("h", []float64{1}).Observe(0.5)
	text := r.Snapshot().Text()
	want := "counter a 1\ncounter b 2\ngauge z 3\nhistogram h le=1:1 le=+Inf:0 count=1 sum=0.5\n"
	if text != want {
		t.Errorf("snapshot text:\n%s\nwant:\n%s", text, want)
	}
	if again := r.Snapshot().Text(); again != text {
		t.Error("repeated snapshots differ")
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(2)
	r.Histogram("h", []float64{1}).Observe(0.5)
	before := r.Snapshot()
	r.Counter("hits").Add(3)
	r.Counter("misses").Inc()
	r.Histogram("h", []float64{1}).Observe(2)
	d := r.Snapshot().Delta(before)
	if got := d.Counter("hits"); got != 3 { //palint:ignore floateq -- exact integer delta
		t.Errorf("hits delta = %g, want 3", got)
	}
	if got := d.Counter("misses"); got != 1 { //palint:ignore floateq -- exact integer delta
		t.Errorf("misses delta = %g, want 1", got)
	}
	if len(d.Histograms) != 1 || d.Histograms[0].Count != 1 || d.Histograms[0].Counts[1] != 1 {
		t.Errorf("histogram delta = %+v, want one overflow observation", d.Histograms)
	}
}

func TestRecorderSpanHierarchy(t *testing.T) {
	r := NewRecorder()
	camp := r.StartSpan(-1, "campaign:ft", 0, A("kernel", "ft"))
	r.BeginRun(2, 0, F("n", 2))
	r.Rank(0).Phase("init", 0)
	r.Rank(0).Phase("exchange", 1.5)
	r.Rank(0).Finish(3)
	r.Rank(1).Phase("init", 0)
	r.Rank(1).Finish(2.5)
	r.EndRun(3)
	r.EndSpan(camp, 3)
	r.AddRunAttrs(A("kernel", "ft"))

	spans := r.Spans()
	// campaign, run, rank 0, init, exchange, rank 1, init.
	if len(spans) != 7 {
		t.Fatalf("got %d spans, want 7: %+v", len(spans), spans)
	}
	if spans[0].Name != "campaign:ft" || spans[0].Parent != -1 {
		t.Errorf("span 0 = %+v, want root campaign", spans[0])
	}
	run := spans[1]
	if run.Name != "run" || run.End != 3 { //palint:ignore floateq -- exact virtual-time bookkeeping
		t.Errorf("run span = %+v", run)
	}
	if len(run.Attrs) != 2 || run.Attrs[1].Key != "kernel" {
		t.Errorf("run attrs = %+v, want n and kernel", run.Attrs)
	}
	rank0 := spans[2]
	if rank0.Name != "rank 0" || rank0.Parent != run.ID || rank0.Rank != 0 {
		t.Errorf("rank 0 span = %+v", rank0)
	}
	if spans[3].Name != "init" || spans[3].Parent != rank0.ID || spans[3].End != 1.5 { //palint:ignore floateq -- exact virtual-time bookkeeping
		t.Errorf("phase span = %+v", spans[3])
	}
	if spans[4].Name != "exchange" || spans[4].Start != 1.5 || spans[4].End != 3 { //palint:ignore floateq -- exact virtual-time bookkeeping
		t.Errorf("phase span = %+v", spans[4])
	}
	if spans[5].Name != "rank 1" || spans[6].Name != "init" {
		t.Errorf("rank 1 spans = %+v, %+v", spans[5], spans[6])
	}
	for i, s := range spans {
		if s.ID != i {
			t.Errorf("span %d carries ID %d; IDs must match returned order", i, s.ID)
		}
	}
}

func TestBeginRunTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("second BeginRun did not panic")
		}
	}()
	r := NewRecorder()
	r.BeginRun(1, 0)
	r.BeginRun(1, 0)
}

func TestGlobalRecorderInstall(t *testing.T) {
	r := NewRecorder()
	prev := SetGlobal(r)
	defer SetGlobal(prev)
	if Global() != r {
		t.Error("Global did not return the installed recorder")
	}
	if SetGlobal(nil) != r {
		t.Error("SetGlobal did not return the previous recorder")
	}
	if Global() != nil {
		t.Error("Global not nil after removal")
	}
	SetGlobal(prev)
}

// syntheticLog builds a two-rank log with every kind represented.
func syntheticLog() *trace.Log {
	l := &trace.Log{}
	l.Append(trace.Event{Rank: 0, Phase: "init", Kind: trace.Compute, Start: 0, End: 1, Watts: 40})
	l.Append(trace.Event{Rank: 0, Phase: "exchange", Kind: trace.Comm, Start: 1, End: 2, Watts: 40})
	l.Append(trace.Event{Rank: 0, Phase: "exchange", Kind: trace.Fault, Start: 2, End: 2.25, Watts: 40})
	l.Append(trace.Event{Rank: 1, Phase: "init", Kind: trace.Compute, Start: 0, End: 1.5, Watts: 40})
	l.Append(trace.Event{Rank: 1, Phase: "exchange", Kind: trace.Retry, Start: 1.5, End: 1.75, Watts: 30})
	return l
}

func TestChromeTraceValidatesAndIsDeterministic(t *testing.T) {
	l := syntheticLog()
	data := ChromeTrace(l, "pasp")
	n, err := ValidateChromeTrace(data)
	if err != nil {
		t.Fatalf("exported trace does not validate: %v\n%s", err, data)
	}
	// 1 process_name + 2×(thread_name+sort) + 5 X + 2 instants.
	if n != 12 {
		t.Errorf("trace has %d events, want 12", n)
	}
	if string(ChromeTrace(l, "pasp")) != string(data) {
		t.Error("repeated export differs byte-wise")
	}
	for _, want := range []string{`"rank 0"`, `"rank 1"`, `"thread_state_running"`, `"thread_state_iowait"`, `"bad"`, `"terrible"`, `"ph":"i"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("trace missing %s", want)
		}
	}
}

func TestSpansChromeTraceValidates(t *testing.T) {
	r := NewRecorder()
	id := r.StartSpan(-1, "campaign:ft", 0, F("cells", 4))
	r.EndSpan(id, 10)
	data := SpansChromeTrace(r.Spans(), "pachaos")
	if _, err := ValidateChromeTrace(data); err != nil {
		t.Fatalf("span trace does not validate: %v\n%s", err, data)
	}
}

func TestValidateChromeTraceRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      `{`,
		"empty":         `{"traceEvents":[]}`,
		"unknown phase": `{"traceEvents":[{"ph":"Q","name":"x"}]}`,
		"nameless X":    `{"traceEvents":[{"ph":"X","ts":0,"dur":1,"tid":0}]}`,
		"missing dur":   `{"traceEvents":[{"ph":"X","name":"x","ts":0,"tid":0}]}`,
		"negative dur":  `{"traceEvents":[{"ph":"X","name":"x","ts":0,"dur":-1,"tid":0}]}`,
		"process scope": `{"traceEvents":[{"ph":"i","name":"x","ts":0,"tid":0,"s":"p"}]}`,
		"bad meta name": `{"traceEvents":[{"ph":"M","name":"bogus"}]}`,
	}
	for name, data := range cases {
		if _, err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
}

func TestAttributeEnergySums(t *testing.T) {
	l := syntheticLog()
	prof := power.PentiumM()
	st := prof.TopState()
	makespan := 2.25
	rankEnds := []float64{2.25, 1.75}
	rep := AttributeEnergy(l, prof, st, makespan, rankEnds)

	// Row joules = Σ watts×duration; rank 1 also gets an idle tail.
	wantTotal := 40*1.0 + 40*1.0 + 40*0.25 + 40*1.5 + 30*0.25 +
		float64(prof.NodePower(st, 0).Energy(units.Seconds(makespan-1.75)))
	if math.Abs(rep.TotalJoules-wantTotal) > 1e-9*wantTotal {
		t.Errorf("TotalJoules = %.12g, want %.12g", rep.TotalJoules, wantTotal)
	}
	var rowSum float64
	for _, r := range rep.Rows {
		rowSum += r.Joules
	}
	if math.Abs(rowSum-rep.TotalJoules) > 1e-12 {
		t.Errorf("rows sum to %.12g, header says %.12g", rowSum, rep.TotalJoules)
	}
	// Rank 0 finished at the makespan: no idle row. Rank 1 idles.
	for _, r := range rep.Rows {
		if r.Rank == 0 && r.Phase == IdleTailPhase {
			t.Error("rank 0 has an idle tail despite finishing last")
		}
	}
	found := false
	for _, r := range rep.Rows {
		if r.Rank == 1 && r.Phase == IdleTailPhase {
			found = true
			if math.Abs(r.Seconds-0.5) > 1e-12 {
				t.Errorf("rank 1 idle tail = %g s, want 0.5", r.Seconds)
			}
		}
	}
	if !found {
		t.Error("rank 1 idle tail missing")
	}
	// Deterministic row order: (rank, phase).
	for i := 1; i < len(rep.Rows); i++ {
		a, b := rep.Rows[i-1], rep.Rows[i]
		if a.Rank > b.Rank || (a.Rank == b.Rank && a.Phase >= b.Phase) {
			t.Errorf("rows out of order at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestEnergyReportByPhaseAndText(t *testing.T) {
	l := syntheticLog()
	prof := power.PentiumM()
	rep := AttributeEnergy(l, prof, prof.TopState(), 2.25, []float64{2.25, 1.75})
	phases := rep.ByPhase()
	if len(phases) == 0 || phases[0].Joules < phases[len(phases)-1].Joules {
		t.Errorf("ByPhase not sorted by descending joules: %+v", phases)
	}
	text := rep.Text()
	for _, want := range []string{"phase", "init", "exchange", IdleTailPhase, "total"} {
		if !strings.Contains(text, want) {
			t.Errorf("report text missing %q:\n%s", want, text)
		}
	}
}

func TestManifestJSONAndFingerprint(t *testing.T) {
	m := NewManifest("patrace")
	m.Kernel, m.N, m.MHz = "ft", 4, 1400
	m.PlatformFingerprint = Fingerprint(struct{ A int }{1})
	data, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"tool": "patrace"`, `"go_version"`, `"platform_fingerprint"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("manifest missing %s:\n%s", want, data)
		}
	}
	if Fingerprint(struct{ A int }{1}) != m.PlatformFingerprint {
		t.Error("fingerprint not stable for equal content")
	}
	if Fingerprint(struct{ A int }{2}) == m.PlatformFingerprint {
		t.Error("fingerprint ignores content")
	}
}
