// Package mpi is a virtual-time message-passing runtime: an MPI-like API
// (point-to-point sends and receives plus the collectives the NAS kernels
// need) whose cost model is the simulated cluster rather than the wall
// clock.
//
// Each rank runs as a goroutine and owns a virtual clock. Computation
// advances the clock through the node timing model (package machine);
// communication advances it through the network model (package simnet).
// Messages carry both real payloads (so kernels compute verifiable results)
// and a virtual byte count (so a scaled-down array can be timed as the full
// NAS class would be).
//
// Determinism: the timing of every operation depends only on the virtual
// clocks of the participants and on per-pair FIFO message order, never on
// goroutine scheduling, so a simulation is reproducible run to run.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"pasp/internal/faults"
	"pasp/internal/machine"
	"pasp/internal/obs"
	"pasp/internal/papi"
	"pasp/internal/power"
	"pasp/internal/simnet"
	"pasp/internal/trace"
	"pasp/internal/units"
)

// ErrAborted is returned by communication calls after another rank has
// failed, so a collective error tears the whole job down instead of
// deadlocking.
var ErrAborted = errors.New("mpi: job aborted because another rank failed")

// ReduceInsPerByte is the endpoint instruction cost of combining one byte
// of a reduction payload (one load + one add per element, amortized).
const ReduceInsPerByte = 1.5

// Engine selects the runtime that executes a job's ranks. Both engines run
// the same Ctx/p2p/collective code and produce byte-identical timelines,
// energy totals and traces (the equivalence is pinned by differential
// tests); they differ only in how a rank blocks.
type Engine string

const (
	// EngineGoroutine runs every rank as a goroutine with channel
	// rendezvous — the original runtime, and the zero-value default.
	EngineGoroutine Engine = "goroutine"
	// EngineEvent runs ranks as cooperative coroutines under a
	// discrete-event scheduler: one execution token, an indexed min-heap of
	// runnable ranks ordered by virtual clock, no locks and no channel
	// select on the hot path. Same results, much less real scheduler time,
	// and virtual-time deadlocks are detected (ErrDeadlock) instead of
	// hanging. See engine.go.
	EngineEvent Engine = "event"
)

// Validate reports an error for an unknown engine name; the empty string
// selects EngineGoroutine.
func (e Engine) Validate() error {
	switch e {
	case "", EngineGoroutine, EngineEvent:
		return nil
	}
	return fmt.Errorf("mpi: unknown engine %q (want %q or %q)", string(e), EngineGoroutine, EngineEvent)
}

// World configures a simulated job: cluster size, machine/network models,
// and the P-state every node runs at.
type World struct {
	// N is the number of ranks (one per node).
	N int
	// Net is the interconnect model.
	Net simnet.Config
	// Mach is the per-node timing model.
	Mach machine.Config
	// Prof is the node power profile used for energy accounting.
	Prof power.Profile
	// State is the operating point all nodes run at for the whole job.
	// (Per-phase DVFS is layered on top by package dvfs.)
	State power.PState
	// PollUtil is the CPU utilization during communication waits. MPICH's
	// TCP device busy-polls, so the paper's platform burns full power while
	// blocked; 1.0 reproduces that. Values < 1 model interrupt-driven or
	// DVFS-assisted waiting.
	PollUtil float64
	// OnPhase, when non-nil, runs on each rank whenever it enters a new
	// kernel phase; DVFS schedulers use it to switch the rank's P-state.
	OnPhase func(c *Ctx, phase string)
	// GearSwitchSec is the stall charged to a rank each time SetPState
	// actually changes the operating point (Enhanced SpeedStep transition
	// plus driver overhead).
	GearSwitchSec units.Seconds
	// Faults is the chaos-harness configuration. The zero value injects
	// nothing and leaves every timing bit-identical to the fault-free
	// simulation; see package faults.
	Faults faults.Config
	// Obs, when non-nil, records the run into the observability layer:
	// a run span with platform attributes, per-rank phase spans, and the
	// recorder's metric registry. Nil follows the faults nil-injector
	// contract — no allocation, no timing change, bit-identical traces
	// (the alloc and golden tests in obs_test.go enforce this). A
	// Recorder instruments exactly one run; reuse panics.
	Obs *obs.Recorder
	// Comm, when non-nil, records the run's communication-protocol events
	// (phase transitions, message endpoints, collective entries) for
	// trace-conformance checking against the statically extracted skeleton
	// (cmd/paverify). Nil follows the same contract as Obs and Faults: no
	// allocation, no timing change, bit-identical traces.
	Comm *trace.CommRecorder
	// Engine selects the rank runtime; the zero value is EngineGoroutine.
	// Engines are timing-equivalent, so this is purely a performance knob.
	Engine Engine
	// Record, when non-nil, captures every rank's operation stream (phases,
	// compute work, message and collective shapes) so the run can be
	// re-timed at another frequency with Replay without re-executing kernel
	// code. Recording requires a nil OnPhase hook: kernel control flow and
	// communication shapes are frequency-independent, but a DVFS scheduler's
	// decisions need not be. A Recording captures exactly one run.
	Record *Recording

	// traceHint carries the per-rank trace-event counts of a recorded run
	// into its replays, so each rank's log is sized once instead of grown
	// by doubling. Purely a capacity hint — an absent or stale value only
	// costs allocations, never correctness. Set by Replay.
	traceHint []int
}

// Validate reports an error for an unusable configuration.
func (w World) Validate() error {
	if w.N <= 0 {
		return fmt.Errorf("mpi: N = %d, want ≥ 1", w.N)
	}
	if err := w.Net.Validate(); err != nil {
		return err
	}
	if err := w.Mach.Validate(); err != nil {
		return err
	}
	if err := w.Prof.Validate(); err != nil {
		return err
	}
	if w.State.Freq <= 0 {
		return fmt.Errorf("mpi: zero-frequency P-state")
	}
	if w.PollUtil < 0 || w.PollUtil > 1 {
		return fmt.Errorf("mpi: PollUtil %g outside [0,1]", w.PollUtil)
	}
	if w.GearSwitchSec < 0 {
		return fmt.Errorf("mpi: negative gear-switch time")
	}
	if err := w.Faults.Validate(); err != nil {
		return err
	}
	if err := w.Engine.Validate(); err != nil {
		return err
	}
	return nil
}

// RankFunc is the body executed by every rank.
type RankFunc func(c *Ctx) error

// RankStats summarizes one rank's run.
type RankStats struct {
	// Seconds is the rank's final virtual clock.
	Seconds float64
	// ComputeSec and CommSec attribute the clock to computation and
	// communication (including waits).
	ComputeSec, CommSec float64
	// Joules is the rank's node energy, excluding the idle tail spent
	// waiting for slower ranks to finish (accounted in Result.Joules).
	Joules float64
	// Msgs and MsgBytes profile the rank's outbound point-to-point traffic,
	// counting each collective as its constituent algorithm messages.
	Msgs     int
	MsgBytes int
	// FaultSec is the virtual time injected into this rank by the chaos
	// harness (jitter, degradation, straggler stretch and retry backoff);
	// zero on a fault-free run.
	FaultSec float64
	// Retries counts the injected message retransmissions this rank
	// observed on its receive path.
	Retries int
}

// Result aggregates a finished job.
type Result struct {
	// Seconds is the job's makespan: the maximum rank clock.
	Seconds float64
	// Joules is the whole-cluster energy: every node is powered for the
	// full makespan, with ranks that finish early idling at low utilization.
	Joules float64
	// Counters is the sum of all ranks' simulated PAPI counters.
	Counters papi.Counters
	// RankCounters holds each rank's counters (the paper samples rank 0 of
	// an SPMD code and notes counts agree within ~2% across ranks).
	RankCounters []papi.Counters
	// PerRank holds per-rank timing and energy.
	PerRank []RankStats
	// Trace is the merged phase trace of all ranks.
	Trace *trace.Log
}

// AvgWatts returns the cluster's mean power draw over the run.
func (r *Result) AvgWatts() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return r.Joules / r.Seconds
}

// EDP returns the run's energy-delay product.
func (r *Result) EDP() float64 {
	return power.EDP(units.Joules(r.Joules), units.Seconds(r.Seconds))
}

// ComputeSec returns the summed compute time across ranks.
func (r *Result) ComputeSec() float64 {
	t := 0.0
	for _, s := range r.PerRank {
		t += s.ComputeSec
	}
	return t
}

// CommSec returns the summed communication time across ranks.
func (r *Result) CommSec() float64 {
	t := 0.0
	for _, s := range r.PerRank {
		t += s.CommSec
	}
	return t
}

// FaultSec returns the summed chaos-injected time across ranks; zero on a
// fault-free run.
func (r *Result) FaultSec() float64 {
	t := 0.0
	for _, s := range r.PerRank {
		t += s.FaultSec
	}
	return t
}

// Retries returns the total injected message retransmissions across ranks.
func (r *Result) Retries() int {
	n := 0
	for _, s := range r.PerRank {
		n += s.Retries
	}
	return n
}

// runtime is the shared state of a running job.
type runtime struct {
	w     World
	boxes []atomic.Pointer[mailbox] // n×n mailboxes, indexed src*n+dst

	mu       sync.Mutex
	clocks   []float64
	payloads []any
	arrived  int
	release  chan struct{}
	snapshot *collSnapshot
	snaps    [2]collSnapshot // rotating epoch containers, see sync
	epoch    int

	abortOnce sync.Once
	abort     chan struct{}
}

// mailbox wraps one src→dst message channel so a pair's queue can be
// published atomically on first use.
type mailbox struct{ ch chan message }

// mailboxDepth plays the role of MPICH's eager-buffer pool: a sender with
// more than this many undelivered messages to one peer blocks until the
// receiver drains some — as real MPI does when its unexpected-message queue
// fills.
const mailboxDepth = 1024

// collSnapshot is the outcome of one collective synchronization epoch.
type collSnapshot struct {
	clocks   []float64
	payloads []any
}

func newRuntime(w World) *runtime {
	n := w.N
	r := &runtime{
		w:        w,
		clocks:   make([]float64, n),
		payloads: make([]any, n),
		abort:    make(chan struct{}),
	}
	// The event engine replaces the n² channel mailboxes with lazily created
	// ring buffers (engine.go) and the release broadcast with token wake-ups,
	// so neither is allocated for it — at N = 1024 the empty mailbox array
	// alone would cost 16 MB.
	if w.Engine != EngineEvent {
		r.boxes = make([]atomic.Pointer[mailbox], n*n)
		r.release = make(chan struct{})
	}
	for i := range r.snaps {
		r.snaps[i] = collSnapshot{
			clocks:   make([]float64, n),
			payloads: make([]any, n),
		}
	}
	return r
}

// box returns the mailbox from src to dst, creating it on first use. Kernels
// are neighbour- or collective-structured, so most of the n² pairs never
// exchange a point-to-point message; creating every deep channel eagerly
// cost tens of megabytes per 16-rank world. Which goroutine wins the
// publication race is irrelevant to the simulation: message timing depends
// only on virtual clocks and per-pair FIFO order, not on channel identity.
func (r *runtime) box(src, dst int) chan message {
	i := src*r.w.N + dst
	if mb := r.boxes[i].Load(); mb != nil {
		return mb.ch
	}
	mb := &mailbox{ch: make(chan message, mailboxDepth)}
	if r.boxes[i].CompareAndSwap(nil, mb) {
		return mb.ch
	}
	return r.boxes[i].Load().ch
}

func (r *runtime) doAbort() {
	r.abortOnce.Do(func() { close(r.abort) })
}

// sync blocks until all n ranks have deposited (clock, payload) and returns
// the epoch's snapshot. The snapshot's contents depend only on the deposits,
// so every collective is deterministic.
func (r *runtime) sync(rank int, clock float64, payload any) (*collSnapshot, error) {
	r.mu.Lock()
	r.clocks[rank] = clock
	r.payloads[rank] = payload
	r.arrived++
	if r.arrived == r.w.N {
		// Rotate between two preallocated snapshot containers instead of
		// allocating one per epoch. Reusing container k at epoch k+2 is safe:
		// a rank deposits for epoch k+2 only after it finished reading epoch
		// k+1's snapshot, which it read only after epoch k completed — so no
		// reader of container k remains by the time it is overwritten. The
		// deposited payload values themselves are never recycled; collectives
		// hand them to callers.
		snap := &r.snaps[r.epoch&1]
		r.epoch++
		copy(snap.clocks, r.clocks)
		copy(snap.payloads, r.payloads)
		r.snapshot = snap
		r.arrived = 0
		rel := r.release
		r.release = make(chan struct{})
		r.mu.Unlock()
		close(rel)
		return snap, nil
	}
	rel := r.release
	r.mu.Unlock()
	select {
	case <-rel:
		return r.snapshot, nil
	case <-r.abort:
		return nil, ErrAborted
	}
}

// Run executes fn on every rank of the world and aggregates the outcome.
// The first rank error aborts the job and is returned.
func Run(w World, fn RankFunc) (*Result, error) {
	if w.PollUtil == 0 {
		w.PollUtil = 1.0 // MPICH busy-poll default
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if w.Record != nil {
		if w.OnPhase != nil {
			return nil, errors.New("mpi: cannot record a run with an OnPhase hook: replay re-times the stream at other frequencies, and a DVFS scheduler's decisions need not be frequency-independent")
		}
		if err := w.Record.begin(w.N); err != nil {
			return nil, err
		}
	}
	if w.Obs != nil {
		beginObserve(w)
	}
	if w.Comm != nil {
		w.Comm.Start(w.N)
	}
	if w.Engine == EngineEvent {
		return runEvent(w, fn)
	}
	rt := newRuntime(w)
	ctxs := make([]*Ctx, w.N)
	errs := make([]error, w.N)
	var wg sync.WaitGroup
	for rank := 0; rank < w.N; rank++ {
		ctxs[rank] = newCtx(rt, rank)
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := fn(ctxs[rank]); err != nil {
				errs[rank] = fmt.Errorf("rank %d: %w", rank, err)
				rt.doAbort()
			}
		}(rank)
	}
	wg.Wait()
	return finishRun(w, ctxs, errs)
}

// finishRun is the engine-independent tail of a job: error selection,
// recording completion, aggregation and observation.
func finishRun(w World, ctxs []*Ctx, errs []error) (*Result, error) {
	// Prefer the root cause: a rank that failed on its own error rather
	// than one torn down by the abort.
	var aborted error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrAborted) {
			if aborted == nil {
				aborted = err
			}
			continue
		}
		return nil, err
	}
	if aborted != nil {
		return nil, aborted
	}
	if w.Record != nil {
		w.Record.finish(ctxs)
	}
	res := aggregate(w, ctxs)
	if w.Obs != nil {
		observeRun(w, ctxs, res)
	}
	return res, nil
}

func aggregate(w World, ctxs []*Ctx) *Result {
	res := &Result{
		PerRank:      make([]RankStats, w.N),
		RankCounters: make([]papi.Counters, w.N),
	}
	logs := make([]*trace.Log, w.N)
	for i, c := range ctxs {
		if c.clock > res.Seconds {
			res.Seconds = c.clock
		}
		logs[i] = &c.log
	}
	for i, c := range ctxs {
		idleTail := units.Seconds(res.Seconds - c.clock)
		idleJ := w.Prof.NodePower(w.State, 0).Energy(idleTail)
		res.PerRank[i] = RankStats{
			Seconds:    c.clock,
			ComputeSec: c.computeSec,
			CommSec:    c.commSec,
			Joules:     float64(c.meter.Joules()),
			Msgs:       c.msgs,
			MsgBytes:   c.msgBytes,
			FaultSec:   c.faultSec,
			Retries:    c.retries,
		}
		res.Joules += float64(c.meter.Joules() + idleJ)
		res.RankCounters[i] = c.counters
		res.Counters.Add(c.counters)
	}
	res.Trace = trace.Merge(logs...)
	return res
}
