package experiments

import (
	"context"
	"pasp/internal/core"
	"pasp/internal/units"
)

// EDPResult holds the energy-delay prediction experiment for one kernel:
// the abstract claims the model "predicts (within 7%) the power-aware
// performance and energy-delay products for various system configurations".
type EDPResult struct {
	// Time is the SP-model execution-time error grid.
	Time *ErrorGrid
	// EDP is the energy-delay-product error grid, with energy predicted
	// from the time model and the platform's power law.
	EDP *ErrorGrid
}

// String renders both grids.
func (r *EDPResult) String() string {
	return r.Time.String() + "\n" + r.EDP.String()
}

// EDPFrom predicts execution time with the SP parameterization and energy
// as N·P(f)·T (busy-poll utilization 1.0), then scores both against the
// simulator's measured time and integrated energy.
func (s Suite) EDPFrom(name string, camp *Campaign, ns []int, mhz []float64) (*EDPResult, error) {
	sp, err := core.FitSP(camp.Meas)
	if err != nil {
		return nil, err
	}
	timeGrid, err := errorGridFrom(name+" execution-time error (SP)",
		ns, mhz, sp.PredictTime, timeOf(camp.Meas))
	if err != nil {
		return nil, err
	}
	predictEDP := func(n int, f float64) (float64, error) {
		t, err := sp.PredictTime(n, f)
		if err != nil {
			return 0, err
		}
		st, err := s.Platform.Prof.StateAt(units.MHz(f))
		if err != nil {
			return 0, err
		}
		return core.PredictEDP(s.Platform.Prof, st, n, units.Seconds(t), 1.0)
	}
	measuredEDP := func(n int, f float64) (float64, error) {
		return camp.Meas.EDP(n, f)
	}
	edpGrid, err := errorGridFrom(name+" energy-delay-product error",
		ns, mhz, predictEDP, measuredEDP)
	if err != nil {
		return nil, err
	}
	return &EDPResult{Time: timeGrid, EDP: edpGrid}, nil
}

// EDPForFT runs the FT campaign and scores the EDP predictions (the
// abstract's headline claim, on the paper's communication-bound workload).
func (s Suite) EDPForFT(ctx context.Context) (*EDPResult, error) {
	camp, err := s.MeasureFT(ctx)
	if err != nil {
		return nil, err
	}
	return s.EDPFrom("FT", camp, s.Grid.Ns[1:], s.Grid.MHz)
}

// EDPForEP runs the EP campaign and scores the EDP predictions.
func (s Suite) EDPForEP(ctx context.Context) (*EDPResult, error) {
	camp, err := s.MeasureEP(ctx)
	if err != nil {
		return nil, err
	}
	return s.EDPFrom("EP", camp, s.Grid.Ns[1:], s.Grid.MHz)
}

// SweetSpotFT finds the measured EDP-optimal configuration for FT and the
// configuration the SP model would have recommended, demonstrating the
// paper's motivating use case.
func (s Suite) SweetSpotFT(ctx context.Context) (measured, predicted core.Candidate, err error) {
	camp, err := s.MeasureFT(ctx)
	if err != nil {
		return core.Candidate{}, core.Candidate{}, err
	}
	return s.SweetSpotFrom(camp)
}

// SweetSpotFrom computes the measured and model-recommended EDP optima
// from an existing campaign.
func (s Suite) SweetSpotFrom(camp *Campaign) (measured, predicted core.Candidate, err error) {
	measured, err = core.SweetSpot(camp.Meas, core.MinEDP, 0)
	if err != nil {
		return core.Candidate{}, core.Candidate{}, err
	}
	sp, err := core.FitSP(camp.Meas)
	if err != nil {
		return core.Candidate{}, core.Candidate{}, err
	}
	predictedMeas := core.NewMeasurements()
	for _, n := range camp.Meas.Ns() {
		for _, f := range camp.Meas.Freqs() {
			t, err := sp.PredictTime(n, f)
			if err != nil {
				return core.Candidate{}, core.Candidate{}, err
			}
			st, err := s.Platform.Prof.StateAt(units.MHz(f))
			if err != nil {
				return core.Candidate{}, core.Candidate{}, err
			}
			e, err := core.PredictEnergy(s.Platform.Prof, st, n, units.Seconds(t), 1.0)
			if err != nil {
				return core.Candidate{}, core.Candidate{}, err
			}
			predictedMeas.SetTime(n, f, t)
			predictedMeas.SetEnergy(n, f, float64(e))
		}
	}
	predicted, err = core.SweetSpot(predictedMeas, core.MinEDP, 0)
	return measured, predicted, err
}
