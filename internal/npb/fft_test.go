package npb

import (
	"math"
	"math/cmplx"
	"testing"

	"pasp/internal/stats"
)

// naiveDFT is the O(n²) reference transform.
func naiveDFT(x []complex128, dir fftDir) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := float64(dir) * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, angle))
		}
		if dir == fftInverse {
			sum /= complex(float64(n), 0)
		}
		out[k] = sum
	}
	return out
}

func randomComplex(n int, seed uint64) []complex128 {
	r := newRandlc(seed)
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(2*r.next()-1, 2*r.next()-1)
	}
	return out
}

func maxAbsDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64} {
		p, err := newFFTPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := randomComplex(n, 7)
		got := append([]complex128(nil), x...)
		if err := p.transform(got, fftForward); err != nil {
			t.Fatal(err)
		}
		want := naiveDFT(x, fftForward)
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("n=%d: FFT differs from DFT by %g", n, d)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	p, err := newFFTPlan(256)
	if err != nil {
		t.Fatal(err)
	}
	x := randomComplex(256, 42)
	y := append([]complex128(nil), x...)
	if err := p.transform(y, fftForward); err != nil {
		t.Fatal(err)
	}
	if err := p.transform(y, fftInverse); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(x, y); d > 1e-10 {
		t.Errorf("round trip error %g", d)
	}
}

func TestFFTLinearity(t *testing.T) {
	const n = 64
	p, _ := newFFTPlan(n)
	a := randomComplex(n, 1)
	b := randomComplex(n, 2)
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = a[i] + 2*b[i]
	}
	fa := append([]complex128(nil), a...)
	fb := append([]complex128(nil), b...)
	fs := append([]complex128(nil), sum...)
	if err := p.transform(fa, fftForward); err != nil {
		t.Fatal(err)
	}
	if err := p.transform(fb, fftForward); err != nil {
		t.Fatal(err)
	}
	if err := p.transform(fs, fftForward); err != nil {
		t.Fatal(err)
	}
	for i := range fs {
		if cmplx.Abs(fs[i]-(fa[i]+2*fb[i])) > 1e-9 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	const n = 128
	p, _ := newFFTPlan(n)
	x := randomComplex(n, 3)
	f := append([]complex128(nil), x...)
	if err := p.transform(f, fftForward); err != nil {
		t.Fatal(err)
	}
	var ex, ef float64
	for i := 0; i < n; i++ {
		ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		ef += real(f[i])*real(f[i]) + imag(f[i])*imag(f[i])
	}
	if !stats.AlmostEqual(ef, float64(n)*ex, 1e-9) {
		t.Errorf("Parseval: |F|² = %g, want n·|x|² = %g", ef, float64(n)*ex)
	}
}

func TestFFTPlanErrors(t *testing.T) {
	if _, err := newFFTPlan(12); err == nil {
		t.Error("non-power-of-two plan accepted")
	}
	if _, err := newFFTPlan(0); err == nil {
		t.Error("zero-length plan accepted")
	}
	p, _ := newFFTPlan(8)
	if err := p.transform(make([]complex128, 4), fftForward); err == nil {
		t.Error("wrong-length transform accepted")
	}
}

func TestFFTImpulse(t *testing.T) {
	// The transform of a unit impulse is the all-ones vector.
	p, _ := newFFTPlan(16)
	x := make([]complex128, 16)
	x[0] = 1
	if err := p.transform(x, fftForward); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse transform at %d = %v, want 1", i, v)
		}
	}
}

func TestFFTFlopsPerPoint(t *testing.T) {
	if got := fftFlopsPerPoint(64); got != 30 {
		t.Errorf("flops per point (n=64) = %g, want 30", got)
	}
}
