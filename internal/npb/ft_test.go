package npb

import (
	"math/cmplx"
	"testing"

	"pasp/internal/papi"
	"pasp/internal/trace"
)

func TestFTValidate(t *testing.T) {
	ok := FT{Nx: 16, Ny: 16, Nz: 16, Iters: 2}
	if err := ok.Validate(4); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []struct {
		name string
		f    FT
		n    int
	}{
		{"non-pow2 Nx", FT{Nx: 12, Ny: 16, Nz: 16, Iters: 1}, 1},
		{"zero iters", FT{Nx: 16, Ny: 16, Nz: 16}, 1},
		{"indivisible", FT{Nx: 16, Ny: 16, Nz: 16, Iters: 1}, 3},
		{"negative scale", FT{Nx: 16, Ny: 16, Nz: 16, Iters: 1, Scale: -1}, 1},
	}
	for _, tc := range bad {
		if err := tc.f.Validate(tc.n); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

// The paper-critical correctness property: the distributed FFT pipeline —
// local transforms, alltoall transpose, evolve, inverse — produces the same
// physical-space checksums at every rank count.
func TestFTChecksumRankInvariance(t *testing.T) {
	ft := FT{Nx: 16, Ny: 16, Nz: 16, Iters: 3}
	ref, _, err := ft.Run(npbWorld(1, 600))
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Checksums) != 3 {
		t.Fatalf("got %d checksums, want 3", len(ref.Checksums))
	}
	for _, n := range []int{2, 4, 8} {
		got, _, err := ft.Run(npbWorld(n, 600))
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		for i := range ref.Checksums {
			if d := cmplx.Abs(got.Checksums[i] - ref.Checksums[i]); d > 1e-8 {
				t.Errorf("N=%d iter %d: checksum %v ≠ %v (|Δ| = %g)", n, i, got.Checksums[i], ref.Checksums[i], d)
			}
		}
	}
}

func TestFTChecksumsEvolve(t *testing.T) {
	// Successive checksums must differ: the evolution factor changes the
	// field each iteration.
	res, _, err := FT{Nx: 16, Ny: 16, Nz: 8, Iters: 2}.Run(npbWorld(2, 600))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksums[0] == res.Checksums[1] {
		t.Error("checksums identical across iterations; evolve has no effect")
	}
}

func TestFTHasOffChipWork(t *testing.T) {
	_, r, err := FT{Nx: 16, Ny: 16, Nz: 16, Iters: 1}.Run(npbWorld(1, 600))
	if err != nil {
		t.Fatal(err)
	}
	w, err := r.Counters.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if frac := w.OffChip() / w.Total(); frac < 0.005 {
		t.Errorf("FT OFF-chip fraction %g too small; memory behaviour lost", frac)
	}
}

func TestFTScaleMultipliesWorkAndTime(t *testing.T) {
	base := FT{Nx: 16, Ny: 16, Nz: 8, Iters: 1}
	scaled := base
	scaled.Scale = 4
	_, rb, err := base.Run(npbWorld(2, 600))
	if err != nil {
		t.Fatal(err)
	}
	_, rs, err := scaled.Run(npbWorld(2, 600))
	if err != nil {
		t.Fatal(err)
	}
	if ratio := rs.Counters.Get(papi.TotIns) / rb.Counters.Get(papi.TotIns); ratio < 3.99 || ratio > 4.01 {
		t.Errorf("TOT_INS ratio = %g, want 4", ratio)
	}
	if rs.Seconds <= rb.Seconds {
		t.Error("scaled run not slower")
	}
	// Message bytes must scale too (comm grows with the class).
	if rs.PerRank[0].MsgBytes <= rb.PerRank[0].MsgBytes {
		t.Error("scaled run's message bytes did not grow")
	}
}

func TestFTCommunicationDominatedByAlltoall(t *testing.T) {
	_, r, err := FT{Nx: 16, Ny: 16, Nz: 16, Iters: 2}.Run(npbWorld(4, 600))
	if err != nil {
		t.Fatal(err)
	}
	by := r.Trace.ByPhase()
	if by["ft-alltoall"] <= 0 {
		t.Fatalf("no alltoall time in trace: %v", by)
	}
	var commTotal float64
	for _, k := range []string{"ft-alltoall", "ft-checksum"} {
		commTotal += by[k]
	}
	if by["ft-alltoall"] < 0.9*commTotal {
		t.Errorf("alltoall %g s not dominant in comm %g s", by["ft-alltoall"], commTotal)
	}
}

func TestFTTraceValid(t *testing.T) {
	_, r, err := FT{Nx: 16, Ny: 8, Nz: 8, Iters: 1}.Run(npbWorld(2, 1400))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Trace.Validate(); err != nil {
		t.Error(err)
	}
	tot := r.Trace.TotalByKind()
	if tot[trace.Compute] <= 0 || tot[trace.Comm] <= 0 {
		t.Errorf("kind totals: %v", tot)
	}
}

func TestFoldFrequencies(t *testing.T) {
	cases := []struct{ k, n, want int }{
		{0, 16, 0}, {1, 16, 1}, {8, 16, 8}, {9, 16, -7}, {15, 16, -1},
	}
	for _, c := range cases {
		if got := fold(c.k, c.n); got != c.want {
			t.Errorf("fold(%d,%d) = %d, want %d", c.k, c.n, got, c.want)
		}
	}
}

func TestFTDeterministicTiming(t *testing.T) {
	ft := FT{Nx: 16, Ny: 16, Nz: 16, Iters: 2}
	_, a, err := ft.Run(npbWorld(4, 800))
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := ft.Run(npbWorld(4, 800))
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds || a.Joules != b.Joules {
		t.Errorf("non-deterministic: %g/%g vs %g/%g", a.Seconds, a.Joules, b.Seconds, b.Joules)
	}
}
