// Command pamodel regenerates the paper's model-evaluation tables: the
// generalized-Amdahl error grid (Table 1), the platform operating points
// (Table 2), the SP prediction errors for FT (Table 3), the LU workload
// decomposition (Table 5), the measured per-level and communication
// timings (Table 6) and the FP-vs-SP comparison (Table 7).
//
// Usage:
//
//	pamodel [-suite paper|quick] [-table all|1|2|3|5|6|7]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"pasp/internal/experiments"
)

func main() {
	suite := flag.String("suite", "paper", "experiment scale: paper or quick")
	which := flag.String("table", "all", "table to regenerate: all, 1, 2, 3, 5, 6 or 7")
	flag.Parse()

	s, err := experiments.SuiteByName(*suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pamodel: %v\n", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	run := func(name string, f func() (fmt.Stringer, error)) {
		if *which != "all" && *which != name {
			return
		}
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pamodel: table %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	if *which == "all" || *which == "2" {
		fmt.Println(s.Table2())
	}
	run("1", func() (fmt.Stringer, error) { return s.Table1(ctx) })
	run("3", func() (fmt.Stringer, error) { return s.Table3(ctx) })
	run("5", func() (fmt.Stringer, error) { return s.Table5() })
	run("6", func() (fmt.Stringer, error) { return s.Table6() })
	run("7", func() (fmt.Stringer, error) { return s.Table7(ctx) })
}
