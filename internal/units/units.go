// Package units declares dimensioned scalar types for the quantities the
// power-aware speedup model computes with — frequencies, wall-clock times,
// cycle counts, power, energy, voltages and dimensionless ratios — plus the
// blessed conversion helpers between scales (MHz→Hz, ns→s, s→µs).
//
// Every type is a named float64: the wrappers compile to exactly the raw
// arithmetic they replace (BenchmarkTermsTime in internal/core measures
// this), but Go will no longer implicitly mix a Hertz with a Seconds. The
// unitcheck analyzer (internal/analysis) extends the protection to what Go
// does still allow: it derives the physical dimension of expressions
// through arithmetic (Hz·s→cycles, W·s→J, same-dimension division→Ratio)
// and rejects cross-dimension conversions such as units.Seconds(f) where f
// is a Hertz, addition or comparison of unlike dimensions, and bare scale
// literals (1e6, 1e-9, …) multiplying a dimensioned value outside this
// package. Scale conversions therefore live here and only here; call-site
// code writes units.MHz(1400) or n.Sec(), never *1e6 or *1e-9.
//
// Repo-wide conventions (see README.md): frequencies are Hertz internally
// and megahertz (plain float64 grid axes) in tables and CLI flags; memory
// latencies are Nanos in the lmbench layer and Seconds everywhere else;
// energy integration happens in Joules and Seconds.
//
// Escape hatch: float64(x) deliberately discards the dimension. It is the
// boundary conversion into untyped code (the mpi virtual clock, table
// renderers, fmt verbs that need a plain float) and unitcheck treats it as
// an explicit, visible opt-out.
package units

// Hertz is a frequency: core clock cycles per second.
type Hertz float64

// Seconds is a wall-clock duration.
type Seconds float64

// Nanos is a wall-clock duration expressed in nanoseconds. It shares the
// time dimension with Seconds but not the scale, so converting between the
// two without NanosToSec/SecToNanos is a unitcheck violation.
type Nanos float64

// Cycles is a count of core clock cycles (possibly fractional: blended CPI
// values are averages over an instruction mix).
type Cycles float64

// Watts is power.
type Watts float64

// Joules is energy.
type Joules float64

// Volts is electric potential.
type Volts float64

// Ratio is a dimensionless quotient of like quantities: frequency ratios
// (f/f0), efficiencies, fractional savings.
type Ratio float64

// MHz converts a megahertz count (the unit of the paper's tables and this
// repo's CLI flags and grid axes) to Hertz.
func MHz(x float64) Hertz { return Hertz(x * 1e6) }

// GHz converts a gigahertz count to Hertz.
func GHz(x float64) Hertz { return Hertz(x * 1e9) }

// MHz converts the frequency back to megahertz for display and grid keys.
func (f Hertz) MHz() float64 { return float64(f) / 1e6 }

// Times scales the frequency by a dimensionless factor.
func (f Hertz) Times(k float64) Hertz { return Hertz(float64(f) * k) }

// Per returns the dimensionless frequency ratio f/f0 — the r of Eqs. 9–12.
func (f Hertz) Per(f0 Hertz) Ratio {
	//palint:ignore floatdiv -- pure unit arithmetic; profiles validate P-state frequencies > 0 before the model runs
	return Ratio(float64(f) / float64(f0))
}

// CyclesIn returns how many core cycles elapse in t at frequency f
// (Hz · s → cycles).
func (f Hertz) CyclesIn(t Seconds) Cycles { return Cycles(float64(f) * float64(t)) }

// NanosToSec rescales a nanosecond duration to seconds.
func NanosToSec(n Nanos) Seconds { return Seconds(float64(n) * 1e-9) }

// SecToNanos rescales a second duration to nanoseconds.
func SecToNanos(s Seconds) Nanos { return Nanos(float64(s) * 1e9) }

// Sec is the method form of NanosToSec.
func (n Nanos) Sec() Seconds { return NanosToSec(n) }

// Nanos is the method form of SecToNanos.
func (s Seconds) Nanos() Nanos { return SecToNanos(s) }

// Micros returns the duration in microseconds as a plain float64, for
// display (Table 6 prints per-message times in µs).
func (s Seconds) Micros() float64 { return float64(s) * 1e6 }

// MicrosToSec rescales a microsecond count to seconds.
func MicrosToSec(us float64) Seconds { return Seconds(us * 1e-6) }

// Times scales the duration by a dimensionless count (e.g. instructions ×
// seconds-per-instruction).
func (s Seconds) Times(k float64) Seconds { return Seconds(float64(s) * k) }

// Div divides the duration by a dimensionless count.
func (s Seconds) Div(k float64) Seconds {
	//palint:ignore floatdiv -- pure unit arithmetic; callers guard the count (loads, reps) before dividing
	return Seconds(float64(s) / k)
}

// Times scales the nanosecond duration by a dimensionless count.
func (n Nanos) Times(k float64) Nanos { return Nanos(float64(n) * k) }

// Div divides the nanosecond duration by a dimensionless count.
func (n Nanos) Div(k float64) Nanos {
	//palint:ignore floatdiv -- pure unit arithmetic; callers guard the count before dividing
	return Nanos(float64(n) / k)
}

// Times scales the cycle count by a dimensionless count (instructions ×
// cycles-per-instruction).
func (c Cycles) Times(k float64) Cycles { return Cycles(float64(c) * k) }

// Div divides the cycle count by a dimensionless count.
func (c Cycles) Div(k float64) Cycles {
	//palint:ignore floatdiv -- pure unit arithmetic; callers guard the count (ON-chip instruction total) before dividing
	return Cycles(float64(c) / k)
}

// At returns the wall-clock time to execute c cycles at frequency f
// (cycles / Hz → s) — the CPI/f quantity Table 6 tabulates.
func (c Cycles) At(f Hertz) Seconds {
	//palint:ignore floatdiv -- pure unit arithmetic; Config/Profile.Validate reject non-positive frequencies before the hot path
	return Seconds(float64(c) / float64(f))
}

// Times scales the power by a dimensionless factor (utilization, node
// count).
func (p Watts) Times(k float64) Watts { return Watts(float64(p) * k) }

// Energy integrates the power over a duration (W · s → J).
func (p Watts) Energy(t Seconds) Joules { return Joules(float64(p) * float64(t)) }

// Times scales the energy by a dimensionless factor (node count).
func (e Joules) Times(k float64) Joules { return Joules(float64(e) * k) }
