// Package commshape seeds collective-divergence violations: collectives and
// phase transitions control-dependent on rank-derived conditions.
package commshape

import mpi "pasp/internal/analysis/testdata/src/mpistub"

// BadCollUnderRankGuard executes a collective only on rank 0 — every other
// rank never arrives.
func BadCollUnderRankGuard(c *mpi.Ctx) error {
	if c.Rank() == 0 {
		return c.Barrier() // want: collective under rank-derived condition
	}
	return nil
}

// BadPhaseUnderRankGuard transitions phase on even ranks only, so the
// per-(rank, phase) attribution diverges.
func BadPhaseUnderRankGuard(c *mpi.Ctx) {
	if c.Rank()%2 == 0 {
		c.SetPhase("even-half") // want: SetPhase under rank-derived condition
	}
}

// BadEarlyReturn diverges via a rank-guarded non-error return: ranks > 0
// skip everything after the branch.
func BadEarlyReturn(c *mpi.Ctx) error {
	if c.Rank() > 0 {
		return nil
	}
	return c.Barrier() // want: collective guarded via early return
}

// BadViaHelper reaches an interprocedural collective under a rank guard.
func BadViaHelper(c *mpi.Ctx) error {
	if c.Rank() < c.Size()/2 {
		return reduceHalf(c) // want: collective Allreduce (via reduceHalf)
	}
	return nil
}

func reduceHalf(c *mpi.Ctx) error {
	_, err := c.Allreduce([]float64{1}, mpi.Sum, 8)
	return err
}

// BadLoopBound runs a collective a rank-dependent number of times.
func BadLoopBound(c *mpi.Ctx) error {
	for i := 0; i < c.Rank(); i++ {
		if err := c.Barrier(); err != nil { // want: collective under rank-derived loop bound
			return err
		}
	}
	return nil
}

// GoodUniformGuard is clean: the guard is rank-uniform (Size is identical
// on every rank).
func GoodUniformGuard(c *mpi.Ctx) error {
	if c.Size() > 1 {
		return c.Barrier()
	}
	return nil
}

// GoodRankGuardedSend is clean: point-to-point calls are naturally
// rank-asymmetric and belong to the deadlock pass.
func GoodRankGuardedSend(c *mpi.Ctx) error {
	if c.Rank() > 0 {
		return c.Send(c.Rank()-1, 1, nil, 8)
	}
	return nil
}

// GoodErrorReturnGuard is clean: the rank-guarded arm only surfaces an
// error, which aborts the whole job anyway.
func GoodErrorReturnGuard(c *mpi.Ctx) error {
	if c.Rank() > 0 {
		if err := c.Send(c.Rank()-1, 2, nil, 8); err != nil {
			return err
		}
	}
	return c.Barrier()
}

// SuppressedRootOnly carries a sanctioned divergence.
func SuppressedRootOnly(c *mpi.Ctx) error {
	if c.Rank() == 0 {
		return c.Barrier() //palint:ignore commshape -- driver-side barrier pairs with the workers' barrier in a separate job step
	}
	return nil
}
