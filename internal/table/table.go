// Package table renders plain-text tables in the style of the paper's
// result tables, so every experiment binary and benchmark prints rows a
// reader can compare against the publication directly.
package table

import (
	"fmt"
	"strings"
)

// T accumulates a header row and data rows and renders them with columns
// padded to equal width. The zero value is unusable; construct with New.
type T struct {
	title  string
	header []string
	rows   [][]string
}

// New returns an empty table with the given title and column headers.
func New(title string, header ...string) *T {
	return &T{title: title, header: header}
}

// AddRow appends a row of pre-formatted cells. Short rows are padded with
// empty cells; long rows extend the column count.
func (t *T) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddFloats appends a row beginning with label followed by each value
// rendered with format (e.g. "%.2f").
func (t *T) AddFloats(label, format string, values ...float64) {
	cells := make([]string, 0, len(values)+1)
	cells = append(cells, label)
	for _, v := range values {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.AddRow(cells...)
}

// AddPercents appends a row beginning with label followed by each fraction
// rendered as a percentage with one decimal, matching the paper's error
// tables.
func (t *T) AddPercents(label string, fracs ...float64) {
	cells := make([]string, 0, len(fracs)+1)
	cells = append(cells, label)
	for _, f := range fracs {
		cells = append(cells, fmt.Sprintf("%.1f%%", f*100))
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows added so far.
func (t *T) NumRows() int { return len(t.rows) }

// String renders the table: title, separator, padded header, separator and
// rows, each column right-aligned except the first.
func (t *T) String() string {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", width[i], cell)
			} else {
				fmt.Fprintf(&b, "  %*s", width[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := 0
		for _, w := range width {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
