package core

import (
	"fmt"
	"math"
)

// Objective selects what a sweet-spot search optimizes.
type Objective int

const (
	// MaxSpeedup maximizes power-aware speedup (minimizes time).
	MaxSpeedup Objective = iota
	// MinEnergy minimizes cluster energy.
	MinEnergy
	// MinEDP minimizes the energy-delay product.
	MinEDP
	// MinED2P minimizes the energy-delay-squared product.
	MinED2P
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case MaxSpeedup:
		return "max-speedup"
	case MinEnergy:
		return "min-energy"
	case MinEDP:
		return "min-EDP"
	case MinED2P:
		return "min-ED2P"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Candidate is one configuration with its figures of merit.
type Candidate struct {
	Config
	// Seconds, Joules are the configuration's measured (or predicted) cost.
	Seconds, Joules float64
	// Speedup is relative to 1 processor at the base frequency.
	Speedup float64
	// AvgWatts is the mean cluster power.
	AvgWatts float64
}

// EDP returns the candidate's energy-delay product.
func (c Candidate) EDP() float64 { return c.Joules * c.Seconds }

// ED2P returns the candidate's energy-delay-squared product.
func (c Candidate) ED2P() float64 { return c.Joules * c.Seconds * c.Seconds }

// Candidates lists every configuration of the campaign that has both a time
// and an energy measurement, with derived figures of merit.
func Candidates(m *Measurements) ([]Candidate, error) {
	var out []Candidate
	for _, n := range m.Ns() {
		for _, mhz := range m.Freqs() {
			t, err := m.Time(n, mhz)
			if err == nil && t <= 0 {
				return nil, fmt.Errorf("core: non-positive measured time for %v", Config{n, mhz})
			}
			if err != nil {
				continue
			}
			e, err := m.Energy(n, mhz)
			if err != nil {
				continue
			}
			s, err := m.Speedup(n, mhz)
			if err != nil {
				return nil, err
			}
			out = append(out, Candidate{
				Config:   Config{n, mhz},
				Seconds:  t,
				Joules:   e,
				Speedup:  s,
				AvgWatts: e / t,
			})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no configurations with both time and energy")
	}
	return out, nil
}

// SweetSpot returns the configuration optimizing the objective, optionally
// subject to a cluster power cap in watts (0 means uncapped). This is the
// paper's motivating use of an accurate power-aware model: identifying the
// "sweet spot" system configurations optimized for performance and power.
func SweetSpot(m *Measurements, obj Objective, powerCapWatts float64) (Candidate, error) {
	cands, err := Candidates(m)
	if err != nil {
		return Candidate{}, err
	}
	best := Candidate{}
	bestScore := math.Inf(1)
	found := false
	for _, c := range cands {
		if powerCapWatts > 0 && c.AvgWatts > powerCapWatts {
			continue
		}
		var score float64
		switch obj {
		case MaxSpeedup:
			score = -c.Speedup
		case MinEnergy:
			score = c.Joules
		case MinEDP:
			score = c.EDP()
		case MinED2P:
			score = c.ED2P()
		default:
			return Candidate{}, fmt.Errorf("core: unknown objective %d", obj)
		}
		if score < bestScore {
			bestScore, best, found = score, c, true
		}
	}
	if !found {
		return Candidate{}, fmt.Errorf("core: no configuration satisfies the %g W power cap", powerCapWatts)
	}
	return best, nil
}
