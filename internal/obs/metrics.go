package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a named collection of counters, gauges and fixed-bucket
// histograms. Instruments are created on first use and live for the
// registry's lifetime; Snapshot renders them as a deterministic, sorted
// exposition so two identical runs produce byte-identical metric dumps.
//
// Each mpi run's Recorder owns a private registry (so concurrent runs and
// tests never share counts); process-wide instrumentation — the campaign
// store's hit/miss counters — lives on the Default registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// defaultRegistry holds the process-wide instruments (campaign-store hits
// and misses, campaigns measured). Run-scoped metrics live on each
// Recorder's own registry instead.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter is a monotone accumulator. The value is a float64 so the same
// instrument type serves event counts and accumulated virtual seconds; Add
// is a lock-free CAS loop, safe from any goroutine.
type Counter struct{ bits atomic.Uint64 }

// Add increases the counter by v (v ≥ 0 by convention; Add does not check).
//
//palint:hotpath
func (c *Counter) Add(v float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a last-value-wins instrument.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
//
//palint:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Add shifts the gauge by v (negative to decrease) in one lock-free CAS
// loop — the up/down instrument for in-flight request tracking, where Set
// from concurrent goroutines would lose updates.
//
//palint:hotpath
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets: bucket i counts values
// v ≤ Bounds[i] (cumulative-free, one bucket per observation), with one
// implicit overflow bucket for v > Bounds[len-1]. Observation is lock-free.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	sumBits atomic.Uint64
	n       atomic.Int64
}

// Observe records one observation of v.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n observations of v in one update (the mpi layer uses it
// for a collective's n−1 equal-size messages).
//
//palint:hotpath
func (h *Histogram) ObserveN(v float64, n int64) {
	if n <= 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(n)
	h.n.Add(n)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Quantile returns an upper bound on the q-quantile of the observations:
// the upper bound of the first bucket at which the cumulative count
// reaches q·n. Observations in the overflow bucket report +Inf. ok is
// false when the histogram is empty — the caller's signal to fall back to
// a configured default (the adaptive Retry-After path).
func (h *Histogram) Quantile(q float64) (v float64, ok bool) {
	n := h.n.Load()
	if n <= 0 {
		return 0, false
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i], true
			}
			return math.Inf(1), true
		}
	}
	return math.Inf(1), true
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket upper bounds on first use. Later calls for the same name
// return the existing instrument regardless of the bounds argument, so
// every caller of one name must pass the same bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// MsgBytesBuckets is the standard bucket layout for message-size
// histograms: powers of four from 64 B to 1 MiB.
var MsgBytesBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// SecondsBuckets is the standard bucket layout for virtual-time
// histograms: decades from 1 µs to 10 ks.
var SecondsBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100, 1e3, 1e4}

// CounterPoint is one counter in a snapshot.
type CounterPoint struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// GaugePoint is one gauge in a snapshot.
type GaugePoint struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramPoint is one histogram in a snapshot. Counts[i] holds the
// observations with value ≤ Bounds[i]; the final element of Counts is the
// overflow bucket.
type HistogramPoint struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of a registry, sorted by instrument name
// within each section, so its renderings are deterministic.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters"`
	Gauges     []GaugePoint     `json:"gauges"`
	Histograms []HistogramPoint `json:"histograms"`
}

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterPoint{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugePoint{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		p := HistogramPoint{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.n.Load(),
			Sum:    math.Float64frombits(h.sumBits.Load()),
		}
		for i := range h.counts {
			p.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, p)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Counter returns the snapshotted value of the named counter, or 0 when the
// snapshot has no such counter.
func (s Snapshot) Counter(name string) float64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Delta returns the change from prev to s: counters and histogram counts
// subtract (an instrument absent from prev counts from zero); gauges keep
// their current value. Instruments absent from s are dropped — a delta
// describes what s knows about.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	var d Snapshot
	for _, c := range s.Counters {
		d.Counters = append(d.Counters, CounterPoint{Name: c.Name, Value: c.Value - prev.Counter(c.Name)})
	}
	d.Gauges = append(d.Gauges, s.Gauges...)
	prevHists := map[string]HistogramPoint{}
	for _, h := range prev.Histograms {
		prevHists[h.Name] = h
	}
	for _, h := range s.Histograms {
		dh := HistogramPoint{
			Name:   h.Name,
			Bounds: append([]float64(nil), h.Bounds...),
			Counts: append([]int64(nil), h.Counts...),
			Count:  h.Count,
			Sum:    h.Sum,
		}
		if p, ok := prevHists[h.Name]; ok && len(p.Counts) == len(dh.Counts) {
			for i := range dh.Counts {
				dh.Counts[i] -= p.Counts[i]
			}
			dh.Count -= p.Count
			dh.Sum -= p.Sum
		}
		d.Histograms = append(d.Histograms, dh)
	}
	return d
}

// fmtFloat renders a metric value with the shortest exact representation,
// so snapshots round-trip and stay byte-stable.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Text renders the snapshot as a plain exposition, one instrument per line,
// sorted by section (counter, gauge, histogram) and name.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "counter %s %s\n", c.Name, fmtFloat(c.Value))
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "gauge %s %s\n", g.Name, fmtFloat(g.Value))
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "histogram %s", h.Name)
		for i, bound := range h.Bounds {
			fmt.Fprintf(&b, " le=%s:%d", fmtFloat(bound), h.Counts[i])
		}
		fmt.Fprintf(&b, " le=+Inf:%d count=%d sum=%s\n", h.Counts[len(h.Counts)-1], h.Count, fmtFloat(h.Sum))
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON. Sections are sorted slices,
// so the bytes are deterministic.
func (s Snapshot) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("obs: marshal snapshot: %w", err)
	}
	return append(data, '\n'), nil
}
