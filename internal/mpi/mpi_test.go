package mpi

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"pasp/internal/machine"
	"pasp/internal/papi"
	"pasp/internal/power"
	"pasp/internal/simnet"
	"pasp/internal/stats"
	"pasp/internal/units"
)

func testWorld(n int, mhz float64) World {
	prof := power.PentiumM()
	st, err := prof.StateAt(units.MHz(mhz))
	if err != nil {
		panic(err)
	}
	return World{
		N:     n,
		Net:   simnet.FastEthernet(),
		Mach:  machine.PentiumM(),
		Prof:  prof,
		State: st,
	}
}

func TestRunValidates(t *testing.T) {
	w := testWorld(2, 600)
	w.N = 0
	if _, err := Run(w, func(c *Ctx) error { return nil }); err == nil {
		t.Error("Run with N=0 succeeded, want error")
	}
}

func TestSingleRankCompute(t *testing.T) {
	w := testWorld(1, 600)
	work := machine.W(6e8, 0, 0, 0) // 6e8 reg instructions at 1 cycle = 1 s at 600 MHz
	res, err := Run(w, func(c *Ctx) error { return c.Compute(work) })
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(res.Seconds, 1.0, 1e-9) {
		t.Errorf("Seconds = %g, want 1.0", res.Seconds)
	}
	if got := res.Counters.Get(0); got != 6e8 { // TOT_INS
		t.Errorf("TOT_INS = %g, want 6e8", got)
	}
	wantJ := float64(w.Prof.NodePower(w.State, 1)) * 1.0
	if !stats.AlmostEqual(res.Joules, wantJ, 1e-9) {
		t.Errorf("Joules = %g, want %g", res.Joules, wantJ)
	}
	if res.EDP() <= 0 || res.AvgWatts() <= 0 {
		t.Error("derived metrics should be positive")
	}
}

func TestComputeFrequencyScaling(t *testing.T) {
	work := machine.W(1e9, 1e9, 0, 0)
	run := func(mhz float64) float64 {
		res, err := Run(testWorld(1, mhz), func(c *Ctx) error { return c.Compute(work) })
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	slow, fast := run(600), run(1400)
	if !stats.AlmostEqual(slow/fast, 1400.0/600.0, 1e-9) {
		t.Errorf("pure ON-chip scaling = %g, want %g", slow/fast, 1400.0/600.0)
	}
}

func TestComputeRejectsNegativeWork(t *testing.T) {
	_, err := Run(testWorld(1, 600), func(c *Ctx) error {
		return c.Compute(machine.W(-1, 0, 0, 0))
	})
	if err == nil {
		t.Error("negative work accepted")
	}
}

func TestSendRecvDelivery(t *testing.T) {
	w := testWorld(2, 600)
	var got []float64
	var recvClock float64
	_, err := Run(w, func(c *Ctx) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []float64{1, 2, 3}, 0)
		}
		v, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		got = v
		recvClock = c.Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Errorf("payload = %v", got)
	}
	// Receiver's clock must include at least latency + wire + overheads.
	min := w.Net.LatencySec + w.Net.WireTime(24)
	if recvClock < min {
		t.Errorf("recv completed at %g, want ≥ %g", recvClock, min)
	}
}

func TestPerPairFIFO(t *testing.T) {
	_, err := Run(testWorld(2, 600), func(c *Ctx) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []float64{10}, 0); err != nil {
				return err
			}
			return c.Send(1, 2, []float64{20}, 0)
		}
		a, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		b, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		if a[0] != 10 || b[0] != 20 {
			return fmt.Errorf("order violated: %v %v", a, b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMismatchAborts(t *testing.T) {
	_, err := Run(testWorld(2, 600), func(c *Ctx) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, nil, 100)
		}
		_, err := c.Recv(0, 2)
		return err
	})
	if err == nil {
		t.Fatal("tag mismatch not reported")
	}
}

func TestSelfAndRangeChecks(t *testing.T) {
	_, err := Run(testWorld(2, 600), func(c *Ctx) error {
		if c.Rank() == 0 {
			if err := c.Send(0, 0, nil, 8); err == nil {
				return errors.New("self-send accepted")
			}
			if err := c.Send(5, 0, nil, 8); err == nil {
				return errors.New("out-of-range send accepted")
			}
			if _, err := c.Recv(-1, 0); err == nil {
				return errors.New("out-of-range recv accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualBytesSlowDownTransfer(t *testing.T) {
	run := func(vbytes int) float64 {
		res, err := Run(testWorld(2, 600), func(c *Ctx) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, []float64{1}, vbytes)
			}
			_, err := c.Recv(0, 0)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	small, large := run(8), run(32<<10)
	if large <= small {
		t.Errorf("32KB virtual message (%g s) not slower than 8B (%g s)", large, small)
	}
}

func TestRendezvousBlocksSender(t *testing.T) {
	w := testWorld(2, 600)
	big := w.Net.EagerBytes * 2
	var senderDone float64
	res, err := Run(w, func(c *Ctx) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 0, []float64{42}, big); err != nil {
				return err
			}
			senderDone = c.Now()
			return nil
		}
		// Receiver computes first, so the sender must wait.
		if err := c.Compute(machine.W(6e8, 0, 0, 0)); err != nil { // 1 s
			return err
		}
		v, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if v[0] != 42 {
			return fmt.Errorf("payload %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if senderDone < 1.0 {
		t.Errorf("rendezvous sender finished at %g s, want ≥ 1 s (blocked on receiver)", senderDone)
	}
	if res.Seconds < senderDone {
		t.Error("makespan below sender completion")
	}
}

func TestSendRecvExchangeSymmetric(t *testing.T) {
	clocks := make([]float64, 2)
	_, err := Run(testWorld(2, 600), func(c *Ctx) error {
		peer := 1 - c.Rank()
		got, err := c.SendRecv(peer, peer, 9, []float64{float64(c.Rank())}, 0)
		if err != nil {
			return err
		}
		if got[0] != float64(peer) {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		clocks[c.Rank()] = c.Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(clocks[0], clocks[1], 1e-9) {
		t.Errorf("exchange clocks diverge: %g vs %g", clocks[0], clocks[1])
	}
}

func TestBarrierEqualizesClocks(t *testing.T) {
	n := 4
	clocks := make([]float64, n)
	_, err := Run(testWorld(n, 600), func(c *Ctx) error {
		// Stagger ranks by different compute amounts.
		if err := c.Compute(machine.W(float64(c.Rank())*1e8, 0, 0, 0)); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		clocks[c.Rank()] = c.Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < n; r++ {
		if !stats.AlmostEqual(clocks[r], clocks[0], 1e-9) {
			t.Errorf("rank %d clock %g ≠ rank 0 clock %g after barrier", r, clocks[r], clocks[0])
		}
	}
	// The barrier completes after the slowest rank's compute.
	slowest := float64(machine.PentiumM().TimeFor(machine.W(3e8, 0, 0, 0), 600e6))
	if clocks[0] < slowest {
		t.Errorf("barrier exit %g before slowest rank %g", clocks[0], slowest)
	}
}

func TestAllreduceSum(t *testing.T) {
	n := 4
	_, err := Run(testWorld(n, 600), func(c *Ctx) error {
		in := []float64{float64(c.Rank()), 1}
		out, err := c.Allreduce(in, Sum, 0)
		if err != nil {
			return err
		}
		if out[0] != 6 || out[1] != 4 { // 0+1+2+3, 1×4
			return fmt.Errorf("allreduce = %v", out)
		}
		// Input must not be clobbered.
		if in[0] != float64(c.Rank()) {
			return errors.New("allreduce mutated input")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMax(t *testing.T) {
	_, err := Run(testWorld(3, 600), func(c *Ctx) error {
		out, err := c.Allreduce([]float64{float64(c.Rank() * c.Rank())}, Max, 0)
		if err != nil {
			return err
		}
		if out[0] != 4 {
			return fmt.Errorf("max = %v, want 4", out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceRootOnly(t *testing.T) {
	_, err := Run(testWorld(4, 600), func(c *Ctx) error {
		out, err := c.Reduce(2, []float64{1}, Sum, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			if out == nil || out[0] != 4 {
				return fmt.Errorf("root got %v", out)
			}
		} else if out != nil {
			return fmt.Errorf("non-root got %v", out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	_, err := Run(testWorld(4, 600), func(c *Ctx) error {
		var mine []float64
		if c.Rank() == 1 {
			mine = []float64{3.14, 2.72}
		}
		got, err := c.Bcast(1, mine, 16)
		if err != nil {
			return err
		}
		if len(got) != 2 || got[0] != 3.14 {
			return fmt.Errorf("bcast got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	n := 4
	_, err := Run(testWorld(n, 600), func(c *Ctx) error {
		parts := make([][]float64, n)
		for d := range parts {
			parts[d] = []float64{float64(10*c.Rank() + d)}
		}
		got, err := c.Alltoall(parts, 0)
		if err != nil {
			return err
		}
		for s := range got {
			want := float64(10*s + c.Rank())
			if got[s][0] != want {
				return fmt.Errorf("rank %d from %d: got %v, want %g", c.Rank(), s, got[s], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallPartCountChecked(t *testing.T) {
	_, err := Run(testWorld(2, 600), func(c *Ctx) error {
		_, err := c.Alltoall([][]float64{{1}}, 0)
		return err
	})
	if err == nil {
		t.Error("short parts slice accepted")
	}
}

func TestAllgather(t *testing.T) {
	n := 3
	_, err := Run(testWorld(n, 600), func(c *Ctx) error {
		got, err := c.Allgather([]float64{float64(c.Rank())}, 0)
		if err != nil {
			return err
		}
		for s := range got {
			if got[s][0] != float64(s) {
				return fmt.Errorf("slot %d = %v", s, got[s])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankCollectives(t *testing.T) {
	_, err := Run(testWorld(1, 600), func(c *Ctx) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		if out, err := c.Allreduce([]float64{5}, Sum, 0); err != nil || out[0] != 5 {
			return fmt.Errorf("allreduce: %v %v", out, err)
		}
		if out, err := c.Alltoall([][]float64{{7}}, 0); err != nil || out[0][0] != 7 {
			return fmt.Errorf("alltoall: %v %v", out, err)
		}
		if out, err := c.Bcast(0, []float64{9}, 0); err != nil || out[0] != 9 {
			return fmt.Errorf("bcast: %v %v", out, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankErrorAbortsJob(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(testWorld(2, 600), func(c *Ctx) error {
		if c.Rank() == 0 {
			return boom
		}
		// Rank 1 would block forever waiting for rank 0 without the abort.
		_, err := c.Recv(0, 0)
		return err
	})
	if err == nil {
		t.Fatal("job error lost")
	}
	if !errors.Is(err, boom) && !errors.Is(err, ErrAborted) {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	prog := func(c *Ctx) error {
		if err := c.Compute(machine.W(1e7*float64(1+c.Rank()), 1e6, 0, 1e4)); err != nil {
			return err
		}
		if _, err := c.Allreduce([]float64{float64(c.Rank())}, Sum, 4096); err != nil {
			return err
		}
		parts := make([][]float64, c.Size())
		for d := range parts {
			parts[d] = []float64{1}
		}
		if _, err := c.Alltoall(parts, 2048); err != nil {
			return err
		}
		return c.Barrier()
	}
	var firstSec, firstJ float64
	for i := 0; i < 5; i++ {
		res, err := Run(testWorld(8, 1000), prog)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			firstSec, firstJ = res.Seconds, res.Joules
			continue
		}
		if res.Seconds != firstSec || res.Joules != firstJ {
			t.Fatalf("run %d diverged: %g/%g vs %g/%g", i, res.Seconds, res.Joules, firstSec, firstJ)
		}
	}
}

func TestAlltoallContentionSlowsLargeClusters(t *testing.T) {
	// With the flow-concurrency limit, a 16-rank alltoall of the same total
	// volume is slower than the ideal-switch prediction.
	run := func(flowLimit int) float64 {
		w := testWorld(16, 600)
		w.Net.FlowConcurrency = flowLimit
		res, err := Run(w, func(c *Ctx) error {
			parts := make([][]float64, c.Size())
			for d := range parts {
				parts[d] = []float64{0}
			}
			_, err := c.Alltoall(parts, 64<<10)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	limited, ideal := run(6), run(0)
	if limited <= ideal*1.5 {
		t.Errorf("contention-limited alltoall %g s not markedly slower than ideal %g s", limited, ideal)
	}
}

func TestTraceValid(t *testing.T) {
	res, err := Run(testWorld(4, 600), func(c *Ctx) error {
		c.SetPhase("work")
		if err := c.Compute(machine.W(1e6, 0, 0, 0)); err != nil {
			return err
		}
		c.SetPhase("sync")
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
	by := res.Trace.ByPhase()
	if by["work"] <= 0 || by["sync"] <= 0 {
		t.Errorf("phases not traced: %v", by)
	}
	if res.ComputeSec() <= 0 || res.CommSec() <= 0 {
		t.Error("compute/comm attribution missing")
	}
}

func TestPollUtilAffectsEnergy(t *testing.T) {
	prog := func(c *Ctx) error {
		if c.Rank() == 0 {
			if err := c.Compute(machine.W(6e8, 0, 0, 0)); err != nil {
				return err
			}
			return c.Send(1, 0, []float64{1}, 0)
		}
		_, err := c.Recv(0, 0) // waits ~1 s
		return err
	}
	run := func(util float64) float64 {
		w := testWorld(2, 600)
		w.PollUtil = util
		res, err := Run(w, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res.Joules
	}
	busy, gentle := run(1.0), run(0.1)
	if busy <= gentle {
		t.Errorf("busy-poll energy %g J not above low-util %g J", busy, gentle)
	}
}

func TestEnergyAccountsIdleTail(t *testing.T) {
	// Rank 1 computes 1 s, rank 0 finishes immediately; the cluster energy
	// must cover rank 0 idling for the full makespan.
	w := testWorld(2, 600)
	res, err := Run(w, func(c *Ctx) error {
		if c.Rank() == 1 {
			return c.Compute(machine.W(6e8, 0, 0, 0))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	idleFloor := float64(w.Prof.NodePower(w.State, 0)) * res.Seconds
	busyPart := float64(w.Prof.NodePower(w.State, 1)) * res.Seconds
	if res.Joules < idleFloor+busyPart-1e-9 {
		t.Errorf("Joules = %g, want ≥ idle(%g) + busy(%g)", res.Joules, idleFloor, busyPart)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestReduceAllLengthMismatch(t *testing.T) {
	_, err := Run(testWorld(2, 600), func(c *Ctx) error {
		data := make([]float64, 1+c.Rank())
		_, err := c.Allreduce(data, Sum, 0)
		return err
	})
	if err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMakespanIsMaxClock(t *testing.T) {
	res, err := Run(testWorld(3, 600), func(c *Ctx) error {
		return c.Compute(machine.W(float64(c.Rank())*6e8, 0, 0, 0))
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, s := range res.PerRank {
		want = math.Max(want, s.Seconds)
	}
	if res.Seconds != want {
		t.Errorf("Seconds = %g, want max rank clock %g", res.Seconds, want)
	}
}

// MPI semantics: the send buffer belongs to the caller again once Send
// returns. A sender that immediately overwrites its buffer must not corrupt
// the message in flight (regression test for the by-reference enqueue bug
// that broke MG's ghost exchanges).
func TestSendBufferReuseSafe(t *testing.T) {
	_, err := Run(testWorld(2, 600), func(c *Ctx) error {
		if c.Rank() == 0 {
			buf := []float64{42}
			if err := c.Send(1, 0, buf, 0); err != nil {
				return err
			}
			buf[0] = -1 // reuse immediately
			return c.Send(1, 1, buf, 0)
		}
		a, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if a[0] != 42 {
			return fmt.Errorf("first message corrupted by buffer reuse: %v", a)
		}
		b, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if b[0] != -1 {
			return fmt.Errorf("second message wrong: %v", b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The same holds for collective results: a rank mutating its contribution
// after the call must not alter what peers received.
func TestCollectiveBufferIsolation(t *testing.T) {
	_, err := Run(testWorld(2, 600), func(c *Ctx) error {
		mine := []float64{float64(c.Rank() + 1)}
		got, err := c.Allgather(mine, 0)
		if err != nil {
			return err
		}
		mine[0] = -99
		if err := c.Barrier(); err != nil {
			return err
		}
		for s := range got {
			if got[s][0] != float64(s+1) {
				return fmt.Errorf("allgather slot %d mutated: %v", s, got[s])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Per-phase DVFS at the runtime level: the OnPhase hook switches the gear,
// compute billed after the switch runs at the new frequency, and the
// gear-switch stall is charged.
func TestOnPhaseHookSwitchesGear(t *testing.T) {
	w := testWorld(1, 1400)
	prof := w.Prof
	w.GearSwitchSec = 100e-6
	w.OnPhase = func(c *Ctx, phase string) {
		if phase == "slow" {
			c.SetPState(prof.BaseState())
		} else {
			c.SetPState(prof.TopState())
		}
	}
	work := machine.W(1.4e9, 0, 0, 0) // 1 s at 1400 MHz, 2.33 s at 600 MHz
	res, err := Run(w, func(c *Ctx) error {
		if c.Freq() != 1400e6 {
			return fmt.Errorf("initial gear %g", c.Freq())
		}
		if err := c.Compute(work); err != nil {
			return err
		}
		c.SetPhase("slow")
		if c.Freq() != 600e6 {
			return fmt.Errorf("gear after hook %g", c.Freq())
		}
		return c.Compute(work)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + 100e-6 + 1.4e9/600e6
	if !stats.AlmostEqual(res.Seconds, want, 1e-9) {
		t.Errorf("Seconds = %g, want %g", res.Seconds, want)
	}
}

func TestSetPStateNoopWithoutChange(t *testing.T) {
	w := testWorld(1, 600)
	w.GearSwitchSec = 1 // would be visible
	res, err := Run(w, func(c *Ctx) error {
		c.SetPState(c.State()) // same gear: free
		return c.Compute(machine.W(6e8, 0, 0, 0))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(res.Seconds, 1.0, 1e-9) {
		t.Errorf("no-op switch charged time: %g", res.Seconds)
	}
}

func TestWorldValidateRejectsNegativeSwitch(t *testing.T) {
	w := testWorld(1, 600)
	w.GearSwitchSec = -1
	if _, err := Run(w, func(c *Ctx) error { return nil }); err == nil {
		t.Error("negative gear-switch time accepted")
	}
}

// Alltoall with skewed parts must be timed by the largest block.
func TestAlltoallSkewTimedByMaxPart(t *testing.T) {
	run := func(skew bool) float64 {
		res, err := Run(testWorld(4, 600), func(c *Ctx) error {
			parts := make([][]float64, 4)
			for d := range parts {
				n := 8
				if skew && d == (c.Rank()+1)%4 {
					n = 4096
				}
				parts[d] = make([]float64, n)
			}
			_, err := c.Alltoall(parts, 0)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	if uniform, skewed := run(false), run(true); skewed <= uniform {
		t.Errorf("skewed alltoall (%g s) not slower than uniform (%g s)", skewed, uniform)
	}
}

func TestGather(t *testing.T) {
	_, err := Run(testWorld(4, 600), func(c *Ctx) error {
		out, err := c.Gather(2, []float64{float64(c.Rank() * 11)}, 0)
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if out != nil {
				return fmt.Errorf("non-root got %v", out)
			}
			return nil
		}
		for s := range out {
			if out[s][0] != float64(s*11) {
				return fmt.Errorf("slot %d = %v", s, out[s])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(testWorld(2, 600), func(c *Ctx) error {
		_, err := c.Gather(9, nil, 8)
		return err
	})
	if err == nil {
		t.Error("out-of-range root accepted")
	}
}

func TestScatter(t *testing.T) {
	_, err := Run(testWorld(4, 600), func(c *Ctx) error {
		var parts [][]float64
		if c.Rank() == 1 {
			parts = [][]float64{{10}, {11}, {12}, {13}}
		}
		got, err := c.Scatter(1, parts, 0)
		if err != nil {
			return err
		}
		if got[0] != float64(10+c.Rank()) {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(testWorld(2, 600), func(c *Ctx) error {
		var parts [][]float64
		if c.Rank() == 0 {
			parts = [][]float64{{1}} // wrong count
		}
		_, err := c.Scatter(0, parts, 0)
		return err
	})
	if err == nil {
		t.Error("short parts accepted")
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	// Scatter then gather returns the original data at the root.
	_, err := Run(testWorld(4, 800), func(c *Ctx) error {
		var parts [][]float64
		if c.Rank() == 0 {
			parts = [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
		}
		mine, err := c.Scatter(0, parts, 0)
		if err != nil {
			return err
		}
		back, err := c.Gather(0, mine, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for s := range back {
				if back[s][0] != float64(2*s+1) || back[s][1] != float64(2*s+2) {
					return fmt.Errorf("slot %d = %v", s, back[s])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatterSingleRank(t *testing.T) {
	_, err := Run(testWorld(1, 600), func(c *Ctx) error {
		out, err := c.Gather(0, []float64{5}, 0)
		if err != nil || out[0][0] != 5 {
			return fmt.Errorf("gather: %v %v", out, err)
		}
		got, err := c.Scatter(0, [][]float64{{7}}, 0)
		if err != nil || got[0] != 7 {
			return fmt.Errorf("scatter: %v %v", got, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: for any sequence of compute workloads, the cluster energy is
// bounded by the idle floor and busy ceiling over the makespan, and the
// makespan equals the slowest rank.
func TestEnergyBoundsProperty(t *testing.T) {
	w := testWorld(3, 1000)
	f := func(loads [3]uint32) bool {
		res, err := Run(w, func(c *Ctx) error {
			ops := float64(loads[c.Rank()]%1000000) + 1
			return c.Compute(machine.W(ops, ops/2, 0, ops/100))
		})
		if err != nil {
			return false
		}
		floor := 3 * float64(w.Prof.NodePower(w.State, 0)) * res.Seconds
		ceil := 3 * float64(w.Prof.NodePower(w.State, 1)) * res.Seconds
		return res.Joules >= floor-1e-9 && res.Joules <= ceil+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: aggregated PAPI counters equal the sum of the submitted mixes,
// regardless of how work is split across ranks and calls.
func TestCounterConservationProperty(t *testing.T) {
	w := testWorld(2, 600)
	f := func(chunks [4]uint16) bool {
		var want float64
		for _, c := range chunks {
			want += float64(c)
		}
		res, err := Run(w, func(c *Ctx) error {
			for i, ops := range chunks {
				if i%2 != c.Rank() {
					continue
				}
				if err := c.Compute(machine.W(float64(ops), 0, 0, 0)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return false
		}
		return res.Counters.Get(papi.TotIns) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
