package simnet

import (
	"testing"
	"testing/quick"

	"pasp/internal/stats"
)

func TestFastEthernetValid(t *testing.T) {
	if err := FastEthernet().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Config){
		"negative latency":   func(c *Config) { c.LatencySec = -1 },
		"zero bandwidth":     func(c *Config) { c.BandwidthBps = 0 },
		"negative msg cpu":   func(c *Config) { c.MsgCPUIns = -1 },
		"negative byte cpu":  func(c *Config) { c.ByteCPUIns = -1 },
		"negative flows":     func(c *Config) { c.FlowConcurrency = -1 },
		"negative threshold": func(c *Config) { c.EagerBytes = -1 },
	}
	for name, mutate := range cases {
		c := FastEthernet()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", name)
		}
	}
}

// The Table 6 shape: small messages are latency-bound so their time barely
// changes with frequency; multi-KB messages pick up measurable CPU time at
// the lowest gear.
func TestFrequencySensitivityShape(t *testing.T) {
	c := FastEthernet()
	small := 155 * 8 // 155 doubles
	large := 310 * 8 // 310 doubles

	smallSlow := c.PointToPoint(small, 600e6, 600e6)
	smallFast := c.PointToPoint(small, 1400e6, 1400e6)
	largeSlow := c.PointToPoint(large, 600e6, 600e6)
	largeFast := c.PointToPoint(large, 1400e6, 1400e6)

	// The absolute penalty of running the endpoints at the lowest gear grows
	// with message size (per-byte CPU work), which is what erodes the SP
	// parameterization's Assumption 2.
	dSmall := smallSlow - smallFast
	dLarge := largeSlow - largeFast
	if dLarge <= dSmall {
		t.Errorf("frequency penalty should grow with size: small %.1fµs vs large %.1fµs", dSmall*1e6, dLarge*1e6)
	}
	// Relative sensitivity stays modest: communication is latency/wire
	// bound, so Assumption 2 is approximately — not exactly — true.
	relSmall := dSmall / smallFast
	relLarge := dLarge / largeFast
	if relSmall > 0.35 || relLarge > 0.35 {
		t.Errorf("frequency sensitivity too high (small %.3f, large %.3f); comm should be wire-bound", relSmall, relLarge)
	}
	if relLarge < 0.02 {
		t.Errorf("large-message frequency sensitivity %.3f too low; Table 6 shows a visible 600 MHz penalty", relLarge)
	}
}

func TestCPUOverheadScalesInverselyWithFrequency(t *testing.T) {
	c := FastEthernet()
	o600 := c.CPUOverhead(1000, 600e6)
	o1200 := c.CPUOverhead(1000, 1200e6)
	if !stats.AlmostEqual(o600, 2*o1200, 1e-12) {
		t.Errorf("overhead should scale as 1/f: %g vs %g", o600, o1200)
	}
}

func TestEffectiveBandwidth(t *testing.T) {
	c := FastEthernet()
	if got := c.EffectiveBandwidth(1); got != c.BandwidthBps {
		t.Errorf("single flow = %g, want full %g", got, c.BandwidthBps)
	}
	if got := c.EffectiveBandwidth(c.FlowConcurrency); got != c.BandwidthBps {
		t.Errorf("C flows = %g, want full %g", got, c.BandwidthBps)
	}
	if got := c.EffectiveBandwidth(2 * c.FlowConcurrency); !stats.AlmostEqual(got, c.BandwidthBps/2, 1e-12) {
		t.Errorf("2C flows = %g, want half %g", got, c.BandwidthBps/2)
	}
	unlimited := c
	unlimited.FlowConcurrency = 0
	if got := unlimited.EffectiveBandwidth(100); got != c.BandwidthBps {
		t.Errorf("unlimited fabric degraded: %g", got)
	}
}

func TestWireTime(t *testing.T) {
	c := Config{BandwidthBps: 1e6, LatencySec: 0}
	if got := c.WireTime(1e6); got != 1 {
		t.Errorf("WireTime = %g, want 1", got)
	}
	if got := c.ContendedWireTime(1e6, 1); got != 1 {
		t.Errorf("uncontended ContendedWireTime = %g, want 1", got)
	}
}

func TestRendezvousThreshold(t *testing.T) {
	c := FastEthernet()
	if c.Rendezvous(c.EagerBytes) {
		t.Error("message at threshold should be eager")
	}
	if !c.Rendezvous(c.EagerBytes + 1) {
		t.Error("message above threshold should rendezvous")
	}
	c.EagerBytes = 0
	if c.Rendezvous(1 << 30) {
		t.Error("zero threshold disables rendezvous")
	}
}

// Property: point-to-point time is monotone in message size and never below
// the wire latency.
func TestP2PMonotoneProperty(t *testing.T) {
	c := FastEthernet()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		tx := c.PointToPoint(x, 600e6, 600e6)
		ty := c.PointToPoint(y, 600e6, 600e6)
		return tx <= ty+1e-15 && tx >= c.LatencySec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: effective bandwidth is non-increasing in flow count.
func TestEffBWMonotoneProperty(t *testing.T) {
	c := FastEthernet()
	f := func(a, b uint8) bool {
		x, y := int(a)+1, int(b)+1
		if x > y {
			x, y = y, x
		}
		return c.EffectiveBandwidth(x) >= c.EffectiveBandwidth(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
