// Modelfit: the fine-grain parameterization workflow (paper Section 5.2)
// end to end — measure the machine with microbenchmarks, profile the
// application with hardware counters, compose the model, and predict
// configurations that were never run as whole-program measurements.
//
//	go run ./examples/modelfit
package main

import (
	"fmt"
	"log"

	"pasp/internal/cluster"
	"pasp/internal/core"
	"pasp/internal/lmbench"
	"pasp/internal/machine"
	"pasp/internal/mpptest"
	"pasp/internal/npb"
	"pasp/internal/units"
)

func main() {
	platform := cluster.PentiumM()
	lu := npb.LU{N: 32, Iters: 10}
	freqs := []float64{600, 800, 1000, 1200, 1400}

	// Step 1 — workload distribution: one profiled sequential run.
	w1, err := platform.World(1, 600)
	if err != nil {
		log.Fatal(err)
	}
	_, seq, err := lu.Run(w1)
	if err != nil {
		log.Fatal(err)
	}
	work, err := seq.Counters.Decompose()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Step 1 — counter-derived workload decomposition:")
	fr := work.Fractions()
	for l := machine.Reg; l < machine.NumLevels; l++ {
		fmt.Printf("  %-14s %8.2fe9 ins  (%.1f%%)\n", l, work.Ops[l]/1e9, fr[l]*100)
	}

	// Step 2a — memory-level latencies at every gear (LMbench methodology).
	fmt.Println("\nStep 2a — measured ns per instruction (pointer chase):")
	secPerIns := map[float64][machine.NumLevels]units.Seconds{}
	for _, mhz := range freqs {
		ln, err := lmbench.LevelNanos(platform.Mach, units.MHz(mhz))
		if err != nil {
			log.Fatal(err)
		}
		var sec [machine.NumLevels]units.Seconds
		for l := range ln {
			sec[l] = ln[l].Sec()
		}
		secPerIns[mhz] = sec
		fmt.Printf("  %4.0f MHz: reg %.2f  L1 %.2f  L2 %.2f  mem %.2f\n",
			mhz, float64(ln[machine.Reg]), float64(ln[machine.L1]), float64(ln[machine.L2]), float64(ln[machine.Mem]))
	}

	// Step 2b — communication time from the profiled message traffic and an
	// MPPTEST-style ping-pong at the application's message size.
	fmt.Println("\nStep 2b — communication profile and per-message times:")
	comm := map[int]map[float64]units.Seconds{}
	for _, n := range []int{2, 4, 8} {
		wn, err := platform.World(n, 600)
		if err != nil {
			log.Fatal(err)
		}
		_, par, err := lu.Run(wn)
		if err != nil {
			log.Fatal(err)
		}
		msgs, bytes := 0, 0
		for _, rs := range par.PerRank {
			if rs.Msgs > msgs {
				msgs, bytes = rs.Msgs, rs.MsgBytes
			}
		}
		avg := bytes / msgs
		comm[n] = map[float64]units.Seconds{}
		for _, mhz := range freqs {
			w2, err := platform.World(2, mhz)
			if err != nil {
				log.Fatal(err)
			}
			per, err := mpptest.PingPong(w2, avg, 20)
			if err != nil {
				log.Fatal(err)
			}
			comm[n][mhz] = per.Times(float64(msgs))
		}
		fmt.Printf("  N=%d: %5d messages, avg %5d B → overhead %.3f s at 600 MHz\n",
			n, msgs, avg, float64(comm[n][600]))
	}

	// Step 3 — compose and predict.
	fp := &core.FP{Work: work, SecPerIns: secPerIns, CommSec: comm}
	if err := fp.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nStep 3 — FP predictions vs simulated measurements:")
	for _, cfg := range []struct {
		n   int
		mhz float64
	}{{1, 1400}, {4, 1000}, {8, 1400}} {
		pred, err := fp.PredictTime(cfg.n, cfg.mhz)
		if err != nil {
			log.Fatal(err)
		}
		w, err := platform.World(cfg.n, cfg.mhz)
		if err != nil {
			log.Fatal(err)
		}
		_, meas, err := lu.Run(w)
		if err != nil {
			log.Fatal(err)
		}
		if meas.Seconds <= 0 {
			log.Fatalf("degenerate zero-time measurement at N=%d", cfg.n)
		}
		fmt.Printf("  N=%d @ %4.0f MHz: predicted %6.3f s, measured %6.3f s (error %+.1f%%)\n",
			cfg.n, cfg.mhz, float64(pred), meas.Seconds, (float64(pred)-meas.Seconds)/meas.Seconds*100)
	}
}
