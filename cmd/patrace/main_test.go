package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pasp/internal/obs"
)

func TestParseFreq(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
	}{
		{"1.4ghz", 1400},
		{"1.4GHz", 1400},
		{" 0.6 ghz ", 600},
		{"1400mhz", 1400},
		{"1400MHz", 1400},
		{"1400", 1400},
		{"600", 600},
	} {
		got, err := parseFreq(tc.in)
		if err != nil {
			t.Errorf("parseFreq(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want { //palint:ignore floateq -- exact unit conversion
			t.Errorf("parseFreq(%q) = %g, want %g", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "fast", "-600", "0", "1.4thz"} {
		if _, err := parseFreq(bad); err == nil {
			t.Errorf("parseFreq(%q) accepted a bad frequency", bad)
		}
	}
}

// TestRunEndToEnd drives the whole patrace pipeline twice into temp files
// and checks the exports are valid, complete and byte-identical per seed —
// the determinism contract the manifest exists to certify.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	args := func(i int) []string {
		return []string{
			"-kernel", "ft", "-n", "2", "-f", "0.6ghz", "-suite", "quick",
			"-chaos", "seed=7,jitter=0.5",
			"-out", filepath.Join(dir, "run"+string(rune('a'+i))+".trace.json"),
			"-manifest", filepath.Join(dir, "run"+string(rune('a'+i))+".json"),
			"-metrics",
		}
	}
	var outA, outB bytes.Buffer
	if err := run(args(0), &outA); err != nil {
		t.Fatal(err)
	}
	if err := run(args(1), &outB); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"per-phase energy attribution", "idle-tail", "trace OK", "manifest written", "counter mpi.runs 1"} {
		if !strings.Contains(outA.String(), want) {
			t.Errorf("patrace output missing %q:\n%s", want, outA.String())
		}
	}
	traceA, err := os.ReadFile(filepath.Join(dir, "runa.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	traceB, err := os.ReadFile(filepath.Join(dir, "runb.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traceA, traceB) {
		t.Error("two runs with the same seed produced different trace bytes")
	}
	if _, err := obs.ValidateChromeTrace(traceA); err != nil {
		t.Errorf("written trace fails validation: %v", err)
	}
	manA, err := os.ReadFile(filepath.Join(dir, "runa.json"))
	if err != nil {
		t.Fatal(err)
	}
	manB, err := os.ReadFile(filepath.Join(dir, "runb.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(manA, manB) {
		t.Error("two runs with the same seed produced different manifest bytes")
	}
	for _, want := range []string{`"tool": "patrace"`, `"kernel": "ft"`, `"platform_fingerprint"`, `"metrics"`} {
		if !strings.Contains(string(manA), want) {
			t.Errorf("manifest missing %s", want)
		}
	}
}

// TestRunRejectsBadInput pins the failure modes to errors, not writes.
func TestRunRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "x.trace.json")
	for _, args := range [][]string{
		{"-kernel", "nope", "-out", out},
		{"-f", "fast", "-out", out},
		{"-suite", "huge", "-out", out},
		{"-chaos", "seed=", "-out", out},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
		if _, err := os.Stat(out); !os.IsNotExist(err) {
			t.Errorf("run(%v) wrote %s despite failing", args, out)
		}
	}
}
