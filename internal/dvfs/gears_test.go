package dvfs

import (
	"strings"
	"testing"

	"pasp/internal/cluster"
	"pasp/internal/mpi"
	"pasp/internal/npb"
	"pasp/internal/power"
)

func TestGearPolicyValidate(t *testing.T) {
	prof := power.PentiumM()
	ok := GearPolicy{Default: prof.TopState(), Phases: map[string]power.PState{"a": prof.BaseState()}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	if err := (GearPolicy{}).Validate(); err == nil {
		t.Error("zero default accepted")
	}
	bad := GearPolicy{Default: prof.TopState(), Phases: map[string]power.PState{"a": {}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero phase gear accepted")
	}
	neg := ok
	neg.SwitchSec = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative switch accepted")
	}
}

func TestGearPolicyString(t *testing.T) {
	prof := power.PentiumM()
	p := GearPolicy{Default: prof.TopState(), Phases: map[string]power.PState{
		"comm": prof.BaseState(),
		"pack": prof.States[2],
	}}
	s := p.String()
	for _, want := range []string{"1400MHz", "comm→600MHz", "pack→1000MHz"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q: %s", want, s)
		}
	}
}

func TestPhaseModelTime(t *testing.T) {
	prof := power.PentiumM()
	m := PhaseModel{FlatSec: 1, ScaledSecMHz: 600}
	if got := m.Time(prof.BaseState()); got != 2 {
		t.Errorf("time at 600 MHz = %g, want 2", got)
	}
	if got := m.Time(prof.TopState()); got != 1+600.0/1400 {
		t.Errorf("time at 1400 MHz = %g", got)
	}
}

func TestOptimizeEDPEndpoints(t *testing.T) {
	prof := power.PentiumM()
	pol, err := OptimizeEDP(prof, 8, map[string]PhaseModel{
		"flat":   {FlatSec: 5, ScaledSecMHz: 0},
		"scaled": {FlatSec: 0, ScaledSecMHz: 6000},
		"mixed":  {FlatSec: 2, ScaledSecMHz: 1500},
	}, 50e-6)
	if err != nil {
		t.Fatal(err)
	}
	if got := pol.Phases["flat"]; got != prof.BaseState() {
		t.Errorf("flat phase gear %v, want bottom", got)
	}
	if got := pol.Phases["scaled"]; got != prof.TopState() {
		t.Errorf("scaled phase gear %v, want top", got)
	}
	mixed := pol.Phases["mixed"]
	if mixed == prof.BaseState() || mixed == prof.TopState() {
		t.Errorf("mixed phase gear %v, want an intermediate gear", mixed)
	}
}

func TestOptimizeEDPValidation(t *testing.T) {
	prof := power.PentiumM()
	if _, err := OptimizeEDP(prof, 0, map[string]PhaseModel{"a": {}}, 0); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := OptimizeEDP(prof, 2, nil, 0); err == nil {
		t.Error("empty phases accepted")
	}
	if _, err := OptimizeEDP(prof, 2, map[string]PhaseModel{"a": {FlatSec: -1}}, 0); err == nil {
		t.Error("negative coefficient accepted")
	}
}

// An EDP-optimized multi-gear schedule must improve the measured EDP of a
// communication-bound run over the all-top baseline.
func TestCompareGearsImprovesEDP(t *testing.T) {
	p := cluster.PentiumM()
	w, err := p.World(8, 1400)
	if err != nil {
		t.Fatal(err)
	}
	ft := npb.FT{Nx: 16, Ny: 16, Nz: 16, Iters: 3, Scale: 64}
	pol := GearPolicy{
		Default:   p.Prof.TopState(),
		Phases:    map[string]power.PState{"ft-alltoall": p.Prof.BaseState(), "ft-checksum": p.Prof.BaseState()},
		SwitchSec: 50e-6,
	}
	cmp, err := CompareGears(w, pol, func(w2 mpi.World) (*mpi.Result, error) {
		_, r, err := ft.Run(w2)
		return r, err
	})
	if err != nil {
		t.Fatal(err)
	}
	baseEDP := power.EDP(cmp.BaselineJoules, cmp.BaselineSec)
	schedEDP := power.EDP(cmp.ScheduledJoules, cmp.ScheduledSec)
	if schedEDP >= baseEDP {
		t.Errorf("scheduled EDP %g not below baseline %g", schedEDP, baseEDP)
	}
}
