// Package detsource seeds determinism violations: direct wall-clock,
// rand and environment reads, taint inherited through a helper in another
// package, a call through a bound function value, pointer-rendering
// fingerprints (direct and through a forwarding helper), and map-ordered
// accumulation — next to clean variants of each.
package detsource

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"pasp/internal/analysis/testdata/src/detsource/detlib"
)

// config carries a func-typed field, which %+v renders as an address.
type config struct {
	Name string
	hook func()
}

func directClock() float64 {
	return float64(time.Now().UnixNano()) // want: wall-clock read
}

func directRand(n int) int {
	return rand.Intn(n) // want: global math/rand draw
}

func directEnv() string {
	return os.Getenv("PASP_SEED") // want: environment read
}

func viaHelper() int64 {
	return detlib.Stamp() // want: inherited wall-clock taint with witness
}

func viaBoundValue() time.Time {
	now := time.Now
	return now() // want: wall-clock read through the bound value
}

func suppressedAtCallee() int64 {
	return detlib.SanctionedStamp() // clean: the callee's suppression sanctions it
}

func fingerprintDirect(c config) string {
	return fmt.Sprintf("%+v", c) // want: %+v renders the func field as an address
}

func fingerprintViaHelper(c config) string {
	return detlib.Fingerprint(c) // want: forwarded to a %+v verb in detlib
}

func fingerprintClean(name string) string { // clean: plain data renders stably
	return fmt.Sprintf("%q", name)
}

func mapAccumulate(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want: order-dependent accumulation
	}
	return keys
}

func mapAccumulateSorted(m map[string]int) []string { // clean: sorted before escaping
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
