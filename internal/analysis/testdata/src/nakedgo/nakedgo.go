// Package nakedgo seeds violations and non-violations for the nakedgo
// analyzer's golden test.
package nakedgo

import "sync"

// Bad1 increments a captured counter from goroutines: a textbook race.
func Bad1() int {
	counter := 0
	for i := 0; i < 4; i++ {
		go func() {
			counter++ // seeded violation 1
		}()
	}
	return counter
}

// Bad2 appends to a captured slice from a goroutine.
func Bad2() []int {
	var shared []int
	go func() {
		shared = append(shared, 1) // seeded violation 2
	}()
	return shared
}

// Bad3 writes a captured struct field from a goroutine.
type result struct{ seconds float64 }

func Bad3() result {
	var res result
	go func() {
		res.seconds = 1.5 // seeded violation 3
	}()
	return res
}

// GoodSlotWrite is the simulator's fan-out idiom: each goroutine owns a
// distinct element, indexed by its own parameter.
func GoodSlotWrite(n int) []error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = nil
		}(i)
	}
	wg.Wait()
	return errs
}

// GoodMutex locks around the shared write.
func GoodMutex() int {
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// GoodLocal mutates only goroutine-local state.
func GoodLocal(ch chan<- int) {
	go func() {
		sum := 0
		for i := 0; i < 10; i++ {
			sum += i
		}
		ch <- sum
	}()
}
