// Command pabench turns `go test -bench` output into a machine-readable
// JSON artifact. It tees stdin through to stdout unchanged — so it sits at
// the end of a benchmark pipeline without hiding the human-readable log —
// and writes the parsed benchmark lines, sorted by name, to the file named
// by -o.
//
// Because a shell pipeline reports the exit status of its last stage,
// pabench also acts as the pipeline's failure detector: it exits non-zero
// when the stream contains a FAIL line or no benchmark lines at all.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line. Metrics holds every
// value/unit pair go test printed: ns/op always, B/op and allocs/op under
// -benchmem, plus any b.ReportMetric customs (maxerr%, speedup@16x600, ...).
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the artifact schema written to -o (see README "Benchmark
// artifacts"). Suite echoes PASP_BENCH_SUITE so a stored artifact is
// self-describing.
type Report struct {
	Suite      string  `json:"suite"`
	Benchmarks []Bench `json:"benchmarks"`
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   <iters>   <value> <unit>   <value> <unit> ...
//
// and reports whether the line was a benchmark result. The -GOMAXPROCS
// suffix is stripped from the name.
func parseBenchLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Bench{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	metrics := make(map[string]float64)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return Bench{}, false
	}
	return Bench{Name: name, Iterations: iters, Metrics: metrics}, true
}

// run tees r to w, collecting parsed benchmark lines and noting FAIL lines.
func run(r io.Reader, w io.Writer) (benches []Bench, failed bool, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if _, err := fmt.Fprintln(w, line); err != nil {
			return nil, false, err
		}
		if strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL") {
			failed = true
		}
		if b, ok := parseBenchLine(line); ok {
			benches = append(benches, b)
		}
	}
	return benches, failed, sc.Err()
}

// report assembles the sorted artifact. Ties (a name measured twice, e.g.
// -count > 1) keep input order. json.Marshal renders map keys sorted, so
// the artifact bytes are deterministic for a given input.
func report(suite string, benches []Bench) Report {
	sort.SliceStable(benches, func(i, j int) bool { return benches[i].Name < benches[j].Name })
	if suite == "" {
		suite = "paper"
	}
	return Report{Suite: suite, Benchmarks: benches}
}

func main() {
	out := flag.String("o", "", "write the parsed results as JSON to this file")
	flag.Parse()
	benches, failed, err := run(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pabench:", err)
		os.Exit(1)
	}
	if *out != "" {
		//palint:ignore detsource -- CLI driver: the suite label is human-facing report metadata, not simulation input
		data, err := json.MarshalIndent(report(os.Getenv("PASP_BENCH_SUITE"), benches), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pabench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pabench:", err)
			os.Exit(1)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "pabench: benchmark stream contains FAIL")
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "pabench: no benchmark lines in input")
		os.Exit(1)
	}
}
