// Package experiments regenerates every table and figure of the paper's
// evaluation: the generalized-Amdahl error grid (Table 1), the EP and FT
// execution-time/speedup surfaces (Figures 1–2), the SP prediction errors
// (Table 3), the LU workload decomposition (Table 5), the per-level and
// communication timings (Table 6), the FP-vs-SP error comparison (Table 7),
// the platform operating points (Table 2) and the energy-delay-product
// prediction claim from the abstract.
//
// Each experiment follows the paper's methodology end to end: it *measures*
// the simulated cluster (never reading model internals), fits the
// parameterizations from the measured slices, and reports prediction error
// against held-out measurements.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"pasp/internal/cluster"
	"pasp/internal/core"
	"pasp/internal/mpi"
	"pasp/internal/npb"
)

// Suite bundles a platform, measurement grids and benchmark classes.
type Suite struct {
	// Platform is the simulated cluster.
	Platform cluster.Platform
	// Grid is the (N, MHz) campaign for EP and FT (Tables 1, 3; Figures 1, 2).
	Grid cluster.Grid
	// LUGrid is the campaign for LU (Table 7 stops at 8 processors).
	LUGrid cluster.Grid
	// EP, FT, LU are the paper's benchmark classes; CG, MG and IS extend
	// the evaluation to the rest of the NAS suite's behaviour space
	// (memory-bound, hierarchical-comm, skewed-exchange).
	EP npb.EP
	FT npb.FT
	LU npb.LU
	CG npb.CG
	MG npb.MG
	IS npb.IS
	SP npb.SP
	// PingReps is the repetition count for MPPTEST-style measurements.
	PingReps int
}

// Paper returns the full-scale suite: the paper's 5×5 grid and classes
// calibrated so the workload shapes match the publication (EP 2^28 logical
// pairs; FT at class-A volume via Scale; LU on the class-A 62³ grid).
func Paper() Suite {
	return Suite{
		Platform: cluster.PentiumM(),
		Grid:     cluster.PaperGrid(),
		LUGrid: cluster.Grid{
			Ns:  []int{1, 2, 4, 8},
			MHz: []float64{600, 800, 1000, 1200, 1400},
		},
		EP:       npb.EP{LogPairs: 18, ScaleLog: 10},
		FT:       npb.FT{Nx: 64, Ny: 64, Nz: 32, Iters: 6, Scale: 64},
		LU:       npb.LU{N: 62, Iters: 30},
		CG:       npb.CG{Size: 14336, OuterIters: 10, CGIters: 25, Scale: 8},
		MG:       npb.MG{Size: 63, Cycles: 4, Scale: 16},
		IS:       npb.IS{LogKeys: 16, LogMaxKey: 19, Iters: 6, ScaleLog: 7},
		SP:       npb.SP{N: 48, Steps: 20},
		PingReps: 30,
	}
}

// Quick returns a reduced suite for fast tests: a 3×2 grid and small
// classes. The shapes remain, the absolute numbers shrink.
func Quick() Suite {
	return Suite{
		Platform: cluster.PentiumM(),
		Grid: cluster.Grid{
			Ns:  []int{1, 2, 4},
			MHz: []float64{600, 1000, 1400},
		},
		LUGrid: cluster.Grid{
			Ns:  []int{1, 2, 4},
			MHz: []float64{600, 1000, 1400},
		},
		EP:       npb.EP{LogPairs: 14, ScaleLog: 6},
		FT:       npb.FT{Nx: 16, Ny: 16, Nz: 16, Iters: 2, Scale: 16},
		LU:       npb.LU{N: 16, Iters: 8},
		CG:       npb.CG{Size: 512, OuterIters: 2, CGIters: 10, Scale: 64},
		MG:       npb.MG{Size: 15, Cycles: 2, Scale: 8},
		IS:       npb.IS{LogKeys: 12, LogMaxKey: 15, Iters: 3, ScaleLog: 5},
		SP:       npb.SP{N: 16, Steps: 4},
		PingReps: 10,
	}
}

// Scale returns the scaling suite: the event-engine regime past the
// paper's 16 nodes, N ∈ {16, 64, 256, 1024} at the base and top gears.
// FT and CG are the scaling kernels — CG's 1-D band decomposition (with an
// explicit narrow band, so the halo stays below the per-rank row count)
// reaches the full 1024 ranks, while FT's pencil transpose needs Ny and Nz
// divisible by N and therefore stops at 256: a 1024-rank FT would force a
// 1024² plane and an O(N²) all-to-all. The remaining kernels carry classes
// that stay valid as far as their decompositions allow (EP anywhere, LU to
// 1024, IS/SP to their structural limits), so single-configuration
// commands work unchanged under -suite scale.
func Scale() Suite {
	p := cluster.PentiumM()
	p.MaxNodes = 1024
	// N=1 anchors the speedup surfaces (every figure normalizes against
	// the sequential base run), then the scaling ladder proper.
	g := cluster.Grid{Ns: []int{1, 16, 64, 256, 1024}, MHz: []float64{600, 1400}}
	return Suite{
		Platform: p,
		Grid:     g,
		LUGrid:   g,
		EP:       npb.EP{LogPairs: 16, ScaleLog: 8},
		FT:       npb.FT{Nx: 4, Ny: 256, Nz: 256, Iters: 2, Scale: 16},
		LU:       npb.LU{N: 48, Iters: 4},
		CG:       npb.CG{Size: 65536, Band: 8, OuterIters: 2, CGIters: 10, Scale: 8},
		MG:       npb.MG{Size: 63, Cycles: 2, Scale: 8},
		IS:       npb.IS{LogKeys: 16, LogMaxKey: 19, Iters: 3, ScaleLog: 5},
		SP:       npb.SP{N: 64, Steps: 4},
		PingReps: 10,
	}
}

// Campaign is a measured grid plus the raw per-cell results. Campaigns
// obtained from the MeasureXX entry points are memoized process-wide (see
// store.go) and shared between callers, so a Campaign must be treated as
// read-only after construction.
type Campaign struct {
	// Meas holds times and energies keyed by configuration.
	Meas *core.Measurements
	// Cells holds the raw simulation results in sweep order.
	Cells []cluster.Cell

	// index maps (N, MHz) to a position in Cells; built lazily so
	// hand-assembled Campaign literals keep working.
	indexOnce sync.Once
	index     map[cellKey]int
}

// cellKey is the exact-match lookup key of one grid cell. The frequency is
// copied verbatim from Grid.MHz into every cell, so map equality on the
// float64 is the intended exact-key semantics.
type cellKey struct {
	n   int
	mhz float64
}

// buildIndex constructs the cell lookup map; first occurrence wins, same as
// the linear scan it replaced.
func (c *Campaign) buildIndex() {
	c.index = make(map[cellKey]int, len(c.Cells))
	for i, cell := range c.Cells {
		k := cellKey{n: cell.N, mhz: cell.MHz}
		if _, ok := c.index[k]; !ok {
			c.index[k] = i
		}
	}
}

// Cell returns the raw result of one configuration.
func (c *Campaign) Cell(n int, mhz float64) (*mpi.Result, error) {
	c.indexOnce.Do(c.buildIndex)
	if i, ok := c.index[cellKey{n: n, mhz: mhz}]; ok {
		return c.Cells[i].Res, nil
	}
	return nil, fmt.Errorf("experiments: no cell N=%d f=%g", n, mhz)
}

// measure sweeps the grid with the kernel and collects a campaign. It is
// the uncached path; the MeasureXX entry points layer the campaign store on
// top. Tests use it directly to prove cached and fresh campaigns agree.
func (s Suite) measure(ctx context.Context, g cluster.Grid, run cluster.RunFunc) (*Campaign, error) {
	cells, err := cluster.Sweep(ctx, s.Platform, g, run)
	if err != nil {
		return nil, err
	}
	return NewCampaign(cells), nil
}

// NewCampaign assembles a campaign from already-measured cells exactly as a
// fresh sweep would: Meas and the cell index are rebuilt from the cells in
// order. Callers that sweep through cluster.Sweep directly (the GOMAXPROCS
// determinism tests, hand-built grids) use it to get a Campaign with the
// same derived state as a store-measured one.
func NewCampaign(cells []cluster.Cell) *Campaign {
	camp := &Campaign{Meas: core.NewMeasurements(), Cells: cells}
	camp.indexOnce.Do(camp.buildIndex)
	for _, c := range cells {
		camp.Meas.SetTime(c.N, c.MHz, c.Res.Seconds)
		camp.Meas.SetEnergy(c.N, c.MHz, c.Res.Joules)
	}
	return camp
}

// RunEP adapts the EP class to a sweep.
func (s Suite) RunEP(w mpi.World) (*mpi.Result, error) {
	_, r, err := s.EP.Run(w)
	return r, err
}

// RunFT adapts the FT class to a sweep.
func (s Suite) RunFT(w mpi.World) (*mpi.Result, error) {
	_, r, err := s.FT.Run(w)
	return r, err
}

// RunLU adapts the LU class to a sweep.
func (s Suite) RunLU(w mpi.World) (*mpi.Result, error) {
	_, r, err := s.LU.Run(w)
	return r, err
}

// MeasureEP runs the EP campaign over the suite grid, memoized.
func (s Suite) MeasureEP(ctx context.Context) (*Campaign, error) {
	return s.measureCached(ctx, "EP", s.EP, s.Grid, s.RunEP)
}

// MeasureFT runs the FT campaign over the suite grid, memoized.
func (s Suite) MeasureFT(ctx context.Context) (*Campaign, error) {
	return s.measureCached(ctx, "FT", s.FT, s.Grid, s.RunFT)
}

// MeasureLU runs the LU campaign over the LU grid, memoized.
func (s Suite) MeasureLU(ctx context.Context) (*Campaign, error) {
	return s.measureCached(ctx, "LU", s.LU, s.LUGrid, s.RunLU)
}

// RunCG adapts the CG class to a sweep.
func (s Suite) RunCG(w mpi.World) (*mpi.Result, error) {
	_, r, err := s.CG.Run(w)
	return r, err
}

// RunMG adapts the MG class to a sweep.
func (s Suite) RunMG(w mpi.World) (*mpi.Result, error) {
	_, r, err := s.MG.Run(w)
	return r, err
}

// RunIS adapts the IS class to a sweep.
func (s Suite) RunIS(w mpi.World) (*mpi.Result, error) {
	_, r, err := s.IS.Run(w)
	return r, err
}

// MeasureCG runs the CG campaign over the suite grid, memoized.
func (s Suite) MeasureCG(ctx context.Context) (*Campaign, error) {
	return s.measureCached(ctx, "CG", s.CG, s.Grid, s.RunCG)
}

// MeasureMG runs the MG campaign over the suite grid, memoized.
func (s Suite) MeasureMG(ctx context.Context) (*Campaign, error) {
	return s.measureCached(ctx, "MG", s.MG, s.Grid, s.RunMG)
}

// MeasureIS runs the IS campaign over the suite grid, memoized.
func (s Suite) MeasureIS(ctx context.Context) (*Campaign, error) {
	return s.measureCached(ctx, "IS", s.IS, s.Grid, s.RunIS)
}

// RunSP adapts the SP class to a sweep.
func (s Suite) RunSP(w mpi.World) (*mpi.Result, error) {
	_, r, err := s.SP.Run(w)
	return r, err
}

// MeasureSP runs the SP campaign over the suite grid, memoized.
func (s Suite) MeasureSP(ctx context.Context) (*Campaign, error) {
	return s.measureCached(ctx, "SP", s.SP, s.Grid, s.RunSP)
}
