package analysis

// PhaseBal verifies phase discipline: communication happens inside named
// phases, phase transitions are statically ordered, and no phase is empty.
var PhaseBal = &Analyzer{
	Name: "phasebal",
	Doc:  "phase discipline: ordered SetPhase transitions, no comm outside a named phase",
	Explain: `The energy-attribution model (DESIGN §10) assumes phases tile each
rank's clock: every rank walks the same statically known SetPhase
sequence, and every communication or compute event lands inside a named
phase. phasebal walks each function's communication tree with an
abstract phase state and reports: (1) communication before the
function's first SetPhase when the function does transition phases
later — those events are misattributed to the caller's phase; (2)
communication under an ambiguous phase, i.e. after branch arms that
leave different phases open — ranks (or runs) would attribute the event
differently; (3) SetPhase calls whose label is not a string constant,
which make the static phase sequence unknowable; and (4) empty phases —
two consecutive different SetPhase calls with no communication or
compute between them, dead weight in the phase table. Functions that
never call SetPhase inherit their caller's phase and are exempt from
(1).`,
	Example: `c.Allreduce(&x, mpi.Sum) // phasebal: communication before the function's first SetPhase
c.SetPhase("solve")`,
	Run: runPhaseBal,
}

// pbState is the abstract phase state threaded through one function.
type pbState struct {
	// phase is "" before the first transition (caller's phase), a known
	// label after a constant SetPhase, or pbAmbiguous after diverging arms.
	phase string
	// firstDone is true once every path has transitioned at least once.
	firstDone bool
	// activity is true when communication or compute happened since the
	// last transition (guards the empty-phase check).
	activity bool
	// lastPhase is the node of the last unambiguous SetPhase, for
	// attributing empty-phase reports; nil when unknown.
	lastPhase *opNode
	// terminated is true after a return: the rest of the sequence is dead.
	terminated bool
}

const pbAmbiguous = "\x00ambiguous"

func runPhaseBal(pass *Pass) {
	if isMPIRuntimePkg(pass.Pkg) {
		return
	}
	prog := pass.Prog
	eachReportedFunc(pass, func(info *FuncInfo) {
		tree := prog.commTree(info)
		hasOwnPhase := hasPhaseOutsideClosures(tree)
		reportedBefore := false
		reportedAmbiguous := map[string]bool{}

		var walkSeq func(nodes []*opNode, st pbState) pbState
		comm := func(st *pbState, n *opNode, what string) {
			if hasOwnPhase && !st.firstDone && st.phase == "" && !reportedBefore {
				reportedBefore = true
				pass.Reportf(n.pos, "%s precedes the function's first SetPhase; events are attributed to the caller's phase", what)
			}
			if st.phase == pbAmbiguous {
				key := pass.Fset().Position(n.pos).String()
				if !reportedAmbiguous[key] {
					reportedAmbiguous[key] = true
					pass.Reportf(n.pos, "%s under an ambiguous phase: earlier branch arms leave different phases open", what)
				}
			}
			st.activity = true
		}
		walkSeq = func(nodes []*opNode, st pbState) pbState {
			for _, n := range nodes {
				if st.terminated {
					return st
				}
				switch n.kind {
				case opPhase:
					if !n.phaseConst {
						pass.Reportf(n.pos, "SetPhase with a non-constant label; the phase sequence cannot be statically verified")
						st.phase = pbAmbiguous
						st.firstDone = true
						st.activity = false
						st.lastPhase = nil
						continue
					}
					if st.lastPhase != nil && n.phaseName == st.lastPhase.phaseName {
						// Re-entering the current phase is a runtime no-op.
						continue
					}
					if st.lastPhase != nil && !st.activity {
						pass.Reportf(st.lastPhase.pos, "empty phase %q: no communication or compute before the transition to %q", st.lastPhase.phaseName, n.phaseName)
					}
					st.phase = n.phaseName
					st.firstDone = true
					st.activity = false
					st.lastPhase = n
				case opColl:
					comm(&st, n, "collective "+n.opName)
				case opP2P:
					comm(&st, n, "point-to-point "+n.opName)
				case opCompute:
					st.activity = true
				case opCall:
					fact := prog.commFactOf(n.callee)
					if len(fact.phases) > 0 {
						// The callee names its own phases (exchange-style
						// helpers SetPhase before they communicate); its
						// exit phase is its business — resume tracking at
						// the next local SetPhase without claiming
						// ambiguity, and don't count its communication as
						// outside a named phase.
						st.firstDone = true
						st.lastPhase = nil
						st.activity = true
						continue
					}
					if fact.hasComm() {
						comm(&st, n, "communication (via "+shortFuncName(n.callee)+")")
					}
					if fact.hasCompute {
						st.activity = true
					}
				case opBranch:
					thenSt := walkSeq(n.then, st)
					elsSt := walkSeq(n.els, st)
					st = mergePB(thenSt, elsSt)
				case opLoop:
					bodySt := walkSeq(n.body, st)
					bodySt.terminated = false // the loop may run zero times
					st = mergePB(st, bodySt)
				case opClosure:
					// Def-site approximation: the closure runs under some
					// caller-determined phase; check only its interior
					// ordering, not its boundary against ours.
					walkSeq(n.body, pbState{firstDone: true})
					st.activity = true
				case opReturn:
					st.terminated = true
				}
			}
			return st
		}
		end := walkSeq(tree, pbState{})
		if end.lastPhase != nil && !end.activity && !end.terminated {
			pass.Reportf(end.lastPhase.pos, "empty phase %q: no communication or compute after the final transition", end.lastPhase.phaseName)
		}
	})
}

// hasPhaseOutsideClosures reports whether the function itself (not a
// def-site closure it merely defines) transitions phases.
func hasPhaseOutsideClosures(nodes []*opNode) bool {
	for _, n := range nodes {
		switch n.kind {
		case opPhase:
			return true
		case opBranch:
			if hasPhaseOutsideClosures(n.then) || hasPhaseOutsideClosures(n.els) {
				return true
			}
		case opLoop:
			if hasPhaseOutsideClosures(n.body) {
				return true
			}
		}
	}
	return false
}

// mergePB joins the states of two control-flow arms.
func mergePB(a, b pbState) pbState {
	if a.terminated {
		return b
	}
	if b.terminated {
		return a
	}
	out := pbState{
		firstDone: a.firstDone && b.firstDone,
		activity:  a.activity || b.activity,
	}
	if a.phase == b.phase {
		out.phase = a.phase
	} else {
		out.phase = pbAmbiguous
	}
	if a.lastPhase == b.lastPhase {
		out.lastPhase = a.lastPhase
	}
	return out
}
