package npb

import (
	"testing"

	"pasp/internal/mpi"
)

// ftRunAllocs measures the allocations of one full FT run at the given
// iteration count on 4 ranks under the given engine.
func ftRunAllocs(t *testing.T, iters int, eng mpi.Engine) float64 {
	t.Helper()
	ft := FT{Nx: 16, Ny: 16, Nz: 16, Iters: iters}
	w := npbWorld(4, 600)
	w.Engine = eng
	return testing.AllocsPerRun(3, func() {
		if _, _, err := ft.Run(w); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFTIterationAllocs pins the steady-state allocation cost of one FT
// iteration. Differencing two iteration counts cancels setup (grids, the
// one-time forward transform, plan construction) and isolates the
// per-iteration marginal cost: with the transpose pack buffers, column
// scratch and inverse work arrays reused, what remains is dominated by the
// collective deposit copies the simulator makes by design (they have no
// single owner and are never pooled). Measured ~45 allocs/iteration at 4
// ranks; the budget leaves ~2× headroom while still catching a return of
// the per-iteration fresh-scratch pattern, which costs hundreds.
// TestFTIterationAllocs runs the budget under both engines: the event
// core must hold the same per-iteration ceiling as the goroutine runtime
// it replaces — its parking, hand-off and wake-up paths may not add a
// single steady-state allocation to the kernel's marginal cost.
func TestFTIterationAllocs(t *testing.T) {
	for _, eng := range []mpi.Engine{mpi.EngineGoroutine, mpi.EngineEvent} {
		base := ftRunAllocs(t, 2, eng)
		more := ftRunAllocs(t, 6, eng)
		perIter := (more - base) / 4
		if perIter > 90 {
			t.Errorf("%s engine: FT allocates %.0f allocs/iteration, want ≤ 90", eng, perIter)
		}
	}
}
