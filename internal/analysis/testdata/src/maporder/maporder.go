// Package maporder seeds violations and non-violations for the maporder
// analyzer's golden test.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

// Bad1 prints in map-iteration order: the report differs run to run.
func Bad1(byPhase map[string]float64) {
	for phase, sec := range byPhase { // seeded violation 1
		fmt.Printf("%-16s %8.3f s\n", phase, sec)
	}
}

// Bad2 builds a string in map-iteration order.
func Bad2(rows map[string]int, b *strings.Builder) {
	for k := range rows { // seeded violation 2
		b.WriteString(k)
	}
}

// Bad3 appends table rows in map-iteration order.
type tbl struct{}

func (tbl) AddRow(cells ...string) {}

func Bad3(cells map[string]string, t tbl) {
	for k, v := range cells { // seeded violation 3
		t.AddRow(k, v)
	}
}

// GoodSorted collects, sorts, then prints — deterministic.
func GoodSorted(byPhase map[string]float64) {
	keys := make([]string, 0, len(byPhase))
	for k := range byPhase {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%-16s %8.3f s\n", k, byPhase[k])
	}
}

// GoodAccumulate aggregates order-insensitively.
func GoodAccumulate(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// GoodErrorf returns on the first invalid entry; fmt.Errorf constructs an
// error value, it does not emit a report.
func GoodErrorf(m map[string]float64) error {
	for k, v := range m {
		if v < 0 {
			return fmt.Errorf("negative duration for %q", k)
		}
	}
	return nil
}
