package core

import (
	"fmt"
	"sort"
)

// SegModel is the segment-granularity power-aware model the paper's
// conclusion proposes as future work: instead of one whole-program
// decomposition, each code segment (phase) gets its own frequency model
//
//	T_p(N, f) = A_p(N) + B_p(N)/f
//
// where A_p is the segment's frequency-insensitive time (OFF-chip work,
// wire time, latency) and B_p/f its frequency-scaled time (ON-chip work,
// per-byte protocol cost). The two coefficients are identified exactly from
// measurements at two frequencies per processor count, so the model needs
// 2·|N| profiled runs (versus SP's |N|+|F|−1) but captures what SP's
// Assumption 2 discards: communication segments that are *partially*
// frequency sensitive.
type SegModel struct {
	loMHz, hiMHz float64
	// terms[phase][n] = {A seconds, B seconds·MHz}.
	terms map[string]map[int][2]float64
}

// FitSeg identifies every phase's coefficients from its measured times at
// the two frequencies loMHz < hiMHz for each processor count present.
// phaseTimes maps phase → configuration → seconds; every phase must be
// measured at both frequencies for the same set of processor counts.
func FitSeg(phaseTimes map[string]map[Config]float64, loMHz, hiMHz float64) (*SegModel, error) {
	if len(phaseTimes) == 0 {
		return nil, fmt.Errorf("core: no phase measurements")
	}
	if loMHz <= 0 || hiMHz <= loMHz {
		return nil, fmt.Errorf("core: need 0 < loMHz < hiMHz, got %g, %g", loMHz, hiMHz)
	}
	m := &SegModel{loMHz: loMHz, hiMHz: hiMHz, terms: map[string]map[int][2]float64{}}
	for phase, times := range phaseTimes {
		byN := map[int][2]float64{} // n → {tLo, tHi}
		seen := map[int][2]bool{}
		for cfg, sec := range times {
			if sec < 0 {
				return nil, fmt.Errorf("core: negative time for phase %q at %v", phase, cfg)
			}
			cur := byN[cfg.N]
			s := seen[cfg.N]
			switch cfg.MHz {
			case loMHz:
				cur[0], s[0] = sec, true
			case hiMHz:
				cur[1], s[1] = sec, true
			default:
				continue // other frequencies are held out for evaluation
			}
			byN[cfg.N] = cur
			seen[cfg.N] = s
		}
		m.terms[phase] = map[int][2]float64{}
		for n, s := range seen {
			if !s[0] || !s[1] {
				return nil, fmt.Errorf("core: phase %q lacks both frequency columns at N=%d", phase, n)
			}
			tLo, tHi := byN[n][0], byN[n][1]
			// Solve A + B/fLo = tLo, A + B/fHi = tHi.
			b := (tLo - tHi) / (1/loMHz - 1/hiMHz)
			a := tLo - b/loMHz
			if a < 0 {
				// Measurement noise can push the flat term slightly
				// negative; clamp it and fold the residue into B so the
				// fitted point at the low column stays matched.
				a = 0
				b = tLo * loMHz
			}
			m.terms[phase][n] = [2]float64{a, b}
		}
	}
	return m, nil
}

// Phases returns the modelled phase names, sorted.
func (m *SegModel) Phases() []string {
	out := make([]string, 0, len(m.terms))
	for p := range m.terms {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// PredictPhase returns one phase's predicted time at a configuration.
func (m *SegModel) PredictPhase(phase string, n int, mhz float64) (float64, error) {
	byN, ok := m.terms[phase]
	if !ok {
		return 0, fmt.Errorf("core: unknown phase %q", phase)
	}
	ab, ok := byN[n]
	if !ok {
		return 0, fmt.Errorf("core: phase %q not fitted at N=%d", phase, n)
	}
	if mhz <= 0 {
		return 0, fmt.Errorf("core: frequency %g MHz", mhz)
	}
	t := ab[0] + ab[1]/mhz
	if t < 0 {
		t = 0
	}
	return t, nil
}

// PredictTime returns the whole program's predicted time: the sum of its
// segments (SPMD segments execute back to back on the critical path).
func (m *SegModel) PredictTime(n int, mhz float64) (float64, error) {
	total := 0.0
	for phase := range m.terms {
		t, err := m.PredictPhase(phase, n, mhz)
		if err != nil {
			return 0, err
		}
		total += t
	}
	return total, nil
}

// Coefficients returns one phase's fitted (A, B) pair at a processor
// count: T(f) = A + B/fMHz. DVFS optimizers consume these to price the
// phase at every gear.
func (m *SegModel) Coefficients(phase string, n int) (flatSec, scaledSecMHz float64, err error) {
	byN, ok := m.terms[phase]
	if !ok {
		return 0, 0, fmt.Errorf("core: unknown phase %q", phase)
	}
	ab, ok := byN[n]
	if !ok {
		return 0, 0, fmt.Errorf("core: phase %q not fitted at N=%d", phase, n)
	}
	return ab[0], ab[1], nil
}

// FrequencySensitivity returns the fraction of a phase's time at (n, loMHz)
// that scales with frequency — B/(A·f+B). DVFS schedulers use it to decide
// which segments can run at a low gear cheaply.
func (m *SegModel) FrequencySensitivity(phase string, n int) (float64, error) {
	byN, ok := m.terms[phase]
	if !ok {
		return 0, fmt.Errorf("core: unknown phase %q", phase)
	}
	ab, ok := byN[n]
	if !ok {
		return 0, fmt.Errorf("core: phase %q not fitted at N=%d", phase, n)
	}
	if m.loMHz <= 0 {
		return 0, fmt.Errorf("core: segment model has no base frequency (zero-value SegModel?)")
	}
	total := ab[0] + ab[1]/m.loMHz
	if total == 0 {
		return 0, nil
	}
	return (ab[1] / m.loMHz) / total, nil
}
