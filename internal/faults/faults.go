// Package faults is the deterministic chaos harness: a seed-driven
// perturbation engine the simulation layers consult to model an imperfect
// cluster — per-message latency jitter, transient bandwidth degradation,
// dropped messages with timeout/retry, persistent straggler ranks and
// P-state transition cost.
//
// The paper's models assume a perfect platform: homogeneous quiet nodes
// (Assumption 1's uniform decomposition) and frequency-independent,
// noise-free parallel overhead (Assumption 2). Real clusters violate both,
// and the interesting question for the reproduction is *how fast* the SP and
// FP predictions degrade as the platform departs from those assumptions.
// This package supplies the departure, with two hard requirements:
//
//  1. Determinism. Every draw is a pure function of (Seed, rank, event
//     index): a counter-based PRNG built on the SplitMix64 avalanche
//     function, never math/rand global state. Identical seeds produce
//     bit-identical perturbations — and therefore bit-identical traces —
//     regardless of GOMAXPROCS or goroutine scheduling, because each rank
//     owns its stream and ranks draw in their own deterministic program
//     order.
//  2. Zero-value transparency. A zero Config reports Enabled() == false and
//     the mpi layer then never creates a Rank injector; the hot path guards
//     on a nil pointer and performs no draw, no allocation and no arithmetic
//     change, so fault-free simulations stay bit-identical to the golden
//     reproduction numbers.
package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"pasp/internal/units"
)

// Config holds the perturbation knobs. The zero value disables every fault.
// All knobs are independent: a robustness sweep usually scales one axis
// (see Scale) while pinning the rest.
type Config struct {
	// Seed keys every pseudo-random draw. Two configs that differ only in
	// Seed produce different perturbation sequences of identical statistics.
	Seed uint64

	// LatencyJitterFrac adds, to every received point-to-point message, a
	// uniform extra delay in [0, LatencyJitterFrac)·LatencySec, and to every
	// collective a uniform extra in [0, LatencyJitterFrac)·cost. 0 disables
	// jitter.
	LatencyJitterFrac float64

	// DropProb is the per-transmission loss probability. A lost eager
	// message is redelivered after a retransmission timeout; a lost
	// rendezvous handshake retries with exponential backoff. Retries are
	// bounded by MaxRetries. 0 disables drops.
	DropProb float64
	// RetryTimeoutSec is the base retransmission timeout charged per retry;
	// retry k waits 2^k timeouts (exponential backoff). 0 means the 1 ms
	// DefaultRetryTimeout.
	RetryTimeoutSec units.Seconds
	// MaxRetries bounds the retries of one message. 0 means
	// DefaultMaxRetries.
	MaxRetries int

	// DegradeProb is the probability that a message observes a transiently
	// degraded fabric; its serialization time is then multiplied by
	// DegradeFactor (> 1). Both must be set for degradation to act.
	DegradeProb   float64
	DegradeFactor float64

	// StragglerFrac is the probability that a rank is a persistent
	// straggler: its compute intervals are stretched by StragglerSlowdown
	// (> 1), equivalent to the node running at effective frequency
	// f/StragglerSlowdown for ON-chip work — a heterogeneous cluster. Both
	// must be set for stragglers to act. Which ranks straggle is a
	// deterministic function of (Seed, rank).
	StragglerFrac     float64
	StragglerSlowdown float64

	// GearSwitchSec is the P-state transition latency charged on each
	// actual gear switch, relaxing the paper's Assumption 2 ("changing the
	// operating point is free"). It is wired into mpi.World.GearSwitchSec
	// by cluster.Platform.World rather than drawn per event.
	GearSwitchSec units.Seconds
}

// DefaultRetryTimeout is the retransmission timeout used when
// RetryTimeoutSec is zero: 1 ms, the order of a LAN TCP minimum RTO.
const DefaultRetryTimeout = units.Seconds(1e-3)

// DefaultMaxRetries is the retry bound used when MaxRetries is zero.
const DefaultMaxRetries = 3

// Enabled reports whether any per-event fault knob is active. GearSwitchSec
// is deliberately excluded: it is a static World parameter, not a drawn
// perturbation, and needs no injector on the message path.
func (c Config) Enabled() bool {
	return c.LatencyJitterFrac > 0 ||
		c.DropProb > 0 ||
		(c.DegradeProb > 0 && c.DegradeFactor > 1) ||
		(c.StragglerFrac > 0 && c.StragglerSlowdown > 1)
}

// Validate reports an error for non-physical knobs: probabilities outside
// [0,1], negative times or factors below 1, and NaN anywhere.
func (c Config) Validate() error {
	probs := map[string]float64{
		"DropProb":      c.DropProb,
		"DegradeProb":   c.DegradeProb,
		"StragglerFrac": c.StragglerFrac,
	}
	for name, p := range probs {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("faults: %s = %g outside [0,1]", name, p)
		}
	}
	if math.IsNaN(c.LatencyJitterFrac) || math.IsInf(c.LatencyJitterFrac, 0) || c.LatencyJitterFrac < 0 {
		return fmt.Errorf("faults: LatencyJitterFrac = %g", c.LatencyJitterFrac)
	}
	if c.RetryTimeoutSec < 0 || math.IsNaN(float64(c.RetryTimeoutSec)) {
		return fmt.Errorf("faults: RetryTimeoutSec = %g", float64(c.RetryTimeoutSec))
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("faults: MaxRetries = %d", c.MaxRetries)
	}
	if c.DegradeFactor != 0 && (math.IsNaN(c.DegradeFactor) || math.IsInf(c.DegradeFactor, 0) || c.DegradeFactor < 1) {
		return fmt.Errorf("faults: DegradeFactor = %g, want 0 (off) or ≥ 1", c.DegradeFactor)
	}
	if c.StragglerSlowdown != 0 && (math.IsNaN(c.StragglerSlowdown) || math.IsInf(c.StragglerSlowdown, 0) || c.StragglerSlowdown < 1) {
		return fmt.Errorf("faults: StragglerSlowdown = %g, want 0 (off) or ≥ 1", c.StragglerSlowdown)
	}
	if c.GearSwitchSec < 0 || math.IsNaN(float64(c.GearSwitchSec)) {
		return fmt.Errorf("faults: GearSwitchSec = %g", float64(c.GearSwitchSec))
	}
	return nil
}

// Scale returns the config with its intensity knobs — jitter fraction and
// the three probabilities — multiplied by m (probabilities capped at 1).
// The per-event magnitudes (timeout, degrade factor, slowdown, gear switch)
// are left unchanged, so a robustness sweep varies how *often* and how
// *strongly jittered* faults strike while each strike stays comparable.
// Scale(0) disables every drawn fault.
func (c Config) Scale(m float64) Config {
	if m < 0 {
		m = 0
	}
	cap1 := func(p float64) float64 {
		if p > 1 {
			return 1
		}
		return p
	}
	out := c
	out.LatencyJitterFrac = c.LatencyJitterFrac * m
	out.DropProb = cap1(c.DropProb * m)
	out.DegradeProb = cap1(c.DegradeProb * m)
	out.StragglerFrac = cap1(c.StragglerFrac * m)
	return out
}

// retryTimeout returns the effective base timeout.
func (c Config) retryTimeout() float64 {
	if c.RetryTimeoutSec > 0 {
		return float64(c.RetryTimeoutSec)
	}
	return float64(DefaultRetryTimeout)
}

// maxRetries returns the effective retry bound.
func (c Config) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return DefaultMaxRetries
}

// BackoffSec returns the total virtual time charged for retries
// retransmissions with exponential backoff: retry k waits 2^k base
// timeouts, so the sum is (2^retries − 1) timeouts.
func (c Config) BackoffSec(retries int) float64 {
	if retries <= 0 {
		return 0
	}
	return c.retryTimeout() * float64((uint64(1)<<uint(retries))-1)
}

// MsgFault is the drawn perturbation of one point-to-point message.
// The zero value is a clean delivery.
type MsgFault struct {
	// ExtraLatencySec is the jitter delay added to the message's wire
	// latency, in seconds (≥ 0).
	ExtraLatencySec float64
	// WireFactor multiplies the message's serialization time (≥ 1; 1 means
	// full bandwidth).
	WireFactor float64
	// Retries is the number of retransmissions the message suffered
	// (bounded by the config's retry limit); each is charged exponential
	// backoff via Config.BackoffSec.
	Retries int
}

// Rank is one rank's injector: a deterministic stream of perturbation draws.
// It must only be used from the rank's own goroutine (like mpi.Ctx). A nil
// *Rank is the disabled injector; callers guard with a nil check.
type Rank struct {
	cfg  Config
	key  uint64
	ctr  uint64
	slow float64
}

// Draw streams: the straggler decision is keyed off the event counter's
// stream so the per-message sequence is independent of it.
const (
	streamStraggler uint64 = iota
	streamEvent
)

// splitmix64 is the SplitMix64 finalizer: a full-avalanche bijection on
// uint64, the mixing core of the counter-based PRNG.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// mixKey derives the per-rank stream key from (seed, rank).
func mixKey(seed uint64, rank int) uint64 {
	return splitmix64(seed ^ splitmix64(uint64(rank)*0x9e3779b97f4a7c15+0x2545f4914f6cdd1d))
}

// valueAt returns the deterministic uniform in [0,1) for (key, stream,
// event): the draw depends on nothing else, which is what makes identical
// seeds give bit-identical traces.
func valueAt(key, stream, event uint64) float64 {
	v := splitmix64(key ^ splitmix64(stream*0xda942042e4dd58b5+event))
	return float64(v>>11) / (1 << 53)
}

// NewRank builds the injector for one rank. The straggler decision is drawn
// once here, keyed on (seed, rank) only, so a rank's identity as a
// straggler is stable across the whole run and across runs.
func NewRank(cfg Config, rank int) *Rank {
	r := &Rank{cfg: cfg, key: mixKey(cfg.Seed, rank), slow: 1}
	if cfg.StragglerFrac > 0 && cfg.StragglerSlowdown > 1 {
		if valueAt(r.key, streamStraggler, 0) < cfg.StragglerFrac {
			r.slow = cfg.StragglerSlowdown
		}
	}
	return r
}

// next returns the next uniform in [0,1) of the rank's event stream.
func (r *Rank) next() float64 {
	u := valueAt(r.key, streamEvent, r.ctr)
	r.ctr++
	return u
}

// Message draws the perturbation of one received message given the
// network's base one-way latency. Exactly three underlying events are
// consumed when no drop occurs (jitter, degradation, first drop trial), so
// the draw sequence — and with it every downstream perturbation — is
// invariant under pure magnitude rescaling of the jitter knob.
func (r *Rank) Message(latencySec float64) MsgFault {
	f := MsgFault{WireFactor: 1}
	f.ExtraLatencySec = r.next() * r.cfg.LatencyJitterFrac * latencySec
	if u := r.next(); r.cfg.DegradeFactor > 1 && u < r.cfg.DegradeProb {
		f.WireFactor = r.cfg.DegradeFactor
	}
	max := r.cfg.maxRetries()
	for f.Retries < max && r.next() < r.cfg.DropProb {
		f.Retries++
	}
	return f
}

// Collective draws the extra virtual time injected into one collective of
// the given unperturbed cost: uniform in [0, LatencyJitterFrac)·cost, plus
// a full-cost stretch when the fabric is transiently degraded. One or two
// events are consumed per call.
func (r *Rank) Collective(costSec float64) float64 {
	if costSec <= 0 {
		return 0
	}
	extra := r.next() * r.cfg.LatencyJitterFrac * costSec
	if u := r.next(); r.cfg.DegradeFactor > 1 && u < r.cfg.DegradeProb {
		extra += (r.cfg.DegradeFactor - 1) * costSec
	}
	return extra
}

// ComputeFactor returns the rank's persistent compute slowdown: 1 for a
// healthy rank, StragglerSlowdown for a straggler.
func (r *Rank) ComputeFactor() float64 { return r.slow }

// Straggler reports whether the rank was selected as a straggler.
func (r *Rank) Straggler() bool { return r.slow > 1 }

// BackoffSec exposes the config's backoff schedule on the injector, so the
// runtime holding only the *Rank can charge retry time.
func (r *Rank) BackoffSec(retries int) float64 { return r.cfg.BackoffSec(retries) }

// ParseSpec parses the CLI chaos specification: a comma-separated list of
// key=value pairs. Keys:
//
//	seed=N            PRNG seed (uint64)
//	jitter=F          LatencyJitterFrac
//	drop=F            DropProb
//	timeout=D         RetryTimeoutSec (Go duration, e.g. 1ms)
//	retries=N         MaxRetries
//	degradeprob=F     DegradeProb
//	degradefactor=F   DegradeFactor
//	straggler=F       StragglerFrac
//	slowdown=F        StragglerSlowdown
//	gear=D            GearSwitchSec (Go duration, e.g. 50us)
//
// An empty spec returns the zero (disabled) config. The parsed config is
// validated before being returned.
func ParseSpec(spec string) (Config, error) {
	var c Config
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Config{}, fmt.Errorf("faults: spec entry %q is not key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			c.Seed, err = strconv.ParseUint(v, 10, 64)
		case "jitter":
			c.LatencyJitterFrac, err = strconv.ParseFloat(v, 64)
		case "drop":
			c.DropProb, err = strconv.ParseFloat(v, 64)
		case "timeout":
			var d time.Duration
			d, err = time.ParseDuration(v)
			c.RetryTimeoutSec = units.Seconds(d.Seconds())
		case "retries":
			c.MaxRetries, err = strconv.Atoi(v)
		case "degradeprob":
			c.DegradeProb, err = strconv.ParseFloat(v, 64)
		case "degradefactor":
			c.DegradeFactor, err = strconv.ParseFloat(v, 64)
		case "straggler":
			c.StragglerFrac, err = strconv.ParseFloat(v, 64)
		case "slowdown":
			c.StragglerSlowdown, err = strconv.ParseFloat(v, 64)
		case "gear":
			var d time.Duration
			d, err = time.ParseDuration(v)
			c.GearSwitchSec = units.Seconds(d.Seconds())
		default:
			return Config{}, fmt.Errorf("faults: unknown spec key %q", k)
		}
		if err != nil {
			return Config{}, fmt.Errorf("faults: spec %s=%s: %w", k, v, err)
		}
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}
