package npb

import (
	"math/cmplx"
	"testing"

	"pasp/internal/papi"
	"pasp/internal/stats"
)

// Golden numerics: the kernels are deterministic (fixed NPB randlc seeds),
// so their results are pinned here as a regression net. A drift means the
// numerics changed, not just the timing model.
func TestFTGoldenChecksums(t *testing.T) {
	ft := FT{Nx: 16, Ny: 16, Nz: 16, Iters: 3}
	res, _, err := ft.Run(npbWorld(1, 600))
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{
		complex(5.040000139636e+02, 6.195234077961e+02),
		complex(5.039629294924e+02, 6.192056141144e+02),
		complex(5.039261046967e+02, 6.188889231340e+02),
	}
	if len(res.Checksums) != len(want) {
		t.Fatalf("got %d checksums", len(res.Checksums))
	}
	for i := range want {
		if d := cmplx.Abs(res.Checksums[i] - want[i]); d > 1e-7 {
			t.Errorf("iter %d: checksum %v, want %v (|Δ| = %g)", i, res.Checksums[i], want[i], d)
		}
	}
}

func TestSPGoldenValues(t *testing.T) {
	sp := SP{N: 16, Steps: 3}
	res, _, err := sp.Run(npbWorld(1, 600))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(res.Heat0, 2.071068810413e+03, 1e-9) {
		t.Errorf("Heat0 = %.12e", res.Heat0)
	}
	if !stats.AlmostEqual(res.Heat, 1.453324862953e+03, 1e-9) {
		t.Errorf("Heat = %.12e", res.Heat)
	}
	if !stats.AlmostEqual(res.Checksum, 1.874737059429e+02, 1e-9) {
		t.Errorf("Checksum = %.12e", res.Checksum)
	}
}

// Scale semantics must be uniform across kernels: doubling the workload
// multiplier doubles the billed instruction count without touching the
// verifiable numerics.
func TestScaleSemanticsAcrossKernels(t *testing.T) {
	type run func(scale float64) (papiTot float64, checksum float64)
	cases := []struct {
		name string
		run  run
	}{
		{"FT", func(k float64) (float64, float64) {
			ft := FT{Nx: 16, Ny: 16, Nz: 8, Iters: 1, Scale: k}
			res, r, err := ft.Run(npbWorld(2, 600))
			if err != nil {
				t.Fatal(err)
			}
			return r.Counters.Get(papi.TotIns), real(res.Checksums[0])
		}},
		{"CG", func(k float64) (float64, float64) {
			cg := CG{Size: 256, OuterIters: 1, CGIters: 5, Scale: k}
			res, r, err := cg.Run(npbWorld(2, 600))
			if err != nil {
				t.Fatal(err)
			}
			return r.Counters.Get(papi.TotIns), res.Zeta
		}},
		{"MG", func(k float64) (float64, float64) {
			mg := MG{Size: 15, Cycles: 1, Scale: k}
			res, r, err := mg.Run(npbWorld(2, 600))
			if err != nil {
				t.Fatal(err)
			}
			return r.Counters.Get(papi.TotIns), res.Residuals[0]
		}},
		{"SP-ncomp", func(k float64) (float64, float64) {
			sp := SP{N: 16, Steps: 1, Ncomp: int(5 * k)}
			res, r, err := sp.Run(npbWorld(2, 600))
			if err != nil {
				t.Fatal(err)
			}
			return r.Counters.Get(papi.TotIns), res.Checksum
		}},
	}
	for _, tc := range cases {
		tot1, chk1 := tc.run(1)
		tot2, chk2 := tc.run(2)
		if !stats.AlmostEqual(tot2, 2*tot1, 0.01) {
			t.Errorf("%s: TOT_INS ratio %.3f, want 2", tc.name, tot2/tot1)
		}
		if chk1 != chk2 {
			t.Errorf("%s: scaling changed the numerics: %g vs %g", tc.name, chk1, chk2)
		}
	}
}
