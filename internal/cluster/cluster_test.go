package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"pasp/internal/faults"
	"pasp/internal/machine"
	"pasp/internal/mpi"
)

func TestPentiumMValid(t *testing.T) {
	if err := PentiumM().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorldBounds(t *testing.T) {
	p := PentiumM()
	if _, err := p.World(0, 600); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := p.World(17, 600); err == nil {
		t.Error("17 nodes accepted on a 16-node cluster")
	}
	if _, err := p.World(4, 700); err == nil {
		t.Error("unavailable frequency accepted")
	}
	w, err := p.World(4, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if w.State.Voltage != 1.436 {
		t.Errorf("voltage %g, want 1.436 (Table 2)", w.State.Voltage)
	}
}

func TestPaperGrid(t *testing.T) {
	g := PaperGrid()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Ns) != 5 || len(g.MHz) != 5 {
		t.Errorf("grid is %dx%d, want 5x5", len(g.Ns), len(g.MHz))
	}
	if g.Ns[4] != 16 || g.MHz[0] != 600 {
		t.Error("grid corners wrong")
	}
}

func TestGridValidateRejects(t *testing.T) {
	bad := []Grid{
		{},
		{Ns: []int{1}, MHz: nil},
		{Ns: []int{1, 1}, MHz: []float64{600}},
		{Ns: []int{1, 2}, MHz: []float64{800, 600}},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad grid %d accepted", i)
		}
	}
}

func TestSweepRunsEveryCell(t *testing.T) {
	p := PentiumM()
	g := Grid{Ns: []int{1, 2, 4}, MHz: []float64{600, 1400}}
	cells, err := Sweep(context.Background(), p, g, func(w mpi.World) (*mpi.Result, error) {
		return mpi.Run(w, func(c *mpi.Ctx) error {
			return c.Compute(machine.W(1e6*float64(c.Size()), 0, 0, 0))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	seen := map[[2]float64]bool{}
	for _, c := range cells {
		if c.Res == nil {
			t.Fatalf("cell N=%d f=%g has no result", c.N, c.MHz)
		}
		if c.Res.Seconds <= 0 {
			t.Errorf("cell N=%d f=%g has zero time", c.N, c.MHz)
		}
		seen[[2]float64{float64(c.N), c.MHz}] = true
	}
	if len(seen) != 6 {
		t.Errorf("duplicate cells: %v", seen)
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	boom := errors.New("kernel failed")
	_, err := Sweep(context.Background(), PentiumM(), Grid{Ns: []int{1}, MHz: []float64{600}}, func(w mpi.World) (*mpi.Result, error) {
		return nil, boom
	})
	if err == nil || !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestSweepDeterministicAcrossRuns(t *testing.T) {
	p := PentiumM()
	g := Grid{Ns: []int{1, 2}, MHz: []float64{600, 1000}}
	run := func() []float64 {
		cells, err := Sweep(context.Background(), p, g, func(w mpi.World) (*mpi.Result, error) {
			return mpi.Run(w, func(c *mpi.Ctx) error {
				if err := c.Compute(machine.W(1e7, 1e6, 0, 1e5)); err != nil {
					return err
				}
				return c.Barrier()
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(cells))
		for i, c := range cells {
			out[i] = c.Res.Seconds
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("cell %d diverges across sweeps: %g vs %g", i, a[i], b[i])
		}
	}
}

// sweepBytes runs one sweep of a small chaos-enabled campaign and folds
// every cell into one byte string: the full timeline CSV plus the exact
// time/energy of each cell, in grid order.
func sweepBytes(t *testing.T, p Platform) string {
	t.Helper()
	g := Grid{Ns: []int{1, 2, 4}, MHz: []float64{600, 1000, 1400}}
	cells, err := Sweep(context.Background(), p, g, func(w mpi.World) (*mpi.Result, error) {
		return mpi.Run(w, func(c *mpi.Ctx) error {
			c.SetPhase("work")
			if err := c.Compute(machine.W(1e6, 1e5, 0, 1e4)); err != nil {
				return err
			}
			if c.Size() > 1 {
				peer := (c.Rank() + 1) % c.Size()
				if err := c.Send(peer, 1, []float64{float64(c.Rank())}, 8); err != nil {
					return err
				}
				got, err := c.Recv((c.Rank()+c.Size()-1)%c.Size(), 1)
				if err != nil {
					return err
				}
				c.Free(got)
			}
			_, err := c.Allreduce([]float64{1}, mpi.Sum, 8)
			return err
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, c := range cells {
		fmt.Fprintf(&b, "N=%d f=%g %.17g s %.17g J\n%s", c.N, c.MHz, c.Res.Seconds, c.Res.Joules, c.Res.Trace.TimelineCSV())
	}
	return b.String()
}

// TestSweepGOMAXPROCSDeterminism pins the campaign worker pool's
// scheduling independence: the same sweep must produce the same bytes with
// the pool serialized (GOMAXPROCS=1), at a modest width and oversubscribed
// (GOMAXPROCS=8 against 3 sweep units), on both engines and with the event
// engine's record/replay frequency axis in play. Work distribution may
// change; bytes may not.
func TestSweepGOMAXPROCSDeterminism(t *testing.T) {
	for _, eng := range []mpi.Engine{mpi.EngineGoroutine, mpi.EngineEvent} {
		p := PentiumM()
		p.Engine = eng
		p.Faults = faults.Config{Seed: 11, LatencyJitterFrac: 0.5, DropProb: 0.05}
		base := sweepBytes(t, p)
		for _, procs := range []int{1, 2, 8} {
			prev := runtime.GOMAXPROCS(procs)
			got := sweepBytes(t, p)
			runtime.GOMAXPROCS(prev)
			if got != base {
				t.Errorf("%s engine: sweep bytes changed under GOMAXPROCS=%d", eng, procs)
			}
		}
	}
}
