package machine

import (
	"fmt"
	"math"

	"pasp/internal/units"
)

// Work is an instruction mix: how many instructions execute with data at
// each memory level. It is the unit of the paper's workload decomposition —
// wON is Ops[Reg]+Ops[L1]+Ops[L2] and wOFF is Ops[Mem].
type Work struct {
	// Ops[l] is the instruction count at level l. Counts are float64 so
	// analytic locality models can produce fractional splits.
	Ops [NumLevels]float64
}

// W is a convenience constructor for a Work value.
func W(reg, l1, l2, mem float64) Work {
	return Work{Ops: [NumLevels]float64{Reg: reg, L1: l1, L2: l2, Mem: mem}}
}

// Total returns the total instruction count w = wON + wOFF.
func (w Work) Total() float64 {
	t := 0.0
	for _, n := range w.Ops {
		t += n
	}
	return t
}

// OnChip returns wON, the instruction count served by on-die resources.
func (w Work) OnChip() float64 { return w.Ops[Reg] + w.Ops[L1] + w.Ops[L2] }

// OffChip returns wOFF, the instruction count requiring main-memory access.
func (w Work) OffChip() float64 { return w.Ops[Mem] }

// Add returns the element-wise sum of two mixes.
func (w Work) Add(o Work) Work {
	var r Work
	for l := range w.Ops {
		r.Ops[l] = w.Ops[l] + o.Ops[l]
	}
	return r
}

// Scale returns the mix with every count multiplied by k.
func (w Work) Scale(k float64) Work {
	var r Work
	for l := range w.Ops {
		r.Ops[l] = w.Ops[l] * k
	}
	return r
}

// Fractions returns each level's share of the total instruction count, or
// all zeros for an empty mix.
func (w Work) Fractions() [NumLevels]float64 {
	var f [NumLevels]float64
	t := w.Total()
	if t == 0 {
		return f
	}
	for l := range w.Ops {
		f[l] = w.Ops[l] / t
	}
	return f
}

// Validate reports an error when any count is negative.
func (w Work) Validate() error {
	for l, n := range w.Ops {
		if n < 0 {
			return fmt.Errorf("machine: negative op count %g at %v", n, Level(l))
		}
	}
	return nil
}

// TimeFor returns the wall-clock time the mix takes on one node at core
// frequency freq. ON-chip instructions cost Cycles[l]/freq; OFF-chip
// instructions cost MemNanos(freq); a MemOverlap share of whichever side is
// shorter is hidden by out-of-order execution. With MemOverlap = 0 this is
// exactly the paper's additive Eq. 6.
func (c Config) TimeFor(w Work, freq units.Hertz) units.Seconds {
	on := units.Seconds(0)
	for l := Reg; l <= L2; l++ {
		on += units.Cycles(w.Ops[l] * c.Cycles[l]).At(freq)
	}
	mem := c.MemNanos(freq).Sec().Times(w.Ops[Mem])
	hidden := units.Seconds(c.MemOverlap * math.Min(float64(on), float64(mem)))
	return on + mem - hidden
}

// BlendedCPIOn returns the average cycles per ON-chip instruction under the
// mix's ON-chip level weights — the CPION of Table 6. It returns an error
// when the mix has no ON-chip work.
func (c Config) BlendedCPIOn(w Work) (float64, error) {
	on := w.OnChip()
	if on == 0 {
		return 0, fmt.Errorf("machine: BlendedCPIOn of mix with no ON-chip work")
	}
	sum := 0.0
	for l := Reg; l <= L2; l++ {
		sum += w.Ops[l] * c.Cycles[l]
	}
	return sum / on, nil
}
