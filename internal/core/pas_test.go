package core

import (
	"testing"
	"testing/quick"

	"pasp/internal/stats"
	"pasp/internal/units"
)

func TestTermsEq12Reduction(t *testing.T) {
	// A fully parallelizable ON-chip workload with no overhead reduces
	// Eq. 11 to Eq. 12: S = N·(f/f0).
	terms := Terms{ParOn: 100}
	for _, n := range []int{1, 2, 8, 16} {
		for _, r := range []units.Ratio{1, 4.0 / 3, 2, 7.0 / 3} {
			s, err := terms.Speedup(n, r)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := EPSpeedup(n, r)
			if !stats.AlmostEqual(s, want, 1e-12) {
				t.Errorf("N=%d r=%g: Eq.11 %g ≠ Eq.12 %g", n, float64(r), s, want)
			}
		}
	}
}

func TestTermsSerialFractionCapsSpeedup(t *testing.T) {
	// With a serial ON-chip component, N→∞ at base frequency approaches
	// Amdahl's bound T1/Tserial.
	terms := Terms{SeqOn: 10, ParOn: 90}
	s, err := terms.Speedup(1_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(s, 10, 0.01) {
		t.Errorf("asymptotic speedup %g, want ≈ 10", s)
	}
}

func TestTermsOffChipCapsFrequencySpeedup(t *testing.T) {
	// With an OFF-chip share, frequency scaling alone saturates below f/f0.
	terms := Terms{ParOn: 66, ParOff: 34}
	s, err := terms.Speedup(1, 1400.0/600)
	if err != nil {
		t.Fatal(err)
	}
	if s >= 1400.0/600 {
		t.Errorf("frequency speedup %g not sublinear", s)
	}
	// The paper's FT observation: about 1.6 at 1400 MHz for a ~66% ON-chip
	// workload.
	if s < 1.4 || s > 1.8 {
		t.Errorf("frequency speedup %g outside FT-like band", s)
	}
}

func TestTermsOverheadDiminishesFrequencyEffect(t *testing.T) {
	// The paper's key FT observation: as N grows, OFF-chip overhead
	// dominates and the benefit of frequency scaling shrinks.
	terms := FTTerms(90, 10, func(n int) float64 { return 3 * float64(n-1) })
	gain := func(n int) float64 {
		s600, err := terms.Speedup(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		s1400, err := terms.Speedup(n, 1400.0/600)
		if err != nil {
			t.Fatal(err)
		}
		return s1400 / s600
	}
	if g2, g16 := gain(2), gain(16); g16 >= g2 {
		t.Errorf("frequency gain did not diminish with N: %g at N=2 vs %g at N=16", g2, g16)
	}
}

func TestTermsOverheadIgnoredAtN1(t *testing.T) {
	terms := Terms{ParOn: 50, POOff: func(n int) float64 { return 100 }}
	t1, err := terms.Time(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != 50 {
		t.Errorf("T(1,1) = %g, want 50 (no overhead on one processor)", t1)
	}
}

func TestTermsValidation(t *testing.T) {
	if _, err := (Terms{SeqOn: -1}).Time(1, 1); err == nil {
		t.Error("negative component accepted")
	}
	if _, err := (Terms{ParOn: 1}).Time(0, 1); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := (Terms{ParOn: 1}).Time(1, 0); err == nil {
		t.Error("zero ratio accepted")
	}
	if _, err := EPSpeedup(0, 1); err == nil {
		t.Error("EPSpeedup N=0 accepted")
	}
}

// Property: speedup never exceeds N·r (the Eq. 12 ideal) for any
// decomposition with non-negative components.
func TestSpeedupBoundedByIdealProperty(t *testing.T) {
	f := func(seqOn, seqOff, parOn, parOff uint16, nRaw, rRaw uint8) bool {
		terms := Terms{
			SeqOn:  float64(seqOn),
			SeqOff: float64(seqOff),
			ParOn:  float64(parOn) + 1, // keep T1 > 0
			ParOff: float64(parOff),
		}
		n := int(nRaw)%16 + 1
		r := units.Ratio(1 + float64(rRaw)/128)
		s, err := terms.Speedup(n, r)
		if err != nil {
			return false
		}
		return s <= float64(n)*float64(r)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: speedup is monotone in the frequency ratio.
func TestSpeedupMonotoneInFrequencyProperty(t *testing.T) {
	terms := Terms{SeqOn: 5, SeqOff: 2, ParOn: 80, ParOff: 13,
		POOff: func(n int) float64 { return 0.5 * float64(n) }}
	f := func(nRaw, aRaw, bRaw uint8) bool {
		n := int(nRaw)%16 + 1
		ra := units.Ratio(1 + float64(aRaw)/200)
		rb := units.Ratio(1 + float64(bRaw)/200)
		if ra > rb {
			ra, rb = rb, ra
		}
		sa, err1 := terms.Speedup(n, ra)
		sb, err2 := terms.Speedup(n, rb)
		return err1 == nil && err2 == nil && sa <= sb+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
