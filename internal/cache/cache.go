// Package cache implements a trace-driven set-associative cache simulator.
//
// The paper derives its fine-grain model parameters from hardware: PAPI
// event counters classify instructions by the memory level that served them,
// and LMbench measures each level's latency. Our substrate has no hardware,
// so this package provides the equivalent ground truth: a two-level
// write-allocate LRU cache hierarchy that the lmbench-style microbenchmark
// (package lmbench) drives with real address streams, and against which the
// analytic locality models used by the kernels can be validated.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the block size.
	LineBytes int
	// Ways is the associativity. SizeBytes must be divisible by
	// LineBytes×Ways.
	Ways int
}

// Validate reports an error for an inconsistent geometry.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible by line×ways = %d", c.SizeBytes, c.LineBytes*c.Ways)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Cache is a single set-associative level with true-LRU replacement.
type Cache struct {
	cfg       Config
	sets      [][]uint64 // each set holds tags in MRU-first order
	lineShift uint
	setMask   uint64
	hits      uint64
	misses    uint64
}

// New returns an empty cache with the given geometry.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]uint64, nsets),
		setMask: uint64(nsets - 1),
	}
	for s := cfg.LineBytes; s > 1; s >>= 1 {
		c.lineShift++
	}
	for i := range c.sets {
		c.sets[i] = make([]uint64, 0, cfg.Ways)
	}
	return c, nil
}

// Access touches the byte address and returns true on a hit. On a miss the
// line is filled, evicting the LRU line when the set is full.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineShift
	set := c.sets[line&c.setMask]
	for i, tag := range set {
		if tag == line {
			// Move to MRU position.
			copy(set[1:i+1], set[:i])
			set[0] = line
			c.hits++
			return true
		}
	}
	c.misses++
	if len(set) < c.cfg.Ways {
		set = append(set, 0)
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = line
	c.sets[line&c.setMask] = set
	return false
}

// Hits returns the number of accesses served by this level.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of accesses that missed this level.
func (c *Cache) Misses() uint64 { return c.misses }

// Accesses returns the total number of accesses observed.
func (c *Cache) Accesses() uint64 { return c.hits + c.misses }

// ResetCounters clears the hit/miss counters without disturbing contents.
func (c *Cache) ResetCounters() { c.hits, c.misses = 0, 0 }

// Flush empties the cache contents and counters.
func (c *Cache) Flush() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.ResetCounters()
}

// Where identifies the level of the hierarchy that served an access.
type Where int

const (
	// InL1 means the access hit the first-level cache.
	InL1 Where = iota
	// InL2 means the access missed L1 but hit the second-level cache.
	InL2
	// InMem means the access missed both caches.
	InMem
)

// String names the serving level.
func (w Where) String() string {
	switch w {
	case InL1:
		return "L1"
	case InL2:
		return "L2"
	default:
		return "Mem"
	}
}

// Hierarchy is an inclusive two-level cache (L1 backed by L2), matching the
// Pentium M's on-die 32 KB L1D + 1 MB L2 arrangement.
type Hierarchy struct {
	// L1 and L2 are the two levels; both are accessed on an L1 miss
	// (inclusive fill).
	L1, L2 *Cache
}

// NewHierarchy builds a two-level hierarchy from the given geometries.
func NewHierarchy(l1, l2 Config) (*Hierarchy, error) {
	a, err := New(l1)
	if err != nil {
		return nil, fmt.Errorf("cache: L1: %w", err)
	}
	b, err := New(l2)
	if err != nil {
		return nil, fmt.Errorf("cache: L2: %w", err)
	}
	if l2.SizeBytes < l1.SizeBytes {
		return nil, fmt.Errorf("cache: L2 (%d B) smaller than L1 (%d B)", l2.SizeBytes, l1.SizeBytes)
	}
	return &Hierarchy{L1: a, L2: b}, nil
}

// PentiumM returns a hierarchy with the paper platform's geometry:
// 32 KB 8-way L1D and 1 MB 8-way L2, both with 64-byte lines.
func PentiumM() (*Hierarchy, error) {
	h, err := NewHierarchy(
		Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
		Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 8},
	)
	if err != nil {
		return nil, fmt.Errorf("cache: PentiumM geometry: %w", err)
	}
	return h, nil
}

// Access touches addr and returns the level that served it.
func (h *Hierarchy) Access(addr uint64) Where {
	if h.L1.Access(addr) {
		return InL1
	}
	if h.L2.Access(addr) {
		return InL2
	}
	return InMem
}

// Flush empties both levels.
func (h *Hierarchy) Flush() {
	h.L1.Flush()
	h.L2.Flush()
}
