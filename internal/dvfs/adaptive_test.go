package dvfs

import (
	"testing"

	"pasp/internal/cluster"
	"pasp/internal/mpi"
	"pasp/internal/npb"
	"pasp/internal/power"
)

func TestAdaptiveValidate(t *testing.T) {
	ok := &Adaptive{Prof: power.PentiumM(), SwitchSec: 50e-6}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid tuner rejected: %v", err)
	}
	if err := (&Adaptive{Prof: power.Profile{}}).Validate(); err == nil {
		t.Error("empty profile accepted")
	}
	if err := (&Adaptive{Prof: power.PentiumM(), SwitchSec: -1}).Validate(); err == nil {
		t.Error("negative switch accepted")
	}
	if err := (&Adaptive{Prof: power.PentiumM(), Explore: -1}).Validate(); err == nil {
		t.Error("negative exploration accepted")
	}
}

// On a workload with many iterations the tuner must converge: the
// communication phase ends up at a low gear, the compute phases stay high,
// and the run saves energy against the all-top baseline.
func TestAdaptiveConvergesOnFT(t *testing.T) {
	p := cluster.PentiumM()
	w, err := p.World(4, 1400)
	if err != nil {
		t.Fatal(err)
	}
	// Enough iterations that exploration (2 visits × 5 gears per phase)
	// finishes with plenty of exploitation left.
	ft := npb.FT{Nx: 16, Ny: 16, Nz: 16, Iters: 24, Scale: 64}
	a := &Adaptive{Prof: p.Prof, SwitchSec: 50e-6}
	cmp, chosen, err := CompareAdaptive(w, a, func(w2 mpi.World) (*mpi.Result, error) {
		_, r, err := ft.Run(w2)
		return r, err
	})
	if err != nil {
		t.Fatal(err)
	}
	alltoall, ok := chosen["ft-alltoall"]
	if !ok {
		t.Fatalf("alltoall never converged: %v", chosen)
	}
	if alltoall.Freq >= p.Prof.TopState().Freq {
		t.Errorf("alltoall converged to %v, want a derated gear", alltoall)
	}
	if fft, ok := chosen["ft-fft-x"]; ok && fft.Freq < 1000e6 {
		t.Errorf("fft-x converged to %v; compute should stay fast", fft)
	}
	if cmp.EnergySavings() < 0.05 {
		t.Errorf("adaptive tuner saves only %.1f%% energy", cmp.EnergySavings()*100)
	}
	if cmp.Slowdown() > 0.20 {
		t.Errorf("adaptive tuner slows down %.1f%%", cmp.Slowdown()*100)
	}
}

func TestAdaptiveDeterministic(t *testing.T) {
	p := cluster.PentiumM()
	ft := npb.FT{Nx: 16, Ny: 16, Nz: 8, Iters: 12, Scale: 16}
	run := func() (float64, float64) {
		w, err := p.World(4, 1400)
		if err != nil {
			t.Fatal(err)
		}
		a := &Adaptive{Prof: p.Prof, SwitchSec: 50e-6}
		sched, err := a.Apply(w)
		if err != nil {
			t.Fatal(err)
		}
		_, r, err := ft.Run(sched)
		if err != nil {
			t.Fatal(err)
		}
		return r.Seconds, r.Joules
	}
	s1, j1 := run()
	s2, j2 := run()
	if s1 != s2 || j1 != j2 {
		t.Errorf("adaptive runs diverge: %g/%g vs %g/%g", s1, j1, s2, j2)
	}
}

func TestAdaptiveChosenEmptyBeforeRun(t *testing.T) {
	a := &Adaptive{Prof: power.PentiumM()}
	if got := a.Chosen(0); len(got) != 0 {
		t.Errorf("chosen gears before any run: %v", got)
	}
}
