// Package deadlock seeds p2p protocol failures: rendezvous cycles, tag
// mismatches, unmatched endpoints, lost buffered messages, collective
// stragglers and self-sends.
package deadlock

import mpi "pasp/internal/analysis/testdata/src/mpistub"

// BadRingSendFirst sends before receiving on every rank: nobody reaches
// Recv and the wait-for graph is one big cycle.
func BadRingSendFirst(c *mpi.Ctx) error {
	n := c.Size()
	next := (c.Rank() + 1) % n
	prev := (c.Rank() - 1 + n) % n
	if err := c.Send(next, 7, nil, 8); err != nil { // want: rendezvous cycle
		return err
	}
	got, err := c.Recv(prev, 7)
	if err != nil {
		return err
	}
	c.Free(got)
	return nil
}

// BadSelfSend targets the executing rank itself.
func BadSelfSend(c *mpi.Ctx) error {
	return c.Send(c.Rank(), 1, nil, 8) // want: self-send
}

// BadTagMismatch pairs a send and a receive that disagree on the tag.
func BadTagMismatch(c *mpi.Ctx) error {
	if c.Rank() == 0 {
		return c.Send(1, 10, nil, 8)
	}
	if c.Rank() == 1 {
		_, err := c.Recv(0, 11) // want: tag mismatch
		return err
	}
	return nil
}

// BadForgottenRecv sends with no receive anywhere in the protocol.
func BadForgottenRecv(c *mpi.Ctx) error {
	if c.Rank() == 0 {
		return c.Send(1, 5, nil, 8) // want: unmatched endpoint
	}
	return nil
}

// BadLostExchange posts a buffered exchange half that the peer never
// drains: rank 1 sends but never receives rank 0's counterpart.
func BadLostExchange(c *mpi.Ctx) error {
	if c.Rank() == 0 {
		_, err := c.SendRecv(1, 1, 6, nil, 8) // want: message never received
		return err
	}
	if c.Rank() == 1 {
		return c.Send(0, 6, nil, 8)
	}
	return nil
}

// BadCollectiveStraggler lets rank 0 return before the barrier every other
// rank enters.
func BadCollectiveStraggler(c *mpi.Ctx) error {
	if c.Rank()%2 == 0 {
		if err := c.Send(c.Rank()+1, 3, nil, 8); err != nil {
			return err
		}
	} else {
		got, err := c.Recv(c.Rank()-1, 3)
		if err != nil {
			return err
		}
		c.Free(got)
	}
	if c.Rank() == 0 {
		return nil
	}
	return c.Barrier() // want: collective straggler
}

// GoodXorExchange is clean: the full-duplex exchange posts its send
// buffered, so symmetric pairs cannot cycle.
func GoodXorExchange(c *mpi.Ctx) error {
	peer := c.Rank() ^ 1
	got, err := c.SendRecv(peer, peer, 2, nil, 8)
	if err != nil {
		return err
	}
	c.Free(got)
	return nil
}

// GoodPipelinedShift is clean: rank 0 anchors the chain, everyone else
// receives before sending.
func GoodPipelinedShift(c *mpi.Ctx) error {
	if c.Rank() > 0 {
		got, err := c.Recv(c.Rank()-1, 4)
		if err != nil {
			return err
		}
		c.Free(got)
	}
	if c.Rank() < c.Size()-1 {
		return c.Send(c.Rank()+1, 4, nil, 8)
	}
	return nil
}

// GoodSendRecvRing is clean: every rank's send is buffered by SendRecv, so
// the ring drains.
func GoodSendRecvRing(c *mpi.Ctx) error {
	n := c.Size()
	got, err := c.SendRecv((c.Rank()+1)%n, (c.Rank()-1+n)%n, 12, nil, 8)
	if err != nil {
		return err
	}
	c.Free(got)
	return nil
}

// SuppressedHandshake carries a sanctioned one-sided send.
func SuppressedHandshake(c *mpi.Ctx) error {
	if c.Rank() != 0 {
		return nil
	}
	return c.Send(1, 9, nil, 8) //palint:ignore deadlock -- the controller side of this handshake lives outside the analyzed tree
}
