package mpi

import (
	"pasp/internal/machine"
	"pasp/internal/obs"
	"pasp/internal/trace"
)

// beginObserve opens the recorder's run span with the platform attributes
// the observability layer promises (N, f, CPI terms, interconnect) and
// allocates the per-rank phase-span logs. Called once per Run, before the
// rank goroutines start, so every Ctx can pick up its RankLog in newCtx.
func beginObserve(w World) {
	w.Obs.BeginRun(w.N, 0,
		obs.F("n", float64(w.N)),
		obs.F("mhz", w.State.Freq.MHz()),
		obs.F("pollutil", w.PollUtil),
		obs.A("net", w.Net.String()),
		obs.F("cpi_reg", w.Mach.Cycles[machine.Reg]),
		obs.F("cpi_l1", w.Mach.Cycles[machine.L1]),
		obs.F("cpi_l2", w.Mach.Cycles[machine.L2]),
		obs.F("mem_ns_fast", float64(w.Mach.MemNanosFast)),
	)
}

// observeRun seals the recorder after aggregate: it closes each rank's
// phase log at the rank's final clock, ends the run span at the makespan,
// and fills the recorder's registry from the aggregated result. Metrics are
// derived off the hot path — only the message-size histogram and the phase
// spans record during simulation — so enabling observability perturbs no
// virtual timing.
func observeRun(w World, ctxs []*Ctx, res *Result) {
	rec := w.Obs
	for _, c := range ctxs {
		rec.Rank(c.rank).Finish(c.clock)
	}
	rec.EndRun(res.Seconds)
	rec.AddRunAttrs(obs.F("joules", res.Joules))

	reg := rec.Metrics()
	reg.Counter("mpi.runs").Inc()
	gears := 0
	for _, c := range ctxs {
		gears += c.gearSwitches
	}
	reg.Counter("mpi.gear_switches").Add(float64(gears))
	msgs, msgBytes, retries := 0, 0, 0
	for _, s := range res.PerRank {
		msgs += s.Msgs
		msgBytes += s.MsgBytes
		retries += s.Retries
	}
	reg.Counter("mpi.msgs").Add(float64(msgs))
	reg.Counter("mpi.wire_bytes").Add(float64(msgBytes))
	reg.Counter("mpi.retries").Add(float64(retries))
	byKind := res.Trace.TotalByKind()
	for k := trace.Kind(0); k < trace.NumKinds; k++ {
		reg.Counter("mpi.virtual_seconds." + k.String()).Add(byKind[k])
	}
	reg.Gauge("mpi.makespan_seconds").Set(res.Seconds)
	reg.Gauge("mpi.joules").Set(res.Joules)
	reg.Gauge("mpi.avg_watts").Set(res.AvgWatts())
	rankSec := reg.Histogram("mpi.rank_seconds", obs.SecondsBuckets)
	for _, c := range ctxs {
		rankSec.Observe(c.clock)
	}
}
