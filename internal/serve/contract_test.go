package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"pasp/internal/cluster"
	"pasp/internal/experiments"
	"pasp/internal/mpi"
	"pasp/internal/obs"
)

// updateGolden regenerates testdata/contract when PASP_UPDATE_GOLDEN is
// set: go test ./internal/serve -run TestPredictContractGolden -count=1
// with PASP_UPDATE_GOLDEN=1 in the environment.
var updateGolden = os.Getenv("PASP_UPDATE_GOLDEN") != ""

// contractNs are the processor counts the contract covers; kernels whose
// grid stops earlier (LU ends at 8) simply contribute fewer rows.
var contractNs = []int{2, 4, 8, 16}

// contractGears are the two frequency gears of the contract.
var contractGears = []float64{600, 1400}

// TestPredictContractGolden pins the full response contract: for every
// kernel, every contract (N, f) on its grid, the POST /predict body must
// be byte-identical to the committed golden — under both engines. The two
// engine passes compare against the *same* files, which is the proof that
// responses are engine-free: the engines are timing-equivalent by
// construction and nothing else may leak into the bytes.
func TestPredictContractGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale campaigns skipped in -short mode")
	}
	for _, engine := range []mpi.Engine{mpi.EngineEvent, mpi.EngineGoroutine} {
		t.Run(string(engine), func(t *testing.T) {
			s := experiments.Paper()
			s.Platform.Engine = engine
			srv := New(Config{Suite: s, SuiteName: "paper", MaxInFlight: 2, Registry: obs.NewRegistry()})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			for _, name := range s.KernelNames() {
				k, err := s.Kernel(name)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				for _, n := range contractNs {
					for _, f := range contractGears {
						if !onGrid(k.Grid, n, f) {
							continue
						}
						body := fmt.Sprintf(`{"kernel":%q,"n":%d,"f":%g}`, name, n, f)
						resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(body))
						if err != nil {
							t.Fatal(err)
						}
						data := make([]byte, 0, 512)
						data, rerr := appendBody(data, resp)
						if rerr != nil {
							t.Fatal(rerr)
						}
						if resp.StatusCode != http.StatusOK {
							t.Fatalf("%s n=%d f=%g: status %d (%s)", name, n, f, resp.StatusCode, data)
						}
						fmt.Fprintf(&buf, "predict %s n=%d f=%g\n", name, n, f)
						buf.Write(data)
					}
				}
				golden := filepath.Join("testdata", "contract", name+".golden")
				if updateGolden && engine == mpi.EngineEvent {
					if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
						t.Fatal(err)
					}
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("missing golden (regenerate with PASP_UPDATE_GOLDEN=1): %v", err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Errorf("%s contract drifted from %s under engine %s\ngot:\n%swant:\n%s",
						name, golden, engine, buf.Bytes(), want)
				}
			}
		})
	}
}

// appendBody drains resp into dst and closes it.
func appendBody(dst []byte, resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	buf := bytes.NewBuffer(dst)
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// TestPredictBytesStableAcrossGOMAXPROCS sweeps the same campaign at
// GOMAXPROCS 1, 2 and 8 — exercising one, some and many sweep workers —
// and requires the rendered prediction bytes to be identical, then checks
// the served HTTP body (whose campaign the store measured at whatever
// parallelism the process had) says exactly the same thing. This is the
// end-to-end form of the sweep-determinism guarantee: worker scheduling
// must never reach the response.
func TestPredictBytesStableAcrossGOMAXPROCS(t *testing.T) {
	s := experiments.Quick()
	srv := New(Config{Suite: s, Registry: obs.NewRegistry()})
	k, err := s.Kernel("ft")
	if err != nil {
		t.Fatal(err)
	}

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	var want []byte
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		cells, err := cluster.Sweep(context.Background(), s.Platform, k.Grid, k.Run)
		if err != nil {
			t.Fatal(err)
		}
		camp := experiments.NewCampaign(cells)
		row, err := srv.predictRow(k, camp, 4, 1400)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(row)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = data
		} else if !bytes.Equal(data, want) {
			t.Fatalf("GOMAXPROCS=%d renders\n%s\nbut GOMAXPROCS=1 rendered\n%s", procs, data, want)
		}
	}
	runtime.GOMAXPROCS(old)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/predict", "application/json",
		strings.NewReader(`{"kernel":"ft","n":4,"f":1400}`))
	if err != nil {
		t.Fatal(err)
	}
	body, err := appendBody(nil, resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("served predict: %d (%s)", resp.StatusCode, body)
	}
	if got := string(body); got != string(want)+"\n" {
		t.Fatalf("served body\n%sdiffers from the directly computed row\n%s", got, want)
	}
}
