package experiments

import (
	"context"
	"fmt"

	"pasp/internal/cluster"
	"pasp/internal/core"
	"pasp/internal/lmbench"
	"pasp/internal/machine"
	"pasp/internal/mpptest"
	"pasp/internal/papi"
	"pasp/internal/table"
	"pasp/internal/units"
)

// Table1 reproduces the paper's motivating example: predicting FT's
// combined speedup as the product of the independently measured
// processor-count and frequency speedups (the Eq. 3 generalization of
// Amdahl's law). The entries are relative errors against the measured
// speedup; the paper reports up to 78%, 45% on average at 16 nodes.
func (s Suite) Table1(ctx context.Context) (*ErrorGrid, error) {
	camp, err := s.MeasureFT(ctx)
	if err != nil {
		return nil, err
	}
	return s.Table1From(camp)
}

// Table1From computes Table 1 from an existing FT campaign.
func (s Suite) Table1From(camp *Campaign) (*ErrorGrid, error) {
	ns := s.Grid.Ns[1:] // the paper's rows start at N=2
	predict := func(n int, f float64) (float64, error) {
		return core.ProductSpeedup(camp.Meas, n, f)
	}
	return errorGridFrom("Table 1: FT speedup error, Eq. 3 product prediction",
		ns, s.Grid.MHz, predict, speedupOf(camp.Meas))
}

// Table2 renders the platform's operating points (frequency and supply
// voltage), the paper's Table 2.
func (s Suite) Table2() string {
	t := table.New("Table 2: operating points", "Frequency", "Supply voltage")
	for i := len(s.Platform.Prof.States) - 1; i >= 0; i-- {
		st := s.Platform.Prof.States[i]
		t.AddRow(fmt.Sprintf("%.0fMHz", st.Freq.MHz()), fmt.Sprintf("%.3fV", float64(st.Voltage)))
	}
	return t.String()
}

// Table3 reproduces the FT prediction errors of the simplified
// parameterization (Eqs. 16–18): fit from the base-frequency column and the
// one-processor row, predict everywhere. The paper reports ≤ ~3%.
func (s Suite) Table3(ctx context.Context) (*ErrorGrid, error) {
	camp, err := s.MeasureFT(ctx)
	if err != nil {
		return nil, err
	}
	return s.Table3From(camp)
}

// Table3From computes Table 3 from an existing FT campaign.
func (s Suite) Table3From(camp *Campaign) (*ErrorGrid, error) {
	sp, err := core.FitSP(camp.Meas)
	if err != nil {
		return nil, err
	}
	ns := s.Grid.Ns[1:]
	return errorGridFrom("Table 3: FT speedup error, SP parameterization (Eq. 18)",
		ns, s.Grid.MHz, sp.PredictSpeedup, speedupOf(camp.Meas))
}

// Table5Result is the LU workload decomposition measured from the
// simulated hardware counters.
type Table5Result struct {
	// Work is the per-level instruction mix.
	Work machine.Work
	// Counters is the raw event snapshot it was derived from.
	Counters papi.Counters
}

// String renders the decomposition in the paper's Table 5 layout.
func (r *Table5Result) String() string {
	t := table.New("Table 5: LU workload measurement and decomposition",
		"Workload", "Memory level", "Derivation", "#ins (x1e9)", "share")
	der := papi.Derivations()
	fr := r.Work.Fractions()
	group := func(l machine.Level) string {
		if l.OnChip() {
			return "ON-chip"
		}
		return "OFF-chip"
	}
	for l := machine.Reg; l < machine.NumLevels; l++ {
		t.AddRow(group(l), l.String(), der[l],
			fmt.Sprintf("%.2f", r.Work.Ops[l]/1e9),
			fmt.Sprintf("%.1f%%", fr[l]*100))
	}
	t.AddRow("", "", "ON-chip total", fmt.Sprintf("%.2f", r.Work.OnChip()/1e9),
		fmt.Sprintf("%.1f%%", r.Work.OnChip()/r.Work.Total()*100))
	t.AddRow("", "", "OFF-chip total", fmt.Sprintf("%.2f", r.Work.OffChip()/1e9),
		fmt.Sprintf("%.1f%%", r.Work.OffChip()/r.Work.Total()*100))
	return t.String()
}

// Table5 measures LU's workload decomposition: run the kernel once on one
// processor with the counters enabled and apply the Table 5 identities.
func (s Suite) Table5() (*Table5Result, error) {
	w, err := s.Platform.World(1, s.Grid.MHz[0])
	if err != nil {
		return nil, err
	}
	_, res, err := s.LU.Run(w)
	if err != nil {
		return nil, err
	}
	work, err := res.Counters.Decompose()
	if err != nil {
		return nil, err
	}
	return &Table5Result{Work: work, Counters: res.Counters}, nil
}

// Table6Result holds the measured seconds-per-instruction rows and the
// communication timings of the paper's Table 6.
type Table6Result struct {
	// MHz is the frequency axis.
	MHz []float64
	// LevelNanos[f][l] is the measured nanoseconds per instruction at each
	// level (LMbench methodology).
	LevelNanos [][machine.NumLevels]units.Nanos
	// CPIOn[f] is the blended ON-chip CPI under the LU instruction mix.
	CPIOn []float64
	// CommSmall and CommLarge are the measured one-way message times in
	// microseconds for the LU message sizes (155 and 310 doubles).
	CommSmall, CommLarge []float64
}

// String renders the Table 6 layout.
func (r *Table6Result) String() string {
	header := make([]string, 0, len(r.MHz)+1)
	header = append(header, "")
	for _, f := range r.MHz {
		header = append(header, fmt.Sprintf("%gMHz", f))
	}
	t := table.New("Table 6: seconds per instruction and per communication", header...)
	t.AddFloats("CPIon (cycles)", "%.2f", r.CPIOn...)
	for l := machine.Reg; l < machine.NumLevels; l++ {
		row := make([]float64, len(r.MHz))
		for i := range r.MHz {
			row[i] = float64(r.LevelNanos[i][l])
		}
		t.AddFloats(l.String()+" (ns/ins)", "%.2f", row...)
	}
	t.AddFloats("155 doubles (us/msg)", "%.1f", r.CommSmall...)
	t.AddFloats("310 doubles (us/msg)", "%.1f", r.CommLarge...)
	return t.String()
}

// Table6 measures the model parameters the way the paper does: an
// LMbench-style pointer chase per level per P-state, and an MPPTEST-style
// ping-pong at LU's two message sizes.
func (s Suite) Table6() (*Table6Result, error) {
	t5, err := s.Table5()
	if err != nil {
		return nil, err
	}
	out := &Table6Result{MHz: s.Grid.MHz}
	for _, mhz := range s.Grid.MHz {
		ln, err := lmbench.LevelNanos(s.Platform.Mach, units.MHz(mhz))
		if err != nil {
			return nil, err
		}
		out.LevelNanos = append(out.LevelNanos, ln)
		// Blended CPI over the ON-chip mix, from measured latencies: the
		// fraction-weighted ON-chip time per instruction, re-expressed in
		// cycles at this gear.
		onFr := t5.Work.Fractions()
		onTotal := onFr[machine.Reg] + onFr[machine.L1] + onFr[machine.L2]
		if onTotal <= 0 {
			return nil, fmt.Errorf("experiments: workload has no ON-chip instructions to blend a CPI over")
		}
		wns := ln[machine.Reg].Times(onFr[machine.Reg]) +
			ln[machine.L1].Times(onFr[machine.L1]) +
			ln[machine.L2].Times(onFr[machine.L2])
		cpi := float64(units.MHz(mhz).CyclesIn(wns.Div(onTotal).Sec()))
		out.CPIOn = append(out.CPIOn, cpi)

		w2, err := s.Platform.World(2, mhz)
		if err != nil {
			return nil, err
		}
		small, err := mpptest.PingPong(w2, 155*8, s.PingReps)
		if err != nil {
			return nil, err
		}
		large, err := mpptest.PingPong(w2, 310*8, s.PingReps)
		if err != nil {
			return nil, err
		}
		out.CommSmall = append(out.CommSmall, small.Micros())
		out.CommLarge = append(out.CommLarge, large.Micros())
	}
	return out, nil
}

// Table7Result pairs the two parameterizations' error grids.
type Table7Result struct {
	// FP and SP are the fine-grain and simplified error grids.
	FP, SP *ErrorGrid
}

// String renders both grids.
func (r *Table7Result) String() string {
	return r.FP.String() + "\n" + r.SP.String()
}

// Table7 reproduces the LU prediction-error comparison: the fine-grain
// parameterization composed from counters, LMbench latencies and MPPTEST
// message times, against the simplified parameterization fitted from
// whole-program measurements.
func (s Suite) Table7(ctx context.Context) (*Table7Result, error) {
	camp, err := s.MeasureLU(ctx)
	if err != nil {
		return nil, err
	}
	return s.Table7From(camp)
}

// Table7From computes Table 7 from an existing LU campaign.
func (s Suite) Table7From(camp *Campaign) (*Table7Result, error) {
	sp, err := core.FitSP(camp.Meas)
	if err != nil {
		return nil, err
	}
	fp, err := s.FitFP(camp, s.LUGrid)
	if err != nil {
		return nil, err
	}
	base, err := camp.Meas.BaseMHz()
	if err != nil {
		return nil, err
	}
	// The paper scores predicted speedups against the *measured* base
	// sequential time, so the FP model's own T1 error shows up in the N=1
	// row (its Table 7 reports 1–7% there).
	t1, err := camp.Meas.Time(1, base)
	if err != nil {
		return nil, err
	}
	fpPredict := func(n int, f float64) (float64, error) {
		tp, err := fp.PredictTime(n, f)
		if err != nil {
			return 0, err
		}
		if tp <= 0 {
			return 0, fmt.Errorf("experiments: FP predicted non-positive time at N=%d f=%g", n, f)
		}
		//palint:ignore floatdiv -- guarded: tp <= 0 returns above
		return t1 / float64(tp), nil
	}
	fpGrid, err := errorGridFrom("Table 7 (FP): LU speedup error, fine-grain parameterization",
		s.LUGrid.Ns, s.LUGrid.MHz, fpPredict, speedupOf(camp.Meas))
	if err != nil {
		return nil, err
	}
	spGrid, err := errorGridFrom("Table 7 (SP): LU speedup error, simplified parameterization",
		s.LUGrid.Ns, s.LUGrid.MHz, sp.PredictSpeedup, speedupOf(camp.Meas))
	if err != nil {
		return nil, err
	}
	return &Table7Result{FP: fpGrid, SP: spGrid}, nil
}

// FitFP builds the fine-grain model for any kernel from first-principles
// measurements over the given grid: Step 1 decomposes the counters of a
// profiled sequential run; Step 2 measures per-level latencies with lmbench
// and prices the profiled per-N message traffic with mpptest ping-pongs.
// (The paper applies the technique to LU as its case study and notes it
// "applied this technique to FT with error rates similar to ... Table 3".)
func (s Suite) FitFP(camp *Campaign, grid cluster.Grid) (*core.FP, error) {
	base, err := camp.Meas.BaseMHz()
	if err != nil {
		return nil, err
	}
	seq, err := camp.Cell(1, base)
	if err != nil {
		return nil, err
	}
	work, err := seq.Counters.Decompose()
	if err != nil {
		return nil, err
	}
	fp := &core.FP{
		Work:      work,
		SecPerIns: map[float64][machine.NumLevels]units.Seconds{},
		CommSec:   map[int]map[float64]units.Seconds{},
	}
	for _, mhz := range grid.MHz {
		ln, err := lmbench.LevelNanos(s.Platform.Mach, units.MHz(mhz))
		if err != nil {
			return nil, err
		}
		var sec [machine.NumLevels]units.Seconds
		for l := range ln {
			sec[l] = ln[l].Sec()
		}
		fp.SecPerIns[mhz] = sec
	}
	for _, n := range grid.Ns {
		if n == 1 {
			continue
		}
		cell, err := camp.Cell(n, base)
		if err != nil {
			return nil, err
		}
		// Profile the busiest rank: its traffic approximates the critical
		// path's overhead.
		msgs, bytes := 0, 0
		for _, rs := range cell.PerRank {
			if rs.Msgs > msgs {
				msgs, bytes = rs.Msgs, rs.MsgBytes
			}
		}
		if msgs == 0 {
			return nil, fmt.Errorf("experiments: LU at N=%d sent no messages", n)
		}
		avg := bytes / msgs
		fp.CommSec[n] = map[float64]units.Seconds{}
		for _, mhz := range grid.MHz {
			w2, err := s.Platform.World(2, mhz)
			if err != nil {
				return nil, err
			}
			per, err := mpptest.PingPong(w2, avg, s.PingReps)
			if err != nil {
				return nil, err
			}
			fp.CommSec[n][mhz] = per.Times(float64(msgs))
		}
	}
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	return fp, nil
}
