package core

import (
	"testing"

	"pasp/internal/stats"
)

func TestSPFitExactOnAssumptionSatisfyingWorkload(t *testing.T) {
	// A workload that satisfies both SP assumptions — fully parallelizable,
	// frequency-insensitive overhead — is predicted exactly at every cell.
	po := func(n int) float64 { return 0.25 * float64(n) }
	m := synthetic(10, 5, po)
	sp, err := FitSP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sp.BaseMHz() != 600 {
		t.Errorf("base = %g, want 600", sp.BaseMHz())
	}
	for _, n := range m.Ns() {
		for _, mhz := range m.Freqs() {
			pred, err := sp.PredictTime(n, mhz)
			if err != nil {
				t.Fatal(err)
			}
			meas, _ := m.Time(n, mhz)
			if !stats.AlmostEqual(pred, meas, 1e-9) {
				t.Errorf("N=%d f=%g: predicted %g, measured %g", n, mhz, pred, meas)
			}
		}
	}
}

func TestSPOverheadDerivation(t *testing.T) {
	// Eq. 17 must recover the injected overhead exactly.
	po := func(n int) float64 { return 0.1 * float64(n*n) }
	m := synthetic(20, 0, po)
	sp, err := FitSP(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 8, 16} {
		got, err := sp.Overhead(n)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.AlmostEqual(got, po(n), 1e-9) {
			t.Errorf("N=%d: derived overhead %g, want %g", n, got, po(n))
		}
	}
	if got, _ := sp.Overhead(1); got != 0 {
		t.Errorf("N=1 overhead = %g, want 0", got)
	}
}

func TestSPUnderestimatesFrequencySensitiveOverhead(t *testing.T) {
	// Violate Assumption 2: make the overhead partly ON-chip (frequency
	// sensitive). SP derives overhead at the base gear and assumes it
	// constant, so it over-predicts the time at high frequency.
	m := NewMeasurements()
	for _, n := range []int{1, 2, 4} {
		for _, mhz := range []float64{600, 1400} {
			r := 600 / mhz
			t0 := 12.0 * r / float64(n) // compute, scales with f
			if n > 1 {
				t0 += 2 * r // overhead that also scales with f
			}
			m.SetTime(n, mhz, t0)
		}
	}
	sp, err := FitSP(m)
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := sp.PredictTime(4, 1400)
	meas, _ := m.Time(4, 1400)
	if pred <= meas {
		t.Errorf("SP should over-predict time here: %g vs %g", pred, meas)
	}
}

func TestSPPredictSpeedupAgainstBase(t *testing.T) {
	m := synthetic(10, 5, func(n int) float64 { return 0.5 })
	sp, err := FitSP(m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sp.PredictSpeedup(1, 600)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.AlmostEqual(s, 1, 1e-12) {
		t.Errorf("base speedup prediction %g, want 1", s)
	}
	s16, err := sp.PredictSpeedup(16, 1400)
	if err != nil {
		t.Fatal(err)
	}
	meas, _ := m.Speedup(16, 1400)
	if !stats.AlmostEqual(s16, meas, 1e-9) {
		t.Errorf("N=16@1400: predicted %g, measured %g", s16, meas)
	}
}

func TestSPFitRequiresSlices(t *testing.T) {
	m := NewMeasurements()
	m.SetTime(2, 600, 5) // no sequential run at all
	if _, err := FitSP(m); err == nil {
		t.Error("fit without T(1, f0) succeeded")
	}

	m2 := NewMeasurements()
	m2.SetTime(1, 600, 10)
	m2.SetTime(1, 800, 8)
	m2.SetTime(2, 800, 4) // missing the base-frequency parallel run
	if _, err := FitSP(m2); err == nil {
		t.Error("fit without base-frequency column succeeded")
	}
}

func TestSPPredictUnknownCells(t *testing.T) {
	m := synthetic(10, 5, nil)
	sp, err := FitSP(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.PredictTime(3, 600); err == nil {
		t.Error("unfitted N accepted")
	}
	if _, err := sp.PredictTime(2, 700); err == nil {
		t.Error("unfitted frequency accepted")
	}
}
